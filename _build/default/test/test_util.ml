open Flicker_crypto

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let test_hex_roundtrip () =
  check "hex" "00ff10ab" (Util.to_hex (Util.of_hex "00ff10ab"));
  check "hex upper" "\x00\xff" (Util.of_hex "00FF");
  check "empty" "" (Util.to_hex "")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Util.of_hex: odd length")
    (fun () -> ignore (Util.of_hex "abc"));
  Alcotest.check_raises "non-hex" (Invalid_argument "Util.of_hex: non-hex character")
    (fun () -> ignore (Util.of_hex "zz"))

let test_xor () =
  check "xor" "\x03\x00" (Util.xor "\x01\x02" "\x02\x02");
  Alcotest.check_raises "length mismatch" (Invalid_argument "Util.xor: length mismatch")
    (fun () -> ignore (Util.xor "a" "ab"))

let test_constant_time_equal () =
  check_bool "equal" true (Util.constant_time_equal "abc" "abc");
  check_bool "differ" false (Util.constant_time_equal "abc" "abd");
  check_bool "length" false (Util.constant_time_equal "abc" "ab");
  check_bool "empty" true (Util.constant_time_equal "" "")

let test_be32 () =
  check "be32" "\x00\x00\x01\x02" (Util.be32_of_int 258);
  Alcotest.(check int) "roundtrip" 0xDEAD (Util.int_of_be32 (Util.be32_of_int 0xDEAD) 0);
  Alcotest.(check int) "offset" 7 (Util.int_of_be32 ("xx" ^ Util.be32_of_int 7) 2)

let test_be16 () =
  check "be16" "\x01\x02" (Util.be16_of_int 258);
  Alcotest.(check int) "roundtrip" 0xBEEF (Util.int_of_be16 (Util.be16_of_int 0xBEEF) 0)

let test_chunks () =
  Alcotest.(check (list string)) "even" [ "ab"; "cd" ] (Util.chunks 2 "abcd");
  Alcotest.(check (list string)) "ragged" [ "abc"; "d" ] (Util.chunks 3 "abcd");
  Alcotest.(check (list string)) "empty" [] (Util.chunks 4 "");
  Alcotest.check_raises "bad size" (Invalid_argument "Util.chunks: non-positive size")
    (fun () -> ignore (Util.chunks 0 "x"))

let test_pad_left () =
  check "pads" "00ab" (Util.pad_left '0' 4 "ab");
  check "no-op" "abcdef" (Util.pad_left '0' 3 "abcdef")

let test_zeroize () =
  let b = Bytes.of_string "secret" in
  Util.zeroize b;
  check "zeroed" "\000\000\000\000\000\000" (Bytes.to_string b)

let test_fields_roundtrip () =
  let cases = [ []; [ "" ]; [ "a" ]; [ "one"; ""; "three" ]; [ String.make 5000 'x' ] ] in
  List.iter
    (fun fields ->
      match Util.decode_fields (Util.encode_fields fields) with
      | Ok got -> Alcotest.(check (list string)) "roundtrip" fields got
      | Error e -> Alcotest.fail e)
    cases

let test_fields_truncated () =
  check_bool "truncated header" true
    (Result.is_error (Util.decode_fields "\x00\x00"));
  check_bool "truncated body" true
    (Result.is_error (Util.decode_fields (Util.be32_of_int 10 ^ "short")))

let prop_fields =
  QCheck.Test.make ~name:"encode/decode fields roundtrip" ~count:200
    QCheck.(small_list (string_of_size Gen.small_nat))
    (fun fields -> Util.decode_fields (Util.encode_fields fields) = Ok fields)

let prop_hex =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200
    QCheck.(string_of_size Gen.small_nat)
    (fun s -> Util.of_hex (Util.to_hex s) = s)

let prop_xor_involution =
  QCheck.Test.make ~name:"xor is an involution" ~count:200
    QCheck.(pair (string_of_size Gen.small_nat) (string_of_size Gen.small_nat))
    (fun (a, b) ->
      let n = min (String.length a) (String.length b) in
      let a = String.sub a 0 n and b = String.sub b 0 n in
      Util.xor (Util.xor a b) b = a)

let () =
  Alcotest.run "util"
    [
      ( "util",
        [
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "hex invalid" `Quick test_hex_invalid;
          Alcotest.test_case "xor" `Quick test_xor;
          Alcotest.test_case "constant-time equal" `Quick test_constant_time_equal;
          Alcotest.test_case "be32" `Quick test_be32;
          Alcotest.test_case "be16" `Quick test_be16;
          Alcotest.test_case "chunks" `Quick test_chunks;
          Alcotest.test_case "pad_left" `Quick test_pad_left;
          Alcotest.test_case "zeroize" `Quick test_zeroize;
          Alcotest.test_case "fields roundtrip" `Quick test_fields_roundtrip;
          Alcotest.test_case "fields truncated" `Quick test_fields_truncated;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fields; prop_hex; prop_xor_involution ] );
    ]
