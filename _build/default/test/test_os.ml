open Flicker_crypto
open Flicker_os
module Machine = Flicker_hw.Machine
module Clock = Flicker_hw.Clock
module Cpu = Flicker_hw.Cpu
module Apic = Flicker_hw.Apic
module Timing = Flicker_hw.Timing

let make_machine () = Machine.create ~memory_size:(1024 * 1024) ~cores:2 Timing.default
let make_kernel () = Kernel.create (Prng.create ~seed:"k") ~text_size:8192 ~version:"2.6.20" ()

(* --- kernel --- *)

let test_kernel_deterministic () =
  let k1 = make_kernel () and k2 = make_kernel () in
  Alcotest.(check string) "same seed, same text" (Kernel.text_segment k1)
    (Kernel.text_segment k2);
  Alcotest.(check string) "same syscalls" (Kernel.syscall_table k1) (Kernel.syscall_table k2)

let test_kernel_rootkits () =
  let try_rootkit install =
    let k = make_kernel () in
    let before =
      (Kernel.text_segment k, Kernel.syscall_table k, Kernel.loaded_modules k)
    in
    Alcotest.(check bool) "clean" false (Kernel.is_compromised k);
    install k;
    Alcotest.(check bool) "compromised" true (Kernel.is_compromised k);
    let after = (Kernel.text_segment k, Kernel.syscall_table k, Kernel.loaded_modules k) in
    Alcotest.(check bool) "state changed" true (before <> after)
  in
  try_rootkit Kernel.install_text_rootkit;
  try_rootkit Kernel.install_syscall_rootkit;
  try_rootkit Kernel.install_module_rootkit

let test_kernel_text_rootkit_preserves_size () =
  let k = make_kernel () in
  let before = String.length (Kernel.text_segment k) in
  Kernel.install_text_rootkit k;
  Alcotest.(check int) "inline hook keeps size" before
    (String.length (Kernel.text_segment k))

let test_kernel_measured_bytes () =
  let k = make_kernel () in
  let expected =
    String.length (Kernel.text_segment k)
    + String.length (Kernel.syscall_table k)
    + List.fold_left (fun a (_, c) -> a + String.length c) 0 (Kernel.loaded_modules k)
  in
  Alcotest.(check int) "measured bytes" expected (Kernel.measured_bytes k)

(* --- OS state save/restore --- *)

let test_os_state_roundtrip () =
  let m = make_machine () in
  let k = make_kernel () in
  Kernel.set_page_table_root k 0xBEEF000;
  let bsp = Cpu.bsp m.Machine.cpus in
  bsp.Cpu.cr3 <- 0xBEEF000;
  let saved = Os_state.save m k in
  Alcotest.(check int) "saved cr3" 0xBEEF000 (Os_state.saved_cr3 saved);
  (* clobber everything, as SKINIT does *)
  bsp.Cpu.interrupts_enabled <- false;
  bsp.Cpu.paging_enabled <- false;
  bsp.Cpu.mode <- Cpu.Flat_protected;
  bsp.Cpu.cr3 <- 0;
  Os_state.restore m k saved;
  Alcotest.(check bool) "interrupts back" true bsp.Cpu.interrupts_enabled;
  Alcotest.(check bool) "paging back" true bsp.Cpu.paging_enabled;
  Alcotest.(check bool) "mode back" true (bsp.Cpu.mode = Cpu.Long_mode);
  Alcotest.(check int) "cr3 back" 0xBEEF000 bsp.Cpu.cr3

(* --- scheduler --- *)

let test_scheduler_single_process () =
  let m = make_machine () in
  let s = Scheduler.create m in
  let p = Scheduler.spawn s ~name:"job" ~work_ms:100.0 in
  Scheduler.run_for s 50.0;
  Alcotest.(check bool) "half done" true (abs_float (p.Scheduler.remaining_ms -. 50.0) < 1e-6);
  Scheduler.run_for s 50.0;
  Alcotest.(check bool) "complete" true (p.Scheduler.completed_at <> None)

let test_scheduler_fair_share () =
  (* two cores, three equal jobs: each runs at 2/3 rate *)
  let m = make_machine () in
  let s = Scheduler.create m in
  let jobs = List.init 3 (fun i -> Scheduler.spawn s ~name:(string_of_int i) ~work_ms:100.0) in
  Scheduler.run_for s 150.0;
  List.iter
    (fun p -> Alcotest.(check bool) "finished at 150" true (p.Scheduler.completed_at <> None))
    jobs;
  (* one more job than capacity finishes exactly at work/(cores/n) *)
  let m2 = make_machine () in
  let s2 = Scheduler.create m2 in
  let p = Scheduler.spawn s2 ~name:"solo" ~work_ms:100.0 in
  Scheduler.run_for s2 99.0;
  Alcotest.(check bool) "not yet" true (p.Scheduler.completed_at = None);
  Scheduler.run_for s2 1.0;
  Alcotest.(check bool) "exactly done" true (p.Scheduler.completed_at <> None)

let test_scheduler_hotplug () =
  (* descheduling the AP halves throughput for two parallel jobs *)
  let m = make_machine () in
  let s = Scheduler.create m in
  Alcotest.(check int) "two cores" 2 (Scheduler.online_cores s);
  Apic.deschedule_aps m;
  Alcotest.(check int) "one core" 1 (Scheduler.online_cores s);
  let a = Scheduler.spawn s ~name:"a" ~work_ms:100.0 in
  let b = Scheduler.spawn s ~name:"b" ~work_ms:100.0 in
  Scheduler.run_for s 200.0;
  Alcotest.(check bool) "both needed 200ms wall on 1 core" true
    (a.Scheduler.completed_at <> None && b.Scheduler.completed_at <> None);
  Scheduler.run_for s 0.0;
  Alcotest.(check (float 1e-6)) "clock at 200" 200.0 (Clock.now m.Machine.clock)

let test_scheduler_suspend () =
  let m = make_machine () in
  let s = Scheduler.create m in
  let p = Scheduler.spawn s ~name:"job" ~work_ms:100.0 in
  Scheduler.suspend s;
  Alcotest.(check bool) "suspended" true (Scheduler.is_suspended s);
  Scheduler.run_for s 500.0;
  Alcotest.(check bool) "no progress while suspended" true
    (p.Scheduler.remaining_ms = 100.0);
  Alcotest.(check (float 1e-6)) "clock still advanced" 500.0 (Clock.now m.Machine.clock);
  Scheduler.resume s;
  Scheduler.run_until_complete s p;
  Alcotest.(check bool) "done after resume" true (p.Scheduler.completed_at <> None)

let test_scheduler_completion_time () =
  let m = make_machine () in
  let s = Scheduler.create m in
  let p = Scheduler.spawn s ~name:"x" ~work_ms:42.0 in
  Scheduler.run_until_complete s p;
  match p.Scheduler.completed_at with
  | Some t -> Alcotest.(check (float 1e-6)) "completes at 42" 42.0 t
  | None -> Alcotest.fail "not complete"

(* --- sysfs --- *)

let test_sysfs () =
  let fs = Sysfs.create () in
  Sysfs.write fs ~path:"slb" "blob";
  Sysfs.write fs ~path:"inputs" "in";
  Alcotest.(check (option string)) "read" (Some "blob") (Sysfs.read fs ~path:"slb");
  Alcotest.(check (option string)) "missing" None (Sysfs.read fs ~path:"outputs");
  Alcotest.(check string) "read_exn" "in" (Sysfs.read_exn fs ~path:"inputs");
  Alcotest.check_raises "read_exn missing" Not_found (fun () ->
      ignore (Sysfs.read_exn fs ~path:"nope"));
  Sysfs.write fs ~path:"slb" "blob2";
  Alcotest.(check (option string)) "overwrite" (Some "blob2") (Sysfs.read fs ~path:"slb");
  Alcotest.(check (list string)) "paths" [ "inputs"; "slb" ] (Sysfs.paths fs);
  Sysfs.remove fs ~path:"slb";
  Alcotest.(check (list string)) "removed" [ "inputs" ] (Sysfs.paths fs);
  Alcotest.(check (list string)) "standard entries"
    [ "control"; "inputs"; "outputs"; "slb" ]
    Sysfs.standard_entries

(* --- block devices --- *)

let test_blockdev_transfer () =
  let m = make_machine () in
  let s = Scheduler.create m in
  let cdrom = Blockdev.create ~name:"cdrom" ~rate_kb_per_ms:10.0 in
  let usb = Blockdev.create ~name:"usb" ~rate_kb_per_ms:20.0 in
  let data = Prng.bytes (Prng.create ~seed:"file") (300 * 1024) in
  Blockdev.store cdrom ~file:"movie.avi" data;
  let ms =
    Result.get_ok (Blockdev.transfer m ~scheduler:s ~src:cdrom ~dst:usb ~file:"movie.avi" ())
  in
  (* 300 KB at the slower 10 KB/ms rate = 30 ms *)
  Alcotest.(check (float 0.5)) "duration" 30.0 ms;
  Alcotest.(check string) "integrity" (Md5.hex data)
    (Result.get_ok (Blockdev.md5sum usb ~file:"movie.avi"));
  Alcotest.(check bool) "missing file" true
    (Result.is_error (Blockdev.transfer m ~scheduler:s ~src:cdrom ~dst:usb ~file:"nope" ()))

let test_blockdev_interleaved_with_suspension () =
  (* chunks issued around OS suspensions still produce a bit-exact copy *)
  let m = make_machine () in
  let s = Scheduler.create m in
  let hd = Blockdev.create ~name:"hd" ~rate_kb_per_ms:50.0 in
  let usb = Blockdev.create ~name:"usb" ~rate_kb_per_ms:20.0 in
  let data = Prng.bytes (Prng.create ~seed:"big") (512 * 1024) in
  Blockdev.store hd ~file:"big.bin" data;
  let sessions = ref 0 in
  let between_chunks () =
    incr sessions;
    (* simulate a Flicker session freezing the OS *)
    Scheduler.suspend s;
    Clock.advance m.Machine.clock 37.0;
    Scheduler.resume s
  in
  ignore
    (Result.get_ok
       (Blockdev.transfer m ~scheduler:s ~src:hd ~dst:usb ~file:"big.bin"
          ~chunk_kb:64 ~between_chunks ()));
  Alcotest.(check bool) "sessions ran during copy" true (!sessions >= 8);
  Alcotest.(check string) "md5 intact" (Md5.hex data)
    (Result.get_ok (Blockdev.md5sum usb ~file:"big.bin"))

let () =
  Alcotest.run "os"
    [
      ( "kernel",
        [
          Alcotest.test_case "deterministic" `Quick test_kernel_deterministic;
          Alcotest.test_case "rootkits mutate state" `Quick test_kernel_rootkits;
          Alcotest.test_case "inline hook size" `Quick test_kernel_text_rootkit_preserves_size;
          Alcotest.test_case "measured bytes" `Quick test_kernel_measured_bytes;
        ] );
      ("os state", [ Alcotest.test_case "save/restore" `Quick test_os_state_roundtrip ]);
      ( "scheduler",
        [
          Alcotest.test_case "single process" `Quick test_scheduler_single_process;
          Alcotest.test_case "fair share" `Quick test_scheduler_fair_share;
          Alcotest.test_case "cpu hotplug" `Quick test_scheduler_hotplug;
          Alcotest.test_case "suspend" `Quick test_scheduler_suspend;
          Alcotest.test_case "completion time" `Quick test_scheduler_completion_time;
        ] );
      ("sysfs", [ Alcotest.test_case "entries" `Quick test_sysfs ]);
      ( "blockdev",
        [
          Alcotest.test_case "transfer" `Quick test_blockdev_transfer;
          Alcotest.test_case "interleaved with sessions" `Quick
            test_blockdev_interleaved_with_suspension;
        ] );
    ]
