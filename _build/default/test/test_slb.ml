open Flicker_crypto
open Flicker_slb

(* --- layout --- *)

let test_layout_constants () =
  Alcotest.(check int) "slb window" 65536 Layout.slb_size;
  Alcotest.(check int) "pal end" 61440 Layout.pal_region_end;
  Alcotest.(check int) "inputs page" 65536 Layout.inputs_page_offset;
  Alcotest.(check int) "outputs page" (65536 + 4096) Layout.outputs_page_offset;
  Alcotest.(check int) "footprint" (65536 + 8192) Layout.total_footprint;
  Alcotest.(check int) "pal capacity" (61440 - 4 - 320)
    (Layout.max_pal_code ~slb_core_size:Slb_core.core_size)

(* --- slb core --- *)

let test_slb_core_code () =
  Alcotest.(check int) "core size" Slb_core.core_size (String.length Slb_core.code);
  Alcotest.(check int) "stub size" (Slb_core.stub_size - 4) (String.length Slb_core.stub_code);
  Alcotest.(check int) "stub is 4736 with header" 4736 Slb_core.stub_size;
  (* patch fields start blank *)
  Alcotest.(check string) "blank gdt field" "\000\000\000\000"
    (String.sub Slb_core.code (Slb_core.gdt_patch_offset - 4) 4)

let test_slb_core_patch () =
  let image = Bytes.make 1024 '\000' in
  Slb_core.patch image ~slb_base:0x200000;
  Alcotest.(check int) "gdt patched" 0x200000
    (Util.int_of_be32 (Bytes.to_string image) Slb_core.gdt_patch_offset);
  Alcotest.(check int) "tss patched" 0x200000
    (Util.int_of_be32 (Bytes.to_string image) Slb_core.tss_patch_offset)

(* --- module catalog (Figure 6) --- *)

let test_catalog_figure6 () =
  let find k = Pal.info k in
  Alcotest.(check int) "os protection loc" 5 (find Pal.Os_protection).Pal.loc;
  Alcotest.(check int) "tpm driver loc" 216 (find Pal.Tpm_driver).Pal.loc;
  Alcotest.(check int) "tpm utils loc" 889 (find Pal.Tpm_utilities).Pal.loc;
  Alcotest.(check int) "crypto loc" 2262 (find Pal.Crypto).Pal.loc;
  Alcotest.(check int) "memory loc" 657 (find Pal.Memory_management).Pal.loc;
  Alcotest.(check int) "secure channel loc" 292 (find Pal.Secure_channel).Pal.loc;
  Alcotest.(check int) "catalog size" 6 (List.length Pal.catalog);
  (* module code is deterministic and the declared size *)
  List.iter
    (fun info ->
      let code = Pal.module_code info.Pal.kind in
      Alcotest.(check int) "code size" info.Pal.size_bytes (String.length code);
      Alcotest.(check string) "deterministic" code (Pal.module_code info.Pal.kind))
    Pal.catalog

let test_pal_define_and_registry () =
  let pal = Pal.define ~name:"registry-test" ~modules:[ Pal.Tpm_driver ] (fun _ -> ()) in
  Alcotest.(check bool) "found by code" true (Pal.find_by_code (Pal.linked_code pal) <> None);
  Alcotest.(check bool) "not found for corrupt code" true
    (Pal.find_by_code (Pal.linked_code pal ^ "x") = None);
  Alcotest.(check bool) "wants driver" true (Pal.wants pal Pal.Tpm_driver);
  Alcotest.(check bool) "no crypto" false (Pal.wants pal Pal.Crypto);
  (* TCB accounting: SLB core + TPM driver *)
  Alcotest.(check int) "tcb loc" (94 + 216) (Pal.total_loc pal)

let test_pal_modules_sorted_dedup () =
  let pal =
    Pal.define ~name:"sorted-test"
      ~modules:[ Pal.Crypto; Pal.Tpm_driver; Pal.Crypto ]
      (fun _ -> ())
  in
  Alcotest.(check int) "deduped" 2 (List.length pal.Pal.modules);
  Alcotest.(check bool) "driver before crypto" true
    (pal.Pal.modules = [ Pal.Tpm_driver; Pal.Crypto ])

let test_pal_too_large () =
  Alcotest.(check bool) "oversized rejected" true
    (match Pal.define ~name:"huge" ~app_code_size:(62 * 1024) (fun _ -> ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- builder --- *)

let test_builder_standard () =
  let pal = Pal.define ~name:"builder-std" ~app_code_size:1000 (fun _ -> ()) in
  let image = Builder.build ~flavor:Builder.Standard pal in
  Alcotest.(check int) "window size" Layout.slb_size (String.length image.Builder.bytes);
  Alcotest.(check int) "measured length" (4 + 320 + 1000) image.Builder.measured_length;
  (* header encodes length and entry *)
  let b = image.Builder.bytes in
  Alcotest.(check int) "header length" image.Builder.measured_length
    (Char.code b.[0] lor (Char.code b.[1] lsl 8));
  Alcotest.(check int) "header entry" 4 (Char.code b.[2] lor (Char.code b.[3] lsl 8));
  (* PAL code is recoverable *)
  Alcotest.(check string) "extract pal code" (Pal.linked_code pal)
    (Result.get_ok (Builder.pal_code_of_window image.Builder.bytes))

let test_builder_optimized () =
  let pal = Pal.define ~name:"builder-opt" ~app_code_size:1000 (fun _ -> ()) in
  let image = Builder.build ~flavor:Builder.Optimized pal in
  Alcotest.(check int) "measured = stub" 4736 image.Builder.measured_length;
  Alcotest.(check string) "extract pal code" (Pal.linked_code pal)
    (Result.get_ok (Builder.pal_code_of_window image.Builder.bytes));
  let std, opt = Builder.slb_sizes pal in
  Alcotest.(check int) "standard size" (4 + 320 + 1000) std;
  Alcotest.(check int) "optimized size" 4736 opt

let test_builder_initialize () =
  let pal = Pal.define ~name:"builder-init" (fun _ -> ()) in
  let image = Builder.build pal in
  let a = Builder.initialize image ~slb_base:0x200000 in
  let b = Builder.initialize image ~slb_base:0x300000 in
  Alcotest.(check bool) "patch differs by base" true (a <> b);
  Alcotest.(check string) "deterministic per base" a
    (Builder.initialize image ~slb_base:0x200000);
  Alcotest.(check int) "gdt base patched" 0x200000 (Util.int_of_be32 a Slb_core.gdt_patch_offset)

let test_builder_window_errors () =
  Alcotest.(check bool) "short window" true
    (Result.is_error (Builder.pal_code_of_window "short"));
  let junk = String.make Layout.slb_size '\xff' in
  Alcotest.(check bool) "corrupt header" true
    (Result.is_error (Builder.pal_code_of_window junk))

(* --- allocator --- *)

let test_allocator_basic () =
  let h = Mod_memory.create ~size:1024 in
  let a = Option.get (Mod_memory.malloc h 100) in
  let b = Option.get (Mod_memory.malloc h 200) in
  Alcotest.(check bool) "distinct blocks" true (a <> b);
  Alcotest.(check int) "allocated" 300 (Mod_memory.allocated_bytes h);
  Mod_memory.write h ~off:a "hello";
  Alcotest.(check string) "rw" "hello" (Mod_memory.read h ~off:a ~len:5);
  Mod_memory.free h a;
  Alcotest.(check int) "after free" 200 (Mod_memory.allocated_bytes h);
  Alcotest.(check (option int)) "block size" (Some 200) (Mod_memory.block_size h b)

let test_allocator_exhaustion_and_coalesce () =
  let h = Mod_memory.create ~size:256 in
  let a = Option.get (Mod_memory.malloc h 128) in
  let b = Option.get (Mod_memory.malloc h 128) in
  Alcotest.(check (option int)) "exhausted" None (Mod_memory.malloc h 1);
  Mod_memory.free h a;
  Mod_memory.free h b;
  (* coalescing makes the full heap available again *)
  Alcotest.(check bool) "coalesced" true (Mod_memory.malloc h 256 <> None)

let test_allocator_errors () =
  let h = Mod_memory.create ~size:128 in
  let a = Option.get (Mod_memory.malloc h 32) in
  Mod_memory.free h a;
  Alcotest.(check bool) "double free" true
    (match Mod_memory.free h a with exception Invalid_argument _ -> true | () -> false);
  Alcotest.(check bool) "wild free" true
    (match Mod_memory.free h 999 with exception Invalid_argument _ -> true | () -> false);
  let b = Option.get (Mod_memory.malloc h 16) in
  Alcotest.(check bool) "oob read" true
    (match Mod_memory.read h ~off:b ~len:17 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_allocator_free_wipes () =
  let h = Mod_memory.create ~size:128 in
  let a = Option.get (Mod_memory.malloc h 16) in
  Mod_memory.write h ~off:a "secret deleted!!";
  Mod_memory.free h a;
  let b = Option.get (Mod_memory.malloc h 16) in
  Alcotest.(check string) "freed memory wiped" (String.make 16 '\000')
    (Mod_memory.read h ~off:b ~len:16)

let test_allocator_realloc () =
  let h = Mod_memory.create ~size:512 in
  let a = Option.get (Mod_memory.malloc h 16) in
  Mod_memory.write h ~off:a "0123456789abcdef";
  let b = Option.get (Mod_memory.realloc h a 64) in
  Alcotest.(check string) "prefix preserved" "0123456789abcdef"
    (Mod_memory.read h ~off:b ~len:16);
  Alcotest.(check (option int)) "new size" (Some 64) (Mod_memory.block_size h b);
  (* shrink keeps the block in place *)
  let c = Option.get (Mod_memory.realloc h b 32) in
  Alcotest.(check int) "shrink in place" b c

let prop_allocator_no_overlap =
  QCheck.Test.make ~name:"live blocks never overlap" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 1 64))
    (fun sizes ->
      let h = Mod_memory.create ~size:4096 in
      let blocks =
        List.filter_map (fun n -> Option.map (fun off -> (off, n)) (Mod_memory.malloc h n)) sizes
      in
      (* no two blocks overlap *)
      let rec check = function
        | [] -> true
        | (off, n) :: rest ->
            List.for_all (fun (off', n') -> off + n <= off' || off' + n' <= off) rest
            && check rest
      in
      check blocks)

let prop_allocator_free_then_reuse =
  QCheck.Test.make ~name:"free makes space reusable" ~count:50
    QCheck.(int_range 1 512)
    (fun n ->
      let h = Mod_memory.create ~size:512 in
      match Mod_memory.malloc h n with
      | None -> false
      | Some off ->
          Mod_memory.free h off;
          Mod_memory.malloc h n <> None)

(* --- OS protection --- *)

let test_os_protection_check () =
  let policy = Mod_os_protection.policy_for_launch ~slb_base:0x200000 ~footprint:0x12000 in
  Mod_os_protection.check policy ~addr:0x200000 ~len:0x12000;
  Mod_os_protection.check policy ~addr:0x211fff ~len:1;
  Alcotest.(check bool) "below" true
    (match Mod_os_protection.check policy ~addr:0x1fffff ~len:1 with
    | exception Mod_os_protection.Pal_fault _ -> true
    | () -> false);
  Alcotest.(check bool) "above" true
    (match Mod_os_protection.check policy ~addr:0x212000 ~len:1 with
    | exception Mod_os_protection.Pal_fault _ -> true
    | () -> false);
  Alcotest.(check bool) "straddle" true
    (match Mod_os_protection.check policy ~addr:0x211fff ~len:2 with
    | exception Mod_os_protection.Pal_fault _ -> true
    | () -> false)

let test_os_protection_rings () =
  let m = Flicker_hw.Machine.create ~memory_size:(1024 * 1024) Flicker_hw.Timing.default in
  let policy = Mod_os_protection.policy_for_launch ~slb_base:0x10000 ~footprint:0x12000 in
  let bsp = Flicker_hw.Cpu.bsp m.Flicker_hw.Machine.cpus in
  Mod_os_protection.enter_ring3 m policy;
  Alcotest.(check int) "ring 3" 3 bsp.Flicker_hw.Cpu.ring;
  Alcotest.(check int) "segment base" 0x10000 bsp.Flicker_hw.Cpu.cs.Flicker_hw.Cpu.base;
  Mod_os_protection.exit_ring3 m;
  Alcotest.(check int) "ring 0" 0 bsp.Flicker_hw.Cpu.ring

(* --- TPM driver discipline --- *)

let test_tpm_driver_claim () =
  let machine = Flicker_hw.Machine.create ~memory_size:(1024 * 1024) Flicker_hw.Timing.default in
  let tpm = Flicker_tpm.Tpm.create machine (Prng.create ~seed:"drv") ~key_bits:512 in
  let drv = Mod_tpm_driver.attach tpm in
  Alcotest.(check bool) "unclaimed access fails" true (Result.is_error (Mod_tpm_driver.tpm drv));
  Alcotest.(check bool) "claim" true (Result.is_ok (Mod_tpm_driver.claim drv));
  Alcotest.(check bool) "double claim fails" true (Result.is_error (Mod_tpm_driver.claim drv));
  Alcotest.(check bool) "claimed access works" true (Result.is_ok (Mod_tpm_driver.tpm drv));
  Mod_tpm_driver.release drv;
  Alcotest.(check bool) "released" false (Mod_tpm_driver.is_claimed drv)

(* --- TCB accounting --- *)

let test_tcb () =
  let rows = Tcb.figure6 () in
  Alcotest.(check int) "seven rows" 7 (List.length rows);
  let loc, bytes = Tcb.totals rows in
  Alcotest.(check int) "figure 6 total loc" (94 + 5 + 216 + 889 + 2262 + 657 + 292) loc;
  Alcotest.(check bool) "bytes positive" true (bytes > 50_000);
  let pal = Pal.define ~name:"tcb-test" ~modules:[ Pal.Tpm_driver ] (fun _ -> ()) in
  let pal_rows = Tcb.pal_tcb pal in
  Alcotest.(check int) "core + one module" 2 (List.length pal_rows);
  (* headline claim: mandatory TCB in the low hundreds of lines *)
  let flicker_loc = List.assoc "Flicker (SLB Core + OS Protection + TPM driver)" Tcb.comparison in
  Alcotest.(check bool) "about 250 lines" true (flicker_loc > 200 && flicker_loc < 400);
  Alcotest.(check bool) "vastly smaller than Xen" true
    (flicker_loc * 100 < List.assoc "Xen hypervisor (SKINIT-launched VMM)" Tcb.comparison)

let () =
  Alcotest.run "slb"
    [
      ( "layout+core",
        [
          Alcotest.test_case "layout constants" `Quick test_layout_constants;
          Alcotest.test_case "core code" `Quick test_slb_core_code;
          Alcotest.test_case "patching" `Quick test_slb_core_patch;
        ] );
      ( "pal",
        [
          Alcotest.test_case "figure 6 catalog" `Quick test_catalog_figure6;
          Alcotest.test_case "define + registry" `Quick test_pal_define_and_registry;
          Alcotest.test_case "modules sorted" `Quick test_pal_modules_sorted_dedup;
          Alcotest.test_case "too large" `Quick test_pal_too_large;
        ] );
      ( "builder",
        [
          Alcotest.test_case "standard image" `Quick test_builder_standard;
          Alcotest.test_case "optimized image" `Quick test_builder_optimized;
          Alcotest.test_case "initialize/patch" `Quick test_builder_initialize;
          Alcotest.test_case "window errors" `Quick test_builder_window_errors;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "basic" `Quick test_allocator_basic;
          Alcotest.test_case "exhaustion + coalesce" `Quick test_allocator_exhaustion_and_coalesce;
          Alcotest.test_case "errors" `Quick test_allocator_errors;
          Alcotest.test_case "free wipes" `Quick test_allocator_free_wipes;
          Alcotest.test_case "realloc" `Quick test_allocator_realloc;
        ] );
      ( "protection",
        [
          Alcotest.test_case "segment check" `Quick test_os_protection_check;
          Alcotest.test_case "ring transitions" `Quick test_os_protection_rings;
          Alcotest.test_case "tpm driver claim" `Quick test_tpm_driver_claim;
        ] );
      ("tcb", [ Alcotest.test_case "accounting" `Quick test_tcb ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_allocator_no_overlap; prop_allocator_free_then_reuse ] );
    ]
