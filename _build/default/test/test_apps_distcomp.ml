open Flicker_core
open Flicker_apps
module Timing = Flicker_hw.Timing

let make ~seed = Platform.create ~seed ~key_bits:512 ()

let test_state_codec () =
  let st =
    {
      Distcomp.unit_ = { Distcomp.unit_id = 7; number = 91; lo = 2; hi = 20 };
      next_candidate = 5;
      divisors_found = [ 13; 7 ];
      finished = false;
    }
  in
  match Distcomp.decode_state (Distcomp.encode_state st) with
  | Ok st' ->
      Alcotest.(check int) "unit id" 7 st'.Distcomp.unit_.Distcomp.unit_id;
      Alcotest.(check int) "next" 5 st'.Distcomp.next_candidate;
      Alcotest.(check (list int)) "divisors" [ 13; 7 ] st'.Distcomp.divisors_found;
      Alcotest.(check bool) "running" false st'.Distcomp.finished
  | Error e -> Alcotest.fail e

let test_state_codec_errors () =
  Alcotest.(check bool) "garbage" true (Result.is_error (Distcomp.decode_state "junk"));
  Alcotest.(check bool) "truncated" true
    (Result.is_error (Distcomp.decode_state (Flicker_crypto.Util.encode_fields [ "a" ])))

let test_finds_real_factors () =
  let p = make ~seed:"factors" in
  let client = Distcomp.create_client p in
  (* 3 * 5 * 7 * 11 * 13 = 15015; search all candidates in [2, 130] *)
  let unit_ = { Distcomp.unit_id = 1; number = 15015; lo = 2; hi = 130 } in
  match Distcomp.run_to_completion client unit_ ~slice_ms:0.2 with
  | Error e -> Alcotest.fail e
  | Ok (final, sessions) ->
      Alcotest.(check bool) "finished" true final.Distcomp.finished;
      Alcotest.(check bool) "multiple sessions" true (sessions > 1);
      let divisors = List.sort compare final.Distcomp.divisors_found in
      (* every divisor of 15015 in [2,130] *)
      let expected =
        List.filter (fun c -> 15015 mod c = 0) (List.init 129 (fun i -> i + 2))
      in
      Alcotest.(check (list int)) "all divisors found" expected divisors

let test_single_session_completion () =
  let p = make ~seed:"single" in
  let client = Distcomp.create_client p in
  let unit_ = { Distcomp.unit_id = 2; number = 35; lo = 2; hi = 10 } in
  match Distcomp.run_to_completion client unit_ ~slice_ms:1000.0 with
  | Error e -> Alcotest.fail e
  | Ok (final, sessions) ->
      Alcotest.(check int) "one session" 1 sessions;
      Alcotest.(check (list int)) "5 and 7" [ 5; 7 ]
        (List.sort compare final.Distcomp.divisors_found)

let test_mac_tamper_detected () =
  let p = make ~seed:"tamper" in
  let client = Distcomp.create_client p in
  let unit_ = { Distcomp.unit_id = 3; number = 1_000_003; lo = 2; hi = 100_000 } in
  match Distcomp.start client unit_ ~slice_ms:5.0 with
  | Error e -> Alcotest.fail e
  | Ok step -> (
      Alcotest.(check bool) "not finished yet" false step.Distcomp.state.Distcomp.finished;
      (* the untrusted OS tampers with the stored state *)
      let blob = Distcomp.tamper_state (Distcomp.encode_state step.Distcomp.state) in
      match Distcomp.resume_raw client ~state_blob:blob ~slice_ms:5.0 with
      | Error msg ->
          Alcotest.(check bool) "MAC mismatch reported" true
            (let lower = String.lowercase_ascii msg in
             let rec contains i =
               i + 3 <= String.length lower
               && (String.sub lower i 3 = "mac" || contains (i + 1))
             in
             contains 0)
      | Ok _ -> Alcotest.fail "tampered state accepted")

let test_honest_resume_continues () =
  let p = make ~seed:"resume" in
  let client = Distcomp.create_client p in
  let unit_ = { Distcomp.unit_id = 4; number = 9_999_991; lo = 2; hi = 10_000 } in
  match Distcomp.start client unit_ ~slice_ms:10.0 with
  | Error e -> Alcotest.fail e
  | Ok step1 -> (
      let progress1 = step1.Distcomp.state.Distcomp.next_candidate in
      Alcotest.(check bool) "made progress" true (progress1 > 2);
      match Distcomp.resume client step1.Distcomp.state ~slice_ms:10.0 with
      | Error e -> Alcotest.fail e
      | Ok step2 ->
          Alcotest.(check bool) "continued from checkpoint" true
            (step2.Distcomp.state.Distcomp.next_candidate > progress1))

let test_resume_finished_raises () =
  let p = make ~seed:"finished" in
  let client = Distcomp.create_client p in
  let st =
    {
      Distcomp.unit_ = { Distcomp.unit_id = 5; number = 6; lo = 2; hi = 3 };
      next_candidate = 4;
      divisors_found = [ 2; 3 ];
      finished = true;
    }
  in
  Alcotest.(check bool) "raises" true
    (match Distcomp.resume client st ~slice_ms:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_overhead_dominated_by_unseal () =
  (* Table 4: resume-session overhead = SKINIT (~14 ms) + Unseal (~898 ms) *)
  let p = make ~seed:"overhead" in
  let client = Distcomp.create_client p in
  let unit_ = { Distcomp.unit_id = 6; number = 1_000_003; lo = 2; hi = 500_000 } in
  match Distcomp.start client unit_ ~slice_ms:100.0 with
  | Error e -> Alcotest.fail e
  | Ok step1 -> (
      match Distcomp.resume client step1.Distcomp.state ~slice_ms:1000.0 with
      | Error e -> Alcotest.fail e
      | Ok step2 ->
          let overhead = step2.Distcomp.session_overhead_ms in
          Alcotest.(check bool)
            (Printf.sprintf "overhead ~912 ms (got %.1f)" overhead)
            true
            (overhead > 880.0 && overhead < 960.0))

let test_efficiency_table4 () =
  (* the analytic efficiency model must reproduce Table 4's overheads *)
  let t = Timing.default in
  let check_overhead work expected =
    let eff = Distcomp.efficiency t ~work_ms:work in
    let overhead_pct = (1.0 -. eff) *. 100.0 in
    Alcotest.(check (float 2.0))
      (Printf.sprintf "%.0f ms work" work)
      expected overhead_pct
  in
  check_overhead 1000.0 47.0;
  check_overhead 2000.0 30.0;
  check_overhead 4000.0 18.0;
  check_overhead 8000.0 10.0

let test_efficiency_figure8 () =
  let t = Timing.default in
  (* Flicker beats 3-way replication somewhere below 2 s of user latency *)
  Alcotest.(check bool) "2s beats 3-way" true
    (Distcomp.efficiency t ~work_ms:2000.0 > Distcomp.replication_efficiency 3);
  Alcotest.(check bool) "10s close to 1" true (Distcomp.efficiency t ~work_ms:10000.0 > 0.9);
  (* replication efficiencies *)
  Alcotest.(check (float 1e-9)) "3-way" (1.0 /. 3.0) (Distcomp.replication_efficiency 3);
  Alcotest.(check (float 1e-9)) "7-way" (1.0 /. 7.0) (Distcomp.replication_efficiency 7);
  (* efficiency is monotone in work *)
  Alcotest.(check bool) "monotone" true
    (Distcomp.efficiency t ~work_ms:1000.0 < Distcomp.efficiency t ~work_ms:4000.0);
  (* Infineon improves efficiency *)
  let infineon = Timing.with_tpm Timing.infineon t in
  Alcotest.(check bool) "faster TPM helps" true
    (Distcomp.efficiency infineon ~work_ms:1000.0 > Distcomp.efficiency t ~work_ms:1000.0)

let test_results_extended_into_pcr () =
  (* the final session extends the result hash, so the attested PCR
     differs from a session that produced different results *)
  let p = make ~seed:"extend-results" in
  let client = Distcomp.create_client p in
  let unit_ = { Distcomp.unit_id = 8; number = 21; lo = 2; hi = 10 } in
  match Distcomp.run_to_completion client unit_ ~slice_ms:1000.0 with
  | Error e -> Alcotest.fail e
  | Ok (final, _) ->
      Alcotest.(check (list int)) "3 and 7" [ 3; 7 ]
        (List.sort compare final.Distcomp.divisors_found)

let () =
  Alcotest.run "apps-distcomp"
    [
      ( "state",
        [
          Alcotest.test_case "codec" `Quick test_state_codec;
          Alcotest.test_case "codec errors" `Quick test_state_codec_errors;
        ] );
      ( "work",
        [
          Alcotest.test_case "finds real factors" `Quick test_finds_real_factors;
          Alcotest.test_case "single session" `Quick test_single_session_completion;
          Alcotest.test_case "honest resume" `Quick test_honest_resume_continues;
          Alcotest.test_case "resume finished" `Quick test_resume_finished_raises;
          Alcotest.test_case "results extended" `Quick test_results_extended_into_pcr;
        ] );
      ( "integrity",
        [ Alcotest.test_case "MAC tamper detected" `Quick test_mac_tamper_detected ] );
      ( "efficiency",
        [
          Alcotest.test_case "overhead = skinit+unseal" `Quick test_overhead_dominated_by_unseal;
          Alcotest.test_case "table 4" `Quick test_efficiency_table4;
          Alcotest.test_case "figure 8" `Quick test_efficiency_figure8;
        ] );
    ]
