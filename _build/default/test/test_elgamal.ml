open Flicker_crypto

let rng = Prng.create ~seed:"elgamal-tests"
let params = Lazy.force Elgamal.shared_params_512

let test_params () =
  Alcotest.(check bool) "p is prime" true
    (Primality.is_probably_prime rng params.Elgamal.p);
  Alcotest.(check int) "512 bits" 512 (Bignum.bit_length params.Elgamal.p);
  Alcotest.(check bool) "g in range" true
    (Bignum.compare params.Elgamal.g params.Elgamal.p < 0);
  (* deterministic shared group *)
  let again = Lazy.force Elgamal.shared_params_512 in
  Alcotest.(check bool) "shared params stable" true
    (Bignum.equal params.Elgamal.p again.Elgamal.p)

let test_keygen () =
  let k1 = Elgamal.generate rng params in
  let k2 = Elgamal.generate rng params in
  Alcotest.(check bool) "keys differ" false
    (Bignum.equal k1.Elgamal.x k2.Elgamal.x);
  (* y = g^x *)
  Alcotest.(check bool) "public consistent" true
    (Bignum.equal k1.Elgamal.pub.Elgamal.y
       (Bignum.mod_pow ~base:params.Elgamal.g ~exp:k1.Elgamal.x
          ~modulus:params.Elgamal.p))

let test_roundtrip () =
  let key = Elgamal.generate rng params in
  List.iter
    (fun msg ->
      match Elgamal.encrypt rng key.Elgamal.pub msg with
      | Error e -> Alcotest.fail e
      | Ok ct -> (
          match Elgamal.decrypt key ct with
          | Ok m -> Alcotest.(check string) "roundtrip" msg m
          | Error e -> Alcotest.fail e))
    [ ""; "x"; "a secret password"; String.make 40 '\000'; String.make 50 '\xff' ]

let test_probabilistic () =
  let key = Elgamal.generate rng params in
  let c1 = Result.get_ok (Elgamal.encrypt rng key.Elgamal.pub "same message") in
  let c2 = Result.get_ok (Elgamal.encrypt rng key.Elgamal.pub "same message") in
  Alcotest.(check bool) "randomized" true (c1 <> c2)

let test_too_long () =
  let key = Elgamal.generate rng params in
  Alcotest.(check bool) "oversized rejected" true
    (Result.is_error (Elgamal.encrypt rng key.Elgamal.pub (String.make 64 'x')))

let test_wrong_key () =
  let k1 = Elgamal.generate rng params in
  let k2 = Elgamal.generate rng params in
  let ct = Result.get_ok (Elgamal.encrypt rng k1.Elgamal.pub "for k1 only") in
  match Elgamal.decrypt k2 ct with
  | Ok m -> Alcotest.(check bool) "wrong key garbles" true (m <> "for k1 only")
  | Error _ -> ()

let test_malformed_ct () =
  let key = Elgamal.generate rng params in
  Alcotest.(check bool) "garbage" true (Result.is_error (Elgamal.decrypt key "garbage"));
  Alcotest.(check bool) "empty" true (Result.is_error (Elgamal.decrypt key ""))

let test_serialization () =
  let key = Elgamal.generate rng params in
  (match Elgamal.public_of_string (Elgamal.public_to_string key.Elgamal.pub) with
  | Ok pub -> Alcotest.(check bool) "public" true (Bignum.equal pub.Elgamal.y key.Elgamal.pub.Elgamal.y)
  | Error e -> Alcotest.fail e);
  match Elgamal.private_of_string (Elgamal.private_to_string key) with
  | Ok k -> Alcotest.(check bool) "private" true (Bignum.equal k.Elgamal.x key.Elgamal.x)
  | Error e -> Alcotest.fail e

(* Section 7.4.1: the whole point — ElGamal keygen must be far cheaper
   than RSA keygen at the same size when the group is shared. *)
let test_keygen_cost_model () =
  let module Timing = Flicker_hw.Timing in
  let module Machine = Flicker_hw.Machine in
  let module Clock = Flicker_hw.Clock in
  let m = Machine.create ~memory_size:(1024 * 1024) Timing.default in
  let t0 = Clock.now m.Machine.clock in
  ignore (Flicker_slb.Mod_crypto.elgamal_generate m rng params);
  let elgamal_ms = Clock.now m.Machine.clock -. t0 in
  let t1 = Clock.now m.Machine.clock in
  ignore (Flicker_slb.Mod_crypto.rsa_generate m rng ~bits:512);
  let rsa_ms = Clock.now m.Machine.clock -. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "elgamal (%.2f ms) at least 10x cheaper than rsa (%.2f ms)"
       elgamal_ms rsa_ms)
    true
    (elgamal_ms *. 10.0 < rsa_ms)

let prop_roundtrip =
  let key = Elgamal.generate rng params in
  QCheck.Test.make ~name:"elgamal roundtrip" ~count:40
    QCheck.(string_of_size Gen.(int_range 0 50))
    (fun msg ->
      match Elgamal.encrypt rng key.Elgamal.pub msg with
      | Error _ -> QCheck.assume_fail ()
      | Ok ct -> Elgamal.decrypt key ct = Ok msg)

let () =
  Alcotest.run "elgamal"
    [
      ( "elgamal",
        [
          Alcotest.test_case "params" `Quick test_params;
          Alcotest.test_case "keygen" `Quick test_keygen;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "probabilistic" `Quick test_probabilistic;
          Alcotest.test_case "too long" `Quick test_too_long;
          Alcotest.test_case "wrong key" `Quick test_wrong_key;
          Alcotest.test_case "malformed" `Quick test_malformed_ct;
          Alcotest.test_case "serialization" `Quick test_serialization;
          Alcotest.test_case "keygen cost vs rsa" `Quick test_keygen_cost_model;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ]);
    ]
