test/test_apps_distcomp.mli:
