test/test_apps_rootkit.mli:
