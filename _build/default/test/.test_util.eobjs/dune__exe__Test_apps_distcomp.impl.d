test/test_apps_distcomp.ml: Alcotest Distcomp Flicker_apps Flicker_core Flicker_crypto Flicker_hw List Platform Printf Result String
