test/test_txt.ml: Alcotest Attestation Flicker_core Flicker_crypto Flicker_hw Flicker_slb Flicker_tpm Measurement Platform Prng Result Sealed_storage Session Sha1 String Util Verifier
