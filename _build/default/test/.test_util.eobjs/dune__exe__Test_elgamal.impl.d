test/test_elgamal.ml: Alcotest Bignum Elgamal Flicker_crypto Flicker_hw Flicker_slb Gen Lazy List Primality Printf Prng QCheck QCheck_alcotest Result String
