test/test_elgamal.mli:
