test/test_rsa.ml: Alcotest Bignum Bytes Char Flicker_crypto Gen Hash List Pkcs1 Primality Prng QCheck QCheck_alcotest Result Rsa String
