test/test_apps_rootkit.ml: Alcotest Attestation Flicker_apps Flicker_core Flicker_crypto Flicker_os Flicker_tpm Platform Prng Rootkit_detector Session String Verifier
