test/test_adversary.mli:
