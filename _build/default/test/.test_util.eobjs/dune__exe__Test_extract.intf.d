test/test_extract.mli:
