test/test_extract.ml: Alcotest Extract Flicker_extract Flicker_slb Format List Result String
