test/test_attestation.mli:
