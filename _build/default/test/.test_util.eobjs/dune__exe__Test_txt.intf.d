test/test_txt.mli:
