test/test_apps_ssh.mli:
