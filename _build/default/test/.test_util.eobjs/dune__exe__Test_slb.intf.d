test/test_slb.mli:
