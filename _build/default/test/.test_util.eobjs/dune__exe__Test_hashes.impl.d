test/test_hashes.ml: Alcotest Bytes Char Flicker_crypto Gen Hash Hmac List Md5 Printf QCheck QCheck_alcotest Sha1 Sha256 Sha512 String Util
