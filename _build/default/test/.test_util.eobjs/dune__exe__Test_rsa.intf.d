test/test_rsa.mli:
