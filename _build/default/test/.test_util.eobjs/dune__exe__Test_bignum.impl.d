test/test_bignum.ml: Alcotest Bignum Flicker_crypto List Prng QCheck QCheck_alcotest String
