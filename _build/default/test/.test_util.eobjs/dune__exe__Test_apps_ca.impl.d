test/test_apps_ca.ml: Alcotest Bignum Cert_authority Flicker_apps Flicker_core Flicker_crypto Flicker_os Flicker_slb Platform Printf Prng Result Rsa String
