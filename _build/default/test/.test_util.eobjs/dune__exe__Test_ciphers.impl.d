test/test_ciphers.ml: Aes Alcotest Bytes Flicker_crypto Gen List QCheck QCheck_alcotest Rc4 Sha256 String Util
