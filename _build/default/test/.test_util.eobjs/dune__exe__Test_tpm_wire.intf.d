test/test_tpm_wire.mli:
