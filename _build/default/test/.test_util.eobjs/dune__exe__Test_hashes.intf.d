test/test_hashes.mli:
