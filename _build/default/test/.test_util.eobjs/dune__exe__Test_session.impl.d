test/test_session.ml: Alcotest Flicker_core Flicker_hw Flicker_os Flicker_slb Flicker_tpm List Measurement Platform Printf Result Session String
