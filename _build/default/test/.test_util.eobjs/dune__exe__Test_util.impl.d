test/test_util.ml: Alcotest Bytes Flicker_crypto Gen List QCheck QCheck_alcotest Result String Util
