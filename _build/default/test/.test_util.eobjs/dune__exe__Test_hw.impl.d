test/test_hw.ml: Alcotest Apic Clock Cpu Dev Dma Flicker_hw Gen List Machine Memory QCheck QCheck_alcotest Result Skinit String Timing
