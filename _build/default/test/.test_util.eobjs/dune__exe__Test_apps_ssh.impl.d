test/test_apps_ssh.ml: Alcotest Attestation Flicker_apps Flicker_core Flicker_crypto Flicker_os Flicker_slb Flicker_tpm Md5crypt Platform Prng Result Session Ssh_auth String
