test/test_prng.ml: Alcotest Array Char Flicker_crypto Fun List Prng QCheck QCheck_alcotest String
