test/test_os.ml: Alcotest Blockdev Flicker_crypto Flicker_hw Flicker_os Kernel List Md5 Os_state Prng Result Scheduler String Sysfs
