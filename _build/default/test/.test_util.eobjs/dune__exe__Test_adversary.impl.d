test/test_adversary.ml: Alcotest Flicker_core Flicker_crypto Flicker_hw Flicker_os Flicker_slb Flicker_tpm List Measurement Platform Result Sealed_storage Session Sha1 String
