test/test_tpm_wire.ml: Alcotest Auth Flicker_crypto Flicker_hw Flicker_slb Flicker_tpm Hash List Pkcs1 Prng QCheck QCheck_alcotest Result Sha1 String Tpm Tpm_types Tpm_wire Util
