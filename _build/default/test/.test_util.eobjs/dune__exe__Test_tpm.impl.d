test/test_tpm.ml: Alcotest Auth Bytes Char Flicker_crypto Flicker_hw Flicker_slb Flicker_tpm Gen Hash List Nvram Pcr Pkcs1 Privacy_ca Prng QCheck QCheck_alcotest Result Sha1 String Tpm Tpm_types
