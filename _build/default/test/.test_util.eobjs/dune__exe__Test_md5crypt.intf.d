test/test_md5crypt.mli:
