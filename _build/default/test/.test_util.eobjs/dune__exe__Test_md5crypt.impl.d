test/test_md5crypt.ml: Alcotest Flicker_crypto Gen List Md5crypt QCheck QCheck_alcotest String
