test/test_apps_ca.mli:
