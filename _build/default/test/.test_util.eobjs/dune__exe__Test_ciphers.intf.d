test/test_ciphers.mli:
