open Flicker_crypto
module B = Bignum

let dec = B.of_decimal_string
let check_dec msg expected v = Alcotest.(check string) msg expected (B.to_decimal_string v)

let test_of_to_int () =
  Alcotest.(check int) "small" 42 (B.to_int (B.of_int 42));
  Alcotest.(check int) "zero" 0 (B.to_int B.zero);
  Alcotest.(check int) "large" max_int (B.to_int (B.of_int max_int));
  Alcotest.check_raises "negative" (Invalid_argument "Bignum.of_int: negative")
    (fun () -> ignore (B.of_int (-1)))

let test_compare () =
  Alcotest.(check bool) "lt" true (B.compare (B.of_int 3) (B.of_int 5) < 0);
  Alcotest.(check bool) "gt" true (B.compare (dec "100000000000000000000") (B.of_int 5) > 0);
  Alcotest.(check bool) "eq" true (B.equal (dec "123") (B.of_int 123))

let test_add_sub () =
  check_dec "add" "10000000000000000000000000000"
    (B.add (dec "9999999999999999999999999999") B.one);
  check_dec "sub" "9999999999999999999999999999"
    (B.sub (dec "10000000000000000000000000000") B.one);
  check_dec "sub to zero" "0" (B.sub (dec "12345") (dec "12345"));
  Alcotest.check_raises "negative result"
    (Invalid_argument "Bignum.sub: negative result") (fun () ->
      ignore (B.sub B.one B.two))

let test_mul () =
  check_dec "mul" "121932631137021795226185032733622923332237463801111263526900"
    (B.mul
       (dec "123456789012345678901234567890")
       (dec "987654321098765432109876543210"));
  check_dec "mul zero" "0" (B.mul B.zero (dec "999999999999"));
  check_dec "mul one" "999999999999" (B.mul B.one (dec "999999999999"))

let test_divmod () =
  let a = dec "987654321098765432109876543210987654321" in
  let b = dec "123456789012345678901" in
  let q, r = B.divmod a b in
  Alcotest.(check bool) "r < b" true (B.compare r b < 0);
  check_dec "reconstruct" (B.to_decimal_string a) (B.add (B.mul q b) r);
  let q2, r2 = B.divmod (B.of_int 17) (B.of_int 5) in
  Alcotest.(check int) "q" 3 (B.to_int q2);
  Alcotest.(check int) "r" 2 (B.to_int r2);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_divmod_knuth_addback () =
  (* exercise the rare add-back correction: divisor with small second limb *)
  let b = B.add (B.shift_left B.one 52) B.one in
  let a = B.sub (B.shift_left B.one 104) B.one in
  let q, r = B.divmod a b in
  check_dec "reconstruct addback" (B.to_decimal_string a) (B.add (B.mul q b) r);
  Alcotest.(check bool) "r < b" true (B.compare r b < 0)

let test_rem_int () =
  Alcotest.(check int) "small" 2 (B.rem_int (B.of_int 17) 5);
  Alcotest.(check int) "big" 1
    (B.rem_int (dec "1000000000000000000000000000001") 10);
  (* wide modulus path (d >= 2^26) *)
  let d = (1 lsl 40) + 123 in
  let a = dec "123456789012345678901234567890" in
  let _, r = B.divmod a (B.of_int d) in
  Alcotest.(check int) "wide" (B.to_int r) (B.rem_int a d)

let test_shifts () =
  check_dec "shl" "1024" (B.shift_left B.one 10);
  check_dec "shr" "1" (B.shift_right (B.of_int 1024) 10);
  check_dec "shr to zero" "0" (B.shift_right (B.of_int 1024) 11);
  let v = dec "123456789012345678901234567890" in
  check_dec "shl/shr roundtrip" (B.to_decimal_string v)
    (B.shift_right (B.shift_left v 77) 77)

let test_bits () =
  Alcotest.(check int) "bit_length 0" 0 (B.bit_length B.zero);
  Alcotest.(check int) "bit_length 1" 1 (B.bit_length B.one);
  Alcotest.(check int) "bit_length 255" 8 (B.bit_length (B.of_int 255));
  Alcotest.(check int) "bit_length 2^100" 101 (B.bit_length (B.shift_left B.one 100));
  Alcotest.(check bool) "test_bit" true (B.test_bit (B.of_int 5) 2);
  Alcotest.(check bool) "test_bit false" false (B.test_bit (B.of_int 5) 1)

let test_mod_pow () =
  (* Fermat: 7^560 = 1 mod 561 is a Carmichael special; also real prime *)
  check_dec "carmichael" "1"
    (B.mod_pow ~base:(B.of_int 7) ~exp:(B.of_int 560) ~modulus:(B.of_int 561));
  check_dec "fermat" "1"
    (B.mod_pow ~base:(B.of_int 2) ~exp:(B.of_int 102) ~modulus:(B.of_int 103));
  check_dec "zero exp" "1"
    (B.mod_pow ~base:(dec "987654321") ~exp:B.zero ~modulus:(dec "1000003"));
  check_dec "mod one" "0" (B.mod_pow ~base:(B.of_int 5) ~exp:(B.of_int 5) ~modulus:B.one);
  (* 2^1000 mod a large modulus, checked against a Python-computed value *)
  check_dec "big modpow" "351847868703573052863291"
    (B.mod_pow ~base:B.two ~exp:(B.of_int 1000)
       ~modulus:(dec "604462909807314587353111"))

let test_mod_pow_reference () =
  (* independent check against repeated multiplication *)
  let m = B.of_int 1000003 in
  let naive b e =
    let r = ref B.one in
    for _ = 1 to e do
      r := B.rem (B.mul !r b) m
    done;
    !r
  in
  List.iter
    (fun (b, e) ->
      Alcotest.(check string) "matches naive"
        (B.to_decimal_string (naive (B.of_int b) e))
        (B.to_decimal_string
           (B.mod_pow ~base:(B.of_int b) ~exp:(B.of_int e) ~modulus:m)))
    [ (2, 100); (12345, 77); (999999, 3) ]

let test_gcd_modinv () =
  check_dec "gcd" "6" (B.gcd (B.of_int 48) (B.of_int 18));
  check_dec "gcd coprime" "1" (B.gcd (B.of_int 17) (B.of_int 31));
  (match B.mod_inverse (B.of_int 3) (B.of_int 11) with
  | Some inv -> Alcotest.(check int) "3^-1 mod 11" 4 (B.to_int inv)
  | None -> Alcotest.fail "inverse exists");
  (match B.mod_inverse (B.of_int 4) (B.of_int 8) with
  | Some _ -> Alcotest.fail "no inverse for gcd>1"
  | None -> ());
  let m = dec "170141183460469231731687303715884105727" (* 2^127-1, prime *) in
  let a = dec "123456789012345678901234567890" in
  match B.mod_inverse a m with
  | None -> Alcotest.fail "inverse mod prime exists"
  | Some inv -> check_dec "a * a^-1 = 1" "1" (B.rem (B.mul a inv) m)

let test_bytes_roundtrip () =
  let v = dec "123456789012345678901234567890" in
  Alcotest.(check string) "bytes" (B.to_decimal_string v)
    (B.to_decimal_string (B.of_bytes_be (B.to_bytes_be v)));
  Alcotest.(check int) "padded length" 32 (String.length (B.to_bytes_be ~pad_to:32 v));
  Alcotest.(check string) "zero encoding" "" (B.to_bytes_be B.zero);
  Alcotest.(check string) "hex" "0102" (B.to_hex (B.of_int 258))

let test_decimal_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Bignum.of_decimal_string: empty")
    (fun () -> ignore (B.of_decimal_string ""));
  Alcotest.check_raises "non-digit"
    (Invalid_argument "Bignum.of_decimal_string: non-digit") (fun () ->
      ignore (B.of_decimal_string "12a3"))

let test_random () =
  let rng = Prng.create ~seed:"bignum-random" in
  let rand = Prng.bytes rng in
  for _ = 1 to 50 do
    let v = B.random_bits rand 65 in
    Alcotest.(check bool) "within 2^65" true (B.bit_length v <= 65)
  done;
  let bound = dec "1000000000000000000000" in
  for _ = 1 to 50 do
    let v = B.random_below rand bound in
    Alcotest.(check bool) "below bound" true (B.compare v bound < 0)
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Bignum.random_below: zero bound") (fun () ->
      ignore (B.random_below rand B.zero))

(* qcheck generator: random bignum from decimal digits *)
let gen_bignum =
  QCheck.Gen.(
    map
      (fun digits ->
        let s = String.concat "" (List.map string_of_int digits) in
        dec (if s = "" then "0" else s))
      (list_size (int_range 1 30) (int_range 0 9)))

let arb_bignum = QCheck.make ~print:B.to_decimal_string gen_bignum

let prop_add_comm =
  QCheck.Test.make ~name:"addition commutes" ~count:300 (QCheck.pair arb_bignum arb_bignum)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_mul_distributes =
  QCheck.Test.make ~name:"multiplication distributes" ~count:200
    (QCheck.triple arb_bignum arb_bignum arb_bignum) (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_divmod =
  QCheck.Test.make ~name:"divmod reconstructs" ~count:300
    (QCheck.pair arb_bignum arb_bignum) (fun (a, b) ->
      QCheck.assume (not (B.is_zero b));
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r) && B.compare r b < 0)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:300 arb_bignum (fun v ->
      B.equal v (B.of_bytes_be (B.to_bytes_be v)))

let prop_decimal_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:300 arb_bignum (fun v ->
      B.equal v (dec (B.to_decimal_string v)))

let prop_shift =
  QCheck.Test.make ~name:"shift left is *2^k" ~count:200
    (QCheck.pair arb_bignum (QCheck.int_range 0 80)) (fun (v, k) ->
      B.equal (B.shift_left v k) (B.mul v (B.mod_pow ~base:B.two ~exp:(B.of_int k) ~modulus:(B.shift_left B.one 200))))

let () =
  Alcotest.run "bignum"
    [
      ( "bignum",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "divmod add-back" `Quick test_divmod_knuth_addback;
          Alcotest.test_case "rem_int" `Quick test_rem_int;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "bit ops" `Quick test_bits;
          Alcotest.test_case "mod_pow" `Quick test_mod_pow;
          Alcotest.test_case "mod_pow vs naive" `Quick test_mod_pow_reference;
          Alcotest.test_case "gcd / modinv" `Quick test_gcd_modinv;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "decimal errors" `Quick test_decimal_errors;
          Alcotest.test_case "random draws" `Quick test_random;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_comm;
            prop_mul_distributes;
            prop_divmod;
            prop_bytes_roundtrip;
            prop_decimal_roundtrip;
            prop_shift;
          ] );
    ]
