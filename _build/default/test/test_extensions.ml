(* Tests for the paper's discussion-section features: the BOINC server's
   attested result acceptance, NV-storage replay protection with crash
   detection, the SLB Core watchdog, trusted-boot (IMA) attestation and
   the verification-burden comparison, and Flicker-aware device drivers. *)

open Flicker_crypto
open Flicker_core
open Flicker_apps
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Privacy_ca = Flicker_tpm.Privacy_ca
module Measured_boot = Flicker_os.Measured_boot
module Blockdev = Flicker_os.Blockdev
module Scheduler = Flicker_os.Scheduler
module Tpm = Flicker_tpm.Tpm

let ca = Privacy_ca.create (Prng.create ~seed:"ext-ca") ~name:"ExtCA" ~key_bits:512
let ca_key = Privacy_ca.public_key ca
let make_platform ~seed = Platform.create ~seed ~key_bits:512 ~ca ()

(* --- BOINC server with attested submissions --- *)

let run_unit_for_server server client =
  match Boinc.next_unit server with
  | None -> Alcotest.fail "no unit available"
  | Some unit_ -> (
      (* work until one slice from done, then run the final session
         against the server's nonce *)
      match Distcomp.start client unit_ ~slice_ms:5.0 with
      | Error e -> Alcotest.fail e
      | Ok step ->
          let rec advance step =
            (* finish when the remaining candidates fit one more slice *)
            let remaining =
              step.Distcomp.state.Distcomp.unit_.Distcomp.hi
              - step.Distcomp.state.Distcomp.next_candidate + 1
            in
            if step.Distcomp.state.Distcomp.finished then
              Alcotest.fail "finished before the attested session"
            else if float_of_int remaining <= 5.0 *. Distcomp.candidates_per_ms then begin
              let nonce = Boinc.fresh_nonce server in
              match Distcomp.resume_attested ~nonce client step.Distcomp.state ~slice_ms:5.0 with
              | Error e -> Alcotest.fail e
              | Ok (final_step, pal_inputs) -> (final_step, pal_inputs, nonce)
            end
            else begin
              match Distcomp.resume client step.Distcomp.state ~slice_ms:5.0 with
              | Error e -> Alcotest.fail e
              | Ok step -> advance step
            end
          in
          let final_step, pal_inputs, nonce = advance step in
          Alcotest.(check bool) "finished" true final_step.Distcomp.state.Distcomp.finished;
          (unit_, final_step, pal_inputs, nonce))

let test_boinc_accepts_honest_result () =
  let server = Boinc.create ~ca_key ~number:9699690 ~lo:2 ~hi:4000 ~unit_size:2000 in
  let p = make_platform ~seed:"boinc-honest" in
  let client = Distcomp.create_client p in
  let _unit, final_step, pal_inputs, nonce = run_unit_for_server server client in
  let evidence =
    Attestation.generate p ~nonce ~inputs:pal_inputs
      ~outputs:final_step.Distcomp.outcome.Session.outputs
  in
  let submission =
    {
      Boinc.final_state = final_step.Distcomp.state;
      pal_inputs;
      evidence;
      sub_nonce = nonce;
      volunteer_slb_base = p.Platform.slb_base;
    }
  in
  (match Boinc.submit server submission with
  | Ok () -> ()
  | Error r -> Alcotest.fail (Boinc.rejection_to_string r));
  Alcotest.(check bool) "divisors recorded" true (Boinc.accepted_divisors server <> []);
  Alcotest.(check int) "unit retired" 0 (Boinc.outstanding_units server);
  (* replaying the same submission fails: the nonce was consumed *)
  match Boinc.submit server submission with
  | Error Boinc.Unknown_nonce -> ()
  | _ -> Alcotest.fail "submission replay accepted"

let test_boinc_rejects_forged_results () =
  let server = Boinc.create ~ca_key ~number:9699690 ~lo:2 ~hi:2000 ~unit_size:2000 in
  let p = make_platform ~seed:"boinc-forged" in
  let client = Distcomp.create_client p in
  let _unit, final_step, pal_inputs, nonce = run_unit_for_server server client in
  let honest = final_step.Distcomp.state in
  (* the volunteer's OS claims extra divisors (to earn more credit, say);
     divisors that do divide, so the spot check alone cannot catch it *)
  let forged_state =
    { honest with Distcomp.divisors_found = 2 :: honest.Distcomp.divisors_found }
  in
  let evidence =
    Attestation.generate p ~nonce ~inputs:pal_inputs
      ~outputs:final_step.Distcomp.outcome.Session.outputs
  in
  let submission =
    {
      Boinc.final_state = forged_state;
      pal_inputs;
      evidence;
      sub_nonce = nonce;
      volunteer_slb_base = p.Platform.slb_base;
    }
  in
  match Boinc.submit server submission with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forged results accepted"

let test_boinc_rejects_bogus_divisor () =
  let server = Boinc.create ~ca_key ~number:101 (* prime *) ~lo:2 ~hi:2500 ~unit_size:2500 in
  let p = make_platform ~seed:"boinc-bogus" in
  let client = Distcomp.create_client p in
  let unit_, final_step, pal_inputs, nonce = run_unit_for_server server client in
  ignore unit_;
  let forged =
    { final_step.Distcomp.state with Distcomp.divisors_found = [ 7 ] }
  in
  let evidence =
    Attestation.generate p ~nonce ~inputs:pal_inputs
      ~outputs:final_step.Distcomp.outcome.Session.outputs
  in
  match
    Boinc.submit server
      {
        Boinc.final_state = forged;
        pal_inputs;
        evidence;
        sub_nonce = nonce;
        volunteer_slb_base = p.Platform.slb_base;
      }
  with
  | Error (Boinc.Bogus_divisor 7) -> ()
  | Error r -> Alcotest.fail ("wrong rejection: " ^ Boinc.rejection_to_string r)
  | Ok () -> Alcotest.fail "bogus divisor accepted"

let test_boinc_unit_management () =
  let server = Boinc.create ~ca_key ~number:1000 ~lo:2 ~hi:101 ~unit_size:25 in
  let units = List.init 4 (fun _ -> Boinc.next_unit server) in
  Alcotest.(check int) "four units" 4
    (List.length (List.filter Option.is_some units));
  Alcotest.(check bool) "exhausted" true (Boinc.next_unit server = None);
  Alcotest.(check int) "all outstanding" 4 (Boinc.outstanding_units server);
  Alcotest.(check bool) "not complete" false (Boinc.complete server);
  (* ranges tile [2, 101] without overlap *)
  let ranges =
    List.filter_map (Option.map (fun u -> (u.Distcomp.lo, u.Distcomp.hi))) units
  in
  Alcotest.(check (list (pair int int))) "tiling"
    [ (2, 26); (27, 51); (52, 76); (77, 101) ]
    (List.sort compare ranges)

(* --- NV-based replay protection (Section 4.3.2) --- *)

let nv_state : (string, string) Hashtbl.t = Hashtbl.create 4

let nv_pal =
  Pal.define ~name:"ext-nv-replay" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
    (fun env ->
      match Util.decode_fields env.Pal_env.inputs with
      | Ok [ "init"; index ] -> (
          match
            Replay.Nv.init env ~owner_auth:(String.make 20 '\000')
              ~nv_index:(int_of_string index)
          with
          | Ok _ -> Pal_env.set_output env "ok"
          | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
      | Ok [ "seal"; index; data ] -> (
          let guard = { Replay.Nv.nv_index = int_of_string index } in
          match Replay.Nv.seal env guard data with
          | Ok blob -> Pal_env.set_output env (Util.encode_fields [ "blob"; blob ])
          | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
      | Ok [ "bump"; index ] -> (
          (* simulate the crash: increment without persisting a blob *)
          let guard = { Replay.Nv.nv_index = int_of_string index } in
          match Replay.Nv.seal env guard "lost in the crash" with
          | Ok _ -> Pal_env.set_output env "ok" (* blob intentionally dropped *)
          | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
      | Ok [ "unseal"; index; blob ] -> (
          let guard = { Replay.Nv.nv_index = int_of_string index } in
          match Replay.Nv.unseal env guard blob with
          | Ok data -> Pal_env.set_output env (Util.encode_fields [ "data"; data ])
          | Error e ->
              Pal_env.set_output env (Format.asprintf "ERROR: %a" Replay.pp_unseal_error e))
      | Ok _ | Error _ -> Pal_env.set_output env "ERROR: mode")

let run_nv p fields =
  match Session.execute p ~pal:nv_pal ~inputs:(Util.encode_fields fields) () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome -> outcome.Session.outputs

let contains ~needle hay =
  let h = String.lowercase_ascii hay and n = String.lowercase_ascii needle in
  let rec scan i =
    i + String.length n <= String.length h
    && (String.sub h i (String.length n) = n || scan (i + 1))
  in
  scan 0

let test_nv_replay_protocol () =
  ignore nv_state;
  let p = make_platform ~seed:"nv-replay" in
  Alcotest.(check string) "init" "ok" (run_nv p [ "init"; "42" ]);
  let blob1 =
    match Util.decode_fields (run_nv p [ "seal"; "42"; "v1" ]) with
    | Ok [ "blob"; b ] -> b
    | _ -> Alcotest.fail "seal v1"
  in
  (match Util.decode_fields (run_nv p [ "unseal"; "42"; blob1 ]) with
  | Ok [ "data"; d ] -> Alcotest.(check string) "current v1" "v1" d
  | _ -> Alcotest.fail "unseal v1");
  let blob2 =
    match Util.decode_fields (run_nv p [ "seal"; "42"; "v2" ]) with
    | Ok [ "blob"; b ] -> b
    | _ -> Alcotest.fail "seal v2"
  in
  ignore blob2;
  (* blob1 is one behind -> crash-or-replay, not silently accepted *)
  Alcotest.(check bool) "stale flagged" true
    (contains ~needle:"error" (run_nv p [ "unseal"; "42"; blob1 ]));
  (* another version: blob1 is now an unambiguous replay *)
  (match Util.decode_fields (run_nv p [ "seal"; "42"; "v3" ]) with
  | Ok [ "blob"; _ ] -> ()
  | _ -> Alcotest.fail "seal v3");
  Alcotest.(check bool) "replay detected" true
    (contains ~needle:"replay" (run_nv p [ "unseal"; "42"; blob1 ]))

let test_nv_crash_detection () =
  let p = make_platform ~seed:"nv-crash" in
  Alcotest.(check string) "init" "ok" (run_nv p [ "init"; "43" ]);
  let blob =
    match Util.decode_fields (run_nv p [ "seal"; "43"; "before crash" ]) with
    | Ok [ "blob"; b ] -> b
    | _ -> Alcotest.fail "seal"
  in
  (* crash: the counter advances but the new ciphertext is lost *)
  Alcotest.(check string) "bump" "ok" (run_nv p [ "bump"; "43" ]);
  let out = run_nv p [ "unseal"; "43"; blob ] in
  Alcotest.(check bool) "crash signature reported" true
    (contains ~needle:"out of sync" out || contains ~needle:"crash" out)

let test_nv_counter_gated_from_os () =
  (* the NV space is PCR-gated: with PCR 17 capped, the OS cannot read or
     advance the counter *)
  let p = make_platform ~seed:"nv-gate" in
  Alcotest.(check string) "init" "ok" (run_nv p [ "init"; "44" ]);
  (match Tpm.nv_read p.Platform.tpm ~index:44 with
  | Error Flicker_tpm.Tpm_types.Wrong_pcr_value -> ()
  | Error e -> Alcotest.fail (Flicker_tpm.Tpm_types.error_to_string e)
  | Ok _ -> Alcotest.fail "OS read the gated counter");
  match Tpm.nv_write p.Platform.tpm ~index:44 "\xff\xff\xff\xff" with
  | Error Flicker_tpm.Tpm_types.Wrong_pcr_value -> ()
  | _ -> Alcotest.fail "OS advanced the gated counter"

(* --- the SLB Core watchdog (Section 5.1.2) --- *)

let test_watchdog_aborts_runaway_pal () =
  let runaway =
    Pal.define ~name:"ext-runaway" (fun env ->
        Pal_env.set_output env "about to spin";
        Pal_env.compute env ~ms:60_000.0)
  in
  let p = make_platform ~seed:"watchdog" in
  match Session.execute p ~pal:runaway ~time_limit_ms:1000.0 () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome ->
      Alcotest.(check bool) "fault recorded" true
        (match outcome.Session.pal_fault with
        | Some msg -> contains ~needle:"watchdog" msg
        | None -> false);
      Alcotest.(check string) "outputs discarded" "" outcome.Session.outputs

let test_watchdog_spares_wellbehaved_pal () =
  let prompt =
    Pal.define ~name:"ext-prompt" (fun env ->
        Pal_env.compute env ~ms:50.0;
        Pal_env.set_output env "done in time")
  in
  let p = make_platform ~seed:"watchdog-ok" in
  match Session.execute p ~pal:prompt ~time_limit_ms:1000.0 () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome ->
      Alcotest.(check string) "outputs kept" "done in time" outcome.Session.outputs;
      Alcotest.(check bool) "no fault" true (outcome.Session.pal_fault = None)

let test_watchdog_validation () =
  let pal = Pal.define ~name:"ext-wd-val" (fun env -> Pal_env.set_output env "") in
  let p = make_platform ~seed:"watchdog-val" in
  Alcotest.(check bool) "non-positive limit rejected" true
    (match Session.execute p ~pal ~time_limit_ms:0.0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- trusted boot (IMA) vs Flicker --- *)

let test_measured_boot_log_replay () =
  let p = make_platform ~seed:"ima" in
  Tpm.reboot p.Platform.tpm;
  let ima = Measured_boot.create p.Platform.tpm in
  Measured_boot.boot_sequence ima p.Platform.kernel;
  Measured_boot.run_application ima ~name:"/usr/bin/seti" ~code:"seti-binary";
  let log = Measured_boot.log ima in
  Alcotest.(check bool) "log populated" true (List.length log > 5);
  (* the replayed log matches the live PCRs *)
  List.iter
    (fun (pcr, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "PCR %d replays" pcr)
        expected
        (Result.get_ok (Tpm.pcr_read p.Platform.tpm pcr)))
    (Trusted_boot.replay_log log)

let test_trusted_boot_attestation () =
  let p = make_platform ~seed:"ima-attest" in
  Tpm.reboot p.Platform.tpm;
  let ima = Measured_boot.create p.Platform.tpm in
  Measured_boot.boot_sequence ima p.Platform.kernel;
  let log = Measured_boot.log ima in
  let nonce = Platform.fresh_nonce p in
  let quote = Tpm.quote p.Platform.tpm ~nonce ~selection:(Measured_boot.pcrs_in_use ima) in
  (match
     Trusted_boot.verify ~ca_key ~aik_cert:p.Platform.aik_cert ~nonce ~log quote
   with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Trusted_boot.failure_to_string f));
  (* hiding a log entry (to conceal a loaded rootkit) breaks replay *)
  let censored = List.filter (fun e -> e.Measured_boot.component <> "BIOS") log in
  (match Trusted_boot.verify ~ca_key ~aik_cert:p.Platform.aik_cert ~nonce ~log:censored quote with
  | Error (Trusted_boot.Log_mismatch _) -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Trusted_boot.failure_to_string f)
  | Ok () -> Alcotest.fail "censored log accepted");
  (* an extra (fabricated) entry also breaks it *)
  let padded =
    log @ [ { Measured_boot.pcr_index = 10; template_hash = Sha1.digest "x"; component = "fake" } ]
  in
  match Trusted_boot.verify ~ca_key ~aik_cert:p.Platform.aik_cert ~nonce ~log:padded quote with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "padded log accepted"

let test_verification_burden_comparison () =
  let p = make_platform ~seed:"burden" in
  Tpm.reboot p.Platform.tpm;
  let ima = Measured_boot.create p.Platform.tpm in
  Measured_boot.boot_sequence ima p.Platform.kernel;
  (* a realistic day: many applications run and are measured *)
  for i = 1 to 40 do
    Measured_boot.run_application ima ~name:(Printf.sprintf "/usr/bin/app%d" i)
      ~code:(Printf.sprintf "binary-%d" i)
  done;
  let tb = Trusted_boot.trusted_boot_burden (Measured_boot.log ima) in
  let pal =
    Pal.define ~name:"ext-burden-pal" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env -> Pal_env.set_output env "")
  in
  let fl = Trusted_boot.flicker_burden pal in
  Alcotest.(check bool) "trusted boot assesses the whole stack" true
    tb.Trusted_boot.includes_full_os;
  Alcotest.(check bool) "flicker does not" false fl.Trusted_boot.includes_full_os;
  Alcotest.(check bool)
    (Printf.sprintf "burden %d vs %d" tb.Trusted_boot.components_to_assess
       fl.Trusted_boot.components_to_assess)
    true
    (fl.Trusted_boot.components_to_assess * 10 < tb.Trusted_boot.components_to_assess)

let test_ima_misses_runtime_compromise () =
  (* Section 8's critique made executable: IMA measures components at
     load time, so a post-boot inline hook in already-measured kernel
     text leaves the event log verifying cleanly — while the Flicker
     rootkit detector, which hashes live memory, catches it *)
  let p = make_platform ~seed:"ima-blindspot" in
  Tpm.reboot p.Platform.tpm;
  let ima = Measured_boot.create p.Platform.tpm in
  Measured_boot.boot_sequence ima p.Platform.kernel;
  let log = Measured_boot.log ima in
  let d = Rootkit_detector.deploy_on p in
  (* the runtime compromise: after boot, malware patches kernel text *)
  Flicker_os.Kernel.install_text_rootkit p.Platform.kernel;
  Rootkit_detector.sync d;
  (* IMA: the log still replays against the live PCRs — attacker invisible *)
  let nonce = Platform.fresh_nonce p in
  let quote = Tpm.quote p.Platform.tpm ~nonce ~selection:(Measured_boot.pcrs_in_use ima) in
  (match Trusted_boot.verify ~ca_key ~aik_cert:p.Platform.aik_cert ~nonce ~log quote with
  | Ok () -> () (* verifies "clean": the blind spot *)
  | Error f -> Alcotest.fail ("IMA unexpectedly failed: " ^ Trusted_boot.failure_to_string f));
  (* Flicker: a fresh detector session sees the live bytes *)
  let nonce2 = Platform.fresh_nonce p in
  match Rootkit_detector.scan d ~nonce:nonce2 with
  | Error e -> Alcotest.fail e
  | Ok result -> (
      match Rootkit_detector.admin_check d ~ca_key result with
      | Rootkit_detector.Rootkit_detected _ -> ()
      | Rootkit_detector.Clean -> Alcotest.fail "flicker detector missed the rootkit"
      | Rootkit_detector.Attestation_rejected f ->
          Alcotest.fail (Verifier.failure_to_string f))

(* --- Flicker-aware device drivers (Section 7.5) --- *)

let copy_under_sessions ~driver ~session_ms p =
  let hd = Blockdev.create ~name:"hd" ~rate_kb_per_ms:50.0 in
  let usb = Blockdev.create ~name:"usb" ~rate_kb_per_ms:20.0 in
  let data = Prng.bytes (Prng.create ~seed:"drv") (256 * 1024) in
  Blockdev.store hd ~file:"f" data;
  let long_pal =
    Pal.define ~name:(Printf.sprintf "ext-drv-%.0f" session_ms) (fun env ->
        Pal_env.compute env ~ms:session_ms;
        Pal_env.set_output env "x")
  in
  let ran = ref false in
  let between_chunks () =
    if not !ran then begin
      ran := true;
      match Session.execute p ~pal:long_pal () with
      | Ok _ -> ()
      | Error e -> Format.kasprintf failwith "%a" Session.pp_error e
    end
  in
  let result =
    Blockdev.transfer p.Platform.machine ~scheduler:p.Platform.scheduler ~src:hd
      ~dst:usb ~file:"f" ~chunk_kb:64 ~between_chunks ~driver ()
  in
  (result, Blockdev.md5sum usb ~file:"f" = Ok (Md5.hex data))

let test_legacy_driver_survives_short_sessions () =
  (* the paper's 8.3 s sessions: below the 30 s timeout, no errors *)
  let p = make_platform ~seed:"drv-short" in
  let result, intact = copy_under_sessions ~driver:Blockdev.Legacy ~session_ms:8300.0 p in
  Alcotest.(check bool) "copy ok" true (Result.is_ok result);
  Alcotest.(check bool) "md5 intact" true intact

let test_legacy_driver_times_out_on_long_session () =
  let p = make_platform ~seed:"drv-long" in
  let result, _ = copy_under_sessions ~driver:Blockdev.Legacy ~session_ms:45_000.0 p in
  match result with
  | Error msg -> Alcotest.(check bool) "timeout reported" true (contains ~needle:"timeout" msg)
  | Ok _ -> Alcotest.fail "45 s stall did not time out a legacy driver"

let test_flicker_aware_driver_survives_long_session () =
  let p = make_platform ~seed:"drv-aware" in
  let result, intact =
    copy_under_sessions ~driver:Blockdev.Flicker_aware ~session_ms:45_000.0 p
  in
  Alcotest.(check bool) "copy ok" true (Result.is_ok result);
  Alcotest.(check bool) "md5 intact" true intact

let () =
  Alcotest.run "extensions"
    [
      ( "boinc server",
        [
          Alcotest.test_case "accepts honest result" `Quick test_boinc_accepts_honest_result;
          Alcotest.test_case "rejects forged results" `Quick test_boinc_rejects_forged_results;
          Alcotest.test_case "rejects bogus divisor" `Quick test_boinc_rejects_bogus_divisor;
          Alcotest.test_case "unit management" `Quick test_boinc_unit_management;
        ] );
      ( "nv replay",
        [
          Alcotest.test_case "protocol" `Quick test_nv_replay_protocol;
          Alcotest.test_case "crash detection" `Quick test_nv_crash_detection;
          Alcotest.test_case "counter gated from OS" `Quick test_nv_counter_gated_from_os;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "aborts runaway pal" `Quick test_watchdog_aborts_runaway_pal;
          Alcotest.test_case "spares well-behaved pal" `Quick test_watchdog_spares_wellbehaved_pal;
          Alcotest.test_case "validation" `Quick test_watchdog_validation;
        ] );
      ( "trusted boot",
        [
          Alcotest.test_case "log replay" `Quick test_measured_boot_log_replay;
          Alcotest.test_case "attestation" `Quick test_trusted_boot_attestation;
          Alcotest.test_case "burden comparison" `Quick test_verification_burden_comparison;
          Alcotest.test_case "ima runtime blind spot" `Quick test_ima_misses_runtime_compromise;
        ] );
      ( "drivers",
        [
          Alcotest.test_case "legacy + short sessions" `Quick
            test_legacy_driver_survives_short_sessions;
          Alcotest.test_case "legacy + long session" `Quick
            test_legacy_driver_times_out_on_long_session;
          Alcotest.test_case "flicker-aware + long session" `Quick
            test_flicker_aware_driver_survives_long_session;
        ] );
    ]
