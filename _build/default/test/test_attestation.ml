open Flicker_crypto
open Flicker_core
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Builder = Flicker_slb.Builder
module Privacy_ca = Flicker_tpm.Privacy_ca
module Tpm = Flicker_tpm.Tpm

let ca = Privacy_ca.create (Prng.create ~seed:"attest-ca") ~name:"AttestCA" ~key_bits:512
let ca_key = Privacy_ca.public_key ca
let make_platform ~seed = Platform.create ~seed ~key_bits:512 ~ca ()

let worker =
  Pal.define ~name:"attest-worker" (fun env ->
      Pal_env.set_output env ("result:" ^ env.Pal_env.inputs))

let run_and_attest platform ~inputs =
  let nonce = Platform.fresh_nonce platform in
  match Session.execute platform ~pal:worker ~inputs ~nonce () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome ->
      let evidence =
        Attestation.generate platform ~nonce ~inputs ~outputs:outcome.Session.outputs
      in
      let expectation =
        Verifier.expect ~pal:worker ~slb_base:platform.Platform.slb_base ~nonce ()
      in
      (outcome, evidence, expectation)

let test_accepts_honest_run () =
  let p = make_platform ~seed:"honest" in
  let _, evidence, expectation = run_and_attest p ~inputs:"data" in
  match Verifier.verify ~ca_key expectation evidence with
  | Ok () -> ()
  | Error f -> Alcotest.fail (Verifier.failure_to_string f)

let test_rejects_tampered_outputs () =
  let p = make_platform ~seed:"tamper-out" in
  let _, evidence, expectation = run_and_attest p ~inputs:"data" in
  let evil = Attestation.tamper_outputs evidence "result:forged" in
  match Verifier.verify ~ca_key expectation evil with
  | Error (Verifier.Pcr_mismatch _) -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
  | Ok () -> Alcotest.fail "tampered outputs accepted"

let test_rejects_tampered_inputs () =
  let p = make_platform ~seed:"tamper-in" in
  let _, evidence, expectation = run_and_attest p ~inputs:"data" in
  let evil = { evidence with Attestation.claimed_inputs = "other" } in
  match Verifier.verify ~ca_key expectation evil with
  | Error (Verifier.Pcr_mismatch _) -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
  | Ok () -> Alcotest.fail "tampered inputs accepted"

let test_rejects_wrong_nonce () =
  let p = make_platform ~seed:"nonce" in
  let _, evidence, expectation = run_and_attest p ~inputs:"x" in
  let expectation = { expectation with Verifier.nonce = String.make 20 'Z' } in
  match Verifier.verify ~ca_key expectation evidence with
  | Error Verifier.Nonce_mismatch -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
  | Ok () -> Alcotest.fail "stale nonce accepted"

let test_rejects_wrong_pal_expectation () =
  (* the verifier expected a different PAL: the quote cannot match *)
  let p = make_platform ~seed:"wrong-pal" in
  let _, evidence, expectation = run_and_attest p ~inputs:"x" in
  let decoy = Pal.define ~name:"attest-decoy" (fun env -> Pal_env.set_output env "") in
  let expectation = { expectation with Verifier.pal = decoy } in
  match Verifier.verify ~ca_key expectation evidence with
  | Error (Verifier.Pcr_mismatch _) -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
  | Ok () -> Alcotest.fail "wrong PAL accepted"

let test_rejects_wrong_flavor () =
  let p = make_platform ~seed:"flavor" in
  let _, evidence, expectation = run_and_attest p ~inputs:"x" in
  let expectation = { expectation with Verifier.flavor = Builder.Standard } in
  match Verifier.verify ~ca_key expectation evidence with
  | Error (Verifier.Pcr_mismatch _) -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
  | Ok () -> Alcotest.fail "wrong flavor accepted"

let test_rejects_untrusted_ca () =
  let p = make_platform ~seed:"untrusted-ca" in
  let _, evidence, expectation = run_and_attest p ~inputs:"x" in
  let other = Privacy_ca.create (Prng.create ~seed:"rogue") ~name:"RogueCA" ~key_bits:512 in
  match Verifier.verify ~ca_key:(Privacy_ca.public_key other) expectation evidence with
  | Error Verifier.Bad_certificate -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
  | Ok () -> Alcotest.fail "untrusted CA accepted"

let test_rejects_forged_quote () =
  let p = make_platform ~seed:"forge" in
  let _, evidence, expectation = run_and_attest p ~inputs:"x" in
  let forged_sig = String.make (String.length evidence.Attestation.quote.Tpm.signature) '\x42' in
  let evil =
    {
      evidence with
      Attestation.quote = { evidence.Attestation.quote with Tpm.signature = forged_sig };
    }
  in
  match Verifier.verify ~ca_key expectation evil with
  | Error Verifier.Bad_signature -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
  | Ok () -> Alcotest.fail "forged signature accepted"

let test_rejects_post_session_pcr_games () =
  (* after the cap extend, the OS can extend PCR 17 all it likes: the
     quote then stops matching any honest expectation *)
  let p = make_platform ~seed:"post-games" in
  let nonce = Platform.fresh_nonce p in
  (match Session.execute p ~pal:worker ~inputs:"x" ~nonce () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome ->
      ignore (Tpm.pcr_extend p.Platform.tpm 17 (Sha1.digest "malicious extend"));
      let evidence =
        Attestation.generate p ~nonce ~inputs:"x" ~outputs:outcome.Session.outputs
      in
      let expectation =
        Verifier.expect ~pal:worker ~slb_base:p.Platform.slb_base ~nonce ()
      in
      (match Verifier.verify ~ca_key expectation evidence with
      | Error (Verifier.Pcr_mismatch _) -> ()
      | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
      | Ok () -> Alcotest.fail "post-session extend accepted"))

let test_quote_without_session () =
  (* quoting PCR 17 at its reboot value matches no PAL expectation *)
  let p = make_platform ~seed:"no-session" in
  let nonce = Platform.fresh_nonce p in
  let evidence = Attestation.generate p ~nonce ~inputs:"" ~outputs:"" in
  let expectation =
    Verifier.expect ~pal:worker ~slb_base:p.Platform.slb_base ~nonce ()
  in
  match Verifier.verify ~ca_key expectation evidence with
  | Error (Verifier.Pcr_mismatch _) -> ()
  | Error f -> Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
  | Ok () -> Alcotest.fail "no-session quote accepted"

(* --- sealed storage across sessions ---

   The same-PAL case is modelled directly: one PAL whose behaviour seals
   under one input mode and unseals under another, so both sessions carry
   the identical measurement. *)
let stateful =
  Pal.define ~name:"attest-stateful" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
    (fun env ->
      match Util.decode_fields env.Pal_env.inputs with
      | Ok [ "seal"; data ] -> (
          match Sealed_storage.seal_for_self env data with
          | Ok blob -> Pal_env.set_output env (Util.encode_fields [ "blob"; blob ])
          | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
      | Ok [ "unseal"; blob ] -> (
          match Sealed_storage.unseal env blob with
          | Ok data -> Pal_env.set_output env (Util.encode_fields [ "data"; data ])
          | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
      | Ok _ | Error _ -> Pal_env.set_output env "ERROR: bad mode")

let run_stateful p fields =
  match Session.execute p ~pal:stateful ~inputs:(Util.encode_fields fields) () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome -> outcome.Session.outputs

let test_stateful_seal_unseal () =
  let p = make_platform ~seed:"stateful" in
  let out = run_stateful p [ "seal"; "the crown jewels" ] in
  match Util.decode_fields out with
  | Ok [ "blob"; blob ] -> (
      let out2 = run_stateful p [ "unseal"; blob ] in
      match Util.decode_fields out2 with
      | Ok [ "data"; data ] -> Alcotest.(check string) "recovered" "the crown jewels" data
      | _ -> Alcotest.fail ("unseal failed: " ^ out2))
  | _ -> Alcotest.fail ("seal failed: " ^ out)

let test_sealed_blob_unavailable_to_other_pal () =
  let p = make_platform ~seed:"cross-pal" in
  let out = run_stateful p [ "seal"; "for my eyes only" ] in
  match Util.decode_fields out with
  | Ok [ "blob"; blob ] -> (
      (* a different PAL tries to unseal the blob *)
      let thief =
        Pal.define ~name:"attest-thief" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
          (fun env ->
            match Sealed_storage.unseal env env.Pal_env.inputs with
            | Ok data -> Pal_env.set_output env ("STOLEN: " ^ data)
            | Error e -> Pal_env.set_output env ("denied: " ^ e))
      in
      match Session.execute p ~pal:thief ~inputs:blob () with
      | Error e -> Alcotest.failf "thief session: %a" Session.pp_error e
      | Ok outcome ->
          Alcotest.(check bool) "unseal denied" true
            (String.length outcome.Session.outputs >= 6
            && String.sub outcome.Session.outputs 0 6 = "denied"))
  | _ -> Alcotest.fail ("seal failed: " ^ out)

let test_sealed_blob_unavailable_to_os () =
  (* the OS (outside any session, PCR 17 capped) cannot unseal *)
  let p = make_platform ~seed:"os-unseal" in
  let out = run_stateful p [ "seal"; "os cannot read this" ] in
  match Util.decode_fields out with
  | Ok [ "blob"; blob ] -> (
      let rng = Platform.fork_rng p ~label:"os-attacker" in
      match Flicker_slb.Mod_tpm_utils.unseal p.Platform.tpm ~rng blob with
      | Error Flicker_tpm.Tpm_types.Wrong_pcr_value -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ Flicker_tpm.Tpm_types.error_to_string e)
      | Ok _ -> Alcotest.fail "OS unsealed PAL data")
  | _ -> Alcotest.fail ("seal failed: " ^ out)

(* --- cross-PAL sealed handoff: P seals for P' (Section 4.3.1) --- *)

(* The receiving PAL P' must exist before P can compute its measurement;
   P is parameterized by P'-s identity via Sealed_storage.seal_for. *)
let receiver_pal =
  Pal.define ~name:"attest-handoff-receiver"
    ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
    (fun env ->
      match Sealed_storage.unseal env env.Pal_env.inputs with
      | Ok data -> Pal_env.set_output env ("received:" ^ data)
      | Error e -> Pal_env.set_output env ("denied:" ^ e))

let sender_platform = make_platform ~seed:"handoff"

let sender_pal =
  Pal.define ~name:"attest-handoff-sender"
    ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
    (fun env ->
      match
        Sealed_storage.seal_for env ~target:receiver_pal ~flavor:Builder.Optimized
          ~slb_base:sender_platform.Platform.slb_base "the handoff payload"
      with
      | Ok blob -> Pal_env.set_output env blob
      | Error e -> Pal_env.set_output env ("ERROR: " ^ e))

let test_cross_pal_handoff () =
  let p = sender_platform in
  let blob =
    match Session.execute p ~pal:sender_pal () with
    | Ok o -> o.Session.outputs
    | Error e -> Alcotest.failf "sender session: %a" Session.pp_error e
  in
  Alcotest.(check bool) "sealed" true (String.length blob > 40);
  (* the sender itself can NOT read it back: it was sealed for P' *)
  let greedy_sender =
    Pal.define ~name:"attest-handoff-sender-readback"
      ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env ->
        match Sealed_storage.unseal env env.Pal_env.inputs with
        | Ok d -> Pal_env.set_output env ("leak:" ^ d)
        | Error e -> Pal_env.set_output env ("denied:" ^ e))
  in
  (match Session.execute p ~pal:greedy_sender ~inputs:blob () with
  | Ok o ->
      Alcotest.(check bool) "other pal denied" true
        (String.length o.Session.outputs >= 6
        && String.sub o.Session.outputs 0 6 = "denied")
  | Error e -> Alcotest.failf "readback session: %a" Session.pp_error e);
  (* the designated receiver can *)
  match Session.execute p ~pal:receiver_pal ~inputs:blob () with
  | Ok o ->
      Alcotest.(check string) "receiver unseals" "received:the handoff payload"
        o.Session.outputs
  | Error e -> Alcotest.failf "receiver session: %a" Session.pp_error e

(* --- secure channel --- *)

let test_secure_channel_end_to_end () =
  let p = make_platform ~seed:"channel" in
  let nonce = Platform.fresh_nonce p in
  match Secure_channel.establish p ~key_bits:512 ~nonce () with
  | Error e -> Alcotest.fail e
  | Ok established -> (
      match
        Secure_channel.client_accept ~ca_key ~slb_base:p.Platform.slb_base ~nonce
          ~key_bits:512 established
      with
      | Error e -> Alcotest.fail e
      | Ok pub ->
          Alcotest.(check bool) "key matches" true
            (Bignum.equal pub.Rsa.n established.Secure_channel.public_key.Rsa.n);
          let rng = Prng.create ~seed:"remote-party" in
          let ct = Secure_channel.encrypt_to_pal rng pub "shh" in
          Alcotest.(check bool) "ciphertext produced" true (String.length ct > 0))

let test_secure_channel_rejects_substituted_key () =
  (* a MITM OS replaces the attested output with its own key: the quote
     no longer matches *)
  let p = make_platform ~seed:"channel-mitm" in
  let nonce = Platform.fresh_nonce p in
  match Secure_channel.establish p ~key_bits:512 ~nonce () with
  | Error e -> Alcotest.fail e
  | Ok established ->
      let mitm_key = Rsa.generate (Prng.create ~seed:"mitm") ~bits:512 in
      let fake_output =
        Flicker_slb.Mod_secure_channel.encode_setup_output
          {
            Flicker_slb.Mod_secure_channel.public_key = mitm_key.Rsa.pub;
            sealed_private = "junk";
          }
      in
      let evil =
        {
          established with
          Secure_channel.evidence =
            Attestation.tamper_outputs established.Secure_channel.evidence fake_output;
        }
      in
      (match
         Secure_channel.client_accept ~ca_key ~slb_base:p.Platform.slb_base ~nonce
           ~key_bits:512 evil
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "substituted key accepted")

(* --- replay protection --- *)

let replay_blobs : (string, string) Hashtbl.t = Hashtbl.create 4

let replay_pal =
  Pal.define ~name:"attest-replay" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
    (fun env ->
      match Util.decode_fields env.Pal_env.inputs with
      | Ok [ "init" ] -> (
          match
            Replay.init env ~owner_auth:(String.make 20 '\000') ~label:"replay-test"
          with
          | Ok guard ->
              Hashtbl.replace replay_blobs "guard" (string_of_int guard.Replay.counter_handle);
              Pal_env.set_output env "ok"
          | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
      | Ok [ "seal"; handle; data ] -> (
          let guard = { Replay.counter_handle = int_of_string handle } in
          match Replay.seal_for_self env guard data with
          | Ok blob -> Pal_env.set_output env (Util.encode_fields [ "blob"; blob ])
          | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
      | Ok [ "unseal"; handle; blob ] -> (
          let guard = { Replay.counter_handle = int_of_string handle } in
          match Replay.unseal env guard blob with
          | Ok data -> Pal_env.set_output env (Util.encode_fields [ "data"; data ])
          | Error e -> Pal_env.set_output env (Format.asprintf "ERROR: %a" Replay.pp_unseal_error e))
      | Ok _ | Error _ -> Pal_env.set_output env "ERROR: bad mode")

let run_replay p fields =
  match Session.execute p ~pal:replay_pal ~inputs:(Util.encode_fields fields) () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome -> outcome.Session.outputs

let test_replay_protection () =
  let p = make_platform ~seed:"replay" in
  Alcotest.(check string) "init" "ok" (run_replay p [ "init" ]);
  let handle = Hashtbl.find replay_blobs "guard" in
  (* version 1 *)
  let out1 = run_replay p [ "seal"; handle; "password-db-v1" ] in
  let blob1 =
    match Util.decode_fields out1 with
    | Ok [ "blob"; b ] -> b
    | _ -> Alcotest.fail ("seal v1: " ^ out1)
  in
  (* current version unseals fine *)
  (match Util.decode_fields (run_replay p [ "unseal"; handle; blob1 ]) with
  | Ok [ "data"; d ] -> Alcotest.(check string) "v1 current" "password-db-v1" d
  | _ -> Alcotest.fail "v1 unseal failed");
  (* version 2 supersedes it *)
  let out2 = run_replay p [ "seal"; handle; "password-db-v2" ] in
  let blob2 =
    match Util.decode_fields out2 with
    | Ok [ "blob"; b ] -> b
    | _ -> Alcotest.fail ("seal v2: " ^ out2)
  in
  (match Util.decode_fields (run_replay p [ "unseal"; handle; blob2 ]) with
  | Ok [ "data"; d ] -> Alcotest.(check string) "v2 current" "password-db-v2" d
  | _ -> Alcotest.fail "v2 unseal failed");
  (* blob1 is now one version behind: indistinguishable from a crash
     between increment and persist, so it is flagged as out-of-sync *)
  let stale_out = run_replay p [ "unseal"; handle; blob1 ] in
  Alcotest.(check bool) "one-behind flagged" true
    (String.length stale_out >= 6 && String.sub stale_out 0 6 = "ERROR:");
  (* after a third version exists, blob1 is unambiguously a replay *)
  let out3 = run_replay p [ "seal"; handle; "password-db-v3" ] in
  (match Util.decode_fields out3 with
  | Ok [ "blob"; _ ] -> ()
  | _ -> Alcotest.fail ("seal v3: " ^ out3));
  let replay_out = run_replay p [ "unseal"; handle; blob1 ] in
  Alcotest.(check bool) "replay detected" true
    (String.length replay_out >= 6
    && String.sub replay_out 0 6 = "ERROR:"
    &&
    let lower = String.lowercase_ascii replay_out in
    let rec scan i =
      i + 6 <= String.length lower && (String.sub lower i 6 = "replay" || scan (i + 1))
    in
    scan 0)

let () =
  Alcotest.run "attestation"
    [
      ( "verifier",
        [
          Alcotest.test_case "accepts honest run" `Quick test_accepts_honest_run;
          Alcotest.test_case "rejects tampered outputs" `Quick test_rejects_tampered_outputs;
          Alcotest.test_case "rejects tampered inputs" `Quick test_rejects_tampered_inputs;
          Alcotest.test_case "rejects wrong nonce" `Quick test_rejects_wrong_nonce;
          Alcotest.test_case "rejects wrong pal" `Quick test_rejects_wrong_pal_expectation;
          Alcotest.test_case "rejects wrong flavor" `Quick test_rejects_wrong_flavor;
          Alcotest.test_case "rejects untrusted ca" `Quick test_rejects_untrusted_ca;
          Alcotest.test_case "rejects forged quote" `Quick test_rejects_forged_quote;
          Alcotest.test_case "rejects post-session extends" `Quick
            test_rejects_post_session_pcr_games;
          Alcotest.test_case "rejects no-session quote" `Quick test_quote_without_session;
        ] );
      ( "sealed storage",
        [
          Alcotest.test_case "seal/unseal same pal" `Quick test_stateful_seal_unseal;
          Alcotest.test_case "other pal denied" `Quick test_sealed_blob_unavailable_to_other_pal;
          Alcotest.test_case "os denied" `Quick test_sealed_blob_unavailable_to_os;
          Alcotest.test_case "cross-pal handoff" `Quick test_cross_pal_handoff;
        ] );
      ( "secure channel",
        [
          Alcotest.test_case "end to end" `Quick test_secure_channel_end_to_end;
          Alcotest.test_case "mitm key rejected" `Quick
            test_secure_channel_rejects_substituted_key;
        ] );
      ("replay", [ Alcotest.test_case "figure 4 protocol" `Quick test_replay_protection ]);
    ]
