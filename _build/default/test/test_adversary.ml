(* The Section 3.1 adversary, attack by attack: each test mounts a real
   attack through the simulator and asserts it fails against Flicker's
   protections — with control conditions showing the same attack
   succeeding when the protection is absent. *)

open Flicker_crypto
open Flicker_core
module Adversary = Flicker_os.Adversary
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Dma = Flicker_hw.Dma
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types

let make_platform ~seed = Platform.create ~seed ~key_bits:512 ()

let test_memory_scan_after_session () =
  (* a PAL handles a secret; after the session the ring-0 OS scans all of
     physical memory for it *)
  let secret = "CA-PRIVATE-KEY-MATERIAL-1234" in
  let pal =
    Pal.define ~name:"adv-secret-handler" (fun env ->
        Pal_env.write_phys env ~addr:(env.Pal_env.inputs_addr - 8192) secret;
        Pal_env.set_output env "handled")
  in
  let p = make_platform ~seed:"scan" in
  (match Session.execute p ~pal () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok _ -> ());
  let report = Adversary.scan_memory p.Platform.machine ~pattern:secret in
  Alcotest.(check bool) "scan finds nothing" false report.Adversary.succeeded

let test_memory_scan_control () =
  (* control: without cleanup, the scan WOULD find the secret *)
  let p = make_platform ~seed:"scan-control" in
  Memory.write p.Platform.machine.Machine.memory ~addr:0x5000 "LEFTOVER-SECRET";
  let report = Adversary.scan_memory p.Platform.machine ~pattern:"LEFTOVER-SECRET" in
  Alcotest.(check bool) "control scan succeeds" true report.Adversary.succeeded

let test_dma_attack_during_session () =
  let p = make_platform ~seed:"dma" in
  let nic = Dma.create p.Platform.machine ~name:"pci-nic" in
  let slb_base = p.Platform.slb_base in
  let attack_results = ref [] in
  let pal =
    Pal.define ~name:"adv-dma-victim" (fun env ->
        (* the malicious device fires mid-session *)
        attack_results :=
          [
            Adversary.dma_read_probe nic ~addr:slb_base ~len:4096 ~pattern:"\x7fSLB";
            Adversary.dma_corrupt nic ~addr:slb_base ~data:"\xde\xad\xbe\xef";
          ];
        Pal_env.set_output env "survived")
  in
  (match Session.execute p ~pal () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome -> Alcotest.(check string) "pal survived" "survived" outcome.Session.outputs);
  List.iter
    (fun r -> Alcotest.(check bool) r.Adversary.attack false r.Adversary.succeeded)
    !attack_results;
  (* the DEV recorded blocked attempts *)
  Alcotest.(check int) "attempts logged" 2 (List.length (Dma.attempts nic));
  Alcotest.(check bool) "all blocked" true
    (List.for_all (fun a -> a.Dma.blocked) (Dma.attempts nic))

let test_dma_attack_outside_session () =
  (* control: the same DMA attack against unprotected memory succeeds *)
  let p = make_platform ~seed:"dma-control" in
  let nic = Dma.create p.Platform.machine ~name:"pci-nic" in
  Memory.write p.Platform.machine.Machine.memory ~addr:0x9000 "JUICY-TARGET";
  let read = Adversary.dma_read_probe nic ~addr:0x9000 ~len:12 ~pattern:"JUICY-TARGET" in
  Alcotest.(check bool) "read succeeds outside session" true read.Adversary.succeeded;
  let corrupt = Adversary.dma_corrupt nic ~addr:0x9000 ~data:"PWNED" in
  Alcotest.(check bool) "write succeeds outside session" true corrupt.Adversary.succeeded;
  Alcotest.(check string) "memory modified" "PWNED"
    (Memory.read p.Platform.machine.Machine.memory ~addr:0x9000 ~len:5)

let test_pcr17_forgery () =
  (* the OS knows the target PAL's measurement and tries to recreate its
     post-SKINIT PCR 17 value using software extends *)
  let pal = Pal.define ~name:"adv-forgery-target" (fun env -> Pal_env.set_output env "") in
  let p = make_platform ~seed:"forgery" in
  let image = Flicker_slb.Builder.build pal in
  let target = Measurement.after_skinit image ~slb_base:p.Platform.slb_base in
  let measurement = Measurement.of_image image ~slb_base:p.Platform.slb_base in
  let tries =
    [
      measurement; (* the obvious try: extend H(P) from the reboot state *)
      target; (* extend the target itself *)
      Sha1.digest measurement;
      Tpm_types.zero_digest;
    ]
  in
  let report = Adversary.forge_pcr17 p.Platform.tpm ~target ~tries in
  Alcotest.(check bool) "forgery fails" false report.Adversary.succeeded

let test_pcr17_forgery_even_after_sessions () =
  (* between sessions PCR 17 holds the capped value; extends from there
     must never land back on a legitimate during-session value *)
  let pal = Pal.define ~name:"adv-forgery-target2" (fun env -> Pal_env.set_output env "") in
  let p = make_platform ~seed:"forgery2" in
  (match Session.execute p ~pal () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok _ -> ());
  let image = Flicker_slb.Builder.build pal in
  let target = Measurement.after_skinit image ~slb_base:p.Platform.slb_base in
  let report =
    Adversary.forge_pcr17 p.Platform.tpm ~target
      ~tries:(List.init 32 (fun i -> Sha1.digest (string_of_int i)))
  in
  Alcotest.(check bool) "still unforgeable" false report.Adversary.succeeded

let test_skinit_by_adversary_is_safe () =
  (* the adversary CAN run SKINIT on its own PAL — but that gives it a
     different PCR 17 value, not the victim's, so sealed data stays safe *)
  let victim =
    Pal.define ~name:"adv-victim-sealer" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env ->
        match Sealed_storage.seal_for_self env "victim secret" with
        | Ok blob -> Pal_env.set_output env blob
        | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
  in
  let p = make_platform ~seed:"adv-skinit" in
  let blob =
    match Session.execute p ~pal:victim () with
    | Error e -> Alcotest.failf "victim session: %a" Session.pp_error e
    | Ok outcome -> outcome.Session.outputs
  in
  Alcotest.(check bool) "sealed" true (String.length blob > 40);
  let evil =
    Pal.define ~name:"adv-evil-pal" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env ->
        match Sealed_storage.unseal env env.Pal_env.inputs with
        | Ok data -> Pal_env.set_output env ("STOLEN:" ^ data)
        | Error e -> Pal_env.set_output env ("denied:" ^ e))
  in
  match Session.execute p ~pal:evil ~inputs:blob () with
  | Error e -> Alcotest.failf "evil session: %a" Session.pp_error e
  | Ok outcome ->
      Alcotest.(check bool) "evil PAL denied" true
        (String.length outcome.Session.outputs >= 6
        && String.sub outcome.Session.outputs 0 6 = "denied")

let test_replay_helper () =
  let victim blob = if blob = "fresh" then Ok "accepted" else Error "stale" in
  let r1 = Adversary.replay_ciphertext ~original:"fresh" ~stale:"old" victim in
  Alcotest.(check bool) "stale rejected" false r1.Adversary.succeeded;
  let naive _ = Ok "accepted" in
  let r2 = Adversary.replay_ciphertext ~original:"fresh" ~stale:"old" naive in
  Alcotest.(check bool) "naive victim falls" true r2.Adversary.succeeded

let test_toctou_slb_corruption () =
  (* flip SLB bytes after the flicker-module loads them but before
     SKINIT: the hardware measures the corrupted bytes, so either nothing
     runs or the attestation exposes it *)
  let pal = Pal.define ~name:"adv-toctou" (fun env -> Pal_env.set_output env "ran") in
  let p = make_platform ~seed:"toctou" in
  let honest =
    match Session.execute p ~pal () with
    | Ok o -> o
    | Error e -> Alcotest.failf "honest session: %a" Session.pp_error e
  in
  Session.corrupt_slb_in_memory p;
  (match Session.execute p ~pal () with
  | Error Session.Unknown_pal -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Session.pp_error e
  | Ok outcome ->
      Alcotest.(check bool) "measurement exposes corruption" true
        (outcome.Session.slb_measurement <> honest.Session.slb_measurement));
  (* PCR 17 now holds a value that verifies against no registered PAL *)
  let current = Result.get_ok (Tpm.pcr_read p.Platform.tpm 17) in
  Alcotest.(check bool) "pcr differs from honest final" true
    (current <> honest.Session.pcr17_final)

let test_event_log_records_attacks () =
  let p = make_platform ~seed:"audit" in
  let nic = Dma.create p.Platform.machine ~name:"auditable-nic" in
  let pal =
    Pal.define ~name:"adv-audited" (fun env ->
        ignore (Adversary.dma_corrupt nic ~addr:p.Platform.slb_base ~data:"X");
        Pal_env.set_output env "ok")
  in
  (match Session.execute p ~pal () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok _ -> ());
  let events = Machine.events_between p.Platform.machine ~since:0.0 in
  Alcotest.(check bool) "blocked DMA in audit log" true
    (List.exists
       (fun e ->
         let d = e.Machine.detail in
         String.length d >= 4 && String.sub d 0 4 = "dev:")
       events)

let () =
  Alcotest.run "adversary"
    [
      ( "memory",
        [
          Alcotest.test_case "scan after session" `Quick test_memory_scan_after_session;
          Alcotest.test_case "scan control" `Quick test_memory_scan_control;
        ] );
      ( "dma",
        [
          Alcotest.test_case "attack during session" `Quick test_dma_attack_during_session;
          Alcotest.test_case "attack outside session (control)" `Quick
            test_dma_attack_outside_session;
        ] );
      ( "pcr17",
        [
          Alcotest.test_case "forgery from reboot state" `Quick test_pcr17_forgery;
          Alcotest.test_case "forgery after sessions" `Quick
            test_pcr17_forgery_even_after_sessions;
          Alcotest.test_case "adversarial skinit" `Quick test_skinit_by_adversary_is_safe;
        ] );
      ( "other",
        [
          Alcotest.test_case "replay harness" `Quick test_replay_helper;
          Alcotest.test_case "toctou slb corruption" `Quick test_toctou_slb_corruption;
          Alcotest.test_case "audit log" `Quick test_event_log_records_attacks;
        ] );
    ]
