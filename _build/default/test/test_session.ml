open Flicker_core
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Builder = Flicker_slb.Builder
module Layout = Flicker_slb.Layout
module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Cpu = Flicker_hw.Cpu
module Tpm = Flicker_tpm.Tpm

let make_platform ?seed () = Platform.create ?seed ~key_bits:512 ()

let hello =
  Pal.define ~name:"session-hello" (fun env ->
      Pal_env.set_output env ("Hello, " ^ env.Pal_env.inputs))

let run ?flavor ?inputs ?nonce platform pal =
  match Session.execute platform ~pal ?flavor ?inputs ?nonce () with
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "session failed: %a" Session.pp_error e

let test_basic_outputs () =
  let p = make_platform () in
  let outcome = run ~inputs:"world" p hello in
  Alcotest.(check string) "outputs" "Hello, world" outcome.Session.outputs;
  Alcotest.(check bool) "no fault" true (outcome.Session.pal_fault = None);
  (* outputs also visible through sysfs, as the application reads them *)
  Alcotest.(check (option string)) "sysfs outputs" (Some "Hello, world")
    (Flicker_os.Sysfs.read p.Platform.sysfs ~path:"outputs")

let test_phases_present () =
  let p = make_platform () in
  let outcome = run p hello in
  let phases = List.map fst outcome.Session.breakdown in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (Session.phase_name phase) true (List.mem phase phases))
    [
      Session.Load_slb; Session.Suspend_os; Session.Skinit; Session.Slb_init;
      Session.Pal_execution; Session.Cleanup; Session.Pcr_extends; Session.Resume_os;
    ];
  (* total equals the sum of phases *)
  let sum = List.fold_left (fun acc (_, ms) -> acc +. ms) 0.0 outcome.Session.breakdown in
  Alcotest.(check (float 1e-6)) "phases sum to total" outcome.Session.total_ms sum

let test_skinit_time_by_flavor () =
  let p = make_platform () in
  let std = run ~flavor:Builder.Standard p hello in
  let opt = run ~flavor:Builder.Optimized p hello in
  (* the optimized stub keeps SKINIT near 14 ms; the standard image pays
     per measured byte *)
  Alcotest.(check (float 1.0)) "optimized skinit ~13.7" 13.7
    (Session.phase_ms opt Session.Skinit);
  Alcotest.(check bool) "standard differs from optimized" true
    (Session.phase_ms std Session.Skinit <> Session.phase_ms opt Session.Skinit);
  (* but the optimized flavor pays a CPU hash + extend in init *)
  Alcotest.(check bool) "optimized init cost" true
    (Session.phase_ms opt Session.Slb_init > Session.phase_ms std Session.Slb_init)

let test_pcr17_value () =
  let p = make_platform () in
  let nonce = Platform.fresh_nonce p in
  let outcome = run ~inputs:"in" ~nonce p hello in
  let image = Builder.build ~flavor:Builder.Optimized hello in
  (* during-PAL value matches the measurement chain *)
  Alcotest.(check string) "pcr17 during"
    (Measurement.after_skinit image ~slb_base:p.Platform.slb_base)
    outcome.Session.pcr17_during;
  (* final value matches the full chain with io extends and cap *)
  Alcotest.(check string) "pcr17 final"
    (Measurement.final image ~slb_base:p.Platform.slb_base ~inputs:"in"
       ~outputs:outcome.Session.outputs ~nonce:(Some nonce))
    outcome.Session.pcr17_final;
  (* and the live TPM agrees *)
  Alcotest.(check string) "tpm agrees" outcome.Session.pcr17_final
    (Result.get_ok (Tpm.pcr_read p.Platform.tpm 17))

let test_measurement_differs_by_pal () =
  let p = make_platform () in
  let other = Pal.define ~name:"session-other" (fun env -> Pal_env.set_output env "x") in
  (* with the optimized loader, SKINIT itself measures only the shared
     stub — identical for every PAL; the PAL's identity enters PCR 17 via
     the stub's window-hash extend *)
  let o1 = run p hello in
  let o2 = run p other in
  Alcotest.(check string) "optimized: same stub measurement" o1.Session.slb_measurement
    o2.Session.slb_measurement;
  Alcotest.(check bool) "optimized: different pcr17" true
    (o1.Session.pcr17_during <> o2.Session.pcr17_during);
  (* with standard images, the SKINIT measurement itself distinguishes *)
  let s1 = run ~flavor:Builder.Standard p hello in
  let s2 = run ~flavor:Builder.Standard p other in
  Alcotest.(check bool) "standard: different measurements" true
    (s1.Session.slb_measurement <> s2.Session.slb_measurement)

let test_measurement_stable_across_sessions () =
  let p = make_platform () in
  let o1 = run p hello in
  let o2 = run p hello in
  Alcotest.(check string) "same PAL, same measurement" o1.Session.slb_measurement
    o2.Session.slb_measurement;
  Alcotest.(check string) "same during-value" o1.Session.pcr17_during o2.Session.pcr17_during

let test_cleanup_zeroizes () =
  let secret = "PAL-SECRET-0123456789" in
  let leaky =
    Pal.define ~name:"session-leaky" (fun env ->
        (* write a secret into the SLB scratch space and 'forget' it *)
        Pal_env.write_phys env
          ~addr:(env.Pal_env.inputs_addr - Layout.stack_size)
          secret;
        Pal_env.set_output env "done")
  in
  let p = make_platform () in
  ignore (run p leaky);
  Alcotest.(check (option int)) "secret erased by cleanup" None
    (Memory.find_pattern p.Platform.machine.Machine.memory secret)

let test_inputs_visible_to_pal () =
  let echo =
    Pal.define ~name:"session-echo-mem" (fun env ->
        (* read the inputs back out of the input page in memory *)
        let from_mem =
          Pal_env.read_phys env ~addr:env.Pal_env.inputs_addr
            ~len:(String.length env.Pal_env.inputs)
        in
        Pal_env.set_output env from_mem)
  in
  let p = make_platform () in
  let outcome = run ~inputs:"via-memory" p echo in
  Alcotest.(check string) "inputs via memory page" "via-memory" outcome.Session.outputs

let probe_platform = make_platform ~seed:"probe" ()

let probe =
  Pal.define ~name:"session-probe" (fun env ->
      let scheduler_suspended =
        Flicker_os.Scheduler.is_suspended probe_platform.Platform.scheduler
      in
      let bsp = Cpu.bsp probe_platform.Platform.machine.Machine.cpus in
      Pal_env.set_output env
        (Printf.sprintf "%b %b %b" scheduler_suspended bsp.Cpu.interrupts_enabled
           (Cpu.all_aps_parked probe_platform.Platform.machine.Machine.cpus)))

let test_os_suspended_during_pal () =
  let outcome = run probe_platform probe in
  Alcotest.(check string) "suspended, no interrupts, APs parked" "true false true"
    outcome.Session.outputs;
  (* and everything is back afterwards *)
  let bsp = Cpu.bsp probe_platform.Platform.machine.Machine.cpus in
  Alcotest.(check bool) "resumed" false
    (Flicker_os.Scheduler.is_suspended probe_platform.Platform.scheduler);
  Alcotest.(check bool) "interrupts back" true bsp.Cpu.interrupts_enabled;
  Alcotest.(check bool) "aps running" false
    (Cpu.all_aps_parked probe_platform.Platform.machine.Machine.cpus);
  Alcotest.(check bool) "paging back" true bsp.Cpu.paging_enabled

let dev_platform = make_platform ~seed:"dev-probe" ()

let dev_probe =
  Pal.define ~name:"session-dev-probe" (fun env ->
      Pal_env.set_output env
        (string_of_bool
           (Flicker_hw.Dev.allows dev_platform.Platform.machine.Machine.dev
              ~addr:dev_platform.Platform.slb_base ~len:65536)))

let test_dev_protection_window () =
  let outcome = run dev_platform dev_probe in
  Alcotest.(check string) "DMA blocked during session" "false" outcome.Session.outputs;
  Alcotest.(check bool) "DMA allowed after" true
    (Flicker_hw.Dev.allows dev_platform.Platform.machine.Machine.dev
       ~addr:dev_platform.Platform.slb_base ~len:65536)

let test_os_protection_fault () =
  let rogue =
    Pal.define ~name:"session-rogue" ~modules:[ Pal.Os_protection ] (fun env ->
        Pal_env.set_output env "before fault";
        (* OS memory far below the SLB; this must trap *)
        ignore (Pal_env.read_phys env ~addr:0x1000 ~len:16))
  in
  let p = make_platform () in
  let outcome = run p rogue in
  Alcotest.(check bool) "fault recorded" true (outcome.Session.pal_fault <> None);
  (* ring transition happened and was undone *)
  Alcotest.(check int) "back in ring 0" 0
    (Cpu.bsp p.Platform.machine.Machine.cpus).Cpu.ring

let test_unprotected_pal_reads_os_memory () =
  (* without the OS-protection module, a PAL really can read OS memory —
     the control condition for the previous test *)
  let p = make_platform () in
  Memory.write p.Platform.machine.Machine.memory ~addr:0x1000 "oskernel";
  let snoop =
    Pal.define ~name:"session-snoop" (fun env ->
        Pal_env.set_output env (Pal_env.read_phys env ~addr:0x1000 ~len:8))
  in
  let outcome = run p snoop in
  Alcotest.(check string) "read OS memory" "oskernel" outcome.Session.outputs;
  Alcotest.(check bool) "no fault" true (outcome.Session.pal_fault = None)

let test_corrupt_slb_changes_measurement () =
  let p = make_platform () in
  let good = run p hello in
  Session.corrupt_slb_in_memory p;
  match Session.execute p ~pal:hello () with
  | Error Session.Unknown_pal ->
      (* nothing ran; the OS recovered; a fresh session works again *)
      let again = run p hello in
      Alcotest.(check string) "recovered" good.Session.slb_measurement
        again.Session.slb_measurement
  | Error e -> Alcotest.failf "unexpected error: %a" Session.pp_error e
  | Ok outcome ->
      Alcotest.(check bool) "measurement differs" true
        (outcome.Session.slb_measurement <> good.Session.slb_measurement)

let test_input_validation () =
  let p = make_platform () in
  Alcotest.(check bool) "oversized inputs" true
    (match Session.execute p ~pal:hello ~inputs:(String.make 5000 'x') () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad nonce" true
    (match Session.execute p ~pal:hello ~nonce:"short" () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_output_page_limit () =
  let big_mouth =
    Pal.define ~name:"session-bigmouth" (fun env ->
        Pal_env.set_output env (String.make (Layout.io_page_size + 1) 'x'))
  in
  let p = make_platform () in
  Alcotest.(check bool) "oversized output raises in PAL" true
    (match run p big_mouth with
    | exception Invalid_argument _ -> true
    | _outcome -> false)

let test_execute_from_sysfs () =
  (* the paper's application flow: write slb + inputs, poke control *)
  let p = make_platform () in
  let fs = p.Platform.sysfs in
  (* nothing written yet *)
  (match Session.execute_from_sysfs p () with
  | Error (Session.Os_busy _) -> ()
  | _ -> Alcotest.fail "missing slb accepted");
  let image = Builder.build ~flavor:Builder.Optimized hello in
  Flicker_os.Sysfs.write fs ~path:"slb" image.Builder.bytes;
  Flicker_os.Sysfs.write fs ~path:"inputs" "sysfs-world";
  Flicker_os.Sysfs.write fs ~path:"control" "1";
  (match Session.execute_from_sysfs p () with
  | Error e -> Alcotest.failf "sysfs session: %a" Session.pp_error e
  | Ok outcome ->
      Alcotest.(check string) "outputs" "Hello, sysfs-world" outcome.Session.outputs;
      Alcotest.(check (option string)) "outputs entry" (Some "Hello, sysfs-world")
        (Flicker_os.Sysfs.read fs ~path:"outputs"));
  (* standard-flavor blobs are recognized from the header too *)
  let std = Builder.build ~flavor:Builder.Standard hello in
  Flicker_os.Sysfs.write fs ~path:"slb" std.Builder.bytes;
  (match Session.execute_from_sysfs p () with
  | Error e -> Alcotest.failf "std sysfs session: %a" Session.pp_error e
  | Ok outcome ->
      Alcotest.(check string) "std measured length matches"
        (Measurement.after_skinit std ~slb_base:p.Platform.slb_base)
        outcome.Session.pcr17_during);
  (* a corrupt blob is rejected before any launch *)
  Flicker_os.Sysfs.write fs ~path:"slb" (String.make Flicker_slb.Layout.slb_size '\xff');
  match Session.execute_from_sysfs p () with
  | Error (Session.Os_busy _) | Error Session.Unknown_pal -> ()
  | _ -> Alcotest.fail "corrupt sysfs blob accepted"

let test_sessions_increment () =
  let p = make_platform () in
  ignore (run p hello);
  ignore (run p hello);
  Alcotest.(check int) "two sessions" 2 p.Platform.sessions_run

let test_measurement_module () =
  let image = Builder.build ~flavor:Builder.Standard hello in
  let base = 0x200000 in
  (* standard: V = extend(0, H(image)) *)
  Alcotest.(check string) "standard after_skinit"
    (Measurement.extend (String.make 20 '\000') (Measurement.of_image image ~slb_base:base))
    (Measurement.after_skinit image ~slb_base:base);
  (* different base gives different measurement (patched GDT) *)
  Alcotest.(check bool) "base-sensitive" true
    (Measurement.of_image image ~slb_base:base
    <> Measurement.of_image image ~slb_base:0x300000);
  (* io extends: nonce present adds one link *)
  Alcotest.(check int) "io extends without nonce" 2
    (List.length (Measurement.io_extends ~inputs:"" ~outputs:"" ~nonce:None));
  Alcotest.(check int) "io extends with nonce" 3
    (List.length
       (Measurement.io_extends ~inputs:"" ~outputs:"" ~nonce:(Some (String.make 20 'n'))));
  (* final differs when outputs differ *)
  Alcotest.(check bool) "output-sensitive" true
    (Measurement.final image ~slb_base:base ~inputs:"" ~outputs:"a" ~nonce:None
    <> Measurement.final image ~slb_base:base ~inputs:"" ~outputs:"b" ~nonce:None)

let () =
  Alcotest.run "session"
    [
      ( "execution",
        [
          Alcotest.test_case "basic outputs" `Quick test_basic_outputs;
          Alcotest.test_case "phases present" `Quick test_phases_present;
          Alcotest.test_case "skinit by flavor" `Quick test_skinit_time_by_flavor;
          Alcotest.test_case "inputs via memory" `Quick test_inputs_visible_to_pal;
          Alcotest.test_case "session count" `Quick test_sessions_increment;
          Alcotest.test_case "sysfs entry point" `Quick test_execute_from_sysfs;
          Alcotest.test_case "input validation" `Quick test_input_validation;
          Alcotest.test_case "output page limit" `Quick test_output_page_limit;
        ] );
      ( "measurement",
        [
          Alcotest.test_case "pcr17 chain" `Quick test_pcr17_value;
          Alcotest.test_case "differs by pal" `Quick test_measurement_differs_by_pal;
          Alcotest.test_case "stable across sessions" `Quick
            test_measurement_stable_across_sessions;
          Alcotest.test_case "measurement functions" `Quick test_measurement_module;
          Alcotest.test_case "corrupt slb" `Quick test_corrupt_slb_changes_measurement;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "cleanup zeroizes" `Quick test_cleanup_zeroizes;
          Alcotest.test_case "os suspended during pal" `Quick test_os_suspended_during_pal;
          Alcotest.test_case "dev window" `Quick test_dev_protection_window;
          Alcotest.test_case "os-protection fault" `Quick test_os_protection_fault;
          Alcotest.test_case "unprotected pal reads os" `Quick
            test_unprotected_pal_reads_os_memory;
        ] );
    ]
