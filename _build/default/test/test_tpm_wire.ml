(* The TPM byte-transport layer: marshaling roundtrips, dispatch
   equivalence with the direct API, and the malformed-buffer robustness a
   driver depends on. *)

open Flicker_crypto
open Flicker_tpm
module Machine = Flicker_hw.Machine
module Timing = Flicker_hw.Timing
module Wire = Tpm_wire

let make_tpm () =
  let machine = Machine.create ~memory_size:(1024 * 1024) Timing.default in
  Tpm.create machine (Prng.create ~seed:"wire-tests") ~key_bits:512

let d20 c = String.make 20 c

let auth = { Tpm.session = 0x1234; nonce_odd = d20 'o'; mac = d20 'm' }

let sample_commands =
  [
    Wire.Pcr_read 17;
    Wire.Pcr_extend (17, Sha1.digest "m");
    Wire.Get_random 128;
    Wire.Quote { nonce = d20 'n'; selection = [ 0; 17; 23 ] };
    Wire.Oiap;
    Wire.Osap { entity = "SRK"; no_osap = d20 'q' };
    Wire.Seal { auth; release = [ (17, d20 'v') ]; data = "top secret" };
    Wire.Seal { auth; release = []; data = "" };
    Wire.Unseal { auth; blob = String.make 100 'b' };
    Wire.Nv_read 7;
    Wire.Nv_write (7, "counter!");
    Wire.Read_counter 3;
    Wire.Increment_counter 3;
    Wire.Get_capability_version;
  ]

let test_command_roundtrip () =
  List.iter
    (fun cmd ->
      match Wire.decode_command (Wire.encode_command cmd) with
      | Ok cmd' -> Alcotest.(check bool) "roundtrip" true (cmd = cmd')
      | Error e -> Alcotest.fail e)
    sample_commands

let test_response_roundtrip () =
  let quote =
    { Tpm.quoted_composite = [ (17, d20 'x') ]; quote_nonce = d20 'n'; signature = "sig" }
  in
  List.iter
    (fun (ordinal, resp) ->
      match Wire.decode_response ~ordinal (Wire.encode_response resp) with
      | Ok resp' -> Alcotest.(check bool) "roundtrip" true (resp = resp')
      | Error e -> Alcotest.fail e)
    [
      (Wire.ordinal_of_command (Wire.Pcr_read 0), Wire.Digest_resp (d20 'd'));
      (Wire.ordinal_of_command (Wire.Nv_write (0, "")), Wire.Unit_resp);
      (Wire.ordinal_of_command (Wire.Quote { nonce = d20 'n'; selection = [] }), Wire.Quote_resp quote);
      (Wire.ordinal_of_command Wire.Oiap, Wire.Session_resp { handle = 7; nonce_even = d20 'e' });
      ( Wire.ordinal_of_command (Wire.Osap { entity = ""; no_osap = d20 'x' }),
        Wire.Osap_resp { handle = 9; nonce_even = d20 'e'; ne_osap = d20 'f' } );
      (Wire.ordinal_of_command (Wire.Seal { auth; release = []; data = "" }), Wire.Blob_resp "blob");
      (Wire.ordinal_of_command (Wire.Read_counter 0), Wire.Counter_resp 42);
      (Wire.ordinal_of_command (Wire.Pcr_read 0), Wire.Error_resp Tpm_types.Bad_auth);
      (Wire.ordinal_of_command (Wire.Pcr_read 0), Wire.Error_resp Tpm_types.Wrong_pcr_value);
    ]

let test_header_structure () =
  let buf = Wire.encode_command (Wire.Pcr_read 17) in
  Alcotest.(check int) "plain tag" 0x00C1 (Util.int_of_be16 buf 0);
  Alcotest.(check int) "length = buffer" (String.length buf) (Util.int_of_be32 buf 2);
  Alcotest.(check int) "pcr_read ordinal" 0x15 (Util.int_of_be32 buf 6);
  let auth_buf = Wire.encode_command (Wire.Seal { auth; release = []; data = "" }) in
  Alcotest.(check int) "auth1 tag" 0x00C2 (Util.int_of_be16 auth_buf 0);
  Alcotest.(check int) "seal ordinal" 0x17 (Util.int_of_be32 auth_buf 6)

let test_malformed_buffers_rejected () =
  List.iter
    (fun (label, buf) ->
      Alcotest.(check bool) label true (Result.is_error (Wire.decode_command buf)))
    [
      ("empty", "");
      ("short", "\x00\xC1\x00");
      ("bad tag", Util.be16_of_int 0xDEAD ^ Util.be32_of_int 10 ^ Util.be32_of_int 0x15);
      ( "length lies",
        Util.be16_of_int 0x00C1 ^ Util.be32_of_int 999 ^ Util.be32_of_int 0x15 );
      ( "unknown ordinal",
        Util.be16_of_int 0x00C1 ^ Util.be32_of_int 10 ^ Util.be32_of_int 0xFFFF );
      ( "truncated body",
        let b = Wire.encode_command (Wire.Pcr_extend (17, Sha1.digest "m")) in
        (* shorten and fix the length field *)
        let cut = String.sub b 0 (String.length b - 5) in
        String.sub cut 0 2 ^ Util.be32_of_int (String.length cut) ^ String.sub cut 6 (String.length cut - 6) );
      ( "trailing bytes",
        let b = Wire.encode_command (Wire.Pcr_read 17) ^ "junk" in
        String.sub b 0 2 ^ Util.be32_of_int (String.length b) ^ String.sub b 6 (String.length b - 6) );
      ( "wrong tag for auth command",
        let b = Wire.encode_command (Wire.Seal { auth; release = []; data = "" }) in
        Util.be16_of_int 0x00C1 ^ String.sub b 2 (String.length b - 2) );
    ]

let test_dispatch_never_crashes () =
  let tpm = make_tpm () in
  let rng = Prng.create ~seed:"fuzz" in
  for _ = 1 to 200 do
    let len = Prng.int_below rng 64 in
    let resp = Wire.dispatch tpm (Prng.bytes rng len) in
    (* always a well-formed error response *)
    Alcotest.(check bool) "well-formed" true (String.length resp >= 10);
    Alcotest.(check int) "response tag" 0x00C4 (Util.int_of_be16 resp 0)
  done

let test_dispatch_equivalence () =
  (* commands through the wire behave like the direct API *)
  let tpm = make_tpm () in
  (match Wire.call tpm (Wire.Pcr_read 17) with
  | Ok (Wire.Digest_resp d) ->
      Alcotest.(check string) "pcr over the wire" (Result.get_ok (Tpm.pcr_read tpm 17)) d
  | other -> Alcotest.failf "unexpected: %s" (match other with Error e -> e | _ -> "wrong shape"));
  (match Wire.call tpm (Wire.Pcr_read 99) with
  | Ok (Wire.Error_resp Tpm_types.Bad_index) -> ()
  | _ -> Alcotest.fail "bad index not signalled over the wire");
  (match Wire.call tpm (Wire.Get_random 32) with
  | Ok (Wire.Digest_resp r) -> Alcotest.(check int) "random length" 32 (String.length r)
  | _ -> Alcotest.fail "get_random failed");
  match Wire.call tpm (Wire.Quote { nonce = d20 'n'; selection = [ 17 ] }) with
  | Ok (Wire.Quote_resp q) ->
      let payload = "QUOT" ^ Tpm_types.composite_hash q.Tpm.quoted_composite ^ d20 'n' in
      Alcotest.(check bool) "wire quote verifies" true
        (Pkcs1.verify (Tpm.aik_public tpm) Hash.SHA1 ~msg:payload
           ~signature:q.Tpm.signature)
  | _ -> Alcotest.fail "quote over the wire failed"

let test_seal_unseal_over_the_wire () =
  (* the full authorized seal/unseal protocol, transported as bytes *)
  let tpm = make_tpm () in
  let rng = Prng.create ~seed:"wire-seal" in
  let no_osap = Prng.bytes rng 20 in
  let handle, nonce_even, ne_osap =
    match Wire.call tpm (Wire.Osap { entity = "SRK"; no_osap }) with
    | Ok (Wire.Osap_resp { handle; nonce_even; ne_osap }) -> (handle, nonce_even, ne_osap)
    | _ -> Alcotest.fail "osap failed"
  in
  let shared = Auth.osap_shared_secret ~usage_auth:(Tpm.srk_auth tpm) ~ne_osap ~no_osap in
  let release = [] and data = "bytes on the bus" in
  let nonce_odd = Prng.bytes rng 20 in
  let mac =
    Auth.auth_mac ~secret:shared
      ~command_digest:(Tpm.seal_command_digest ~release ~data)
      ~nonce_even ~nonce_odd
  in
  let blob =
    match
      Wire.call tpm
        (Wire.Seal { auth = { Tpm.session = handle; nonce_odd; mac }; release; data })
    with
    | Ok (Wire.Blob_resp b) -> b
    | Ok (Wire.Error_resp e) -> Alcotest.fail (Tpm_types.error_to_string e)
    | _ -> Alcotest.fail "seal failed"
  in
  (* a fresh session for the unseal (the seal consumed the first one) *)
  let no_osap2 = Prng.bytes rng 20 in
  let handle2, nonce_even2, ne_osap2 =
    match Wire.call tpm (Wire.Osap { entity = "SRK"; no_osap = no_osap2 }) with
    | Ok (Wire.Osap_resp { handle; nonce_even; ne_osap }) -> (handle, nonce_even, ne_osap)
    | _ -> Alcotest.fail "second osap failed"
  in
  let shared2 =
    Auth.osap_shared_secret ~usage_auth:(Tpm.srk_auth tpm) ~ne_osap:ne_osap2
      ~no_osap:no_osap2
  in
  let nonce_odd2 = Prng.bytes rng 20 in
  let mac2 =
    Auth.auth_mac ~secret:shared2
      ~command_digest:(Tpm.unseal_command_digest ~blob)
      ~nonce_even:nonce_even2 ~nonce_odd:nonce_odd2
  in
  match
    Wire.call tpm
      (Wire.Unseal { auth = { Tpm.session = handle2; nonce_odd = nonce_odd2; mac = mac2 }; blob })
  with
  | Ok (Wire.Blob_resp recovered) -> Alcotest.(check string) "roundtrip" data recovered
  | Ok (Wire.Error_resp e) -> Alcotest.fail (Tpm_types.error_to_string e)
  | _ -> Alcotest.fail "unseal failed"

let test_driver_submit () =
  let machine = Machine.create ~memory_size:(1024 * 1024) Timing.default in
  let tpm = Tpm.create machine (Prng.create ~seed:"drv-wire") ~key_bits:512 in
  let drv = Flicker_slb.Mod_tpm_driver.attach tpm in
  (* unclaimed: the bus is not ours *)
  Alcotest.(check bool) "unclaimed submit fails" true
    (Result.is_error (Flicker_slb.Mod_tpm_driver.submit drv (Wire.Pcr_read 17)));
  ignore (Flicker_slb.Mod_tpm_driver.claim drv);
  (match Flicker_slb.Mod_tpm_driver.submit drv (Wire.Pcr_read 17) with
  | Ok (Wire.Digest_resp d) -> Alcotest.(check int) "digest" 20 (String.length d)
  | _ -> Alcotest.fail "submit failed");
  (* raw garbage comes back as an error response, not an exception *)
  match Flicker_slb.Mod_tpm_driver.submit_raw drv "garbage" with
  | Ok resp -> Alcotest.(check bool) "error response" true (Util.int_of_be32 resp 6 <> 0)
  | Error e -> Alcotest.fail e

let prop_command_roundtrip =
  let gen =
    QCheck.Gen.(
      oneof
        [
          map (fun i -> Wire.Pcr_read (abs i mod 24)) int;
          map (fun s -> Wire.Pcr_extend (17, Sha1.digest s)) string;
          map (fun n -> Wire.Get_random (abs n mod 1024)) int;
          map (fun s -> Wire.Nv_write (3, s)) (string_size (int_range 0 200));
          map
            (fun (a, b) ->
              Wire.Seal
                {
                  auth;
                  release = [ (17, Sha1.digest a) ];
                  data = b;
                })
            (pair string (string_size (int_range 0 300)));
          map (fun s -> Wire.Unseal { auth; blob = s }) (string_size (int_range 0 300));
        ])
  in
  QCheck.Test.make ~name:"wire command roundtrip" ~count:200 (QCheck.make gen)
    (fun cmd -> Wire.decode_command (Wire.encode_command cmd) = Ok cmd)

let () =
  Alcotest.run "tpm-wire"
    [
      ( "marshaling",
        [
          Alcotest.test_case "command roundtrip" `Quick test_command_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
          Alcotest.test_case "header structure" `Quick test_header_structure;
          Alcotest.test_case "malformed rejected" `Quick test_malformed_buffers_rejected;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "fuzz never crashes" `Quick test_dispatch_never_crashes;
          Alcotest.test_case "equivalence" `Quick test_dispatch_equivalence;
          Alcotest.test_case "authorized seal/unseal" `Quick test_seal_unseal_over_the_wire;
          Alcotest.test_case "driver submit" `Quick test_driver_submit;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_command_roundtrip ]);
    ]
