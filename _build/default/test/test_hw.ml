open Flicker_hw

let timing = Timing.default
let make_machine () = Machine.create ~memory_size:(1024 * 1024) ~cores:2 timing

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.now c);
  Clock.advance c 12.5;
  Clock.advance c 0.5;
  Alcotest.(check (float 1e-9)) "accumulates" 13.0 (Clock.now c);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance: negative")
    (fun () -> Clock.advance c (-1.0));
  let (), span = Clock.time c (fun () -> Clock.advance c 5.0) in
  Alcotest.(check (float 1e-9)) "span" 5.0 (Clock.duration span)

let test_memory_rw () =
  let m = Memory.create ~size:8192 in
  Memory.write m ~addr:100 "hello";
  Alcotest.(check string) "read back" "hello" (Memory.read m ~addr:100 ~len:5);
  Memory.write_byte m 0 0xAB;
  Alcotest.(check int) "byte" 0xAB (Memory.read_byte m 0);
  Memory.write_u16_le m 10 0x1234;
  Alcotest.(check int) "u16le" 0x1234 (Memory.read_u16_le m 10);
  Alcotest.(check int) "u16 byte order" 0x34 (Memory.read_byte m 10);
  Memory.zero m ~addr:100 ~len:5;
  Alcotest.(check string) "zeroed" "\000\000\000\000\000" (Memory.read m ~addr:100 ~len:5)

let test_memory_bounds () =
  let m = Memory.create ~size:4096 in
  Alcotest.(check bool) "oob read" true
    (match Memory.read m ~addr:4090 ~len:10 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative addr" true
    (match Memory.read m ~addr:(-1) ~len:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad size" true
    (match Memory.create ~size:1000 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_memory_pages () =
  Alcotest.(check int) "page of 0" 0 (Memory.page_of_addr 0);
  Alcotest.(check int) "page of 4096" 1 (Memory.page_of_addr 4096);
  Alcotest.(check (pair int int)) "range" (0, 1)
    (Memory.pages_of_range ~addr:4000 ~len:200);
  Alcotest.(check (pair int int)) "single page" (2, 2)
    (Memory.pages_of_range ~addr:8192 ~len:4096)

let test_find_pattern () =
  let m = Memory.create ~size:8192 in
  Memory.write m ~addr:5000 "NEEDLE";
  Alcotest.(check (option int)) "found" (Some 5000) (Memory.find_pattern m "NEEDLE");
  Alcotest.(check (option int)) "absent" None (Memory.find_pattern m "MISSING");
  Memory.zero m ~addr:5000 ~len:6;
  Alcotest.(check (option int)) "erased" None (Memory.find_pattern m "NEEDLE")

let test_dev () =
  let dev = Dev.create ~pages:16 in
  Alcotest.(check bool) "initially open" true (Dev.allows dev ~addr:0 ~len:65536);
  Dev.protect_range dev ~addr:4096 ~len:8192;
  Alcotest.(check (list int)) "protected pages" [ 1; 2 ] (Dev.protected_pages dev);
  Alcotest.(check bool) "blocked" false (Dev.allows dev ~addr:5000 ~len:10);
  Alcotest.(check bool) "straddling blocked" false (Dev.allows dev ~addr:4000 ~len:200);
  Alcotest.(check bool) "outside allowed" true (Dev.allows dev ~addr:0 ~len:4096);
  Alcotest.(check bool) "after allowed" true (Dev.allows dev ~addr:12288 ~len:100);
  Dev.unprotect_range dev ~addr:4096 ~len:4096;
  Alcotest.(check (list int)) "partially cleared" [ 2 ] (Dev.protected_pages dev);
  Dev.clear dev;
  Alcotest.(check (list int)) "cleared" [] (Dev.protected_pages dev);
  Alcotest.(check bool) "empty access ok" true (Dev.allows dev ~addr:0 ~len:0)

let test_dma_blocked_by_dev () =
  let m = make_machine () in
  let nic = Dma.create m ~name:"evil-nic" in
  Flicker_hw.Memory.write m.Machine.memory ~addr:0x1000 "secret";
  (match Dma.read nic ~addr:0x1000 ~len:6 with
  | Ok data -> Alcotest.(check string) "dma read works when open" "secret" data
  | Error e -> Alcotest.fail e);
  Dev.protect_range m.Machine.dev ~addr:0x1000 ~len:4096;
  Alcotest.(check bool) "read blocked" true (Result.is_error (Dma.read nic ~addr:0x1000 ~len:6));
  Alcotest.(check bool) "write blocked" true
    (Result.is_error (Dma.write nic ~addr:0x1000 ~data:"evil"));
  Alcotest.(check string) "memory untouched" "secret"
    (Flicker_hw.Memory.read m.Machine.memory ~addr:0x1000 ~len:6);
  let attempts = Dma.attempts nic in
  Alcotest.(check int) "attempts logged" 3 (List.length attempts);
  Alcotest.(check bool) "blocked flagged" true
    (List.exists (fun a -> a.Dma.blocked) attempts)

let test_cpu () =
  let cpus = Cpu.create ~cores:4 in
  Alcotest.(check bool) "bsp is core 0" true ((Cpu.bsp cpus).Cpu.id = 0);
  Alcotest.(check int) "three aps" 3 (List.length (Cpu.aps cpus));
  Alcotest.(check bool) "not parked initially" false (Cpu.all_aps_parked cpus);
  List.iter (fun (c : Cpu.core) -> c.Cpu.run_state <- Cpu.Wait_for_sipi) (Cpu.aps cpus);
  Alcotest.(check bool) "parked" true (Cpu.all_aps_parked cpus);
  let seg = { Cpu.base = 100; limit = 49 } in
  Alcotest.(check bool) "segment contains" true (Cpu.segment_contains seg ~addr:0 ~len:50);
  Alcotest.(check bool) "segment overflow" false (Cpu.segment_contains seg ~addr:0 ~len:51)

let test_apic () =
  let m = make_machine () in
  let ap = List.hd (Cpu.aps m.Machine.cpus) in
  Alcotest.(check bool) "ap running" true (ap.Cpu.run_state = Cpu.Running);
  (* INIT IPI to a busy AP must fail *)
  Alcotest.(check bool) "init to busy fails" true
    (match Apic.send_init_ipi m with exception Failure _ -> true | () -> false);
  Apic.deschedule_aps m;
  Alcotest.(check bool) "descheduled" true (ap.Cpu.run_state = Cpu.Descheduled);
  Apic.send_init_ipi m;
  Alcotest.(check bool) "parked" true (Cpu.all_aps_parked m.Machine.cpus);
  Apic.release_aps m;
  Alcotest.(check bool) "released" true (ap.Cpu.run_state = Cpu.Running)

(* Table 2 calibration: the timing model must reproduce the measured
   SKINIT latencies for each SLB size. *)
let test_timing_table2 () =
  let check_ms name expected ~slb_kb =
    Alcotest.(check (float 0.5)) name expected
      (Timing.skinit_ms timing ~slb_bytes:(slb_kb * 1024))
  in
  check_ms "0 KB" 0.9 ~slb_kb:0;
  check_ms "4 KB" 11.9 ~slb_kb:4;
  check_ms "16 KB" 45.0 ~slb_kb:16;
  check_ms "32 KB" 89.2 ~slb_kb:32;
  check_ms "64 KB" 177.5 ~slb_kb:64

let test_timing_calibration () =
  (* Table 1: hashing the 5.06 MB kernel takes ~22 ms *)
  Alcotest.(check (float 0.5)) "kernel hash" 22.0
    (Timing.sha1_ms timing ~bytes:(5_306_000));
  (* Figure 9a/9b CPU costs *)
  Alcotest.(check (float 0.01)) "keygen 1024" 185.7 (Timing.rsa_keygen_ms timing ~bits:1024);
  Alcotest.(check (float 0.01)) "decrypt 1024" 4.6 (Timing.rsa_private_ms timing ~bits:1024);
  (* scaling shape: 2048-bit keygen is ~8x slower *)
  Alcotest.(check (float 1.0)) "keygen 2048" (185.7 *. 8.0)
    (Timing.rsa_keygen_ms timing ~bits:2048);
  Alcotest.(check (float 0.01)) "getrandom 128B" 1.3 (Timing.get_random_ms timing ~bytes:128);
  Alcotest.(check (float 0.01)) "getrandom 129B" 2.6 (Timing.get_random_ms timing ~bytes:129);
  (* network: one-way ~ half the 9.45 ms RTT *)
  Alcotest.(check (float 0.2)) "network" 4.7 (Timing.network_ms timing ~bytes:64)

let test_timing_profiles () =
  Alcotest.(check bool) "infineon quote faster" true
    (Timing.infineon.Timing.quote_ms < Timing.broadcom.Timing.quote_ms);
  Alcotest.(check bool) "infineon unseal faster" true
    (Timing.infineon.Timing.unseal_ms < Timing.broadcom.Timing.unseal_ms);
  let t = Timing.with_tpm Timing.infineon timing in
  Alcotest.(check string) "with_tpm swaps" "Infineon v1.2" t.Timing.tpm.Timing.tpm_name

(* --- SKINIT semantics --- *)

let machine_with_tpm () =
  let m = make_machine () in
  let measured = ref None in
  let resets = ref 0 in
  Machine.set_tpm_hooks m
    {
      Machine.dynamic_pcr_reset = (fun () -> incr resets);
      measure_into_pcr17 = (fun contents -> measured := Some contents);
    };
  (m, measured, resets)

let write_slb m ~addr ~len ~entry =
  Memory.write_u16_le m.Machine.memory addr len;
  Memory.write_u16_le m.Machine.memory (addr + 2) entry;
  Memory.write m.Machine.memory ~addr:(addr + 4) (String.make (len - 4) 'P')

let park m =
  Apic.deschedule_aps m;
  Apic.send_init_ipi m

let test_skinit_happy_path () =
  let m, measured, resets = machine_with_tpm () in
  write_slb m ~addr:0x10000 ~len:1000 ~entry:4;
  park m;
  let launch = Skinit.execute m ~slb_base:0x10000 in
  Alcotest.(check int) "length" 1000 launch.Skinit.slb_length;
  Alcotest.(check int) "entry" 0x10004 launch.Skinit.entry_point;
  Alcotest.(check int) "window" 65536 launch.Skinit.protected_len;
  Alcotest.(check int) "dynamic reset" 1 !resets;
  (match !measured with
  | Some contents -> Alcotest.(check int) "measured bytes" 1000 (String.length contents)
  | None -> Alcotest.fail "nothing measured");
  let bsp = Cpu.bsp m.Machine.cpus in
  Alcotest.(check bool) "interrupts off" false bsp.Cpu.interrupts_enabled;
  Alcotest.(check bool) "debug off" false bsp.Cpu.debug_enabled;
  Alcotest.(check bool) "paging off" false bsp.Cpu.paging_enabled;
  Alcotest.(check bool) "flat protected" true (bsp.Cpu.mode = Cpu.Flat_protected);
  (* DEV covers the whole window *)
  Alcotest.(check bool) "dev blocks window" false
    (Dev.allows m.Machine.dev ~addr:0x10000 ~len:65536);
  Skinit.teardown_dev m launch;
  Alcotest.(check bool) "dev dropped" true (Dev.allows m.Machine.dev ~addr:0x10000 ~len:65536)

let test_skinit_charges_time () =
  let m, _, _ = machine_with_tpm () in
  write_slb m ~addr:0x10000 ~len:(16 * 1024) ~entry:4;
  park m;
  let before = Clock.now m.Machine.clock in
  ignore (Skinit.execute m ~slb_base:0x10000);
  Alcotest.(check (float 0.5)) "16 KB SKINIT time" 45.0 (Clock.now m.Machine.clock -. before)

let test_skinit_preconditions () =
  (* busy APs *)
  let m, _, _ = machine_with_tpm () in
  write_slb m ~addr:0x10000 ~len:1000 ~entry:4;
  (match Skinit.execute m ~slb_base:0x10000 with
  | _ -> Alcotest.fail "should fail with busy APs"
  | exception Skinit.Skinit_error _ -> ());
  (* ring 3 caller *)
  let m2, _, _ = machine_with_tpm () in
  write_slb m2 ~addr:0x10000 ~len:1000 ~entry:4;
  park m2;
  (Cpu.bsp m2.Machine.cpus).Cpu.ring <- 3;
  (match Skinit.execute m2 ~slb_base:0x10000 with
  | _ -> Alcotest.fail "should fail from ring 3"
  | exception Skinit.Skinit_error _ -> ());
  (* no TPM *)
  let m3 = make_machine () in
  write_slb m3 ~addr:0x10000 ~len:1000 ~entry:4;
  park m3;
  (match Skinit.execute m3 ~slb_base:0x10000 with
  | _ -> Alcotest.fail "should fail without TPM"
  | exception Skinit.Skinit_error _ -> ());
  (* bad header: entry beyond length *)
  let m4, _, _ = machine_with_tpm () in
  write_slb m4 ~addr:0x10000 ~len:100 ~entry:200;
  park m4;
  (match Skinit.execute m4 ~slb_base:0x10000 with
  | _ -> Alcotest.fail "should fail with bad entry"
  | exception Skinit.Skinit_error _ -> ());
  (* unaligned base *)
  let m5, _, _ = machine_with_tpm () in
  park m5;
  (match Skinit.execute m5 ~slb_base:0x10001 with
  | _ -> Alcotest.fail "should fail unaligned"
  | exception Skinit.Skinit_error _ -> ());
  (* window past end of memory *)
  let m6, _, _ = machine_with_tpm () in
  park m6;
  match Skinit.execute m6 ~slb_base:(1024 * 1024 - 4096) with
  | _ -> Alcotest.fail "should fail out of range"
  | exception Skinit.Skinit_error _ -> ()

let test_machine_events () =
  let m = make_machine () in
  Machine.log_event m "first";
  Clock.advance m.Machine.clock 10.0;
  Machine.log_event m "second";
  let all = Machine.events_between m ~since:0.0 in
  Alcotest.(check int) "two events" 2 (List.length all);
  let late = Machine.events_between m ~since:5.0 in
  Alcotest.(check int) "one late event" 1 (List.length late);
  Alcotest.(check string) "ordering" "second" (List.hd late).Machine.detail

(* property: the DEV blocks an access iff the access overlaps a
   protected page *)
let prop_dev_soundness =
  QCheck.Test.make ~name:"DEV allows iff no protected page overlaps" ~count:200
    QCheck.(
      triple (int_range 0 (16 * 4096 - 1)) (int_range 1 8192)
        (pair (int_range 0 15) (int_range 1 4)))
    (fun (addr, len, (first_page, page_count)) ->
      let dev = Dev.create ~pages:16 in
      Dev.protect_range dev ~addr:(first_page * 4096)
        ~len:(min page_count (16 - first_page) * 4096);
      let len = min len ((16 * 4096) - addr) in
      let lo = addr / 4096 and hi = (addr + len - 1) / 4096 in
      let overlaps =
        List.exists
          (fun p -> p >= lo && p <= hi)
          (Dev.protected_pages dev)
      in
      Dev.allows dev ~addr ~len = not overlaps)

let prop_memory_rw =
  QCheck.Test.make ~name:"memory read-after-write" ~count:200
    QCheck.(pair (int_range 0 4000) (string_of_size Gen.(int_range 0 96)))
    (fun (addr, data) ->
      let m = Memory.create ~size:8192 in
      Memory.write m ~addr data;
      Memory.read m ~addr ~len:(String.length data) = data)

let () =
  Alcotest.run "hw"
    [
      ( "clock+memory",
        [
          Alcotest.test_case "clock" `Quick test_clock;
          Alcotest.test_case "memory rw" `Quick test_memory_rw;
          Alcotest.test_case "memory bounds" `Quick test_memory_bounds;
          Alcotest.test_case "pages" `Quick test_memory_pages;
          Alcotest.test_case "find pattern" `Quick test_find_pattern;
        ] );
      ( "dev+dma",
        [
          Alcotest.test_case "dev bitmap" `Quick test_dev;
          Alcotest.test_case "dma vs dev" `Quick test_dma_blocked_by_dev;
        ] );
      ( "cpu+apic",
        [
          Alcotest.test_case "cpu" `Quick test_cpu;
          Alcotest.test_case "apic" `Quick test_apic;
        ] );
      ( "timing",
        [
          Alcotest.test_case "table 2 calibration" `Quick test_timing_table2;
          Alcotest.test_case "cpu calibration" `Quick test_timing_calibration;
          Alcotest.test_case "profiles" `Quick test_timing_profiles;
        ] );
      ( "skinit",
        [
          Alcotest.test_case "happy path" `Quick test_skinit_happy_path;
          Alcotest.test_case "charges time" `Quick test_skinit_charges_time;
          Alcotest.test_case "preconditions" `Quick test_skinit_preconditions;
          Alcotest.test_case "event log" `Quick test_machine_events;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_dev_soundness; prop_memory_rw ] );
    ]
