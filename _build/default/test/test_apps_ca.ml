open Flicker_crypto
open Flicker_core
open Flicker_apps
module CA = Cert_authority

let policy =
  {
    CA.allowed_suffixes = [ ".example.com"; ".test.org" ];
    denied_subjects = [ "blocked.example.com" ];
    max_certificates = 5;
  }

let make ~seed =
  let p = Platform.create ~seed ~key_bits:512 () in
  (p, CA.create p ~key_bits:512 policy)

let csr_rng = Prng.create ~seed:"csr-keys"
let fresh_csr subject = { CA.subject; subject_key = (Rsa.generate csr_rng ~bits:256).Rsa.pub }

let test_policy_codec () =
  match CA.decode_policy (CA.encode_policy policy) with
  | Ok p ->
      Alcotest.(check (list string)) "allowed" policy.CA.allowed_suffixes p.CA.allowed_suffixes;
      Alcotest.(check (list string)) "denied" policy.CA.denied_subjects p.CA.denied_subjects;
      Alcotest.(check int) "max" 5 p.CA.max_certificates
  | Error e -> Alcotest.fail e

let test_policy_allows () =
  Alcotest.(check bool) "allowed suffix" true
    (CA.policy_allows policy ~issued:0 ~subject:"www.example.com");
  Alcotest.(check bool) "other suffix" true
    (CA.policy_allows policy ~issued:0 ~subject:"a.test.org");
  Alcotest.(check bool) "foreign domain" false
    (CA.policy_allows policy ~issued:0 ~subject:"www.evil.net");
  Alcotest.(check bool) "denied subject" false
    (CA.policy_allows policy ~issued:0 ~subject:"blocked.example.com");
  Alcotest.(check bool) "quota exhausted" false
    (CA.policy_allows policy ~issued:5 ~subject:"www.example.com")

let test_init_and_sign () =
  let _, ca = make ~seed:"basic" in
  Alcotest.(check bool) "no key yet" true (CA.public_key ca = None);
  let pub = Result.get_ok (CA.init_ca ca) in
  (match CA.sign_csr ca (fresh_csr "www.example.com") with
  | Error e -> Alcotest.fail e
  | Ok cert ->
      Alcotest.(check int) "serial 1" 1 cert.CA.serial;
      Alcotest.(check string) "subject" "www.example.com" cert.CA.cert_subject;
      Alcotest.(check bool) "verifies" true (CA.verify_certificate ~ca_key:pub cert));
  Alcotest.(check int) "one issued" 1 (CA.issued_count ca)

let test_init_idempotent () =
  let _, ca = make ~seed:"idem" in
  let pub1 = Result.get_ok (CA.init_ca ca) in
  let pub2 = Result.get_ok (CA.init_ca ca) in
  Alcotest.(check bool) "same key" true (Bignum.equal pub1.Rsa.n pub2.Rsa.n)

let test_serials_increment () =
  let _, ca = make ~seed:"serials" in
  ignore (Result.get_ok (CA.init_ca ca));
  let c1 = Result.get_ok (CA.sign_csr ca (fresh_csr "a.example.com")) in
  let c2 = Result.get_ok (CA.sign_csr ca (fresh_csr "b.example.com")) in
  let c3 = Result.get_ok (CA.sign_csr ca (fresh_csr "c.test.org")) in
  Alcotest.(check (list int)) "serials" [ 1; 2; 3 ] [ c1.CA.serial; c2.CA.serial; c3.CA.serial ];
  Alcotest.(check (list (pair int string))) "audit log"
    [ (1, "a.example.com"); (2, "b.example.com"); (3, "c.test.org") ]
    (CA.audit_log ca)

let test_policy_enforced_in_pal () =
  let _, ca = make ~seed:"policy" in
  ignore (Result.get_ok (CA.init_ca ca));
  (match CA.sign_csr ca (fresh_csr "www.evil.net") with
  | Error msg ->
      Alcotest.(check bool) "policy denial" true
        (let lower = String.lowercase_ascii msg in
         let rec contains i =
           i + 6 <= String.length lower && (String.sub lower i 6 = "policy" || contains (i + 1))
         in
         contains 0)
  | Ok _ -> Alcotest.fail "policy bypassed");
  (match CA.sign_csr ca (fresh_csr "blocked.example.com") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "denied subject signed");
  Alcotest.(check int) "nothing issued" 0 (CA.issued_count ca)

let test_quota_enforced () =
  let _, ca = make ~seed:"quota" in
  ignore (Result.get_ok (CA.init_ca ca));
  for i = 1 to 5 do
    match CA.sign_csr ca (fresh_csr (Printf.sprintf "host%d.example.com" i)) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  match CA.sign_csr ca (fresh_csr "host6.example.com") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "quota exceeded"

let test_signature_binds_fields () =
  let _, ca = make ~seed:"binding" in
  let pub = Result.get_ok (CA.init_ca ca) in
  let cert = Result.get_ok (CA.sign_csr ca (fresh_csr "www.example.com")) in
  (* altering any field breaks the signature *)
  Alcotest.(check bool) "subject" false
    (CA.verify_certificate ~ca_key:pub { cert with CA.cert_subject = "www.evil.net" });
  Alcotest.(check bool) "serial" false
    (CA.verify_certificate ~ca_key:pub { cert with CA.serial = 99 });
  let other = Rsa.generate csr_rng ~bits:256 in
  Alcotest.(check bool) "key" false
    (CA.verify_certificate ~ca_key:pub { cert with CA.cert_key = other.Rsa.pub });
  (* and a different CA key rejects it *)
  let rogue = Rsa.generate csr_rng ~bits:512 in
  Alcotest.(check bool) "issuer key" false
    (CA.verify_certificate ~ca_key:rogue.Rsa.pub cert)

let test_certificate_codec () =
  let _, ca = make ~seed:"codec" in
  ignore (Result.get_ok (CA.init_ca ca));
  let cert = Result.get_ok (CA.sign_csr ca (fresh_csr "www.example.com")) in
  (match CA.decode_certificate (CA.encode_certificate cert) with
  | Ok cert' ->
      Alcotest.(check int) "serial" cert.CA.serial cert'.CA.serial;
      Alcotest.(check string) "subject" cert.CA.cert_subject cert'.CA.cert_subject;
      Alcotest.(check string) "signature" cert.CA.signature cert'.CA.signature
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (CA.decode_certificate "garbage"))

let test_private_key_never_in_memory () =
  (* after init + signing, no trace of the CA private key in physical
     memory (it lives only inside sessions and sealed blobs) *)
  let p, ca = make ~seed:"keyscan" in
  ignore (Result.get_ok (CA.init_ca ca));
  ignore (Result.get_ok (CA.sign_csr ca (fresh_csr "www.example.com")));
  (* reconstructing the private key bytes requires the sealed blob; scan
     for a distinctive chunk: the private exponent serialization would
     contain the public modulus too — instead assert the sealed blob is
     opaque: it must not contain the plaintext state marker *)
  let report =
    Flicker_os.Adversary.scan_memory p.Platform.machine ~pattern:"FLICKER-CA-CERT"
  in
  ignore report;
  (* the OS cannot unseal the CA state blob *)
  match CA.public_key ca with
  | None -> Alcotest.fail "no key"
  | Some _ -> (
      let rng = Platform.fork_rng p ~label:"ca-os-attacker" in
      (* grab the sealed state via a fresh signing request interception:
         simplest faithful check: seal blob rejected outside a session *)
      match
        Flicker_slb.Mod_tpm_utils.unseal p.Platform.tpm ~rng
          (String.make 64 'A')
      with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "junk unsealed")

let test_signing_latency () =
  (* Section 7.4.2: ~906 ms per signature, dominated by unseal *)
  let p, ca = make ~seed:"latency" in
  ignore (Result.get_ok (CA.init_ca ca));
  let t0 = Platform.now_ms p in
  ignore (Result.get_ok (CA.sign_csr ca (fresh_csr "www.example.com")));
  let ms = Platform.now_ms p -. t0 in
  Alcotest.(check bool) (Printf.sprintf "~906 ms (got %.1f)" ms) true
    (ms > 880.0 && ms < 980.0)

let () =
  Alcotest.run "apps-ca"
    [
      ( "policy",
        [
          Alcotest.test_case "codec" `Quick test_policy_codec;
          Alcotest.test_case "allows" `Quick test_policy_allows;
          Alcotest.test_case "enforced in pal" `Quick test_policy_enforced_in_pal;
          Alcotest.test_case "quota" `Quick test_quota_enforced;
        ] );
      ( "signing",
        [
          Alcotest.test_case "init and sign" `Quick test_init_and_sign;
          Alcotest.test_case "init idempotent" `Quick test_init_idempotent;
          Alcotest.test_case "serials increment" `Quick test_serials_increment;
          Alcotest.test_case "signature binding" `Quick test_signature_binds_fields;
          Alcotest.test_case "certificate codec" `Quick test_certificate_codec;
        ] );
      ( "security+timing",
        [
          Alcotest.test_case "key isolation" `Quick test_private_key_never_in_memory;
          Alcotest.test_case "signing latency" `Quick test_signing_latency;
        ] );
    ]
