open Flicker_crypto

let check = Alcotest.(check string)
let hex = Util.to_hex

(* FIPS-197 Appendix C *)
let test_aes_fips_vectors () =
  let pt = Util.of_hex "00112233445566778899aabbccddeeff" in
  let k128 = Aes.expand_key (Util.of_hex "000102030405060708090a0b0c0d0e0f") in
  check "aes-128 enc" "69c4e0d86a7b0430d8cdb78070b4c55a" (hex (Aes.encrypt_block k128 pt));
  check "aes-128 dec" (hex pt)
    (hex (Aes.decrypt_block k128 (Util.of_hex "69c4e0d86a7b0430d8cdb78070b4c55a")));
  let k192 =
    Aes.expand_key (Util.of_hex "000102030405060708090a0b0c0d0e0f1011121314151617")
  in
  check "aes-192 enc" "dda97ca4864cdfe06eaf70a0ec0d7191" (hex (Aes.encrypt_block k192 pt));
  let k256 =
    Aes.expand_key
      (Util.of_hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
  in
  check "aes-256 enc" "8ea2b7ca516745bfeafc49904b496089" (hex (Aes.encrypt_block k256 pt));
  check "aes-256 dec" (hex pt)
    (hex (Aes.decrypt_block k256 (Util.of_hex "8ea2b7ca516745bfeafc49904b496089")))

(* NIST SP 800-38A F.2.1: AES-128-CBC *)
let test_aes_cbc_nist () =
  let key = Aes.expand_key (Util.of_hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let iv = Util.of_hex "000102030405060708090a0b0c0d0e0f" in
  let pt = Util.of_hex "6bc1bee22e409f96e93d7e117393172a" in
  let ct = Aes.encrypt_cbc key ~iv pt in
  (* first block must match the NIST vector; the rest is our padding *)
  check "cbc block 1" "7649abac8119b246cee98e9b12e9197d" (hex (String.sub ct 0 16));
  check "cbc roundtrip" (hex pt) (hex (Aes.decrypt_cbc key ~iv ct))

let test_aes_cbc_errors () =
  let key = Aes.expand_key (String.make 16 'k') in
  Alcotest.check_raises "bad iv" (Invalid_argument "Aes.encrypt_cbc: iv must be 16 bytes")
    (fun () -> ignore (Aes.encrypt_cbc key ~iv:"short" "data"));
  Alcotest.check_raises "bad ct length"
    (Invalid_argument "Aes.decrypt_cbc: malformed ciphertext") (fun () ->
      ignore (Aes.decrypt_cbc key ~iv:(String.make 16 'i') "12345"));
  (* corrupting the last block must break the padding check (usually) *)
  let iv = String.make 16 'i' in
  let ct = Bytes.of_string (Aes.encrypt_cbc key ~iv "hello world") in
  Bytes.set ct (Bytes.length ct - 1) '\xff';
  Alcotest.(check bool) "tampered ct rejected or garbled" true
    (match Aes.decrypt_cbc key ~iv (Bytes.to_string ct) with
    | exception Invalid_argument _ -> true
    | recovered -> recovered <> "hello world")

let test_aes_key_errors () =
  Alcotest.check_raises "bad key size"
    (Invalid_argument "Aes.expand_key: key must be 16, 24 or 32 bytes") (fun () ->
      ignore (Aes.expand_key "tooshort"));
  let key = Aes.expand_key (String.make 16 'k') in
  Alcotest.check_raises "bad block" (Invalid_argument "Aes.encrypt_block: need 16 bytes")
    (fun () -> ignore (Aes.encrypt_block key "short"))

let test_aes_ctr () =
  (* NIST SP 800-38A F.5.1 *)
  let key = Aes.expand_key (Util.of_hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let nonce = Util.of_hex "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  let pt =
    Util.of_hex
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
  in
  let ct = Aes.ctr key ~nonce pt in
  check "ctr blocks 1-2"
    "874d6191b620e3261bef6864990db6ce9806f66b7970fdff8617187bb9fffdff" (hex ct);
  check "ctr roundtrip" (hex pt) (hex (Aes.ctr key ~nonce ct));
  (* partial final block *)
  let short = "not a multiple of sixteen!" in
  check "ctr partial" short (Aes.ctr key ~nonce (Aes.ctr key ~nonce short))

let test_rc4_vectors () =
  check "rc4 Key/Plaintext" "bbf316e8d940af0ad3" (hex (Rc4.encrypt ~key:"Key" "Plaintext"));
  check "rc4 Wiki/pedia" "1021bf0420" (hex (Rc4.encrypt ~key:"Wiki" "pedia"));
  check "rc4 Secret" "45a01f645fc35b383552544b9bf5"
    (hex (Rc4.encrypt ~key:"Secret" "Attack at dawn"))

let test_rc4_stream () =
  let c = Rc4.create ~key:"streaming" in
  let part1 = Rc4.process c "hello " in
  let part2 = Rc4.process c "world" in
  let oneshot = Rc4.encrypt ~key:"streaming" "hello world" in
  check "streamed equals one-shot" (hex oneshot) (hex (part1 ^ part2));
  Alcotest.(check int) "keystream length" 100
    (String.length (Rc4.keystream (Rc4.create ~key:"k") 100));
  Alcotest.check_raises "empty key" (Invalid_argument "Rc4.create: key must be 1-256 bytes")
    (fun () -> ignore (Rc4.create ~key:""))

let arb_data = QCheck.(string_of_size Gen.(int_range 0 500))

let prop_cbc_roundtrip =
  QCheck.Test.make ~name:"AES-CBC roundtrip" ~count:100 arb_data (fun data ->
      let key = Aes.expand_key (Sha256.digest "k" |> fun s -> String.sub s 0 16) in
      let iv = String.sub (Sha256.digest data) 0 16 in
      Aes.decrypt_cbc key ~iv (Aes.encrypt_cbc key ~iv data) = data)

let prop_ctr_involution =
  QCheck.Test.make ~name:"AES-CTR is an involution" ~count:100 arb_data (fun data ->
      let key = Aes.expand_key (String.make 32 'q') in
      let nonce = String.make 16 'n' in
      Aes.ctr key ~nonce (Aes.ctr key ~nonce data) = data)

let prop_rc4_involution =
  QCheck.Test.make ~name:"RC4 is an involution" ~count:100 arb_data (fun data ->
      Rc4.encrypt ~key:"prop" (Rc4.encrypt ~key:"prop" data) = data)

let prop_cbc_expands =
  QCheck.Test.make ~name:"CBC ciphertext is a padded multiple of 16" ~count:100 arb_data
    (fun data ->
      let key = Aes.expand_key (String.make 16 'z') in
      let ct = Aes.encrypt_cbc key ~iv:(String.make 16 'i') data in
      String.length ct mod 16 = 0 && String.length ct > String.length data)

let () =
  Alcotest.run "ciphers"
    [
      ( "aes",
        [
          Alcotest.test_case "FIPS-197 vectors" `Quick test_aes_fips_vectors;
          Alcotest.test_case "NIST CBC vector" `Quick test_aes_cbc_nist;
          Alcotest.test_case "CBC errors" `Quick test_aes_cbc_errors;
          Alcotest.test_case "key errors" `Quick test_aes_key_errors;
          Alcotest.test_case "NIST CTR vector" `Quick test_aes_ctr;
        ] );
      ( "rc4",
        [
          Alcotest.test_case "vectors" `Quick test_rc4_vectors;
          Alcotest.test_case "streaming" `Quick test_rc4_stream;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cbc_roundtrip; prop_ctr_involution; prop_rc4_involution; prop_cbc_expands ]
      );
    ]
