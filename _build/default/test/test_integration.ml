(* Cross-module scenarios: multiple sessions interleaved with OS work,
   the Section 7.5 device-transfer experiment, the Table 3 system-impact
   experiment, TPM-profile ablations, and reboot recovery. *)

open Flicker_crypto
open Flicker_core
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Scheduler = Flicker_os.Scheduler
module Blockdev = Flicker_os.Blockdev
module Timing = Flicker_hw.Timing
module Machine = Flicker_hw.Machine
module Tpm = Flicker_tpm.Tpm

let worker =
  Pal.define ~name:"integ-worker" (fun env ->
      Pal_env.compute env ~ms:5.0;
      Pal_env.set_output env "done")

let run p pal =
  match Session.execute p ~pal () with
  | Ok o -> o
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e

let test_many_sessions () =
  let p = Platform.create ~seed:"many" ~key_bits:512 () in
  let measurements =
    List.init 10 (fun _ -> (run p worker).Session.slb_measurement)
  in
  (* all identical, and the platform is healthy throughout *)
  List.iter
    (fun m -> Alcotest.(check string) "stable" (List.hd measurements) m)
    measurements;
  Alcotest.(check int) "ten sessions" 10 p.Platform.sessions_run

let test_sessions_interleaved_with_os_work () =
  let p = Platform.create ~seed:"interleave" ~key_bits:512 () in
  let job = Scheduler.spawn p.Platform.scheduler ~name:"make" ~work_ms:100.0 in
  Scheduler.run_for p.Platform.scheduler 40.0;
  ignore (run p worker);
  Scheduler.run_for p.Platform.scheduler 40.0;
  ignore (run p worker);
  Scheduler.run_for p.Platform.scheduler 40.0;
  Alcotest.(check bool) "job completed around sessions" true
    (job.Scheduler.completed_at <> None)

(* Table 3: kernel build (7:22.6) with the detector every N seconds. *)
let build_with_detection_period ~period_s =
  let p =
    Platform.create ~seed:"table3" ~key_bits:512 ~kernel_text_size:(64 * 1024) ()
  in
  let d = Flicker_apps.Rootkit_detector.deploy_on p in
  let build_ms = 442_600.0 in
  let job = Scheduler.spawn p.Platform.scheduler ~name:"kernel-build" ~work_ms:build_ms in
  let started = Platform.now_ms p in
  (match period_s with
  | None -> Scheduler.run_until_complete p.Platform.scheduler job
  | Some s ->
      let period_ms = float_of_int s *. 1000.0 in
      while job.Scheduler.completed_at = None do
        Scheduler.run_for p.Platform.scheduler period_ms;
        if job.Scheduler.completed_at = None then begin
          let nonce = Platform.fresh_nonce p in
          match Flicker_apps.Rootkit_detector.scan d ~nonce with
          | Ok _ -> ()
          | Error e -> Alcotest.fail e
        end
      done);
  (* wall time until the build finished (the clock may have run past the
     completion inside the final run_for slice) *)
  Option.get job.Scheduler.completed_at -. started

let test_table3_negligible_impact () =
  let baseline = build_with_detection_period ~period_s:None in
  Alcotest.(check (float 1.0)) "baseline 442.6 s" 442_600.0 baseline;
  let with_30s = build_with_detection_period ~period_s:(Some 30) in
  let slowdown_pct = (with_30s -. baseline) /. baseline *. 100.0 in
  (* the paper measures no observable slowdown; our model keeps it under
     half a percent even at the most aggressive period *)
  Alcotest.(check bool)
    (Printf.sprintf "30 s period slowdown %.3f%% < 0.5%%" slowdown_pct)
    true (slowdown_pct < 0.5);
  let with_300s = build_with_detection_period ~period_s:(Some 300) in
  Alcotest.(check bool) "5 min period cheaper than 30 s" true (with_300s <= with_30s)

(* Section 7.5: copy files between devices while long PAL sessions run. *)
let test_device_transfer_integrity_across_sessions () =
  let p = Platform.create ~seed:"copy" ~key_bits:512 () in
  let long_pal =
    Pal.define ~name:"integ-long" (fun env ->
        Pal_env.compute env ~ms:8300.0;
        Pal_env.set_output env "crunched")
  in
  let cdrom = Blockdev.create ~name:"cdrom" ~rate_kb_per_ms:8.0 in
  let usb = Blockdev.create ~name:"usb" ~rate_kb_per_ms:15.0 in
  let data = Prng.bytes (Prng.create ~seed:"avi") (1024 * 1024) in
  Blockdev.store cdrom ~file:"clip.avi" data;
  let sessions = ref 0 in
  let between_chunks () =
    (* every few chunks, an 8.3 s Flicker session freezes the OS *)
    if !sessions < 3 then begin
      incr sessions;
      ignore (run p long_pal)
    end
  in
  (match
     Blockdev.transfer p.Platform.machine ~scheduler:p.Platform.scheduler ~src:cdrom
       ~dst:usb ~file:"clip.avi" ~chunk_kb:256 ~between_chunks ()
   with
  | Error e -> Alcotest.fail e
  | Ok _ms -> ());
  Alcotest.(check int) "sessions ran" 3 !sessions;
  Alcotest.(check string) "md5sum matches" (Md5.hex data)
    (Result.get_ok (Blockdev.md5sum usb ~file:"clip.avi"))

let test_tpm_profile_ablation () =
  (* swapping the Broadcom for the Infineon must cut quote and unseal
     latencies in the full pipeline, not just in the profile record *)
  let run_with profile =
    let timing = Timing.with_tpm profile Timing.default in
    let p = Platform.create ~seed:"ablate" ~timing ~key_bits:512 () in
    let nonce = Platform.fresh_nonce p in
    let _ = run p worker in
    let t0 = Platform.now_ms p in
    let _ = Attestation.generate p ~nonce ~inputs:"" ~outputs:"done" in
    Platform.now_ms p -. t0
  in
  let broadcom_quote = run_with Timing.broadcom in
  let infineon_quote = run_with Timing.infineon in
  Alcotest.(check (float 1.0)) "broadcom quote" 972.7 broadcom_quote;
  Alcotest.(check (float 1.0)) "infineon quote" 331.0 infineon_quote

let test_reboot_invalidates_seals () =
  (* sealed state survives in ciphertext but PCR 17 is -1 after reboot;
     only a fresh SKINIT session of the same PAL can unseal again *)
  let p = Platform.create ~seed:"reboot" ~key_bits:512 () in
  let sealer =
    Pal.define ~name:"integ-sealer" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env ->
        match Util.decode_fields env.Pal_env.inputs with
        | Ok [ "seal" ] -> (
            match Sealed_storage.seal_for_self env "persistent secret" with
            | Ok blob -> Pal_env.set_output env blob
            | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
        | Ok [ "unseal"; blob ] -> (
            match Sealed_storage.unseal env blob with
            | Ok d -> Pal_env.set_output env ("recovered:" ^ d)
            | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
        | Ok _ | Error _ -> Pal_env.set_output env "ERROR: mode")
  in
  let blob =
    (match Session.execute p ~pal:sealer ~inputs:(Util.encode_fields [ "seal" ]) () with
    | Ok o -> o.Session.outputs
    | Error e -> Alcotest.failf "seal: %a" Session.pp_error e)
  in
  Tpm.reboot p.Platform.tpm;
  (* OS still cannot unseal after reboot *)
  let rng = Platform.fork_rng p ~label:"post-reboot" in
  (match Flicker_slb.Mod_tpm_utils.unseal p.Platform.tpm ~rng blob with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsealed outside a session after reboot");
  (* but a fresh session of the same PAL can *)
  match
    Session.execute p ~pal:sealer ~inputs:(Util.encode_fields [ "unseal"; blob ]) ()
  with
  | Ok o -> Alcotest.(check string) "recovered" "recovered:persistent secret" o.Session.outputs
  | Error e -> Alcotest.failf "unseal session: %a" Session.pp_error e

let test_clock_monotone_through_everything () =
  let p = Platform.create ~seed:"monotone" ~key_bits:512 () in
  let t0 = Platform.now_ms p in
  ignore (run p worker);
  let t1 = Platform.now_ms p in
  Scheduler.run_for p.Platform.scheduler 10.0;
  let t2 = Platform.now_ms p in
  ignore (Attestation.generate p ~nonce:(Platform.fresh_nonce p) ~inputs:"" ~outputs:"");
  let t3 = Platform.now_ms p in
  Alcotest.(check bool) "strictly increasing" true (t0 < t1 && t1 < t2 && t2 < t3)

let test_two_platforms_share_ca () =
  (* a verifier trusting one CA can check attestations from two machines *)
  let ca =
    Flicker_tpm.Privacy_ca.create (Prng.create ~seed:"shared-ca") ~name:"SharedCA"
      ~key_bits:512
  in
  let ca_key = Flicker_tpm.Privacy_ca.public_key ca in
  let check_platform seed =
    let p = Platform.create ~seed ~key_bits:512 ~ca () in
    let nonce = Platform.fresh_nonce p in
    match Session.execute p ~pal:worker ~nonce () with
    | Error e -> Alcotest.failf "session: %a" Session.pp_error e
    | Ok o -> (
        let ev = Attestation.generate p ~nonce ~inputs:"" ~outputs:o.Session.outputs in
        let expectation =
          Verifier.expect ~pal:worker ~slb_base:p.Platform.slb_base ~nonce ()
        in
        match Verifier.verify ~ca_key expectation ev with
        | Ok () -> ()
        | Error f -> Alcotest.fail (Verifier.failure_to_string f))
  in
  check_platform "machine-1";
  check_platform "machine-2"

let () =
  Alcotest.run "integration"
    [
      ( "sessions",
        [
          Alcotest.test_case "many sessions" `Quick test_many_sessions;
          Alcotest.test_case "interleaved with OS work" `Quick
            test_sessions_interleaved_with_os_work;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone_through_everything;
        ] );
      ( "system impact",
        [
          Alcotest.test_case "table 3 kernel build" `Slow test_table3_negligible_impact;
          Alcotest.test_case "device transfers (7.5)" `Quick
            test_device_transfer_integrity_across_sessions;
        ] );
      ( "platform",
        [
          Alcotest.test_case "tpm profile ablation" `Quick test_tpm_profile_ablation;
          Alcotest.test_case "reboot invalidates seals" `Quick test_reboot_invalidates_seals;
          Alcotest.test_case "two platforms, one ca" `Quick test_two_platforms_share_ca;
        ] );
    ]
