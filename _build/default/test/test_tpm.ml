open Flicker_crypto
open Flicker_tpm
module Machine = Flicker_hw.Machine
module Clock = Flicker_hw.Clock
module Timing = Flicker_hw.Timing

let make_tpm ?(key_bits = 512) () =
  let machine = Machine.create ~memory_size:(1024 * 1024) Timing.default in
  let rng = Prng.create ~seed:"tpm-tests" in
  (machine, Tpm.create machine rng ~key_bits)

(* --- PCR bank semantics --- *)

let test_pcr_boot_state () =
  let bank = Pcr.create () in
  for i = 0 to 16 do
    Alcotest.(check string) "static zero" Tpm_types.zero_digest
      (Result.get_ok (Pcr.read bank i))
  done;
  for i = 17 to 23 do
    Alcotest.(check string) "dynamic -1" Tpm_types.reboot_digest
      (Result.get_ok (Pcr.read bank i))
  done

let test_pcr_extend_semantics () =
  let bank = Pcr.create () in
  let m = Sha1.digest "event" in
  let v1 = Result.get_ok (Pcr.extend bank 0 m) in
  Alcotest.(check string) "extend formula" (Sha1.digest (Tpm_types.zero_digest ^ m)) v1;
  let v2 = Result.get_ok (Pcr.extend bank 0 m) in
  Alcotest.(check bool) "extends compose, not overwrite" true (v1 <> v2);
  Alcotest.(check string) "chain" (Sha1.digest (v1 ^ m)) v2;
  Alcotest.(check bool) "bad index" true (Result.is_error (Pcr.read bank 24));
  Alcotest.(check bool) "bad value size" true
    (Result.is_error (Pcr.extend bank 0 "short"))

let test_pcr_dynamic_reset_vs_reboot () =
  let bank = Pcr.create () in
  ignore (Pcr.extend bank 17 (Sha1.digest "x"));
  ignore (Pcr.extend bank 5 (Sha1.digest "x"));
  Pcr.dynamic_reset bank;
  Alcotest.(check string) "pcr17 zero after reset" Tpm_types.zero_digest
    (Result.get_ok (Pcr.read bank 17));
  Alcotest.(check bool) "static unaffected by dynamic reset" true
    (Result.get_ok (Pcr.read bank 5) <> Tpm_types.zero_digest);
  Pcr.reboot bank;
  Alcotest.(check string) "pcr17 -1 after reboot" Tpm_types.reboot_digest
    (Result.get_ok (Pcr.read bank 17));
  Alcotest.(check string) "static zero after reboot" Tpm_types.zero_digest
    (Result.get_ok (Pcr.read bank 5))

let test_composite_hash () =
  let c1 = [ (17, Sha1.digest "a"); (18, Sha1.digest "b") ] in
  let c2 = [ (18, Sha1.digest "b"); (17, Sha1.digest "a") ] in
  Alcotest.(check string) "order independent" (Tpm_types.composite_hash c1)
    (Tpm_types.composite_hash c2);
  Alcotest.(check bool) "value sensitive" true
    (Tpm_types.composite_hash c1 <> Tpm_types.composite_hash [ (17, Sha1.digest "a"); (18, Sha1.digest "c") ]);
  Alcotest.(check bool) "index sensitive" true
    (Tpm_types.composite_hash [ (17, Sha1.digest "a") ]
    <> Tpm_types.composite_hash [ (18, Sha1.digest "a") ])

let test_selection () =
  Alcotest.(check (list int)) "sorted dedup" [ 3; 17 ] (Tpm_types.selection [ 17; 3; 17 ]);
  Alcotest.check_raises "range"
    (Invalid_argument "Tpm_types.selection: PCR index out of range") (fun () ->
      ignore (Tpm_types.selection [ 24 ]))

(* --- TPM facade --- *)

let test_tpm_pcr_commands () =
  let _, tpm = make_tpm () in
  Alcotest.(check string) "read 17 after boot" Tpm_types.reboot_digest
    (Result.get_ok (Tpm.pcr_read tpm 17));
  let v = Result.get_ok (Tpm.pcr_extend tpm 17 (Sha1.digest "m")) in
  Alcotest.(check string) "extend returns new value" v
    (Result.get_ok (Tpm.pcr_read tpm 17))

let test_tpm_charges_time () =
  let machine, tpm = make_tpm () in
  let t0 = Clock.now machine.Machine.clock in
  ignore (Tpm.pcr_extend tpm 17 (Sha1.digest "m"));
  Alcotest.(check (float 0.001)) "extend 1.2 ms" 1.2 (Clock.now machine.Machine.clock -. t0);
  let t1 = Clock.now machine.Machine.clock in
  ignore (Tpm.quote tpm ~nonce:(String.make 20 'n') ~selection:[ 17 ]);
  Alcotest.(check (float 0.001)) "quote 972.7 ms" 972.7 (Clock.now machine.Machine.clock -. t1);
  let t2 = Clock.now machine.Machine.clock in
  ignore (Tpm.get_random tpm 128);
  Alcotest.(check (float 0.001)) "getrandom 1.3 ms" 1.3 (Clock.now machine.Machine.clock -. t2)

let test_get_random () =
  let _, tpm = make_tpm () in
  let a = Tpm.get_random tpm 32 and b = Tpm.get_random tpm 32 in
  Alcotest.(check int) "length" 32 (String.length a);
  Alcotest.(check bool) "fresh" true (a <> b)

let test_quote_verifies () =
  let _, tpm = make_tpm () in
  ignore (Tpm.pcr_extend tpm 17 (Sha1.digest "state"));
  let nonce = String.make 20 'n' in
  let quote = Tpm.quote tpm ~nonce ~selection:(Tpm_types.selection [ 17 ]) in
  let payload = "QUOT" ^ Tpm_types.composite_hash quote.Tpm.quoted_composite ^ nonce in
  Alcotest.(check bool) "signature valid" true
    (Pkcs1.verify (Tpm.aik_public tpm) Hash.SHA1 ~msg:payload
       ~signature:quote.Tpm.signature);
  (* tampering with the composite breaks it *)
  let evil = [ (17, Sha1.digest "evil") ] in
  let payload' = "QUOT" ^ Tpm_types.composite_hash evil ^ nonce in
  Alcotest.(check bool) "tampered composite fails" false
    (Pkcs1.verify (Tpm.aik_public tpm) Hash.SHA1 ~msg:payload'
       ~signature:quote.Tpm.signature);
  Alcotest.check_raises "bad nonce" (Invalid_argument "Tpm.quote: nonce must be 20 bytes")
    (fun () -> ignore (Tpm.quote tpm ~nonce:"short" ~selection:[ 17 ]))

(* helper running the client side of an OSAP-authorized seal/unseal *)
let rng = Prng.create ~seed:"tpm-client"

let seal tpm ~release data =
  Flicker_slb.Mod_tpm_utils.seal tpm ~rng ~release data

let unseal tpm blob = Flicker_slb.Mod_tpm_utils.unseal tpm ~rng blob

let test_seal_unseal_roundtrip () =
  let _, tpm = make_tpm () in
  let current = Result.get_ok (Tpm.pcr_read tpm 17) in
  let blob = Result.get_ok (seal tpm ~release:[ (17, current) ] "top secret") in
  Alcotest.(check bool) "ciphertext differs from plaintext" true
    (not (String.length blob = 10));
  Alcotest.(check string) "unseal" "top secret" (Result.get_ok (unseal tpm blob))

let test_seal_wrong_pcr () =
  let _, tpm = make_tpm () in
  let blob =
    Result.get_ok (seal tpm ~release:[ (17, Sha1.digest "future state") ] "secret")
  in
  (match unseal tpm blob with
  | Error Tpm_types.Wrong_pcr_value -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Tpm_types.error_to_string e)
  | Ok _ -> Alcotest.fail "unsealed under wrong PCR state");
  (* now drive PCR 17 to the right value: impossible by extends from -1;
     but sealing to the *current* value works *)
  let current = Result.get_ok (Tpm.pcr_read tpm 17) in
  let blob2 = Result.get_ok (seal tpm ~release:[ (17, current) ] "secret2") in
  Alcotest.(check string) "matches" "secret2" (Result.get_ok (unseal tpm blob2));
  (* and after the PCR changes, the same blob stops unsealing *)
  ignore (Tpm.pcr_extend tpm 17 (Sha1.digest "cap"));
  match unseal tpm blob2 with
  | Error Tpm_types.Wrong_pcr_value -> ()
  | _ -> Alcotest.fail "blob still unseals after PCR changed"

let test_seal_empty_release () =
  let _, tpm = make_tpm () in
  let blob = Result.get_ok (seal tpm ~release:[] "unbound") in
  Alcotest.(check string) "unbound blob unseals anywhere" "unbound"
    (Result.get_ok (unseal tpm blob))

let test_unseal_corrupt_blob () =
  let _, tpm = make_tpm () in
  let blob = Result.get_ok (seal tpm ~release:[] "data") in
  let corrupt =
    let b = Bytes.of_string blob in
    Bytes.set b 40 (Char.chr (Char.code (Bytes.get b 40) lxor 1));
    Bytes.to_string b
  in
  (match unseal tpm corrupt with
  | Error Tpm_types.Decrypt_error -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Tpm_types.error_to_string e)
  | Ok _ -> Alcotest.fail "corrupt blob accepted");
  match unseal tpm "tiny" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tiny blob accepted"

let test_unseal_foreign_tpm () =
  (* a blob sealed by one TPM must not unseal on another *)
  let _, tpm1 = make_tpm () in
  let machine2 = Machine.create ~memory_size:(1024 * 1024) Timing.default in
  let tpm2 = Tpm.create machine2 (Prng.create ~seed:"other") ~key_bits:512 in
  let blob = Result.get_ok (seal tpm1 ~release:[] "local only") in
  match unseal tpm2 blob with
  | Error Tpm_types.Decrypt_error -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Tpm_types.error_to_string e)
  | Ok _ -> Alcotest.fail "blob migrated between TPMs"

let test_auth_failure () =
  let _, tpm = make_tpm () in
  (* hand-roll a seal with a WRONG shared secret *)
  let no_osap = Prng.bytes rng 20 in
  let session, ne_osap = Result.get_ok (Tpm.osap tpm ~entity:"SRK" ~no_osap) in
  let bad_shared =
    Auth.osap_shared_secret ~usage_auth:(String.make 20 'W') ~ne_osap ~no_osap
  in
  let release = [] and data = "x" in
  let command_digest = Tpm.seal_command_digest ~release ~data in
  let nonce_odd = Prng.bytes rng 20 in
  let mac =
    Auth.auth_mac ~secret:bad_shared ~command_digest
      ~nonce_even:session.Auth.nonce_even ~nonce_odd
  in
  (match Tpm.seal tpm ~auth:{ Tpm.session = session.Auth.handle; nonce_odd; mac } ~release data with
  | Error Tpm_types.Bad_auth -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Tpm_types.error_to_string e)
  | Ok _ -> Alcotest.fail "bad auth accepted");
  (* unknown session handle *)
  match
    Tpm.seal tpm ~auth:{ Tpm.session = 9999; nonce_odd; mac } ~release data
  with
  | Error Tpm_types.Bad_index -> ()
  | _ -> Alcotest.fail "unknown session accepted"

let test_osap_unknown_entity () =
  let _, tpm = make_tpm () in
  match Tpm.osap tpm ~entity:"EK" ~no_osap:(String.make 20 'n') with
  | Error (Tpm_types.Bad_parameter _) -> ()
  | _ -> Alcotest.fail "unknown entity accepted"

let test_nonce_rolls () =
  (* replaying the same authorization MAC must fail because the even
     nonce rolls after each successful command *)
  let _, tpm = make_tpm () in
  let no_osap = Prng.bytes rng 20 in
  let session, ne_osap = Result.get_ok (Tpm.osap tpm ~entity:"SRK" ~no_osap) in
  let shared =
    Auth.osap_shared_secret ~usage_auth:(Tpm.srk_auth tpm) ~ne_osap ~no_osap
  in
  let release = [] and data = "once" in
  let command_digest = Tpm.seal_command_digest ~release ~data in
  let nonce_odd = Prng.bytes rng 20 in
  let mac =
    Auth.auth_mac ~secret:shared ~command_digest ~nonce_even:session.Auth.nonce_even
      ~nonce_odd
  in
  let auth = { Tpm.session = session.Auth.handle; nonce_odd; mac } in
  Alcotest.(check bool) "first use ok" true (Result.is_ok (Tpm.seal tpm ~auth ~release data));
  match Tpm.seal tpm ~auth ~release data with
  | Error Tpm_types.Bad_auth -> ()
  | _ -> Alcotest.fail "authorization replay accepted"

(* --- NV storage --- *)

let define_nv tpm ~index attrs =
  Flicker_slb.Mod_tpm_utils.nv_define_space tpm ~rng ~owner_auth:(Tpm.owner_auth tpm)
    ~index attrs

(* the Nvram store on its own: define/undefine/list lifecycle *)
let test_nv_lifecycle () =
  let nv = Nvram.create () in
  let attrs = { Nvram.size = 8; read_pcrs = []; write_pcrs = [] } in
  Alcotest.(check bool) "define" true (Result.is_ok (Nvram.define_space nv ~index:5 attrs));
  Alcotest.(check bool) "define 2" true (Result.is_ok (Nvram.define_space nv ~index:9 attrs));
  Alcotest.(check (list int)) "listed sorted" [ 5; 9 ] (Nvram.defined_indices nv);
  Alcotest.(check bool) "undefine missing" true
    (Result.is_error (Nvram.undefine_space nv ~index:99));
  Alcotest.(check bool) "undefine" true (Result.is_ok (Nvram.undefine_space nv ~index:5));
  Alcotest.(check (list int)) "shrunk" [ 9 ] (Nvram.defined_indices nv);
  (* size limits *)
  Alcotest.(check bool) "zero size rejected" true
    (Result.is_error
       (Nvram.define_space nv ~index:1 { Nvram.size = 0; read_pcrs = []; write_pcrs = [] }));
  Alcotest.(check bool) "huge size rejected" true
    (Result.is_error
       (Nvram.define_space nv ~index:1
          { Nvram.size = 1 lsl 20; read_pcrs = []; write_pcrs = [] }))

let test_nv_basic () =
  let _, tpm = make_tpm () in
  let attrs = { Nvram.size = 16; read_pcrs = []; write_pcrs = [] } in
  Alcotest.(check bool) "define" true (Result.is_ok (define_nv tpm ~index:1 attrs));
  (match define_nv tpm ~index:1 attrs with
  | Error Tpm_types.Area_exists -> ()
  | _ -> Alcotest.fail "redefinition allowed");
  Alcotest.(check bool) "write" true (Result.is_ok (Tpm.nv_write tpm ~index:1 "hello"));
  Alcotest.(check string) "read prefix" "hello"
    (String.sub (Result.get_ok (Tpm.nv_read tpm ~index:1)) 0 5);
  Alcotest.(check bool) "missing index" true (Result.is_error (Tpm.nv_read tpm ~index:9));
  match Tpm.nv_write tpm ~index:1 (String.make 17 'x') with
  | Error (Tpm_types.Bad_parameter _) -> ()
  | _ -> Alcotest.fail "oversized write accepted"

let test_nv_owner_auth_required () =
  let _, tpm = make_tpm () in
  let attrs = { Nvram.size = 4; read_pcrs = []; write_pcrs = [] } in
  match
    Flicker_slb.Mod_tpm_utils.nv_define_space tpm ~rng
      ~owner_auth:(String.make 20 'X') ~index:2 attrs
  with
  | Error Tpm_types.Bad_auth -> ()
  | _ -> Alcotest.fail "wrong owner auth accepted"

let test_nv_pcr_gating () =
  let _, tpm = make_tpm () in
  let gate = [ (17, Sha1.digest "who goes there") ] in
  let attrs = { Nvram.size = 8; read_pcrs = gate; write_pcrs = gate } in
  Alcotest.(check bool) "define gated" true (Result.is_ok (define_nv tpm ~index:3 attrs));
  (match Tpm.nv_read tpm ~index:3 with
  | Error Tpm_types.Wrong_pcr_value -> ()
  | _ -> Alcotest.fail "gated read without PCR state");
  match Tpm.nv_write tpm ~index:3 "data" with
  | Error Tpm_types.Wrong_pcr_value -> ()
  | _ -> Alcotest.fail "gated write without PCR state"

(* --- counters --- *)

let test_counters () =
  let _, tpm = make_tpm () in
  let handle =
    Result.get_ok
      (Flicker_slb.Mod_tpm_utils.create_counter tpm ~rng
         ~owner_auth:(Tpm.owner_auth tpm) ~label:"boinc")
  in
  Alcotest.(check int) "starts at zero" 0 (Result.get_ok (Tpm.read_counter tpm ~handle));
  Alcotest.(check int) "increments" 1 (Result.get_ok (Tpm.increment_counter tpm ~handle));
  Alcotest.(check int) "monotonic" 2 (Result.get_ok (Tpm.increment_counter tpm ~handle));
  Alcotest.(check int) "read" 2 (Result.get_ok (Tpm.read_counter tpm ~handle));
  Alcotest.(check bool) "bad handle" true
    (Result.is_error (Tpm.read_counter tpm ~handle:999))

(* --- reboot semantics --- *)

let test_reboot () =
  let _, tpm = make_tpm () in
  ignore (Tpm.pcr_extend tpm 0 (Sha1.digest "boot"));
  ignore (Tpm.pcr_extend tpm 17 (Sha1.digest "session"));
  let handle =
    Result.get_ok
      (Flicker_slb.Mod_tpm_utils.create_counter tpm ~rng
         ~owner_auth:(Tpm.owner_auth tpm) ~label:"persist")
  in
  ignore (Tpm.increment_counter tpm ~handle);
  Tpm.reboot tpm;
  Alcotest.(check string) "pcr0 reset" Tpm_types.zero_digest
    (Result.get_ok (Tpm.pcr_read tpm 0));
  Alcotest.(check string) "pcr17 to -1" Tpm_types.reboot_digest
    (Result.get_ok (Tpm.pcr_read tpm 17));
  Alcotest.(check int) "counter persists" 1 (Result.get_ok (Tpm.read_counter tpm ~handle))

(* --- Privacy CA --- *)

let test_privacy_ca () =
  let ca = Privacy_ca.create (Prng.create ~seed:"pca") ~name:"TestPCA" ~key_bits:512 in
  let _, tpm = make_tpm () in
  (* unknown EK rejected *)
  (match Privacy_ca.certify_aik ca ~ek:(Tpm.ek_public tpm) ~aik:(Tpm.aik_public tpm) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unregistered EK certified");
  Privacy_ca.register_ek ca (Tpm.ek_public tpm);
  let cert =
    Result.get_ok (Privacy_ca.certify_aik ca ~ek:(Tpm.ek_public tpm) ~aik:(Tpm.aik_public tpm))
  in
  Alcotest.(check bool) "certificate verifies" true
    (Privacy_ca.verify_certificate ~ca_key:(Privacy_ca.public_key ca) cert);
  (* wrong CA key *)
  let other = Privacy_ca.create (Prng.create ~seed:"other-pca") ~name:"Other" ~key_bits:512 in
  Alcotest.(check bool) "wrong CA rejected" false
    (Privacy_ca.verify_certificate ~ca_key:(Privacy_ca.public_key other) cert)

let test_capabilities () =
  let _, tpm = make_tpm () in
  Alcotest.(check int) "24 PCRs" 24 (Tpm.get_capability_pcr_count tpm);
  Alcotest.(check bool) "version string" true
    (String.length (Tpm.get_capability_version tpm) > 0)

let prop_seal_roundtrip =
  let _, tpm = make_tpm () in
  QCheck.Test.make ~name:"seal/unseal roundtrip for arbitrary data" ~count:40
    QCheck.(string_of_size Gen.(int_range 0 2000))
    (fun data ->
      let blob = Result.get_ok (seal tpm ~release:[] data) in
      unseal tpm blob = Ok data)

let prop_extend_injective =
  QCheck.Test.make ~name:"different extend values give different PCRs" ~count:100
    QCheck.(pair (string_of_size (Gen.return 20)) (string_of_size (Gen.return 20)))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let bank = Pcr.create () in
      let bank2 = Pcr.create () in
      Result.get_ok (Pcr.extend bank 0 a) <> Result.get_ok (Pcr.extend bank2 0 b))

let () =
  Alcotest.run "tpm"
    [
      ( "pcr",
        [
          Alcotest.test_case "boot state" `Quick test_pcr_boot_state;
          Alcotest.test_case "extend semantics" `Quick test_pcr_extend_semantics;
          Alcotest.test_case "dynamic reset vs reboot" `Quick test_pcr_dynamic_reset_vs_reboot;
          Alcotest.test_case "composite hash" `Quick test_composite_hash;
          Alcotest.test_case "selection" `Quick test_selection;
        ] );
      ( "commands",
        [
          Alcotest.test_case "pcr commands" `Quick test_tpm_pcr_commands;
          Alcotest.test_case "latency charges" `Quick test_tpm_charges_time;
          Alcotest.test_case "get_random" `Quick test_get_random;
          Alcotest.test_case "quote verifies" `Quick test_quote_verifies;
          Alcotest.test_case "capabilities" `Quick test_capabilities;
        ] );
      ( "sealed storage",
        [
          Alcotest.test_case "roundtrip" `Quick test_seal_unseal_roundtrip;
          Alcotest.test_case "wrong PCR" `Quick test_seal_wrong_pcr;
          Alcotest.test_case "empty release" `Quick test_seal_empty_release;
          Alcotest.test_case "corrupt blob" `Quick test_unseal_corrupt_blob;
          Alcotest.test_case "foreign TPM" `Quick test_unseal_foreign_tpm;
        ] );
      ( "authorization",
        [
          Alcotest.test_case "bad auth" `Quick test_auth_failure;
          Alcotest.test_case "unknown entity" `Quick test_osap_unknown_entity;
          Alcotest.test_case "nonce rolls" `Quick test_nonce_rolls;
        ] );
      ( "nv+counters",
        [
          Alcotest.test_case "nv lifecycle" `Quick test_nv_lifecycle;
          Alcotest.test_case "nv basic" `Quick test_nv_basic;
          Alcotest.test_case "nv owner auth" `Quick test_nv_owner_auth_required;
          Alcotest.test_case "nv pcr gating" `Quick test_nv_pcr_gating;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "reboot" `Quick test_reboot;
        ] );
      ("privacy ca", [ Alcotest.test_case "certify" `Quick test_privacy_ca ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_seal_roundtrip; prop_extend_injective ]
      );
    ]
