open Flicker_crypto
open Flicker_core
open Flicker_apps
module Privacy_ca = Flicker_tpm.Privacy_ca

let ca = Privacy_ca.create (Prng.create ~seed:"ssh-ca") ~name:"SshCA" ~key_bits:512
let ca_key = Privacy_ca.public_key ca

let make_pair ~seed =
  let p = Platform.create ~seed ~key_bits:512 ~ca () in
  let server =
    Ssh_auth.create_server p ~key_bits:512
      ~users:[ ("alice", "hunter2"); ("bob", "correct horse") ]
      ()
  in
  let client =
    Ssh_auth.Client.create
      ~rng:(Prng.create ~seed:(seed ^ "-client"))
      ~ca_key ~server_slb_base:p.Platform.slb_base ~key_bits:512 ()
  in
  (p, server, client)

let test_passwd_file () =
  let _, server, _ = make_pair ~seed:"passwd" in
  match Ssh_auth.passwd_entry server ~user:"alice" with
  | None -> Alcotest.fail "alice missing"
  | Some (salt, crypted) ->
      (* server stores only the salted hash, verifiable with crypt(3) *)
      Alcotest.(check bool) "crypted verifies" true
        (Md5crypt.verify ~crypted ~password:"hunter2");
      Alcotest.(check bool) "salt nonempty" true (String.length salt > 0);
      Alcotest.(check (option (pair string string))) "unknown user" None
        (Ssh_auth.passwd_entry server ~user:"mallory")

let test_login_success () =
  let _, server, client = make_pair ~seed:"login" in
  match Ssh_auth.authenticate server client ~user:"alice" ~password:"hunter2" with
  | Ok (true, ms) -> Alcotest.(check bool) "latency positive" true (ms > 0.0)
  | Ok (false, _) -> Alcotest.fail "correct password rejected"
  | Error e -> Alcotest.fail e

let test_login_wrong_password () =
  let _, server, client = make_pair ~seed:"wrongpw" in
  match Ssh_auth.authenticate server client ~user:"alice" ~password:"hunter3" with
  | Ok (false, _) -> ()
  | Ok (true, _) -> Alcotest.fail "wrong password accepted"
  | Error e -> Alcotest.fail e

let test_second_login_reuses_key () =
  let _, server, client = make_pair ~seed:"reuse" in
  (match Ssh_auth.authenticate server client ~user:"alice" ~password:"hunter2" with
  | Ok (true, _) -> ()
  | _ -> Alcotest.fail "first login failed");
  (* second login skips the expensive setup PAL *)
  match Ssh_auth.authenticate server client ~user:"bob" ~password:"correct horse" with
  | Ok (true, ms2) ->
      (* no keygen, no setup quote: well under the first login's latency *)
      Alcotest.(check bool) "faster than 1.5 s" true (ms2 < 1500.0)
  | Ok (false, _) -> Alcotest.fail "bob rejected"
  | Error e -> Alcotest.fail e

let test_password_never_in_server_memory () =
  (* after a login session, the cleartext password is nowhere in the
     server's physical memory — Flicker's headline property for SSH *)
  let p, server, client = make_pair ~seed:"memscan" in
  let password = "XyZZy-Pl0ugh-secret" in
  let server2 =
    Ssh_auth.create_server p ~key_bits:512 ~users:[ ("carol", password) ] ()
  in
  ignore server;
  (match Ssh_auth.authenticate server2 client ~user:"carol" ~password with
  | Ok (true, _) -> ()
  | Ok (false, _) -> Alcotest.fail "login failed"
  | Error e -> Alcotest.fail e);
  let report =
    Flicker_os.Adversary.scan_memory p.Platform.machine ~pattern:password
  in
  Alcotest.(check bool) "password not in memory" false
    report.Flicker_os.Adversary.succeeded

let test_client_rejects_wrong_pal () =
  (* a malicious server runs a different (evil) PAL for setup; the client
     must refuse to send the password *)
  let p, _, client = make_pair ~seed:"evil-server" in
  let evil_pal =
    Flicker_slb.Pal.define ~name:"ssh-evil-setup"
      ~modules:[ Flicker_slb.Pal.Tpm_driver; Flicker_slb.Pal.Tpm_utilities;
                 Flicker_slb.Pal.Crypto; Flicker_slb.Pal.Secure_channel ]
      (fun env ->
        match Flicker_slb.Mod_secure_channel.setup env ~key_bits:512 with
        | Ok out ->
            Flicker_slb.Pal_env.set_output env
              (Flicker_slb.Mod_secure_channel.encode_setup_output out)
        | Error msg -> Flicker_slb.Pal_env.set_output env ("ERROR: " ^ msg))
  in
  let nonce = Platform.fresh_nonce p in
  match Session.execute p ~pal:evil_pal ~nonce () with
  | Error e -> Alcotest.failf "evil session: %a" Session.pp_error e
  | Ok outcome -> (
      let evidence =
        Attestation.generate p ~nonce ~inputs:"" ~outputs:outcome.Session.outputs
      in
      match Ssh_auth.Client.accept_server_key client ~nonce evidence with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "client accepted an evil PAL's key")

let test_nonce_replay_rejected () =
  (* replaying an old ciphertext with a stale nonce: the PAL aborts *)
  let p, server, client = make_pair ~seed:"replay" in
  (match Ssh_auth.authenticate server client ~user:"alice" ~password:"hunter2" with
  | Ok (true, _) -> ()
  | _ -> Alcotest.fail "setup login failed");
  let stale_nonce = Platform.fresh_nonce p in
  let ct =
    Result.get_ok (Ssh_auth.Client.encrypt_password client ~password:"hunter2" ~nonce:stale_nonce)
  in
  let fresh_nonce = Platform.fresh_nonce p in
  match Ssh_auth.server_login server ~user:"alice" ~ciphertext:ct ~nonce:fresh_nonce with
  | Error msg ->
      Alcotest.(check bool) "nonce mismatch reported" true
        (let lower = String.lowercase_ascii msg in
         let rec contains i =
           i + 5 <= String.length lower && (String.sub lower i 5 = "nonce" || contains (i + 1))
         in
         contains 0)
  | Ok { Ssh_auth.granted; _ } ->
      Alcotest.(check bool) "replayed login denied" false granted

let test_login_before_setup () =
  let _, server, _ = make_pair ~seed:"nosetup" in
  match
    Ssh_auth.server_login server ~user:"alice" ~ciphertext:"x"
      ~nonce:(String.make 20 'n')
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "login without channel key"

let test_figure9_breakdown () =
  (* Figure 9 shape: setup dominated by keygen+seal, login by unseal *)
  let p, server, _ = make_pair ~seed:"fig9" in
  let nonce = Platform.fresh_nonce p in
  match Ssh_auth.server_setup server ~nonce with
  | Error e -> Alcotest.fail e
  | Ok setup -> (
      let o = setup.Ssh_auth.setup_outcome in
      let skinit = Session.phase_ms o Session.Skinit in
      Alcotest.(check bool) "setup skinit ~14" true (skinit > 10.0 && skinit < 20.0);
      (* 512-bit keygen is cheap; the PAL phase must still include seal +
         getrandom, so > 10 ms *)
      Alcotest.(check bool) "setup pal phase" true
        (Session.phase_ms o Session.Pal_execution > 10.0);
      let client =
        Ssh_auth.Client.create ~rng:(Prng.create ~seed:"fig9c") ~ca_key
          ~server_slb_base:p.Platform.slb_base ~key_bits:512 ()
      in
      (match Ssh_auth.Client.accept_server_key client ~nonce setup.Ssh_auth.evidence with
      | Error e -> Alcotest.fail e
      | Ok () -> ());
      let login_nonce = Platform.fresh_nonce p in
      let ct =
        Result.get_ok
          (Ssh_auth.Client.encrypt_password client ~password:"hunter2" ~nonce:login_nonce)
      in
      match Ssh_auth.server_login server ~user:"alice" ~ciphertext:ct ~nonce:login_nonce with
      | Error e -> Alcotest.fail e
      | Ok { Ssh_auth.granted; login_outcome } ->
          Alcotest.(check bool) "granted" true granted;
          (* login PAL phase dominated by the ~898 ms unseal *)
          Alcotest.(check bool) "login pal > 880 ms" true
            (Session.phase_ms login_outcome Session.Pal_execution > 880.0))

let test_flicker_client_end_to_end () =
  (* both machines have Flicker: the password is erased from the client
     too after its encryption session *)
  let server_p = Platform.create ~seed:"fc-server" ~key_bits:512 ~ca () in
  let client_p = Platform.create ~seed:"fc-client" ~key_bits:512 ~ca () in
  let password = "Tr0ub4dor&3-client-side" in
  let server = Ssh_auth.create_server server_p ~key_bits:512 ~users:[ ("dana", password) ] () in
  let fclient =
    Ssh_auth.Flicker_client.create client_p ~ca_key
      ~server_slb_base:server_p.Platform.slb_base ~key_bits:512 ()
  in
  let nonce = Platform.fresh_nonce server_p in
  let setup = Result.get_ok (Ssh_auth.server_setup server ~nonce) in
  (match Ssh_auth.Flicker_client.accept_server_key fclient ~nonce setup.Ssh_auth.evidence with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let login_nonce = Platform.fresh_nonce server_p in
  let ct =
    match Ssh_auth.Flicker_client.encrypt_password fclient ~password ~nonce:login_nonce with
    | Ok ct -> ct
    | Error e -> Alcotest.fail e
  in
  (match Ssh_auth.server_login server ~user:"dana" ~ciphertext:ct ~nonce:login_nonce with
  | Ok { Ssh_auth.granted; _ } -> Alcotest.(check bool) "granted" true granted
  | Error e -> Alcotest.fail e);
  (* the password has been erased from the CLIENT's physical memory *)
  let scan = Flicker_os.Adversary.scan_memory client_p.Platform.machine ~pattern:password in
  Alcotest.(check bool) "password erased from client memory" false
    scan.Flicker_os.Adversary.succeeded

let test_flicker_client_rejects_bad_server () =
  let server_p = Platform.create ~seed:"fc-evil-server" ~key_bits:512 ~ca () in
  let client_p = Platform.create ~seed:"fc-client2" ~key_bits:512 ~ca () in
  let fclient =
    Ssh_auth.Flicker_client.create client_p ~ca_key
      ~server_slb_base:server_p.Platform.slb_base ~key_bits:512 ()
  in
  (* no verified key yet: encryption refuses *)
  Alcotest.(check bool) "no key, no ciphertext" true
    (Result.is_error
       (Ssh_auth.Flicker_client.encrypt_password fclient ~password:"pw"
          ~nonce:(Platform.fresh_nonce client_p)))

let () =
  Alcotest.run "apps-ssh"
    [
      ( "protocol",
        [
          Alcotest.test_case "passwd file" `Quick test_passwd_file;
          Alcotest.test_case "login success" `Quick test_login_success;
          Alcotest.test_case "wrong password" `Quick test_login_wrong_password;
          Alcotest.test_case "key reuse" `Quick test_second_login_reuses_key;
          Alcotest.test_case "login before setup" `Quick test_login_before_setup;
        ] );
      ( "security",
        [
          Alcotest.test_case "password never in memory" `Quick
            test_password_never_in_server_memory;
          Alcotest.test_case "client rejects wrong pal" `Quick test_client_rejects_wrong_pal;
          Alcotest.test_case "nonce replay rejected" `Quick test_nonce_replay_rejected;
        ] );
      ("timing", [ Alcotest.test_case "figure 9 shape" `Quick test_figure9_breakdown ]);
      ( "flicker client",
        [
          Alcotest.test_case "end to end" `Quick test_flicker_client_end_to_end;
          Alcotest.test_case "no key, no ciphertext" `Quick
            test_flicker_client_rejects_bad_server;
        ] );
    ]
