open Flicker_crypto

let rng = Prng.create ~seed:"rsa-tests"

let test_small_primes () =
  Alcotest.(check int) "count below 1000" 168 (List.length Primality.small_primes);
  Alcotest.(check (list int)) "first few" [ 2; 3; 5; 7; 11 ]
    (List.filteri (fun i _ -> i < 5) Primality.small_primes)

let test_is_probably_prime () =
  let prime v = Primality.is_probably_prime rng (Bignum.of_int v) in
  List.iter (fun p -> Alcotest.(check bool) (string_of_int p) true (prime p))
    [ 2; 3; 5; 101; 104729; 999983 ];
  List.iter (fun c -> Alcotest.(check bool) (string_of_int c) false (prime c))
    [ 0; 1; 4; 100; 561 (* Carmichael *); 999982 ];
  (* a known large prime: 2^127 - 1 *)
  Alcotest.(check bool) "mersenne 127" true
    (Primality.is_probably_prime rng
       (Bignum.of_decimal_string "170141183460469231731687303715884105727"));
  Alcotest.(check bool) "mersenne 127 + 2" false
    (Primality.is_probably_prime rng
       (Bignum.of_decimal_string "170141183460469231731687303715884105729"))

let test_generate_prime () =
  List.iter
    (fun bits ->
      let p = Primality.generate_prime rng ~bits in
      Alcotest.(check int) "exact width" bits (Bignum.bit_length p);
      Alcotest.(check bool) "odd" false (Bignum.is_even p);
      Alcotest.(check bool) "probably prime" true (Primality.is_probably_prime rng p))
    [ 16; 64; 128; 256 ]

let test_keygen_structure () =
  let key = Rsa.generate rng ~bits:256 in
  let open Bignum in
  Alcotest.(check int) "modulus width" 256 (bit_length key.Rsa.pub.Rsa.n);
  Alcotest.(check bool) "n = p*q" true (equal key.Rsa.pub.Rsa.n (mul key.Rsa.p key.Rsa.q));
  (* e*d = 1 mod phi *)
  let phi = mul (sub key.Rsa.p one) (sub key.Rsa.q one) in
  Alcotest.(check bool) "ed = 1 (mod phi)" true
    (equal one (rem (mul key.Rsa.pub.Rsa.e key.Rsa.d) phi));
  (* CRT parameters *)
  Alcotest.(check bool) "dp" true (equal key.Rsa.dp (rem key.Rsa.d (sub key.Rsa.p one)));
  Alcotest.(check bool) "qinv" true
    (equal one (rem (mul key.Rsa.qinv key.Rsa.q) key.Rsa.p))

let test_raw_roundtrip () =
  let key = Rsa.generate rng ~bits:256 in
  let m = Bignum.of_decimal_string "123456789012345" in
  let c = Rsa.encrypt_raw key.Rsa.pub m in
  Alcotest.(check bool) "decrypt(encrypt(m)) = m" true
    (Bignum.equal m (Rsa.decrypt_raw key c));
  Alcotest.check_raises "message too large"
    (Invalid_argument "Rsa.encrypt_raw: message too large") (fun () ->
      ignore (Rsa.encrypt_raw key.Rsa.pub key.Rsa.pub.Rsa.n))

let test_crt_against_plain () =
  let key = Rsa.generate rng ~bits:256 in
  let c = Bignum.of_decimal_string "98765432109876543210" in
  let plain = Bignum.mod_pow ~base:c ~exp:key.Rsa.d ~modulus:key.Rsa.pub.Rsa.n in
  Alcotest.(check bool) "CRT matches plain exponentiation" true
    (Bignum.equal plain (Rsa.decrypt_raw key c))

let test_pkcs1_encrypt () =
  let key = Rsa.generate rng ~bits:512 in
  let msg = "attack at dawn" in
  let ct = Pkcs1.encrypt rng key.Rsa.pub msg in
  Alcotest.(check int) "ciphertext = key size" (Rsa.key_bytes key.Rsa.pub)
    (String.length ct);
  (match Pkcs1.decrypt key ct with
  | Ok m -> Alcotest.(check string) "roundtrip" msg m
  | Error e -> Alcotest.fail e);
  (* randomized padding: two encryptions differ *)
  Alcotest.(check bool) "probabilistic" true (ct <> Pkcs1.encrypt rng key.Rsa.pub msg);
  Alcotest.check_raises "too long" (Invalid_argument "Pkcs1.encrypt: message too long")
    (fun () ->
      ignore (Pkcs1.encrypt rng key.Rsa.pub (String.make (Pkcs1.max_message_bytes key.Rsa.pub + 1) 'x')))

let test_pkcs1_decrypt_failures () =
  let key = Rsa.generate rng ~bits:512 in
  Alcotest.(check bool) "wrong length" true
    (Result.is_error (Pkcs1.decrypt key "short"));
  (* a random blob of the right length almost surely has bad padding *)
  let junk = Prng.bytes rng (Rsa.key_bytes key.Rsa.pub - 1) ^ "\x00" in
  Alcotest.(check bool) "junk rejected" true
    (Result.is_error (Pkcs1.decrypt key ("\x00" ^ String.sub junk 0 (String.length junk - 1) ^ "\x00")))

let test_pkcs1_nonmalleability_guard () =
  (* flipping ciphertext bits must not yield the original plaintext *)
  let key = Rsa.generate rng ~bits:512 in
  let msg = "password123" in
  let ct = Bytes.of_string (Pkcs1.encrypt rng key.Rsa.pub msg) in
  Bytes.set ct 10 (Char.chr (Char.code (Bytes.get ct 10) lxor 0x40));
  match Pkcs1.decrypt key (Bytes.to_string ct) with
  | Error _ -> ()
  | Ok m -> Alcotest.(check bool) "differs" true (m <> msg)

let test_sign_verify () =
  let key = Rsa.generate rng ~bits:512 in
  List.iter
    (fun alg ->
      let s = Pkcs1.sign key alg "signed message" in
      Alcotest.(check bool) "verifies" true
        (Pkcs1.verify key.Rsa.pub alg ~msg:"signed message" ~signature:s);
      Alcotest.(check bool) "wrong message" false
        (Pkcs1.verify key.Rsa.pub alg ~msg:"other message" ~signature:s);
      Alcotest.(check bool) "wrong alg" false
        (Pkcs1.verify key.Rsa.pub
           (if alg = Hash.SHA1 then Hash.MD5 else Hash.SHA1)
           ~msg:"signed message" ~signature:s))
    [ Hash.SHA1; Hash.SHA256; Hash.MD5 ];
  let key2 = Rsa.generate rng ~bits:512 in
  let s = Pkcs1.sign key Hash.SHA1 "msg" in
  Alcotest.(check bool) "wrong key" false
    (Pkcs1.verify key2.Rsa.pub Hash.SHA1 ~msg:"msg" ~signature:s);
  Alcotest.(check bool) "wrong length sig" false
    (Pkcs1.verify key.Rsa.pub Hash.SHA1 ~msg:"msg" ~signature:"short")

let test_serialization () =
  let key = Rsa.generate rng ~bits:256 in
  let pub' = Rsa.public_of_string (Rsa.public_to_string key.Rsa.pub) in
  Alcotest.(check bool) "public roundtrip" true
    (Bignum.equal pub'.Rsa.n key.Rsa.pub.Rsa.n && Bignum.equal pub'.Rsa.e key.Rsa.pub.Rsa.e);
  let key' = Rsa.private_of_string (Rsa.private_to_string key) in
  Alcotest.(check bool) "private roundtrip" true
    (Bignum.equal key'.Rsa.d key.Rsa.d && Bignum.equal key'.Rsa.qinv key.Rsa.qinv);
  Alcotest.(check bool) "garbage rejected" true
    (match Rsa.private_of_string "garbage" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_distinct_keys () =
  let k1 = Rsa.generate rng ~bits:256 in
  let k2 = Rsa.generate rng ~bits:256 in
  Alcotest.(check bool) "moduli differ" false (Bignum.equal k1.Rsa.pub.Rsa.n k2.Rsa.pub.Rsa.n)

let prop_pkcs1_roundtrip =
  let key = Rsa.generate rng ~bits:512 in
  QCheck.Test.make ~name:"PKCS#1 encrypt/decrypt roundtrip" ~count:50
    QCheck.(string_of_size Gen.(int_range 0 (Pkcs1.max_message_bytes key.Rsa.pub)))
    (fun msg -> Pkcs1.decrypt key (Pkcs1.encrypt rng key.Rsa.pub msg) = Ok msg)

let prop_sign_all_messages =
  let key = Rsa.generate rng ~bits:512 in
  QCheck.Test.make ~name:"signatures verify for arbitrary messages" ~count:30
    QCheck.(string_of_size Gen.(int_range 0 1000))
    (fun msg ->
      Pkcs1.verify key.Rsa.pub Hash.SHA1 ~msg ~signature:(Pkcs1.sign key Hash.SHA1 msg))

let () =
  Alcotest.run "rsa"
    [
      ( "primality",
        [
          Alcotest.test_case "small primes" `Quick test_small_primes;
          Alcotest.test_case "miller-rabin" `Quick test_is_probably_prime;
          Alcotest.test_case "prime generation" `Slow test_generate_prime;
        ] );
      ( "rsa",
        [
          Alcotest.test_case "keygen structure" `Quick test_keygen_structure;
          Alcotest.test_case "raw roundtrip" `Quick test_raw_roundtrip;
          Alcotest.test_case "CRT correctness" `Quick test_crt_against_plain;
          Alcotest.test_case "distinct keys" `Quick test_distinct_keys;
        ] );
      ( "pkcs1",
        [
          Alcotest.test_case "encrypt" `Quick test_pkcs1_encrypt;
          Alcotest.test_case "decrypt failures" `Quick test_pkcs1_decrypt_failures;
          Alcotest.test_case "tampered ciphertext" `Quick test_pkcs1_nonmalleability_guard;
          Alcotest.test_case "sign/verify" `Quick test_sign_verify;
          Alcotest.test_case "serialization" `Quick test_serialization;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_pkcs1_roundtrip; prop_sign_all_messages ]
      );
    ]
