open Flicker_crypto

let test_known_vectors () =
  (* cross-checked against glibc crypt(3) *)
  Alcotest.(check string) "openssl vector" "$1$12345678$o2n/JiO/h5VviOInWJ4OQ/"
    (Md5crypt.crypt ~salt:"12345678" ~password:"password");
  Alcotest.(check string) "short salt" "$1$ab$dslkcXxVH.x8LwW1W/oAB/"
    (Md5crypt.crypt ~salt:"ab" ~password:"secret")

let test_salt_handling () =
  (* salt truncated to 8 chars *)
  Alcotest.(check string) "truncated salt"
    (Md5crypt.crypt ~salt:"12345678" ~password:"pw")
    (Md5crypt.crypt ~salt:"123456789abc" ~password:"pw");
  (* salt stops at '$' *)
  Alcotest.(check string) "dollar-terminated salt"
    (Md5crypt.crypt ~salt:"abc" ~password:"pw")
    (Md5crypt.crypt ~salt:"abc$def" ~password:"pw")

let test_verify () =
  let crypted = Md5crypt.crypt ~salt:"s4lt" ~password:"hunter2" in
  Alcotest.(check bool) "correct" true (Md5crypt.verify ~crypted ~password:"hunter2");
  Alcotest.(check bool) "wrong" false (Md5crypt.verify ~crypted ~password:"hunter3");
  Alcotest.(check bool) "empty" false (Md5crypt.verify ~crypted ~password:"")

let test_parse () =
  let salt, hash = Md5crypt.parse "$1$mysalt$AbCdEfGhIjKlMnOpQrStU/" in
  Alcotest.(check string) "salt" "mysalt" salt;
  Alcotest.(check string) "hash" "AbCdEfGhIjKlMnOpQrStU/" hash;
  Alcotest.check_raises "not crypt"
    (Invalid_argument "Md5crypt.parse: not a $1$ crypt string") (fun () ->
      ignore (Md5crypt.parse "plaintext"))

let test_format () =
  let c = Md5crypt.crypt ~salt:"saltsalt" ~password:"anything at all" in
  Alcotest.(check bool) "prefix" true (String.length c > 3 && String.sub c 0 3 = "$1$");
  let _, hash = Md5crypt.parse c in
  Alcotest.(check int) "22-char hash" 22 (String.length hash)

let prop_verify_roundtrip =
  QCheck.Test.make ~name:"crypt verifies its own output" ~count:30
    QCheck.(pair (string_of_size Gen.(int_range 1 30)) (string_of_size Gen.(int_range 0 8)))
    (fun (password, salt) ->
      QCheck.assume (not (String.contains salt '$'));
      QCheck.assume (String.length password > 0);
      Md5crypt.verify ~crypted:(Md5crypt.crypt ~salt ~password) ~password)

let prop_distinct_salts =
  QCheck.Test.make ~name:"different salts give different hashes" ~count:30
    QCheck.(string_of_size Gen.(int_range 1 20))
    (fun password ->
      QCheck.assume (String.length password > 0);
      Md5crypt.crypt ~salt:"aaaa" ~password <> Md5crypt.crypt ~salt:"bbbb" ~password)

let () =
  Alcotest.run "md5crypt"
    [
      ( "md5crypt",
        [
          Alcotest.test_case "known vectors" `Quick test_known_vectors;
          Alcotest.test_case "salt handling" `Quick test_salt_handling;
          Alcotest.test_case "verify" `Quick test_verify;
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "format" `Quick test_format;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_verify_roundtrip; prop_distinct_salts ]
      );
    ]
