(* Intel TXT (GETSEC[SENTER]) support: the two-stage ACM + MLE
   measurement, full sessions over TXT, and attestation that binds the
   SINIT ACM identity. *)

open Flicker_crypto
open Flicker_core
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Apic = Flicker_hw.Apic
module Senter = Flicker_hw.Senter
module Timing = Flicker_hw.Timing
module Tpm = Flicker_tpm.Tpm
module Privacy_ca = Flicker_tpm.Privacy_ca

let ca = Privacy_ca.create (Prng.create ~seed:"txt-ca") ~name:"TxtCA" ~key_bits:512
let ca_key = Privacy_ca.public_key ca
let make_platform ~seed = Platform.create ~seed ~key_bits:512 ~ca ()

let worker =
  Pal.define ~name:"txt-worker" (fun env ->
      Pal_env.set_output env ("txt:" ^ env.Pal_env.inputs))

(* --- raw SENTER semantics --- *)

let machine_with_tpm () =
  let m = Machine.create ~memory_size:(1024 * 1024) Timing.default in
  let tpm = Tpm.create m (Prng.create ~seed:"txt-hw") ~key_bits:512 in
  Machine.set_tpm_hooks m (Tpm.skinit_hooks tpm);
  (m, tpm)

let write_mle m ~addr ~len =
  Memory.write_u16_le m.Machine.memory addr len;
  Memory.write_u16_le m.Machine.memory (addr + 2) 4;
  Memory.write m.Machine.memory ~addr:(addr + 4) (String.make (len - 4) 'M')

let park m =
  Apic.deschedule_aps m;
  Apic.send_init_ipi m

let test_senter_measurement_chain () =
  let m, tpm = machine_with_tpm () in
  write_mle m ~addr:0x10000 ~len:1000;
  park m;
  let launch = Senter.execute m ~slb_base:0x10000 ~acm:Senter.default_acm in
  Alcotest.(check string) "acm measurement" (Sha1.digest Senter.default_acm)
    launch.Senter.acm_measurement;
  (* PCR 17 = extend(extend(0, H(ACM)), H(MLE)) *)
  let mle = Memory.read m.Machine.memory ~addr:0x10000 ~len:1000 in
  let expected =
    Sha1.digest
      (Sha1.digest (String.make 20 '\000' ^ Sha1.digest Senter.default_acm)
      ^ Sha1.digest mle)
  in
  Alcotest.(check string) "pcr17 chain" expected (Result.get_ok (Tpm.pcr_read tpm 17));
  (* protections up, as with SKINIT *)
  Alcotest.(check bool) "DMA blocked" false
    (Flicker_hw.Dev.allows m.Machine.dev ~addr:0x10000 ~len:65536);
  Senter.teardown_protection m launch;
  Alcotest.(check bool) "DMA restored" true
    (Flicker_hw.Dev.allows m.Machine.dev ~addr:0x10000 ~len:65536)

let test_senter_differs_from_skinit () =
  (* the same MLE bytes launched by the two technologies give different
     PCR 17 values: the ACM link is visible to verifiers *)
  let m1, tpm1 = machine_with_tpm () in
  write_mle m1 ~addr:0x10000 ~len:500;
  park m1;
  ignore (Senter.execute m1 ~slb_base:0x10000 ~acm:Senter.default_acm);
  let m2, tpm2 = machine_with_tpm () in
  write_mle m2 ~addr:0x10000 ~len:500;
  park m2;
  ignore (Flicker_hw.Skinit.execute m2 ~slb_base:0x10000);
  Alcotest.(check bool) "chains differ" true
    (Result.get_ok (Tpm.pcr_read tpm1 17) <> Result.get_ok (Tpm.pcr_read tpm2 17))

let test_senter_preconditions () =
  let m, _ = machine_with_tpm () in
  write_mle m ~addr:0x10000 ~len:500;
  (* busy APs *)
  (match Senter.execute m ~slb_base:0x10000 ~acm:Senter.default_acm with
  | _ -> Alcotest.fail "busy APs accepted"
  | exception Senter.Senter_error _ -> ());
  park m;
  (* empty ACM *)
  match Senter.execute m ~slb_base:0x10000 ~acm:"" with
  | _ -> Alcotest.fail "empty ACM accepted"
  | exception Senter.Senter_error _ -> ()

(* --- sessions over TXT --- *)

let test_txt_session () =
  let p = make_platform ~seed:"txt-session" in
  let tech = Session.Txt { acm = Senter.default_acm } in
  match Session.execute p ~pal:worker ~tech ~inputs:"hello" () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome ->
      Alcotest.(check string) "outputs" "txt:hello" outcome.Session.outputs;
      (* the during-value includes the ACM link *)
      let image = Flicker_slb.Builder.build ~flavor:Flicker_slb.Builder.Optimized worker in
      Alcotest.(check string) "pcr17 during"
        (Measurement.after_launch ~acm:Senter.default_acm image
           ~slb_base:p.Platform.slb_base)
        outcome.Session.pcr17_during;
      Alcotest.(check bool) "differs from svm chain" true
        (outcome.Session.pcr17_during
        <> Measurement.after_skinit image ~slb_base:p.Platform.slb_base)

let test_txt_attestation () =
  let p = make_platform ~seed:"txt-attest" in
  let nonce = Platform.fresh_nonce p in
  let tech = Session.Txt { acm = Senter.default_acm } in
  match Session.execute p ~pal:worker ~tech ~inputs:"x" ~nonce () with
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e
  | Ok outcome -> (
      let evidence =
        Attestation.generate p ~nonce ~inputs:"x" ~outputs:outcome.Session.outputs
      in
      (* a TXT-aware expectation verifies *)
      let good =
        Verifier.expect ~pal:worker ~acm:Senter.default_acm
          ~slb_base:p.Platform.slb_base ~nonce ()
      in
      (match Verifier.verify ~ca_key good evidence with
      | Ok () -> ()
      | Error f -> Alcotest.fail (Verifier.failure_to_string f));
      (* expecting an SVM launch fails: the technology is attested *)
      let svm_expect = Verifier.expect ~pal:worker ~slb_base:p.Platform.slb_base ~nonce () in
      (match Verifier.verify ~ca_key svm_expect evidence with
      | Error (Verifier.Pcr_mismatch _) -> ()
      | _ -> Alcotest.fail "svm expectation accepted a txt launch");
      (* and a different (e.g. outdated, vulnerable) ACM fails too *)
      let wrong_acm =
        Verifier.expect ~pal:worker ~acm:"old-sinit-with-known-cve"
          ~slb_base:p.Platform.slb_base ~nonce ()
      in
      match Verifier.verify ~ca_key wrong_acm evidence with
      | Error (Verifier.Pcr_mismatch _) -> ()
      | _ -> Alcotest.fail "wrong ACM accepted")

let test_txt_sealing_is_tech_specific () =
  (* data sealed inside a TXT session of a PAL is not available to an SVM
     session of the same PAL: the launch chain is part of the identity *)
  let sealer =
    Pal.define ~name:"txt-sealer" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env ->
        match Util.decode_fields env.Pal_env.inputs with
        | Ok [ "seal" ] -> (
            match Sealed_storage.seal_for_self env "txt secret" with
            | Ok blob -> Pal_env.set_output env blob
            | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
        | Ok [ "unseal"; blob ] -> (
            match Sealed_storage.unseal env blob with
            | Ok d -> Pal_env.set_output env ("got:" ^ d)
            | Error e -> Pal_env.set_output env ("denied:" ^ e))
        | Ok _ | Error _ -> Pal_env.set_output env "ERROR: mode")
  in
  let p = make_platform ~seed:"txt-seal" in
  let tech = Session.Txt { acm = Senter.default_acm } in
  let blob =
    match Session.execute p ~pal:sealer ~tech ~inputs:(Util.encode_fields [ "seal" ]) () with
    | Ok o -> o.Session.outputs
    | Error e -> Alcotest.failf "seal session: %a" Session.pp_error e
  in
  (* SVM session of the same PAL: denied *)
  (match
     Session.execute p ~pal:sealer ~inputs:(Util.encode_fields [ "unseal"; blob ]) ()
   with
  | Ok o ->
      Alcotest.(check bool) "svm denied" true
        (String.length o.Session.outputs >= 6
        && String.sub o.Session.outputs 0 6 = "denied")
  | Error e -> Alcotest.failf "svm session: %a" Session.pp_error e);
  (* TXT session with the same ACM: allowed *)
  match
    Session.execute p ~pal:sealer ~tech ~inputs:(Util.encode_fields [ "unseal"; blob ]) ()
  with
  | Ok o -> Alcotest.(check string) "txt allowed" "got:txt secret" o.Session.outputs
  | Error e -> Alcotest.failf "txt session: %a" Session.pp_error e

let test_txt_timing () =
  (* the ACM transfer adds measurable SKINIT-phase latency *)
  let p = make_platform ~seed:"txt-time" in
  let svm =
    match Session.execute p ~pal:worker () with
    | Ok o -> o
    | Error e -> Alcotest.failf "%a" Session.pp_error e
  in
  let txt =
    match Session.execute p ~pal:worker ~tech:(Session.Txt { acm = Senter.default_acm }) () with
    | Ok o -> o
    | Error e -> Alcotest.failf "%a" Session.pp_error e
  in
  Alcotest.(check bool) "txt launch slower (acm transfer)" true
    (Session.phase_ms txt Session.Skinit > Session.phase_ms svm Session.Skinit)

let () =
  Alcotest.run "txt"
    [
      ( "senter",
        [
          Alcotest.test_case "measurement chain" `Quick test_senter_measurement_chain;
          Alcotest.test_case "differs from skinit" `Quick test_senter_differs_from_skinit;
          Alcotest.test_case "preconditions" `Quick test_senter_preconditions;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "txt session" `Quick test_txt_session;
          Alcotest.test_case "txt attestation" `Quick test_txt_attestation;
          Alcotest.test_case "tech-specific sealing" `Quick test_txt_sealing_is_tech_specific;
          Alcotest.test_case "timing" `Quick test_txt_timing;
        ] );
    ]
