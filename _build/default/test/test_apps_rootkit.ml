open Flicker_crypto
open Flicker_core
open Flicker_apps
module Kernel = Flicker_os.Kernel
module Privacy_ca = Flicker_tpm.Privacy_ca

let ca = Privacy_ca.create (Prng.create ~seed:"rk-ca") ~name:"RkCA" ~key_bits:512
let ca_key = Privacy_ca.public_key ca

let make ~seed =
  let p = Platform.create ~seed ~key_bits:512 ~kernel_text_size:(32 * 1024) ~ca () in
  (p, Rootkit_detector.deploy_on p)

let scan_verdict p d =
  let nonce = Platform.fresh_nonce p in
  match Rootkit_detector.scan d ~nonce with
  | Error e -> Alcotest.fail e
  | Ok result -> Rootkit_detector.admin_check d ~ca_key result

let test_clean_kernel () =
  let p, d = make ~seed:"clean" in
  match scan_verdict p d with
  | Rootkit_detector.Clean -> ()
  | Rootkit_detector.Rootkit_detected _ -> Alcotest.fail "false positive"
  | Rootkit_detector.Attestation_rejected f ->
      Alcotest.fail (Verifier.failure_to_string f)

let detects ~seed install =
  let p, d = make ~seed in
  (* verify clean first *)
  (match scan_verdict p d with
  | Rootkit_detector.Clean -> ()
  | _ -> Alcotest.fail "not clean initially");
  install p.Platform.kernel;
  Rootkit_detector.sync d;
  match scan_verdict p d with
  | Rootkit_detector.Rootkit_detected { expected; got } ->
      Alcotest.(check bool) "hashes differ" true (expected <> got)
  | Rootkit_detector.Clean -> Alcotest.fail "rootkit missed"
  | Rootkit_detector.Attestation_rejected f ->
      Alcotest.fail (Verifier.failure_to_string f)

let test_detects_text_rootkit () = detects ~seed:"text" Kernel.install_text_rootkit
let test_detects_syscall_rootkit () = detects ~seed:"syscall" Kernel.install_syscall_rootkit
let test_detects_module_rootkit () = detects ~seed:"module" Kernel.install_module_rootkit

let test_lying_detector_rejected () =
  (* a compromised OS runs the detector on a rootkitted kernel and then
     substitutes the clean hash in its report: the attestation catches it *)
  let p, d = make ~seed:"liar" in
  let clean_hash = Rootkit_detector.known_good_hash d in
  Kernel.install_syscall_rootkit p.Platform.kernel;
  Rootkit_detector.sync d;
  let nonce = Platform.fresh_nonce p in
  match Rootkit_detector.scan d ~nonce with
  | Error e -> Alcotest.fail e
  | Ok result ->
      let lie =
        {
          result with
          Rootkit_detector.evidence =
            Attestation.tamper_outputs result.Rootkit_detector.evidence clean_hash;
        }
      in
      (match Rootkit_detector.admin_check d ~ca_key lie with
      | Rootkit_detector.Attestation_rejected (Verifier.Pcr_mismatch _) -> ()
      | Rootkit_detector.Attestation_rejected f ->
          Alcotest.fail ("wrong failure: " ^ Verifier.failure_to_string f)
      | _ -> Alcotest.fail "lying OS fooled the administrator")

let test_detector_hash_matches_live_memory () =
  (* what the PAL reports equals an independent hash of the regions *)
  let p, d = make ~seed:"hash-check" in
  let nonce = Platform.fresh_nonce p in
  match Rootkit_detector.scan d ~nonce with
  | Error e -> Alcotest.fail e
  | Ok result ->
      Alcotest.(check string) "reported = known good"
        (Rootkit_detector.known_good_hash d) result.Rootkit_detector.reported_hash;
      Alcotest.(check int) "hash size" 20 (String.length result.Rootkit_detector.reported_hash)

let test_remote_query_latency () =
  (* Section 7.2: the full remote query takes ~1 second, dominated by the
     TPM quote *)
  let p, d = make ~seed:"latency" in
  match Rootkit_detector.remote_query d ~ca_key with
  | Error e -> Alcotest.fail e
  | Ok (verdict, ms) ->
      (match verdict with
      | Rootkit_detector.Clean -> ()
      | _ -> Alcotest.fail "expected clean");
      Alcotest.(check bool) "about one second" true (ms > 950.0 && ms < 1150.0);
      ignore p

let test_detection_query_breakdown () =
  (* Table 1's shape: quote >> hash > skinit > extend *)
  let p, d = make ~seed:"breakdown" in
  let nonce = Platform.fresh_nonce p in
  match Rootkit_detector.scan d ~nonce with
  | Error e -> Alcotest.fail e
  | Ok result ->
      let o = result.Rootkit_detector.outcome in
      let skinit = Session.phase_ms o Session.Skinit in
      Alcotest.(check bool) "skinit ~14-16ms" true (skinit > 10.0 && skinit < 20.0);
      Alcotest.(check bool) "pal exec includes kernel hash" true
        (Session.phase_ms o Session.Pal_execution > 0.0)

let () =
  Alcotest.run "apps-rootkit"
    [
      ( "detection",
        [
          Alcotest.test_case "clean kernel" `Quick test_clean_kernel;
          Alcotest.test_case "text rootkit" `Quick test_detects_text_rootkit;
          Alcotest.test_case "syscall rootkit" `Quick test_detects_syscall_rootkit;
          Alcotest.test_case "module rootkit" `Quick test_detects_module_rootkit;
          Alcotest.test_case "hash matches memory" `Quick test_detector_hash_matches_live_memory;
        ] );
      ( "attestation",
        [
          Alcotest.test_case "lying detector rejected" `Quick test_lying_detector_rejected;
          Alcotest.test_case "remote query latency" `Quick test_remote_query_latency;
          Alcotest.test_case "breakdown shape" `Quick test_detection_query_breakdown;
        ] );
    ]
