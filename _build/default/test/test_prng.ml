open Flicker_crypto

let test_determinism () =
  let a = Prng.create ~seed:"same" and b = Prng.create ~seed:"same" in
  Alcotest.(check string) "identical streams" (Prng.bytes a 100) (Prng.bytes b 100);
  let c = Prng.create ~seed:"different" in
  Alcotest.(check bool) "different seeds differ" true
    (Prng.bytes (Prng.create ~seed:"same") 100 <> Prng.bytes c 100)

let test_lengths () =
  let rng = Prng.create ~seed:"len" in
  List.iter
    (fun n -> Alcotest.(check int) "length" n (String.length (Prng.bytes rng n)))
    [ 0; 1; 31; 32; 33; 1000 ];
  Alcotest.check_raises "negative" (Invalid_argument "Prng.bytes: negative") (fun () ->
      ignore (Prng.bytes rng (-1)))

let test_stream_advances () =
  let rng = Prng.create ~seed:"advance" in
  let a = Prng.bytes rng 32 and b = Prng.bytes rng 32 in
  Alcotest.(check bool) "consecutive draws differ" true (a <> b)

let test_int_below () =
  let rng = Prng.create ~seed:"ints" in
  for _ = 1 to 500 do
    let v = Prng.int_below rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  (* all residues reachable for a small bound *)
  let seen = Array.make 5 false in
  for _ = 1 to 200 do
    seen.(Prng.int_below rng 5) <- true
  done;
  Alcotest.(check bool) "all residues hit" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int_below: non-positive bound") (fun () ->
      ignore (Prng.int_below rng 0))

let test_fork_independence () =
  let parent = Prng.create ~seed:"forking" in
  let child1 = Prng.fork parent ~label:"a" in
  let child2 = Prng.fork parent ~label:"b" in
  Alcotest.(check bool) "children differ" true (Prng.bytes child1 64 <> Prng.bytes child2 64);
  (* forking with the same label from identical parents is deterministic *)
  let p1 = Prng.create ~seed:"x" and p2 = Prng.create ~seed:"x" in
  let c1 = Prng.fork p1 ~label:"same" and c2 = Prng.fork p2 ~label:"same" in
  Alcotest.(check string) "deterministic forks" (Prng.bytes c1 32) (Prng.bytes c2 32);
  (* the fork ratchets the parent: same label twice gives a new stream *)
  let again = Prng.fork p1 ~label:"same" in
  Alcotest.(check bool) "re-fork differs" true (Prng.bytes c1 32 <> Prng.bytes again 32)

let test_reseed () =
  let a = Prng.create ~seed:"r" and b = Prng.create ~seed:"r" in
  Prng.reseed a "extra entropy";
  Alcotest.(check bool) "reseed changes stream" true (Prng.bytes a 32 <> Prng.bytes b 32)

let test_byte_distribution () =
  (* crude sanity: over 4096 draws every quartile of byte values appears *)
  let rng = Prng.create ~seed:"dist" in
  let quartiles = Array.make 4 0 in
  String.iter
    (fun c -> quartiles.(Char.code c / 64) <- quartiles.(Char.code c / 64) + 1)
    (Prng.bytes rng 4096);
  Array.iter (fun n -> Alcotest.(check bool) "quartile populated" true (n > 800)) quartiles

let prop_chunked_draws_differ =
  QCheck.Test.make ~name:"no short cycles" ~count:50 QCheck.small_int (fun n ->
      let rng = Prng.create ~seed:(string_of_int n) in
      let a = Prng.bytes rng 32 in
      let rec distinct k = k = 0 || (Prng.bytes rng 32 <> a && distinct (k - 1)) in
      distinct 20)

let () =
  Alcotest.run "prng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "lengths" `Quick test_lengths;
          Alcotest.test_case "stream advances" `Quick test_stream_advances;
          Alcotest.test_case "int_below" `Quick test_int_below;
          Alcotest.test_case "fork independence" `Quick test_fork_independence;
          Alcotest.test_case "reseed" `Quick test_reseed;
          Alcotest.test_case "byte distribution" `Quick test_byte_distribution;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_chunked_draws_differ ]);
    ]
