bench/main.mli:
