bench/main.ml: Array Flicker_hw List Micro Paper Printf String Sys
