bench/paper.ml: Attestation Flicker_apps Flicker_core Flicker_crypto Flicker_hw Flicker_os Flicker_slb Flicker_tpm Float Format Lazy List Option Platform Printf Result Session String Trusted_boot
