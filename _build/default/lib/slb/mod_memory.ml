type block = { off : int; size : int; mutable free : bool }
type t = { buf : Bytes.t; mutable blocks : block list (* sorted by offset *) }

let create ~size =
  if size <= 0 then invalid_arg "Mod_memory.create: non-positive size";
  { buf = Bytes.make size '\000'; blocks = [ { off = 0; size; free = true } ] }

(* first fit with split *)
let malloc t n =
  if n < 0 then invalid_arg "Mod_memory.malloc: negative size";
  let want = max n 1 in
  let rec fit = function
    | [] -> None
    | b :: rest ->
        if b.free && b.size >= want then Some (b, rest) else fit rest
  in
  match fit t.blocks with
  | None -> None
  | Some (b, _) ->
      b.free <- false;
      if b.size > want then begin
        let leftover = { off = b.off + want; size = b.size - want; free = true } in
        let shrunk = { b with size = want; free = false } in
        t.blocks <-
          List.concat_map
            (fun blk -> if blk == b then [ shrunk; leftover ] else [ blk ])
            t.blocks;
        Some shrunk.off
      end
      else Some b.off

let find_allocated t off =
  List.find_opt (fun b -> b.off = off && not b.free) t.blocks

let coalesce t =
  let rec merge = function
    | a :: b :: rest when a.free && b.free ->
        merge ({ off = a.off; size = a.size + b.size; free = true } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  t.blocks <- merge t.blocks

let free t off =
  match find_allocated t off with
  | None -> invalid_arg "Mod_memory.free: not an allocated block"
  | Some b ->
      (* wipe on free: PAL heaps hold secrets *)
      Bytes.fill t.buf b.off b.size '\000';
      t.blocks <-
        List.map (fun blk -> if blk == b then { blk with free = true } else blk) t.blocks;
      coalesce t

let read t ~off ~len =
  match List.find_opt (fun b -> (not b.free) && off >= b.off && off + len <= b.off + b.size) t.blocks with
  | Some _ -> Bytes.sub_string t.buf off len
  | None -> invalid_arg "Mod_memory.read: outside any allocated block"

let write t ~off data =
  let len = String.length data in
  match List.find_opt (fun b -> (not b.free) && off >= b.off && off + len <= b.off + b.size) t.blocks with
  | Some _ -> Bytes.blit_string data 0 t.buf off len
  | None -> invalid_arg "Mod_memory.write: outside any allocated block"

let block_size t off =
  Option.map (fun b -> b.size) (find_allocated t off)

let realloc t off n =
  match find_allocated t off with
  | None -> invalid_arg "Mod_memory.realloc: not an allocated block"
  | Some b ->
      if n <= b.size then Some off
      else begin
        match malloc t n with
        | None -> None
        | Some noff ->
            Bytes.blit t.buf b.off t.buf noff b.size;
            free t off;
            Some noff
      end

let allocated_bytes t =
  List.fold_left (fun acc b -> if b.free then acc else acc + b.size) 0 t.blocks

let free_bytes t =
  List.fold_left (fun acc b -> if b.free then acc + b.size else acc) 0 t.blocks

let zeroize t = Bytes.fill t.buf 0 (Bytes.length t.buf) '\000'
