(** PAL definitions: the Figure 6 module catalog, deterministic "binary"
    code synthesis, and the registry that maps measured code back to
    behaviour.

    A real PAL is a binary blob linked against the SLB Core; the kernel
    module sees only bytes, and the hardware measures exactly those bytes.
    The simulator preserves that: a PAL's [code] is a deterministic byte
    string (synthesized from its name and declared size, mirroring the
    sizes in Figure 6), and execution after SKINIT looks the measured
    bytes up in a registry. Corrupt the bytes and you get a different
    measurement and no (or different) behaviour — exactly the hardware
    contract. *)

type module_kind =
  | Os_protection
  | Tpm_driver
  | Tpm_utilities
  | Crypto
  | Memory_management
  | Secure_channel

type module_info = {
  kind : module_kind;
  module_name : string;
  loc : int;  (** lines of code added to the TCB (Figure 6) *)
  size_bytes : int;  (** contribution to the SLB binary (Figure 6) *)
  description : string;
}

val catalog : module_info list
(** All optional modules, with the paper's LOC and size figures. *)

val info : module_kind -> module_info
val module_code : module_kind -> string
(** The module's deterministic code bytes ([size_bytes] long). *)

type t = {
  name : string;
  app_code : string;  (** application-specific code bytes *)
  modules : module_kind list;  (** sorted, duplicate-free *)
  behavior : Pal_env.t -> unit;
}

val define :
  name:string ->
  ?app_code_size:int ->
  ?modules:module_kind list ->
  (Pal_env.t -> unit) ->
  t
(** Create and register a PAL. The app code bytes are synthesized from
    [name] and [app_code_size] (default 512 bytes — a small C function).
    Registration keys the behaviour by [SHA-1(linked code)] so the
    session dispatcher can only run what was measured.
    @raise Invalid_argument if the linked code exceeds the PAL region. *)

val linked_code : t -> string
(** Module code (in catalog order) followed by app code: the PAL region
    of the SLB image. *)

val code_hash : t -> string

val find_by_code : string -> t option
(** Registry lookup by the exact linked-code bytes. *)

val wants : t -> module_kind -> bool
val total_loc : t -> int
(** TCB lines of code: SLB Core plus every linked module (app logic not
    included, as in the paper's per-module accounting). *)
