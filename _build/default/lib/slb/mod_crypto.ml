open Flicker_crypto
module Machine = Flicker_hw.Machine
module Timing = Flicker_hw.Timing

let timing (m : Machine.t) = m.Machine.timing

let sha1 m s =
  Machine.charge_sha1 m ~bytes:(String.length s);
  Sha1.digest s

let sha512 m s =
  (* SHA-512 runs at roughly half the SHA-1 rate on 32-bit x86 *)
  Machine.charge m (2.0 *. Timing.sha1_ms (timing m) ~bytes:(String.length s));
  Sha512.digest s

let md5 m s =
  Machine.charge m (0.8 *. Timing.sha1_ms (timing m) ~bytes:(String.length s));
  Md5.digest s

let hmac_sha1 m ~key s =
  Machine.charge_sha1 m ~bytes:(String.length s + 128);
  Hmac.sha1 ~key s

let rsa_generate m rng ~bits =
  Machine.charge m (Timing.rsa_keygen_ms (timing m) ~bits);
  Rsa.generate rng ~bits

let rsa_encrypt m rng pub msg =
  Machine.charge m (Timing.rsa_public_ms (timing m) ~bits:(8 * Rsa.key_bytes pub));
  Pkcs1.encrypt rng pub msg

let rsa_decrypt m key ct =
  Machine.charge m
    (Timing.rsa_private_ms (timing m) ~bits:(8 * Rsa.key_bytes key.Rsa.pub));
  Pkcs1.decrypt key ct

let rsa_sign m key alg msg =
  Machine.charge m
    (Timing.rsa_private_ms (timing m) ~bits:(8 * Rsa.key_bytes key.Rsa.pub));
  Pkcs1.sign key alg msg

let rsa_verify m pub alg ~msg ~signature =
  Machine.charge m (Timing.rsa_public_ms (timing m) ~bits:(8 * Rsa.key_bytes pub));
  Pkcs1.verify pub alg ~msg ~signature

let elgamal_bits (params : Elgamal.params) = Bignum.bit_length params.Elgamal.p

let elgamal_generate m rng params =
  (* one g^x mod p: the same cost class as an RSA private operation *)
  Machine.charge m (Timing.rsa_private_ms (timing m) ~bits:(elgamal_bits params));
  Elgamal.generate rng params

let elgamal_encrypt m rng pub msg =
  Machine.charge m
    (2.0 *. Timing.rsa_private_ms (timing m) ~bits:(elgamal_bits pub.Elgamal.params));
  Elgamal.encrypt rng pub msg

let elgamal_decrypt m key ct =
  Machine.charge m
    (Timing.rsa_private_ms (timing m)
       ~bits:(elgamal_bits key.Elgamal.pub.Elgamal.params));
  Elgamal.decrypt key ct

let charge_aes m bytes =
  Machine.charge m
    (float_of_int bytes /. (1024.0 *. 1024.0) /. (timing m).Timing.cpu.Timing.aes_mb_per_ms)

let aes_encrypt_cbc m key ~iv data =
  charge_aes m (String.length data);
  Aes.encrypt_cbc key ~iv data

let aes_decrypt_cbc m key ~iv data =
  charge_aes m (String.length data);
  Aes.decrypt_cbc key ~iv data

let md5crypt m ~salt ~password =
  (* 1000 MD5 iterations over short inputs *)
  Machine.charge m (1000.0 *. 0.8 *. Timing.sha1_ms (timing m) ~bytes:64);
  Md5crypt.crypt ~salt ~password
