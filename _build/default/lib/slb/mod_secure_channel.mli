(** Secure Channel PAL module (Figure 6: 292 LOC, 2.0 KB; Section 4.4.2).

    First session: generate a keypair inside Flicker protection, seal the
    private key to this PAL's own PCR 17 value, and output the public
    key (whose integrity the attestation then covers). Later sessions:
    unseal the private key and decrypt what the remote party sent. *)

type setup_output = {
  public_key : Flicker_crypto.Rsa.public;
  sealed_private : string;  (** opaque blob the untrusted OS stores *)
}

val setup : Pal_env.t -> key_bits:int -> (setup_output, string) result
(** Claims the TPM via the driver, generates the keypair (charging the
    Figure 9a key-generation latency), seals under the current PCR 17
    (which, during a session, is exactly this PAL's measurement), and
    releases the TPM. *)

val recover :
  Pal_env.t -> sealed_private:string -> (Flicker_crypto.Rsa.private_key, string) result
(** Unseal the private key in a later session of the same PAL. *)

val encode_setup_output : setup_output -> string
(** Serialization for the PAL output page. *)

val decode_setup_output : string -> (setup_output, string) result
