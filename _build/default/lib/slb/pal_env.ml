module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Tpm = Flicker_tpm.Tpm

type t = {
  machine : Machine.t;
  tpm_driver : Mod_tpm_driver.t;
  rng : Flicker_crypto.Prng.t;
  inputs : string;
  inputs_addr : int;
  outputs_addr : int;
  protection : Mod_os_protection.policy option;
  heap : Mod_memory.t option;
  mutable outputs : string;
}

let create ~machine ~tpm ~rng ~inputs ~inputs_addr ~outputs_addr ~protection ~heap =
  {
    machine;
    tpm_driver = Mod_tpm_driver.attach tpm;
    rng;
    inputs;
    inputs_addr;
    outputs_addr;
    protection;
    heap;
    outputs = "";
  }

let guard t ~addr ~len =
  match t.protection with
  | Some policy -> Mod_os_protection.check policy ~addr ~len
  | None -> ()

let read_phys t ~addr ~len =
  guard t ~addr ~len;
  Memory.read t.machine.Machine.memory ~addr ~len

let write_phys t ~addr data =
  guard t ~addr ~len:(String.length data);
  Memory.write t.machine.Machine.memory ~addr data

let tpm t =
  match Mod_tpm_driver.tpm t.tpm_driver with
  | Ok device -> device
  | Error reason -> failwith reason

let set_output t data =
  if String.length data > Layout.io_page_size then
    invalid_arg "Pal_env.set_output: output exceeds the 4 KB output page";
  t.outputs <- data;
  (* the output page lies inside the PAL's allocated region, so this write
     passes the OS-protection check *)
  write_phys t ~addr:t.outputs_addr data

let output t = t.outputs

let heap_exn t =
  match t.heap with
  | Some h -> h
  | None -> failwith "PAL was built without the Memory Management module"

let compute t ~ms =
  if ms < 0.0 then invalid_arg "Pal_env.compute: negative time";
  Machine.charge t.machine ms
