type row = { component : string; loc : int; size_bytes : int }

let core_row = { component = "SLB Core"; loc = Slb_core.loc; size_bytes = Slb_core.core_size }

let row_of_info (m : Pal.module_info) =
  { component = m.Pal.module_name; loc = m.Pal.loc; size_bytes = m.Pal.size_bytes }

let figure6 () = core_row :: List.map row_of_info Pal.catalog

let pal_tcb pal =
  core_row :: List.map (fun k -> row_of_info (Pal.info k)) pal.Pal.modules

let totals rows =
  List.fold_left (fun (l, b) r -> (l + r.loc, b + r.size_bytes)) (0, 0) rows

(* Section 3.2: Xen adds ~50,000 lines plus a Domain-0 OS in the millions;
   Flicker's mandatory TCB is the SLB Core plus the OS-protection and TPM
   driver stubs -- roughly the 250-line figure in the abstract. *)
let comparison =
  [
    ("Flicker (SLB Core + OS Protection + TPM driver)", Slb_core.loc + 5 + 216);
    ("Xen hypervisor (SKINIT-launched VMM)", 50_000);
    ("Linux 2.6.20 kernel (Domain 0 / legacy OS)", 5_000_000);
  ]

let pp_rows fmt rows =
  Format.fprintf fmt "%-20s %6s %10s@." "Module" "LOC" "Size (KB)";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-20s %6d %10.3f@." r.component r.loc
        (float_of_int r.size_bytes /. 1024.0))
    rows;
  let loc, bytes = totals rows in
  Format.fprintf fmt "%-20s %6d %10.3f@." "TOTAL" loc (float_of_int bytes /. 1024.0)
