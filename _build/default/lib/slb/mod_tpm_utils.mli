(** TPM Utilities PAL module (Figure 6: 889 LOC, 9.4 KB).

    The client side of the TPM protocol: GetCapability, PCR Read/Extend,
    GetRandom, and Seal/Unseal together with the OIAP/OSAP session
    handshakes that authorize them. These are the calls a PAL makes
    through the driver during a session; each one is marshaled through
    the byte-level command transport ({!Flicker_tpm.Tpm_wire}), exactly
    as a real PAL's driver moves buffers to the memory-mapped device. *)

module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types

val pcr_read : Tpm.t -> int -> (Tpm_types.digest, Tpm_types.error) result
val pcr_extend : Tpm.t -> int -> Tpm_types.digest -> (Tpm_types.digest, Tpm_types.error) result
val get_random : Tpm.t -> int -> string
val get_capability_version : Tpm.t -> string

val seal :
  Tpm.t ->
  rng:Flicker_crypto.Prng.t ->
  release:Tpm_types.pcr_composite ->
  string ->
  (string, Tpm_types.error) result
(** Runs the OSAP handshake on the SRK, authorizes TPM_Seal, and returns
    the sealed blob. [release] names the PCR values required at unseal
    time (Section 4.3.1: PAL P seals for PAL P' by giving PCR 17 the
    value H(0x00^20 || H(P'))). *)

val unseal :
  Tpm.t ->
  rng:Flicker_crypto.Prng.t ->
  string ->
  (string, Tpm_types.error) result

val seal_to_pcr17 :
  Tpm.t ->
  rng:Flicker_crypto.Prng.t ->
  pcr17:Tpm_types.digest ->
  string ->
  (string, Tpm_types.error) result
(** Common case: bind to a specific PCR 17 value. *)

val nv_define_space :
  Tpm.t ->
  rng:Flicker_crypto.Prng.t ->
  owner_auth:string ->
  index:int ->
  Flicker_tpm.Nvram.space_attributes ->
  (unit, Tpm_types.error) result
(** OIAP-authorized NV space definition (Section 4.3.2: possession of the
    20-byte owner secret authorizes Define Space). *)

val create_counter :
  Tpm.t ->
  rng:Flicker_crypto.Prng.t ->
  owner_auth:string ->
  label:string ->
  (int, Tpm_types.error) result
