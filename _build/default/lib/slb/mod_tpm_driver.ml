type t = { device : Flicker_tpm.Tpm.t; mutable claimed : bool }

let attach device = { device; claimed = false }

let claim t =
  if t.claimed then Error "TPM driver: device already claimed"
  else begin
    t.claimed <- true;
    Ok ()
  end

let release t = t.claimed <- false
let is_claimed t = t.claimed

let tpm t =
  if t.claimed then Ok t.device
  else Error "TPM driver: device not claimed (call claim first)"

let submit_raw t buf =
  if not t.claimed then Error "TPM driver: device not claimed (call claim first)"
  else Ok (Flicker_tpm.Tpm_wire.dispatch t.device buf)

let submit t cmd =
  match submit_raw t (Flicker_tpm.Tpm_wire.encode_command cmd) with
  | Error e -> Error e
  | Ok resp_buf ->
      Flicker_tpm.Tpm_wire.decode_response
        ~ordinal:(Flicker_tpm.Tpm_wire.ordinal_of_command cmd)
        resp_buf
