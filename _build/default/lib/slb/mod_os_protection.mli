(** OS Protection PAL module (Figure 6: 5 LOC, 46 bytes; Section 5.1.2).

    Protects a legitimate OS from a malicious or buggy PAL: the SLB Core
    builds segment descriptors limited to the memory the OS allocated and
    drops the PAL to CPU ring 3 via IRET; the PAL returns to ring 0
    through a call gate. A PAL access outside its segment faults instead
    of reaching OS memory. *)

type policy = {
  region_base : int;  (** lowest physical address the PAL may touch *)
  region_len : int;
}

exception Pal_fault of string
(** Raised when a ring-3 PAL violates its segment limits — the simulated
    general-protection fault. *)

val policy_for_launch :
  slb_base:int -> footprint:int -> policy
(** The region the flicker-module allocated: SLB window plus I/O pages. *)

val check : policy -> addr:int -> len:int -> unit
(** @raise Pal_fault on any byte outside the region. *)

val enter_ring3 : Flicker_hw.Machine.t -> policy -> unit
(** IRET with PAL-limited segment descriptors (two extra PUSHes in the
    real SLB Core). *)

val exit_ring3 : Flicker_hw.Machine.t -> unit
(** Return to ring 0 through the call gate / TSS. *)
