(** Links a PAL against the SLB Core into an SLB image — the simulator's
    equivalent of the Flicker linker script (Section 5.1.2), which places
    the SLB Core's skeleton structures first and emits a flat binary.

    Two flavors:
    - [Standard]: SKINIT measures the whole image (header + core + PAL).
    - [Optimized]: SKINIT measures only the 4736-byte hash-then-extend
      stub; the stub hashes the full 64 KB window on the main CPU and
      extends PCR 17 itself (Section 7.2, "SKINIT Optimization"). *)

type flavor = Standard | Optimized

type image = {
  flavor : flavor;
  bytes : string;  (** full 64 KB uninitialized window image *)
  measured_length : int;  (** value of the header's length field *)
  pal_region_off : int;
  pal_region_len : int;
}

val build : ?flavor:flavor -> Pal.t -> image
(** @raise Invalid_argument when the PAL does not fit. *)

val initialize : image -> slb_base:int -> string
(** The patched (GDT/TSS bases filled in) 64 KB image the flicker-module
    loads at [slb_base] — and the bytes a verifier must hash to predict
    the measurement. *)

val pal_code_of_window : string -> (string, string) result
(** Extract the linked PAL code back out of a 64 KB window image (as the
    session dispatcher does from physical memory after SKINIT). Works for
    both flavors by reading the headers. *)

val slb_sizes : Pal.t -> int * int
(** [(standard_measured, optimized_measured)] byte counts for a PAL —
    what Table 2 sweeps. *)
