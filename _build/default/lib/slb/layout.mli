(** The SLB memory image layout (paper Figure 3).

    From the SLB base upward: a 4-byte header (16-bit length, 16-bit entry
    point), the SLB Core (skeleton GDT, TSS, init/exit code), then the PAL,
    up to the 60 KB "End of PAL" mark; the top 4 KB of the 64 KB window
    holds the resume-time page-table skeleton and the stack. The first
    4 KB page above the window carries the PAL inputs and saved kernel
    state in; the second page carries the PAL outputs out. *)

val slb_size : int
(** 65536 — the architectural measurement/protection window. *)

val header_size : int
(** 4 bytes: u16 length, u16 entry point (both little-endian). *)

val pal_region_end : int
(** 61440 (60 KB): PAL code must end here. *)

val stack_size : int
(** 4096 bytes at the top of the window. *)

val inputs_page_offset : int
(** 65536: first page above the SLB (relative to the SLB base). *)

val outputs_page_offset : int
(** 69632: second page above the SLB. *)

val page_size : int
val io_page_size : int
(** 4096: each of the input/output areas is one page. *)

val total_footprint : int
(** SLB window plus both I/O pages: what the flicker-module allocates. *)

val max_pal_code : slb_core_size:int -> int
(** Bytes available for PAL code given the core stub's size. *)
