(** Memory Management PAL module (Figure 6: 657 LOC, 12.5 KB).

    The paper's PALs have no OS heap, so this module implements
    malloc/free/realloc over a static buffer inside the SLB. A first-fit
    free-list allocator with coalescing; offsets index into the PAL's
    heap region. *)

type t

val create : size:int -> t
(** @raise Invalid_argument on non-positive size. *)

val malloc : t -> int -> int option
(** [malloc t n] returns the offset of a fresh [n]-byte block, or [None]
    when the heap is exhausted. Zero-size requests return a valid block. *)

val free : t -> int -> unit
(** @raise Invalid_argument when the offset is not an allocated block
    (double free or wild pointer). *)

val realloc : t -> int -> int -> int option
(** Grow or shrink a block, preserving its prefix. *)

val read : t -> off:int -> len:int -> string
(** @raise Invalid_argument when the range leaves the block's bounds. *)

val write : t -> off:int -> string -> unit

val block_size : t -> int -> int option
(** Size of the allocated block at [off], if any. *)

val allocated_bytes : t -> int
val free_bytes : t -> int
val zeroize : t -> unit
(** Wipe the whole heap (cleanup phase). Allocations remain valid. *)
