(** The execution environment a PAL sees inside a Flicker session.

    A real PAL runs on bare metal with nothing but the SLB Core beneath
    it: it can touch physical memory (all of it, unless the OS-Protection
    module restricts its segments), drive the TPM through the driver
    module, and read/write the well-known input/output pages. This record
    is the simulation's equivalent — the capabilities are explicit, and
    everything else (the OS, other processes, the network) is simply not
    reachable from here. *)

module Machine = Flicker_hw.Machine
module Tpm = Flicker_tpm.Tpm

type t = {
  machine : Machine.t;
  tpm_driver : Mod_tpm_driver.t;
  rng : Flicker_crypto.Prng.t;
  inputs : string;
  inputs_addr : int;
  outputs_addr : int;
  protection : Mod_os_protection.policy option;
  heap : Mod_memory.t option;
  mutable outputs : string;
}

val create :
  machine:Machine.t ->
  tpm:Tpm.t ->
  rng:Flicker_crypto.Prng.t ->
  inputs:string ->
  inputs_addr:int ->
  outputs_addr:int ->
  protection:Mod_os_protection.policy option ->
  heap:Mod_memory.t option ->
  t

val read_phys : t -> addr:int -> len:int -> string
(** Physical memory read. With OS protection in force, accesses outside
    the PAL's region raise {!Mod_os_protection.Pal_fault}; without it,
    the PAL can read anything — including OS memory (Section 5.1.2). *)

val write_phys : t -> addr:int -> string -> unit

val tpm : t -> Tpm.t
(** @raise Failure if the driver has not claimed the device. *)

val set_output : t -> string -> unit
(** Write the PAL's result to the output page (PAL_OUT in the paper's
    "hello world"). @raise Invalid_argument beyond the 4 KB page. *)

val output : t -> string

val heap_exn : t -> Mod_memory.t
(** @raise Failure when the Memory Management module was not linked in. *)

val compute : t -> ms:float -> unit
(** Application-specific CPU work (charges the simulated clock). *)
