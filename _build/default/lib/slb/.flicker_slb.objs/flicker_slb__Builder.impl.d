lib/slb/builder.ml: Bytes Char Layout Pal Slb_core String
