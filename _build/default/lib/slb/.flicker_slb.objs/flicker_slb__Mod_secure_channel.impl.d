lib/slb/mod_secure_channel.ml: Flicker_crypto Flicker_tpm Mod_crypto Mod_tpm_driver Mod_tpm_utils Pal_env Prng Rsa String Util
