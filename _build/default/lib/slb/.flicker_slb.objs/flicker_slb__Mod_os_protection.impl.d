lib/slb/mod_os_protection.ml: Flicker_hw Printf
