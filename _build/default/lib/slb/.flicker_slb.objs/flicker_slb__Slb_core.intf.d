lib/slb/slb_core.mli: Bytes Flicker_tpm
