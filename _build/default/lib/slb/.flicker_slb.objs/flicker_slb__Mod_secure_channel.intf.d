lib/slb/mod_secure_channel.mli: Flicker_crypto Pal_env
