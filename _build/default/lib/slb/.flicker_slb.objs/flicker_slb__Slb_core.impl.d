lib/slb/slb_core.ml: Buffer Bytes Char Flicker_crypto Layout Printf Sha1 Sha256 String
