lib/slb/mod_tpm_utils.ml: Flicker_crypto Flicker_tpm Prng String
