lib/slb/pal.mli: Pal_env
