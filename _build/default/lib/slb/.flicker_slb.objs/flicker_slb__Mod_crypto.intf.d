lib/slb/mod_crypto.mli: Flicker_crypto Flicker_hw
