lib/slb/pal.ml: Buffer Flicker_crypto Hashtbl Int Layout List Pal_env Printf Sha1 Sha256 Slb_core String
