lib/slb/mod_os_protection.mli: Flicker_hw
