lib/slb/tcb.ml: Format List Pal Slb_core
