lib/slb/mod_memory.mli:
