lib/slb/pal_env.mli: Flicker_crypto Flicker_hw Flicker_tpm Mod_memory Mod_os_protection Mod_tpm_driver
