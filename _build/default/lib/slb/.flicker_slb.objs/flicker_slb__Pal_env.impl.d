lib/slb/pal_env.ml: Flicker_crypto Flicker_hw Flicker_tpm Layout Mod_memory Mod_os_protection Mod_tpm_driver String
