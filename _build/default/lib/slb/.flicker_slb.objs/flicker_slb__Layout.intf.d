lib/slb/layout.mli:
