lib/slb/mod_tpm_driver.mli: Flicker_tpm
