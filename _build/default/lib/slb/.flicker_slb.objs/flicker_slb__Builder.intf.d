lib/slb/builder.mli: Pal
