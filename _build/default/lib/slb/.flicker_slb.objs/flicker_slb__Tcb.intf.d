lib/slb/tcb.mli: Format Pal
