lib/slb/mod_tpm_driver.ml: Flicker_tpm
