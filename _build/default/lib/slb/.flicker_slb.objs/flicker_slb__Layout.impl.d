lib/slb/layout.ml:
