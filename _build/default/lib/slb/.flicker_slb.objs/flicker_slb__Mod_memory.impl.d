lib/slb/mod_memory.ml: Bytes List Option String
