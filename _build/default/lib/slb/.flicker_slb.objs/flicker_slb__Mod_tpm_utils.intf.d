lib/slb/mod_tpm_utils.mli: Flicker_crypto Flicker_tpm
