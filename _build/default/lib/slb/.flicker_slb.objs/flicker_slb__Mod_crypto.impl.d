lib/slb/mod_crypto.ml: Aes Bignum Elgamal Flicker_crypto Flicker_hw Hmac Md5 Md5crypt Pkcs1 Rsa Sha1 Sha512 String
