module Cpu = Flicker_hw.Cpu
module Machine = Flicker_hw.Machine

type policy = { region_base : int; region_len : int }

exception Pal_fault of string

let policy_for_launch ~slb_base ~footprint =
  { region_base = slb_base; region_len = footprint }

let check policy ~addr ~len =
  if len < 0 then raise (Pal_fault "negative access length");
  if len > 0 && (addr < policy.region_base || addr + len > policy.region_base + policy.region_len)
  then
    raise
      (Pal_fault
         (Printf.sprintf "#GP: PAL access at %#x (%d bytes) outside [%#x, %#x)" addr len
            policy.region_base
            (policy.region_base + policy.region_len)))

let enter_ring3 (m : Machine.t) policy =
  let bsp = Cpu.bsp m.Machine.cpus in
  let seg = { Cpu.base = policy.region_base; limit = policy.region_len - 1 } in
  bsp.Cpu.cs <- seg;
  bsp.Cpu.ds <- seg;
  bsp.Cpu.ss <- seg;
  bsp.Cpu.ring <- 3;
  Machine.log_event m "os-protection: PAL entered ring 3 with limited segments"

let exit_ring3 (m : Machine.t) =
  let bsp = Cpu.bsp m.Machine.cpus in
  bsp.Cpu.ring <- 0;
  let flat = Cpu.flat_segment (Flicker_hw.Memory.size m.Machine.memory) in
  bsp.Cpu.cs <- flat;
  bsp.Cpu.ds <- flat;
  bsp.Cpu.ss <- flat;
  Machine.log_event m "os-protection: returned to ring 0 via call gate"
