open Flicker_crypto

let loc = 94
let core_size = 320
let stub_size = 4736

(* Patch fields live inside the core region; their offsets are measured
   from the SLB base (header included). *)
let gdt_patch_offset = 8
let tss_patch_offset = 16

let synth ~name ~size =
  let buf = Buffer.create size in
  Buffer.add_string buf ("\x7fSLBCORE:" ^ name ^ "\x00");
  let counter = ref 0 in
  while Buffer.length buf < size do
    Buffer.add_string buf (Sha256.digest (Printf.sprintf "slbcore:%s:%d" name !counter));
    incr counter
  done;
  String.sub (Buffer.contents buf) 0 size

(* Zero the skeleton GDT/TSS base fields so images are deterministic
   before patching. Offsets here are relative to the core code (which
   starts 4 bytes into the SLB). *)
let blank_patches code =
  let b = Bytes.of_string code in
  Bytes.fill b (gdt_patch_offset - Layout.header_size) 4 '\000';
  Bytes.fill b (tss_patch_offset - Layout.header_size) 4 '\000';
  Bytes.to_string b

let code = blank_patches (synth ~name:"core-v1" ~size:core_size)
let stub_code = blank_patches (synth ~name:"hash-extend-stub-v1" ~size:(stub_size - Layout.header_size))

let patch image ~slb_base =
  let set32 off v =
    for i = 0 to 3 do
      Bytes.set image (off + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
    done
  in
  set32 gdt_patch_offset slb_base;
  set32 tss_patch_offset slb_base

let cap_value = Sha1.digest "FLICKER: session closed"

let init_overhead_ms = 0.02
let cleanup_overhead_ms = 0.05
