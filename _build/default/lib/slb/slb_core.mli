(** The SLB Core: the mandatory ~250-line trusted stub every PAL links
    against (Figure 6: 94 LOC, 0.3 KB; Section 4.2).

    Its code occupies the front of the SLB right after the header. It
    carries a skeleton GDT and TSS whose base fields the flicker-module
    patches once the SLB's physical address is known; after SKINIT it
    loads segments, calls the PAL, erases secrets, extends PCR 17 with
    the results and the closing constant, rebuilds skeleton page tables,
    and resumes the OS.

    The "hash-then-extend" variant is the Section 7.2 optimization: a
    4736-byte stub is all SKINIT measures; the stub then hashes the full
    64 KB on the fast main CPU and extends PCR 17 itself, cutting SKINIT
    from 177.5 ms to 14 ms. *)

val loc : int
(** 94 lines (Figure 6). *)

val core_size : int
(** 320 bytes of core code following the 4-byte header. *)

val stub_size : int
(** 4736 bytes: the measured portion of an optimized SLB, header
    included (Section 7.2 reports exactly this figure). *)

val code : string
(** The core's code bytes ([core_size] long) with zeroed patch fields. *)

val stub_code : string
(** Code bytes of the hash-then-extend loader ([stub_size - 4] long,
    the header being separate). *)

val gdt_patch_offset : int
(** Offset (from the SLB base) of the 4-byte GDT base field the
    flicker-module fills in with [slb_base]. *)

val tss_patch_offset : int
val patch : Bytes.t -> slb_base:int -> unit
(** Apply both patches to an SLB image in place. *)

val cap_value : Flicker_tpm.Tpm_types.digest
(** The "well-known value" extended into PCR 17 when the session ends —
    it revokes the PAL's access to sealed secrets and marks everything
    after it as untrusted (Section 4.4.1). *)

val init_overhead_ms : float
(** GDT/segment loads and the call into the PAL. *)

val cleanup_overhead_ms : float
(** Zeroization, page-table skeleton, segment reloads, resume. *)
