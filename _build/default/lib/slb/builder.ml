type flavor = Standard | Optimized

type image = {
  flavor : flavor;
  bytes : string;
  measured_length : int;
  pal_region_off : int;
  pal_region_len : int;
}

let le16 v = String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let header ~length ~entry = le16 length ^ le16 entry

let pad_to size s =
  if String.length s > size then invalid_arg "Builder: image larger than the SLB window";
  s ^ String.make (size - String.length s) '\000'

let build ?(flavor = Standard) pal =
  let pal_code = Pal.linked_code pal in
  match flavor with
  | Standard ->
      let measured_length =
        Layout.header_size + Slb_core.core_size + String.length pal_code
      in
      if measured_length > Layout.pal_region_end then
        invalid_arg "Builder.build: PAL too large for the standard SLB";
      let body =
        header ~length:measured_length ~entry:Layout.header_size
        ^ Slb_core.code ^ pal_code
      in
      {
        flavor;
        bytes = pad_to Layout.slb_size body;
        measured_length;
        pal_region_off = Layout.header_size + Slb_core.core_size;
        pal_region_len = String.length pal_code;
      }
  | Optimized ->
      (* inner header: u16 PAL length right after the measured stub *)
      let pal_region_off = Slb_core.stub_size + 2 in
      if pal_region_off + String.length pal_code > Layout.pal_region_end then
        invalid_arg "Builder.build: PAL too large for the optimized SLB";
      if String.length pal_code > 0xFFFF then
        invalid_arg "Builder.build: PAL exceeds the inner length field";
      let body =
        header ~length:Slb_core.stub_size ~entry:Layout.header_size
        ^ Slb_core.stub_code
        ^ le16 (String.length pal_code)
        ^ pal_code
      in
      {
        flavor;
        bytes = pad_to Layout.slb_size body;
        measured_length = Slb_core.stub_size;
        pal_region_off;
        pal_region_len = String.length pal_code;
      }

let initialize image ~slb_base =
  let b = Bytes.of_string image.bytes in
  Slb_core.patch b ~slb_base;
  Bytes.unsafe_to_string b

let read_le16 s off = Char.code s.[off] lor (Char.code s.[off + 1] lsl 8)

let pal_code_of_window window =
  if String.length window <> Layout.slb_size then
    Error "window must be exactly 64 KB"
  else begin
    let measured = read_le16 window 0 in
    if measured = Slb_core.stub_size then begin
      (* optimized image: inner header carries the PAL length *)
      let inner_len = read_le16 window Slb_core.stub_size in
      let off = Slb_core.stub_size + 2 in
      if off + inner_len > String.length window then Error "corrupt inner header"
      else Ok (String.sub window off inner_len)
    end
    else begin
      let off = Layout.header_size + Slb_core.core_size in
      if measured < off || measured > Layout.pal_region_end then
        Error "corrupt SLB header"
      else Ok (String.sub window off (measured - off))
    end
  end

let slb_sizes pal =
  let std = build ~flavor:Standard pal in
  let opt = build ~flavor:Optimized pal in
  (std.measured_length, opt.measured_length)
