open Flicker_crypto
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types
module Auth = Flicker_tpm.Auth
module Wire = Flicker_tpm.Tpm_wire

(* Every operation here goes through the byte-level command transport
   (Tpm_wire), as a real PAL's driver would: marshal, hit the device,
   unmarshal. A transport-level failure shows up as Bad_parameter. *)

let transport_error = Tpm_types.Bad_parameter "wire transport"

let call tpm cmd =
  match Wire.call tpm cmd with
  | Ok resp -> Ok resp
  | Error _ -> Error transport_error

let pcr_read tpm i =
  match call tpm (Wire.Pcr_read i) with
  | Ok (Wire.Digest_resp d) -> Ok d
  | Ok (Wire.Error_resp e) -> Error e
  | Ok _ | Error _ -> Error transport_error

let pcr_extend tpm i m =
  if String.length m <> Tpm_types.digest_size then
    Error (Tpm_types.Bad_parameter "extend value must be a 20-byte digest")
  else begin
    match call tpm (Wire.Pcr_extend (i, m)) with
    | Ok (Wire.Digest_resp d) -> Ok d
    | Ok (Wire.Error_resp e) -> Error e
    | Ok _ | Error _ -> Error transport_error
  end

let get_random tpm n =
  match call tpm (Wire.Get_random n) with
  | Ok (Wire.Digest_resp d) -> d
  | _ -> failwith "TPM GetRandom failed over the wire"

let get_capability_version tpm =
  match call tpm Wire.Get_capability_version with
  | Ok (Wire.Digest_resp d) -> d
  | _ -> failwith "TPM GetCapability failed over the wire"

(* OSAP-authorized command against the SRK: handshake, derive the shared
   secret client-side, MAC the command digest, run, close. *)
let with_srk_osap tpm ~rng ~command_digest f =
  let no_osap = Prng.bytes rng Tpm_types.digest_size in
  match call tpm (Wire.Osap { entity = "SRK"; no_osap }) with
  | Ok (Wire.Osap_resp { handle; nonce_even; ne_osap }) ->
      let shared =
        Auth.osap_shared_secret ~usage_auth:(Tpm.srk_auth tpm) ~ne_osap ~no_osap
      in
      let nonce_odd = Prng.bytes rng Tpm_types.digest_size in
      let mac = Auth.auth_mac ~secret:shared ~command_digest ~nonce_even ~nonce_odd in
      let result = f { Tpm.session = handle; nonce_odd; mac } in
      Tpm.close_session tpm handle;
      result
  | Ok (Wire.Error_resp e) -> Error e
  | Ok _ | Error _ -> Error transport_error

let seal tpm ~rng ~release data =
  let command_digest = Tpm.seal_command_digest ~release ~data in
  with_srk_osap tpm ~rng ~command_digest (fun auth ->
      match call tpm (Wire.Seal { auth; release; data }) with
      | Ok (Wire.Blob_resp blob) -> Ok blob
      | Ok (Wire.Error_resp e) -> Error e
      | Ok _ | Error _ -> Error transport_error)

let unseal tpm ~rng blob =
  let command_digest = Tpm.unseal_command_digest ~blob in
  with_srk_osap tpm ~rng ~command_digest (fun auth ->
      match call tpm (Wire.Unseal { auth; blob }) with
      | Ok (Wire.Blob_resp data) -> Ok data
      | Ok (Wire.Error_resp e) -> Error e
      | Ok _ | Error _ -> Error transport_error)

let seal_to_pcr17 tpm ~rng ~pcr17 data = seal tpm ~rng ~release:[ (17, pcr17) ] data

(* OIAP-authorized owner commands. NV space definition and counter
   creation carry structures the 1.2 wire subset does not marshal, so
   they use the command interface directly (the OS-side TSS path). *)
let with_owner_oiap tpm ~rng ~owner_auth ~command_digest f =
  let session = Tpm.oiap tpm in
  let nonce_odd = Prng.bytes rng Tpm_types.digest_size in
  let mac =
    Auth.auth_mac ~secret:owner_auth ~command_digest
      ~nonce_even:session.Auth.nonce_even ~nonce_odd
  in
  let result = f { Tpm.session = session.Auth.handle; nonce_odd; mac } in
  Tpm.close_session tpm session.Auth.handle;
  result

let nv_define_space tpm ~rng ~owner_auth ~index attrs =
  let command_digest = Tpm.nv_define_command_digest ~index attrs in
  with_owner_oiap tpm ~rng ~owner_auth ~command_digest (fun auth ->
      Tpm.nv_define_space tpm ~auth ~index attrs)

let create_counter tpm ~rng ~owner_auth ~label =
  let command_digest = Tpm.counter_command_digest ~label in
  with_owner_oiap tpm ~rng ~owner_auth ~command_digest (fun auth ->
      Tpm.create_counter tpm ~auth ~label)
