(** TCB accounting (Figures 1 and 6, and the paper's headline "as few as
    250 lines"). *)

type row = { component : string; loc : int; size_bytes : int }

val figure6 : unit -> row list
(** Every module with the paper's LOC and size figures, SLB Core first. *)

val pal_tcb : Pal.t -> row list
(** The rows a specific PAL actually links: SLB Core plus its modules. *)

val totals : row list -> int * int
(** (total LOC, total bytes). *)

val comparison : (string * int) list
(** Approximate TCB sizes the paper contrasts: Flicker's mandatory core
    vs the Xen hypervisor vs a commodity OS kernel. *)

val pp_rows : Format.formatter -> row list -> unit
