open Flicker_crypto

type module_kind =
  | Os_protection
  | Tpm_driver
  | Tpm_utilities
  | Crypto
  | Memory_management
  | Secure_channel

type module_info = {
  kind : module_kind;
  module_name : string;
  loc : int;
  size_bytes : int;
  description : string;
}

(* Figure 6, with KB sizes converted to bytes. *)
let catalog =
  [
    {
      kind = Os_protection;
      module_name = "OS Protection";
      loc = 5;
      size_bytes = 47;
      description = "Memory protection, ring 3 PAL execution";
    };
    {
      kind = Tpm_driver;
      module_name = "TPM Driver";
      loc = 216;
      size_bytes = 845;
      description = "Communication with the TPM";
    };
    {
      kind = Tpm_utilities;
      module_name = "TPM Utilities";
      loc = 889;
      size_bytes = 9653;
      description = "TPM operations: Seal, Unseal, GetRand, PCR Extend";
    };
    {
      kind = Crypto;
      module_name = "Crypto";
      loc = 2262;
      size_bytes = 32133;
      description = "General-purpose crypto: RSA, SHA-1, SHA-512, ...";
    };
    {
      kind = Memory_management;
      module_name = "Memory Management";
      loc = 657;
      size_bytes = 12811;
      description = "Implementation of malloc/free/realloc";
    };
    {
      kind = Secure_channel;
      module_name = "Secure Channel";
      loc = 292;
      size_bytes = 2069;
      description = "Generates a keypair, seals private key, returns public key";
    };
  ]

let info kind = List.find (fun m -> m.kind = kind) catalog

(* Deterministic pseudo-binary: a readable header followed by a SHA-256
   stream keyed on the name, truncated to the declared size. *)
let synth_code ~name ~size =
  let header = Printf.sprintf "\x7fPAL%s\x00" name in
  let buf = Buffer.create size in
  Buffer.add_string buf header;
  let counter = ref 0 in
  while Buffer.length buf < size do
    Buffer.add_string buf (Sha256.digest (Printf.sprintf "code:%s:%d" name !counter));
    incr counter
  done;
  String.sub (Buffer.contents buf) 0 size

let module_code kind =
  let m = info kind in
  synth_code ~name:("module:" ^ m.module_name) ~size:m.size_bytes

type t = {
  name : string;
  app_code : string;
  modules : module_kind list;
  behavior : Pal_env.t -> unit;
}

let module_order = function
  | Os_protection -> 0
  | Tpm_driver -> 1
  | Tpm_utilities -> 2
  | Crypto -> 3
  | Memory_management -> 4
  | Secure_channel -> 5

let linked_code t =
  String.concat "" (List.map module_code t.modules) ^ t.app_code

let code_hash t = Sha1.digest (linked_code t)

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let define ~name ?(app_code_size = 512) ?(modules = []) behavior =
  let modules =
    List.sort_uniq (fun a b -> Int.compare (module_order a) (module_order b)) modules
  in
  let app_code = synth_code ~name:("pal:" ^ name) ~size:app_code_size in
  let t = { name; app_code; modules; behavior } in
  let code = linked_code t in
  if String.length code > Layout.max_pal_code ~slb_core_size:Slb_core.core_size then
    invalid_arg
      (Printf.sprintf "Pal.define %s: linked code (%d bytes) exceeds the PAL region"
         name (String.length code));
  Hashtbl.replace registry (Sha1.digest code) t;
  t

let find_by_code code = Hashtbl.find_opt registry (Sha1.digest code)
let wants t kind = List.mem kind t.modules

let total_loc t =
  Slb_core.loc + List.fold_left (fun acc k -> acc + (info k).loc) 0 t.modules
