let slb_size = 64 * 1024
let header_size = 4
let pal_region_end = 60 * 1024
let stack_size = 4096
let page_size = 4096
let inputs_page_offset = slb_size
let outputs_page_offset = slb_size + page_size
let io_page_size = page_size
let total_footprint = slb_size + (2 * page_size)

let max_pal_code ~slb_core_size = pal_region_end - header_size - slb_core_size
