(** Crypto PAL module (Figure 6: 2262 LOC, 31.4 KB).

    The cryptographic operations a PAL performs on the main CPU, each
    charging its calibrated latency against the simulated clock: SHA-1 at
    the measured hash rate, 1024-bit RSA key generation at 185.7 ms
    (Figure 9a), private-key operations at ~4.6 ms (Figure 9b). The
    actual computation is real — only the clock cost is modelled. *)

module Machine = Flicker_hw.Machine

val sha1 : Machine.t -> string -> string
val sha512 : Machine.t -> string -> string
val md5 : Machine.t -> string -> string
val hmac_sha1 : Machine.t -> key:string -> string -> string

val rsa_generate :
  Machine.t -> Flicker_crypto.Prng.t -> bits:int -> Flicker_crypto.Rsa.private_key

val rsa_encrypt :
  Machine.t ->
  Flicker_crypto.Prng.t ->
  Flicker_crypto.Rsa.public ->
  string ->
  string
(** PKCS#1 v1.5 encryption, charging a public-key operation. *)

val rsa_decrypt :
  Machine.t -> Flicker_crypto.Rsa.private_key -> string -> (string, string) result

val rsa_sign :
  Machine.t -> Flicker_crypto.Rsa.private_key -> Flicker_crypto.Hash.algorithm -> string -> string

val rsa_verify :
  Machine.t ->
  Flicker_crypto.Rsa.public ->
  Flicker_crypto.Hash.algorithm ->
  msg:string ->
  signature:string ->
  bool

val elgamal_generate :
  Machine.t ->
  Flicker_crypto.Prng.t ->
  Flicker_crypto.Elgamal.params ->
  Flicker_crypto.Elgamal.private_key
(** The paper's suggested fast alternative to RSA keygen (Section 7.4.1):
    with shared group parameters, one modular exponentiation — charged at
    the private-op rate instead of the 185.7 ms keygen. *)

val elgamal_encrypt :
  Machine.t ->
  Flicker_crypto.Prng.t ->
  Flicker_crypto.Elgamal.public ->
  string ->
  (string, string) result

val elgamal_decrypt :
  Machine.t ->
  Flicker_crypto.Elgamal.private_key ->
  string ->
  (string, string) result

val aes_encrypt_cbc : Machine.t -> Flicker_crypto.Aes.key -> iv:string -> string -> string
val aes_decrypt_cbc : Machine.t -> Flicker_crypto.Aes.key -> iv:string -> string -> string
val md5crypt : Machine.t -> salt:string -> password:string -> string
