(** TPM Driver PAL module (Figure 6: 216 LOC, 0.8 KB).

    The TPM is a memory-mapped device; a PAL needs a minimal driver to
    claim it, keep its FIFO in a sane state, and release it so the Linux
    driver can reclaim it after the session. The simulator models the
    claim/release discipline — commands issued without an active claim
    fail, and an unreleased TPM blocks the OS-side quote daemon. *)

type t

val attach : Flicker_tpm.Tpm.t -> t
val claim : t -> (unit, string) result
(** Request locality access; fails when already claimed. *)

val release : t -> unit
val is_claimed : t -> bool

val tpm : t -> (Flicker_tpm.Tpm.t, string) result
(** The device, usable only while claimed. *)

val submit : t -> Flicker_tpm.Tpm_wire.command -> (Flicker_tpm.Tpm_wire.response, string) result
(** Marshal the command, push the bytes through the device's command
    buffer, and unmarshal the response — the transport a real driver
    performs for every operation. Requires an active claim. *)

val submit_raw : t -> string -> (string, string) result
(** Raw buffer in, raw buffer out (for driver-level tests: malformed
    buffers must come back as TPM error responses, never crashes). *)
