(* Straightforward byte-oriented AES: S-box lookups plus xtime-based
   MixColumns. Clarity over speed; the simulator encrypts kilobytes, not
   gigabytes. *)

let sbox =
  [|
    0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b;
    0xfe; 0xd7; 0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0;
    0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26;
    0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
    0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2;
    0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0;
    0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
    0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
    0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f;
    0x50; 0x3c; 0x9f; 0xa8; 0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5;
    0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec;
    0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
    0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14;
    0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
    0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d;
    0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
    0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f;
    0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e;
    0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e; 0xe1; 0xf8; 0x98; 0x11;
    0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
    0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
    0xb0; 0x54; 0xbb; 0x16;
  |]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

type key = { rounds : int; round_keys : int array (* 4*(rounds+1) words *) }

let xtime b =
  let v = b lsl 1 in
  if v land 0x100 <> 0 then v lxor 0x11b else v

(* GF(2^8) multiply *)
let gmul a b =
  let acc = ref 0 and a = ref a and b = ref b in
  while !b <> 0 do
    if !b land 1 = 1 then acc := !acc lxor !a;
    a := xtime !a;
    b := !b lsr 1
  done;
  !acc land 0xff

let sub_word w =
  (sbox.((w lsr 24) land 0xff) lsl 24)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor sbox.(w land 0xff)

let rot_word w = ((w lsl 8) lor (w lsr 24)) land 0xFFFFFFFF

let rcon =
  [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36; 0x6c; 0xd8; 0xab; 0x4d |]

let expand_key key_str =
  let nk =
    match String.length key_str with
    | 16 -> 4
    | 24 -> 6
    | 32 -> 8
    | _ -> invalid_arg "Aes.expand_key: key must be 16, 24 or 32 bytes"
  in
  let rounds = nk + 6 in
  let nwords = 4 * (rounds + 1) in
  let w = Array.make nwords 0 in
  for i = 0 to nk - 1 do
    w.(i) <- Util.int_of_be32 key_str (4 * i)
  done;
  for i = nk to nwords - 1 do
    let temp = ref w.(i - 1) in
    if i mod nk = 0 then temp := sub_word (rot_word !temp) lxor (rcon.((i / nk) - 1) lsl 24)
    else if nk > 6 && i mod nk = 4 then temp := sub_word !temp;
    w.(i) <- w.(i - nk) lxor !temp
  done;
  { rounds; round_keys = w }

let add_round_key state w off =
  for c = 0 to 3 do
    let word = w.(off + c) in
    for r = 0 to 3 do
      state.((4 * c) + r) <- state.((4 * c) + r) lxor ((word lsr (8 * (3 - r))) land 0xff)
    done
  done

let state_of_string s =
  Array.init 16 (fun i -> Char.code s.[i])

let string_of_state state =
  String.init 16 (fun i -> Char.chr state.(i))

let shift_rows state =
  (* state is column-major: state.(4*c + r) *)
  for r = 1 to 3 do
    let row = Array.init 4 (fun c -> state.((4 * c) + r)) in
    for c = 0 to 3 do
      state.((4 * c) + r) <- row.((c + r) mod 4)
    done
  done

let inv_shift_rows state =
  for r = 1 to 3 do
    let row = Array.init 4 (fun c -> state.((4 * c) + r)) in
    for c = 0 to 3 do
      state.((4 * c) + r) <- row.((c - r + 4) mod 4)
    done
  done

let mix_columns state =
  for c = 0 to 3 do
    let o = 4 * c in
    let a0 = state.(o) and a1 = state.(o + 1) and a2 = state.(o + 2) and a3 = state.(o + 3) in
    state.(o) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    state.(o + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    state.(o + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    state.(o + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns state =
  for c = 0 to 3 do
    let o = 4 * c in
    let a0 = state.(o) and a1 = state.(o + 1) and a2 = state.(o + 2) and a3 = state.(o + 3) in
    state.(o) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    state.(o + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    state.(o + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    state.(o + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let encrypt_block key block =
  if String.length block <> 16 then invalid_arg "Aes.encrypt_block: need 16 bytes";
  let state = state_of_string block in
  add_round_key state key.round_keys 0;
  for round = 1 to key.rounds - 1 do
    Array.iteri (fun i v -> state.(i) <- sbox.(v)) (Array.copy state);
    shift_rows state;
    mix_columns state;
    add_round_key state key.round_keys (4 * round)
  done;
  Array.iteri (fun i v -> state.(i) <- sbox.(v)) (Array.copy state);
  shift_rows state;
  add_round_key state key.round_keys (4 * key.rounds);
  string_of_state state

let decrypt_block key block =
  if String.length block <> 16 then invalid_arg "Aes.decrypt_block: need 16 bytes";
  let state = state_of_string block in
  add_round_key state key.round_keys (4 * key.rounds);
  for round = key.rounds - 1 downto 1 do
    inv_shift_rows state;
    Array.iteri (fun i v -> state.(i) <- inv_sbox.(v)) (Array.copy state);
    add_round_key state key.round_keys (4 * round);
    inv_mix_columns state
  done;
  inv_shift_rows state;
  Array.iteri (fun i v -> state.(i) <- inv_sbox.(v)) (Array.copy state);
  add_round_key state key.round_keys 0;
  string_of_state state

let encrypt_cbc key ~iv plaintext =
  if String.length iv <> 16 then invalid_arg "Aes.encrypt_cbc: iv must be 16 bytes";
  let pad = 16 - (String.length plaintext mod 16) in
  let padded = plaintext ^ String.make pad (Char.chr pad) in
  let out = Buffer.create (String.length padded) in
  let prev = ref iv in
  List.iter
    (fun block ->
      let c = encrypt_block key (Util.xor block !prev) in
      Buffer.add_string out c;
      prev := c)
    (Util.chunks 16 padded);
  Buffer.contents out

let decrypt_cbc key ~iv ciphertext =
  if String.length iv <> 16 then invalid_arg "Aes.decrypt_cbc: iv must be 16 bytes";
  let len = String.length ciphertext in
  if len = 0 || len mod 16 <> 0 then invalid_arg "Aes.decrypt_cbc: malformed ciphertext";
  let out = Buffer.create len in
  let prev = ref iv in
  List.iter
    (fun block ->
      Buffer.add_string out (Util.xor (decrypt_block key block) !prev);
      prev := block)
    (Util.chunks 16 ciphertext);
  let padded = Buffer.contents out in
  let pad = Char.code padded.[len - 1] in
  if pad < 1 || pad > 16 then invalid_arg "Aes.decrypt_cbc: bad padding";
  for i = len - pad to len - 1 do
    if Char.code padded.[i] <> pad then invalid_arg "Aes.decrypt_cbc: bad padding"
  done;
  String.sub padded 0 (len - pad)

let ctr key ~nonce data =
  if String.length nonce <> 16 then invalid_arg "Aes.ctr: nonce must be 16 bytes";
  let counter = Bytes.of_string nonce in
  let increment () =
    let rec bump i =
      if i >= 0 then begin
        let v = (Char.code (Bytes.get counter i) + 1) land 0xff in
        Bytes.set counter i (Char.chr v);
        if v = 0 then bump (i - 1)
      end
    in
    bump 15
  in
  let out = Buffer.create (String.length data) in
  List.iter
    (fun block ->
      let ks = encrypt_block key (Bytes.to_string counter) in
      increment ();
      Buffer.add_string out (Util.xor block (String.sub ks 0 (String.length block))))
    (Util.chunks 16 data);
  Buffer.contents out
