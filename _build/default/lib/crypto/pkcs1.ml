(* DigestInfo prefixes from RFC 3447 section 9.2, binding the hash
   algorithm identity into the signature. *)
let digest_info_prefix = function
  | Hash.SHA1 -> Util.of_hex "3021300906052b0e03021a05000414"
  | Hash.SHA256 -> Util.of_hex "3031300d060960864801650304020105000420"
  | Hash.SHA512 -> Util.of_hex "3051300d060960864801650304020305000440"
  | Hash.MD5 -> Util.of_hex "3020300c06082a864886f70d020505000410"

let max_message_bytes pub = Rsa.key_bytes pub - 11

let encrypt rng pub msg =
  let k = Rsa.key_bytes pub in
  if String.length msg > k - 11 then invalid_arg "Pkcs1.encrypt: message too long";
  let ps_len = k - 3 - String.length msg in
  (* PS must be nonzero random bytes *)
  let ps =
    String.init ps_len (fun _ ->
        let rec nonzero () =
          let b = Prng.byte rng in
          if b = 0 then nonzero () else b
        in
        Char.chr (nonzero ()))
  in
  let em = "\x00\x02" ^ ps ^ "\x00" ^ msg in
  let c = Rsa.encrypt_raw pub (Bignum.of_bytes_be em) in
  Bignum.to_bytes_be ~pad_to:k c

let decrypt key ciphertext =
  let k = Rsa.key_bytes key.Rsa.pub in
  if String.length ciphertext <> k then Error "ciphertext length mismatch"
  else begin
    let m = Rsa.decrypt_raw key (Bignum.of_bytes_be ciphertext) in
    let em = Bignum.to_bytes_be ~pad_to:k m in
    if String.length em < 11 || em.[0] <> '\x00' || em.[1] <> '\x02' then
      Error "bad padding"
    else begin
      match String.index_from_opt em 2 '\x00' with
      | None -> Error "bad padding"
      | Some sep when sep < 10 -> Error "bad padding" (* PS must be >= 8 bytes *)
      | Some sep -> Ok (String.sub em (sep + 1) (String.length em - sep - 1))
    end
  end

let emsa_encode alg k msg =
  let t = digest_info_prefix alg ^ Hash.digest alg msg in
  if k < String.length t + 11 then invalid_arg "Pkcs1.sign: key too small for digest";
  "\x00\x01" ^ String.make (k - String.length t - 3) '\xff' ^ "\x00" ^ t

let sign key alg msg =
  let k = Rsa.key_bytes key.Rsa.pub in
  let em = emsa_encode alg k msg in
  Bignum.to_bytes_be ~pad_to:k (Rsa.decrypt_raw key (Bignum.of_bytes_be em))

let verify pub alg ~msg ~signature =
  let k = Rsa.key_bytes pub in
  if String.length signature <> k then false
  else begin
    let s = Bignum.of_bytes_be signature in
    if Bignum.compare s pub.Rsa.n >= 0 then false
    else begin
      let em = Bignum.to_bytes_be ~pad_to:k (Rsa.encrypt_raw pub s) in
      match emsa_encode alg k msg with
      | expected -> Util.constant_time_equal em expected
      | exception Invalid_argument _ -> false
    end
  end
