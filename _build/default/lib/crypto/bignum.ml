(* Little-endian arrays of 26-bit limbs. 26-bit limbs keep every
   intermediate product (52 bits plus carries) comfortably inside OCaml's
   63-bit native int, so no boxed arithmetic is needed anywhere. Values are
   normalized: no trailing zero limbs, and zero is the empty array. *)

let limb_bits = 26
let base = 1 lsl limb_bits
let mask = base - 1

type t = int array

let zero : t = [||]
let is_zero a = Array.length a = 0

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int v =
  if v < 0 then invalid_arg "Bignum.of_int: negative";
  let rec limbs v acc = if v = 0 then List.rev acc else limbs (v lsr limb_bits) ((v land mask) :: acc) in
  Array.of_list (limbs v [])

let one = of_int 1
let two = of_int 2

let to_int a =
  let n = Array.length a in
  if n * limb_bits > 62 && n > 0 then begin
    (* may still fit: check the top limbs *)
    let v = ref 0 in
    for i = n - 1 downto 0 do
      if !v > (max_int - a.(i)) lsr limb_bits then failwith "Bignum.to_int: overflow";
      v := (!v lsl limb_bits) lor a.(i)
    done;
    !v
  end
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl limb_bits) lor a.(i)
    done;
    !v
  end

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0
let is_even a = Array.length a = 0 || a.(0) land 1 = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  let r = Array.make (n + 1) 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  r.(n) <- !carry;
  normalize r

let sub a b =
  let la = Array.length a and lb = Array.length b in
  if compare a b < 0 then invalid_arg "Bignum.sub: negative result";
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let p = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- p land mask;
        carry := p lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize r
  end

let add_int a v = add a (of_int v)
let mul_int a v = mul a (of_int v)

(* Division of the limb array [a] by a single positive limb-sized int,
   returning the quotient array (not normalized) and the remainder. *)
let divmod_small a d =
  if d <= 0 then raise Division_by_zero;
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (normalize q, !r)

let rem_int a d =
  if d <= 0 then raise Division_by_zero;
  if d < base then begin
    let r = ref 0 in
    for i = Array.length a - 1 downto 0 do
      r := ((!r lsl limb_bits) lor a.(i)) mod d
    done;
    !r
  end
  else begin
    (* Modulus wider than one limb: (r*2^26 + limb) may overflow, so
       double-and-reduce bit by bit. d < 2^62 keeps each step in range. *)
    let r = ref 0 in
    for i = Array.length a - 1 downto 0 do
      let x = ref (!r mod d) in
      for _ = 1 to limb_bits do
        x := !x * 2 mod d
      done;
      r := (!x + (a.(i) mod d)) mod d
    done;
    !r
  end

let shift_left a bits =
  if bits < 0 then invalid_arg "Bignum.shift_left";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a bits =
  if bits < 0 then invalid_arg "Bignum.shift_right";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let n = la - limb_shift in
      let r = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let test_bit a i =
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr bit) land 1 = 1

(* Knuth Algorithm D. *)
let divmod a b =
  let lb = Array.length b in
  if lb = 0 then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if lb = 1 then begin
    let q, r = divmod_small a b.(0) in
    (q, of_int r)
  end
  else begin
    (* Normalize so the top limb of the divisor is >= base/2. *)
    let shift =
      let rec go v acc = if v >= base / 2 then acc else go (v lsl 1) (acc + 1) in
      go b.(lb - 1) 0
    in
    let u_arr = shift_left a shift and v_arr = shift_left b shift in
    let n = Array.length v_arr in
    let m = Array.length u_arr - n in
    (* Working copy of the dividend with one extra high limb. *)
    let u = Array.make (Array.length u_arr + 1) 0 in
    Array.blit u_arr 0 u 0 (Array.length u_arr);
    let v = v_arr in
    let q = Array.make (m + 1) 0 in
    for j = m downto 0 do
      let top = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
      let qhat = ref (top / v.(n - 1)) and rhat = ref (top mod v.(n - 1)) in
      let continue = ref true in
      while !continue do
        if
          !qhat >= base
          || (n >= 2 && !qhat * v.(n - 2) > (!rhat lsl limb_bits) lor u.(j + n - 2))
        then begin
          decr qhat;
          rhat := !rhat + v.(n - 1);
          if !rhat >= base then continue := false
        end
        else continue := false
      done;
      (* u[j..j+n] -= qhat * v *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = u.(j + i) - (p land mask) - !borrow in
        if d < 0 then begin
          u.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          u.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add the divisor back. *)
        u.(j + n) <- d + base;
        decr qhat;
        let carry = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(j + i) + v.(i) + !carry in
          u.(j + i) <- s land mask;
          carry := s lsr limb_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry) land mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let mod_pow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let b = rem b modulus in
    let result = ref one and acc = ref b in
    let nbits = bit_length exp in
    for i = 0 to nbits - 1 do
      if test_bit exp i then result := rem (mul !result !acc) modulus;
      if i < nbits - 1 then acc := rem (mul !acc !acc) modulus
    done;
    !result
  end

let rec gcd a b = if is_zero b then a else gcd b (rem a b)

(* Extended Euclid over naturals, tracking the sign of the Bezout
   coefficient for [a] explicitly. *)
let mod_inverse a m =
  if is_zero m then invalid_arg "Bignum.mod_inverse: zero modulus";
  let a = rem a m in
  if is_zero a then None
  else begin
    (* Invariants: r0 = x0*a (mod m), r1 = x1*a (mod m), with signs s0, s1. *)
    let rec go r0 x0 s0 r1 x1 s1 =
      if is_zero r1 then
        if equal r0 one then
          Some (if s0 >= 0 then rem x0 m else sub m (rem x0 m))
        else None
      else begin
        let q, r2 = divmod r0 r1 in
        (* x2 = x0 - q*x1 with sign bookkeeping *)
        let qx1 = mul q x1 in
        let x2, s2 =
          if s0 = s1 then
            if compare x0 qx1 >= 0 then (sub x0 qx1, s0) else (sub qx1 x0, -s0)
          else (add x0 qx1, s0)
        in
        go r1 x1 s1 r2 x2 s2
      end
    in
    match go m zero 1 a one 1 with
    | Some x when is_zero x -> Some zero
    | other -> other
  end

let of_bytes_be s =
  let r = ref zero in
  String.iter (fun c -> r := add_int (shift_left !r 8) (Char.code c)) s;
  !r

let to_bytes_be ?pad_to a =
  let nbytes = (bit_length a + 7) / 8 in
  let b = Bytes.make nbytes '\000' in
  let v = ref a in
  for i = nbytes - 1 downto 0 do
    Bytes.set b i (Char.chr (rem_int !v 256));
    v := shift_right !v 8
  done;
  let s = Bytes.unsafe_to_string b in
  match pad_to with None -> s | Some n -> Util.pad_left '\000' n s

let of_hex h =
  let h = if String.length h mod 2 = 1 then "0" ^ h else h in
  of_bytes_be (Util.of_hex h)

let to_hex a = if is_zero a then "00" else Util.to_hex (to_bytes_be a)

let of_decimal_string s =
  if String.length s = 0 then invalid_arg "Bignum.of_decimal_string: empty";
  let r = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' -> r := add_int (mul_int !r 10) (Char.code c - Char.code '0')
      | _ -> invalid_arg "Bignum.of_decimal_string: non-digit")
    s;
  !r

let to_decimal_string a =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod_small v 10 in
        Buffer.add_char buf (Char.chr (Char.code '0' + r));
        go q
      end
    in
    go a;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal_string a)

let random_bits rand nbits =
  if nbits <= 0 then zero
  else begin
    let nbytes = (nbits + 7) / 8 in
    let v = of_bytes_be (rand nbytes) in
    let excess = (nbytes * 8) - nbits in
    if excess = 0 then v else shift_right v excess
  end

let random_below rand n =
  if is_zero n then invalid_arg "Bignum.random_below: zero bound";
  let nbits = bit_length n in
  let rec draw () =
    let v = random_bits rand nbits in
    if compare v n < 0 then v else draw ()
  in
  draw ()
