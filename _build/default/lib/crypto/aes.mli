(** AES-128/192/256 (FIPS 197) with CBC and CTR modes.

    Part of the paper's PAL crypto module: PALs use a fast symmetric cipher
    on the main CPU and keep only the symmetric key in TPM sealed storage. *)

type key

val expand_key : string -> key
(** @raise Invalid_argument unless the key is 16, 24 or 32 bytes. *)

val encrypt_block : key -> string -> string
(** One 16-byte block. @raise Invalid_argument on wrong block size. *)

val decrypt_block : key -> string -> string

val encrypt_cbc : key -> iv:string -> string -> string
(** CBC with PKCS#7 padding; always appends 1–16 bytes of padding.
    @raise Invalid_argument unless [iv] is 16 bytes. *)

val decrypt_cbc : key -> iv:string -> string -> string
(** @raise Invalid_argument on malformed ciphertext or bad padding. *)

val ctr : key -> nonce:string -> string -> string
(** Counter mode keystream XOR; encryption and decryption are the same
    operation. [nonce] must be 16 bytes (used as the initial counter
    block). *)
