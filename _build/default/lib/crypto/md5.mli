(** MD5 (RFC 1321). Needed for [Md5crypt], the Unix password hash the SSH
    application checks against /etc/passwd entries. *)

type ctx

val digest_size : int
(** 16 bytes. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
val digest : string -> string
val hex : string -> string
