(** SHA-1 (FIPS 180-1). The TPM v1.2 specification uses SHA-1 for all PCR
    extends and measurements, so this is the measurement hash throughout
    the simulator. *)

type ctx

val digest_size : int
(** 20 bytes. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
(** Returns the 20-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot hash. *)

val hex : string -> string
(** [hex s] is [Util.to_hex (digest s)]. *)
