(** The FreeBSD/Linux MD5-based crypt(3) scheme ("$1$" hashes).

    The paper's SSH PAL computes [md5crypt(salt, password)] and outputs
    the hash for comparison against the /etc/passwd entry (Figure 7). *)

val crypt : salt:string -> password:string -> string
(** Full crypt string ["$1$" ^ salt ^ "$" ^ hash]. The salt is truncated
    to 8 characters as in the original implementation. *)

val verify : crypted:string -> password:string -> bool
(** Check a password against a ["$1$..."] string.
    @raise Invalid_argument if [crypted] is not an MD5-crypt string. *)

val parse : string -> string * string
(** [parse crypted] is [(salt, hash)].
    @raise Invalid_argument on malformed input. *)
