let mac alg ~key msg =
  let block = Hash.block_size alg in
  let key = if String.length key > block then Hash.digest alg key else key in
  let key = key ^ String.make (block - String.length key) '\000' in
  let ipad = Util.xor key (String.make block '\x36') in
  let opad = Util.xor key (String.make block '\x5c') in
  Hash.digest alg (opad ^ Hash.digest alg (ipad ^ msg))

let sha1 ~key msg = mac Hash.SHA1 ~key msg

let verify alg ~key ~msg ~tag =
  Util.constant_time_equal (mac alg ~key msg) tag
