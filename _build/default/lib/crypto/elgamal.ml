type params = { p : Bignum.t; g : Bignum.t }
type public = { params : params; y : Bignum.t }
type private_key = { pub : public; x : Bignum.t }

let generate_params rng ~bits =
  let p = Primality.generate_prime rng ~bits in
  (* pick a generator candidate that is neither 0/1 nor p-1; without the
     safe-prime structure we accept any high-order-looking element, which
     is adequate for the simulation (the paper's point is keygen cost) *)
  let rec pick () =
    let g = Bignum.random_below (Prng.bytes rng) p in
    if
      Bignum.compare g Bignum.two < 0
      || Bignum.equal g (Bignum.sub p Bignum.one)
    then pick ()
    else g
  in
  { p; g = pick () }

let shared_params_512 =
  lazy (generate_params (Prng.create ~seed:"elgamal-shared-512") ~bits:512)

let shared_params_1024 =
  lazy (generate_params (Prng.create ~seed:"elgamal-shared-1024") ~bits:1024)

let generate rng params =
  (* x in [2, p-2]; y = g^x mod p *)
  let bound = Bignum.sub params.p (Bignum.of_int 3) in
  let x = Bignum.add (Bignum.random_below (Prng.bytes rng) bound) Bignum.two in
  let y = Bignum.mod_pow ~base:params.g ~exp:x ~modulus:params.p in
  { pub = { params; y }; x }

let modulus_bytes params = (Bignum.bit_length params.p + 7) / 8

let encrypt rng pub msg =
  let params = pub.params in
  (* encode with a leading 0x01 byte so leading zeros survive *)
  let m = Bignum.of_bytes_be ("\x01" ^ msg) in
  if Bignum.compare m params.p >= 0 then Error "ElGamal: message too long for the group"
  else begin
    let bound = Bignum.sub params.p (Bignum.of_int 3) in
    let k = Bignum.add (Bignum.random_below (Prng.bytes rng) bound) Bignum.two in
    let c1 = Bignum.mod_pow ~base:params.g ~exp:k ~modulus:params.p in
    let s = Bignum.mod_pow ~base:pub.y ~exp:k ~modulus:params.p in
    let c2 = Bignum.rem (Bignum.mul m s) params.p in
    let n = modulus_bytes params in
    Ok
      (Util.encode_fields
         [ Bignum.to_bytes_be ~pad_to:n c1; Bignum.to_bytes_be ~pad_to:n c2 ])
  end

let decrypt key ct =
  match Util.decode_fields ct with
  | Ok [ c1_raw; c2_raw ] -> (
      let params = key.pub.params in
      let c1 = Bignum.of_bytes_be c1_raw and c2 = Bignum.of_bytes_be c2_raw in
      if Bignum.compare c1 params.p >= 0 || Bignum.compare c2 params.p >= 0 then
        Error "ElGamal: ciphertext outside the group"
      else begin
        (* s^-1 = c1^(p-1-x) *)
        let exp = Bignum.sub (Bignum.sub params.p Bignum.one) key.x in
        let s_inv = Bignum.mod_pow ~base:c1 ~exp ~modulus:params.p in
        let m = Bignum.rem (Bignum.mul c2 s_inv) params.p in
        let raw = Bignum.to_bytes_be m in
        if String.length raw >= 1 && raw.[0] = '\x01' then
          Ok (String.sub raw 1 (String.length raw - 1))
        else Error "ElGamal: padding marker missing"
      end)
  | Ok _ | Error _ -> Error "ElGamal: malformed ciphertext"

let public_to_string pub =
  Util.encode_fields
    [
      Bignum.to_bytes_be pub.params.p;
      Bignum.to_bytes_be pub.params.g;
      Bignum.to_bytes_be pub.y;
    ]

let public_of_string s =
  match Util.decode_fields s with
  | Ok [ p; g; y ] ->
      Ok
        {
          params = { p = Bignum.of_bytes_be p; g = Bignum.of_bytes_be g };
          y = Bignum.of_bytes_be y;
        }
  | Ok _ -> Error "ElGamal: malformed public key"
  | Error e -> Error e

let private_to_string key =
  Util.encode_fields [ public_to_string key.pub; Bignum.to_bytes_be key.x ]

let private_of_string s =
  match Util.decode_fields s with
  | Ok [ pub_raw; x ] -> (
      match public_of_string pub_raw with
      | Ok pub -> Ok { pub; x = Bignum.of_bytes_be x }
      | Error e -> Error e)
  | Ok _ -> Error "ElGamal: malformed private key"
  | Error e -> Error e
