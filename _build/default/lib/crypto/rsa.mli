(** RSA key generation and the raw modular-exponentiation primitives.

    Padding lives in {!Pkcs1}; this module is "textbook" RSA over
    {!Bignum} values. Private-key operations use the CRT for speed, as the
    paper's crypto PAL module does. *)

type public = { n : Bignum.t; e : Bignum.t }

type private_key = {
  pub : public;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t; (* d mod (p-1) *)
  dq : Bignum.t; (* d mod (q-1) *)
  qinv : Bignum.t; (* q^-1 mod p *)
}

val generate : ?e:int -> Prng.t -> bits:int -> private_key
(** Generate a keypair with modulus of exactly [bits] bits. [e] defaults
    to 65537. @raise Invalid_argument if [bits < 16]. *)

val key_bytes : public -> int
(** Modulus length in bytes. *)

val encrypt_raw : public -> Bignum.t -> Bignum.t
(** [m^e mod n]. @raise Invalid_argument if the message is >= n. *)

val decrypt_raw : private_key -> Bignum.t -> Bignum.t
(** [c^d mod n] via the CRT. @raise Invalid_argument if [c >= n]. *)

val public_to_string : public -> string
(** Canonical serialization (length-prefixed n and e), used when a PAL
    outputs its public key for measurement into PCR 17. *)

val public_of_string : string -> public
(** @raise Invalid_argument on malformed input. *)

val private_to_string : private_key -> string
(** Serialization for TPM-sealing a PAL's private key across sessions. *)

val private_of_string : string -> private_key
(** @raise Invalid_argument on malformed input. *)
