let itoa64 = "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

(* Encode [n] bytes (as an int, little-endian packed) into base-64-ish
   characters using the crypt alphabet. *)
let to64 v n =
  let buf = Buffer.create n in
  let v = ref v in
  for _ = 1 to n do
    Buffer.add_char buf itoa64.[!v land 0x3f];
    v := !v lsr 6
  done;
  Buffer.contents buf

let crypt ~salt ~password =
  let salt =
    let s = if String.length salt > 8 then String.sub salt 0 8 else salt in
    (* a salt must not contain '$' — stop at the first one, as crypt(3) does *)
    match String.index_opt s '$' with None -> s | Some i -> String.sub s 0 i
  in
  let magic = "$1$" in
  let ctx = Md5.init () in
  Md5.update ctx password;
  Md5.update ctx magic;
  Md5.update ctx salt;
  let alt = Md5.digest (password ^ salt ^ password) in
  let plen = String.length password in
  for i = 0 to plen - 1 do
    Md5.update ctx (String.make 1 alt.[i mod 16])
  done;
  (* the famous bug-compatible bit pattern walk *)
  let i = ref plen in
  while !i > 0 do
    if !i land 1 = 1 then Md5.update ctx "\000"
    else Md5.update ctx (String.make 1 password.[0]);
    i := !i lsr 1
  done;
  let intermediate = ref (Md5.finalize ctx) in
  for round = 0 to 999 do
    let ctx = Md5.init () in
    if round land 1 = 1 then Md5.update ctx password else Md5.update ctx !intermediate;
    if round mod 3 <> 0 then Md5.update ctx salt;
    if round mod 7 <> 0 then Md5.update ctx password;
    if round land 1 = 1 then Md5.update ctx !intermediate else Md5.update ctx password;
    intermediate := Md5.finalize ctx
  done;
  let f = !intermediate in
  let byte i = Char.code f.[i] in
  let out = Buffer.create 22 in
  let group a b c n =
    Buffer.add_string out (to64 ((byte a lsl 16) lor (byte b lsl 8) lor byte c) n)
  in
  group 0 6 12 4;
  group 1 7 13 4;
  group 2 8 14 4;
  group 3 9 15 4;
  group 4 10 5 4;
  Buffer.add_string out (to64 (byte 11) 2);
  magic ^ salt ^ "$" ^ Buffer.contents out

let parse crypted =
  match String.split_on_char '$' crypted with
  | [ ""; "1"; salt; hash ] -> (salt, hash)
  | _ -> invalid_arg "Md5crypt.parse: not a $1$ crypt string"

let verify ~crypted ~password =
  let salt, _ = parse crypted in
  Util.constant_time_equal (crypt ~salt ~password) crypted
