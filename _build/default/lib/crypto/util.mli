(** Byte-string helpers shared across the crypto library. *)

val to_hex : string -> string
(** [to_hex s] is the lowercase hexadecimal rendering of [s]. *)

val of_hex : string -> string
(** [of_hex h] decodes a hexadecimal string (upper or lower case).
    @raise Invalid_argument on odd length or non-hex characters. *)

val xor : string -> string -> string
(** [xor a b] is the byte-wise XOR of two equal-length strings.
    @raise Invalid_argument if lengths differ. *)

val constant_time_equal : string -> string -> bool
(** Compare two strings without early exit on the first differing byte.
    Returns [false] when the lengths differ. *)

val be32_of_int : int -> string
(** 4-byte big-endian encoding of the low 32 bits of an int. *)

val int_of_be32 : string -> int -> int
(** [int_of_be32 s off] reads 4 bytes big-endian at [off]. *)

val be16_of_int : int -> string
(** 2-byte big-endian encoding of the low 16 bits of an int. *)

val int_of_be16 : string -> int -> int
(** [int_of_be16 s off] reads 2 bytes big-endian at [off]. *)

val chunks : int -> string -> string list
(** [chunks n s] splits [s] into pieces of [n] bytes; the last piece may be
    shorter. [chunks n ""] is [[]].
    @raise Invalid_argument if [n <= 0]. *)

val pad_left : char -> int -> string -> string
(** [pad_left c n s] left-pads [s] with [c] to length [n]; returns [s]
    unchanged if it is already at least [n] long. *)

val zeroize : bytes -> unit
(** Overwrite a buffer with zero bytes (simulates erasing secrets). *)

val field : string -> string
(** Length-prefixed encoding: 4-byte big-endian length, then the bytes. *)

val encode_fields : string list -> string
(** Concatenated {!field}s. *)

val decode_fields : string -> (string list, string) result
(** Inverse of {!encode_fields}; [Error] on truncated input. *)
