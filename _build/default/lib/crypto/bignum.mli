(** Arbitrary-precision natural numbers.

    The RSA implementation needs multi-precision arithmetic and no bignum
    library is available in the sealed environment, so this module provides
    one from scratch: little-endian arrays of 26-bit limbs, with schoolbook
    multiplication and Knuth Algorithm D division. All values are
    non-negative; subtraction of a larger value raises. *)

type t

val zero : t
val one : t
val two : t

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
(** @raise Failure if the value does not fit in an OCaml [int]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_even : t -> bool

val add : t -> t -> t
val sub : t -> t -> t
(** @raise Invalid_argument if the result would be negative. *)

val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]. @raise Division_by_zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val add_int : t -> int -> t
val mul_int : t -> int -> t
val rem_int : t -> int -> int
(** Remainder by a small positive int, computed without allocation of a
    full quotient. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
val bit_length : t -> int
(** Number of significant bits; [bit_length zero = 0]. *)

val test_bit : t -> int -> bool

val mod_pow : base:t -> exp:t -> modulus:t -> t
(** Modular exponentiation by square-and-multiply.
    @raise Division_by_zero if [modulus] is zero. *)

val gcd : t -> t -> t

val mod_inverse : t -> t -> t option
(** [mod_inverse a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], otherwise [None]. *)

val of_bytes_be : string -> t
(** Interpret a big-endian byte string as a natural number. *)

val to_bytes_be : ?pad_to:int -> t -> string
(** Minimal big-endian encoding, optionally left-padded with zero bytes to
    [pad_to] bytes. The encoding of [zero] without padding is [""]. *)

val of_hex : string -> t
val to_hex : t -> string

val of_decimal_string : string -> t
(** @raise Invalid_argument on non-digit characters or empty input. *)

val to_decimal_string : t -> string

val pp : Format.formatter -> t -> unit
(** Prints the decimal rendering. *)

val random_bits : (int -> string) -> int -> t
(** [random_bits rand nbits] draws a uniformly random value below
    [2^nbits] using [rand n], a source of [n] random bytes. *)

val random_below : (int -> string) -> t -> t
(** [random_below rand n] draws a uniformly random value in [[0, n)] by
    rejection sampling. @raise Invalid_argument if [n] is zero. *)
