type t = { s : int array; mutable i : int; mutable j : int }

let create ~key =
  let klen = String.length key in
  if klen = 0 || klen > 256 then invalid_arg "Rc4.create: key must be 1-256 bytes";
  let s = Array.init 256 (fun i -> i) in
  let j = ref 0 in
  for i = 0 to 255 do
    j := (!j + s.(i) + Char.code key.[i mod klen]) land 0xff;
    let tmp = s.(i) in
    s.(i) <- s.(!j);
    s.(!j) <- tmp
  done;
  { s; i = 0; j = 0 }

let next_byte t =
  t.i <- (t.i + 1) land 0xff;
  t.j <- (t.j + t.s.(t.i)) land 0xff;
  let tmp = t.s.(t.i) in
  t.s.(t.i) <- t.s.(t.j);
  t.s.(t.j) <- tmp;
  t.s.((t.s.(t.i) + t.s.(t.j)) land 0xff)

let keystream t n = String.init n (fun _ -> Char.chr (next_byte t))

let process t data =
  String.map (fun c -> Char.chr (Char.code c lxor next_byte t)) data

let encrypt ~key data = process (create ~key) data
