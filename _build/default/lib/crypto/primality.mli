(** Primality testing and random prime generation for RSA key generation. *)

val is_probably_prime : ?rounds:int -> Prng.t -> Bignum.t -> bool
(** Miller–Rabin with trial division by small primes first. [rounds]
    defaults to 20 (error probability below 4^-20). *)

val generate_prime : Prng.t -> bits:int -> Bignum.t
(** A random probable prime of exactly [bits] bits (top bit set, odd).
    @raise Invalid_argument if [bits < 3]. *)

val small_primes : int list
(** The primes below 1000, used for trial division and in tests. *)
