(** Deterministic cryptographic PRNG (hash-DRBG over SHA-256).

    The simulator must be reproducible, so every source of randomness — the
    TPM's hardware RNG, key generation, nonces — draws from a seeded
    instance of this generator. Distinct components fork independent
    streams with [fork] so that adding a consumer does not perturb others. *)

type t

val create : seed:string -> t
val bytes : t -> int -> string
(** [bytes t n] draws [n] fresh pseudorandom bytes. *)

val byte : t -> int
(** One byte as an int in [0, 255]. *)

val int_below : t -> int -> int
(** Uniform draw in [[0, bound)). @raise Invalid_argument if [bound <= 0]. *)

val reseed : t -> string -> unit
(** Mix additional entropy into the state. *)

val fork : t -> label:string -> t
(** Derive an independent generator; streams with different labels are
    computationally unrelated. *)
