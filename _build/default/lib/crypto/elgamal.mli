(** ElGamal encryption over a shared prime-order group.

    Section 7.4.1 of the paper points out that the SSH setup PAL's 185.7 ms
    is dominated by RSA key generation and "could be mitigated by choosing
    a different public key algorithm with faster key generation, such as
    ElGamal": with group parameters fixed ahead of time, an ElGamal
    keypair costs one modular exponentiation. This module provides that
    alternative; the keygen-ablation benchmark quantifies the saving. *)

type params = { p : Bignum.t; g : Bignum.t }
(** Group parameters: a prime modulus and a generator. Shared by all
    parties (like the IKE MODP groups); generating them is a one-time
    setup cost, not part of key generation. *)

type public = { params : params; y : Bignum.t }
type private_key = { pub : public; x : Bignum.t }

val generate_params : Prng.t -> bits:int -> params
(** Derive fresh group parameters (a random prime and a generator
    candidate). Expensive — do it once and share. *)

val shared_params_512 : params Lazy.t
(** Precomputed deterministic groups for tests and benchmarks. *)

val shared_params_1024 : params Lazy.t

val generate : Prng.t -> params -> private_key
(** One random exponent and one modular exponentiation — the fast keygen
    the paper suggests. *)

val encrypt : Prng.t -> public -> string -> (string, string) result
(** Encrypt a message shorter than the modulus; the result encodes the
    (c1, c2) pair. *)

val decrypt : private_key -> string -> (string, string) result

val public_to_string : public -> string
val public_of_string : string -> (public, string) result
val private_to_string : private_key -> string
val private_of_string : string -> (private_key, string) result
