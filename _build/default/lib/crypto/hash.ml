type algorithm = SHA1 | SHA256 | SHA512 | MD5

let digest_size = function
  | SHA1 -> Sha1.digest_size
  | SHA256 -> Sha256.digest_size
  | SHA512 -> Sha512.digest_size
  | MD5 -> Md5.digest_size

let block_size = function SHA1 | SHA256 | MD5 -> 64 | SHA512 -> 128

let digest alg s =
  match alg with
  | SHA1 -> Sha1.digest s
  | SHA256 -> Sha256.digest s
  | SHA512 -> Sha512.digest s
  | MD5 -> Md5.digest s

let hex alg s = Util.to_hex (digest alg s)

let name = function
  | SHA1 -> "SHA-1"
  | SHA256 -> "SHA-256"
  | SHA512 -> "SHA-512"
  | MD5 -> "MD5"

let pp fmt alg = Format.pp_print_string fmt (name alg)
