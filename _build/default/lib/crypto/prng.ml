type t = { mutable state : string; mutable counter : int }

let create ~seed = { state = Sha256.digest ("flicker-prng-seed:" ^ seed); counter = 0 }

let next_block t =
  let block = Sha256.digest (t.state ^ Util.be32_of_int t.counter) in
  t.counter <- t.counter + 1;
  (* Ratchet the state forward so earlier outputs cannot be recovered from
     a captured state (backtracking resistance, like a real DRBG). *)
  if t.counter land 0xff = 0 then begin
    t.state <- Sha256.digest ("ratchet" ^ t.state);
    t.counter <- 0
  end;
  block

let bytes t n =
  if n < 0 then invalid_arg "Prng.bytes: negative";
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    Buffer.add_string buf (next_block t)
  done;
  String.sub (Buffer.contents buf) 0 n

let byte t = Char.code (bytes t 1).[0]

let int_below t bound =
  if bound <= 0 then invalid_arg "Prng.int_below: non-positive bound";
  (* rejection sampling over 30-bit draws *)
  let rec draw () =
    let raw = bytes t 4 in
    let v = Util.int_of_be32 raw 0 land 0x3FFFFFFF in
    let limit = 0x40000000 - (0x40000000 mod bound) in
    if v < limit then v mod bound else draw ()
  in
  draw ()

let reseed t extra = t.state <- Sha256.digest (t.state ^ "reseed" ^ extra)

let fork t ~label =
  let child_seed = Sha256.digest (t.state ^ "fork:" ^ label) in
  t.state <- Sha256.digest (t.state ^ "forked:" ^ label);
  { state = child_seed; counter = 0 }
