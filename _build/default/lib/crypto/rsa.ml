type public = { n : Bignum.t; e : Bignum.t }

type private_key = {
  pub : public;
  d : Bignum.t;
  p : Bignum.t;
  q : Bignum.t;
  dp : Bignum.t;
  dq : Bignum.t;
  qinv : Bignum.t;
}

let generate ?(e = 65537) rng ~bits =
  if bits < 16 then invalid_arg "Rsa.generate: modulus too small";
  let open Bignum in
  let e_big = of_int e in
  let p_bits = (bits + 1) / 2 in
  let q_bits = bits - p_bits in
  let rec attempt () =
    let p = Primality.generate_prime rng ~bits:p_bits in
    let q = Primality.generate_prime rng ~bits:q_bits in
    if equal p q then attempt ()
    else begin
      let n = mul p q in
      if bit_length n <> bits then attempt ()
      else begin
        let p1 = sub p one and q1 = sub q one in
        let phi = mul p1 q1 in
        match mod_inverse e_big phi with
        | None -> attempt ()
        | Some d ->
            (match mod_inverse q p with
            | None -> attempt () (* impossible for distinct primes, but be safe *)
            | Some qinv ->
                {
                  pub = { n; e = e_big };
                  d;
                  p;
                  q;
                  dp = rem d p1;
                  dq = rem d q1;
                  qinv;
                })
      end
    end
  in
  attempt ()

let key_bytes pub = (Bignum.bit_length pub.n + 7) / 8

let encrypt_raw pub m =
  if Bignum.compare m pub.n >= 0 then invalid_arg "Rsa.encrypt_raw: message too large";
  Bignum.mod_pow ~base:m ~exp:pub.e ~modulus:pub.n

let decrypt_raw key c =
  if Bignum.compare c key.pub.n >= 0 then invalid_arg "Rsa.decrypt_raw: ciphertext too large";
  let open Bignum in
  (* CRT: m1 = c^dp mod p, m2 = c^dq mod q, h = qinv*(m1-m2) mod p *)
  let m1 = mod_pow ~base:(rem c key.p) ~exp:key.dp ~modulus:key.p in
  let m2 = mod_pow ~base:(rem c key.q) ~exp:key.dq ~modulus:key.q in
  let diff = if compare m1 m2 >= 0 then sub m1 m2 else sub (add m1 key.p) (rem m2 key.p) in
  let h = rem (mul key.qinv diff) key.p in
  add m2 (mul h key.q)

(* length-prefixed field encoding: 4-byte big-endian length then bytes *)
let field b = Util.be32_of_int (String.length b) ^ b

let fields_of_string s =
  let rec go off acc =
    if off = String.length s then List.rev acc
    else if off + 4 > String.length s then invalid_arg "Rsa: truncated field header"
    else begin
      let len = Util.int_of_be32 s off in
      if off + 4 + len > String.length s then invalid_arg "Rsa: truncated field"
      else go (off + 4 + len) (String.sub s (off + 4) len :: acc)
    end
  in
  go 0 []

let public_to_string pub =
  field (Bignum.to_bytes_be pub.n) ^ field (Bignum.to_bytes_be pub.e)

let public_of_string s =
  match fields_of_string s with
  | [ n; e ] -> { n = Bignum.of_bytes_be n; e = Bignum.of_bytes_be e }
  | _ -> invalid_arg "Rsa.public_of_string: malformed"

let private_to_string key =
  String.concat ""
    (List.map
       (fun v -> field (Bignum.to_bytes_be v))
       [ key.pub.n; key.pub.e; key.d; key.p; key.q; key.dp; key.dq; key.qinv ])

let private_of_string s =
  match List.map Bignum.of_bytes_be (fields_of_string s) with
  | [ n; e; d; p; q; dp; dq; qinv ] -> { pub = { n; e }; d; p; q; dp; dq; qinv }
  | _ -> invalid_arg "Rsa.private_of_string: malformed"
