(* 64-bit words force Int64 arithmetic here, unlike the 32-bit hashes. *)

let digest_size = 64

let k =
  [|
    0x428a2f98d728ae22L; 0x7137449123ef65cdL; 0xb5c0fbcfec4d3b2fL;
    0xe9b5dba58189dbbcL; 0x3956c25bf348b538L; 0x59f111f1b605d019L;
    0x923f82a4af194f9bL; 0xab1c5ed5da6d8118L; 0xd807aa98a3030242L;
    0x12835b0145706fbeL; 0x243185be4ee4b28cL; 0x550c7dc3d5ffb4e2L;
    0x72be5d74f27b896fL; 0x80deb1fe3b1696b1L; 0x9bdc06a725c71235L;
    0xc19bf174cf692694L; 0xe49b69c19ef14ad2L; 0xefbe4786384f25e3L;
    0x0fc19dc68b8cd5b5L; 0x240ca1cc77ac9c65L; 0x2de92c6f592b0275L;
    0x4a7484aa6ea6e483L; 0x5cb0a9dcbd41fbd4L; 0x76f988da831153b5L;
    0x983e5152ee66dfabL; 0xa831c66d2db43210L; 0xb00327c898fb213fL;
    0xbf597fc7beef0ee4L; 0xc6e00bf33da88fc2L; 0xd5a79147930aa725L;
    0x06ca6351e003826fL; 0x142929670a0e6e70L; 0x27b70a8546d22ffcL;
    0x2e1b21385c26c926L; 0x4d2c6dfc5ac42aedL; 0x53380d139d95b3dfL;
    0x650a73548baf63deL; 0x766a0abb3c77b2a8L; 0x81c2c92e47edaee6L;
    0x92722c851482353bL; 0xa2bfe8a14cf10364L; 0xa81a664bbc423001L;
    0xc24b8b70d0f89791L; 0xc76c51a30654be30L; 0xd192e819d6ef5218L;
    0xd69906245565a910L; 0xf40e35855771202aL; 0x106aa07032bbd1b8L;
    0x19a4c116b8d2d0c8L; 0x1e376c085141ab53L; 0x2748774cdf8eeb99L;
    0x34b0bcb5e19b48a8L; 0x391c0cb3c5c95a63L; 0x4ed8aa4ae3418acbL;
    0x5b9cca4f7763e373L; 0x682e6ff3d6b2b8a3L; 0x748f82ee5defb2fcL;
    0x78a5636f43172f60L; 0x84c87814a1f0ab72L; 0x8cc702081a6439ecL;
    0x90befffa23631e28L; 0xa4506cebde82bde9L; 0xbef9a3f7b2c67915L;
    0xc67178f2e372532bL; 0xca273eceea26619cL; 0xd186b8c721c0c207L;
    0xeada7dd6cde0eb1eL; 0xf57d4f7fee6ed178L; 0x06f067aa72176fbaL;
    0x0a637dc5a2c898a6L; 0x113f9804bef90daeL; 0x1b710b35131c471bL;
    0x28db77f523047d84L; 0x32caab7b40c72493L; 0x3c9ebe0a15c9bebcL;
    0x431d67c49c100d4cL; 0x4cc5d4becb3e42b6L; 0x597f299cfc657e2aL;
    0x5fcb6fab3ad6faecL; 0x6c44198c4a475817L;
  |]

type ctx = {
  h : int64 array;
  mutable total : int;
  buf : Bytes.t; (* 128-byte blocks *)
  mutable buf_len : int;
  w : int64 array;
}

let init () =
  {
    h =
      [|
        0x6a09e667f3bcc908L; 0xbb67ae8584caa73bL; 0x3c6ef372fe94f82bL;
        0xa54ff53a5f1d36f1L; 0x510e527fade682d1L; 0x9b05688c2b3e6c1fL;
        0x1f83d9abfb41bd6bL; 0x5be0cd19137e2179L;
      |];
    total = 0;
    buf = Bytes.create 128;
    buf_len = 0;
    w = Array.make 80 0L;
  }

let ( +% ) = Int64.add
let ( ^% ) = Int64.logxor
let ( &% ) = Int64.logand

let rotr64 v n = Int64.logor (Int64.shift_right_logical v n) (Int64.shift_left v (64 - n))

let compress ctx block =
  let w = ctx.w in
  for t = 0 to 15 do
    let i = 8 * t in
    let v = ref 0L in
    for j = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get block (i + j))))
    done;
    w.(t) <- !v
  done;
  for t = 16 to 79 do
    let s0 = rotr64 w.(t - 15) 1 ^% rotr64 w.(t - 15) 8 ^% Int64.shift_right_logical w.(t - 15) 7 in
    let s1 = rotr64 w.(t - 2) 19 ^% rotr64 w.(t - 2) 61 ^% Int64.shift_right_logical w.(t - 2) 6 in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 79 do
    let s1 = rotr64 !e 14 ^% rotr64 !e 18 ^% rotr64 !e 41 in
    let ch = (!e &% !f) ^% (Int64.lognot !e &% !g) in
    let temp1 = !hh +% s1 +% ch +% k.(t) +% w.(t) in
    let s0 = rotr64 !a 28 ^% rotr64 !a 34 ^% rotr64 !a 39 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let temp2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let update ctx s =
  let len = String.length s in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  if ctx.buf_len > 0 then begin
    let take = min (128 - ctx.buf_len) len in
    Bytes.blit_string s 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 128 then begin
      compress ctx ctx.buf;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= 128 do
    Bytes.blit_string s !pos ctx.buf 0 128;
    compress ctx ctx.buf;
    pos := !pos + 128
  done;
  if !pos < len then begin
    Bytes.blit_string s !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let finalize ctx =
  let bit_len = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1) mod 128 in
    if rem <= 112 then 112 - rem else 240 - rem
  in
  (* The 128-bit length field: the simulator never hashes > 2^59 bytes, so
     the top 8 bytes are always zero. *)
  let padding = Bytes.make (1 + pad_len + 16) '\000' in
  Bytes.set padding 0 '\x80';
  for i = 0 to 7 do
    Bytes.set padding (1 + pad_len + 8 + i) (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  update ctx (Bytes.unsafe_to_string padding);
  let out = Bytes.create 64 in
  Array.iteri
    (fun i h ->
      for j = 0 to 7 do
        let byte = Int64.to_int (Int64.shift_right_logical h (8 * (7 - j))) land 0xff in
        Bytes.set out ((8 * i) + j) (Char.chr byte)
      done)
    ctx.h;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let hex s = Util.to_hex (digest s)
