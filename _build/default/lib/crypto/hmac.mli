(** HMAC (RFC 2104). Used by the distributed-computing PAL to protect the
    integrity of its state between Flicker sessions, and by TPM OIAP/OSAP
    authorization sessions. *)

val mac : Hash.algorithm -> key:string -> string -> string
val sha1 : key:string -> string -> string
val verify : Hash.algorithm -> key:string -> msg:string -> tag:string -> bool
(** Constant-time comparison of [tag] against the recomputed MAC. *)
