lib/crypto/elgamal.mli: Bignum Lazy Prng
