lib/crypto/hash.mli: Format
