lib/crypto/rc4.ml: Array Char String
