lib/crypto/rsa.ml: Bignum List Primality String Util
