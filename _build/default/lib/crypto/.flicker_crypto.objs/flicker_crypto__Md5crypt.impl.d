lib/crypto/md5crypt.ml: Buffer Char Md5 String Util
