lib/crypto/md5.ml: Array Bytes Char List String Util
