lib/crypto/prng.mli:
