lib/crypto/primality.mli: Bignum Prng
