lib/crypto/elgamal.ml: Bignum Primality Prng String Util
