lib/crypto/pkcs1.ml: Bignum Char Hash Prng Rsa String Util
