lib/crypto/rsa.mli: Bignum Prng
