lib/crypto/primality.ml: Array Bignum Fun List Prng
