lib/crypto/rc4.mli:
