lib/crypto/hash.ml: Format Md5 Sha1 Sha256 Sha512 Util
