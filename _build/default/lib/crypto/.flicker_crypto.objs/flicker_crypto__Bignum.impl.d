lib/crypto/bignum.ml: Array Buffer Bytes Char Format List Stdlib String Util
