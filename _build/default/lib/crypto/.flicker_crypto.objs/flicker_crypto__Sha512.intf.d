lib/crypto/sha512.mli:
