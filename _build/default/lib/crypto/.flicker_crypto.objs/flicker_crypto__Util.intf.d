lib/crypto/util.mli:
