lib/crypto/aes.mli:
