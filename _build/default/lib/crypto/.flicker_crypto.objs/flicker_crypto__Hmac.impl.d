lib/crypto/hmac.ml: Hash String Util
