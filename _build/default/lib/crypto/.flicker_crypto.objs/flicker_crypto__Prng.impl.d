lib/crypto/prng.ml: Buffer Char Sha256 String Util
