lib/crypto/sha512.ml: Array Bytes Char Int64 String Util
