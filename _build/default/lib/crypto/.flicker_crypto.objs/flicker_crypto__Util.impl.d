lib/crypto/util.ml: Bytes Char List String
