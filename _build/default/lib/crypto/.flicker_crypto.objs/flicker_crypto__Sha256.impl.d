lib/crypto/sha256.ml: Array Bytes Char String Util
