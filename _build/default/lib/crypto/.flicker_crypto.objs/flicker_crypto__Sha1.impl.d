lib/crypto/sha1.ml: Array Bytes Char List String Util
