lib/crypto/pkcs1.mli: Hash Prng Rsa
