lib/crypto/md5crypt.mli:
