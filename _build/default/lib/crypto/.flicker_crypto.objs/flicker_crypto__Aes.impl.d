lib/crypto/aes.ml: Array Buffer Bytes Char List String Util
