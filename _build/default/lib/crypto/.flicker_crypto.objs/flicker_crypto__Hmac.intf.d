lib/crypto/hmac.mli: Hash
