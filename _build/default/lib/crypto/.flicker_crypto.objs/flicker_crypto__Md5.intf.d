lib/crypto/md5.mli:
