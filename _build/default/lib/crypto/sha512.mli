(** SHA-512 (FIPS 180-2). Listed in the paper's PAL crypto module
    (Figure 6) alongside SHA-1. *)

type ctx

val digest_size : int
(** 64 bytes. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
val digest : string -> string
val hex : string -> string
