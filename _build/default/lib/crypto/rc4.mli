(** RC4 stream cipher. Present because the paper's PAL crypto module
    supports it (Figure 6); modern callers should prefer {!Aes}. *)

type t

val create : key:string -> t
(** @raise Invalid_argument on an empty or over-256-byte key. *)

val keystream : t -> int -> string
(** Draw the next [n] keystream bytes (advances the cipher state). *)

val process : t -> string -> string
(** XOR data with the keystream; encryption and decryption are identical. *)

val encrypt : key:string -> string -> string
(** One-shot convenience: fresh cipher, process the whole string. *)
