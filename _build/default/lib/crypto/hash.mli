(** Uniform interface over the hash functions in this library, so higher
    layers (HMAC, PKCS#1, the TPM) can be parameterized by algorithm. *)

type algorithm = SHA1 | SHA256 | SHA512 | MD5

val digest_size : algorithm -> int
val block_size : algorithm -> int
(** Input block size in bytes (64 for SHA-1/SHA-256/MD5, 128 for SHA-512);
    HMAC keys are padded to this length. *)

val digest : algorithm -> string -> string
val hex : algorithm -> string -> string
val name : algorithm -> string
val pp : Format.formatter -> algorithm -> unit
