let small_primes =
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to limit do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  List.filter (fun i -> sieve.(i)) (List.init (limit + 1) Fun.id)

let passes_trial_division n =
  List.for_all
    (fun p ->
      let r = Bignum.rem_int n p in
      r <> 0 || Bignum.equal n (Bignum.of_int p))
    small_primes

(* One Miller-Rabin round with witness a: n-1 = d * 2^s with d odd. *)
let miller_rabin_round n d s a =
  let open Bignum in
  let n_minus_1 = sub n one in
  let x = mod_pow ~base:a ~exp:d ~modulus:n in
  if equal x one || equal x n_minus_1 then true
  else begin
    let rec square_up x i =
      if i >= s - 1 then false
      else begin
        let x = rem (mul x x) n in
        if equal x n_minus_1 then true else square_up x (i + 1)
      end
    in
    square_up x 0
  end

let is_probably_prime ?(rounds = 20) rng n =
  let open Bignum in
  if compare n two < 0 then false
  else if equal n two then true
  else if is_even n then false
  else if not (passes_trial_division n) then false
  else begin
    let n_minus_1 = sub n one in
    (* factor out powers of two *)
    let rec split d s = if is_even d then split (shift_right d 1) (s + 1) else (d, s) in
    let d, s = split n_minus_1 0 in
    let bound = sub n (of_int 3) in
    let rec rounds_left k =
      if k = 0 then true
      else begin
        let a = add (random_below (Prng.bytes rng) (add bound one)) two in
        if miller_rabin_round n d s a then rounds_left (k - 1) else false
      end
    in
    (* n >= 5 here, so the witness range [2, n-2] is non-empty *)
    rounds_left rounds
  end

let generate_prime rng ~bits =
  if bits < 3 then invalid_arg "Primality.generate_prime: need at least 3 bits";
  let open Bignum in
  let top = shift_left one (bits - 1) in
  let rec try_candidate () =
    let r = random_bits (Prng.bytes rng) (bits - 1) in
    (* force the top bit (exact width) and the low bit (odd) *)
    let candidate = add (add top r) (if is_even (add top r) then one else zero) in
    let candidate = if bit_length candidate > bits then sub candidate two else candidate in
    if is_probably_prime rng candidate then candidate else try_candidate ()
  in
  try_candidate ()
