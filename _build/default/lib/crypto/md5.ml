let digest_size = 16
let mask32 = 0xFFFFFFFF

let s =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 5; 9; 14; 20;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 4; 11; 16; 23; 4; 11; 16; 23; 4;
    11; 16; 23; 4; 11; 16; 23; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6;
    10; 15; 21;
  |]

let k =
  [|
    0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee; 0xf57c0faf; 0x4787c62a;
    0xa8304613; 0xfd469501; 0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be;
    0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821; 0xf61e2562; 0xc040b340;
    0x265e5a51; 0xe9b6c7aa; 0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
    0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed; 0xa9e3e905; 0xfcefa3f8;
    0x676f02d9; 0x8d2a4c8a; 0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c;
    0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70; 0x289b7ec6; 0xeaa127fa;
    0xd4ef3085; 0x04881d05; 0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
    0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039; 0x655b59c3; 0x8f0ccc92;
    0xffeff47d; 0x85845dd1; 0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1;
    0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391;
  |]

type ctx = {
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable total : int;
  buf : Bytes.t;
  mutable buf_len : int;
  m : int array; (* 16 little-endian message words *)
}

let init () =
  {
    a = 0x67452301;
    b = 0xefcdab89;
    c = 0x98badcfe;
    d = 0x10325476;
    total = 0;
    buf = Bytes.create 64;
    buf_len = 0;
    m = Array.make 16 0;
  }

let rotl32 v n = ((v lsl n) lor (v lsr (32 - n))) land mask32

let compress ctx block =
  let m = ctx.m in
  for i = 0 to 15 do
    let o = 4 * i in
    m.(i) <-
      Char.code (Bytes.get block o)
      lor (Char.code (Bytes.get block (o + 1)) lsl 8)
      lor (Char.code (Bytes.get block (o + 2)) lsl 16)
      lor (Char.code (Bytes.get block (o + 3)) lsl 24)
  done;
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 63 do
    let f, g =
      if i < 16 then (((!b land !c) lor (lnot !b land !d)) land mask32, i)
      else if i < 32 then (((!d land !b) lor (lnot !d land !c)) land mask32, ((5 * i) + 1) mod 16)
      else if i < 48 then (!b lxor !c lxor !d, ((3 * i) + 5) mod 16)
      else ((!c lxor (!b lor (lnot !d land mask32))) land mask32, (7 * i) mod 16)
    in
    let temp = !d in
    d := !c;
    c := !b;
    b := (!b + rotl32 ((!a + f + k.(i) + m.(g)) land mask32) s.(i)) land mask32;
    a := temp
  done;
  ctx.a <- (ctx.a + !a) land mask32;
  ctx.b <- (ctx.b + !b) land mask32;
  ctx.c <- (ctx.c + !c) land mask32;
  ctx.d <- (ctx.d + !d) land mask32

let update ctx str =
  let len = String.length str in
  ctx.total <- ctx.total + len;
  let pos = ref 0 in
  if ctx.buf_len > 0 then begin
    let take = min (64 - ctx.buf_len) len in
    Bytes.blit_string str 0 ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf;
      ctx.buf_len <- 0
    end
  end;
  while len - !pos >= 64 do
    Bytes.blit_string str !pos ctx.buf 0 64;
    compress ctx ctx.buf;
    pos := !pos + 64
  done;
  if !pos < len then begin
    Bytes.blit_string str !pos ctx.buf 0 (len - !pos);
    ctx.buf_len <- len - !pos
  end

let finalize ctx =
  let bit_len = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1) mod 64 in
    if rem <= 56 then 56 - rem else 120 - rem
  in
  let padding = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set padding 0 '\x80';
  (* MD5 length is little-endian, unlike the SHA family. *)
  for i = 0 to 7 do
    Bytes.set padding (1 + pad_len + i) (Char.chr ((bit_len lsr (8 * i)) land 0xff))
  done;
  update ctx (Bytes.unsafe_to_string padding);
  let out = Bytes.create 16 in
  List.iteri
    (fun i v ->
      for j = 0 to 3 do
        Bytes.set out ((4 * i) + j) (Char.chr ((v lsr (8 * j)) land 0xff))
      done)
    [ ctx.a; ctx.b; ctx.c; ctx.d ];
  Bytes.unsafe_to_string out

let digest str =
  let ctx = init () in
  update ctx str;
  finalize ctx

let hex str = Util.to_hex (digest str)
