(** SHA-256 (FIPS 180-2). *)

type ctx

val digest_size : int
(** 32 bytes. *)

val init : unit -> ctx
val update : ctx -> string -> unit
val finalize : ctx -> string
val digest : string -> string
val hex : string -> string
