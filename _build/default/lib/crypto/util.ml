let hex_digit n = "0123456789abcdef".[n]

let to_hex s =
  let b = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      Bytes.set b (2 * i) (hex_digit (v lsr 4));
      Bytes.set b ((2 * i) + 1) (hex_digit (v land 0xf)))
    s;
  Bytes.unsafe_to_string b

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Util.of_hex: non-hex character"

let of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Util.of_hex: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((hex_value h.[2 * i] lsl 4) lor hex_value h.[(2 * i) + 1]))

let xor a b =
  if String.length a <> String.length b then
    invalid_arg "Util.xor: length mismatch";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let constant_time_equal a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let be32_of_int v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let int_of_be32 s off =
  let byte i = Char.code s.[off + i] in
  (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3

let be16_of_int v =
  String.init 2 (fun i -> Char.chr ((v lsr (8 * (1 - i))) land 0xff))

let int_of_be16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let chunks n s =
  if n <= 0 then invalid_arg "Util.chunks: non-positive size";
  let len = String.length s in
  let rec go off acc =
    if off >= len then List.rev acc
    else
      let take = min n (len - off) in
      go (off + take) (String.sub s off take :: acc)
  in
  go 0 []

let pad_left c n s =
  let len = String.length s in
  if len >= n then s else String.make (n - len) c ^ s

let zeroize b = Bytes.fill b 0 (Bytes.length b) '\000'

let field s = be32_of_int (String.length s) ^ s
let encode_fields fields = String.concat "" (List.map field fields)

let decode_fields s =
  let rec go off acc =
    if off = String.length s then Ok (List.rev acc)
    else if off + 4 > String.length s then Error "truncated field header"
    else begin
      let len = int_of_be32 s off in
      if len < 0 || off + 4 + len > String.length s then Error "truncated field"
      else go (off + 4 + len) (String.sub s (off + 4) len :: acc)
    end
  in
  go 0 []
