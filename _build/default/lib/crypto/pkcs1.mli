(** PKCS#1 v1.5 padding (RFC 2437) on top of {!Rsa}.

    The SSH application encrypts the user's password with PKCS#1 encryption
    (the paper cites its non-malleability), and the TPM and CA sign with
    EMSA-PKCS1-v1_5 over SHA-1. *)

val encrypt : Prng.t -> Rsa.public -> string -> string
(** EME-PKCS1-v1_5 encryption. The result is exactly [key_bytes] long.
    @raise Invalid_argument if the message exceeds [key_bytes - 11]. *)

val decrypt : Rsa.private_key -> string -> (string, string) result
(** Returns [Error reason] on any padding failure (callers must not
    distinguish failure modes to an attacker). *)

val sign : Rsa.private_key -> Hash.algorithm -> string -> string
(** EMSA-PKCS1-v1_5 signature over [digest alg msg]. *)

val verify : Rsa.public -> Hash.algorithm -> msg:string -> signature:string -> bool

val max_message_bytes : Rsa.public -> int
(** Largest message [encrypt] accepts for this key. *)
