type role = Bsp | Ap
type run_state = Running | Descheduled | Wait_for_sipi
type mode = Long_mode | Flat_protected
type segment = { base : int; limit : int }

type core = {
  id : int;
  role : role;
  mutable run_state : run_state;
  mutable ring : int;
  mutable interrupts_enabled : bool;
  mutable mode : mode;
  mutable paging_enabled : bool;
  mutable cr3 : int;
  mutable cs : segment;
  mutable ds : segment;
  mutable ss : segment;
  mutable debug_enabled : bool;
}

type t = core array

let make_core id role =
  let seg = { base = 0; limit = max_int } in
  {
    id;
    role;
    run_state = Running;
    ring = 0;
    interrupts_enabled = true;
    mode = Long_mode;
    paging_enabled = true;
    cr3 = 0;
    cs = seg;
    ds = seg;
    ss = seg;
    debug_enabled = true;
  }

let create ~cores =
  if cores < 1 then invalid_arg "Cpu.create: need at least one core";
  Array.init cores (fun i -> make_core i (if i = 0 then Bsp else Ap))

let bsp t = t.(0)
let aps t = List.tl (Array.to_list t)
let all t = Array.to_list t

let core t i =
  if i < 0 || i >= Array.length t then invalid_arg "Cpu.core: bad index";
  t.(i)

let flat_segment size = { base = 0; limit = size - 1 }

let segment_contains seg ~addr ~len =
  len >= 0 && addr >= 0 && (len = 0 || addr + len - 1 <= seg.limit)

let all_aps_parked t =
  List.for_all (fun c -> c.run_state = Wait_for_sipi) (aps t)
