(** The simulated platform: memory, DEV, CPU cores, clock, and the hooks
    through which SKINIT drives the TPM.

    The TPM itself lives in [flicker_tpm] (which depends on this library
    for the clock and timing model); the platform assembly in
    [flicker_core.Platform] wires a TPM instance into [tpm_hooks]. *)

type tpm_hooks = {
  dynamic_pcr_reset : unit -> unit;
      (** Reset PCRs 17–23 to zero, as the chipset does on SKINIT. *)
  measure_into_pcr17 : string -> unit;
      (** Hash the transmitted SLB bytes and extend PCR 17. *)
}

type event = { at : float; detail : string }

type t = {
  memory : Memory.t;
  dev : Dev.t;
  cpus : Cpu.t;
  clock : Clock.t;
  timing : Timing.t;
  mutable tpm_hooks : tpm_hooks option;
  mutable events : event list;  (** audit trail, newest first *)
}

val create : ?memory_size:int -> ?cores:int -> Timing.t -> t
(** Defaults: 16 MB of memory, 2 cores (the dual-core dc5750). *)

val set_tpm_hooks : t -> tpm_hooks -> unit
val log_event : t -> string -> unit
val events_between : t -> since:float -> event list
(** Events at or after [since], oldest first. *)

val charge : t -> float -> unit
(** Advance the simulated clock by [ms]. *)

val charge_sha1 : t -> bytes:int -> unit
(** Charge CPU time for hashing [bytes] on the main processor. *)
