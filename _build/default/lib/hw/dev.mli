(** Device Exclusion Vector.

    AMD SVM's DEV is a bit vector over physical pages; a set bit blocks all
    DMA to that page. SKINIT sets the bits covering the 64 KB SLB region so
    that no DMA-capable device can read or tamper with the measured code
    (Section 2.4). *)

type t

val create : pages:int -> t
val protect_range : t -> addr:int -> len:int -> unit
(** Set the DEV bits for every page overlapping the byte range. *)

val unprotect_range : t -> addr:int -> len:int -> unit
val clear : t -> unit
val is_page_protected : t -> int -> bool
val allows : t -> addr:int -> len:int -> bool
(** [true] iff no byte of the range lies in a protected page. *)

val protected_pages : t -> int list
(** Sorted list of protected page numbers (for tests and audits). *)
