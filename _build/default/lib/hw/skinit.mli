(** The SKINIT instruction (AMD SVM late launch, Section 2.4).

    SKINIT atomically: verifies it runs in ring 0 on the BSP with all APs
    parked, reads the SLB header (16-bit length and entry point), enables
    the DEV over the 64 KB SLB region, disables interrupts and debug
    access, has the TPM reset the dynamic PCRs and measure the SLB into
    PCR 17, and finally enters flat 32-bit protected mode at the SLB entry
    point. Nothing that ran before SKINIT can influence the launched code,
    which is precisely the property Flicker builds on. *)

exception Skinit_error of string

type launch = {
  slb_base : int;  (** physical address passed to SKINIT *)
  slb_length : int;  (** measured length from the header *)
  entry_point : int;  (** absolute physical address of the first instruction *)
  protected_base : int;
  protected_len : int;  (** always the full 64 KB DEV window *)
}

val slb_window : int
(** 65536: the architectural SLB protection window. *)

val execute : Machine.t -> slb_base:int -> launch
(** Perform the launch sequence on [slb_base].
    @raise Skinit_error when an architectural precondition fails: caller
    not in ring 0, caller not the BSP, APs not parked, missing TPM, bad
    header, or the SLB exceeding its window. *)

val teardown_dev : Machine.t -> launch -> unit
(** Drop the DEV protection after the session's cleanup phase (done by the
    SLB Core just before resuming the OS). *)
