(** Inter-processor interrupt delivery.

    On a multi-core system, SKINIT requires every Application Processor to
    have received an INIT IPI so it participates in the launch handshake;
    the flicker-module deschedules the APs via CPU hotplug and then writes
    the INIT IPI to the APIC (Section 4.2). *)

val deschedule_aps : Machine.t -> unit
(** CPU-hotplug: move every Running AP to [Descheduled]. *)

val send_init_ipi : Machine.t -> unit
(** Park every AP in [Wait_for_sipi].
    @raise Failure if any AP is still [Running] (the BSP cannot INIT a
    busy processor, mirroring the constraint the paper works around). *)

val release_aps : Machine.t -> unit
(** Resume all APs to [Running] after the Flicker session ends. *)
