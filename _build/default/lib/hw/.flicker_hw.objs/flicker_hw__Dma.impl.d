lib/hw/dma.ml: Clock Dev List Machine Memory Printf String
