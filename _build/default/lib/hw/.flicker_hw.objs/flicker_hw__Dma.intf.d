lib/hw/dma.mli: Machine
