lib/hw/apic.mli: Machine
