lib/hw/apic.ml: Cpu List Machine Printf
