lib/hw/cpu.ml: Array List
