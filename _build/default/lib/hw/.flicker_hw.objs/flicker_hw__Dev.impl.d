lib/hw/dev.ml: Bytes Char Fun List Memory
