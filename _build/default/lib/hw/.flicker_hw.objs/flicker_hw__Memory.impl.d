lib/hw/memory.ml: Bytes Char Printf String
