lib/hw/timing.ml:
