lib/hw/cpu.mli:
