lib/hw/senter.ml: Buffer Cpu Dev Flicker_crypto Machine Memory Printf Sha1 Sha256 Skinit String Timing Util
