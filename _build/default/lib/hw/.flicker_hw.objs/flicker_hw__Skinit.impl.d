lib/hw/skinit.ml: Cpu Dev Machine Memory Printf Timing
