lib/hw/machine.mli: Clock Cpu Dev Memory Timing
