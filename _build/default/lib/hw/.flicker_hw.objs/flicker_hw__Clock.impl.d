lib/hw/clock.ml:
