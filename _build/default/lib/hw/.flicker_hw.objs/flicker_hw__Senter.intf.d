lib/hw/senter.mli: Machine
