lib/hw/timing.mli:
