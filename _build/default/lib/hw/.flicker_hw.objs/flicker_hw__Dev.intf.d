lib/hw/dev.mli:
