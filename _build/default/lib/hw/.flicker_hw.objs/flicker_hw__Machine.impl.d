lib/hw/machine.ml: Clock Cpu Dev List Logs Memory Timing
