lib/hw/clock.mli:
