lib/hw/skinit.mli: Machine
