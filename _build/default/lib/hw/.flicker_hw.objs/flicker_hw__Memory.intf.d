lib/hw/memory.mli:
