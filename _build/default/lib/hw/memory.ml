type t = { data : Bytes.t }

let page_size = 4096

let create ~size =
  if size <= 0 || size mod page_size <> 0 then
    invalid_arg "Memory.create: size must be a positive multiple of 4096";
  { data = Bytes.make size '\000' }

let size t = Bytes.length t.data

let check t addr len label =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.data then
    invalid_arg (Printf.sprintf "Memory.%s: out of range (addr=%#x len=%d)" label addr len)

let read t ~addr ~len =
  check t addr len "read";
  Bytes.sub_string t.data addr len

let write t ~addr s =
  check t addr (String.length s) "write";
  Bytes.blit_string s 0 t.data addr (String.length s)

let read_byte t addr =
  check t addr 1 "read_byte";
  Char.code (Bytes.get t.data addr)

let write_byte t addr v =
  check t addr 1 "write_byte";
  Bytes.set t.data addr (Char.chr (v land 0xff))

let read_u16_le t addr =
  check t addr 2 "read_u16_le";
  Char.code (Bytes.get t.data addr) lor (Char.code (Bytes.get t.data (addr + 1)) lsl 8)

let write_u16_le t addr v =
  check t addr 2 "write_u16_le";
  Bytes.set t.data addr (Char.chr (v land 0xff));
  Bytes.set t.data (addr + 1) (Char.chr ((v lsr 8) land 0xff))

let zero t ~addr ~len =
  check t addr len "zero";
  Bytes.fill t.data addr len '\000'

let page_of_addr addr = addr / page_size

let pages_of_range ~addr ~len =
  if len <= 0 then invalid_arg "Memory.pages_of_range: empty range";
  (page_of_addr addr, page_of_addr (addr + len - 1))

let find_pattern t pattern =
  let plen = String.length pattern in
  if plen = 0 then None
  else begin
    let limit = Bytes.length t.data - plen in
    let rec scan i =
      if i > limit then None
      else if Bytes.sub_string t.data i plen = pattern then Some i
      else scan (i + 1)
    in
    scan 0
  end
