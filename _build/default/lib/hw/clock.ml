type t = { mutable now : float }

let create () = { now = 0.0 }
let now t = t.now

let advance t ms =
  if ms < 0.0 then invalid_arg "Clock.advance: negative";
  t.now <- t.now +. ms

type span = { started_at : float; ended_at : float }

let time t f =
  let started_at = t.now in
  let result = f () in
  (result, { started_at; ended_at = t.now })

let duration s = s.ended_at -. s.started_at
