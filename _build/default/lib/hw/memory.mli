(** Simulated physical memory.

    A flat byte-addressable space divided into 4 KB pages. Both the
    untrusted OS and (via {!Dev}-checked paths) DMA devices operate on this
    space; the SLB is laid out here before SKINIT executes. *)

type t

val page_size : int
(** 4096 bytes. *)

val create : size:int -> t
(** @raise Invalid_argument unless [size] is a positive multiple of the
    page size. *)

val size : t -> int
val read : t -> addr:int -> len:int -> string
(** @raise Invalid_argument on out-of-range access. *)

val write : t -> addr:int -> string -> unit
val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_u16_le : t -> int -> int
(** Little-endian 16-bit read (the SLB header words are 16-bit values). *)

val write_u16_le : t -> int -> int -> unit
val zero : t -> addr:int -> len:int -> unit
(** Zeroize a region, as the SLB Core's cleanup phase does. *)

val page_of_addr : int -> int
val pages_of_range : addr:int -> len:int -> int * int
(** [(first_page, last_page)] covered by the byte range.
    @raise Invalid_argument on an empty range. *)

val find_pattern : t -> string -> int option
(** Linear scan for a byte pattern; used by the simulated adversary to
    hunt for secrets left in memory. Returns the first match address. *)
