(** Simulated CPU cores.

    Models the architectural state Flicker's correctness depends on:
    privilege ring, interrupt flag, paging state, segment registers, and
    the multi-core bring-up constraints of SKINIT (it must run on the Boot
    Strap Processor with every Application Processor parked in the
    INIT-received state, Section 4.2 "Suspend OS"). *)

type role = Bsp | Ap

type run_state =
  | Running  (** executing OS-scheduled work *)
  | Descheduled  (** idled via CPU hotplug, still accepting work *)
  | Wait_for_sipi  (** received INIT IPI; parked for SKINIT handshake *)

type mode =
  | Long_mode  (** normal 64-bit OS operation (paging on) *)
  | Flat_protected  (** flat 32-bit protected mode, paging off: SKINIT entry *)

type segment = { base : int; limit : int }
(** Simplified descriptor: byte-granular base and limit. *)

type core = {
  id : int;
  role : role;
  mutable run_state : run_state;
  mutable ring : int;
  mutable interrupts_enabled : bool;
  mutable mode : mode;
  mutable paging_enabled : bool;
  mutable cr3 : int;
  mutable cs : segment;
  mutable ds : segment;
  mutable ss : segment;
  mutable debug_enabled : bool;
}

type t

val create : cores:int -> t
(** Core 0 is the BSP; the rest are APs.
    @raise Invalid_argument if [cores < 1]. *)

val bsp : t -> core
val aps : t -> core list
val all : t -> core list
val core : t -> int -> core

val flat_segment : int -> segment
(** A segment covering all of a [size]-byte memory. *)

val segment_contains : segment -> addr:int -> len:int -> bool
(** Whether an access at [addr..addr+len-1], expressed relative to the
    segment base, stays within the limit. *)

val all_aps_parked : t -> bool
(** Precondition for SKINIT on a multi-core system. *)
