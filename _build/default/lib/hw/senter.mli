(** Intel TXT late launch: GETSEC[SENTER] (Section 2.4).

    The paper implements Flicker on AMD SVM but notes that "Intel's TXT
    technology functions analogously". The architectural difference this
    simulator models is the two-stage measurement: SENTER first loads and
    measures a chipset-specific Authenticated Code Module (the SINIT
    ACM), which then measures and launches the Measured Launch
    Environment (Flicker's SLB). Both measurements land in the dynamic
    PCR chain, so a verifier expecting a TXT launch must account for the
    extra ACM link. (Real TXT splits the two across PCRs 17 and 18; the
    simulator keeps the single-register chain of its SVM model and
    documents the simplification in DESIGN.md.)

    Everything else — DEV-equivalent DMA protection (TXT's NoDMA/PMR),
    interrupt and debug lockout, the flat-mode entry — matches SKINIT. *)

exception Senter_error of string

type launch = {
  mle_base : int;
  mle_length : int;
  entry_point : int;
  acm_measurement : string;  (** SHA-1 of the SINIT ACM *)
  protected_base : int;
  protected_len : int;
}

val default_acm : string
(** A stand-in SINIT ACM image (vendor-supplied binary on real hardware);
    deterministic so measurements are reproducible. *)

val execute : Machine.t -> slb_base:int -> acm:string -> launch
(** Run the SENTER sequence on the MLE at [slb_base].
    @raise Senter_error under the same preconditions as SKINIT, plus an
    empty ACM. *)

val teardown_protection : Machine.t -> launch -> unit
