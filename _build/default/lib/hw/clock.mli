(** Simulated wall clock.

    The original evaluation measured real TPM and CPU latencies with RDTSC;
    this reproduction instead charges calibrated latencies (see {!Timing})
    against a simulated clock, so every table in the paper can be
    regenerated deterministically. Time is in milliseconds. *)

type t

val create : unit -> t
val now : t -> float
(** Milliseconds since machine power-on. *)

val advance : t -> float -> unit
(** [advance t ms] moves time forward. @raise Invalid_argument on a
    negative amount. *)

type span = { started_at : float; ended_at : float }

val time : t -> (unit -> 'a) -> 'a * span
(** [time t f] runs [f] and reports the simulated interval it consumed
    (everything [f] charged via [advance]). *)

val duration : span -> float
