type tpm_hooks = {
  dynamic_pcr_reset : unit -> unit;
  measure_into_pcr17 : string -> unit;
}

type event = { at : float; detail : string }

type t = {
  memory : Memory.t;
  dev : Dev.t;
  cpus : Cpu.t;
  clock : Clock.t;
  timing : Timing.t;
  mutable tpm_hooks : tpm_hooks option;
  mutable events : event list;
}

let create ?(memory_size = 16 * 1024 * 1024) ?(cores = 2) timing =
  let memory = Memory.create ~size:memory_size in
  {
    memory;
    dev = Dev.create ~pages:(memory_size / Memory.page_size);
    cpus = Cpu.create ~cores;
    clock = Clock.create ();
    timing;
    tpm_hooks = None;
    events = [];
  }

let set_tpm_hooks t hooks = t.tpm_hooks <- Some hooks

let log_event t detail =
  t.events <- { at = Clock.now t.clock; detail } :: t.events;
  Logs.debug (fun m -> m "[%.3f ms] %s" (Clock.now t.clock) detail)

let events_between t ~since =
  List.rev (List.filter (fun e -> e.at >= since) t.events)

let charge t ms = Clock.advance t.clock ms
let charge_sha1 t ~bytes = charge t (Timing.sha1_ms t.timing ~bytes)
