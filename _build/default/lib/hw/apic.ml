let deschedule_aps (m : Machine.t) =
  List.iter
    (fun (c : Cpu.core) ->
      if c.run_state = Cpu.Running then c.run_state <- Cpu.Descheduled)
    (Cpu.aps m.cpus);
  Machine.log_event m "apic: APs descheduled via CPU hotplug"

let send_init_ipi (m : Machine.t) =
  List.iter
    (fun (c : Cpu.core) ->
      match c.run_state with
      | Cpu.Running ->
          failwith
            (Printf.sprintf "apic: INIT IPI to busy AP %d (deschedule it first)" c.id)
      | Cpu.Descheduled | Cpu.Wait_for_sipi -> c.run_state <- Cpu.Wait_for_sipi)
    (Cpu.aps m.cpus);
  Machine.log_event m "apic: INIT IPI delivered to all APs"

let release_aps (m : Machine.t) =
  List.iter (fun (c : Cpu.core) -> c.run_state <- Cpu.Running) (Cpu.aps m.cpus);
  Machine.log_event m "apic: APs released"
