module Pal = Flicker_slb.Pal

type func = {
  fname : string;
  calls : string list;
  uses_types : string list;
  body : string;
  loc : int;
}

type typedef = { tname : string; type_depends : string list; definition : string }
type program = { functions : func list; types : typedef list }

type advice =
  | Eliminate
  | Link_module of Pal.module_kind
  | Inline_replacement of string
  | Forbidden of string

let stdlib_advice name =
  let crypto_prefixes = [ "rsa_"; "sha1"; "sha512"; "md5"; "aes_"; "rc4_"; "hmac" ] in
  let tpm_prefixes = [ "TPM_"; "Tspi_" ] in
  let has_prefix p = String.length name >= String.length p
                     && String.sub name 0 (String.length p) = p in
  match name with
  | "printf" | "fprintf" | "puts" | "putchar" | "perror" -> Some Eliminate
  | "malloc" | "free" | "realloc" | "calloc" -> Some (Link_module Pal.Memory_management)
  | "memcpy" | "memset" | "memcmp" | "strlen" | "strcmp" | "strncpy" ->
      Some (Inline_replacement ("freestanding " ^ name ^ " from the SLB Core support code"))
  | "socket" | "connect" | "send" | "recv" | "read" | "write" | "open" | "close" ->
      Some
        (Forbidden
           (name
          ^ " needs the OS; restructure into multiple Flicker sessions with sealed state \
             (Section 4.3)"))
  | "fork" | "exec" | "pthread_create" ->
      Some (Forbidden (name ^ ": no processes or threads inside a PAL"))
  | "rand" | "srand" | "random" ->
      Some (Inline_replacement "TPM GetRandom via the TPM Utilities module")
  | _ ->
      if List.exists has_prefix crypto_prefixes then Some (Link_module Pal.Crypto)
      else if List.exists has_prefix tpm_prefixes then Some (Link_module Pal.Tpm_utilities)
      else None

type extraction = {
  target : string;
  required_functions : func list;
  required_types : typedef list;
  stdlib_calls : (string * advice) list;
  unresolved : string list;
  extracted_loc : int;
}

let extract program ~target =
  let lookup name = List.find_opt (fun f -> f.fname = name) program.functions in
  match lookup target with
  | None -> Error (Printf.sprintf "target function %s is not defined in the program" target)
  | Some _ ->
      (* DFS producing callees-first ordering, classifying externals *)
      let visited = Hashtbl.create 16 in
      let ordered = ref [] in
      let stdlib = ref [] in
      let unresolved = ref [] in
      let rec visit name =
        if not (Hashtbl.mem visited name) then begin
          Hashtbl.replace visited name ();
          match lookup name with
          | Some f ->
              List.iter visit f.calls;
              ordered := f :: !ordered
          | None -> (
              match stdlib_advice name with
              | Some advice -> stdlib := (name, advice) :: !stdlib
              | None -> unresolved := name :: !unresolved)
        end
      in
      visit target;
      let required_functions = List.rev !ordered in
      (* type closure over everything the slice touches *)
      let type_lookup name = List.find_opt (fun t -> t.tname = name) program.types in
      let tvisited = Hashtbl.create 16 in
      let ttypes = ref [] in
      let rec tvisit name =
        if not (Hashtbl.mem tvisited name) then begin
          Hashtbl.replace tvisited name ();
          match type_lookup name with
          | Some t ->
              List.iter tvisit t.type_depends;
              ttypes := t :: !ttypes
          | None -> ()
        end
      in
      List.iter (fun f -> List.iter tvisit f.uses_types) required_functions;
      Ok
        {
          target;
          required_functions;
          required_types = List.rev !ttypes;
          stdlib_calls = List.sort compare !stdlib;
          unresolved = List.sort compare !unresolved;
          extracted_loc = List.fold_left (fun acc f -> acc + f.loc) 0 required_functions;
        }

let suggested_modules extraction =
  List.sort_uniq compare
    (List.filter_map
       (fun (_, advice) ->
         match advice with Link_module m -> Some m | _ -> None)
       extraction.stdlib_calls)

let has_blockers extraction =
  List.exists
    (fun (_, advice) -> match advice with Forbidden _ -> true | _ -> false)
    extraction.stdlib_calls

let advice_to_string = function
  | Eliminate -> "eliminate the call"
  | Link_module m -> "link the " ^ (Pal.info m).Pal.module_name ^ " module"
  | Inline_replacement r -> "replace with " ^ r
  | Forbidden why -> "BLOCKER: " ^ why

let render_standalone extraction =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "/* standalone PAL program extracted for %s (%d LOC) */\n"
       extraction.target extraction.extracted_loc);
  List.iter
    (fun (name, advice) ->
      Buffer.add_string buf (Printf.sprintf "/* stdlib: %s -> %s */\n" name (advice_to_string advice)))
    extraction.stdlib_calls;
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "/* UNRESOLVED: %s */\n" name))
    extraction.unresolved;
  Buffer.add_char buf '\n';
  List.iter
    (fun t -> Buffer.add_string buf (t.definition ^ "\n"))
    extraction.required_types;
  Buffer.add_char buf '\n';
  List.iter (fun f -> Buffer.add_string buf (f.body ^ "\n")) extraction.required_functions;
  Buffer.contents buf

let report fmt extraction =
  Format.fprintf fmt "extraction for %s:@." extraction.target;
  Format.fprintf fmt "  functions: %d (%d LOC)@."
    (List.length extraction.required_functions)
    extraction.extracted_loc;
  Format.fprintf fmt "  types: %d@." (List.length extraction.required_types);
  List.iter
    (fun (name, advice) ->
      Format.fprintf fmt "  stdlib %-12s %s@." name (advice_to_string advice))
    extraction.stdlib_calls;
  List.iter
    (fun name -> Format.fprintf fmt "  unresolved: %s (supply an implementation)@." name)
    extraction.unresolved;
  match suggested_modules extraction with
  | [] -> ()
  | mods ->
      Format.fprintf fmt "  suggested PAL modules: %s@."
        (String.concat ", " (List.map (fun m -> (Pal.info m).Pal.module_name) mods))
