lib/extract/extract.mli: Flicker_slb Format
