lib/extract/extract.ml: Buffer Flicker_slb Format Hashtbl List Printf String
