(** Saved execution state of the untrusted OS.

    SKINIT destroys the executing context, so the flicker-module snapshots
    what the SLB Core needs to bring Linux back: the page-table base (CR3),
    the segment registers, and the interrupt flag (Section 4.2,
    "Suspend OS" / "Resume OS"). *)

type saved

val save : Flicker_hw.Machine.t -> Kernel.t -> saved
(** Snapshot the BSP state and the kernel's page-table root. *)

val restore : Flicker_hw.Machine.t -> Kernel.t -> saved -> unit
(** Reload segments covering all of memory, re-enable paging with the
    saved CR3, restore long mode, and re-enable interrupts. *)

val saved_cr3 : saved -> int
