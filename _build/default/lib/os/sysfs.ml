type t = (string, string) Hashtbl.t

let create () : t = Hashtbl.create 8
let write t ~path data = Hashtbl.replace t path data
let read t ~path = Hashtbl.find_opt t path

let read_exn t ~path =
  match read t ~path with Some v -> v | None -> raise Not_found

let remove t ~path = Hashtbl.remove t path
let paths t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])
let standard_entries = [ "control"; "inputs"; "outputs"; "slb" ]
