module Cpu = Flicker_hw.Cpu
module Machine = Flicker_hw.Machine

type saved = {
  cr3 : int;
  cs : Cpu.segment;
  ds : Cpu.segment;
  ss : Cpu.segment;
  interrupts_enabled : bool;
  mode : Cpu.mode;
  paging_enabled : bool;
}

let save (m : Machine.t) kernel =
  let bsp = Cpu.bsp m.Machine.cpus in
  Machine.log_event m "flicker-module: OS state saved";
  {
    cr3 = Kernel.page_table_root kernel;
    cs = bsp.Cpu.cs;
    ds = bsp.Cpu.ds;
    ss = bsp.Cpu.ss;
    interrupts_enabled = bsp.Cpu.interrupts_enabled;
    mode = bsp.Cpu.mode;
    paging_enabled = bsp.Cpu.paging_enabled;
  }

let restore (m : Machine.t) kernel saved =
  let bsp = Cpu.bsp m.Machine.cpus in
  (* Mirrors the SLB Core's resume path: segments first (via the call
     gate), then paging with a skeleton table, then the saved CR3. *)
  bsp.Cpu.cs <- saved.cs;
  bsp.Cpu.ds <- saved.ds;
  bsp.Cpu.ss <- saved.ss;
  bsp.Cpu.paging_enabled <- saved.paging_enabled;
  bsp.Cpu.cr3 <- saved.cr3;
  Kernel.set_page_table_root kernel saved.cr3;
  bsp.Cpu.mode <- saved.mode;
  bsp.Cpu.interrupts_enabled <- saved.interrupts_enabled;
  Machine.log_event m "flicker-module: OS state restored"

let saved_cr3 s = s.cr3
