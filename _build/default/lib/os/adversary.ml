module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Dma = Flicker_hw.Dma
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types

type report = { attack : string; succeeded : bool; detail : string }

let pp_report fmt r =
  Format.fprintf fmt "%s: %s (%s)" r.attack
    (if r.succeeded then "SUCCEEDED" else "failed")
    r.detail

let scan_memory (m : Machine.t) ~pattern =
  match Memory.find_pattern m.Machine.memory pattern with
  | Some addr ->
      {
        attack = "ring-0 memory scan";
        succeeded = true;
        detail = Printf.sprintf "secret found at %#x" addr;
      }
  | None ->
      {
        attack = "ring-0 memory scan";
        succeeded = false;
        detail = "secret not present in physical memory";
      }

let dma_read_probe dma ~addr ~len ~pattern =
  match Dma.read dma ~addr ~len with
  | Ok data ->
      let found =
        String.length pattern > 0
        && String.length data >= String.length pattern
        && (let limit = String.length data - String.length pattern in
            let rec scan i =
              i <= limit
              && (String.sub data i (String.length pattern) = pattern || scan (i + 1))
            in
            scan 0)
      in
      {
        attack = "DMA read probe";
        succeeded = found;
        detail =
          (if found then "secret exfiltrated via DMA" else "read allowed but no secret");
      }
  | Error reason -> { attack = "DMA read probe"; succeeded = false; detail = reason }

let dma_corrupt dma ~addr ~data =
  match Dma.write dma ~addr ~data with
  | Ok () ->
      { attack = "DMA corruption"; succeeded = true; detail = "memory overwritten" }
  | Error reason -> { attack = "DMA corruption"; succeeded = false; detail = reason }

let forge_pcr17 tpm ~target ~tries =
  let hit = ref false in
  List.iter
    (fun m ->
      match Tpm.pcr_extend tpm 17 m with
      | Ok v -> if v = target then hit := true
      | Error _ -> ())
    tries;
  let final =
    match Tpm.pcr_read tpm 17 with Ok v -> v | Error _ -> Tpm_types.zero_digest
  in
  {
    attack = "PCR 17 forgery via software extends";
    succeeded = !hit || final = target;
    detail =
      (if !hit then "reached target value: attestation broken"
       else "extends composed, target unreachable without SKINIT");
  }

let replay_ciphertext ~original ~stale victim =
  ignore original;
  match victim stale with
  | Ok _ ->
      {
        attack = "sealed-storage replay";
        succeeded = true;
        detail = "victim accepted stale state";
      }
  | Error _ ->
      {
        attack = "sealed-storage replay";
        succeeded = false;
        detail = "stale state rejected";
      }
