open Flicker_crypto

type t = {
  version : string;
  mutable text_segment : string;
  mutable syscall_table : (int * int) array; (* syscall number, handler address *)
  mutable loaded_modules : (string * string) list;
  mutable page_table_root : int;
  mutable compromised : bool;
}

let create rng ?(text_size = 64 * 1024) ?(module_count = 4) ~version () =
  let text_segment = Prng.bytes rng text_size in
  let syscall_table =
    Array.init 326 (fun i -> (i, 0xC0100000 + Prng.int_below rng 0x400000))
  in
  let loaded_modules =
    List.init module_count (fun i ->
        (Printf.sprintf "module_%d.ko" i, Prng.bytes rng (8 * 1024)))
  in
  {
    version;
    text_segment;
    syscall_table;
    loaded_modules;
    page_table_root = 0x1000;
    compromised = false;
  }

let version t = t.version
let text_segment t = t.text_segment

let syscall_table t =
  let buf = Buffer.create (Array.length t.syscall_table * 8) in
  Array.iter
    (fun (num, addr) ->
      Buffer.add_string buf (Util.be32_of_int num);
      Buffer.add_string buf (Util.be32_of_int addr))
    t.syscall_table;
  Buffer.contents buf

let loaded_modules t = t.loaded_modules

let measured_bytes t =
  String.length t.text_segment
  + String.length (syscall_table t)
  + List.fold_left (fun acc (_, code) -> acc + String.length code) 0 t.loaded_modules

let page_table_root t = t.page_table_root
let set_page_table_root t v = t.page_table_root <- v

let install_text_rootkit t =
  (* inline hook: overwrite the first bytes of some kernel function *)
  let offset = String.length t.text_segment / 3 in
  let patch = "\xe9\xde\xad\xbe\xef" (* jmp rootkit *) in
  t.text_segment <-
    String.sub t.text_segment 0 offset
    ^ patch
    ^ String.sub t.text_segment (offset + String.length patch)
        (String.length t.text_segment - offset - String.length patch);
  t.compromised <- true

let install_syscall_rootkit t =
  (* hijack sys_getdents (number 141) to hide files *)
  t.syscall_table <-
    Array.map (fun (num, addr) -> if num = 141 then (num, 0xDEADC0DE) else (num, addr))
      t.syscall_table;
  t.compromised <- true

let install_module_rootkit t =
  t.loaded_modules <- ("rootkit.ko", String.make 4096 '\x90') :: t.loaded_modules;
  t.compromised <- true

let is_compromised t = t.compromised
