(** The paper's adversary, made executable.

    Section 3.1: the attacker controls the OS (ring 0), all applications,
    and DMA-capable expansion hardware; it can invoke SKINIT itself and
    regains control between Flicker sessions. These functions mount those
    attacks so tests can assert both that each attack was attempted and
    that it failed (or, against an unprotected configuration, succeeded —
    the control condition). *)

type report = {
  attack : string;
  succeeded : bool;
  detail : string;
}

val pp_report : Format.formatter -> report -> unit

val scan_memory : Flicker_hw.Machine.t -> pattern:string -> report
(** Ring-0 scan of all physical memory for a secret. Succeeds iff the
    pattern is present — i.e., iff the PAL failed to erase it. *)

val dma_read_probe : Flicker_hw.Dma.t -> addr:int -> len:int -> pattern:string -> report
(** Malicious device reads memory hunting for [pattern]. *)

val dma_corrupt : Flicker_hw.Dma.t -> addr:int -> data:string -> report
(** Attempt to overwrite memory (e.g., patch the SLB before it runs). *)

val forge_pcr17 :
  Flicker_tpm.Tpm.t -> target:Flicker_tpm.Tpm_types.digest -> tries:string list -> report
(** Try to drive PCR 17 to [target] using software extends only (no
    SKINIT). Each element of [tries] is extended in turn; succeeds iff
    PCR 17 ever equals [target] — which would break attestation. *)

val replay_ciphertext : original:string -> stale:string -> (string -> ('a, 'e) result) -> report
(** Substitute a [stale] sealed blob for the [original] and report whether
    the victim accepted it ([Ok _]). *)
