open Flicker_crypto
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types

type event = {
  pcr_index : int;
  template_hash : Tpm_types.digest;
  component : string;
}

type t = { tpm : Tpm.t; mutable events : event list (* newest first *) }

let create tpm = { tpm; events = [] }

let measure t ~pcr ~component ~code =
  if pcr < 0 || pcr >= 17 then
    invalid_arg "Measured_boot.measure: IMA uses the static PCRs (0-16)";
  let template_hash = Sha1.digest code in
  (match Tpm.pcr_extend t.tpm pcr template_hash with
  | Ok _ -> ()
  | Error e ->
      failwith ("Measured_boot.measure: " ^ Tpm_types.error_to_string e));
  t.events <- { pcr_index = pcr; template_hash; component } :: t.events

let boot_sequence t kernel =
  measure t ~pcr:0 ~component:"BIOS" ~code:"simulated-bios-v1.02";
  measure t ~pcr:0 ~component:"option-ROMs" ~code:"vga+nic option roms";
  measure t ~pcr:4 ~component:"bootloader (GRUB stage2)" ~code:"grub-0.97";
  measure t ~pcr:4 ~component:"grub.conf" ~code:"kernel /vmlinuz root=/dev/sda1";
  measure t ~pcr:8
    ~component:(Printf.sprintf "vmlinuz-%s" (Kernel.version kernel))
    ~code:(Kernel.text_segment kernel);
  List.iter
    (fun (name, code) -> measure t ~pcr:10 ~component:name ~code)
    (Kernel.loaded_modules kernel);
  List.iter
    (fun (name, code) -> measure t ~pcr:10 ~component:name ~code)
    [
      ("/sbin/init", "init-binary");
      ("/etc/inittab", "id:5:initdefault:");
      ("/usr/sbin/sshd", "sshd-binary");
    ]

let run_application t ~name ~code = measure t ~pcr:10 ~component:name ~code

let log t = List.rev t.events

let pcrs_in_use t =
  Tpm_types.selection (List.map (fun e -> e.pcr_index) t.events)

let component_count t = List.length t.events
