(** The untrusted operating system's kernel image.

    Flicker treats the OS as adversarial; the simulator gives it concrete
    state so the applications have something real to work on: the rootkit
    detector hashes the text segment, system-call table, and loaded
    modules (Section 6.1), and the flicker-module saves/restores the
    kernel's paging state around a session. *)

type t

val create :
  Flicker_crypto.Prng.t ->
  ?text_size:int ->
  ?module_count:int ->
  version:string ->
  unit ->
  t
(** Deterministically generated kernel image. [text_size] defaults to
    64 KB (benchmarks use a realistic multi-megabyte image). *)

val version : t -> string
val text_segment : t -> string
val syscall_table : t -> string
(** Serialized syscall table (index, handler address pairs). *)

val loaded_modules : t -> (string * string) list
(** [(name, code)] for each loaded kernel module. *)

val measured_bytes : t -> int
(** Total size of everything the rootkit detector hashes. *)

val page_table_root : t -> int
val set_page_table_root : t -> int -> unit

(** {1 Rootkit installation (the attacks the detector must catch)} *)

val install_text_rootkit : t -> unit
(** Patch bytes inside the kernel text segment (inline hook). *)

val install_syscall_rootkit : t -> unit
(** Redirect a syscall-table entry (classic syscall hijack). *)

val install_module_rootkit : t -> unit
(** Load a malicious kernel module. *)

val is_compromised : t -> bool
