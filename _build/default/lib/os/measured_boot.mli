(** An IBM-IMA-style integrity measurement architecture (Section 2.1).

    The trusted-boot alternative Flicker argues against: every component
    loaded since power-on — BIOS, bootloader, kernel, modules, every
    application — is hashed into static PCRs with a log entry. The
    attestation is then a quote over those PCRs plus the log, and the
    verifier must assess *all* of it; one compromised entry taints
    everything after (Section 8's critique of IMA). Implemented so the
    repository can compare the two attestation models head-to-head. *)

type event = {
  pcr_index : int;
  template_hash : Flicker_tpm.Tpm_types.digest;  (** SHA-1 of the component *)
  component : string;  (** e.g., ["/sbin/init"] *)
}

type t

val create : Flicker_tpm.Tpm.t -> t
(** Fresh measurement agent over the TPM's static PCRs. The TPM should be
    in its post-reboot state. *)

val measure : t -> pcr:int -> component:string -> code:string -> unit
(** Hash [code], extend the PCR, append the log entry.
    @raise Invalid_argument for dynamic PCRs (17–23): IMA uses the static
    bank. *)

val boot_sequence : t -> Kernel.t -> unit
(** The standard chain: BIOS and option ROMs into PCR 0, bootloader into
    PCR 4, kernel text into PCR 8, modules and the early userland into
    PCR 10 — mirroring a Linux/IMA layout. *)

val run_application : t -> name:string -> code:string -> unit
(** Applications measured into PCR 10 as they execute, IMA-style. *)

val log : t -> event list
(** Oldest first. *)

val pcrs_in_use : t -> Flicker_tpm.Tpm_types.pcr_selection
val component_count : t -> int
(** How many entries a verifier must assess — the paper's
    "untold millions of lines" burden in measurable form. *)
