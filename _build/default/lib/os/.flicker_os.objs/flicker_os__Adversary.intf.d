lib/os/adversary.mli: Flicker_hw Flicker_tpm Format
