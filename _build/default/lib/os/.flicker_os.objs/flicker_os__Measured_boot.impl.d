lib/os/measured_boot.ml: Flicker_crypto Flicker_tpm Kernel List Printf Sha1
