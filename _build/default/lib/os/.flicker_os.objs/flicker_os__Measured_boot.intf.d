lib/os/measured_boot.mli: Flicker_tpm Kernel
