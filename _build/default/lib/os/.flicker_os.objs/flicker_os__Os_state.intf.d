lib/os/os_state.mli: Flicker_hw Kernel
