lib/os/scheduler.ml: Flicker_hw List
