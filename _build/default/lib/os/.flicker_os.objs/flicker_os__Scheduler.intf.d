lib/os/scheduler.mli: Flicker_hw
