lib/os/kernel.ml: Array Buffer Flicker_crypto List Printf Prng String Util
