lib/os/kernel.mli: Flicker_crypto
