lib/os/os_state.ml: Flicker_hw Kernel
