lib/os/sysfs.mli:
