lib/os/sysfs.ml: Hashtbl List String
