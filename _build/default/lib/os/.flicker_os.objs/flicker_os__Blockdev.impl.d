lib/os/blockdev.ml: Buffer Flicker_crypto Flicker_hw Hashtbl List Md5 Printf Scheduler String Util
