lib/os/blockdev.mli: Flicker_hw Scheduler
