lib/os/adversary.ml: Flicker_hw Flicker_tpm Format List Printf String
