(** The flicker-module's sysfs interface.

    Applications drive Flicker through four virtual-filesystem entries:
    [slb] (the uninitialized SLB), [inputs], [control] (writing starts a
    session), and [outputs] (Section 4.2, "Accept Uninitialized SLB and
    Inputs"). This module is the generic key/value filesystem; the entry
    semantics live in [Flicker_core.Session]. *)

type t

val create : unit -> t
val write : t -> path:string -> string -> unit
val read : t -> path:string -> string option
val read_exn : t -> path:string -> string
(** @raise Not_found when the entry is absent. *)

val remove : t -> path:string -> unit
val paths : t -> string list
(** Sorted. *)

val standard_entries : string list
(** ["control"; "inputs"; "outputs"; "slb"]. *)
