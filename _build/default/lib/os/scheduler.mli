(** A small multi-core process scheduler for the untrusted OS.

    Exists to reproduce the paper's system-impact experiments: CPU hotplug
    removes the APs from scheduling before a session (Section 4.2), a
    Flicker session freezes all progress (Section 7.5), and Table 3
    measures a kernel build's wall-clock time under periodic detector
    runs. Work is measured in single-core CPU-milliseconds. *)

type process = {
  pid : int;
  name : string;
  mutable remaining_ms : float;
  mutable started_at : float;
  mutable completed_at : float option;
}

type t

val create : Flicker_hw.Machine.t -> t
val spawn : t -> name:string -> work_ms:float -> process
val active_processes : t -> process list
val online_cores : t -> int
(** Cores currently accepting work ([Running] state). *)

val run_for : t -> float -> unit
(** Advance the wall clock by [ms], distributing core time fairly over
    runnable processes. Makes no progress while the OS is suspended.
    Progress accounting is driven by clock deltas, so time that passes
    elsewhere in the simulation while the OS is live (a TPM quote, a DMA
    transfer) also lets processes run — only a Flicker session freezes
    them, which is exactly the Section 7.5 behaviour. *)

val run_until_complete : t -> process -> unit
(** @raise Failure if the OS is suspended or no core is online. *)

val suspend : t -> unit
(** Enter a Flicker session: no process makes progress. *)

val resume : t -> unit
val is_suspended : t -> bool
