lib/apps/distcomp.mli: Flicker_core Flicker_hw Flicker_slb
