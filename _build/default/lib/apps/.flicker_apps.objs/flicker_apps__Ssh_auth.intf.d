lib/apps/ssh_auth.mli: Flicker_core Flicker_crypto Flicker_slb
