lib/apps/rootkit_detector.mli: Flicker_core Flicker_crypto Flicker_slb
