lib/apps/distcomp.ml: Bytes Char Flicker_core Flicker_crypto Flicker_hw Flicker_slb Flicker_tpm Format Hmac List Printf Result Sha1 String Util
