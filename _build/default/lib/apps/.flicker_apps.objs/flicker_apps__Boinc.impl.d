lib/apps/boinc.ml: Distcomp Flicker_core Flicker_crypto Flicker_slb List Printf Prng Rsa Util
