lib/apps/cert_authority.mli: Flicker_core Flicker_crypto Flicker_slb
