lib/apps/cert_authority.ml: Flicker_core Flicker_crypto Flicker_slb Flicker_tpm Format Hash Hashtbl List Pkcs1 Printf Prng Rsa String Util
