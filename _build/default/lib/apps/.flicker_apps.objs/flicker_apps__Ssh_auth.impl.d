lib/apps/ssh_auth.ml: Flicker_core Flicker_crypto Flicker_hw Flicker_slb Format Hashtbl List Md5crypt Pkcs1 Printf Prng Rsa Sha1 String Util
