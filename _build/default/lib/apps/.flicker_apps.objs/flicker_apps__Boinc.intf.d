lib/apps/boinc.mli: Distcomp Flicker_core Flicker_crypto
