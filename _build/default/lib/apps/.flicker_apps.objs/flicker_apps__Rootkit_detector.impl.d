lib/apps/rootkit_detector.ml: Flicker_core Flicker_crypto Flicker_hw Flicker_os Flicker_slb Format List Sha1 String Util
