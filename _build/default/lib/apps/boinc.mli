(** The BOINC-style distributed-computing server (Section 6.2).

    The paper's point is what the server gains: instead of issuing every
    work unit to several volunteers and voting, it issues each unit once
    and verifies the returned attestation — the quote proves the genuine
    factoring PAL ran under Flicker and extended exactly these results
    into PCR 17, so the server "has a high degree of confidence in the
    results and need not waste computation on redundant work units". *)

type t

val create :
  ca_key:Flicker_crypto.Rsa.public ->
  number:int ->
  lo:int ->
  hi:int ->
  unit_size:int ->
  t
(** Split the candidate range [lo..hi] into units of [unit_size]
    candidates. [ca_key] is the Privacy CA the server trusts. *)

val next_unit : t -> Distcomp.work_unit option
(** Hand out the next unassigned unit (ranges are tracked server-side). *)

val fresh_nonce : t -> string
(** The challenge the volunteer's final session must be run against. *)

type submission = {
  final_state : Distcomp.state;
  pal_inputs : string;  (** exact input bytes of the final session *)
  evidence : Flicker_core.Attestation.evidence;
  sub_nonce : string;
  volunteer_slb_base : int;
}

type rejection =
  | Bad_attestation of Flicker_core.Verifier.failure
  | Wrong_unit of string  (** state does not match an outstanding unit *)
  | Not_finished
  | Unknown_nonce  (** nonce was not issued by this server (replay) *)
  | Bogus_divisor of int  (** spot check: claimed divisor does not divide *)

val rejection_to_string : rejection -> string

val submit : t -> submission -> (unit, rejection) result
(** Verify and record a completed unit. On [Ok], the unit's divisors are
    accepted without re-execution. *)

val accepted_divisors : t -> int list
(** Sorted divisors across all accepted units. *)

val outstanding_units : t -> int
(** Units handed out but not yet accepted. *)

val complete : t -> bool
