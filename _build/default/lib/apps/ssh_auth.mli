(** Flicker-protected SSH password authentication (Section 6.3.1,
    Figure 7).

    One PAL, two modes, one measurement — which is what lets session one
    seal the channel private key "for a future invocation of the same
    PAL". Setup mode generates the keypair and outputs the public key;
    the attestation convinces the client the private key lives only
    inside this PAL. Login mode unseals the key, decrypts the
    client-encrypted {password, nonce}, checks the nonce, and outputs
    only [md5crypt(salt, password)] for comparison against /etc/passwd.
    The cleartext password exists on the server solely inside a Flicker
    session. *)

type server

val create_server :
  Flicker_core.Platform.t ->
  ?key_bits:int ->
  users:(string * string) list ->
  unit ->
  server
(** [users] are (name, password) pairs; the server stores only salted
    md5crypt hashes, as a real /etc/passwd does. [key_bits] defaults
    to 1024. *)

val ssh_pal : key_bits:int -> Flicker_slb.Pal.t
(** The SSH PAL (memoized per key size). *)

val passwd_entry : server -> user:string -> (string * string) option
(** [(salt, crypted)] for a user. *)

type setup_result = {
  evidence : Flicker_core.Attestation.evidence;
  setup_outcome : Flicker_core.Session.outcome;
}

val server_setup : server -> nonce:string -> (setup_result, string) result
(** First Flicker session: create the channel keypair (key generation
    dominates: Figure 9a). Stores the sealed private key server-side. *)

type login_result = {
  granted : bool;
  login_outcome : Flicker_core.Session.outcome;
}

val server_login :
  server -> user:string -> ciphertext:string -> nonce:string -> (login_result, string) result
(** Second Flicker session (Figure 9b): decrypt, hash, compare. *)

(** The client system (no Flicker hardware needed). *)
module Client : sig
  type t

  val create :
    rng:Flicker_crypto.Prng.t ->
    ca_key:Flicker_crypto.Rsa.public ->
    server_slb_base:int ->
    ?key_bits:int ->
    unit ->
    t

  val accept_server_key :
    t -> nonce:string -> Flicker_core.Attestation.evidence -> (unit, string) result
  (** Verify the setup attestation; remembers K_PAL on success. *)

  val encrypt_password : t -> password:string -> nonce:string -> (string, string) result
  (** [encrypt_KPAL({password, nonce})] per Figure 7. *)
end

val authenticate :
  server ->
  Client.t ->
  user:string ->
  password:string ->
  (bool * float, string) result
(** Drive the full Figure 7 protocol over the simulated network,
    reusing the server's channel key when one exists. Returns whether
    login succeeded and the total wall-clock ms. *)

(** A client machine that itself has Flicker hardware — the paper's
    "we are investigating techniques for utilizing Flicker on the client
    side". The password encryption runs inside a client-side Flicker
    session, so after the session the cleartext password has been erased
    from the client's memory too (with a plain client, "a compromise of
    the client may leak the user's password"). The remaining exposure is
    the input path from the keyboard into the session, which the paper
    leaves open. *)
module Flicker_client : sig
  type t

  val create :
    Flicker_core.Platform.t ->
    ca_key:Flicker_crypto.Rsa.public ->
    server_slb_base:int ->
    ?key_bits:int ->
    unit ->
    t

  val accept_server_key :
    t -> nonce:string -> Flicker_core.Attestation.evidence -> (unit, string) result

  val encrypt_password :
    t -> password:string -> nonce:string -> (string, string) result
  (** Runs a Flicker session on the client platform; the PAL performs the
      PKCS#1 encryption and the SLB Core erases the password during
      cleanup. *)

  val encryption_pal : unit -> Flicker_slb.Pal.t
  (** Exposed so a paranoid server (or user) can attest the client-side
      encryption too. *)
end
