(** The Flicker rootkit detector (Section 6.1).

    A network administrator queries a remote, possibly compromised host.
    The host runs a detector PAL that hashes the kernel text segment,
    system-call table, and loaded modules straight out of physical memory
    (the PAL runs without OS protection, so it sees everything), extends
    the result into PCR 17, and outputs it. The attestation proves the
    genuine detector ran under Flicker and returned exactly this hash;
    the administrator compares it against the known-good value for that
    kernel. *)

type deployment

val deploy_on : Flicker_core.Platform.t -> deployment
(** Lay the kernel image out in physical memory (text, syscall table,
    modules at fixed addresses) and record the pristine measurement. *)

val sync : deployment -> unit
(** Re-write the (possibly rootkitted) kernel state into memory — run
    after mutating the kernel so the detector sees the live image. *)

val known_good_hash : deployment -> string
(** SHA-1 of the pristine kernel regions. *)

val detector_pal : unit -> Flicker_slb.Pal.t
val measured_region_bytes : deployment -> int

type scan_result = {
  reported_hash : string;
  outcome : Flicker_core.Session.outcome;
  evidence : Flicker_core.Attestation.evidence;
  nonce : string;
}

val scan : deployment -> nonce:string -> (scan_result, string) result
(** One detection query on the host: session + attestation. *)

type admin_verdict =
  | Clean
  | Rootkit_detected of { expected : string; got : string }
  | Attestation_rejected of Flicker_core.Verifier.failure

val admin_check :
  deployment ->
  ca_key:Flicker_crypto.Rsa.public ->
  scan_result ->
  admin_verdict
(** The administrator's side: verify the attestation, then compare the
    reported hash with the known-good value. *)

val remote_query :
  deployment -> ca_key:Flicker_crypto.Rsa.public -> (admin_verdict * float, string) result
(** Full end-to-end query over the simulated network (Section 7.2's
    1.02 s experiment): returns the verdict and total latency in ms. *)
