(** Flicker-protected distributed computing (Section 6.2).

    A BOINC-style server hands out work units — ranges of candidate
    divisors for a large number — to untrusted clients. Each client
    processes its unit inside Flicker sessions: the first session draws a
    160-bit HMAC key from the TPM RNG and seals it to the PAL; every
    subsequent session unseals the key, verifies the MAC on the state the
    untrusted OS stored, works for a bounded slice (so the OS can
    multitask), MACs the new state, and yields. The final session extends
    the results into PCR 17 so the attested quote proves they came from
    the genuine PAL — replacing the usual redundant re-execution. *)

type work_unit = {
  unit_id : int;
  number : int;  (** the number being factored *)
  lo : int;  (** first candidate divisor, inclusive *)
  hi : int;  (** last candidate divisor, inclusive *)
}

type state = {
  unit_ : work_unit;
  next_candidate : int;
  divisors_found : int list;
  finished : bool;
}

val encode_state : state -> string
val decode_state : string -> (state, string) result

val pal : unit -> Flicker_slb.Pal.t
(** The distributed-computing PAL (memoized). *)

type client

val create_client : Flicker_core.Platform.t -> client

type step = {
  outcome : Flicker_core.Session.outcome;
  state : state;
  session_overhead_ms : float;  (** SKINIT + unseal + MAC check: everything before useful work *)
}

val start : ?nonce:string -> client -> work_unit -> slice_ms:float -> (step, string) result
(** First session: key generation + seal, then the first work slice. *)

val resume : ?nonce:string -> client -> state -> slice_ms:float -> (step, string) result
(** One more session over the stored state.
    @raise Invalid_argument if the state is already finished. *)

val resume_raw :
  ?nonce:string -> client -> state_blob:string -> slice_ms:float -> (step, string) result
(** Like {!resume} but feeding raw encoded state — what the untrusted OS
    actually hands the PAL. Used to demonstrate that tampered state is
    rejected by the MAC check. *)

val resume_attested :
  nonce:string -> client -> state -> slice_ms:float -> (step * string, string) result
(** A resume session run against a server-supplied nonce; also returns the
    exact PAL input bytes so the server can replay the measurement chain
    when verifying the quote. *)

val result_extend_of_state : state -> string
(** The value the PAL extends into PCR 17 when it finishes a unit —
    what a verifying server lists in its expectation's [pal_extends]. *)

val run_to_completion :
  client -> work_unit -> slice_ms:float -> (state * int, string) result
(** Drive sessions until the unit finishes; returns the final state and
    the number of sessions used. *)

val tamper_state : string -> string
(** Adversary helper: flip a byte in an encoded-state blob (the MAC must
    catch it). *)

val candidates_per_ms : float
(** Calibration of useful work: candidate divisors tested per simulated
    millisecond. *)

val efficiency : Flicker_hw.Timing.t -> work_ms:float -> float
(** Fraction of a session spent on useful work (Figure 8's Flicker
    curve): work / (work + SKINIT + Unseal overhead). *)

val replication_efficiency : int -> float
(** 1/k: the efficiency of k-way redundant execution. *)
