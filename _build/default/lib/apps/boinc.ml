open Flicker_crypto
module Verifier = Flicker_core.Verifier
module Attestation = Flicker_core.Attestation
module Builder = Flicker_slb.Builder

type t = {
  ca_key : Rsa.public;
  number : int;
  mutable pending : Distcomp.work_unit list;
  mutable outstanding : (int * Distcomp.work_unit) list; (* unit_id keyed *)
  mutable accepted : (int * int list) list; (* unit_id, divisors *)
  mutable issued_nonces : string list;
  nonce_rng : Prng.t;
}

let create ~ca_key ~number ~lo ~hi ~unit_size =
  if unit_size <= 0 then invalid_arg "Boinc.create: unit size must be positive";
  let rec split id lo acc =
    if lo > hi then List.rev acc
    else begin
      let unit_hi = min hi (lo + unit_size - 1) in
      split (id + 1) (unit_hi + 1)
        ({ Distcomp.unit_id = id; number; lo; hi = unit_hi } :: acc)
    end
  in
  {
    ca_key;
    number;
    pending = split 1 lo [];
    outstanding = [];
    accepted = [];
    issued_nonces = [];
    nonce_rng = Prng.create ~seed:(Printf.sprintf "boinc-server-%d-%d-%d" number lo hi);
  }

let next_unit t =
  match t.pending with
  | [] -> None
  | unit_ :: rest ->
      t.pending <- rest;
      t.outstanding <- (unit_.Distcomp.unit_id, unit_) :: t.outstanding;
      Some unit_

let fresh_nonce t =
  let nonce = Prng.bytes t.nonce_rng 20 in
  t.issued_nonces <- nonce :: t.issued_nonces;
  nonce

type submission = {
  final_state : Distcomp.state;
  pal_inputs : string;
  evidence : Attestation.evidence;
  sub_nonce : string;
  volunteer_slb_base : int;
}

type rejection =
  | Bad_attestation of Verifier.failure
  | Wrong_unit of string
  | Not_finished
  | Unknown_nonce
  | Bogus_divisor of int

let rejection_to_string = function
  | Bad_attestation f -> "attestation rejected: " ^ Verifier.failure_to_string f
  | Wrong_unit msg -> "work-unit mismatch: " ^ msg
  | Not_finished -> "unit not finished"
  | Unknown_nonce -> "nonce was not issued by this server"
  | Bogus_divisor d -> Printf.sprintf "claimed divisor %d does not divide the target" d

let submit t submission =
  let st = submission.final_state in
  if not (List.mem submission.sub_nonce t.issued_nonces) then Error Unknown_nonce
  else if not st.Distcomp.finished then Error Not_finished
  else begin
    match List.assoc_opt st.Distcomp.unit_.Distcomp.unit_id t.outstanding with
    | None -> Error (Wrong_unit "no such outstanding unit")
    | Some unit_ ->
        if st.Distcomp.unit_ <> unit_ then
          Error (Wrong_unit "unit parameters altered")
        else begin
          match
            List.find_opt (fun d -> t.number mod d <> 0) st.Distcomp.divisors_found
          with
          | Some bogus -> Error (Bogus_divisor bogus)
          | None ->
              (* the quote must cover: the genuine PAL, the exact final
                 session inputs, the outputs embedding this state, and the
                 PAL's own extend of the result hash *)
              let expectation =
                Verifier.expect ~pal:(Distcomp.pal ()) ~flavor:Builder.Optimized
                  ~pal_extends:[ Distcomp.result_extend_of_state st ]
                  ~slb_base:submission.volunteer_slb_base ~nonce:submission.sub_nonce ()
              in
              (match Verifier.verify ~ca_key:t.ca_key expectation submission.evidence with
              | Error f -> Error (Bad_attestation f)
              | Ok () -> (
                  (* cross-check: the attested outputs embed this state *)
                  match
                    Util.decode_fields submission.evidence.Attestation.claimed_outputs
                  with
                  | Ok [ "ok"; _sealed; state_blob; _mac; _prework ]
                    when state_blob = Distcomp.encode_state st ->
                      t.outstanding <-
                        List.remove_assoc st.Distcomp.unit_.Distcomp.unit_id t.outstanding;
                      t.accepted <-
                        (st.Distcomp.unit_.Distcomp.unit_id, st.Distcomp.divisors_found)
                        :: t.accepted;
                      t.issued_nonces <-
                        List.filter (fun n -> n <> submission.sub_nonce) t.issued_nonces;
                      Ok ()
                  | _ -> Error (Wrong_unit "attested outputs do not embed this state")))
        end
  end

let accepted_divisors t =
  List.sort_uniq compare (List.concat_map snd t.accepted)

let outstanding_units t = List.length t.outstanding
let complete t = t.pending = [] && t.outstanding = []
