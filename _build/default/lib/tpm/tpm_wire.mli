(** The TPM's byte-level command transport.

    A real TPM is a memory-mapped device that consumes and produces
    marshaled command buffers: a 2-byte tag, a 4-byte length, a 4-byte
    ordinal, then the ordinal-specific body (TPM 1.2 Part 3). The paper's
    216-line TPM driver exists to move exactly these buffers. This module
    provides the marshaling and a [dispatch] that runs a raw request
    buffer against a {!Tpm.t}, so the simulated driver can transport real
    bytes instead of calling OCaml functions — and tests can exercise the
    malformed-buffer handling a driver must survive. *)

type command =
  | Pcr_read of int
  | Pcr_extend of int * string
  | Get_random of int
  | Quote of { nonce : string; selection : int list }
  | Oiap
  | Osap of { entity : string; no_osap : string }
  | Seal of { auth : Tpm.authorization; release : Tpm_types.pcr_composite; data : string }
  | Unseal of { auth : Tpm.authorization; blob : string }
  | Nv_read of int
  | Nv_write of int * string
  | Read_counter of int
  | Increment_counter of int
  | Get_capability_version

type response =
  | Digest_resp of string  (** PCR values, random bytes, version strings *)
  | Unit_resp
  | Quote_resp of Tpm.quote
  | Session_resp of { handle : int; nonce_even : string }
  | Osap_resp of { handle : int; nonce_even : string; ne_osap : string }
  | Blob_resp of string
  | Counter_resp of int
  | Error_resp of Tpm_types.error

(** TPM 1.2 ordinals for the supported command subset. *)
val ordinal_of_command : command -> int

val encode_command : command -> string
val decode_command : string -> (command, string) result
(** Rejects short buffers, bad tags, length mismatches, and unknown
    ordinals — everything a driver must not crash on. *)

val encode_response : response -> string
val decode_response : ordinal:int -> string -> (response, string) result
(** Decoding needs the request's ordinal to know the body shape, as a
    real driver does. *)

val dispatch : Tpm.t -> string -> string
(** The device: a raw request buffer in, a raw response buffer out.
    Malformed requests produce a [TPM_BAD_PARAMETER] error response
    rather than an exception. *)

val call : Tpm.t -> command -> (response, string) result
(** [encode_command], {!dispatch}, [decode_response] — what the PAL's TPM
    driver does for every operation. *)
