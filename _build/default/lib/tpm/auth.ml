open Flicker_crypto

type kind = Oiap | Osap of { entity : string }

type session = {
  handle : int;
  kind : kind;
  mutable nonce_even : string;
  shared_secret : string option;
}

type t = {
  rng : Prng.t;
  sessions : (int, session) Hashtbl.t;
  mutable next_handle : int;
}

let create rng = { rng; sessions = Hashtbl.create 4; next_handle = 0x1000 }

let fresh_nonce t = Prng.bytes t.rng Tpm_types.digest_size

let register t kind shared_secret =
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  let session = { handle; kind; nonce_even = fresh_nonce t; shared_secret } in
  Hashtbl.replace t.sessions handle session;
  session

let start_oiap t = register t Oiap None

let osap_shared_secret ~usage_auth ~ne_osap ~no_osap =
  Hmac.sha1 ~key:usage_auth (ne_osap ^ no_osap)

let start_osap t ~entity ~usage_auth ~no_osap =
  let ne_osap = fresh_nonce t in
  let shared = osap_shared_secret ~usage_auth ~ne_osap ~no_osap in
  let session = register t (Osap { entity }) (Some shared) in
  (session, ne_osap)

let auth_mac ~secret ~command_digest ~nonce_even ~nonce_odd =
  Hmac.sha1 ~key:secret (command_digest ^ nonce_even ^ nonce_odd)

let find t handle = Hashtbl.find_opt t.sessions handle

let verify t ~handle ~entity_auth ~command_digest ~nonce_odd ~mac =
  match find t handle with
  | None -> Error Tpm_types.Bad_index
  | Some session ->
      let secret =
        match session.shared_secret with Some s -> s | None -> entity_auth
      in
      let expected =
        auth_mac ~secret ~command_digest ~nonce_even:session.nonce_even ~nonce_odd
      in
      if Util.constant_time_equal expected mac then begin
        session.nonce_even <- fresh_nonce t;
        Ok ()
      end
      else Error Tpm_types.Bad_auth

let close t handle = Hashtbl.remove t.sessions handle
