type counter = { label : string; mutable value : int }
type t = { counters : (int, counter) Hashtbl.t; mutable next_handle : int }

let create () = { counters = Hashtbl.create 4; next_handle = 1 }

let create_counter t ~label =
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  Hashtbl.replace t.counters handle { label; value = 0 };
  handle

let with_counter t handle f =
  match Hashtbl.find_opt t.counters handle with
  | None -> Error Tpm_types.Bad_index
  | Some c -> Ok (f c)

let increment t ~handle =
  with_counter t handle (fun c ->
      c.value <- c.value + 1;
      c.value)

let read t ~handle = with_counter t handle (fun c -> c.value)
let label t ~handle = with_counter t handle (fun c -> c.label)
