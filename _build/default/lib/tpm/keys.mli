(** The TPM key hierarchy.

    The Endorsement Key (EK) is burned in by the manufacturer; the Storage
    Root Key (SRK) protects sealed storage and never leaves the TPM; the
    Attestation Identity Key (AIK) signs quotes and is certified by a
    Privacy CA (Section 2.1). Private halves live only inside {!Tpm.t}. *)

type t = {
  ek : Flicker_crypto.Rsa.private_key;
  srk : Flicker_crypto.Rsa.private_key;
  aik : Flicker_crypto.Rsa.private_key;
  srk_auth : string;  (** 20-byte usage secret; default is well-known zeros *)
}

val well_known_auth : string
(** 20 zero bytes. *)

val generate :
  ?srk_auth:string -> Flicker_crypto.Prng.t -> key_bits:int -> t
(** Generate the hierarchy. [key_bits] sizes all three keys (the paper's
    TPM uses 2048-bit keys; tests use smaller ones for speed). *)

val aik_public : t -> Flicker_crypto.Rsa.public
val ek_public : t -> Flicker_crypto.Rsa.public
