(** TPM Monotonic Counters — the other replay-protection primitive the
    paper sketches (Figure 4). Counters only ever increase; a sealed blob
    carrying a stale counter value is detected on unseal. *)

type t

val create : unit -> t

val create_counter : t -> label:string -> int
(** Returns the new counter's handle. *)

val increment : t -> handle:int -> (int, Tpm_types.error) result
(** Returns the post-increment value. *)

val read : t -> handle:int -> (int, Tpm_types.error) result
val label : t -> handle:int -> (string, Tpm_types.error) result
