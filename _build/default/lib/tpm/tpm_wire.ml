open Flicker_crypto

type command =
  | Pcr_read of int
  | Pcr_extend of int * string
  | Get_random of int
  | Quote of { nonce : string; selection : int list }
  | Oiap
  | Osap of { entity : string; no_osap : string }
  | Seal of { auth : Tpm.authorization; release : Tpm_types.pcr_composite; data : string }
  | Unseal of { auth : Tpm.authorization; blob : string }
  | Nv_read of int
  | Nv_write of int * string
  | Read_counter of int
  | Increment_counter of int
  | Get_capability_version

type response =
  | Digest_resp of string
  | Unit_resp
  | Quote_resp of Tpm.quote
  | Session_resp of { handle : int; nonce_even : string }
  | Osap_resp of { handle : int; nonce_even : string; ne_osap : string }
  | Blob_resp of string
  | Counter_resp of int
  | Error_resp of Tpm_types.error

(* TPM 1.2 Part 3 ordinals *)
let ord_oiap = 0x0A
let ord_osap = 0x0B
let ord_extend = 0x14
let ord_pcr_read = 0x15
let ord_quote = 0x16
let ord_seal = 0x17
let ord_unseal = 0x18
let ord_get_random = 0x46
let ord_nv_read = 0xCF
let ord_nv_write = 0xCD
let ord_read_counter = 0xDE
let ord_increment_counter = 0xDD
let ord_get_capability = 0x65

let ordinal_of_command = function
  | Pcr_read _ -> ord_pcr_read
  | Pcr_extend _ -> ord_extend
  | Get_random _ -> ord_get_random
  | Quote _ -> ord_quote
  | Oiap -> ord_oiap
  | Osap _ -> ord_osap
  | Seal _ -> ord_seal
  | Unseal _ -> ord_unseal
  | Nv_read _ -> ord_nv_read
  | Nv_write _ -> ord_nv_write
  | Read_counter _ -> ord_read_counter
  | Increment_counter _ -> ord_increment_counter
  | Get_capability_version -> ord_get_capability

(* tags *)
let tag_rqu = 0x00C1
let tag_rqu_auth1 = 0x00C2
let tag_rsp = 0x00C4
let tag_rsp_auth1 = 0x00C5

let is_auth_command = function Seal _ | Unseal _ -> true | _ -> false

(* return codes (TPM_BASE offsets from the 1.2 spec) *)
let error_codes =
  [
    (Tpm_types.Bad_auth, 0x01);
    (Tpm_types.Bad_index, 0x02);
    (Tpm_types.Bad_parameter "wire", 0x03);
    (Tpm_types.Wrong_pcr_value, 0x18);
    (Tpm_types.Decrypt_error, 0x21);
    (Tpm_types.Area_exists, 0x3B);
    (Tpm_types.Locality_violation, 0x44);
  ]

let code_of_error e =
  let canonical = match e with Tpm_types.Bad_parameter _ -> Tpm_types.Bad_parameter "wire" | e -> e in
  match List.assoc_opt canonical error_codes with Some c -> c | None -> 0x03

let error_of_code c =
  match List.find_opt (fun (_, c') -> c = c') error_codes with
  | Some (e, _) -> Some e
  | None -> None

(* --- little marshaling kit --- *)

exception Parse of string

type cursor = { buf : string; mutable pos : int }

let take cur n =
  if cur.pos + n > String.length cur.buf then raise (Parse "buffer underrun");
  let s = String.sub cur.buf cur.pos n in
  cur.pos <- cur.pos + n;
  s

let u32 cur = Util.int_of_be32 (take cur 4) 0
let digest20 cur = take cur 20
let lfield cur = take cur (u32 cur)
let at_end cur = cur.pos = String.length cur.buf
let expect_end cur = if not (at_end cur) then raise (Parse "trailing bytes")

let put_u32 v = Util.be32_of_int v
let put_field s = Util.field s

let encode_auth (a : Tpm.authorization) =
  put_u32 a.Tpm.session ^ a.Tpm.nonce_odd ^ a.Tpm.mac

let decode_auth cur =
  let session = u32 cur in
  let nonce_odd = digest20 cur in
  let mac = digest20 cur in
  { Tpm.session; nonce_odd; mac }

let encode_composite composite =
  put_u32 (List.length composite)
  ^ String.concat ""
      (List.map (fun (i, v) -> put_u32 i ^ put_field v) composite)

let decode_composite cur =
  let n = u32 cur in
  if n < 0 || n > 24 then raise (Parse "composite too large");
  List.init n (fun _ ->
      let i = u32 cur in
      let v = lfield cur in
      (i, v))

let body_of_command = function
  | Pcr_read i -> put_u32 i
  | Pcr_extend (i, d) ->
      if String.length d <> 20 then invalid_arg "Tpm_wire: extend digest must be 20 bytes";
      put_u32 i ^ d
  | Get_random n -> put_u32 n
  | Quote { nonce; selection } ->
      if String.length nonce <> 20 then invalid_arg "Tpm_wire: nonce must be 20 bytes";
      nonce ^ put_u32 (List.length selection)
      ^ String.concat "" (List.map put_u32 selection)
  | Oiap -> ""
  | Osap { entity; no_osap } ->
      if String.length no_osap <> 20 then invalid_arg "Tpm_wire: no_osap must be 20 bytes";
      put_field entity ^ no_osap
  | Seal { auth; release; data } ->
      encode_auth auth ^ put_field (encode_composite release) ^ put_field data
  | Unseal { auth; blob } -> encode_auth auth ^ put_field blob
  | Nv_read i -> put_u32 i
  | Nv_write (i, data) -> put_u32 i ^ put_field data
  | Read_counter h -> put_u32 h
  | Increment_counter h -> put_u32 h
  | Get_capability_version -> ""

let encode_command cmd =
  let body = body_of_command cmd in
  let tag = if is_auth_command cmd then tag_rqu_auth1 else tag_rqu in
  let total = 2 + 4 + 4 + String.length body in
  Util.be16_of_int tag ^ put_u32 total ^ put_u32 (ordinal_of_command cmd) ^ body

let decode_command buf =
  try
    if String.length buf < 10 then Error "short buffer"
    else begin
      let tag = Util.int_of_be16 buf 0 in
      if tag <> tag_rqu && tag <> tag_rqu_auth1 then Error "bad request tag"
      else begin
        let total = Util.int_of_be32 buf 2 in
        if total <> String.length buf then Error "length field mismatch"
        else begin
          let ordinal = Util.int_of_be32 buf 6 in
          let cur = { buf; pos = 10 } in
          let cmd =
            if ordinal = ord_pcr_read then Pcr_read (u32 cur)
            else if ordinal = ord_extend then begin
              let i = u32 cur in
              Pcr_extend (i, digest20 cur)
            end
            else if ordinal = ord_get_random then Get_random (u32 cur)
            else if ordinal = ord_quote then begin
              let nonce = digest20 cur in
              let n = u32 cur in
              if n < 0 || n > 24 then raise (Parse "selection too large");
              let selection = List.init n (fun _ -> u32 cur) in
              Quote { nonce; selection }
            end
            else if ordinal = ord_oiap then Oiap
            else if ordinal = ord_osap then begin
              let entity = lfield cur in
              Osap { entity; no_osap = digest20 cur }
            end
            else if ordinal = ord_seal then begin
              let auth = decode_auth cur in
              let release_raw = lfield cur in
              let rcur = { buf = release_raw; pos = 0 } in
              let release = decode_composite rcur in
              expect_end rcur;
              Seal { auth; release; data = lfield cur }
            end
            else if ordinal = ord_unseal then begin
              let auth = decode_auth cur in
              Unseal { auth; blob = lfield cur }
            end
            else if ordinal = ord_nv_read then Nv_read (u32 cur)
            else if ordinal = ord_nv_write then begin
              let i = u32 cur in
              Nv_write (i, lfield cur)
            end
            else if ordinal = ord_read_counter then Read_counter (u32 cur)
            else if ordinal = ord_increment_counter then Increment_counter (u32 cur)
            else if ordinal = ord_get_capability then Get_capability_version
            else raise (Parse (Printf.sprintf "unknown ordinal %#x" ordinal))
          in
          expect_end cur;
          (* auth commands must carry the auth tag and vice versa *)
          if is_auth_command cmd <> (tag = tag_rqu_auth1) then Error "tag/ordinal mismatch"
          else Ok cmd
        end
      end
    end
  with Parse msg -> Error msg

let body_of_response = function
  | Digest_resp s -> put_field s
  | Unit_resp -> ""
  | Quote_resp q ->
      put_field (encode_composite q.Tpm.quoted_composite)
      ^ q.Tpm.quote_nonce ^ put_field q.Tpm.signature
  | Session_resp { handle; nonce_even } -> put_u32 handle ^ nonce_even
  | Osap_resp { handle; nonce_even; ne_osap } -> put_u32 handle ^ nonce_even ^ ne_osap
  | Blob_resp b -> put_field b
  | Counter_resp v -> put_u32 v
  | Error_resp _ -> ""

let encode_response resp =
  let tag = tag_rsp in
  let code = match resp with Error_resp e -> code_of_error e | _ -> 0 in
  let body = body_of_response resp in
  let total = 2 + 4 + 4 + String.length body in
  Util.be16_of_int tag ^ put_u32 total ^ put_u32 code ^ body

let decode_response ~ordinal buf =
  try
    if String.length buf < 10 then Error "short response"
    else begin
      let tag = Util.int_of_be16 buf 0 in
      if tag <> tag_rsp && tag <> tag_rsp_auth1 then Error "bad response tag"
      else if Util.int_of_be32 buf 2 <> String.length buf then Error "length mismatch"
      else begin
        let code = Util.int_of_be32 buf 6 in
        let cur = { buf; pos = 10 } in
        if code <> 0 then begin
          match error_of_code code with
          | Some e -> Ok (Error_resp e)
          | None -> Error (Printf.sprintf "unknown TPM error code %#x" code)
        end
        else begin
          let resp =
            if ordinal = ord_pcr_read || ordinal = ord_get_random
               || ordinal = ord_extend || ordinal = ord_get_capability
               || ordinal = ord_nv_read
            then Digest_resp (lfield cur)
            else if ordinal = ord_quote then begin
              let composite_raw = lfield cur in
              let ccur = { buf = composite_raw; pos = 0 } in
              let quoted_composite = decode_composite ccur in
              expect_end ccur;
              let quote_nonce = digest20 cur in
              Quote_resp { Tpm.quoted_composite; quote_nonce; signature = lfield cur }
            end
            else if ordinal = ord_oiap then begin
              let handle = u32 cur in
              Session_resp { handle; nonce_even = digest20 cur }
            end
            else if ordinal = ord_osap then begin
              let handle = u32 cur in
              let nonce_even = digest20 cur in
              Osap_resp { handle; nonce_even; ne_osap = digest20 cur }
            end
            else if ordinal = ord_seal || ordinal = ord_unseal then Blob_resp (lfield cur)
            else if ordinal = ord_nv_write then Unit_resp
            else if ordinal = ord_read_counter || ordinal = ord_increment_counter then
              Counter_resp (u32 cur)
            else raise (Parse "unknown ordinal for response")
          in
          expect_end cur;
          Ok resp
        end
      end
    end
  with Parse msg -> Error msg

let run_command tpm = function
  | Pcr_read i -> (
      match Tpm.pcr_read tpm i with Ok d -> Digest_resp d | Error e -> Error_resp e)
  | Pcr_extend (i, d) -> (
      match Tpm.pcr_extend tpm i d with Ok v -> Digest_resp v | Error e -> Error_resp e)
  | Get_random n ->
      if n < 0 || n > 4096 then Error_resp (Tpm_types.Bad_parameter "size")
      else Digest_resp (Tpm.get_random tpm n)
  | Quote { nonce; selection } -> (
      match Tpm_types.selection selection with
      | exception Invalid_argument _ -> Error_resp (Tpm_types.Bad_parameter "selection")
      | sel -> (
          match Tpm.quote tpm ~nonce ~selection:sel with
          | q -> Quote_resp q
          | exception Invalid_argument _ -> Error_resp (Tpm_types.Bad_parameter "nonce")))
  | Oiap ->
      let s = Tpm.oiap tpm in
      Session_resp { handle = s.Auth.handle; nonce_even = s.Auth.nonce_even }
  | Osap { entity; no_osap } -> (
      match Tpm.osap tpm ~entity ~no_osap with
      | Ok (s, ne_osap) ->
          Osap_resp { handle = s.Auth.handle; nonce_even = s.Auth.nonce_even; ne_osap }
      | Error e -> Error_resp e)
  | Seal { auth; release; data } -> (
      match Tpm.seal tpm ~auth ~release data with
      | Ok blob -> Blob_resp blob
      | Error e -> Error_resp e)
  | Unseal { auth; blob } -> (
      match Tpm.unseal tpm ~auth blob with
      | Ok data -> Blob_resp data
      | Error e -> Error_resp e)
  | Nv_read i -> (
      match Tpm.nv_read tpm ~index:i with Ok d -> Digest_resp d | Error e -> Error_resp e)
  | Nv_write (i, data) -> (
      match Tpm.nv_write tpm ~index:i data with Ok () -> Unit_resp | Error e -> Error_resp e)
  | Read_counter h -> (
      match Tpm.read_counter tpm ~handle:h with
      | Ok v -> Counter_resp v
      | Error e -> Error_resp e)
  | Increment_counter h -> (
      match Tpm.increment_counter tpm ~handle:h with
      | Ok v -> Counter_resp v
      | Error e -> Error_resp e)
  | Get_capability_version -> Digest_resp (Tpm.get_capability_version tpm)

let dispatch tpm buf =
  match decode_command buf with
  | Error _ -> encode_response (Error_resp (Tpm_types.Bad_parameter "wire"))
  | Ok cmd -> encode_response (run_command tpm cmd)

let call tpm cmd =
  let resp_buf = dispatch tpm (encode_command cmd) in
  decode_response ~ordinal:(ordinal_of_command cmd) resp_buf
