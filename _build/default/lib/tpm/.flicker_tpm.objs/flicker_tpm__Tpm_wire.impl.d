lib/tpm/tpm_wire.ml: Auth Flicker_crypto List Printf String Tpm Tpm_types Util
