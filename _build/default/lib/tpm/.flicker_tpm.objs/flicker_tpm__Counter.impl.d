lib/tpm/counter.ml: Hashtbl Tpm_types
