lib/tpm/counter.mli: Tpm_types
