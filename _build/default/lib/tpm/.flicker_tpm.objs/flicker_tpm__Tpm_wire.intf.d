lib/tpm/tpm_wire.mli: Tpm Tpm_types
