lib/tpm/auth.mli: Flicker_crypto Tpm_types
