lib/tpm/nvram.ml: Hashtbl Int List String Tpm_types
