lib/tpm/pcr.mli: Tpm_types
