lib/tpm/tpm.mli: Auth Flicker_crypto Flicker_hw Nvram Tpm_types
