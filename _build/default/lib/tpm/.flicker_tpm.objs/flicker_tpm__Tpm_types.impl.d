lib/tpm/tpm_types.ml: Buffer Flicker_crypto Format Int List Sha1 String Util
