lib/tpm/privacy_ca.ml: Flicker_crypto Hash List Pkcs1 Rsa
