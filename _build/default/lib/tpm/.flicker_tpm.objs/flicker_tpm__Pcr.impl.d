lib/tpm/pcr.ml: Array Flicker_crypto List Sha1 String Tpm_types
