lib/tpm/keys.ml: Flicker_crypto Rsa String Tpm_types
