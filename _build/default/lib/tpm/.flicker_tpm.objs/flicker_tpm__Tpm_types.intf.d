lib/tpm/tpm_types.mli: Format
