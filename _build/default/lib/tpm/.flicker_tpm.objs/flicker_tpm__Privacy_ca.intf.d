lib/tpm/privacy_ca.mli: Flicker_crypto
