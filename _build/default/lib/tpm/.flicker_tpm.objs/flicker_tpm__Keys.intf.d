lib/tpm/keys.mli: Flicker_crypto
