lib/tpm/tpm.ml: Aes Auth Counter Flicker_crypto Flicker_hw Hash Hmac Keys List Nvram Pcr Pkcs1 Prng Rsa Sha1 Sha256 String Tpm_types Util
