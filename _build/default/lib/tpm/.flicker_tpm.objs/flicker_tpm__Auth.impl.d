lib/tpm/auth.ml: Flicker_crypto Hashtbl Hmac Prng Tpm_types Util
