lib/tpm/nvram.mli: Tpm_types
