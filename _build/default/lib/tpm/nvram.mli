(** TPM Non-volatile Storage (Section 4.3.2).

    Spaces are defined under owner authorization and can be configured so
    that reads and writes succeed only when named PCRs hold specified
    values. Flicker's replay-protection scheme stores a counter in a space
    gated on the same PCR-17 value as its sealed blobs, making the counter
    readable only by the intended PAL. *)

type t

type space_attributes = {
  size : int;
  read_pcrs : Tpm_types.pcr_composite;
      (** required PCR values for reading; empty = unrestricted *)
  write_pcrs : Tpm_types.pcr_composite;
}

val create : unit -> t

val define_space :
  t -> index:int -> space_attributes -> (unit, Tpm_types.error) result
(** @return [Error Area_exists] if the index is taken. *)

val undefine_space : t -> index:int -> (unit, Tpm_types.error) result

val read :
  t ->
  index:int ->
  current_pcrs:(Tpm_types.pcr_selection -> Tpm_types.pcr_composite) ->
  (string, Tpm_types.error) result
(** Checks the space's read PCR constraints against the live bank. *)

val write :
  t ->
  index:int ->
  current_pcrs:(Tpm_types.pcr_selection -> Tpm_types.pcr_composite) ->
  string ->
  (unit, Tpm_types.error) result
(** @return [Error (Bad_parameter _)] if the data exceeds the space. *)

val defined_indices : t -> int list
