(** The Privacy CA that certifies Attestation Identity Keys.

    A verifier trusts a quote only after validating the AIK's certificate
    chain back to a Privacy CA it trusts (Section 2.1). The simulator's CA
    checks that the AIK request is endorsed by a known EK before signing. *)

type t

type aik_certificate = {
  subject_aik : Flicker_crypto.Rsa.public;
  issuer : string;
  cert_signature : string;  (** CA signature over the serialized AIK key *)
}

val create : Flicker_crypto.Prng.t -> name:string -> key_bits:int -> t
val public_key : t -> Flicker_crypto.Rsa.public
val name : t -> string

val register_ek : t -> Flicker_crypto.Rsa.public -> unit
(** Record an endorsement key as belonging to a legitimate TPM (stands in
    for the manufacturer's EK credential). *)

val certify_aik :
  t ->
  ek:Flicker_crypto.Rsa.public ->
  aik:Flicker_crypto.Rsa.public ->
  (aik_certificate, string) result
(** Fails when the EK is not registered. *)

val verify_certificate : ca_key:Flicker_crypto.Rsa.public -> aik_certificate -> bool
