(** OIAP/OSAP authorization sessions.

    Commands that use an authorized entity (the SRK for Seal/Unseal, the
    owner for NV definition) prove knowledge of the entity's usage secret
    with an HMAC over the command digest and a pair of rolling nonces.
    OIAP authorizes with the entity secret directly; OSAP first derives a
    session-shared secret bound to one entity. The PAL-side client half of
    this protocol lives in [Flicker_slb.Mod_tpm_utils]. *)

type kind = Oiap | Osap of { entity : string }

type session = {
  handle : int;
  kind : kind;
  mutable nonce_even : string;
  shared_secret : string option;  (** present for OSAP *)
}

type t

val create : Flicker_crypto.Prng.t -> t

val start_oiap : t -> session

val start_osap :
  t -> entity:string -> usage_auth:string -> no_osap:string -> session * string
(** [start_osap t ~entity ~usage_auth ~no_osap] returns the session and
    the TPM-side OSAP nonce [ne_osap]. The TPM derives the session secret
    from the entity's stored usage secret; the client derives the same
    value with {!osap_shared_secret} — the secret itself never crosses
    the interface. *)

val osap_shared_secret :
  usage_auth:string -> ne_osap:string -> no_osap:string -> string
(** Client-side derivation (exposed for the PAL TPM-utils module). *)

val auth_mac :
  secret:string -> command_digest:string -> nonce_even:string -> nonce_odd:string -> string
(** The authorization HMAC both sides compute. *)

val find : t -> int -> session option

val verify :
  t ->
  handle:int ->
  entity_auth:string ->
  command_digest:string ->
  nonce_odd:string ->
  mac:string ->
  (unit, Tpm_types.error) result
(** Check a command authorization against session [handle]. For OIAP the
    secret is [entity_auth]; for OSAP it is the session's shared secret.
    On success the even nonce rolls forward. *)

val close : t -> int -> unit
