open Flicker_crypto

type aik_certificate = {
  subject_aik : Rsa.public;
  issuer : string;
  cert_signature : string;
}

type t = {
  ca_name : string;
  key : Rsa.private_key;
  mutable known_eks : string list; (* serialized public keys *)
}

let create rng ~name ~key_bits =
  { ca_name = name; key = Rsa.generate rng ~bits:key_bits; known_eks = [] }

let public_key t = t.key.Rsa.pub
let name t = t.ca_name
let register_ek t ek = t.known_eks <- Rsa.public_to_string ek :: t.known_eks

let cert_payload ~issuer ~aik = "AIK-CERT" ^ issuer ^ Rsa.public_to_string aik

let certify_aik t ~ek ~aik =
  if not (List.mem (Rsa.public_to_string ek) t.known_eks) then
    Error "Privacy CA: endorsement key not recognized"
  else
    Ok
      {
        subject_aik = aik;
        issuer = t.ca_name;
        cert_signature =
          Pkcs1.sign t.key Hash.SHA1 (cert_payload ~issuer:t.ca_name ~aik);
      }

let verify_certificate ~ca_key cert =
  Pkcs1.verify ca_key Hash.SHA1
    ~msg:(cert_payload ~issuer:cert.issuer ~aik:cert.subject_aik)
    ~signature:cert.cert_signature
