open Flicker_crypto

let count = 24
let first_dynamic = 17

type t = { values : Tpm_types.digest array }

let reboot t =
  for i = 0 to first_dynamic - 1 do
    t.values.(i) <- Tpm_types.zero_digest
  done;
  for i = first_dynamic to count - 1 do
    t.values.(i) <- Tpm_types.reboot_digest
  done

let create () =
  let t = { values = Array.make count Tpm_types.zero_digest } in
  reboot t;
  t

let dynamic_reset t =
  for i = first_dynamic to count - 1 do
    t.values.(i) <- Tpm_types.zero_digest
  done

let read t i =
  if i < 0 || i >= count then Error Tpm_types.Bad_index else Ok t.values.(i)

let expected_extend ~current m = Sha1.digest (current ^ m)

let extend t i m =
  if i < 0 || i >= count then Error Tpm_types.Bad_index
  else if String.length m <> Tpm_types.digest_size then
    Error (Tpm_types.Bad_parameter "extend value must be a 20-byte digest")
  else begin
    t.values.(i) <- expected_extend ~current:t.values.(i) m;
    Ok t.values.(i)
  end

let composite t sel = List.map (fun i -> (i, t.values.(i))) sel
