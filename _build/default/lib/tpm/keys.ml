open Flicker_crypto

type t = {
  ek : Rsa.private_key;
  srk : Rsa.private_key;
  aik : Rsa.private_key;
  srk_auth : string;
}

let well_known_auth = String.make Tpm_types.owner_auth_size '\000'

let generate ?(srk_auth = well_known_auth) rng ~key_bits =
  if String.length srk_auth <> Tpm_types.owner_auth_size then
    invalid_arg "Keys.generate: SRK auth must be 20 bytes";
  {
    ek = Rsa.generate rng ~bits:key_bits;
    srk = Rsa.generate rng ~bits:key_bits;
    aik = Rsa.generate rng ~bits:key_bits;
    srk_auth;
  }

let aik_public t = t.aik.Rsa.pub
let ek_public t = t.ek.Rsa.pub
