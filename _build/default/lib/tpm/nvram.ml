type space_attributes = {
  size : int;
  read_pcrs : Tpm_types.pcr_composite;
  write_pcrs : Tpm_types.pcr_composite;
}

type space = { attrs : space_attributes; mutable data : string }
type t = { spaces : (int, space) Hashtbl.t }

let create () = { spaces = Hashtbl.create 8 }

let define_space t ~index attrs =
  if Hashtbl.mem t.spaces index then Error Tpm_types.Area_exists
  else if attrs.size <= 0 || attrs.size > 4096 then
    Error (Tpm_types.Bad_parameter "NV space size out of range")
  else begin
    Hashtbl.replace t.spaces index { attrs; data = String.make attrs.size '\000' };
    Ok ()
  end

let undefine_space t ~index =
  if Hashtbl.mem t.spaces index then begin
    Hashtbl.remove t.spaces index;
    Ok ()
  end
  else Error Tpm_types.Bad_index

(* A constraint is met when every named PCR currently holds the value the
   space was defined with. *)
let constraints_met required ~current_pcrs =
  match required with
  | [] -> true
  | _ ->
      let sel = Tpm_types.selection (List.map fst required) in
      let live = current_pcrs sel in
      Tpm_types.composite_hash live = Tpm_types.composite_hash required

let read t ~index ~current_pcrs =
  match Hashtbl.find_opt t.spaces index with
  | None -> Error Tpm_types.Bad_index
  | Some space ->
      if constraints_met space.attrs.read_pcrs ~current_pcrs then Ok space.data
      else Error Tpm_types.Wrong_pcr_value

let write t ~index ~current_pcrs data =
  match Hashtbl.find_opt t.spaces index with
  | None -> Error Tpm_types.Bad_index
  | Some space ->
      if String.length data > space.attrs.size then
        Error (Tpm_types.Bad_parameter "NV write larger than space")
      else if constraints_met space.attrs.write_pcrs ~current_pcrs then begin
        (* short writes update a prefix, as TPM_NV_WriteValue with offset 0 *)
        space.data <-
          data ^ String.sub space.data (String.length data)
                   (space.attrs.size - String.length data);
        Ok ()
      end
      else Error Tpm_types.Wrong_pcr_value

let defined_indices t =
  List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.spaces [])
