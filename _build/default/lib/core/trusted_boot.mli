(** Verifier side of trusted-boot (IMA-style) attestation, for comparison
    with Flicker's fine-grained attestation (Sections 2.1 and 8).

    The verifier receives the untrusted event log and a TPM quote over the
    static PCRs; it replays the log to recompute each PCR and accepts only
    if the quote matches. Acceptance still leaves the hard part: deciding
    whether every one of the logged components is trustworthy — the burden
    Flicker removes by shrinking the attested code to one PAL. *)

type failure =
  | Bad_certificate
  | Bad_signature
  | Nonce_mismatch
  | Log_mismatch of { pcr : int; expected : string; got : string }
  | Pcr_not_quoted of int

val failure_to_string : failure -> string

val replay_log :
  Flicker_os.Measured_boot.event list -> (int * string) list
(** Expected PCR values implied by the log (each PCR replayed from its
    post-reboot zero). *)

val verify :
  ca_key:Flicker_crypto.Rsa.public ->
  aik_cert:Flicker_tpm.Privacy_ca.aik_certificate ->
  nonce:string ->
  log:Flicker_os.Measured_boot.event list ->
  Flicker_tpm.Tpm.quote ->
  (unit, failure) result

type burden = {
  components_to_assess : int;
      (** entries the verifier must individually trust *)
  includes_full_os : bool;
}

val trusted_boot_burden : Flicker_os.Measured_boot.event list -> burden
val flicker_burden : Flicker_slb.Pal.t -> burden
(** One PAL plus the SLB Core — the paper's headline comparison. *)
