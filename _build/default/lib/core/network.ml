module Machine = Flicker_hw.Machine
module Timing = Flicker_hw.Timing

let timing (p : Platform.t) = p.Platform.machine.Machine.timing

let send p ~bytes =
  Machine.charge p.Platform.machine (Timing.network_ms (timing p) ~bytes)

let round_trip p ~request_bytes ~response_bytes =
  send p ~bytes:request_bytes;
  send p ~bytes:response_bytes

let rtt_ms p = (timing p).Timing.network.Timing.rtt_ms
