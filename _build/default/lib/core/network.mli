(** Simulated network between the challenged platform and remote parties.

    The paper's remote verifier sits 12 hops away with a 9.45 ms average
    ping (Section 7.1); message latency is charged against the platform's
    clock so end-to-end latencies (e.g., the 1.02 s rootkit query) include
    transit time. *)

val send : Platform.t -> bytes:int -> unit
(** One-way message: half an RTT plus serialization at the modelled
    bandwidth. *)

val round_trip : Platform.t -> request_bytes:int -> response_bytes:int -> unit

val rtt_ms : Platform.t -> float
