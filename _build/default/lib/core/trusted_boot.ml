open Flicker_crypto
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types
module Privacy_ca = Flicker_tpm.Privacy_ca
module Measured_boot = Flicker_os.Measured_boot

type failure =
  | Bad_certificate
  | Bad_signature
  | Nonce_mismatch
  | Log_mismatch of { pcr : int; expected : string; got : string }
  | Pcr_not_quoted of int

let failure_to_string = function
  | Bad_certificate -> "AIK certificate invalid"
  | Bad_signature -> "quote signature invalid"
  | Nonce_mismatch -> "nonce mismatch"
  | Log_mismatch { pcr; expected; got } ->
      Printf.sprintf "PCR %d does not replay from the log: expected %s, got %s" pcr
        (Util.to_hex expected) (Util.to_hex got)
  | Pcr_not_quoted pcr -> Printf.sprintf "log names PCR %d but the quote omits it" pcr

let replay_log events =
  let table = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let current =
        Option.value
          (Hashtbl.find_opt table e.Measured_boot.pcr_index)
          ~default:Tpm_types.zero_digest
      in
      Hashtbl.replace table e.Measured_boot.pcr_index
        (Sha1.digest (current ^ e.Measured_boot.template_hash)))
    events;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [])

let verify ~ca_key ~aik_cert ~nonce ~log quote =
  if not (Privacy_ca.verify_certificate ~ca_key aik_cert) then Error Bad_certificate
  else begin
    let payload =
      "QUOT" ^ Tpm_types.composite_hash quote.Tpm.quoted_composite ^ quote.Tpm.quote_nonce
    in
    if
      not
        (Pkcs1.verify aik_cert.Privacy_ca.subject_aik Hash.SHA1 ~msg:payload
           ~signature:quote.Tpm.signature)
    then Error Bad_signature
    else if not (Util.constant_time_equal quote.Tpm.quote_nonce nonce) then
      Error Nonce_mismatch
    else begin
      let expected = replay_log log in
      let rec check = function
        | [] -> Ok ()
        | (pcr, value) :: rest -> (
            match List.assoc_opt pcr quote.Tpm.quoted_composite with
            | None -> Error (Pcr_not_quoted pcr)
            | Some got ->
                if Util.constant_time_equal value got then check rest
                else Error (Log_mismatch { pcr; expected = value; got }))
      in
      check expected
    end
  end

type burden = { components_to_assess : int; includes_full_os : bool }

let trusted_boot_burden log =
  { components_to_assess = List.length log; includes_full_os = true }

let flicker_burden pal =
  (* the SLB Core, the linked modules, and the PAL's own logic; nothing
     else ran in the attested environment *)
  {
    components_to_assess = 1 + List.length pal.Flicker_slb.Pal.modules + 1;
    includes_full_os = false;
  }
