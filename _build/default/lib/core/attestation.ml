module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types

type evidence = {
  quote : Tpm.quote;
  aik_cert : Flicker_tpm.Privacy_ca.aik_certificate;
  claimed_outputs : string;
  claimed_inputs : string;
}

let generate (p : Platform.t) ~nonce ~inputs ~outputs =
  let quote =
    Tpm.quote p.Platform.tpm ~nonce ~selection:(Tpm_types.selection [ 17 ])
  in
  {
    quote;
    aik_cert = p.Platform.aik_cert;
    claimed_outputs = outputs;
    claimed_inputs = inputs;
  }

let tamper_outputs evidence outputs = { evidence with claimed_outputs = outputs }
