(** Establishing a secure channel into a PAL (Section 4.4.2).

    Session one runs a setup PAL that generates a keypair under Flicker
    protection, seals the private key to its own measurement, and outputs
    the public key; the attestation covering that output convinces the
    remote party the key is genuine and its private half unreachable
    outside the PAL. The remote party then encrypts its secret (e.g., a
    password) under the public key; only a later session of the same PAL
    can unseal the private key and decrypt. *)

type established = {
  public_key : Flicker_crypto.Rsa.public;
  sealed_private : string;  (** kept by the untrusted OS for session two *)
  evidence : Attestation.evidence;
  channel_nonce : string;
}

val setup_pal : key_bits:int -> Flicker_slb.Pal.t
(** The generic setup PAL (Secure Channel + Crypto + TPM modules linked);
    memoized per key size so repeated calls return the identical PAL —
    and hence the identical measurement. *)

val establish :
  Platform.t -> ?key_bits:int -> nonce:string -> unit -> (established, string) result
(** Server side: run the setup session and gather the attestation.
    [key_bits] defaults to 1024 (the paper's channel keys). *)

val client_accept :
  ca_key:Flicker_crypto.Rsa.public ->
  slb_base:int ->
  nonce:string ->
  ?key_bits:int ->
  established ->
  (Flicker_crypto.Rsa.public, string) result
(** Remote-party side: check the attestation chain and extract the
    public key. Fails on any verification error — including a server
    that ran a different PAL or tampered with the output. *)

val encrypt_to_pal :
  Flicker_crypto.Prng.t -> Flicker_crypto.Rsa.public -> string -> string
(** PKCS#1 v1.5 (chosen-ciphertext-secure, non-malleable — the paper's
    choice) encryption of a secret for the PAL. *)
