open Flicker_crypto
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Builder = Flicker_slb.Builder
module Mod_secure_channel = Flicker_slb.Mod_secure_channel

type established = {
  public_key : Rsa.public;
  sealed_private : string;
  evidence : Attestation.evidence;
  channel_nonce : string;
}

let setup_pals : (int, Pal.t) Hashtbl.t = Hashtbl.create 4

let setup_pal ~key_bits =
  match Hashtbl.find_opt setup_pals key_bits with
  | Some pal -> pal
  | None ->
      let behavior env =
        match Mod_secure_channel.setup env ~key_bits with
        | Ok out -> Pal_env.set_output env (Mod_secure_channel.encode_setup_output out)
        | Error msg -> Pal_env.set_output env ("ERROR: " ^ msg)
      in
      let pal =
        Pal.define
          ~name:(Printf.sprintf "secure-channel-setup-%d" key_bits)
          ~app_code_size:256
          ~modules:
            [ Pal.Tpm_driver; Pal.Tpm_utilities; Pal.Crypto; Pal.Secure_channel ]
          behavior
      in
      Hashtbl.replace setup_pals key_bits pal;
      pal

let establish platform ?(key_bits = 1024) ~nonce () =
  let pal = setup_pal ~key_bits in
  match Session.execute platform ~pal ~nonce () with
  | Error e -> Error (Format.asprintf "%a" Session.pp_error e)
  | Ok outcome -> (
      match Mod_secure_channel.decode_setup_output outcome.Session.outputs with
      | Error msg -> Error ("setup PAL produced malformed output: " ^ msg)
      | Ok out ->
          let evidence =
            Attestation.generate platform ~nonce ~inputs:""
              ~outputs:outcome.Session.outputs
          in
          Ok
            {
              public_key = out.Mod_secure_channel.public_key;
              sealed_private = out.Mod_secure_channel.sealed_private;
              evidence;
              channel_nonce = nonce;
            })

let client_accept ~ca_key ~slb_base ~nonce ?(key_bits = 1024) established =
  let expectation =
    Verifier.expect ~pal:(setup_pal ~key_bits) ~flavor:Builder.Optimized ~slb_base
      ~nonce ()
  in
  match Verifier.verify ~ca_key expectation established.evidence with
  | Error f -> Error (Verifier.failure_to_string f)
  | Ok () -> (
      (* The attestation covers the output bytes; re-derive the key from
         them rather than trusting the unauthenticated copy. *)
      match
        Mod_secure_channel.decode_setup_output
          established.evidence.Attestation.claimed_outputs
      with
      | Error msg -> Error ("attested output malformed: " ^ msg)
      | Ok out -> Ok out.Mod_secure_channel.public_key)

let encrypt_to_pal rng pub secret = Pkcs1.encrypt rng pub secret
