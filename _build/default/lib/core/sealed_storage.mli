(** Sealing PAL state across Flicker sessions (Section 4.3.1).

    PAL [P] seals data so that only PAL [P'] — possibly a later invocation
    of [P] itself — can read it: the release condition is PCR 17 holding
    [P'] 's post-SKINIT measurement value, which only a genuine late
    launch of [P'] can produce. *)

type digest = Flicker_tpm.Tpm_types.digest

val pcr17_for :
  Flicker_slb.Pal.t ->
  flavor:Flicker_slb.Builder.flavor ->
  slb_base:int ->
  digest
(** The PCR 17 value during a session of the given PAL — the value
    V = H(0x00^20 || H(P')) of Section 4.3.1 (with the stub's extra
    extend for optimized images). *)

val seal_for :
  Flicker_slb.Pal_env.t ->
  target:Flicker_slb.Pal.t ->
  flavor:Flicker_slb.Builder.flavor ->
  slb_base:int ->
  string ->
  (string, string) result
(** Called from inside a PAL: seal [data] so only [target] can unseal. *)

val seal_for_self : Flicker_slb.Pal_env.t -> string -> (string, string) result
(** Seal under the current PCR 17 (a later session of the same PAL with
    the same inputs path — the common case). *)

val unseal : Flicker_slb.Pal_env.t -> string -> (string, string) result
(** Unseal inside a session; fails with [TPM_WRONGPCRVAL] unless the
    current PCR 17 matches the blob's release condition. *)
