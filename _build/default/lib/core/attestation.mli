(** The TPM Quote Daemon (tqd) — the untrusted OS-side attestation
    service (Section 6).

    After a session ends, the OS loads the AIK and asks the TPM to quote
    PCR 17 against the verifier's nonce. The quote is generated while the
    OS runs normally, so its ~1 s latency is experienced only by the
    remote challenger, not by local processes (Section 7.4.1). *)

type evidence = {
  quote : Flicker_tpm.Tpm.quote;
  aik_cert : Flicker_tpm.Privacy_ca.aik_certificate;
  claimed_outputs : string;  (** what the OS says the PAL produced *)
  claimed_inputs : string;
}

val generate :
  Platform.t -> nonce:string -> inputs:string -> outputs:string -> evidence
(** Quote PCR 17. [inputs]/[outputs] are shipped alongside so the
    verifier can recompute the extend chain; a lying OS changes them and
    the quote no longer matches. *)

val tamper_outputs : evidence -> string -> evidence
(** Adversary helper for tests: substitute the claimed outputs. *)
