lib/core/session.mli: Flicker_slb Format Platform
