lib/core/measurement.mli: Flicker_slb Flicker_tpm
