lib/core/verifier.mli: Attestation Flicker_crypto Flicker_slb Format
