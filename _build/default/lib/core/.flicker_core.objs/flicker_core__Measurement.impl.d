lib/core/measurement.ml: Flicker_crypto Flicker_slb Flicker_tpm List Sha1 String
