lib/core/session.ml: Char Flicker_crypto Flicker_hw Flicker_os Flicker_slb Flicker_tpm Format List Measurement Option Platform Printf Sha1 String
