lib/core/trusted_boot.mli: Flicker_crypto Flicker_os Flicker_slb Flicker_tpm
