lib/core/secure_channel.mli: Attestation Flicker_crypto Flicker_slb Platform
