lib/core/network.mli: Platform
