lib/core/platform.mli: Flicker_crypto Flicker_hw Flicker_os Flicker_tpm
