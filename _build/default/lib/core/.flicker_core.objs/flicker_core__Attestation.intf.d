lib/core/attestation.mli: Flicker_tpm Platform
