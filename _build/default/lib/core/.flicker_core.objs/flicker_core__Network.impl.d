lib/core/network.ml: Flicker_hw Platform
