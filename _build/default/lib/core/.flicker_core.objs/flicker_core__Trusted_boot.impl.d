lib/core/trusted_boot.ml: Flicker_crypto Flicker_os Flicker_slb Flicker_tpm Hash Hashtbl List Option Pkcs1 Printf Sha1 Util
