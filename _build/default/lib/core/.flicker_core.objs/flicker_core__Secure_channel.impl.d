lib/core/secure_channel.ml: Attestation Flicker_crypto Flicker_slb Format Hashtbl Pkcs1 Printf Rsa Session Verifier
