lib/core/sealed_storage.mli: Flicker_slb Flicker_tpm
