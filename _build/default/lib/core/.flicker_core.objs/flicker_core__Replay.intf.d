lib/core/replay.mli: Flicker_slb Flicker_tpm Format
