lib/core/attestation.ml: Flicker_tpm Platform
