lib/core/sealed_storage.ml: Flicker_slb Flicker_tpm Measurement Result
