lib/core/replay.ml: Flicker_crypto Flicker_slb Flicker_tpm Format String Util
