lib/core/platform.ml: Flicker_crypto Flicker_hw Flicker_os Flicker_tpm Prng
