lib/core/verifier.ml: Attestation Flicker_crypto Flicker_slb Flicker_tpm Format Hash List Measurement Pkcs1 Printf Util
