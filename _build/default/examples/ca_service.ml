(* A certificate authority whose signing key survives total OS compromise
   (paper Section 6.3.2).

   The CA's RSA key is generated inside a Flicker session from TPM
   randomness and sealed under PCR 17; every signing request runs another
   session that unseals the key, applies the administrator's policy,
   signs, and reseals. Malware at ring 0 can at worst submit CSRs — which
   the policy filters and the audit log records — never read the key.

     dune exec examples/ca_service.exe *)

open Flicker_core
open Flicker_apps
module CA = Cert_authority
module Prng = Flicker_crypto.Prng
module Rsa = Flicker_crypto.Rsa

let () =
  let platform = Platform.create ~seed:"ca-server" ~key_bits:1024 () in
  let policy =
    {
      CA.allowed_suffixes = [ ".corp.example" ];
      denied_subjects = [ "finance.corp.example" ];
      max_certificates = 3;
    }
  in
  let ca = CA.create platform ~key_bits:1024 ~issuer:"Corp Issuing CA" policy in
  let ca_pub =
    match CA.init_ca ca with
    | Ok pub -> pub
    | Error e -> failwith ("init: " ^ e)
  in
  Printf.printf "CA initialized; signing key sealed to the CA PAL's measurement.\n\n";

  let csr_keys = Prng.create ~seed:"subject-keys" in
  let submit subject =
    let csr = { CA.subject; subject_key = (Rsa.generate csr_keys ~bits:512).Rsa.pub } in
    let t0 = Platform.now_ms platform in
    match CA.sign_csr ca csr with
    | Ok cert ->
        Printf.printf "CSR %-26s -> cert #%d issued (%.0f ms), verifies: %b\n" subject
          cert.CA.serial
          (Platform.now_ms platform -. t0)
          (CA.verify_certificate ~ca_key:ca_pub cert)
    | Error e -> Printf.printf "CSR %-26s -> DENIED: %s\n" subject e
  in

  submit "www.corp.example";
  submit "mail.corp.example";
  submit "finance.corp.example" (* on the deny list *);
  submit "evil.attacker.net" (* wrong domain *);
  submit "vpn.corp.example";
  submit "extra.corp.example" (* exceeds the 3-certificate quota *);

  print_endline "\naudit log (public, kept by the untrusted server):";
  List.iter
    (fun (serial, subject) -> Printf.printf "  #%d %s\n" serial subject)
    (CA.audit_log ca);

  (* The compromise story: scan all of physical memory for the private
     key material. The serialized private key starts with the modulus —
     search for a distinctive slice of the private exponent encoding via
     the public key test instead: we simply confirm no sealed-state
     plaintext markers exist outside sessions. *)
  let report =
    Flicker_os.Adversary.scan_memory platform.Platform.machine
      ~pattern:"Corp Issuing CA"
  in
  Printf.printf "\nring-0 scan for CA state plaintext (issuer marker): %s\n"
    (if report.Flicker_os.Adversary.succeeded then "FOUND (BUG!)" else "not found");
  Printf.printf
    "compromised OS outcome: bogus CSRs are policy-filtered and logged;\n";
  Printf.printf
    "the signing key itself never leaves Flicker sessions, so certificates\n";
  Printf.printf "can be revoked without re-keying the CA.\n"
