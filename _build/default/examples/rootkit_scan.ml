(* Remote rootkit detection (paper Section 6.1).

   A network administrator scans an employee machine before admitting it
   to the VPN. The machine's OS is untrusted — it may be rootkitted and
   it may lie — but the Flicker attestation pins both the detector code
   and its output.

     dune exec examples/rootkit_scan.exe *)

open Flicker_core
open Flicker_apps
module Kernel = Flicker_os.Kernel
module Privacy_ca = Flicker_tpm.Privacy_ca
module Prng = Flicker_crypto.Prng

let describe = function
  | Rootkit_detector.Clean -> "CLEAN (hash matches the known-good kernel)"
  | Rootkit_detector.Rootkit_detected _ -> "ROOTKIT DETECTED (hash mismatch)"
  | Rootkit_detector.Attestation_rejected f ->
      "ATTESTATION REJECTED: " ^ Verifier.failure_to_string f

let () =
  let ca = Privacy_ca.create (Prng.create ~seed:"scan-ca") ~name:"CorpCA" ~key_bits:1024 in
  let ca_key = Privacy_ca.public_key ca in
  (* The employee laptop: 5 MB kernel, v1.2 TPM, AMD SVM. *)
  let laptop =
    Platform.create ~seed:"employee-laptop" ~key_bits:1024
      ~kernel_text_size:(5 * 1024 * 1024) ~ca ()
  in
  let deployment = Rootkit_detector.deploy_on laptop in

  let query label =
    match Rootkit_detector.remote_query deployment ~ca_key with
    | Error e -> Printf.printf "%-28s query error: %s\n" label e
    | Ok (verdict, total_ms) ->
        Printf.printf "%-28s %-45s (%.0f ms end-to-end)\n" label (describe verdict) total_ms
  in

  query "pristine machine:";

  (* The attacker hijacks the syscall table to hide files. *)
  Kernel.install_syscall_rootkit laptop.Platform.kernel;
  Rootkit_detector.sync deployment;
  query "after syscall hijack:";

  (* A second attacker loads a malicious kernel module too. *)
  Kernel.install_module_rootkit laptop.Platform.kernel;
  Rootkit_detector.sync deployment;
  query "after rootkit.ko loads:";

  (* The compromised OS tries to cover its tracks: it runs the detector
     honestly (it has to — SKINIT measures the code) but substitutes the
     clean hash in its report. The quote exposes the lie. *)
  let nonce = Platform.fresh_nonce laptop in
  (match Rootkit_detector.scan deployment ~nonce with
  | Error e -> Printf.printf "scan error: %s\n" e
  | Ok result ->
      let lie =
        {
          result with
          Rootkit_detector.evidence =
            Attestation.tamper_outputs result.Rootkit_detector.evidence
              (Rootkit_detector.known_good_hash deployment);
        }
      in
      Printf.printf "%-28s %s\n" "OS forges a clean report:"
        (describe (Rootkit_detector.admin_check deployment ~ca_key lie)))
