(* Quickstart: the paper's Section 5.1.1 "Hello, world" PAL.

   Builds a platform (simulated SVM machine + TPM v1.2 + untrusted OS),
   defines a minimal PAL, runs one Flicker session through the
   flicker-module's sysfs interface, and verifies the attestation the way
   a remote party would.

     dune exec examples/quickstart.exe *)

open Flicker_core
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Privacy_ca = Flicker_tpm.Privacy_ca
module Prng = Flicker_crypto.Prng

let () =
  (* A Privacy CA the verifier trusts; the platform's AIK is certified
     against it at manufacture time. *)
  let ca = Privacy_ca.create (Prng.create ~seed:"quickstart-ca") ~name:"DemoCA" ~key_bits:1024 in
  let platform = Platform.create ~seed:"quickstart" ~key_bits:1024 ~ca () in

  (* The PAL from Figure 5: ignore the inputs, write "Hello, world" to
     PAL_OUT. In the real system this is C linked against the SLB Core;
     here it is a behaviour registered under deterministic code bytes. *)
  let hello =
    Pal.define ~name:"hello-world" (fun env -> Pal_env.set_output env "Hello, world")
  in

  (* The remote verifier sends a fresh nonce. *)
  let nonce = Platform.fresh_nonce platform in

  (* One Flicker session: suspend OS -> SKINIT -> SLB Core -> PAL ->
     cleanup -> PCR extends -> resume OS. *)
  (match Session.execute platform ~pal:hello ~nonce () with
  | Error e -> Format.printf "session failed: %a@." Session.pp_error e
  | Ok outcome ->
      Printf.printf "PAL output (via sysfs 'outputs'): %S\n"
        (Flicker_os.Sysfs.read_exn platform.Platform.sysfs ~path:"outputs");
      Printf.printf "session took %.2f ms of simulated time:\n" outcome.Session.total_ms;
      List.iter
        (fun (phase, phase_ms) ->
          Printf.printf "  %-14s %8.3f ms\n" (Session.phase_name phase) phase_ms)
        outcome.Session.breakdown;

      (* The OS-side quote daemon produces the attestation... *)
      let evidence =
        Attestation.generate platform ~nonce ~inputs:"" ~outputs:outcome.Session.outputs
      in
      (* ...and the remote party checks the whole chain: AIK certificate,
         quote signature, nonce freshness, and the PCR 17 value only a
         genuine SKINIT launch of exactly this PAL could produce. *)
      let expectation =
        Verifier.expect ~pal:hello ~slb_base:platform.Platform.slb_base ~nonce ()
      in
      (match Verifier.verify ~ca_key:(Privacy_ca.public_key ca) expectation evidence with
      | Ok () -> print_endline "attestation: VERIFIED (the PAL really ran under Flicker)"
      | Error f -> Printf.printf "attestation failed: %s\n" (Verifier.failure_to_string f));

      (* And if the OS lies about the output, verification fails. *)
      let tampered = Attestation.tamper_outputs evidence "Hello, w0rld" in
      match Verifier.verify ~ca_key:(Privacy_ca.public_key ca) expectation tampered with
      | Ok () -> print_endline "BUG: tampered output accepted"
      | Error _ -> print_endline "tampered output: correctly REJECTED")
