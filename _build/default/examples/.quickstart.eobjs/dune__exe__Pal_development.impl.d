examples/pal_development.ml: Extract Flicker_core Flicker_crypto Flicker_extract Flicker_slb Format Option Platform Printf Session
