examples/ssh_login.mli:
