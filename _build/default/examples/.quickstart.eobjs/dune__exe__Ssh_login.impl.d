examples/ssh_login.ml: Attestation Flicker_apps Flicker_core Flicker_crypto Flicker_os Flicker_slb Flicker_tpm Platform Printf Ssh_auth
