examples/pal_development.mli:
