examples/distributed_factoring.ml: Distcomp Flicker_apps Flicker_core Flicker_hw List Platform Printf String
