examples/quickstart.mli:
