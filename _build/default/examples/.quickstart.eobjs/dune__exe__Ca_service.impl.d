examples/ca_service.ml: Cert_authority Flicker_apps Flicker_core Flicker_crypto Flicker_os List Platform Printf
