examples/quickstart.ml: Attestation Flicker_core Flicker_crypto Flicker_os Flicker_slb Flicker_tpm Format List Platform Printf Session Verifier
