examples/ca_service.mli:
