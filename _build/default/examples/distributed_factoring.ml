(* BOINC-style distributed computing under Flicker (paper Section 6.2).

   A server splits a factoring job into work units and hands them to
   untrusted volunteer machines. Each volunteer processes its unit inside
   Flicker sessions — pausing periodically so the owner can still use the
   machine — with its intermediate state MAC-protected under a key that
   lives in TPM sealed storage. The server trusts the results without
   redundant re-execution.

     dune exec examples/distributed_factoring.exe *)

open Flicker_core
open Flicker_apps
module Timing = Flicker_hw.Timing

let number = 2 * 3 * 5 * 7 * 11 * 13 * 17 * 19 (* 9,699,690 *)

let () =
  Printf.printf "factoring %d across volunteer machines\n\n" number;
  (* Two volunteer platforms with different seeds = different machines. *)
  let volunteers =
    List.map
      (fun (name, seed) ->
        (name, Distcomp.create_client (Platform.create ~seed ~key_bits:512 ())))
      [ ("volunteer-a", "machine-a"); ("volunteer-b", "machine-b") ]
  in
  (* Split the candidate range into one unit per volunteer. Short 10 ms
     slices force each unit through several Flicker sessions, exercising
     the seal/MAC checkpointing between every pair. *)
  let limit = 9690 in
  let units =
    [
      { Distcomp.unit_id = 1; number; lo = 2; hi = limit / 2 };
      { Distcomp.unit_id = 2; number; lo = (limit / 2) + 1; hi = limit };
    ]
  in
  let all_divisors = ref [] in
  List.iter2
    (fun (name, client) unit_ ->
      match Distcomp.run_to_completion client unit_ ~slice_ms:10.0 with
      | Error e -> Printf.printf "%s failed: %s\n" name e
      | Ok (final, sessions) ->
          Printf.printf "%s: candidates %d..%d -> %d divisors found (%d Flicker sessions)\n"
            name unit_.Distcomp.lo unit_.Distcomp.hi
            (List.length final.Distcomp.divisors_found)
            sessions;
          all_divisors := final.Distcomp.divisors_found @ !all_divisors)
    volunteers units;
  let is_prime n =
    n >= 2 &&
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  in
  let primes = List.sort compare (List.filter is_prime !all_divisors) in
  Printf.printf "\nserver: %d divisors below %d collected; prime factors: %s\n"
    (List.length !all_divisors) limit
    (String.concat " * " (List.map string_of_int primes));

  (* The integrity story: a volunteer's OS tampers with the stored state
     between sessions. The PAL's MAC check refuses to continue. *)
  print_endline "\n--- tampering demo ---";
  let client = Distcomp.create_client (Platform.create ~seed:"cheater" ~key_bits:512 ()) in
  let unit_ = { Distcomp.unit_id = 3; number; lo = 2; hi = 2_000_000 } in
  (match Distcomp.start client unit_ ~slice_ms:50.0 with
  | Error e -> Printf.printf "start failed: %s\n" e
  | Ok step -> (
      let tampered = Distcomp.tamper_state (Distcomp.encode_state step.Distcomp.state) in
      match Distcomp.resume_raw client ~state_blob:tampered ~slice_ms:50.0 with
      | Error msg -> Printf.printf "volunteer OS edited the checkpoint -> %s\n" msg
      | Ok _ -> print_endline "BUG: tampered state accepted"));

  (* The economics: Figure 8's efficiency argument. *)
  print_endline "\n--- efficiency vs redundant execution (Figure 8) ---";
  List.iter
    (fun work_s ->
      Printf.printf "  %2.0f s sessions: Flicker %.0f%% vs 3-way replication 33%%\n" work_s
        (Distcomp.efficiency Timing.default ~work_ms:(work_s *. 1000.0) *. 100.0))
    [ 1.0; 2.0; 4.0; 8.0 ]
