(* Flicker-protected SSH password authentication (paper Section 6.3.1).

   The server's OS may be completely compromised, yet the user's
   cleartext password is only ever visible inside a Flicker session: the
   client encrypts it under a key whose private half is TPM-sealed to the
   SSH PAL, and the PAL outputs only the md5crypt hash for comparison
   with /etc/passwd.

     dune exec examples/ssh_login.exe *)

open Flicker_core
open Flicker_apps
module Privacy_ca = Flicker_tpm.Privacy_ca
module Prng = Flicker_crypto.Prng

let () =
  let ca = Privacy_ca.create (Prng.create ~seed:"ssh-ca") ~name:"SSHDemoCA" ~key_bits:1024 in
  let ca_key = Privacy_ca.public_key ca in
  let server_platform = Platform.create ~seed:"ssh-server" ~key_bits:1024 ~ca () in
  let server =
    Ssh_auth.create_server server_platform ~key_bits:1024
      ~users:[ ("alice", "correct horse battery staple") ]
      ()
  in
  (match Ssh_auth.passwd_entry server ~user:"alice" with
  | Some (_, crypted) -> Printf.printf "server /etc/passwd entry: alice:%s\n\n" crypted
  | None -> ());

  let client =
    Ssh_auth.Client.create ~rng:(Prng.create ~seed:"ssh-client") ~ca_key
      ~server_slb_base:server_platform.Platform.slb_base ~key_bits:1024 ()
  in

  let attempt user password =
    match Ssh_auth.authenticate server client ~user ~password with
    | Ok (true, attempt_ms) ->
        Printf.printf "login %-8s with %-32s -> ACCEPTED (%.0f ms)\n" user
          (Printf.sprintf "%S" password) attempt_ms
    | Ok (false, attempt_ms) ->
        Printf.printf "login %-8s with %-32s -> rejected (%.0f ms)\n" user
          (Printf.sprintf "%S" password) attempt_ms
    | Error e -> Printf.printf "login %-8s failed: %s\n" user e
  in

  (* First login pays for the setup session (keypair generation +
     attestation); later logins reuse the sealed channel key. *)
  attempt "alice" "correct horse battery staple";
  attempt "alice" "wrong password";
  attempt "alice" "correct horse battery staple";

  (* Even with the password having crossed the server, a ring-0 memory
     scan finds no trace of it: it was decrypted, hashed, and erased
     entirely inside Flicker sessions. *)
  let scan =
    Flicker_os.Adversary.scan_memory server_platform.Platform.machine
      ~pattern:"correct horse battery staple"
  in
  Printf.printf "\nring-0 scan of all server memory for the password: %s\n"
    (if scan.Flicker_os.Adversary.succeeded then "FOUND (BUG!)" else "not found");

  (* A man-in-the-middle OS substitutes its own channel key during setup;
     the client's verification of the attestation catches it. *)
  let fresh_client =
    Ssh_auth.Client.create ~rng:(Prng.create ~seed:"mitm-client") ~ca_key
      ~server_slb_base:server_platform.Platform.slb_base ~key_bits:1024 ()
  in
  let nonce = Platform.fresh_nonce server_platform in
  match Ssh_auth.server_setup server ~nonce with
  | Error e -> Printf.printf "setup failed: %s\n" e
  | Ok setup -> (
      let mitm = Flicker_crypto.Rsa.generate (Prng.create ~seed:"mitm") ~bits:1024 in
      let forged_output =
        Flicker_slb.Mod_secure_channel.encode_setup_output
          { Flicker_slb.Mod_secure_channel.public_key = mitm.Flicker_crypto.Rsa.pub;
            sealed_private = "bogus" }
      in
      let forged = Attestation.tamper_outputs setup.Ssh_auth.evidence forged_output in
      match Ssh_auth.Client.accept_server_key fresh_client ~nonce forged with
      | Error reason -> Printf.printf "MITM key substitution: REJECTED (%s)\n" reason
      | Ok () -> print_endline "MITM key substitution: accepted (BUG!)")
