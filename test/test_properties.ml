(* QCheck properties over whole-session invariants: for arbitrary inputs,
   outputs, flavors, and launch technologies, a session must restore the
   OS exactly, leave PCR 17 at the predicted value, erase what the PAL
   wrote, and produce attestations that verify iff untampered. *)

open Flicker_crypto
open Flicker_core
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Builder = Flicker_slb.Builder
module Cpu = Flicker_hw.Cpu
module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Privacy_ca = Flicker_tpm.Privacy_ca

let ca = Privacy_ca.create (Prng.create ~seed:"prop-ca") ~name:"PropCA" ~key_bits:512
let ca_key = Privacy_ca.public_key ca
let platform = Platform.create ~seed:"properties" ~key_bits:512 ~ca ()

(* one PAL reused for all properties: echoes a transform of its inputs
   and stashes a copy in scratch memory (so cleanup has work to do) *)
let echo_pal =
  Pal.define ~name:"prop-echo" (fun env ->
      let out = Sha1.digest env.Pal_env.inputs ^ env.Pal_env.inputs in
      let out =
        if String.length out > Flicker_slb.Layout.io_page_size then
          String.sub out 0 Flicker_slb.Layout.io_page_size
        else out
      in
      Pal_env.write_phys env
        ~addr:(env.Pal_env.inputs_addr - 4096)
        (String.sub out 0 (min 64 (String.length out)));
      Pal_env.set_output env out)

let arb_inputs = QCheck.(string_of_size Gen.(int_range 0 1000))

let arb_flavor =
  QCheck.make
    ~print:(function Builder.Standard -> "Standard" | Builder.Optimized -> "Optimized")
    QCheck.Gen.(map (fun b -> if b then Builder.Standard else Builder.Optimized) bool)

let snapshot_cpu () =
  let bsp = Cpu.bsp platform.Platform.machine.Machine.cpus in
  ( bsp.Cpu.ring,
    bsp.Cpu.interrupts_enabled,
    bsp.Cpu.mode,
    bsp.Cpu.paging_enabled,
    List.map (fun (c : Cpu.core) -> c.Cpu.run_state)
      (Cpu.aps platform.Platform.machine.Machine.cpus) )

let run_session ?nonce ~flavor inputs =
  match Session.execute platform ~pal:echo_pal ~flavor ?nonce ~inputs () with
  | Ok o -> o
  | Error e -> Format.kasprintf failwith "%a" Session.pp_error e

let prop_os_state_restored =
  QCheck.Test.make ~name:"sessions restore the OS exactly" ~count:30
    (QCheck.pair arb_inputs arb_flavor) (fun (inputs, flavor) ->
      let before = snapshot_cpu () in
      ignore (run_session ~flavor inputs);
      snapshot_cpu () = before)

let prop_pcr17_predicted =
  QCheck.Test.make ~name:"final PCR 17 always matches the measurement chain" ~count:30
    (QCheck.pair arb_inputs arb_flavor) (fun (inputs, flavor) ->
      let nonce = Platform.fresh_nonce platform in
      let outcome = run_session ~nonce ~flavor inputs in
      let image = Builder.build ~flavor echo_pal in
      outcome.Session.pcr17_final
      = Measurement.final image ~slb_base:platform.Platform.slb_base ~inputs
          ~outputs:outcome.Session.outputs ~nonce:(Some nonce))

let prop_breakdown_sums =
  QCheck.Test.make ~name:"phase breakdown sums to the total" ~count:30 arb_inputs
    (fun inputs ->
      let o = run_session ~flavor:Builder.Optimized inputs in
      let sum = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 o.Session.breakdown in
      Float.abs (sum -. o.Session.total_ms) < 1e-6)

let prop_window_zeroized =
  QCheck.Test.make ~name:"the SLB window is zero after every session" ~count:20
    arb_inputs (fun inputs ->
      ignore (run_session ~flavor:Builder.Optimized inputs);
      let window =
        Memory.read platform.Platform.machine.Machine.memory
          ~addr:platform.Platform.slb_base ~len:Flicker_slb.Layout.slb_size
      in
      String.for_all (fun c -> c = '\000') window)

let prop_attestation_sound =
  QCheck.Test.make ~name:"attestation verifies iff outputs untampered" ~count:20
    (QCheck.pair arb_inputs (QCheck.string_of_size QCheck.Gen.small_nat))
    (fun (inputs, tamper) ->
      let nonce = Platform.fresh_nonce platform in
      let outcome = run_session ~nonce ~flavor:Builder.Optimized inputs in
      let evidence =
        Attestation.generate platform ~nonce ~inputs ~outputs:outcome.Session.outputs
      in
      let expectation =
        Verifier.expect ~pal:echo_pal ~slb_base:platform.Platform.slb_base ~nonce ()
      in
      let honest_ok = Verifier.verify ~ca_key expectation evidence = Ok () in
      let tampered = Attestation.tamper_outputs evidence tamper in
      let tampered_rejected =
        tamper = outcome.Session.outputs
        || Verifier.verify ~ca_key expectation tampered <> Ok ()
      in
      honest_ok && tampered_rejected)

let prop_outputs_deterministic =
  QCheck.Test.make ~name:"same PAL + inputs give same outputs and measurement" ~count:20
    arb_inputs (fun inputs ->
      let a = run_session ~flavor:Builder.Optimized inputs in
      let b = run_session ~flavor:Builder.Optimized inputs in
      a.Session.outputs = b.Session.outputs
      && a.Session.pcr17_during = b.Session.pcr17_during)

let prop_seal_binds_to_pal =
  (* arbitrary data sealed inside a session unseals in a later session of
     the same PAL and nowhere else *)
  let blob_box = ref "" in
  let sealer =
    Pal.define ~name:"prop-sealer" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env ->
        match Util.decode_fields env.Pal_env.inputs with
        | Ok [ "seal"; data ] -> (
            match Sealed_storage.seal_for_self env data with
            | Ok blob ->
                blob_box := blob;
                Pal_env.set_output env "sealed"
            | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
        | Ok [ "unseal" ] -> (
            match Sealed_storage.unseal env !blob_box with
            | Ok d -> Pal_env.set_output env d
            | Error e -> Pal_env.set_output env ("ERROR: " ^ e))
        | Ok _ | Error _ -> Pal_env.set_output env "ERROR: mode")
  in
  QCheck.Test.make ~name:"sealed data roundtrips through sessions" ~count:15
    (QCheck.string_of_size QCheck.Gen.(int_range 0 500))
    (fun data ->
      QCheck.assume (String.length (Util.encode_fields [ "seal"; data ]) <= 4096);
      let seal_out =
        match
          Session.execute platform ~pal:sealer
            ~inputs:(Util.encode_fields [ "seal"; data ]) ()
        with
        | Ok o -> o.Session.outputs
        | Error _ -> "session-error"
      in
      let unseal_out =
        match
          Session.execute platform ~pal:sealer
            ~inputs:(Util.encode_fields [ "unseal" ]) ()
        with
        | Ok o -> o.Session.outputs
        | Error _ -> "session-error"
      in
      seal_out = "sealed" && unseal_out = data)

let prop_measurement_memo_transparent =
  (* the content-keyed measurement cache must be invisible: for random
     PAL bodies, flavors, load addresses, and ACM choices, the memoized
     path equals the unmemoized reference computed straight from
     Builder.initialize + Sha1.digest *)
  let arb_body = QCheck.string_of_size QCheck.Gen.(int_range 0 300) in
  let arb_base = QCheck.make QCheck.Gen.(map (fun k -> 0x10000 * (k + 1)) (int_range 0 30)) in
  QCheck.Test.make ~name:"measurement memoization is transparent" ~count:40
    (QCheck.quad arb_body arb_flavor arb_base QCheck.bool)
    (fun (body, flavor, slb_base, with_acm) ->
      let pal =
        Pal.define ~name:("memo-" ^ Sha1.hex body) (fun env ->
            Pal_env.set_output env body)
      in
      let image = Builder.build ~flavor pal in
      let reference_bytes = Builder.initialize image ~slb_base in
      let reference_measured =
        Sha1.digest (String.sub reference_bytes 0 image.Builder.measured_length)
      in
      let acm = if with_acm then Some "acm-code" else None in
      let reference_launch =
        let start =
          match acm with
          | None -> Flicker_tpm.Tpm_types.zero_digest
          | Some a ->
              Sha1.digest (Flicker_tpm.Tpm_types.zero_digest ^ Sha1.digest a)
        in
        let v = Sha1.digest (start ^ reference_measured) in
        match flavor with
        | Builder.Standard -> v
        | Builder.Optimized -> Sha1.digest (v ^ Sha1.digest reference_bytes)
      in
      (* run each memoized accessor twice: once cold, once from cache *)
      let twice f = f () = f () && f () = f () in
      Measurement.initialized image ~slb_base = reference_bytes
      && twice (fun () -> Measurement.initialized image ~slb_base)
      && Measurement.of_image image ~slb_base = reference_measured
      && Measurement.window_hash image ~slb_base = Sha1.digest reference_bytes
      && Measurement.window_digest reference_bytes = Sha1.digest reference_bytes
      && Measurement.after_launch ?acm image ~slb_base = reference_launch
      (* a different load address misses the cache and re-derives *)
      && Measurement.of_image image ~slb_base:(slb_base + 0x10000)
         = Sha1.digest
             (String.sub
                (Builder.initialize image ~slb_base:(slb_base + 0x10000))
                0 image.Builder.measured_length))

let test_measurement_cache_invalidation () =
  Measurement.clear_cache ();
  let pal = Pal.define ~name:"memo-invalidate" (fun env -> Pal_env.set_output env "x") in
  let image = Builder.build ~flavor:Builder.Optimized pal in
  let d1 = Measurement.of_image image ~slb_base:0x100000 in
  let hits0, misses0 = Measurement.cache_stats () in
  Alcotest.(check int) "first lookup misses" 1 misses0;
  Alcotest.(check int) "no hits yet" 0 hits0;
  let d1' = Measurement.of_image image ~slb_base:0x100000 in
  let hits1, misses1 = Measurement.cache_stats () in
  Alcotest.(check bool) "hit returns same digest" true (d1 = d1');
  Alcotest.(check int) "second lookup hits" 1 hits1;
  Alcotest.(check int) "no new miss" 1 misses1;
  (* changing slb_base changes the key: a miss, and a different digest
     (the patched entry point differs) *)
  let d2 = Measurement.of_image image ~slb_base:0x200000 in
  let _, misses2 = Measurement.cache_stats () in
  Alcotest.(check int) "new base misses" 2 misses2;
  Alcotest.(check bool) "new base re-derives" true
    (d2 = Sha1.digest
            (String.sub
               (Builder.initialize image ~slb_base:0x200000)
               0 image.Builder.measured_length));
  (* clear_cache drops everything but changes no results *)
  Measurement.clear_cache ();
  Alcotest.(check (pair int int)) "stats zeroed" (0, 0) (Measurement.cache_stats ());
  Alcotest.(check bool) "post-clear digest unchanged" true
    (Measurement.of_image image ~slb_base:0x100000 = d1)

let () =
  Alcotest.run "session-properties"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_os_state_restored;
            prop_pcr17_predicted;
            prop_breakdown_sums;
            prop_window_zeroized;
            prop_attestation_sound;
            prop_outputs_deterministic;
            prop_seal_binds_to_pal;
            prop_measurement_memo_transparent;
          ] );
      ( "measurement-cache",
        [
          Alcotest.test_case "invalidation on slb_base change" `Quick
            test_measurement_cache_invalidation;
        ] );
    ]
