(* Tests for the deterministic fault-injection engine (lib/fault) and the
   fleet's robustness machinery that consumes it: crash re-dispatch,
   retry budgets, circuit breakers, and seeded chaos runs. *)

module Injector = Flicker_fault.Injector
module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Clock = Flicker_hw.Clock
module Timing = Flicker_hw.Timing
module Metrics = Flicker_obs.Metrics
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types
module Platform = Flicker_core.Platform
module Session = Flicker_core.Session
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Prng = Flicker_crypto.Prng
module Fleet = Flicker_service.Fleet
module Dispatch = Flicker_service.Dispatch
module Request = Flicker_service.Request
module Workload = Flicker_service.Workload

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  n = 0 || scan 0

(* --- the injector itself --------------------------------------------- *)

let test_injector_determinism () =
  let draws seed =
    let inj = Injector.create ~config:(Injector.scaled 0.5) ~seed () in
    List.init 10 (fun i ->
        Injector.uniform inj ~site:"test.site" ~now_ms:(float_of_int i *. 7.5))
  in
  let a = draws "alpha" and b = draws "alpha" and c = draws "beta" in
  Alcotest.(check (list (float 0.0))) "same seed, same trace" a b;
  Alcotest.(check bool) "different seed, different trace" true (a <> c);
  List.iter
    (fun u -> Alcotest.(check bool) "uniform in [0,1)" true (u >= 0.0 && u < 1.0))
    a;
  (* consecutive draws at one site and instant still differ: the per-site
     counter ratchets *)
  let inj = Injector.create ~config:(Injector.scaled 0.5) ~seed:"ratchet" () in
  let u1 = Injector.uniform inj ~site:"s" ~now_ms:1.0 in
  let u2 = Injector.uniform inj ~site:"s" ~now_ms:1.0 in
  Alcotest.(check bool) "draw counter ratchets" true (u1 <> u2);
  (* and the whole tpm_fault / session_crash / dma_storm schedule replays *)
  let schedule seed =
    let inj = Injector.create ~config:(Injector.scaled 0.4) ~seed () in
    List.init 20 (fun i ->
        let now_ms = float_of_int i *. 13.0 in
        ( Injector.tpm_fault inj ~op:"seal" ~now_ms,
          Injector.session_crash inj ~now_ms,
          Injector.dma_storm inj ~now_ms ))
  in
  Alcotest.(check bool) "fault schedule replays" true
    (schedule "chaos" = schedule "chaos")

let test_injector_clamps () =
  let inj =
    Injector.create
      ~config:
        {
          Injector.disabled with
          tpm_error_rate = 7.0;
          tpm_latency_factor = 0.1;
          clock_skew_pct = 9.0;
        }
      ~seed:"clamp" ()
  in
  let cfg = Injector.config inj in
  Alcotest.(check (float 0.0)) "rate clamped" 1.0 cfg.Injector.tpm_error_rate;
  Alcotest.(check bool) "factor >= 1" true (cfg.Injector.tpm_latency_factor >= 1.0);
  Alcotest.(check bool) "skew <= 0.5" true (cfg.Injector.clock_skew_pct <= 0.5);
  Alcotest.(check bool) "disabled never fires" false (Injector.enabled Injector.disabled);
  Alcotest.(check bool) "scaled 0 never fires" false (Injector.enabled (Injector.scaled 0.0));
  Alcotest.(check bool) "scaled fires" true (Injector.enabled (Injector.scaled 0.1))

(* --- TPM hook sites --------------------------------------------------- *)

let test_tpm_transient_error () =
  let p = Platform.create ~seed:"fault-busy" ~key_bits:512 () in
  Machine.set_injector p.Platform.machine
    (Injector.create
       ~config:{ Injector.disabled with Injector.tpm_error_rate = 1.0 }
       ~seed:"busy" ());
  (match Tpm.pcr_read p.Platform.tpm 17 with
  | Error Tpm_types.Tpm_busy -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Tpm_types.error_to_string e)
  | Ok _ -> Alcotest.fail "rate-1.0 injector let the command through");
  Alcotest.(check string) "wire name" "TPM_RETRY"
    (Tpm_types.error_to_string Tpm_types.Tpm_busy);
  Alcotest.(check bool) "fault counted" true
    (Metrics.counter p.Platform.machine.Machine.metrics "fault.tpm.busy" >= 1)

let test_tpm_latency_spike () =
  let run ~faulted =
    (* same platform seed both times: identical baseline timing *)
    let p = Platform.create ~seed:"fault-lat" ~key_bits:512 () in
    if faulted then
      Machine.set_injector p.Platform.machine
        (Injector.create
           ~config:
             {
               Injector.disabled with
               Injector.tpm_latency_rate = 1.0;
               tpm_latency_factor = 5.0;
             }
           ~seed:"lat" ());
    let t0 = Platform.now_ms p in
    (match Tpm.pcr_read p.Platform.tpm 0 with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "pcr_read failed: %s" (Tpm_types.error_to_string e));
    Platform.now_ms p -. t0
  in
  let base = run ~faulted:false in
  let slow = run ~faulted:true in
  Alcotest.(check bool) "baseline costs time" true (base > 0.0);
  Alcotest.(check (float 1e-6)) "stalled 5x" (base *. 5.0) slow

let test_clock_skew () =
  let m = Machine.create Timing.default in
  let inj =
    Injector.create
      ~config:{ Injector.disabled with Injector.clock_skew_pct = 0.2 }
      ~seed:"skew" ()
  in
  Machine.set_injector m inj;
  let f = Injector.clock_skew inj in
  Alcotest.(check bool) "factor in band" true (f >= 0.8 && f <= 1.2);
  Alcotest.(check bool) "oscillator actually off" true (f <> 1.0);
  let t0 = Clock.now m.Machine.clock in
  Machine.charge m 100.0;
  Alcotest.(check (float 1e-9)) "charge skewed"
    (100.0 *. f)
    (Clock.now m.Machine.clock -. t0);
  (* no injector: charge is exact *)
  let m2 = Machine.create Timing.default in
  Machine.charge m2 100.0;
  Alcotest.(check (float 1e-9)) "clean charge exact" 100.0 (Clock.now m2.Machine.clock)

(* --- machine crash / reboot ------------------------------------------ *)

let test_power_cycle_recovery () =
  let p = Platform.create ~seed:"fault-reboot" ~key_bits:512 () in
  let tpm = p.Platform.tpm in
  let rng = Prng.create ~seed:"fault-reboot-rng" in
  let handle =
    Result.get_ok
      (Flicker_slb.Mod_tpm_utils.create_counter tpm ~rng
         ~owner_auth:(Tpm.owner_auth tpm) ~label:"fault-replay")
  in
  Alcotest.(check int) "counter at 1" 1
    (Result.get_ok (Tpm.increment_counter tpm ~handle));
  Memory.write p.Platform.machine.Machine.memory ~addr:0x2000 "volatile";
  Platform.power_cycle p;
  (* volatile state is gone... *)
  Alcotest.(check string) "memory zeroed"
    (String.make 8 '\000')
    (Memory.read p.Platform.machine.Machine.memory ~addr:0x2000 ~len:8);
  (* ...but the TPM's persistent state survives the reboot, so replay
     protection picks up exactly where it left off *)
  Alcotest.(check int) "NV counter persists" 1
    (Result.get_ok (Tpm.read_counter tpm ~handle));
  Alcotest.(check int) "counter still monotonic" 2
    (Result.get_ok (Tpm.increment_counter tpm ~handle));
  (* and the machine serves sessions again *)
  let pal =
    Pal.define ~name:"fault-after-reboot" (fun env -> Pal_env.set_output env "alive")
  in
  match Session.execute p ~pal () with
  | Ok o -> Alcotest.(check string) "session after reboot" "alive" o.Session.outputs
  | Error e -> Alcotest.failf "no session after reboot: %a" Session.pp_error e

(* --- fleet: crash re-dispatch (the acceptance scenario) --------------- *)

let test_crash_redispatch () =
  let config =
    {
      Fleet.default_config with
      Fleet.platforms = 3;
      batch_size = 1;
      queue_depth = 32;
      policy = Dispatch.Least_loaded;
      seed = "crash-redispatch";
      retry_budget = 2;
    }
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:300.0 ()) in
  (* six anonymous requests spread over the fleet, two pinned to the
     sealed-state home we are about to kill *)
  let unhomed = List.init 6 (fun i -> Fleet.submit fleet (Printf.sprintf "u-%d" i)) in
  let homed = List.init 2 (fun i -> Fleet.submit fleet ~home:1 (Printf.sprintf "h-%d" i)) in
  (* let the arrivals land (queues fill, one batch dispatched per member)
     but stop before anything completes *)
  Fleet.run ~until_ms:(Fleet.now_ms fleet +. 50.0) fleet;
  Fleet.crash_platform fleet 1;
  Alcotest.(check bool) "member down after crash" false (Fleet.platform_up fleet 1);
  Fleet.run fleet;
  (* every un-homed request survives the crash: the victims queued on the
     dead member were re-dispatched to survivors *)
  List.iter
    (fun id ->
      match Fleet.disposition_of fleet id with
      | Some (Request.Completed _) -> ()
      | d ->
          Alcotest.failf "un-homed request %d did not complete: %s" id
            (match d with
            | Some disp -> Request.disposition_name disp
            | None -> "nothing"))
    unhomed;
  (* requests homed to the dead platform fail explicitly — their sealed
     state exists nowhere else, silent rerouting would be wrong *)
  let homed_failures =
    List.filter
      (fun id ->
        match Fleet.disposition_of fleet id with
        | Some (Request.Failed { reason; _ }) ->
            Alcotest.(check bool) "failure names the dead home" true
              (contains ~sub:"home platform 1 unavailable" reason
              || contains ~sub:"crashed" reason);
            true
        | Some (Request.Completed c) ->
            (* only legitimate if it ran on its home before the crash *)
            Alcotest.(check int) "early completion on home" 1 c.Request.platform;
            false
        | d ->
            Alcotest.failf "homed request %d: unexpected %s" id
              (match d with
              | Some disp -> Request.disposition_name disp
              | None -> "nothing"))
      homed
  in
  Alcotest.(check bool) "at least one homed request failed explicitly" true
    (homed_failures <> []);
  let s = Fleet.summary fleet in
  Alcotest.(check int) "one crash" 1 s.Fleet.crashes;
  Alcotest.(check bool) "victims were re-dispatched" true (s.Fleet.redispatched >= 1);
  Alcotest.(check int) "conservation" 8
    (s.Fleet.completed + s.Fleet.rejected + s.Fleet.expired + s.Fleet.failed);
  Alcotest.(check bool) "member rebooted and rejoined" true (Fleet.platform_up fleet 1)

let test_crash_platform_validation () =
  let fleet = Fleet.create (Workload.echo ()) in
  (match Fleet.crash_platform fleet 9 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range crash accepted");
  Fleet.crash_platform fleet 0;
  (* crashing a member that is already down is a no-op, not a double count *)
  Fleet.crash_platform fleet 0;
  Alcotest.(check int) "one crash counted" 1 (Fleet.summary fleet).Fleet.crashes

(* --- fleet: circuit breaker ------------------------------------------ *)

let always_fail =
  {
    Workload.name = "always-fail";
    prepare = (fun _ _ -> ());
    run_batch =
      (fun p reqs ->
        (* charge some service time so the breaker's cooldown landmarks
           are spaced like a real workload's *)
        Machine.charge p.Platform.machine 50.0;
        List.map (fun _ -> Error "induced failure") reqs);
  }

let test_circuit_breaker () =
  let config =
    {
      Fleet.default_config with
      Fleet.platforms = 1;
      batch_size = 1;
      queue_depth = 32;
      seed = "breaker";
      retry_budget = 1;
      breaker_failures = 2;
      breaker_cooldown_ms = 1000.0;
    }
  in
  let fleet = Fleet.create ~config always_fail in
  for i = 1 to 6 do
    ignore (Fleet.submit fleet (Printf.sprintf "doomed-%d" i))
  done;
  Fleet.run fleet;
  (* the run terminates (no infinite requeue ping-pong) with nothing
     completed, the breaker open at least once, and every request
     accounted for *)
  let s = Fleet.summary fleet in
  Alcotest.(check int) "nothing completed" 0 s.Fleet.completed;
  Alcotest.(check bool) "breaker opened" true (s.Fleet.breaker_opens >= 1);
  Alcotest.(check int) "conservation" 6
    (s.Fleet.completed + s.Fleet.rejected + s.Fleet.expired + s.Fleet.failed);
  Alcotest.(check bool) "bounded retries" true
    (s.Fleet.redispatched <= 6 * (config.Fleet.retry_budget + 1))

(* --- chaos runs ------------------------------------------------------- *)

let run_chaos ~seed =
  let config =
    {
      Fleet.default_config with
      Fleet.platforms = 2;
      batch_size = 2;
      queue_depth = 32;
      seed;
      faults = Some (Injector.scaled 0.3);
      retry_budget = 2;
      breaker_failures = 3;
    }
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:60.0 ()) in
  Fleet.submit_open_loop fleet ~clients:4 ~per_client:5 ~mean_gap_ms:25.0
    ~payload:(fun ~client ~seq -> Printf.sprintf "c-%d-%d" client seq)
    ();
  Fleet.run fleet;
  Fleet.summary fleet

let test_chaos_deterministic_and_survives () =
  let a = run_chaos ~seed:"chaos-test" in
  let b = run_chaos ~seed:"chaos-test" in
  Alcotest.(check bool) "same seed, identical summary" true (a = b);
  Alcotest.(check int) "everything accounted for" 20
    (a.Fleet.completed + a.Fleet.rejected + a.Fleet.expired + a.Fleet.failed);
  (* a faulted fleet still makes progress *)
  Alcotest.(check bool) "completes requests under faults" true (a.Fleet.completed > 0);
  Alcotest.(check bool) "faults actually fired" true
    (a.Fleet.crashes + a.Fleet.tpm_faults + a.Fleet.dma_storms > 0);
  let c = run_chaos ~seed:"chaos-test-2" in
  Alcotest.(check bool) "different seed, different fault trace" true (a <> c)

let () =
  Alcotest.run "fault"
    [
      ( "injector",
        [
          Alcotest.test_case "deterministic draws" `Quick test_injector_determinism;
          Alcotest.test_case "config clamps" `Quick test_injector_clamps;
        ] );
      ( "tpm",
        [
          Alcotest.test_case "transient error" `Quick test_tpm_transient_error;
          Alcotest.test_case "latency spike" `Quick test_tpm_latency_spike;
          Alcotest.test_case "clock skew" `Quick test_clock_skew;
        ] );
      ( "machine",
        [ Alcotest.test_case "power-cycle recovery" `Quick test_power_cycle_recovery ] );
      ( "fleet",
        [
          Alcotest.test_case "crash re-dispatch" `Quick test_crash_redispatch;
          Alcotest.test_case "crash validation" `Quick test_crash_platform_validation;
          Alcotest.test_case "circuit breaker" `Quick test_circuit_breaker;
          Alcotest.test_case "chaos determinism" `Quick test_chaos_deterministic_and_survives;
        ] );
    ]
