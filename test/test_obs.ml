(* Tests for the observability subsystem (flicker_obs) and the bugfix
   regressions that ride with it: the TPM-driver claim leak, the DEV
   out-of-range policy, and zero-byte GetRandom timing. *)

open Flicker_obs
module Machine = Flicker_hw.Machine
module Clock = Flicker_hw.Clock
module Timing = Flicker_hw.Timing
module Dev = Flicker_hw.Dev
module Dma = Flicker_hw.Dma
module Tpm = Flicker_tpm.Tpm
module Scheduler = Flicker_os.Scheduler
module Pal_env = Flicker_slb.Pal_env
module Mod_tpm_driver = Flicker_slb.Mod_tpm_driver
module Platform = Flicker_core.Platform
module Session = Flicker_core.Session
module Replay = Flicker_core.Replay
module Prng = Flicker_crypto.Prng

let make_tracer ?capacity () =
  let t_ref = ref 0.0 in
  let tracer = Tracer.create ?capacity ~now:(fun () -> !t_ref) () in
  (tracer, fun ms -> t_ref := !t_ref +. ms)

(* --- tracer --- *)

let test_span_nesting () =
  let tracer, advance = make_tracer () in
  let outer = Tracer.begin_span tracer ~cat:"test" "outer" in
  advance 1.0;
  Tracer.with_span tracer ~cat:"test" "inner" (fun () -> advance 2.0);
  advance 1.0;
  Tracer.end_span tracer outer;
  match Tracer.events tracer with
  | [ inner; outer ] ->
      Alcotest.(check string) "inner first (ends first)" "inner" inner.Tracer.name;
      Alcotest.(check string) "outer second" "outer" outer.Tracer.name;
      let dur e =
        match e.Tracer.kind with
        | Tracer.Span { dur } -> dur
        | Tracer.Instant -> Alcotest.fail "expected a span"
      in
      Alcotest.(check (float 1e-9)) "inner duration" 2.0 (dur inner);
      Alcotest.(check (float 1e-9)) "outer duration" 4.0 (dur outer);
      (* containment: the inner span lies inside the outer one *)
      Alcotest.(check bool) "inner starts after outer" true
        (inner.Tracer.ts >= outer.Tracer.ts);
      Alcotest.(check bool) "inner ends before outer" true
        (inner.Tracer.ts +. dur inner <= outer.Tracer.ts +. dur outer)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_on_exception () =
  let tracer, advance = make_tracer () in
  (try
     Tracer.with_span tracer "doomed" (fun () ->
         advance 3.0;
         raise Exit)
   with Exit -> ());
  match Tracer.events tracer with
  | [ { Tracer.name = "doomed"; kind = Tracer.Span { dur }; _ } ] ->
      Alcotest.(check (float 1e-9)) "span recorded despite raise" 3.0 dur
  | _ -> Alcotest.fail "span not recorded on exception"

let test_ring_bounding () =
  let tracer, advance = make_tracer ~capacity:8 () in
  for i = 1 to 20 do
    advance 1.0;
    Tracer.instant tracer (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "capacity" 8 (Tracer.capacity tracer);
  Alcotest.(check int) "length bounded" 8 (Tracer.length tracer);
  Alcotest.(check int) "evictions counted" 12 (Tracer.dropped tracer);
  let names = List.map (fun e -> e.Tracer.name) (Tracer.events tracer) in
  Alcotest.(check (list string)) "last 8, oldest first"
    [ "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]
    names;
  Tracer.clear tracer;
  Alcotest.(check int) "clear empties" 0 (Tracer.length tracer);
  Alcotest.(check int) "clear resets dropped" 0 (Tracer.dropped tracer)

(* --- metrics --- *)

let test_counters () =
  let m = Metrics.create () in
  Alcotest.(check int) "unknown is 0" 0 (Metrics.counter m "nope");
  Metrics.incr m "a";
  Metrics.incr m ~by:4 "a";
  Metrics.incr m "b";
  Alcotest.(check int) "accumulates" 5 (Metrics.counter m "a");
  Alcotest.(check (list (pair string int))) "sorted listing"
    [ ("a", 5); ("b", 1) ] (Metrics.counters m);
  Alcotest.(check bool) "negative by rejected" true
    (match Metrics.incr m ~by:(-1) "a" with
    | exception Invalid_argument _ -> true
    | () -> false);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.counter m "a")

let test_histograms () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat") [ 1.0; 2.0; 3.0 ];
  (match Metrics.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 3 h.Metrics.count;
      Alcotest.(check (float 1e-9)) "sum" 6.0 h.Metrics.sum;
      Alcotest.(check (float 1e-9)) "mean" 2.0 h.Metrics.mean;
      Alcotest.(check (float 1e-9)) "min" 1.0 h.Metrics.min_v;
      Alcotest.(check (float 1e-9)) "max" 3.0 h.Metrics.max_v;
      Alcotest.(check bool) "p50 in range" true
        (h.Metrics.p50 >= 1.0 && h.Metrics.p50 <= 3.0);
      Alcotest.(check bool) "p99 in range" true
        (h.Metrics.p99 >= 1.0 && h.Metrics.p99 <= 3.0));
  (* single-value series: percentiles clamp to the exact value *)
  Metrics.observe m "single" 42.0;
  match Metrics.histogram m "single" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check (float 1e-9)) "single p50" 42.0 h.Metrics.p50;
      Alcotest.(check (float 1e-9)) "single p99" 42.0 h.Metrics.p99

let test_observe_guard () =
  (* regression: a single NaN sample used to poison sum/mean/min/max for
     the rest of the series; negatives broke the bucket walk. Both must
     be dropped and counted, leaving the good samples' stats intact. *)
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat") [ 1.0; Float.nan; -5.0; 3.0; Float.neg_infinity ];
  match Metrics.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count excludes dropped" 2 h.Metrics.count;
      Alcotest.(check int) "dropped counted" 3 h.Metrics.dropped;
      Alcotest.(check (float 1e-9)) "sum unpoisoned" 4.0 h.Metrics.sum;
      Alcotest.(check (float 1e-9)) "mean unpoisoned" 2.0 h.Metrics.mean;
      Alcotest.(check (float 1e-9)) "min unpoisoned" 1.0 h.Metrics.min_v;
      Alcotest.(check (float 1e-9)) "max unpoisoned" 3.0 h.Metrics.max_v;
      Alcotest.(check bool) "p50 finite" true (Float.is_finite h.Metrics.p50)

(* --- JSON / exporters --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "x" ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_control_chars () =
  (* every control character 0x00-0x1F must survive a round-trip — PAL
     inputs/outputs are arbitrary bytes and end up in trace args *)
  for c = 0 to 0x1f do
    let s = Printf.sprintf "a%cb" (Char.chr c) in
    let v = Json.Obj [ ("k", Json.String s) ] in
    match Json.of_string (Json.to_string v) with
    | Ok v' ->
        Alcotest.(check bool) (Printf.sprintf "0x%02x roundtrip" c) true (v = v')
    | Error e -> Alcotest.failf "0x%02x: parse failed: %s" c e
  done;
  (* the full span in one string, plus the chars with short escapes *)
  let all = String.init 0x20 Char.chr ^ "\"\\/" in
  match Json.of_string (Json.to_string (Json.String all)) with
  | Ok (Json.String s) -> Alcotest.(check string) "all controls" all s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_chrome_trace_wellformed () =
  let tracer, advance = make_tracer () in
  Tracer.instant tracer ~args:[ ("k", Tracer.Str "v") ] "boot";
  let h = Tracer.begin_span tracer ~cat:"phase" "work" in
  advance 2.5;
  Tracer.end_span tracer h;
  let s = Export.chrome_trace_string ~process_name:"test" tracer in
  match Json.of_string s with
  | Error e -> Alcotest.failf "trace JSON unparsable: %s" e
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List evs) ->
          (* metadata + instant + span *)
          Alcotest.(check int) "event count" 3 (List.length evs);
          let has ph =
            List.exists
              (fun e -> Json.member "ph" e = Some (Json.String ph))
              evs
          in
          Alcotest.(check bool) "has metadata" true (has "M");
          Alcotest.(check bool) "has instant" true (has "i");
          Alcotest.(check bool) "has span" true (has "X");
          let span =
            List.find (fun e -> Json.member "ph" e = Some (Json.String "X")) evs
          in
          (match Option.bind (Json.member "dur" span) Json.to_float with
          | Some d ->
              (* 2.5 simulated ms = 2500 trace-format microseconds *)
              Alcotest.(check (float 1e-6)) "ms to us" 2500.0 d
          | None -> Alcotest.fail "span missing dur")
      | _ -> Alcotest.fail "traceEvents missing")

let test_stats_json () =
  let m = Metrics.create () in
  Metrics.incr m "runs";
  Metrics.observe m "lat" 4.0;
  match Json.of_string (Json.to_string (Export.stats_json m)) with
  | Error e -> Alcotest.failf "stats JSON unparsable: %s" e
  | Ok json ->
      (match Json.member "counters" json with
      | Some (Json.Obj [ ("runs", Json.Int 1) ]) -> ()
      | _ -> Alcotest.fail "counters wrong");
      (match Json.member "histograms" json with
      | Some (Json.List [ h ]) ->
          Alcotest.(check bool) "histogram named" true
            (Json.member "name" h = Some (Json.String "lat"))
      | _ -> Alcotest.fail "histograms wrong")

(* --- bench diff --- *)

let doc records =
  (* records: (label, metric fields) under one artifact tag *)
  Json.List
    (List.map
       (fun (label, fields) ->
         Json.Obj
           (("artifact", Json.String "t") :: ("label", Json.String label) :: fields))
       records)

let diff ?wall_tolerance_pct baseline current =
  match Bench_diff.compare ?wall_tolerance_pct ~baseline ~current () with
  | Ok r -> r
  | Error e -> Alcotest.failf "compare failed: %s" e

let test_bench_diff_clean () =
  let d =
    doc
      [
        ("a", [ ("ms", Json.Float 1.5); ("ops", Json.Int 9) ]);
        ("b", [ ("ops", Json.Int 2) ]);
      ]
  in
  let r = diff d d in
  Alcotest.(check int) "records" 2 r.Bench_diff.records_compared;
  (* identity fields (artifact, label) are compared like any other *)
  Alcotest.(check int) "fields" 7 r.Bench_diff.fields_identical;
  Alcotest.(check bool) "clean" true (Bench_diff.clean r);
  Alcotest.(check bool) "clean strict" true (Bench_diff.clean ~strict_wall:true r)

let test_bench_diff_metric_change () =
  let base = doc [ ("a", [ ("ops", Json.Int 9) ]) ] in
  let cur = doc [ ("a", [ ("ops", Json.Int 8) ]) ] in
  let r = diff base cur in
  Alcotest.(check bool) "not clean" false (Bench_diff.clean r);
  match r.Bench_diff.regressions with
  | [ d ] ->
      Alcotest.(check string) "record" "t/a" d.Bench_diff.record;
      Alcotest.(check string) "field" "ops" d.Bench_diff.field
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)

let test_bench_diff_wall_band () =
  let base = doc [ ("a", [ ("wall_ms", Json.Float 10.0) ]) ] in
  let near = doc [ ("a", [ ("wall_ms", Json.Float 11.0) ]) ] in
  let far = doc [ ("a", [ ("wall_ms", Json.Float 20.0) ]) ] in
  let r = diff base near in
  Alcotest.(check int) "in band" 1 r.Bench_diff.wall_within;
  Alcotest.(check bool) "near clean" true (Bench_diff.clean ~strict_wall:true r);
  let r = diff base far in
  Alcotest.(check int) "drifted" 1 (List.length r.Bench_diff.wall_drift);
  (* wall drift warns by default and only fails under --threshold *)
  Alcotest.(check bool) "default clean" true (Bench_diff.clean r);
  Alcotest.(check bool) "strict fails" false (Bench_diff.clean ~strict_wall:true r);
  let r = diff ~wall_tolerance_pct:150.0 base far in
  Alcotest.(check bool) "wide band absorbs" true
    (Bench_diff.clean ~strict_wall:true r)

let test_bench_diff_schema () =
  let base = doc [ ("a", [ ("ops", Json.Int 1) ]); ("gone", []) ] in
  let cur =
    doc [ ("a", [ ("ops", Json.Int 1); ("extra_field", Json.Int 7) ]); ("new", []) ]
  in
  let r = diff base cur in
  Alcotest.(check (list string)) "missing" [ "t/gone" ] r.Bench_diff.missing;
  Alcotest.(check (list string)) "extra" [ "t/new" ] r.Bench_diff.extra;
  (* an unbaselined field is a schema regression too *)
  Alcotest.(check int) "field regressions" 1 (List.length r.Bench_diff.regressions);
  Alcotest.(check bool) "not clean" false (Bench_diff.clean r)

let test_bench_diff_duplicate_labels () =
  (* repeated (artifact, label) pairs pair up by occurrence order *)
  let base = doc [ ("a", [ ("v", Json.Int 1) ]); ("a", [ ("v", Json.Int 2) ]) ] in
  let cur = doc [ ("a", [ ("v", Json.Int 1) ]); ("a", [ ("v", Json.Int 3) ]) ] in
  let r = diff base cur in
  Alcotest.(check int) "records" 2 r.Bench_diff.records_compared;
  match r.Bench_diff.regressions with
  | [ d ] -> Alcotest.(check string) "second occurrence" "t/a#1" d.Bench_diff.record
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l)

let test_bench_diff_new_artifact () =
  (* an artifact with no baseline at all is flagged as such — not as
     per-record schema drift — and still fails the gate *)
  let tagged artifact label fields =
    Json.Obj
      (("artifact", Json.String artifact) :: ("label", Json.String label) :: fields)
  in
  let base = Json.List [ tagged "t" "a" [ ("ops", Json.Int 1) ] ] in
  let cur =
    Json.List
      [
        tagged "t" "a" [ ("ops", Json.Int 1) ];
        tagged "serve" "hit0" [ ("rps", Json.Int 7) ];
        tagged "serve" "hit90" [ ("rps", Json.Int 49) ];
      ]
  in
  let r = diff base cur in
  Alcotest.(check (list (pair string int)))
    "new artifact counted" [ ("serve", 2) ] r.Bench_diff.new_artifacts;
  Alcotest.(check (list string)) "not misreported as extra" [] r.Bench_diff.extra;
  Alcotest.(check int) "no field regressions" 0
    (List.length r.Bench_diff.regressions);
  Alcotest.(check bool) "still fails the gate" false (Bench_diff.clean r);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let rendered = Bench_diff.render r in
  Alcotest.(check bool) "render names the missing baseline" true
    (contains rendered "BENCH_serve.json");
  Alcotest.(check bool) "render says not schema drift" true
    (contains rendered "not schema drift");
  (* a known artifact with a stray record is still plain schema drift *)
  let cur' =
    Json.List [ tagged "t" "a" [ ("ops", Json.Int 1) ]; tagged "t" "b" [] ]
  in
  let r' = diff base cur' in
  Alcotest.(check (list (pair string int)))
    "known artifact never flagged" [] r'.Bench_diff.new_artifacts;
  Alcotest.(check (list string)) "stray record is extra" [ "t/b" ]
    r'.Bench_diff.extra

let test_bench_diff_malformed () =
  let bad = Json.Obj [] in
  let ok = doc [] in
  Alcotest.(check bool) "non-array rejected" true
    (Result.is_error (Bench_diff.compare ~baseline:bad ~current:ok ()));
  let untagged = Json.List [ Json.Obj [ ("x", Json.Int 1) ] ] in
  Alcotest.(check bool) "untagged record rejected" true
    (Result.is_error (Bench_diff.compare ~baseline:ok ~current:untagged ()))

(* --- regression: TPM driver released on PAL exception --- *)

let make_env () =
  let machine = Machine.create ~memory_size:(1024 * 1024) Timing.default in
  let tpm = Tpm.create machine (Prng.create ~seed:"obs-env") ~key_bits:512 in
  Pal_env.create ~machine ~tpm ~rng:(Prng.create ~seed:"obs-rng") ~inputs:""
    ~inputs_addr:0x1000 ~outputs_addr:0x2000 ~protection:None ~heap:None

let test_with_tpm_releases_on_exception () =
  let env = make_env () in
  (match Replay.with_tpm env (fun _ -> raise Exit) with
  | exception Exit -> ()
  | Ok () | Error _ -> Alcotest.fail "callback exception should propagate");
  Alcotest.(check bool) "driver released after raise" false
    (Mod_tpm_driver.is_claimed env.Pal_env.tpm_driver);
  (* and it is actually claimable again *)
  (match Mod_tpm_driver.claim env.Pal_env.tpm_driver with
  | Ok () -> Mod_tpm_driver.release env.Pal_env.tpm_driver
  | Error e -> Alcotest.failf "driver still wedged: %s" e);
  (* the normal path still works *)
  match Replay.with_tpm env (fun _ -> Ok ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "normal path broken: %s" e

(* --- regression: DEV fails closed beyond its coverage --- *)

let test_dev_out_of_range () =
  let dev = Dev.create ~pages:4 in
  (* 4 pages x 4096 = 16384 bytes covered *)
  Alcotest.(check bool) "in-range unprotected allows" true
    (Dev.allows dev ~addr:0 ~len:16384);
  Alcotest.(check bool) "straddling coverage is denied" false
    (Dev.allows dev ~addr:16000 ~len:1024);
  Alcotest.(check bool) "fully beyond coverage is denied" false
    (Dev.allows dev ~addr:20000 ~len:16);
  (* range ops on the uncovered region are no-ops, not crashes *)
  Dev.protect_range dev ~addr:20000 ~len:4096;
  Dev.unprotect_range dev ~addr:20000 ~len:4096;
  Alcotest.(check (list int)) "bitmap untouched" [] (Dev.protected_pages dev);
  (* per-page query on a nonexistent page is still a caller bug *)
  Alcotest.(check bool) "is_page_protected raises" true
    (match Dev.is_page_protected dev 4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dma_beyond_memory_blocked () =
  let machine = Machine.create ~memory_size:16384 Timing.default in
  let nic = Dma.create machine ~name:"evil-nic" in
  (match Dma.read nic ~addr:(10 * 16384) ~len:64 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "DMA beyond physical memory must be blocked");
  Alcotest.(check int) "blocked DMA counted" 1
    (Flicker_obs.Metrics.counter machine.Machine.metrics "dev.blocked_dma")

(* --- regression: zero-byte GetRandom costs nothing --- *)

let test_zero_byte_get_random () =
  Alcotest.(check (float 0.0)) "timing model" 0.0
    (Timing.get_random_ms Timing.default ~bytes:0);
  Alcotest.(check bool) "one block still costs" true
    (Timing.get_random_ms Timing.default ~bytes:1 > 0.0);
  let machine = Machine.create ~memory_size:16384 Timing.default in
  let tpm = Tpm.create machine (Prng.create ~seed:"zr") ~key_bits:512 in
  let t0 = Clock.now machine.Machine.clock in
  Alcotest.(check string) "empty string back" "" (Tpm.get_random tpm 0);
  Alcotest.(check (float 0.0)) "clock unmoved" t0 (Clock.now machine.Machine.clock)

(* --- regression: long-running platforms keep bounded event memory --- *)

let test_bounded_event_memory () =
  let machine =
    Machine.create ~memory_size:(1024 * 1024) ~trace_capacity:256 Timing.default
  in
  let sched = Scheduler.create machine in
  for _ = 1 to 10_000 do
    Scheduler.suspend sched;
    Machine.log_event machine "tick";
    Scheduler.resume sched
  done;
  Alcotest.(check bool) "retained events bounded" true
    (Machine.event_count machine <= 256);
  Alcotest.(check bool) "older events were evicted" true
    (Machine.events_dropped machine > 0);
  Alcotest.(check int) "suspensions all counted" 10_000
    (Metrics.counter machine.Machine.metrics "os.suspensions")

let test_session_events_bounded () =
  (* real sessions through the full stack also stay within the ring *)
  let p = Platform.create ~seed:"obs-sessions" () in
  let pal =
    Flicker_slb.Pal.define ~name:"obs-noop" (fun env ->
        Flicker_slb.Pal_env.set_output env "ok")
  in
  for _ = 1 to 5 do
    match Session.execute p ~pal () with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "session failed: %s" (Format.asprintf "%a" Session.pp_error e)
  done;
  let machine = p.Platform.machine in
  Alcotest.(check bool) "events within capacity" true
    (Machine.event_count machine
    <= Tracer.capacity machine.Machine.tracer);
  Alcotest.(check int) "runs counted" 5
    (Metrics.counter machine.Machine.metrics "session.runs");
  (* every phase of the last session appears as a span on the tracer *)
  let span_names =
    List.filter_map
      (fun e ->
        match e.Tracer.kind with
        | Tracer.Span _ when e.Tracer.cat = "session.phase" -> Some e.Tracer.name
        | _ -> None)
      (Tracer.events machine.Machine.tracer)
  in
  List.iter
    (fun phase ->
      let name = Session.phase_name phase in
      Alcotest.(check bool) (name ^ " span present") true
        (List.mem name span_names))
    [ Session.Load_slb; Session.Suspend_os; Session.Skinit; Session.Slb_init;
      Session.Pal_execution; Session.Cleanup; Session.Pcr_extends;
      Session.Resume_os ]

let () =
  Alcotest.run "obs"
    [
      ( "tracer",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span on exception" `Quick test_span_on_exception;
          Alcotest.test_case "ring bounding" `Quick test_ring_bounding;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "observe drops NaN and negatives" `Quick
            test_observe_guard;
        ] );
      ( "export",
        [
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "json control chars" `Quick test_json_control_chars;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace_wellformed;
          Alcotest.test_case "stats json" `Quick test_stats_json;
        ] );
      ( "bench-diff",
        [
          Alcotest.test_case "identical is clean" `Quick test_bench_diff_clean;
          Alcotest.test_case "metric change regresses" `Quick
            test_bench_diff_metric_change;
          Alcotest.test_case "wall-clock tolerance band" `Quick
            test_bench_diff_wall_band;
          Alcotest.test_case "schema changes regress" `Quick
            test_bench_diff_schema;
          Alcotest.test_case "duplicate labels pair by occurrence" `Quick
            test_bench_diff_duplicate_labels;
          Alcotest.test_case "new artifact distinguished from drift" `Quick
            test_bench_diff_new_artifact;
          Alcotest.test_case "malformed input rejected" `Quick
            test_bench_diff_malformed;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "tpm driver released on exception" `Quick
            test_with_tpm_releases_on_exception;
          Alcotest.test_case "dev out of range" `Quick test_dev_out_of_range;
          Alcotest.test_case "dma beyond memory" `Quick
            test_dma_beyond_memory_blocked;
          Alcotest.test_case "zero-byte get_random" `Quick
            test_zero_byte_get_random;
          Alcotest.test_case "bounded event memory" `Quick
            test_bounded_event_memory;
          Alcotest.test_case "session events bounded" `Quick
            test_session_events_bounded;
        ] );
    ]
