(* The Section 5.2 PAL extraction tool: call-graph slicing, stdlib
   advice, type closure, and standalone-program rendering. *)

open Flicker_extract
module Pal = Flicker_slb.Pal

(* A miniature OpenSSH-like program: the target is the password check,
   buried in a server with networking and logging around it. *)
let sshd =
  {
    Extract.functions =
      [
        Extract.fn "main" ~calls:[ "socket"; "accept_loop" ]
          ~uses_types:[ "server_config" ] ~body:"int main(void) { ... }" ~loc:30;
        Extract.fn "accept_loop" ~calls:[ "recv"; "handle_auth"; "printf" ]
          ~uses_types:[ "connection" ]
          ~body:"static void accept_loop(void) { ... }" ~loc:60;
        Extract.fn "handle_auth" ~calls:[ "check_password"; "log_attempt" ]
          ~uses_types:[ "connection"; "auth_ctxt" ]
          ~body:"static int handle_auth(connection *c) { ... }" ~loc:40;
        Extract.fn "check_password" ~calls:[ "md5crypt"; "constant_time_eq"; "malloc" ]
          ~uses_types:[ "auth_ctxt"; "passwd_entry" ]
          ~body:"int check_password(auth_ctxt *a, const char *pw) { ... }" ~loc:25;
        Extract.fn "md5crypt" ~calls:[ "md5_init"; "md5_update"; "memcpy" ]
          ~uses_types:[ "md5_ctx" ]
          ~body:"char *md5crypt(const char *salt, const char *pw) { ... }" ~loc:120;
        Extract.fn "md5_init" ~uses_types:[ "md5_ctx" ]
          ~body:"void md5_init(md5_ctx *c) { ... }" ~loc:10;
        Extract.fn "md5_update" ~calls:[ "memcpy" ] ~uses_types:[ "md5_ctx" ]
          ~body:"void md5_update(md5_ctx *c, ...) { ... }" ~loc:35;
        Extract.fn "constant_time_eq"
          ~body:"int constant_time_eq(const char *a, const char *b) { ... }" ~loc:8;
        Extract.fn "log_attempt" ~calls:[ "fprintf" ]
          ~body:"static void log_attempt(...) { ... }" ~loc:12;
        (* mutual recursion, to exercise cycle handling *)
        Extract.fn "even" ~calls:[ "odd" ] ~body:"int even(int n) { ... }" ~loc:3;
        Extract.fn "odd" ~calls:[ "even" ] ~body:"int odd(int n) { ... }" ~loc:3;
      ];
    types =
      [
        { Extract.tname = "server_config"; type_depends = []; definition = "struct server_config {...};" };
        { Extract.tname = "connection"; type_depends = [ "server_config" ]; definition = "struct connection {...};" };
        { Extract.tname = "auth_ctxt"; type_depends = [ "passwd_entry" ]; definition = "struct auth_ctxt {...};" };
        { Extract.tname = "passwd_entry"; type_depends = []; definition = "struct passwd_entry {...};" };
        { Extract.tname = "md5_ctx"; type_depends = []; definition = "struct md5_ctx {...};" };
      ];
  }

let slice () =
  match Extract.extract sshd ~target:"check_password" with
  | Ok e -> e
  | Error msg -> Alcotest.fail msg

let names e = List.map (fun f -> f.Extract.fname) e.Extract.required_functions

let test_slice_functions () =
  let e = slice () in
  Alcotest.(check bool) "includes target" true (List.mem "check_password" (names e));
  Alcotest.(check bool) "includes md5crypt chain" true
    (List.for_all (fun n -> List.mem n (names e)) [ "md5crypt"; "md5_init"; "md5_update" ]);
  Alcotest.(check bool) "excludes the server" true
    (List.for_all (fun n -> not (List.mem n (names e))) [ "main"; "accept_loop"; "log_attempt" ]);
  Alcotest.(check int) "loc" (25 + 120 + 10 + 35 + 8) e.Extract.extracted_loc

let test_callees_before_callers () =
  let e = slice () in
  let index name =
    let rec go i = function
      | [] -> -1
      | n :: rest -> if n = name then i else go (i + 1) rest
    in
    go 0 (names e)
  in
  Alcotest.(check bool) "md5_init before md5crypt" true (index "md5_init" < index "md5crypt");
  Alcotest.(check bool) "md5crypt before check_password" true
    (index "md5crypt" < index "check_password")

let test_type_closure () =
  let e = slice () in
  let tnames = List.map (fun t -> t.Extract.tname) e.Extract.required_types in
  Alcotest.(check bool) "direct types" true
    (List.mem "auth_ctxt" tnames && List.mem "md5_ctx" tnames);
  Alcotest.(check bool) "transitive type dep" true (List.mem "passwd_entry" tnames);
  Alcotest.(check bool) "unrelated type excluded" true (not (List.mem "server_config" tnames))

let test_stdlib_advice () =
  let e = slice () in
  (match List.assoc_opt "malloc" e.Extract.stdlib_calls with
  | Some (Extract.Link_module Pal.Memory_management) -> ()
  | _ -> Alcotest.fail "malloc advice wrong");
  (match List.assoc_opt "memcpy" e.Extract.stdlib_calls with
  | Some (Extract.Inline_replacement _) -> ()
  | _ -> Alcotest.fail "memcpy advice wrong");
  Alcotest.(check bool) "no printf in this slice" true
    (List.assoc_opt "printf" e.Extract.stdlib_calls = None);
  Alcotest.(check (list string)) "no unresolved" [] e.Extract.unresolved;
  Alcotest.(check bool) "no blockers" false (Extract.has_blockers e)

let test_suggested_modules () =
  let e = slice () in
  Alcotest.(check bool) "memory module suggested" true
    (List.mem Pal.Memory_management (Extract.suggested_modules e))

let test_blockers () =
  (* slicing accept_loop drags in recv -> forbidden *)
  match Extract.extract sshd ~target:"accept_loop" with
  | Error msg -> Alcotest.fail msg
  | Ok e ->
      Alcotest.(check bool) "recv is a blocker" true (Extract.has_blockers e);
      (match List.assoc_opt "printf" e.Extract.stdlib_calls with
      | Some Extract.Eliminate -> ()
      | _ -> Alcotest.fail "printf advice wrong")

let test_cycles () =
  match Extract.extract sshd ~target:"even" with
  | Error msg -> Alcotest.fail msg
  | Ok e ->
      Alcotest.(check bool) "both cycle members once" true
        (List.sort compare (names e) = [ "even"; "odd" ])

let test_advice_table_gaps () =
  let check_advice name expected_kind =
    match (Extract.stdlib_advice name, expected_kind) with
    | Some Extract.Eliminate, `Eliminate -> ()
    | Some (Extract.Inline_replacement _), `Inline -> ()
    | Some (Extract.Link_module m), `Link m' when m = m' -> ()
    | Some (Extract.Forbidden _), `Forbidden -> ()
    | _ -> Alcotest.fail (name ^ ": wrong advice")
  in
  List.iter (fun n -> check_advice n `Eliminate) [ "sprintf"; "snprintf" ];
  List.iter (fun n -> check_advice n `Inline) [ "strcpy"; "strcat"; "strncat" ];
  List.iter (fun n -> check_advice n (`Link Pal.Memory_management)) [ "sbrk"; "mmap" ];
  List.iter (fun n -> check_advice n `Forbidden) [ "time"; "gettimeofday" ];
  check_advice "tpm_transmit" (`Link Pal.Tpm_driver);
  check_advice "sc_keygen" (`Link Pal.Secure_channel)

let test_index_lookup () =
  let idx = Extract.index sshd in
  (match Extract.find_func idx "md5crypt" with
  | Some fn -> Alcotest.(check int) "md5crypt loc" 120 fn.Extract.loc
  | None -> Alcotest.fail "md5crypt not indexed");
  Alcotest.(check bool) "missing func" true (Extract.find_func idx "nope" = None);
  (match Extract.find_type idx "auth_ctxt" with
  | Some t -> Alcotest.(check (list string)) "deps" [ "passwd_entry" ] t.Extract.type_depends
  | None -> Alcotest.fail "auth_ctxt not indexed");
  (* a prebuilt index gives the same slice as the per-call one *)
  match (Extract.extract ~index:idx sshd ~target:"check_password",
         Extract.extract sshd ~target:"check_password") with
  | Ok a, Ok b -> Alcotest.(check (list string)) "same slice" (names b) (names a)
  | _ -> Alcotest.fail "extraction failed"

let test_unknown_target () =
  Alcotest.(check bool) "missing target" true
    (Result.is_error (Extract.extract sshd ~target:"nonexistent"))

let test_unresolved_reported () =
  let prog =
    {
      Extract.functions =
        [ Extract.fn "f" ~calls:[ "mystery_helper" ] ~body:"void f(void) {}" ~loc:2 ];
      types = [];
    }
  in
  match Extract.extract prog ~target:"f" with
  | Error e -> Alcotest.fail e
  | Ok e -> Alcotest.(check (list string)) "unresolved" [ "mystery_helper" ] e.Extract.unresolved

let test_render () =
  let e = slice () in
  let text = Extract.render_standalone e in
  let contains needle =
    let rec scan i =
      i + String.length needle <= String.length text
      && (String.sub text i (String.length needle) = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "mentions target" true (contains "check_password");
  Alcotest.(check bool) "carries bodies" true (contains "char *md5crypt");
  Alcotest.(check bool) "carries type defs" true (contains "struct md5_ctx");
  Alcotest.(check bool) "advises on malloc" true (contains "malloc");
  (* the report printer runs without error *)
  Alcotest.(check bool) "report" true
    (String.length (Format.asprintf "%a" Extract.report e) > 0)

let () =
  Alcotest.run "extract"
    [
      ( "slicing",
        [
          Alcotest.test_case "functions" `Quick test_slice_functions;
          Alcotest.test_case "ordering" `Quick test_callees_before_callers;
          Alcotest.test_case "type closure" `Quick test_type_closure;
          Alcotest.test_case "cycles" `Quick test_cycles;
          Alcotest.test_case "unknown target" `Quick test_unknown_target;
          Alcotest.test_case "unresolved reported" `Quick test_unresolved_reported;
        ] );
      ( "advice",
        [
          Alcotest.test_case "stdlib advice" `Quick test_stdlib_advice;
          Alcotest.test_case "advice table gaps" `Quick test_advice_table_gaps;
          Alcotest.test_case "suggested modules" `Quick test_suggested_modules;
          Alcotest.test_case "blockers" `Quick test_blockers;
        ] );
      ("indexing", [ Alcotest.test_case "hashtbl index" `Quick test_index_lookup ]);
      ("rendering", [ Alcotest.test_case "standalone program" `Quick test_render ]);
    ]
