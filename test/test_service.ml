(* Tests for the fleet serving layer (flicker_service) and the satellite
   changes that ride with it: scheduler pruning, the Os_busy split, the
   retry helper, and CA batch signing. *)

open Flicker_service
module Platform = Flicker_core.Platform
module Session = Flicker_core.Session
module Scheduler = Flicker_os.Scheduler
module Machine = Flicker_hw.Machine
module Clock = Flicker_hw.Clock
module Timing = Flicker_hw.Timing
module Metrics = Flicker_obs.Metrics
module Prng = Flicker_crypto.Prng
module Rsa = Flicker_crypto.Rsa
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module CA = Flicker_apps.Cert_authority

(* --- event queue ---------------------------------------------------- *)

let test_event_queue_ordering () =
  let q = Event_queue.create () in
  List.iter (fun (at, v) -> Event_queue.push q ~at_ms:at v)
    [ (5.0, "e"); (1.0, "a"); (3.0, "c"); (1.0, "b"); (3.0, "d") ];
  Alcotest.(check int) "length" 5 (Event_queue.length q);
  Alcotest.(check (option (float 1e-9))) "peek" (Some 1.0) (Event_queue.peek_ms q);
  let drained = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, v) ->
        drained := v :: !drained;
        drain ()
  in
  drain ();
  (* time-ordered, FIFO among equal timestamps *)
  Alcotest.(check (list string)) "stable order"
    [ "a"; "b"; "c"; "d"; "e" ] (List.rev !drained);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

(* the pop in the old implementation left the popped payload reachable
   from the heap array; after the fix a popped element is collectable as
   soon as the caller drops it *)
let test_event_queue_releases_payloads () =
  let q = Event_queue.create () in
  let w = Weak.create 1 in
  let () =
    let s = String.init 64 (fun i -> Char.chr (i land 0x7f)) in
    Weak.set w 0 (Some s);
    Event_queue.push q ~at_ms:1.0 s
  in
  (match Event_queue.pop q with
  | Some (_, _) -> ()
  | None -> Alcotest.fail "queue lost the element");
  Gc.full_major ();
  Alcotest.(check bool) "popped payload released" false (Weak.check w 0);
  (* the queue itself is still alive and usable *)
  Event_queue.push q ~at_ms:2.0 "still works";
  Alcotest.(check int) "queue usable after pop" 1 (Event_queue.length q)

(* model-based property: pops always come out sorted by time, FIFO among
   equal timestamps, under arbitrary push/pop interleavings *)
let prop_event_queue_ordering =
  QCheck.Test.make ~name:"pop sorted by time, FIFO ties" ~count:300
    QCheck.(list (int_range (-10) 60))
    (fun ops ->
      let q = Event_queue.create () in
      let seq = ref 0 in
      (* pending pushes the queue must still hold, as (time, seq) *)
      let model = ref [] in
      let min_pending pending =
        List.fold_left
          (fun best x ->
            match best with
            | None -> Some x
            | Some (bt, bs) ->
                let xt, xs = x in
                if xt < bt || (xt = bt && xs < bs) then Some x else best)
          None pending
      in
      let step op =
        if op >= 0 then begin
          (* a handful of distinct timestamps, so ties are common *)
          let at = float_of_int (op mod 7) in
          Event_queue.push q ~at_ms:at !seq;
          model := (at, !seq) :: !model;
          incr seq;
          true
        end
        else
          match (Event_queue.pop q, !model) with
          | None, [] -> true
          | None, _ :: _ | Some _, [] -> false
          | Some (at, v), pending -> (
              match min_pending pending with
              | Some (et, es) when et = at && es = v ->
                  model := List.filter (fun (_, s) -> s <> es) pending;
                  true
              | _ -> false)
      in
      let interleaved = List.for_all step ops in
      (* drain whatever is left: the tail must come out in order too *)
      let rec drain () =
        match (Event_queue.pop q, !model) with
        | None, [] -> true
        | None, _ :: _ | Some _, [] -> false
        | Some (at, v), pending -> (
            match min_pending pending with
            | Some (et, es) when et = at && es = v ->
                model := List.filter (fun (_, s) -> s <> es) pending;
                drain ()
            | _ -> false)
      in
      interleaved && drain ())

(* --- fleet ----------------------------------------------------------- *)

let echo_config ~platforms ~queue_depth ~batch_size ~policy ~seed =
  { Fleet.default_config with platforms; queue_depth; batch_size; policy; seed }

let run_echo_fleet ~seed =
  let config =
    echo_config ~platforms:3 ~queue_depth:16 ~batch_size:4
      ~policy:Dispatch.Least_loaded ~seed
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:50.0 ()) in
  Fleet.submit_open_loop fleet ~clients:4 ~per_client:5 ~mean_gap_ms:30.0
    ~payload:(fun ~client ~seq -> Printf.sprintf "req-%d-%d" client seq)
    ();
  Fleet.run fleet;
  fleet

let test_determinism () =
  let a = run_echo_fleet ~seed:"det" in
  let b = run_echo_fleet ~seed:"det" in
  let sa = Fleet.summary a and sb = Fleet.summary b in
  Alcotest.(check int) "submitted" 20 sa.Fleet.submitted;
  Alcotest.(check int) "all completed" 20 sa.Fleet.completed;
  Alcotest.(check int) "same completed" sa.Fleet.completed sb.Fleet.completed;
  Alcotest.(check (float 1e-9)) "same makespan" sa.Fleet.makespan_ms sb.Fleet.makespan_ms;
  Alcotest.(check (float 1e-9)) "same p95" sa.Fleet.latency_p95_ms sb.Fleet.latency_p95_ms;
  let schedule fleet =
    List.map
      (fun (r, d) ->
        match d with
        | Request.Completed c ->
            (r.Request.id, c.Request.platform, c.Request.finished_ms)
        | _ -> (r.Request.id, -1, nan))
      (Fleet.dispositions fleet)
  in
  Alcotest.(check bool) "identical schedules" true (schedule a = schedule b);
  (* a different seed shifts arrivals, so the schedule must differ *)
  let c = run_echo_fleet ~seed:"det2" in
  Alcotest.(check bool) "seed changes the schedule" true (schedule a <> schedule c)

let test_admission_control () =
  let config =
    echo_config ~platforms:1 ~queue_depth:2 ~batch_size:1
      ~policy:Dispatch.Round_robin ~seed:"admission"
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:100.0 ()) in
  for i = 1 to 8 do
    ignore (Fleet.submit fleet (Printf.sprintf "burst-%d" i))
  done;
  Fleet.run fleet;
  let s = Fleet.summary fleet in
  (* one dispatches immediately, two sit in the queue, the rest bounce *)
  Alcotest.(check int) "completed" 3 s.Fleet.completed;
  Alcotest.(check int) "rejected" 5 s.Fleet.rejected;
  Alcotest.(check int) "conservation" 8
    (s.Fleet.completed + s.Fleet.rejected + s.Fleet.expired + s.Fleet.failed);
  let m = Fleet.metrics fleet in
  Alcotest.(check int) "rejects exported" 5 (Metrics.counter m "fleet.rejected");
  Alcotest.(check int) "completions exported" 3 (Metrics.counter m "fleet.completed");
  (match Metrics.histogram m "fleet.queue_depth" with
  | Some h -> Alcotest.(check bool) "queue depth bounded" true (h.Metrics.max_v <= 2.0)
  | None -> Alcotest.fail "no queue-depth histogram")

let test_deadlines () =
  let config =
    echo_config ~platforms:1 ~queue_depth:8 ~batch_size:1
      ~policy:Dispatch.Least_loaded ~seed:"deadline"
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:400.0 ()) in
  let ids = List.init 4 (fun i ->
      Fleet.submit fleet ~deadline_ms:1100.0 (Printf.sprintf "d-%d" i))
  in
  Fleet.run fleet;
  let s = Fleet.summary fleet in
  Alcotest.(check int) "completed" 3 s.Fleet.completed;
  Alcotest.(check int) "expired in queue" 1 s.Fleet.expired;
  Alcotest.(check int) "third finished late" 1 s.Fleet.deadline_misses;
  (* the expired one is the last, and it never consumed a session *)
  (match Fleet.disposition_of fleet (List.nth ids 3) with
  | Some (Request.Expired _) -> ()
  | d ->
      Alcotest.failf "expected expiry, got %s"
        (match d with
        | Some disp -> Request.disposition_name disp
        | None -> "nothing"));
  Alcotest.(check int) "three sessions only" 3 s.Fleet.sessions

(* regression for the deadline-boundary inconsistency: one helper, one
   convention (exactly-at-deadline is on time), and the response's return
   transit counts toward the client-perceived miss decision *)
let test_deadline_boundary () =
  let mk deadline =
    let config =
      echo_config ~platforms:1 ~queue_depth:8 ~batch_size:1
        ~policy:Dispatch.Least_loaded ~seed:"boundary"
    in
    let fleet = Fleet.create ~config (Workload.echo ~work_ms:100.0 ()) in
    let id = Fleet.submit fleet ?deadline_ms:deadline "boundary-req" in
    Fleet.run fleet;
    (fleet, id)
  in
  (* learn this deterministic schedule's exact finish and delivery *)
  let fleet0, id0 = mk None in
  let c0 =
    match Fleet.disposition_of fleet0 id0 with
    | Some (Request.Completed c) -> c
    | _ -> Alcotest.fail "no completion"
  in
  let rel_delivered = c0.Request.latency_ms in
  let sent =
    match Fleet.dispositions fleet0 with
    | [ (r, _) ] -> r.Request.sent_ms
    | _ -> Alcotest.fail "expected exactly one request"
  in
  let rel_finished = c0.Request.finished_ms -. sent in
  Alcotest.(check bool) "return transit is nonzero" true
    (rel_delivered > rel_finished);
  (* a deadline between finish and delivery: the machine was done in
     time, but the client got the answer late — that is a miss *)
  let mid = (rel_finished +. rel_delivered) /. 2.0 in
  let fleet1, id1 = mk (Some mid) in
  (match Fleet.disposition_of fleet1 id1 with
  | Some (Request.Completed c) ->
      Alcotest.(check bool) "return transit counts toward the miss" true
        c.Request.missed_deadline
  | _ -> Alcotest.fail "expected completion");
  (* a comfortably later deadline: on time *)
  let fleet2, id2 = mk (Some (rel_delivered +. 1.0)) in
  (match Fleet.disposition_of fleet2 id2 with
  | Some (Request.Completed c) ->
      Alcotest.(check bool) "later deadline met" false c.Request.missed_deadline
  | _ -> Alcotest.fail "expected completion");
  (* the helper pins the exact-boundary convention for every caller *)
  Alcotest.(check bool) "exactly at the deadline is on time" false
    (Fleet.past_deadline ~deadline_ms:(Some 100.0) ~at_ms:100.0);
  Alcotest.(check bool) "strictly after is late" true
    (Fleet.past_deadline ~deadline_ms:(Some 100.0) ~at_ms:100.000001);
  Alcotest.(check bool) "no deadline never misses" false
    (Fleet.past_deadline ~deadline_ms:None ~at_ms:1e12)

let completed_platforms fleet =
  List.filter_map
    (fun (r, d) ->
      match d with
      | Request.Completed c -> Some (r, c.Request.platform)
      | _ -> None)
    (Fleet.dispositions fleet)

let test_sealed_affinity_routing () =
  let config =
    echo_config ~platforms:4 ~queue_depth:64 ~batch_size:2
      ~policy:Dispatch.Sealed_affinity ~seed:"affinity"
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:20.0 ()) in
  Fleet.submit_open_loop fleet ~clients:5 ~per_client:6 ~mean_gap_ms:40.0
    ~payload:(fun ~client ~seq -> Printf.sprintf "aff-%d-%d" client seq)
    ();
  Fleet.run fleet;
  Alcotest.(check int) "all served" 30 (Fleet.summary fleet).Fleet.completed;
  (* every request of one client lands on one machine *)
  let by_client = Hashtbl.create 8 in
  List.iter
    (fun (r, platform) ->
      let client = Option.get r.Request.client in
      match Hashtbl.find_opt by_client client with
      | None -> Hashtbl.add by_client client platform
      | Some p -> Alcotest.(check int) ("client sticky: " ^ client) p platform)
    (completed_platforms fleet);
  Alcotest.(check int) "five clients seen" 5 (Hashtbl.length by_client)

let test_home_overrides_policy () =
  (* a sealed-state home binds under round-robin too: the blob only
     unseals on its own TPM *)
  let config =
    echo_config ~platforms:3 ~queue_depth:64 ~batch_size:1
      ~policy:Dispatch.Round_robin ~seed:"home"
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:10.0 ()) in
  for i = 1 to 6 do
    ignore (Fleet.submit fleet ~home:2 (Printf.sprintf "homed-%d" i))
  done;
  Fleet.run fleet;
  let placements = completed_platforms fleet in
  Alcotest.(check int) "all six served" 6 (List.length placements);
  List.iter
    (fun (_, platform) -> Alcotest.(check int) "on home platform" 2 platform)
    placements;
  match Fleet.submit fleet ~home:7 "bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range home accepted"

let ca_policy =
  {
    CA.allowed_suffixes = [ ".example.com" ];
    denied_subjects = [];
    max_certificates = 1000;
  }

let csr_rng = Prng.create ~seed:"service-csr-keys"

let ca_fleet ~batch_size ~seed =
  let config =
    {
      Fleet.default_config with
      platforms = 1;
      batch_size;
      queue_depth = 64;
      seed;
      policy = Dispatch.Least_loaded;
    }
  in
  Fleet.create ~config (Workload.ca ca_policy)

let submit_csrs fleet n =
  for i = 1 to n do
    let key = (Rsa.generate csr_rng ~bits:256).Rsa.pub in
    ignore
      (Fleet.submit fleet
         (Workload.ca_csr_payload
            ~subject:(Printf.sprintf "host%d.example.com" i)
            ~subject_key:key))
  done

let test_batching_amortization () =
  let single = ca_fleet ~batch_size:1 ~seed:"amortize" in
  let batched = ca_fleet ~batch_size:8 ~seed:"amortize" in
  submit_csrs single 8;
  submit_csrs batched 8;
  Fleet.run single;
  Fleet.run batched;
  let s1 = Fleet.summary single and s8 = Fleet.summary batched in
  Alcotest.(check int) "single all signed" 8 s1.Fleet.completed;
  Alcotest.(check int) "batched all signed" 8 s8.Fleet.completed;
  (* one unseal per session instead of eight: the batched makespan must
     beat 8 independent sessions by a wide margin, not a rounding one *)
  Alcotest.(check bool)
    (Printf.sprintf "batched %.0f ms well under single %.0f ms"
       s8.Fleet.makespan_ms s1.Fleet.makespan_ms)
    true
    (s8.Fleet.makespan_ms < s1.Fleet.makespan_ms /. 3.0);
  Alcotest.(check bool) "throughput gain" true
    (s8.Fleet.throughput_rps > s1.Fleet.throughput_rps *. 3.0);
  (* and the batched fleet's certificates still verify *)
  List.iter
    (fun (_, d) ->
      match d with
      | Request.Completed c -> (
          match Workload.decode_ca_output c.Request.output with
          | Ok (cert, ca_key) ->
              Alcotest.(check bool) "verifies" true
                (CA.verify_certificate ~ca_key cert)
          | Error m -> Alcotest.fail m)
      | d -> Alcotest.failf "not completed: %s" (Request.disposition_name d))
    (Fleet.dispositions batched)

(* --- CA batch signing (app layer) ------------------------------------ *)

let test_ca_sign_batch () =
  let p = Platform.create ~seed:"sign-batch" ~key_bits:512 () in
  let server =
    CA.create p ~key_bits:512
      { ca_policy with denied_subjects = [ "blocked.example.com" ] }
  in
  ignore (Result.get_ok (CA.init_ca server));
  let csr subject = { CA.subject; subject_key = (Rsa.generate csr_rng ~bits:256).Rsa.pub } in
  let t0 = Platform.now_ms p in
  let results =
    CA.sign_batch server
      [
        csr "a.example.com";
        csr "blocked.example.com";
        csr "b.example.com";
        csr "evil.net";
        csr "c.example.com";
      ]
  in
  let batch_ms = Platform.now_ms p -. t0 in
  (match results with
  | [ Ok a; Error denied; Ok b; Error foreign; Ok c ] ->
      Alcotest.(check (list int)) "serials skip denials" [ 1; 2; 3 ]
        [ a.CA.serial; b.CA.serial; c.CA.serial ];
      Alcotest.(check bool) "denied mentions policy" true
        (String.length denied > 0 && String.length foreign > 0)
  | _ -> Alcotest.fail "unexpected batch result shape");
  Alcotest.(check int) "audit log has the three" 3 (CA.issued_count server);
  (* the whole batch cost one unseal: well under three single signatures *)
  let solo = CA.create p ~key_bits:512 ca_policy in
  ignore (Result.get_ok (CA.init_ca solo));
  let t1 = Platform.now_ms p in
  ignore (Result.get_ok (CA.sign_csr solo (csr "solo.example.com")));
  let single_ms = Platform.now_ms p -. t1 in
  Alcotest.(check bool)
    (Printf.sprintf "batch of 5 (%.0f ms) < 3x single (%.0f ms)" batch_ms single_ms)
    true
    (batch_ms < 3.0 *. single_ms);
  (* a later single sign continues the serial sequence *)
  let d = Result.get_ok (CA.sign_csr server (csr "d.example.com")) in
  Alcotest.(check int) "serial continues" 4 d.CA.serial

let test_ca_sign_batch_chunks () =
  (* more CSRs than fit one 4 KB page: the batch splits but every CSR is
     still signed, in order *)
  let p = Platform.create ~seed:"chunking" ~key_bits:512 () in
  let server = CA.create p ~key_bits:512 ca_policy in
  ignore (Result.get_ok (CA.init_ca server));
  let csrs =
    List.init 40 (fun i ->
        {
          CA.subject = Printf.sprintf "chunk-%02d.example.com" i;
          subject_key = (Rsa.generate csr_rng ~bits:256).Rsa.pub;
        })
  in
  let results = CA.sign_batch server csrs in
  Alcotest.(check int) "one result per csr" 40 (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok cert -> Alcotest.(check int) "serial order" (i + 1) cert.CA.serial
      | Error e -> Alcotest.failf "csr %d failed: %s" i e)
    results;
  (* needed more than one session, but far fewer than 40 *)
  let sessions = p.Platform.sessions_run in
  Alcotest.(check bool)
    (Printf.sprintf "2..10 sessions (got %d)" sessions)
    true
    (sessions > 2 && sessions < 12)

(* --- scheduler pruning ------------------------------------------------ *)

let make_machine () = Machine.create Timing.default

let test_scheduler_pruning () =
  let m = make_machine () in
  let s = Scheduler.create m in
  let jobs = List.init 50 (fun i -> Scheduler.spawn s ~name:(string_of_int i) ~work_ms:10.0) in
  Alcotest.(check int) "all resident" 50 (Scheduler.resident_processes s);
  Scheduler.run_for s 10_000.0;
  Alcotest.(check int) "all pruned" 0 (Scheduler.resident_processes s);
  Alcotest.(check int) "all counted" 50 (Scheduler.completed_total s);
  Alcotest.(check (list string)) "none active" []
    (List.map (fun p -> p.Scheduler.name) (Scheduler.active_processes s));
  (* completion timestamps stay queryable on the spawner's records *)
  List.iter
    (fun p ->
      match p.Scheduler.completed_at with
      | Some at -> Alcotest.(check bool) "timestamped" true (at > 0.0)
      | None -> Alcotest.fail "record lost its completion")
    jobs;
  (match Scheduler.last_completion s with
  | Some (_, at) -> Alcotest.(check bool) "last completion recorded" true (at > 0.0)
  | None -> Alcotest.fail "no last completion");
  (* a still-running process stays resident *)
  let live = Scheduler.spawn s ~name:"live" ~work_ms:1e9 in
  Scheduler.run_for s 5.0;
  Alcotest.(check int) "live resident" 1 (Scheduler.resident_processes s);
  Alcotest.(check bool) "live not complete" true (live.Scheduler.completed_at = None)

let test_scheduler_pruning_fairness () =
  (* pruning mid-sync must not change fair-share arithmetic: one long job
     next to many short ones speeds up as they retire *)
  let m = make_machine () in
  let s = Scheduler.create m in
  let long = Scheduler.spawn s ~name:"long" ~work_ms:100.0 in
  let _shorts = List.init 3 (fun _ -> Scheduler.spawn s ~name:"s" ~work_ms:25.0) in
  (* 4 jobs on 2 cores: rate 1/2 until the shorts finish at t=50, then
     the long runs at full rate: 25 done by 50, the remaining 75 by 125 *)
  Scheduler.run_for s 125.0;
  (match long.Scheduler.completed_at with
  | Some at -> Alcotest.(check (float 1e-6)) "long completes at 125" 125.0 at
  | None -> Alcotest.fail "long never completed");
  Alcotest.(check int) "everything pruned" 0 (Scheduler.resident_processes s)

(* --- Os_busy split + retry helper ------------------------------------ *)

let hello_pal =
  lazy (Pal.define ~name:"service-test-hello" (fun env -> Pal_env.set_output env "hi"))

let test_os_busy_distinction () =
  let p = Platform.create ~seed:"busy" ~key_bits:512 () in
  (* nothing written: permanent *)
  (match Session.execute_from_sysfs p () with
  | Error (Session.Os_busy { msg; _ } as e) ->
      Alcotest.(check bool) "names the missing SLB" true
        (String.length msg >= 6 && String.sub msg 0 6 = "no SLB");
      Alcotest.(check bool) "not transient" false (Session.busy_is_transient e)
  | _ -> Alcotest.fail "expected Os_busy");
  (* mid-session: transient, and reported as such even with no SLB entry *)
  Scheduler.suspend p.Platform.scheduler;
  (match Session.execute_from_sysfs p () with
  | Error (Session.Os_busy { msg; transient } as e) ->
      Alcotest.(check bool) "names the running session" true
        (String.length msg >= 11 && String.sub msg 0 11 = "mid-session");
      Alcotest.(check bool) "flagged transient" true transient;
      Alcotest.(check bool) "transient" true (Session.busy_is_transient e)
  | _ -> Alcotest.fail "expected Os_busy");
  (match Session.execute p ~pal:(Lazy.force hello_pal) () with
  | Error (Session.Os_busy _ as e) ->
      Alcotest.(check bool) "execute also transient" true (Session.busy_is_transient e)
  | _ -> Alcotest.fail "expected Os_busy from execute");
  Scheduler.resume p.Platform.scheduler

let test_retry_busy () =
  let p = Platform.create ~seed:"retry" ~key_bits:512 () in
  let calls = ref 0 in
  let t0 = Platform.now_ms p in
  let result =
    Session.retry_busy p ~attempts:4 ~backoff_ms:10.0 (fun () ->
        incr calls;
        if !calls < 3 then Error (Session.os_busy_transient "mid-session: induced for test")
        else Session.execute p ~pal:(Lazy.force hello_pal) ())
  in
  (match result with
  | Ok o -> Alcotest.(check string) "eventually ran" "hi" o.Session.outputs
  | Error e ->
      Alcotest.fail
        (Format.asprintf "retry failed: %a" Session.pp_error e));
  Alcotest.(check int) "two retries" 3 !calls;
  Alcotest.(check int) "retries counted" 2
    (Metrics.counter p.Platform.machine.Machine.metrics "session.busy_retries");
  (* 10 + 20 ms of backoff charged to the clock, on top of the session *)
  Alcotest.(check bool) "backoff charged" true (Platform.now_ms p -. t0 >= 30.0);
  (* permanent busyness is not retried *)
  let calls = ref 0 in
  (match
     Session.retry_busy p ~attempts:5 (fun () ->
         incr calls;
         Error (Session.os_busy_permanent "no SLB written to the sysfs slb entry"))
   with
  | Error (Session.Os_busy _) -> ()
  | _ -> Alcotest.fail "expected the permanent error back");
  Alcotest.(check int) "single attempt" 1 !calls

let test_retry_busy_exhaustion () =
  let p = Platform.create ~seed:"exhaust" ~key_bits:512 () in
  let calls = ref 0 in
  let t0 = Platform.now_ms p in
  (match
     Session.retry_busy p ~attempts:3 ~backoff_ms:10.0 (fun () ->
         incr calls;
         Error
           (Session.os_busy_transient
              (Printf.sprintf "mid-session: attempt %d" !calls)))
   with
  | Error (Session.Os_busy { transient = true; msg }) ->
      (* the last attempt's error comes back, not the first's *)
      Alcotest.(check string) "last error surfaces" "mid-session: attempt 3" msg
  | Ok _ -> Alcotest.fail "an always-busy OS cannot succeed"
  | Error e -> Alcotest.failf "wrong error: %a" Session.pp_error e);
  Alcotest.(check int) "every attempt consumed" 3 !calls;
  (* two backoffs were charged (10 then 20 ms, doubling) and none after
     the final attempt *)
  Alcotest.(check (float 1e-6)) "exact backoff charged" 30.0
    (Platform.now_ms p -. t0);
  Alcotest.(check int) "retries counted" 2
    (Metrics.counter p.Platform.machine.Machine.metrics "session.busy_retries")

(* --- percentile estimator ------------------------------------------- *)

let test_percentile_degenerate () =
  (* regression: the nearest-rank estimator indexed [rank] instead of
     [rank - 1], reading one past the p100 element, and an all-rejected
     run (no latencies at all) raised on the empty array *)
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Fleet.percentile [||] 50.0);
  Alcotest.(check (float 1e-9)) "singleton p50" 7.0 (Fleet.percentile [| 7.0 |] 50.0);
  Alcotest.(check (float 1e-9)) "singleton p95" 7.0 (Fleet.percentile [| 7.0 |] 95.0);
  Alcotest.(check (float 1e-9)) "singleton p100" 7.0 (Fleet.percentile [| 7.0 |] 100.0);
  let two = [| 1.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "pair p50" 1.0 (Fleet.percentile two 50.0);
  Alcotest.(check (float 1e-9)) "pair p95" 2.0 (Fleet.percentile two 95.0);
  Alcotest.(check (float 1e-9)) "pair p100" 2.0 (Fleet.percentile two 100.0);
  (* degenerate p clamps into the array instead of indexing outside it *)
  Alcotest.(check (float 1e-9)) "p0 clamps" 1.0 (Fleet.percentile two 0.0);
  Alcotest.(check (float 1e-9)) "p>100 clamps" 2.0 (Fleet.percentile two 120.0);
  let ten = Array.init 10 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50 of 10" 5.0 (Fleet.percentile ten 50.0);
  Alcotest.(check (float 1e-9)) "p95 of 10" 10.0 (Fleet.percentile ten 95.0)

let () =
  Alcotest.run "service"
    [
      ( "event-queue",
        [
          Alcotest.test_case "stable ordering" `Quick test_event_queue_ordering;
          Alcotest.test_case "pop releases payloads" `Quick
            test_event_queue_releases_payloads;
          QCheck_alcotest.to_alcotest prop_event_queue_ordering;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_determinism;
          Alcotest.test_case "admission control" `Quick test_admission_control;
          Alcotest.test_case "deadlines" `Quick test_deadlines;
          Alcotest.test_case "deadline boundary" `Quick test_deadline_boundary;
          Alcotest.test_case "sealed affinity" `Quick test_sealed_affinity_routing;
          Alcotest.test_case "home overrides policy" `Quick test_home_overrides_policy;
          Alcotest.test_case "batching amortization" `Quick test_batching_amortization;
          Alcotest.test_case "percentile degenerate samples" `Quick
            test_percentile_degenerate;
        ] );
      ( "ca-batching",
        [
          Alcotest.test_case "sign batch" `Quick test_ca_sign_batch;
          Alcotest.test_case "page chunking" `Quick test_ca_sign_batch_chunks;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "pruning" `Quick test_scheduler_pruning;
          Alcotest.test_case "pruning fairness" `Quick test_scheduler_pruning_fairness;
        ] );
      ( "os-busy",
        [
          Alcotest.test_case "message distinction" `Quick test_os_busy_distinction;
          Alcotest.test_case "retry with backoff" `Quick test_retry_busy;
          Alcotest.test_case "retry exhaustion" `Quick test_retry_busy_exhaustion;
        ] );
    ]
