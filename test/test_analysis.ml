(* The PAL verifier: call-graph layer, effects/taint pass, TCB-budget
   rules, the abstract-interpretation engine (stack bounds, buffer
   bounds, constant-time lint) with its planted-defect PALs and a
   concrete-vs-abstract soundness property, analysis-gated fleet
   admission, golden reports for the shipped and planted PALs, and
   property tests tying the analysis back to the extraction slicer. *)

open Flicker_analysis
module Extract = Flicker_extract.Extract
module Pal = Flicker_slb.Pal
module Layout = Flicker_slb.Layout
module Fleet = Flicker_service.Fleet
module Dispatch = Flicker_service.Dispatch
module Workload = Flicker_service.Workload
module Interval = Domains.Interval

let f fname calls loc = Extract.fn fname ~calls ~loc

let program functions = { Extract.functions; types = [] }

(* a Pal.t built directly (not via Pal.define) so tests can express
   configurations define would reject, e.g. oversized code *)
let raw_pal ?(app_code = String.make 256 'a') ?(modules = []) name =
  { Pal.name; app_code; modules; behavior = (fun _ -> ()) }

let target ?(budget = 10_000) ?(effects = []) ?pal ~entry functions =
  {
    Rules.pal = (match pal with Some p -> p | None -> raw_pal ("test-" ^ entry));
    program = program functions;
    entry;
    budget_loc = budget;
    effects;
  }

let run_ok t = match Rules.run t with Ok fs -> fs | Error e -> Alcotest.fail e

let rules_fired findings = List.sort_uniq compare (List.map (fun fi -> fi.Rules.rule) findings)
let fired rule findings = List.exists (fun fi -> fi.Rules.rule = rule) findings

(* --- call-graph layer --- *)

let diamond =
  [ f "a" [ "b"; "c" ] 1; f "b" [ "d" ] 1; f "c" [ "d" ] 1; f "d" [] 1; f "dead" [ "b" ] 1 ]

let test_reachable () =
  let g = Callgraph.build (program diamond) in
  Alcotest.(check (list string)) "preorder" [ "a"; "b"; "d"; "c" ] (Callgraph.reachable g ~root:"a");
  Alcotest.(check (list string)) "dead" [ "dead" ] (Callgraph.unreachable g ~root:"a");
  Alcotest.(check (list string)) "unknown root" [] (Callgraph.reachable g ~root:"nope")

let test_depth () =
  let g = Callgraph.build (program diamond) in
  Alcotest.(check (option int)) "diamond depth" (Some 3) (Callgraph.max_depth g ~root:"a");
  Alcotest.(check (option int)) "leaf depth" (Some 1) (Callgraph.max_depth g ~root:"d")

let test_recursion_detection () =
  let g =
    Callgraph.build
      (program [ f "top" [ "even"; "lone" ] 1; f "even" [ "odd" ] 1; f "odd" [ "even" ] 1;
                 f "lone" [ "lone" ] 1 ])
  in
  let groups = List.map (List.sort compare) (Callgraph.recursive_groups g) in
  Alcotest.(check bool) "mutual cycle" true (List.mem [ "even"; "odd" ] groups);
  Alcotest.(check bool) "self loop" true (List.mem [ "lone" ] groups);
  Alcotest.(check bool) "recursion from top" true (Callgraph.has_recursion_from g ~root:"top");
  Alcotest.(check (option int)) "depth unbounded" None (Callgraph.max_depth g ~root:"top")

(* --- taint pass --- *)

let table = Effects.default ()

let leaks functions ~entry =
  Taint.analyze ~table (Callgraph.build (program functions)) ~entry

let test_direct_leak () =
  let ls = leaks [ f "main" [ "TPM_Unseal"; "pal_output_write" ] 1 ] ~entry:"main" in
  Alcotest.(check int) "one leak" 1 (List.length ls);
  let l = List.hd ls in
  Alcotest.(check string) "source" "TPM_Unseal" l.Taint.source;
  Alcotest.(check string) "sink" "pal_output_write" l.Taint.sink

let test_sanitized_flow () =
  let ls =
    leaks [ f "main" [ "TPM_Unseal"; "TPM_Seal"; "pal_output_write" ] 1 ] ~entry:"main"
  in
  Alcotest.(check int) "sealed before output" 0 (List.length ls)

let test_order_matters () =
  (* output first, THEN seal: still a leak *)
  let ls =
    leaks [ f "main" [ "TPM_Unseal"; "pal_output_write"; "TPM_Seal" ] 1 ] ~entry:"main"
  in
  Alcotest.(check int) "sink before sanitizer leaks" 1 (List.length ls)

let test_interprocedural_leak () =
  (* main gets the secret, helper writes the output page *)
  let ls =
    leaks
      [ f "main" [ "TPM_Unseal"; "helper" ] 1; f "helper" [ "pal_output_write" ] 1 ]
      ~entry:"main"
  in
  Alcotest.(check bool) "leak through callee" true (ls <> [])

let test_callee_sanitizes () =
  let ls =
    leaks
      [ f "main" [ "TPM_Unseal"; "protect"; "pal_output_write" ] 1;
        f "protect" [ "TPM_Seal" ] 1 ]
      ~entry:"main"
  in
  Alcotest.(check int) "callee's seal clears the caller" 0 (List.length ls)

let test_zeroize_shapes () =
  let ends functions entry =
    Taint.ends_with_zeroize ~table (Callgraph.build (program functions)) ~entry
  in
  Alcotest.(check bool) "direct" true (ends [ f "m" [ "TPM_Unseal"; "zeroize_secrets" ] 1 ] "m");
  Alcotest.(check bool) "via wrapper" true
    (ends [ f "m" [ "TPM_Unseal"; "cleanup" ] 1; f "cleanup" [ "zeroize_secrets" ] 1 ] "m");
  Alcotest.(check bool) "not last" false
    (ends [ f "m" [ "zeroize_secrets"; "pal_output_write" ] 1 ] "m");
  Alcotest.(check bool) "absent" false (ends [ f "m" [ "TPM_Unseal" ] 1 ] "m")

(* --- each rule class fires on a deliberately bad PAL/program --- *)

let test_rule_recursion () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "r" ] 1; f "r" [ "r" ] 1 ]) in
  Alcotest.(check bool) "recursion error" true (fired "recursion" fs);
  Alcotest.(check bool) "is error severity" true
    (List.exists (fun fi -> fi.Rules.rule = "recursion" && fi.Rules.severity = Rules.Error) fs)

let test_rule_secret_leak () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "TPM_Unseal"; "pal_output_write"; "zeroize_secrets" ] 1 ]) in
  Alcotest.(check bool) "secret-leak error" true (fired "secret-leak" fs)

let test_rule_tcb_budget () =
  let pal = raw_pal ~modules:[ Pal.Crypto; Pal.Tpm_driver; Pal.Tpm_utilities ] "fat" in
  let fs =
    run_ok
      (target ~budget:100 ~pal ~entry:"m"
         [ f "m" [ "rsa_sign"; "TPM_Seal"; "tpm_transmit" ] 1 ])
  in
  Alcotest.(check bool) "over budget" true (fired "tcb-budget" fs)

let test_rule_slb_region () =
  let limit = Report.slb_limit () in
  let pal = raw_pal ~app_code:(String.make (limit + 1) 'x') "huge" in
  let fs = run_ok (target ~pal ~entry:"m" [ f "m" [] 1 ]) in
  Alcotest.(check bool) "oversized SLB" true
    (List.exists (fun fi -> fi.Rules.rule = "slb-region" && fi.Rules.severity = Rules.Error) fs);
  let near = raw_pal ~app_code:(String.make (limit - 100) 'x') "near" in
  let fs = run_ok (target ~pal:near ~entry:"m" [ f "m" [] 1 ]) in
  Alcotest.(check bool) "90% warning" true
    (List.exists (fun fi -> fi.Rules.rule = "slb-region" && fi.Rules.severity = Rules.Warning) fs)

let test_rule_unnecessary_module () =
  let pal = raw_pal ~modules:[ Pal.Memory_management ] "padded" in
  let fs = run_ok (target ~pal ~entry:"m" [ f "m" [ "memcpy" ] 1 ]) in
  Alcotest.(check bool) "unnecessary module warning" true (fired "unnecessary-module" fs)

let test_rule_missing_module () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "malloc" ] 1 ]) in
  Alcotest.(check bool) "missing module error" true (fired "missing-module" fs);
  (* linking it clears the finding *)
  let pal = raw_pal ~modules:[ Pal.Memory_management ] "heap" in
  let fs = run_ok (target ~pal ~entry:"m" [ f "m" [ "malloc" ] 1 ]) in
  Alcotest.(check bool) "linked clears it" false (fired "missing-module" fs)

let test_rule_forbidden_call () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "socket" ] 1 ]) in
  Alcotest.(check bool) "socket forbidden" true (fired "forbidden-call" fs);
  let fs = run_ok (target ~entry:"m" [ f "m" [ "gettimeofday" ] 1 ]) in
  Alcotest.(check bool) "time-of-day forbidden" true (fired "forbidden-call" fs)

let test_rule_missing_zeroize () =
  let fs =
    run_ok (target ~entry:"m" [ f "m" [ "TPM_Unseal"; "TPM_Seal"; "pal_output_write" ] 1 ])
  in
  Alcotest.(check bool) "missing zeroize" true (fired "missing-zeroize" fs);
  let fs =
    run_ok
      (target ~entry:"m"
         [ f "m" [ "TPM_Unseal"; "TPM_Seal"; "pal_output_write"; "zeroize_secrets" ] 1 ])
  in
  Alcotest.(check bool) "zeroize satisfies" false (fired "missing-zeroize" fs)

let test_rule_stack_depth () =
  let n = (Layout.stack_size / 128) + 5 in
  let chain =
    List.init n (fun i ->
        f (Printf.sprintf "f%d" i)
          (if i = n - 1 then [] else [ Printf.sprintf "f%d" (i + 1) ])
          1)
  in
  let fs = run_ok (target ~entry:"f0" chain) in
  Alcotest.(check bool) "deep chain warns" true (fired "stack-depth" fs)

let test_rule_dead_function () =
  let fs = run_ok (target ~entry:"m" [ f "m" [] 1; f "orphan" [] 1 ]) in
  Alcotest.(check bool) "dead function info" true (fired "dead-function" fs)

let test_rule_unresolved () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "mystery_helper" ] 1 ]) in
  Alcotest.(check bool) "unresolved warning" true (fired "unresolved-callee" fs)

let test_unknown_entry () =
  Alcotest.(check bool) "driver refuses" true
    (Result.is_error (Rules.run (target ~entry:"nope" [ f "m" [] 1 ])))

let test_rule_duplicate_definition () =
  let fs =
    run_ok (target ~entry:"m" [ f "m" [ "helper" ] 2; f "helper" [] 3; f "helper" [] 7 ])
  in
  let dups = List.filter (fun fi -> fi.Rules.rule = "duplicate-definition") fs in
  Alcotest.(check int) "one warning" 1 (List.length dups);
  let fi = List.hd dups in
  Alcotest.(check bool) "warning severity" true (fi.Rules.severity = Rules.Warning);
  Alcotest.(check string) "subject" "helper" fi.Rules.subject;
  Alcotest.(check string) "names both sites" "definitions #2 and #3" fi.Rules.location;
  Alcotest.(check string) "message names kept and shadowed"
    "helper is defined more than once: the slicer keeps definition #2 (3 LOC) and \
     definition #3 (7 LOC) is silently shadowed"
    fi.Rules.message;
  (* unique definitions stay silent *)
  let fs = run_ok (target ~entry:"m" [ f "m" [ "helper" ] 2; f "helper" [] 3 ]) in
  Alcotest.(check bool) "no false positive" false (fired "duplicate-definition" fs)

let test_strict_should_fail () =
  (* a duplicate definition is warning-only: passes by default, blocks
     under --strict *)
  let fs =
    run_ok (target ~entry:"m" [ f "m" [ "helper" ] 2; f "helper" [] 3; f "helper" [] 7 ])
  in
  Alcotest.(check int) "no errors" 0 (Rules.errors fs);
  Alcotest.(check int) "one warning" 1 (Rules.warnings fs);
  Alcotest.(check bool) "default passes" false (Rules.should_fail fs);
  Alcotest.(check bool) "strict fails on warnings" true (Rules.should_fail ~strict:true fs);
  Alcotest.(check bool) "strict on clean passes" false (Rules.should_fail ~strict:true []);
  let err =
    [ { Rules.rule = "x"; severity = Rules.Error; subject = "s"; location = ""; message = "" } ]
  in
  Alcotest.(check bool) "errors always fail" true (Rules.should_fail err)

let test_finding_order () =
  let mk rule subject location =
    { Rules.rule; severity = Rules.Info; subject; location; message = "" }
  in
  Alcotest.(check bool) "rule id dominates" true
    (Rules.compare_findings (mk "a-rule" "z" "z") (mk "b-rule" "a" "a") < 0);
  Alcotest.(check bool) "subject next" true
    (Rules.compare_findings (mk "r" "a" "z") (mk "r" "b" "a") < 0);
  Alcotest.(check bool) "location next" true
    (Rules.compare_findings (mk "r" "s" "a") (mk "r" "s" "b") < 0);
  (* Rules.run emits in the canonical order *)
  let fs = run_ok (Models.secret_branch ()) in
  Alcotest.(check bool) "run output sorted" true (List.sort Rules.compare_findings fs = fs)

(* --- abstract interpretation: frames, stack bounds, buffer bounds --- *)

let absint_of ?(effects = []) functions ~entry =
  Absint.analyze ~table:(Effects.make effects)
    (Callgraph.build (program functions))
    ~entry

let absint_target (t : Rules.target) =
  Absint.analyze
    ~table:(Effects.make t.Rules.effects)
    (Callgraph.build t.Rules.program)
    ~entry:t.Rules.entry

let test_frame_bytes () =
  Alcotest.(check int) "shape-only is opaque" Absint.opaque_frame_bytes
    (Absint.frame_bytes (f "s" [ "x" ] 1));
  let with_body =
    Extract.fn ~params:[ "a"; "b" ]
      ~stmts:
        [
          Extract.Local { name = "buf"; elems = 16; elem_size = 4 };
          Extract.Assign { dst = "x"; src = Extract.Num 1 };
          Extract.For
            {
              var = "i";
              lo = Extract.Num 0;
              hi = Extract.Num 4;
              body = [ Extract.Store { buf = "buf"; index = Extract.Var "i"; src = Extract.Var "x" } ];
            };
          Extract.Return (Some (Extract.Var "x"));
        ]
      "m"
  in
  (* 32 base + 64 for buf + 8 words x {a, b, x, i} *)
  Alcotest.(check int) "declared frame" (32 + 64 + 32) (Absint.frame_bytes with_body)

let test_stack_composition () =
  let leaf name elems =
    Extract.fn
      ~stmts:[ Extract.Local { name = "b"; elems; elem_size = 1 }; Extract.Return None ]
      name
  in
  let fns =
    [
      Extract.fn
        ~stmts:
          [
            Extract.Call { dst = None; callee = "big"; args = [] };
            Extract.Call { dst = None; callee = "small"; args = [] };
            Extract.Call { dst = None; callee = "memcpy"; args = [] };
          ]
        "m";
      leaf "big" 512;
      leaf "small" 8;
    ]
  in
  let r = absint_of fns ~entry:"m" in
  (* m is 32, big 544, small 40, the external memcpy a conservative 128;
     worst chain is through big *)
  (match r.Absint.stack with
  | Absint.Bounded b -> Alcotest.(check int) "bound" (32 + 544) b
  | Absint.Unbounded -> Alcotest.fail "expected a bounded stack");
  Alcotest.(check (list string)) "worst chain" [ "m"; "big" ] r.Absint.worst_chain;
  (match (absint_of [ f "m" [ "r" ] 1; f "r" [ "r" ] 1 ] ~entry:"m").Absint.stack with
  | Absint.Unbounded -> ()
  | Absint.Bounded _ -> Alcotest.fail "recursion must be unbounded");
  (* an external leaf can carry the worst chain *)
  let ext = absint_of [ Extract.fn ~stmts:[ Extract.Call { dst = None; callee = "memcpy"; args = [] } ] "m" ] ~entry:"m" in
  Alcotest.(check (list string)) "external worst leaf" [ "m"; "memcpy" ] ext.Absint.worst_chain

let test_interval_bounds () =
  let oob =
    [
      Extract.fn
        ~stmts:
          [
            Extract.Local { name = "b"; elems = 4; elem_size = 1 };
            Extract.For
              {
                var = "i";
                lo = Extract.Num 0;
                hi = Extract.Num 6;
                body = [ Extract.Store { buf = "b"; index = Extract.Var "i"; src = Extract.Num 1 } ];
              };
          ]
        "m";
    ]
  in
  let r = absint_of oob ~entry:"m" in
  Alcotest.(check int) "one violation" 1 (List.length r.Absint.bounds);
  let v = List.hd r.Absint.bounds in
  Alcotest.(check string) "function" "m" v.Absint.in_function;
  Alcotest.(check string) "buffer" "b" v.Absint.buffer;
  Alcotest.(check int) "declared elems" 4 v.Absint.size_elems;
  Alcotest.(check bool) "is a write" true v.Absint.is_write;
  Alcotest.(check bool) "rules layer surfaces it" true
    (fired "buffer-bounds" (run_ok (target ~entry:"m" oob)));
  (* masking the index proves it in bounds even when the value is Top *)
  let masked =
    [
      Extract.fn
        ~stmts:
          [
            Extract.Local { name = "b"; elems = 4; elem_size = 1 };
            Extract.Store
              {
                buf = "b";
                index = Extract.Bin (Extract.Band, Extract.Var "x", Extract.Num 3);
                src = Extract.Num 1;
              };
          ]
        "m";
    ]
  in
  Alcotest.(check int) "mask proves in-bounds" 0
    (List.length (absint_of masked ~entry:"m").Absint.bounds)

(* --- constant-time lint --- *)

let unseal dst = Extract.Call { dst = Some dst; callee = "TPM_Unseal"; args = [] }
let seal v = Extract.Call { dst = None; callee = "TPM_Seal"; args = [ Extract.Var v ] }

let test_ct_branch_and_override () =
  let body guard =
    [
      unseal "s";
      Extract.Call { dst = Some "ok"; callee = guard; args = [ Extract.Var "s" ] };
      Extract.If
        {
          cond = Extract.Bin (Extract.Eq, Extract.Var "ok", Extract.Num 0);
          then_ = [ Extract.Assign { dst = "y"; src = Extract.Num 1 } ];
          else_ = [];
        };
      seal "s";
      Extract.Return None;
    ]
  in
  (* an opaque guard propagates the secret into the branch condition *)
  let r = absint_of [ Extract.fn ~stmts:(body "opaque_check") "m" ] ~entry:"m" in
  (match r.Absint.ct with
  | [ v ] ->
      Alcotest.(check string) "in m" "m" v.Absint.ct_function;
      Alcotest.(check bool) "branch kind" true (v.Absint.kind = Absint.Branch);
      Alcotest.(check string) "source" "TPM_Unseal" v.Absint.source
  | vs -> Alcotest.fail (Printf.sprintf "expected one ct violation, got %d" (List.length vs)));
  (* the per-PAL Sanitizer override declassifies the comparison result *)
  let clean =
    absint_of
      ~effects:[ ("opaque_check", Effects.Sanitizer) ]
      [ Extract.fn ~stmts:(body "opaque_check") "m" ]
      ~entry:"m"
  in
  Alcotest.(check int) "override declassifies" 0 (List.length clean.Absint.ct)

let test_ct_loop_bound () =
  let fns =
    [
      Extract.fn
        ~stmts:
          [
            unseal "s";
            Extract.For
              {
                var = "i";
                lo = Extract.Num 0;
                hi = Extract.Var "s";
                body = [ Extract.Assign { dst = "x"; src = Extract.Var "i" } ];
              };
            seal "s";
          ]
        "m";
    ]
  in
  let r = absint_of fns ~entry:"m" in
  Alcotest.(check bool) "secret loop bound flagged" true
    (List.exists (fun v -> v.Absint.kind = Absint.Loop_bound) r.Absint.ct)

let test_ct_interprocedural () =
  (* the secret crosses a call boundary as an argument; the branch is in
     the callee *)
  let fns =
    [
      Extract.fn
        ~stmts:
          [
            unseal "s";
            Extract.Call { dst = Some "r"; callee = "helper"; args = [ Extract.Var "s" ] };
            seal "s";
          ]
        "m";
      Extract.fn ~params:[ "p" ]
        ~stmts:
          [
            Extract.If
              {
                cond = Extract.Bin (Extract.Eq, Extract.Var "p", Extract.Num 0);
                then_ = [ Extract.Return (Some (Extract.Num 1)) ];
                else_ = [];
              };
            Extract.Return (Some (Extract.Num 0));
          ]
        "helper";
    ]
  in
  let r = absint_of fns ~entry:"m" in
  (match r.Absint.ct with
  | [ v ] ->
      Alcotest.(check string) "flagged in the callee" "helper" v.Absint.ct_function;
      Alcotest.(check bool) "branch kind" true (v.Absint.kind = Absint.Branch);
      Alcotest.(check string) "source survives the call" "TPM_Unseal" v.Absint.source
  | vs -> Alcotest.fail (Printf.sprintf "expected one ct violation, got %d" (List.length vs)))

(* --- planted-defect PALs --- *)

let test_planted_stack_hog () =
  let t = Models.stack_hog () in
  let fs = run_ok t in
  Alcotest.(check (list string)) "only stack-bound fires" [ "stack-bound" ] (rules_fired fs);
  Alcotest.(check int) "one error" 1 (Rules.errors fs);
  let fi = List.hd fs in
  Alcotest.(check string) "names the entry" "pal_main" fi.Rules.subject;
  Alcotest.(check string) "names the overflowing chain"
    "pal_main -> compress_block -> huffman_emit" fi.Rules.location;
  match (absint_target t).Absint.stack with
  | Absint.Bounded b ->
      Alcotest.(check int) "proved bound" 4424 b;
      Alcotest.(check bool) "over the 4 KB stack" true (b > Layout.stack_size)
  | Absint.Unbounded -> Alcotest.fail "stack-hog is loop-free, bound must be finite"

let test_planted_secret_branch () =
  let t = Models.secret_branch () in
  let fs = run_ok t in
  Alcotest.(check (list string)) "both ct rules fire"
    [ "secret-branch"; "secret-index" ] (rules_fired fs);
  Alcotest.(check int) "two errors" 2 (Rules.errors fs);
  let subjects rule =
    List.map (fun fi -> fi.Rules.subject) (List.filter (fun fi -> fi.Rules.rule = rule) fs)
  in
  Alcotest.(check (list string)) "branch in auth_main" [ "auth_main" ] (subjects "secret-branch");
  Alcotest.(check (list string)) "index in pin_compare" [ "pin_compare" ]
    (subjects "secret-index");
  let r = absint_target t in
  Alcotest.(check bool) "every violation traces to TPM_Unseal" true
    (r.Absint.ct <> [] && List.for_all (fun v -> v.Absint.source = "TPM_Unseal") r.Absint.ct);
  (* its stack is fine — only the constant-time lint complains *)
  match r.Absint.stack with
  | Absint.Bounded b -> Alcotest.(check bool) "stack fits" true (b <= Layout.stack_size)
  | Absint.Unbounded -> Alcotest.fail "secret-branch must have a bounded stack"

(* --- analysis-gated fleet admission --- *)

let gate_config seed =
  {
    Fleet.default_config with
    platforms = 1;
    queue_depth = 4;
    batch_size = 1;
    policy = Dispatch.Round_robin;
    seed;
  }

let test_admission_gate () =
  let bad = Admission.evaluate ~key:"stack-hog" (Models.stack_hog ()) in
  Alcotest.(check bool) "stack-hog verdict fails" false bad.Admission.passing;
  Alcotest.(check int) "one blocking error" 1 bad.Admission.errors;
  (match bad.Admission.stack_bytes with
  | Some b -> Alcotest.(check bool) "verdict carries the bound" true (b > Layout.stack_size)
  | None -> Alcotest.fail "expected a bounded stack in the verdict");
  Alcotest.(check bool) "reason names the rule" true
    (List.exists
       (fun r -> String.length r >= 11 && String.sub r 0 11 = "stack-bound")
       bad.Admission.reasons);
  let fleet = Fleet.create ~config:(gate_config "gate-bad") (Workload.echo ~work_ms:10.0 ()) in
  Admission.install fleet bad;
  for i = 1 to 5 do
    ignore (Fleet.submit fleet (Printf.sprintf "r%d" i))
  done;
  Fleet.run fleet;
  let s = Fleet.summary fleet in
  Alcotest.(check int) "all five rejected by analysis" 5 s.Fleet.analysis_rejected;
  Alcotest.(check int) "nothing completes" 0 s.Fleet.completed;
  Alcotest.(check int) "rejections visible in the totals" 5 s.Fleet.rejected;
  Alcotest.(check bool) "every disposition is Rejected" true
    (List.for_all
       (fun (_, d) -> match d with Flicker_service.Request.Rejected _ -> true | _ -> false)
       (Fleet.dispositions fleet));
  let rendered = Format.asprintf "%a" Fleet.pp_summary s in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary prints the gate line" true
    (contains rendered "rejected by analysis gate: 5");
  (* a passing verdict admits everything *)
  let ok = Admission.evaluate ~key:"hello" (Models.hello ()) in
  Alcotest.(check bool) "hello verdict passes" true ok.Admission.passing;
  Alcotest.(check (list string)) "no reasons" [] ok.Admission.reasons;
  let fleet = Fleet.create ~config:(gate_config "gate-ok") (Workload.echo ~work_ms:10.0 ()) in
  Admission.install fleet ok;
  ignore (Fleet.submit fleet "r1");
  Fleet.run fleet;
  let s = Fleet.summary fleet in
  Alcotest.(check int) "nothing gated" 0 s.Fleet.analysis_rejected;
  Alcotest.(check int) "request served" 1 s.Fleet.completed

(* --- the five shipped PALs are clean --- *)

let test_shipped_pals_clean () =
  List.iter
    (fun (key, t) ->
      let fs = run_ok t in
      Alcotest.(check int) (key ^ " error findings") 0 (Rules.errors fs);
      Alcotest.(check (list string)) (key ^ " all findings") [] (rules_fired fs))
    (Models.all ())

(* --- golden reports --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden key () =
  match Models.find key with
  | None -> Alcotest.fail ("unknown model " ^ key)
  | Some t ->
      let fs = run_ok t in
      let expected = read_file (Filename.concat "golden" (key ^ ".txt")) in
      Alcotest.(check string) (key ^ " report") expected (Report.to_text ~key t fs)

(* --- SARIF export --- *)

let test_sarif_roundtrip () =
  let results =
    List.map (fun (key, t) -> (key, t, run_ok t)) (Models.all ())
  in
  let doc = Flicker_obs.Json.to_string (Report.sarif results) in
  match Flicker_obs.Json.of_string doc with
  | Error e -> Alcotest.fail e
  | Ok (Flicker_obs.Json.Obj fields) ->
      Alcotest.(check bool) "has runs" true (List.mem_assoc "runs" fields);
      (match List.assoc "runs" fields with
      | Flicker_obs.Json.List runs -> Alcotest.(check int) "five runs" 5 (List.length runs)
      | _ -> Alcotest.fail "runs not a list")
  | Ok _ -> Alcotest.fail "not an object"

(* --- properties --- *)

(* random programs: n functions f0..f(n-1), each calling a random mix of
   defined names (cycles allowed) and stdlib/external names *)
let gen_program externals =
  QCheck.Gen.(
    int_range 1 10 >>= fun n ->
    let fname i = Printf.sprintf "f%d" i in
    let callee =
      frequency
        [ (3, map fname (int_range 0 (n - 1))); (1, oneofl externals) ]
    in
    let body = list_size (int_range 0 4) callee in
    map
      (fun bodies ->
        { Extract.functions = List.mapi (fun i calls -> f (fname i) calls 1) bodies;
          types = [] })
      (list_repeat n body))

let print_program p =
  String.concat "; "
    (List.map
       (fun fn -> fn.Extract.fname ^ "->[" ^ String.concat "," fn.Extract.calls ^ "]")
       p.Extract.functions)

let arb_program externals = QCheck.make ~print:print_program (gen_program externals)

let prop_slice_equals_reachable =
  QCheck.Test.make ~name:"extraction slice = call-graph reachable set" ~count:200
    (arb_program [ "printf"; "malloc"; "mystery_helper" ])
    (fun p ->
      match Extract.extract p ~target:"f0" with
      | Error e -> QCheck.Test.fail_report e
      | Ok e ->
          let slice =
            List.sort compare (List.map (fun fn -> fn.Extract.fname) e.Extract.required_functions)
          in
          let reach = List.sort compare (Callgraph.reachable (Callgraph.build p) ~root:"f0") in
          slice = reach)

let add_sanitizers p =
  {
    p with
    Extract.functions =
      List.map
        (fun fn ->
          {
            fn with
            Extract.calls =
              List.concat_map
                (fun c -> if c = "pal_output_write" then [ "TPM_Seal"; c ] else [ c ])
                fn.Extract.calls;
          })
        p.Extract.functions;
  }

let prop_taint_monotone =
  QCheck.Test.make ~name:"taint verdicts are monotone under adding sanitizers" ~count:200
    (arb_program [ "TPM_Unseal"; "TPM_Seal"; "pal_output_write"; "memcpy" ])
    (fun p ->
      let count prog =
        List.length (Taint.analyze ~table (Callgraph.build prog) ~entry:"f0")
      in
      count (add_sanitizers p) <= count p)

(* random statement-ful programs for the abstract-interpretation
   soundness property: n functions g0..g(n-1) where gi only calls gj
   with j > i (never recursive), each declaring one buffer and mixing
   counted loops, branches, masked indices, and deliberately wild
   indices — so both the in-bounds and out-of-bounds paths of the
   interval pass get exercised against the concrete interpreter *)
let gen_stmt_program =
  QCheck.Gen.(
    let gname i = Printf.sprintf "g%d" i in
    (* arithmetic over the parameter, the running scalar, and small
       constants; depth-bounded so terms stay readable *)
    let gen_expr =
      let leaf =
        oneof
          [
            map (fun k -> Extract.Num k) (int_range (-3) 9);
            oneofl [ Extract.Var "a"; Extract.Var "x" ];
          ]
      in
      let op =
        oneofl
          Extract.[ Add; Sub; Mul; Div; Mod; Band; Eq; Ne; Lt; Le ]
      in
      let node l r o = Extract.Bin (o, l, r) in
      oneof [ leaf; map3 node leaf leaf op; map3 node (map3 node leaf leaf op) leaf op ]
    in
    let gen_index =
      oneof
        [
          return (Extract.Var "i");
          map (fun m -> Extract.Bin (Extract.Band, Extract.Var "x", Extract.Num m)) (int_range 0 7);
          map (fun c -> Extract.Num c) (int_range (-2) 9);
          gen_expr;
        ]
    in
    let gen_body i n =
      int_range 1 8 >>= fun elems ->
      gen_expr >>= fun e0 ->
      gen_index >>= fun widx ->
      gen_index >>= fun ridx ->
      gen_expr >>= fun src ->
      int_range 0 5 >>= fun iters ->
      bool >>= fun branchy ->
      (if i + 1 >= n then return []
       else
         bool >>= fun does_call ->
         if not does_call then return []
         else
           map
             (fun j ->
               [ Extract.Call { dst = Some "r"; callee = gname j; args = [ Extract.Var "x" ] } ])
             (int_range (i + 1) (n - 1)))
      >>= fun call_tail ->
      return
        ([
           Extract.Local { name = "buf"; elems; elem_size = 1 };
           Extract.Assign { dst = "x"; src = e0 };
           Extract.For
             {
               var = "i";
               lo = Extract.Num 0;
               hi = Extract.Num iters;
               body =
                 [
                   Extract.Store { buf = "buf"; index = widx; src };
                   Extract.Assign { dst = "x"; src = Extract.Load { buf = "buf"; index = ridx } };
                 ];
             };
         ]
        @ (if branchy then
             [
               Extract.If
                 {
                   cond = Extract.Bin (Extract.Lt, Extract.Var "x", Extract.Num 3);
                   then_ =
                     [
                       Extract.Store
                         {
                           buf = "buf";
                           index = Extract.Bin (Extract.Band, Extract.Var "x", Extract.Num 3);
                           src = Extract.Num 1;
                         };
                     ];
                   else_ = [];
                 };
             ]
           else [])
        @ call_tail
        @ [ Extract.Return (Some (Extract.Var "x")) ])
    in
    int_range 1 4 >>= fun n ->
    let rec bodies i =
      if i >= n then return []
      else
        gen_body i n >>= fun b ->
        bodies (i + 1) >>= fun rest -> return (b :: rest)
    in
    map
      (fun bs ->
        {
          Extract.functions =
            List.mapi (fun i stmts -> Extract.fn ~params:[ "a" ] ~stmts ~loc:10 (gname i)) bs;
          types = [];
        })
      (bodies 0))

let print_stmt_program p =
  String.concat "; "
    (List.map
       (fun fn ->
         Printf.sprintf "%s(%s)->[%s] %d stmts" fn.Extract.fname
           (String.concat "," fn.Extract.params)
           (String.concat "," fn.Extract.calls)
           (List.length fn.Extract.stmts))
       p.Extract.functions)

let prop_absint_soundness =
  QCheck.Test.make ~name:"concrete runs stay inside the abstract envelope" ~count:200
    (QCheck.make ~print:print_stmt_program gen_stmt_program)
    (fun p ->
      let g = Callgraph.build p in
      let r = Absint.analyze ~table:(Effects.make []) g ~entry:"g0" in
      let obs = Absint.Concrete.run g ~entry:"g0" in
      let stack_ok =
        match r.Absint.stack with
        | Absint.Bounded b -> obs.Absint.Concrete.max_stack_bytes <= b
        | Absint.Unbounded -> true
      in
      let access_ok (a : Absint.Concrete.access) =
        let { Absint.Concrete.in_function; buffer; index; within } = a in
        if within then
          (* every in-bounds concrete index lies in the reported hull *)
          match List.assoc_opt (in_function, buffer) r.Absint.index_hulls with
          | Some hull -> Interval.contains hull index
          | None -> false
        else
          (* every out-of-bounds concrete access was reported abstractly *)
          List.exists
            (fun (v : Absint.bounds_violation) ->
              v.Absint.in_function = in_function && v.Absint.buffer = buffer)
            r.Absint.bounds
      in
      stack_ok && (not obs.Absint.Concrete.out_of_fuel)
      && List.for_all access_ok obs.Absint.Concrete.accesses)

let () =
  Alcotest.run "analysis"
    [
      ( "callgraph",
        [
          Alcotest.test_case "reachable + dead" `Quick test_reachable;
          Alcotest.test_case "max depth" `Quick test_depth;
          Alcotest.test_case "recursion detection" `Quick test_recursion_detection;
        ] );
      ( "taint",
        [
          Alcotest.test_case "direct leak" `Quick test_direct_leak;
          Alcotest.test_case "sanitized flow" `Quick test_sanitized_flow;
          Alcotest.test_case "order matters" `Quick test_order_matters;
          Alcotest.test_case "interprocedural leak" `Quick test_interprocedural_leak;
          Alcotest.test_case "callee sanitizes" `Quick test_callee_sanitizes;
          Alcotest.test_case "zeroize shapes" `Quick test_zeroize_shapes;
        ] );
      ( "rules",
        [
          Alcotest.test_case "recursion" `Quick test_rule_recursion;
          Alcotest.test_case "secret leak" `Quick test_rule_secret_leak;
          Alcotest.test_case "tcb budget" `Quick test_rule_tcb_budget;
          Alcotest.test_case "slb region" `Quick test_rule_slb_region;
          Alcotest.test_case "unnecessary module" `Quick test_rule_unnecessary_module;
          Alcotest.test_case "missing module" `Quick test_rule_missing_module;
          Alcotest.test_case "forbidden call" `Quick test_rule_forbidden_call;
          Alcotest.test_case "missing zeroize" `Quick test_rule_missing_zeroize;
          Alcotest.test_case "stack depth" `Quick test_rule_stack_depth;
          Alcotest.test_case "dead function" `Quick test_rule_dead_function;
          Alcotest.test_case "unresolved callee" `Quick test_rule_unresolved;
          Alcotest.test_case "unknown entry" `Quick test_unknown_entry;
          Alcotest.test_case "duplicate definition" `Quick test_rule_duplicate_definition;
          Alcotest.test_case "strict should_fail" `Quick test_strict_should_fail;
          Alcotest.test_case "finding order" `Quick test_finding_order;
        ] );
      ( "absint",
        [
          Alcotest.test_case "frame bytes" `Quick test_frame_bytes;
          Alcotest.test_case "stack composition" `Quick test_stack_composition;
          Alcotest.test_case "interval bounds" `Quick test_interval_bounds;
          Alcotest.test_case "ct branch + override" `Quick test_ct_branch_and_override;
          Alcotest.test_case "ct loop bound" `Quick test_ct_loop_bound;
          Alcotest.test_case "ct interprocedural" `Quick test_ct_interprocedural;
        ] );
      ( "planted PALs",
        [
          Alcotest.test_case "stack-hog caught" `Quick test_planted_stack_hog;
          Alcotest.test_case "secret-branch caught" `Quick test_planted_secret_branch;
        ] );
      ("admission", [ Alcotest.test_case "fleet gate" `Quick test_admission_gate ]);
      ( "shipped PALs",
        Alcotest.test_case "all five clean" `Quick test_shipped_pals_clean
        :: List.map
             (fun key -> Alcotest.test_case ("golden " ^ key) `Quick (test_golden key))
             (Models.keys () @ Models.planted_keys ()) );
      ("export", [ Alcotest.test_case "sarif" `Quick test_sarif_roundtrip ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_slice_equals_reachable; prop_taint_monotone; prop_absint_soundness ] );
    ]
