(* The PAL verifier: call-graph layer, effects/taint pass, TCB-budget
   rules, golden reports for the five shipped PALs, and property tests
   tying the analysis back to the extraction slicer. *)

open Flicker_analysis
module Extract = Flicker_extract.Extract
module Pal = Flicker_slb.Pal
module Layout = Flicker_slb.Layout

let f fname calls loc =
  { Extract.fname; calls; uses_types = []; body = "/* " ^ fname ^ " */"; loc }

let program functions = { Extract.functions; types = [] }

(* a Pal.t built directly (not via Pal.define) so tests can express
   configurations define would reject, e.g. oversized code *)
let raw_pal ?(app_code = String.make 256 'a') ?(modules = []) name =
  { Pal.name; app_code; modules; behavior = (fun _ -> ()) }

let target ?(budget = 10_000) ?(effects = []) ?pal ~entry functions =
  {
    Rules.pal = (match pal with Some p -> p | None -> raw_pal ("test-" ^ entry));
    program = program functions;
    entry;
    budget_loc = budget;
    effects;
  }

let run_ok t = match Rules.run t with Ok fs -> fs | Error e -> Alcotest.fail e

let rules_fired findings = List.sort_uniq compare (List.map (fun fi -> fi.Rules.rule) findings)
let fired rule findings = List.exists (fun fi -> fi.Rules.rule = rule) findings

(* --- call-graph layer --- *)

let diamond =
  [ f "a" [ "b"; "c" ] 1; f "b" [ "d" ] 1; f "c" [ "d" ] 1; f "d" [] 1; f "dead" [ "b" ] 1 ]

let test_reachable () =
  let g = Callgraph.build (program diamond) in
  Alcotest.(check (list string)) "preorder" [ "a"; "b"; "d"; "c" ] (Callgraph.reachable g ~root:"a");
  Alcotest.(check (list string)) "dead" [ "dead" ] (Callgraph.unreachable g ~root:"a");
  Alcotest.(check (list string)) "unknown root" [] (Callgraph.reachable g ~root:"nope")

let test_depth () =
  let g = Callgraph.build (program diamond) in
  Alcotest.(check (option int)) "diamond depth" (Some 3) (Callgraph.max_depth g ~root:"a");
  Alcotest.(check (option int)) "leaf depth" (Some 1) (Callgraph.max_depth g ~root:"d")

let test_recursion_detection () =
  let g =
    Callgraph.build
      (program [ f "top" [ "even"; "lone" ] 1; f "even" [ "odd" ] 1; f "odd" [ "even" ] 1;
                 f "lone" [ "lone" ] 1 ])
  in
  let groups = List.map (List.sort compare) (Callgraph.recursive_groups g) in
  Alcotest.(check bool) "mutual cycle" true (List.mem [ "even"; "odd" ] groups);
  Alcotest.(check bool) "self loop" true (List.mem [ "lone" ] groups);
  Alcotest.(check bool) "recursion from top" true (Callgraph.has_recursion_from g ~root:"top");
  Alcotest.(check (option int)) "depth unbounded" None (Callgraph.max_depth g ~root:"top")

(* --- taint pass --- *)

let table = Effects.default ()

let leaks functions ~entry =
  Taint.analyze ~table (Callgraph.build (program functions)) ~entry

let test_direct_leak () =
  let ls = leaks [ f "main" [ "TPM_Unseal"; "pal_output_write" ] 1 ] ~entry:"main" in
  Alcotest.(check int) "one leak" 1 (List.length ls);
  let l = List.hd ls in
  Alcotest.(check string) "source" "TPM_Unseal" l.Taint.source;
  Alcotest.(check string) "sink" "pal_output_write" l.Taint.sink

let test_sanitized_flow () =
  let ls =
    leaks [ f "main" [ "TPM_Unseal"; "TPM_Seal"; "pal_output_write" ] 1 ] ~entry:"main"
  in
  Alcotest.(check int) "sealed before output" 0 (List.length ls)

let test_order_matters () =
  (* output first, THEN seal: still a leak *)
  let ls =
    leaks [ f "main" [ "TPM_Unseal"; "pal_output_write"; "TPM_Seal" ] 1 ] ~entry:"main"
  in
  Alcotest.(check int) "sink before sanitizer leaks" 1 (List.length ls)

let test_interprocedural_leak () =
  (* main gets the secret, helper writes the output page *)
  let ls =
    leaks
      [ f "main" [ "TPM_Unseal"; "helper" ] 1; f "helper" [ "pal_output_write" ] 1 ]
      ~entry:"main"
  in
  Alcotest.(check bool) "leak through callee" true (ls <> [])

let test_callee_sanitizes () =
  let ls =
    leaks
      [ f "main" [ "TPM_Unseal"; "protect"; "pal_output_write" ] 1;
        f "protect" [ "TPM_Seal" ] 1 ]
      ~entry:"main"
  in
  Alcotest.(check int) "callee's seal clears the caller" 0 (List.length ls)

let test_zeroize_shapes () =
  let ends functions entry =
    Taint.ends_with_zeroize ~table (Callgraph.build (program functions)) ~entry
  in
  Alcotest.(check bool) "direct" true (ends [ f "m" [ "TPM_Unseal"; "zeroize_secrets" ] 1 ] "m");
  Alcotest.(check bool) "via wrapper" true
    (ends [ f "m" [ "TPM_Unseal"; "cleanup" ] 1; f "cleanup" [ "zeroize_secrets" ] 1 ] "m");
  Alcotest.(check bool) "not last" false
    (ends [ f "m" [ "zeroize_secrets"; "pal_output_write" ] 1 ] "m");
  Alcotest.(check bool) "absent" false (ends [ f "m" [ "TPM_Unseal" ] 1 ] "m")

(* --- each rule class fires on a deliberately bad PAL/program --- *)

let test_rule_recursion () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "r" ] 1; f "r" [ "r" ] 1 ]) in
  Alcotest.(check bool) "recursion error" true (fired "recursion" fs);
  Alcotest.(check bool) "is error severity" true
    (List.exists (fun fi -> fi.Rules.rule = "recursion" && fi.Rules.severity = Rules.Error) fs)

let test_rule_secret_leak () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "TPM_Unseal"; "pal_output_write"; "zeroize_secrets" ] 1 ]) in
  Alcotest.(check bool) "secret-leak error" true (fired "secret-leak" fs)

let test_rule_tcb_budget () =
  let pal = raw_pal ~modules:[ Pal.Crypto; Pal.Tpm_driver; Pal.Tpm_utilities ] "fat" in
  let fs =
    run_ok
      (target ~budget:100 ~pal ~entry:"m"
         [ f "m" [ "rsa_sign"; "TPM_Seal"; "tpm_transmit" ] 1 ])
  in
  Alcotest.(check bool) "over budget" true (fired "tcb-budget" fs)

let test_rule_slb_region () =
  let limit = Report.slb_limit () in
  let pal = raw_pal ~app_code:(String.make (limit + 1) 'x') "huge" in
  let fs = run_ok (target ~pal ~entry:"m" [ f "m" [] 1 ]) in
  Alcotest.(check bool) "oversized SLB" true
    (List.exists (fun fi -> fi.Rules.rule = "slb-region" && fi.Rules.severity = Rules.Error) fs);
  let near = raw_pal ~app_code:(String.make (limit - 100) 'x') "near" in
  let fs = run_ok (target ~pal:near ~entry:"m" [ f "m" [] 1 ]) in
  Alcotest.(check bool) "90% warning" true
    (List.exists (fun fi -> fi.Rules.rule = "slb-region" && fi.Rules.severity = Rules.Warning) fs)

let test_rule_unnecessary_module () =
  let pal = raw_pal ~modules:[ Pal.Memory_management ] "padded" in
  let fs = run_ok (target ~pal ~entry:"m" [ f "m" [ "memcpy" ] 1 ]) in
  Alcotest.(check bool) "unnecessary module warning" true (fired "unnecessary-module" fs)

let test_rule_missing_module () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "malloc" ] 1 ]) in
  Alcotest.(check bool) "missing module error" true (fired "missing-module" fs);
  (* linking it clears the finding *)
  let pal = raw_pal ~modules:[ Pal.Memory_management ] "heap" in
  let fs = run_ok (target ~pal ~entry:"m" [ f "m" [ "malloc" ] 1 ]) in
  Alcotest.(check bool) "linked clears it" false (fired "missing-module" fs)

let test_rule_forbidden_call () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "socket" ] 1 ]) in
  Alcotest.(check bool) "socket forbidden" true (fired "forbidden-call" fs);
  let fs = run_ok (target ~entry:"m" [ f "m" [ "gettimeofday" ] 1 ]) in
  Alcotest.(check bool) "time-of-day forbidden" true (fired "forbidden-call" fs)

let test_rule_missing_zeroize () =
  let fs =
    run_ok (target ~entry:"m" [ f "m" [ "TPM_Unseal"; "TPM_Seal"; "pal_output_write" ] 1 ])
  in
  Alcotest.(check bool) "missing zeroize" true (fired "missing-zeroize" fs);
  let fs =
    run_ok
      (target ~entry:"m"
         [ f "m" [ "TPM_Unseal"; "TPM_Seal"; "pal_output_write"; "zeroize_secrets" ] 1 ])
  in
  Alcotest.(check bool) "zeroize satisfies" false (fired "missing-zeroize" fs)

let test_rule_stack_depth () =
  let n = (Layout.stack_size / 128) + 5 in
  let chain =
    List.init n (fun i ->
        f (Printf.sprintf "f%d" i)
          (if i = n - 1 then [] else [ Printf.sprintf "f%d" (i + 1) ])
          1)
  in
  let fs = run_ok (target ~entry:"f0" chain) in
  Alcotest.(check bool) "deep chain warns" true (fired "stack-depth" fs)

let test_rule_dead_function () =
  let fs = run_ok (target ~entry:"m" [ f "m" [] 1; f "orphan" [] 1 ]) in
  Alcotest.(check bool) "dead function info" true (fired "dead-function" fs)

let test_rule_unresolved () =
  let fs = run_ok (target ~entry:"m" [ f "m" [ "mystery_helper" ] 1 ]) in
  Alcotest.(check bool) "unresolved warning" true (fired "unresolved-callee" fs)

let test_unknown_entry () =
  Alcotest.(check bool) "driver refuses" true
    (Result.is_error (Rules.run (target ~entry:"nope" [ f "m" [] 1 ])))

(* --- the five shipped PALs are clean --- *)

let test_shipped_pals_clean () =
  List.iter
    (fun (key, t) ->
      let fs = run_ok t in
      Alcotest.(check int) (key ^ " error findings") 0 (Rules.errors fs);
      Alcotest.(check (list string)) (key ^ " all findings") [] (rules_fired fs))
    (Models.all ())

(* --- golden reports --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden key () =
  match Models.find key with
  | None -> Alcotest.fail ("unknown model " ^ key)
  | Some t ->
      let fs = run_ok t in
      let expected = read_file (Filename.concat "golden" (key ^ ".txt")) in
      Alcotest.(check string) (key ^ " report") expected (Report.to_text ~key t fs)

(* --- SARIF export --- *)

let test_sarif_roundtrip () =
  let results =
    List.map (fun (key, t) -> (key, t, run_ok t)) (Models.all ())
  in
  let doc = Flicker_obs.Json.to_string (Report.sarif results) in
  match Flicker_obs.Json.of_string doc with
  | Error e -> Alcotest.fail e
  | Ok (Flicker_obs.Json.Obj fields) ->
      Alcotest.(check bool) "has runs" true (List.mem_assoc "runs" fields);
      (match List.assoc "runs" fields with
      | Flicker_obs.Json.List runs -> Alcotest.(check int) "five runs" 5 (List.length runs)
      | _ -> Alcotest.fail "runs not a list")
  | Ok _ -> Alcotest.fail "not an object"

(* --- properties --- *)

(* random programs: n functions f0..f(n-1), each calling a random mix of
   defined names (cycles allowed) and stdlib/external names *)
let gen_program externals =
  QCheck.Gen.(
    int_range 1 10 >>= fun n ->
    let fname i = Printf.sprintf "f%d" i in
    let callee =
      frequency
        [ (3, map fname (int_range 0 (n - 1))); (1, oneofl externals) ]
    in
    let body = list_size (int_range 0 4) callee in
    map
      (fun bodies ->
        { Extract.functions = List.mapi (fun i calls -> f (fname i) calls 1) bodies;
          types = [] })
      (list_repeat n body))

let print_program p =
  String.concat "; "
    (List.map
       (fun fn -> fn.Extract.fname ^ "->[" ^ String.concat "," fn.Extract.calls ^ "]")
       p.Extract.functions)

let arb_program externals = QCheck.make ~print:print_program (gen_program externals)

let prop_slice_equals_reachable =
  QCheck.Test.make ~name:"extraction slice = call-graph reachable set" ~count:200
    (arb_program [ "printf"; "malloc"; "mystery_helper" ])
    (fun p ->
      match Extract.extract p ~target:"f0" with
      | Error e -> QCheck.Test.fail_report e
      | Ok e ->
          let slice =
            List.sort compare (List.map (fun fn -> fn.Extract.fname) e.Extract.required_functions)
          in
          let reach = List.sort compare (Callgraph.reachable (Callgraph.build p) ~root:"f0") in
          slice = reach)

let add_sanitizers p =
  {
    p with
    Extract.functions =
      List.map
        (fun fn ->
          {
            fn with
            Extract.calls =
              List.concat_map
                (fun c -> if c = "pal_output_write" then [ "TPM_Seal"; c ] else [ c ])
                fn.Extract.calls;
          })
        p.Extract.functions;
  }

let prop_taint_monotone =
  QCheck.Test.make ~name:"taint verdicts are monotone under adding sanitizers" ~count:200
    (arb_program [ "TPM_Unseal"; "TPM_Seal"; "pal_output_write"; "memcpy" ])
    (fun p ->
      let count prog =
        List.length (Taint.analyze ~table (Callgraph.build prog) ~entry:"f0")
      in
      count (add_sanitizers p) <= count p)

let () =
  Alcotest.run "analysis"
    [
      ( "callgraph",
        [
          Alcotest.test_case "reachable + dead" `Quick test_reachable;
          Alcotest.test_case "max depth" `Quick test_depth;
          Alcotest.test_case "recursion detection" `Quick test_recursion_detection;
        ] );
      ( "taint",
        [
          Alcotest.test_case "direct leak" `Quick test_direct_leak;
          Alcotest.test_case "sanitized flow" `Quick test_sanitized_flow;
          Alcotest.test_case "order matters" `Quick test_order_matters;
          Alcotest.test_case "interprocedural leak" `Quick test_interprocedural_leak;
          Alcotest.test_case "callee sanitizes" `Quick test_callee_sanitizes;
          Alcotest.test_case "zeroize shapes" `Quick test_zeroize_shapes;
        ] );
      ( "rules",
        [
          Alcotest.test_case "recursion" `Quick test_rule_recursion;
          Alcotest.test_case "secret leak" `Quick test_rule_secret_leak;
          Alcotest.test_case "tcb budget" `Quick test_rule_tcb_budget;
          Alcotest.test_case "slb region" `Quick test_rule_slb_region;
          Alcotest.test_case "unnecessary module" `Quick test_rule_unnecessary_module;
          Alcotest.test_case "missing module" `Quick test_rule_missing_module;
          Alcotest.test_case "forbidden call" `Quick test_rule_forbidden_call;
          Alcotest.test_case "missing zeroize" `Quick test_rule_missing_zeroize;
          Alcotest.test_case "stack depth" `Quick test_rule_stack_depth;
          Alcotest.test_case "dead function" `Quick test_rule_dead_function;
          Alcotest.test_case "unresolved callee" `Quick test_rule_unresolved;
          Alcotest.test_case "unknown entry" `Quick test_unknown_entry;
        ] );
      ( "shipped PALs",
        Alcotest.test_case "all five clean" `Quick test_shipped_pals_clean
        :: List.map
             (fun key -> Alcotest.test_case ("golden " ^ key) `Quick (test_golden key))
             (Models.keys ()) );
      ("export", [ Alcotest.test_case "sarif" `Quick test_sarif_roundtrip ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_slice_equals_reachable; prop_taint_monotone ] );
    ]
