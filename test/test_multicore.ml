(* Domain-safety and sharded-fleet regression tests.

   The first group hammers the host-side shared-state paths that used to
   be module-level globals (measurement memo, SHA scratch contexts) from
   two domains at once and checks the results against single-domain
   references — under the old globals these raced (torn Hashtbl entries,
   interleaved scratch absorptions); with Domain.DLS each domain owns its
   state and the content-keyed caches stay identity-preserving.

   The second group pins down the sharded fleet's core contract: the
   simulation is a pure function of the config — the domain count only
   chooses execution placement — so dispositions and summaries must be
   exactly equal for 1, 2, and 4 domains, across random workloads,
   policies, shard counts, and fault schedules. *)

open Flicker_crypto
module Measurement = Flicker_core.Measurement
module Fleet = Flicker_service.Fleet
module Workload = Flicker_service.Workload
module Dispatch = Flicker_service.Dispatch
module Request = Flicker_service.Request
module Injector = Flicker_fault.Injector

(* --- DLS hammers ------------------------------------------------------ *)

(* join both domains and re-raise the first failure, so an assertion
   tripping inside a spawned domain fails the test instead of vanishing *)
let join_all domains =
  let results = List.map Domain.join domains in
  List.iter (function Ok () -> () | Error e -> raise e) results

let spawn_catching f =
  Domain.spawn (fun () ->
      match f () with () -> Ok () | exception e -> Error e)

let test_measurement_memo_two_domains () =
  let windows =
    Array.init 80 (fun i ->
        (* > 64-entry cache bound, so concurrent eviction runs too *)
        Printf.sprintf "window-%03d-%s" i (String.make 961 (Char.chr (33 + (i mod 90)))))
  in
  (* unmemoized reference digests, computed before any hammering *)
  let expected = Array.map Sha1.digest windows in
  let hammer () =
    Measurement.clear_cache ();
    for pass = 0 to 2 do
      ignore pass;
      Array.iteri
        (fun i w ->
          let d = Measurement.window_digest w in
          if not (String.equal d expected.(i)) then
            Alcotest.failf "torn or stale memo entry for window %d" i)
        windows
    done;
    let hits, misses = Measurement.cache_stats () in
    (* every access is accounted for on this domain's own stats *)
    Alcotest.(check int) "every lookup counted" (3 * Array.length windows)
      (hits + misses)
  in
  join_all [ spawn_catching hammer; spawn_catching hammer ];
  (* and the hammering never polluted this domain's view *)
  Array.iteri
    (fun i w ->
      Alcotest.(check string) "main-domain digest" expected.(i)
        (Measurement.window_digest w))
    windows

let test_sha_scratch_two_domains () =
  let inputs =
    Array.init 64 (fun i -> String.make ((i * 17 mod 300) + 1) (Char.chr (40 + i)))
  in
  (* sequential single-domain references *)
  let ref1 = Array.map Sha1.digest inputs in
  let ref256 = Array.map Sha256.digest inputs in
  let hammer () =
    for pass = 0 to 49 do
      ignore pass;
      Array.iteri
        (fun i s ->
          if not (String.equal (Sha1.digest s) ref1.(i)) then
            Alcotest.failf "Sha1.digest diverged concurrently on input %d" i;
          if not (String.equal (Sha256.digest s) ref256.(i)) then
            Alcotest.failf "Sha256.digest diverged concurrently on input %d" i)
        inputs
    done
  in
  join_all [ spawn_catching hammer; spawn_catching hammer ]

let test_eviction_keeps_working_set_warm () =
  Measurement.clear_cache ();
  let window i = Printf.sprintf "evict-%03d-%s" i (String.make 100 'w') in
  (* 65 distinct windows: one past the 64-entry bound. The old wholesale
     Hashtbl.reset at capacity flushed everything on the 65th insert;
     single-victim FIFO eviction only drops window 0. *)
  for i = 0 to 64 do
    ignore (Measurement.window_digest (window i))
  done;
  let hits0, misses0 = Measurement.cache_stats () in
  Alcotest.(check int) "all cold at first" 0 hits0;
  Alcotest.(check int) "65 misses" 65 misses0;
  for i = 1 to 64 do
    ignore (Measurement.window_digest (window i))
  done;
  let hits, misses = Measurement.cache_stats () in
  Alcotest.(check int) "only the FIFO victim was evicted" 64 hits;
  Alcotest.(check int) "no re-derivation of survivors" 65 misses

(* --- sharded fleet ---------------------------------------------------- *)

let strip_outputs dispositions =
  (* (id, disposition kind, completion platform, finalization time) —
     the multiset the determinism property is about *)
  List.map
    (fun ((r : Request.t), d) ->
      let at =
        match d with
        | Request.Completed c -> c.Request.finished_ms
        | Request.Rejected x -> x.at_ms
        | Request.Expired x -> x.at_ms
        | Request.Failed x -> x.at_ms
      in
      let platform =
        match d with Request.Completed c -> c.Request.platform | _ -> -1
      in
      (r.Request.id, Request.disposition_name d, platform, at))
    dispositions

let run_echo_case ~domains ~platforms ~shards ~batch ~policy ~faults
    ~retry_budget ~breaker_failures ~epoch_ms ~clients ~per_client ~work_ms
    ~deadline ~seed =
  let config =
    {
      Fleet.default_config with
      platforms;
      shards;
      domains;
      batch_size = batch;
      queue_depth = 8;
      policy;
      seed;
      faults;
      retry_budget;
      breaker_failures;
      epoch_ms;
    }
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms ()) in
  Fleet.submit_open_loop fleet ~clients ~per_client ~mean_gap_ms:20.0
    ?deadline_ms:deadline
    ~payload:(fun ~client ~seq -> Printf.sprintf "mc-%d-%d" client seq)
    ();
  Fleet.run fleet;
  (Fleet.dispositions fleet, Fleet.summary fleet)

let test_rr_parity_across_domains () =
  let run ~domains =
    let config =
      {
        Fleet.default_config with
        platforms = 4;
        shards = 2;
        domains;
        batch_size = 1;
        policy = Dispatch.Round_robin;
        seed = "rr-parity";
      }
    in
    let fleet = Fleet.create ~config (Workload.echo ~work_ms:30.0 ()) in
    for i = 1 to 16 do
      ignore (Fleet.submit fleet (Printf.sprintf "rr-%d" i))
    done;
    Fleet.run fleet;
    let order =
      (* dispatch order: which platform served each request, by id *)
      List.filter_map
        (fun ((r : Request.t), d) ->
          match d with
          | Request.Completed c -> Some (r.Request.id, c.Request.platform)
          | _ -> None)
        (Fleet.dispositions fleet)
    in
    (order, Fleet.summary fleet)
  in
  let order1, s1 = run ~domains:1 in
  let order4, s4 = run ~domains:4 in
  Alcotest.(check (list (pair int int)))
    "round-robin dispatch order identical for 1 and 4 domains" order1 order4;
  Alcotest.(check bool) "summaries identical" true (s1 = s4);
  (* and the shard-local cursors actually rotated within each window *)
  let platforms_hit = List.sort_uniq compare (List.map snd order1) in
  Alcotest.(check (list int)) "every platform served" [ 0; 1; 2; 3 ] platforms_hit

let test_cross_shard_forwarding () =
  let config =
    {
      Fleet.default_config with
      platforms = 2;
      shards = 2;
      domains = 2;
      batch_size = 1;
      queue_depth = 8;
      policy = Dispatch.Least_loaded;
      seed = "forward";
    }
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:10.0 ()) in
  let crashed = ref [] in
  Fleet.add_crash_hook fleet (fun i -> crashed := i :: !crashed);
  (* shard 0's only platform goes down: its arrivals cannot be placed
     locally and must ride the barrier to shard 1 *)
  Fleet.crash_platform fleet 0;
  Alcotest.(check (list int)) "deferred hook ran for the manual crash" [ 0 ]
    !crashed;
  Alcotest.(check bool) "platform 0 down" false (Fleet.platform_up fleet 0);
  let ids = List.init 6 (fun i -> Fleet.submit fleet (Printf.sprintf "f-%d" i)) in
  Fleet.run fleet;
  let s = Fleet.summary fleet in
  Alcotest.(check int) "everything completed" 6 s.Fleet.completed;
  Alcotest.(check bool) "requests crossed shards" true (s.Fleet.forwarded > 0);
  List.iter
    (fun id ->
      match Fleet.disposition_of fleet id with
      | Some (Request.Completed c) ->
          Alcotest.(check int) "served by shard 1's platform" 1 c.Request.platform
      | d ->
          Alcotest.failf "request %d: expected completion, got %s" id
            (match d with
            | Some disp -> Request.disposition_name disp
            | None -> "nothing"))
    ids

let prop_domain_count_invisible =
  QCheck.Test.make ~name:"random workload x seed x {1,2,4} domains agree"
    ~count:6
    QCheck.(int_bound 100_000)
    (fun n ->
      let rng = Prng.create ~seed:(Printf.sprintf "mc-prop-%d" n) in
      let platforms = 2 + Prng.int_below rng 4 in
      let shards = 1 + Prng.int_below rng platforms in
      let batch = 1 + Prng.int_below rng 3 in
      let policy =
        match Prng.int_below rng 3 with
        | 0 -> Dispatch.Round_robin
        | 1 -> Dispatch.Least_loaded
        | _ -> Dispatch.Sealed_affinity
      in
      let faulty = Prng.int_below rng 2 = 1 in
      let faults = if faulty then Some (Injector.scaled 0.25) else None in
      let retry_budget = if faulty then 2 else 0 in
      let breaker_failures = if faulty then 2 else 0 in
      let epoch_ms = if Prng.int_below rng 2 = 0 then 50.0 else 250.0 in
      let clients = 1 + Prng.int_below rng 3 in
      let per_client = 1 + Prng.int_below rng 4 in
      let work_ms = 10.0 +. float_of_int (Prng.int_below rng 90) in
      let deadline =
        if Prng.int_below rng 3 = 0 then Some 500.0 else None
      in
      let seed = Printf.sprintf "mc-case-%d" n in
      let case ~domains =
        run_echo_case ~domains ~platforms ~shards ~batch ~policy ~faults
          ~retry_budget ~breaker_failures ~epoch_ms ~clients ~per_client
          ~work_ms ~deadline ~seed
      in
      let d1, s1 = case ~domains:1 in
      let d2, s2 = case ~domains:2 in
      let d4, s4 = case ~domains:4 in
      let m1 = strip_outputs d1 and m2 = strip_outputs d2
      and m4 = strip_outputs d4 in
      if m1 <> m2 || m1 <> m4 then
        QCheck.Test.fail_report "finalized multisets differ across domain counts";
      if d1 <> d2 || d1 <> d4 then
        QCheck.Test.fail_report "full dispositions differ across domain counts";
      if s1 <> s2 || s1 <> s4 then
        QCheck.Test.fail_report "summaries differ across domain counts";
      true)

let () =
  Alcotest.run "multicore"
    [
      ( "domain safety",
        [
          Alcotest.test_case "measurement memo: 2-domain hammer" `Quick
            test_measurement_memo_two_domains;
          Alcotest.test_case "sha scratch: 2-domain hammer" `Quick
            test_sha_scratch_two_domains;
          Alcotest.test_case "memo eviction keeps 65-image set warm" `Quick
            test_eviction_keeps_working_set_warm;
        ] );
      ( "sharded fleet",
        [
          Alcotest.test_case "round-robin parity: 1 vs 4 domains" `Quick
            test_rr_parity_across_domains;
          Alcotest.test_case "cross-shard forwarding completes" `Quick
            test_cross_shard_forwarding;
          QCheck_alcotest.to_alcotest prop_domain_count_invisible;
        ] );
    ]
