(* Tests for the attested serving tier (flicker_serve): the
   deterministic LRU+TTL cache, the memoizing appraiser, cache-hit
   bundles that still verify, invalidation on reboot and NV advance,
   sealed-affinity homing on the miss path, and two-tier admission. *)

module Cache = Flicker_serve.Cache
module Appraise = Flicker_serve.Appraise
module Serve = Flicker_serve.Serve
module Fleet = Flicker_service.Fleet
module Request = Flicker_service.Request
module Metrics = Flicker_obs.Metrics
module Prng = Flicker_crypto.Prng

(* --- cache ----------------------------------------------------------- *)

let test_cache_ttl () =
  let c = Cache.create ~capacity:8 ~ttl_ms:100.0 () in
  Cache.insert c ~now_ms:1000.0 "k" 42;
  Alcotest.(check (option int)) "fresh hit" (Some 42)
    (Cache.find c ~now_ms:1050.0 "k");
  (* the boundary instant is still a hit (matches the fleet's deadline
     convention) *)
  Alcotest.(check (option int)) "boundary hit" (Some 42)
    (Cache.find c ~now_ms:1100.0 "k");
  Alcotest.(check (option int)) "expired" None
    (Cache.find c ~now_ms:1100.5 "k");
  let s = Cache.stats c in
  Alcotest.(check int) "expirations" 1 s.Cache.expirations;
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "gone" 0 (Cache.length c)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  Cache.insert c ~now_ms:0.0 "a" 1;
  Cache.insert c ~now_ms:1.0 "b" 2;
  (* touch "a" so "b" is the LRU victim *)
  ignore (Cache.find c ~now_ms:2.0 "a");
  Cache.insert c ~now_ms:3.0 "c" 3;
  Alcotest.(check (option int)) "a survives" (Some 1)
    (Cache.find c ~now_ms:4.0 "a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c ~now_ms:4.0 "b");
  Alcotest.(check (option int)) "c present" (Some 3)
    (Cache.find c ~now_ms:4.0 "c");
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions

(* the same seeded operation sequence must leave two caches in exactly
   the same state: eviction choice depends only on recency, never on
   hash-table iteration luck *)
let test_cache_lru_deterministic () =
  let run () =
    let rng = Prng.create ~seed:"serve-lru" in
    let c = Cache.create ~capacity:16 () in
    let survivors = ref [] in
    for step = 0 to 499 do
      let k = Printf.sprintf "key-%d" (Prng.int_below rng 64) in
      if Prng.int_below rng 3 = 0 then ignore (Cache.find c ~now_ms:(float_of_int step) k)
      else Cache.insert c ~now_ms:(float_of_int step) k step
    done;
    for i = 0 to 63 do
      let k = Printf.sprintf "key-%d" i in
      if Cache.find c ~now_ms:1000.0 k <> None then survivors := k :: !survivors
    done;
    (!survivors, (Cache.stats c).Cache.evictions)
  in
  let a, ea = run () in
  let b, eb = run () in
  Alcotest.(check (list string)) "same survivors" a b;
  Alcotest.(check int) "same eviction count" ea eb;
  Alcotest.(check bool) "evictions happened" true (ea > 0)

let test_cache_remove_if () =
  let c = Cache.create () in
  List.iter (fun (k, v) -> Cache.insert c ~now_ms:0.0 k v)
    [ ("p0/a", 0); ("p0/b", 0); ("p1/a", 1) ];
  let dropped = Cache.remove_if c (fun _ v -> v = 0) in
  Alcotest.(check int) "swept" 2 dropped;
  Alcotest.(check int) "left" 1 (Cache.length c);
  Alcotest.(check int) "counted" 2 (Cache.stats c).Cache.invalidations

(* --- serve helpers --------------------------------------------------- *)

let quick_config ?(ttl = None) ?(capacity = 64) () =
  {
    Serve.default_config with
    Serve.fleet = { Fleet.default_config with Fleet.seed = "test-serve" };
    cache_ttl_ms = ttl;
    cache_capacity = capacity;
  }

let completion fleet id =
  match Fleet.disposition_of fleet id with
  | Some (Request.Completed c) -> c
  | Some d ->
      Alcotest.failf "request %d not completed: %a" id Request.pp_disposition d
  | None -> Alcotest.failf "request %d never finalized" id

(* --- serve: hit path and verification -------------------------------- *)

let test_hit_returns_verifiable_bundle () =
  let t = Serve.create ~config:(quick_config ()) ~warm:[ "alpha"; "beta" ] () in
  let fleet = Serve.fleet t in
  Alcotest.(check bool) "warm entry cached" true (Serve.cached t "alpha");
  let hit = Fleet.submit fleet "alpha" in
  let miss = Fleet.submit fleet "gamma" in
  Fleet.run fleet;
  let ch = completion fleet hit in
  Alcotest.(check int) "hit served by the front end" (-1) ch.Request.platform;
  Alcotest.(check int) "hit ran no session" 0 ch.Request.batch;
  Alcotest.(check string) "hit output" "echo:alpha" ch.Request.output;
  let cm = completion fleet miss in
  Alcotest.(check bool) "miss ran a session" true (cm.Request.batch >= 1);
  (* both the cached bundle and the fresh one must pass full appraisal *)
  List.iter
    (fun id ->
      match Serve.bundle_for t id with
      | None -> Alcotest.failf "no bundle for %d" id
      | Some b -> (
          match Serve.verify_bundle t b with
          | Ok () -> ()
          | Error f ->
              Alcotest.failf "bundle %d failed verification: %s" id
                (Serve.verify_failure_to_string f)))
    [ hit; miss ];
  let m = Serve.metrics t in
  Alcotest.(check bool) "hits counted" true (Metrics.counter m "serve.cache.hits" >= 1);
  Alcotest.(check bool) "misses counted" true
    (Metrics.counter m "serve.cache.misses" >= 1);
  let s = Fleet.summary fleet in
  Alcotest.(check int) "summary cache_served" 1 s.Fleet.cache_served

(* appraising the same bundle twice must memoize the host crypto *)
let test_appraisal_memoized () =
  let t = Serve.create ~config:(quick_config ()) ~warm:[ "alpha" ] () in
  let fleet = Serve.fleet t in
  let id = Fleet.submit fleet "alpha" in
  Fleet.run fleet;
  let b = Option.get (Serve.bundle_for t id) in
  Alcotest.(check bool) "first appraisal" true (Serve.verify_bundle t b = Ok ());
  let s1 = Appraise.stats (Serve.appraiser t) in
  Alcotest.(check bool) "second appraisal" true (Serve.verify_bundle t b = Ok ());
  let s2 = Appraise.stats (Serve.appraiser t) in
  Alcotest.(check int) "quote verified once"
    s1.Appraise.quote_misses s2.Appraise.quote_misses;
  Alcotest.(check bool) "quote memo hit" true
    (s2.Appraise.quote_hits > s1.Appraise.quote_hits);
  Alcotest.(check bool) "cert memo hit" true
    (s2.Appraise.cert_hits > s1.Appraise.cert_hits);
  Alcotest.(check bool) "host-crypto bytes saved" true
    (s2.Appraise.bytes_saved > s1.Appraise.bytes_saved)

(* --- serve: invalidation --------------------------------------------- *)

let test_reboot_invalidates () =
  let t = Serve.create ~config:(quick_config ()) ~warm:[ "alpha" ] () in
  let fleet = Serve.fleet t in
  let id = Fleet.submit fleet "alpha" in
  Fleet.run fleet;
  let b = Option.get (Serve.bundle_for t id) in
  (* crash the platform that minted the entry: its volatile state and
     PCRs are gone, so the cached quote no longer reflects it *)
  Fleet.crash_platform fleet b.Serve.platform;
  Alcotest.(check bool) "entry invalidated" false (Serve.cached t "alpha");
  (match Serve.verify_bundle t b with
  | Error (Serve.Stale _) -> ()
  | Ok () -> Alcotest.fail "stale bundle verified"
  | Error f ->
      Alcotest.failf "wrong failure: %s" (Serve.verify_failure_to_string f));
  (* a new request for the same payload must run a real session again *)
  let id2 = Fleet.submit fleet "alpha" in
  Fleet.run fleet;
  let c2 = completion fleet id2 in
  Alcotest.(check bool) "re-executed after reboot" true (c2.Request.batch >= 1);
  let m = Serve.metrics t in
  Alcotest.(check bool) "reboot invalidation counted" true
    (Metrics.counter m "serve.cache.invalidated_reboot" >= 1)

let test_nv_advance_invalidates () =
  let t = Serve.create ~config:(quick_config ()) ~warm:[ "alpha" ] () in
  let fleet = Serve.fleet t in
  let id = Fleet.submit fleet "alpha" in
  Fleet.run fleet;
  let b = Option.get (Serve.bundle_for t id) in
  Serve.advance_nv t b.Serve.platform;
  Alcotest.(check bool) "entry invalidated" false (Serve.cached t "alpha");
  (match Serve.verify_bundle t b with
  | Error (Serve.Stale _) -> ()
  | _ -> Alcotest.fail "NV-stale bundle did not fail as stale");
  let m = Serve.metrics t in
  Alcotest.(check bool) "nv invalidation counted" true
    (Metrics.counter m "serve.cache.invalidated_nv" >= 1);
  Alcotest.check_raises "advance_nv validates index"
    (Invalid_argument "Serve.advance_nv: platform index outside fleet")
    (fun () -> Serve.advance_nv t 99)

let test_ttl_expiry_in_serve () =
  let t =
    Serve.create ~config:(quick_config ~ttl:(Some 500.0) ()) ~warm:[ "alpha" ] ()
  in
  let fleet = Serve.fleet t in
  (* a request arriving well past the entry's TTL must miss and
     re-execute *)
  let id =
    Fleet.submit fleet ~sent_ms:(Fleet.now_ms fleet +. 2000.0) "alpha"
  in
  Fleet.run fleet;
  let c = completion fleet id in
  Alcotest.(check bool) "expired entry re-executed" true (c.Request.batch >= 1);
  Alcotest.(check bool) "expiration counted" true
    ((Serve.cache_stats t).Cache.expirations >= 1)

(* --- serve: homing and tiers ----------------------------------------- *)

let test_homed_requests_bypass_cache () =
  let t = Serve.create ~config:(quick_config ()) ~warm:[ "alpha" ] () in
  let fleet = Serve.fleet t in
  let id = Fleet.submit fleet ~home:1 ~client:"sealed-1" "alpha" in
  Fleet.run fleet;
  let c = completion fleet id in
  (* even with the payload cached, a homed request runs on its home
     platform: its sealed state stays authoritative *)
  Alcotest.(check int) "served on its home" 1 c.Request.platform;
  Alcotest.(check bool) "ran a session" true (c.Request.batch >= 1)

let test_tiered_admission () =
  let config =
    {
      Fleet.default_config with
      Fleet.seed = "test-serve-tiers";
      platforms = 1;
      batch_size = 1;
    }
  in
  let fleet = Fleet.create ~config (Flicker_service.Workload.echo ()) in
  (* four batch requests queue up; the interactive one arrives last but
     must be dispatched ahead of the queued batch work *)
  let batch_ids =
    List.init 4 (fun i -> Fleet.submit fleet (Printf.sprintf "b%d" i))
  in
  let interactive =
    Fleet.submit fleet ~tier:Request.Interactive ~sent_ms:(Fleet.now_ms fleet +. 1.0)
      "urgent"
  in
  Fleet.run fleet;
  let fin id = (completion fleet id).Request.finished_ms in
  let later_batches = List.filteri (fun i _ -> i > 0) batch_ids in
  List.iter
    (fun b ->
      Alcotest.(check bool) "interactive overtakes queued batch work" true
        (fin interactive < fin b))
    later_batches;
  let s = Fleet.summary fleet in
  let tier_of name =
    List.find (fun ts -> Request.tier_name ts.Fleet.tier = name) s.Fleet.by_tier
  in
  let ti = tier_of "interactive" and tb = tier_of "batch" in
  Alcotest.(check int) "interactive submitted" 1 ti.Fleet.t_submitted;
  Alcotest.(check int) "interactive completed" 1 ti.Fleet.t_completed;
  Alcotest.(check int) "batch submitted" 4 tb.Fleet.t_submitted;
  Alcotest.(check int) "batch completed" 4 tb.Fleet.t_completed;
  Alcotest.(check bool) "interactive p95 below batch p95" true
    (ti.Fleet.t_p95_ms < tb.Fleet.t_p95_ms)

let () =
  Alcotest.run "serve"
    [
      ( "cache",
        [
          Alcotest.test_case "ttl against the virtual clock" `Quick test_cache_ttl;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "lru determinism under a fixed seed" `Quick
            test_cache_lru_deterministic;
          Alcotest.test_case "remove_if sweeps" `Quick test_cache_remove_if;
        ] );
      ( "serve",
        [
          Alcotest.test_case "hit returns a verifiable bundle" `Quick
            test_hit_returns_verifiable_bundle;
          Alcotest.test_case "appraisal memoizes host crypto" `Quick
            test_appraisal_memoized;
          Alcotest.test_case "reboot invalidates" `Quick test_reboot_invalidates;
          Alcotest.test_case "nv advance invalidates" `Quick
            test_nv_advance_invalidates;
          Alcotest.test_case "ttl expiry re-executes" `Quick
            test_ttl_expiry_in_serve;
          Alcotest.test_case "homed requests bypass the cache" `Quick
            test_homed_requests_bypass_cache;
          Alcotest.test_case "tiered admission" `Quick test_tiered_admission;
        ] );
    ]
