(* The temporal protocol verifier: automata unit tests over synthetic
   event sequences, trace conformance over real simulator sessions, the
   model checker against the good session and every planted bug, and
   the DMA-during-PAL regression tying the DEV, the event stream, and
   the automata together. *)

open Flicker_core
module V = Flicker_verify
module E = V.Event
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Machine = Flicker_hw.Machine
module Dma = Flicker_hw.Dma
module Senter = Flicker_hw.Senter
module Tracer = Flicker_obs.Tracer
module Adversary = Flicker_os.Adversary

let make_platform ~seed = Platform.create ~seed ~key_bits:512 ()

(* --- shared synthetic event shorthand --- *)

let w_addr = 0x30000
let w_len = 0x10000
let skinit = E.Skinit_begin "svm"
let protect = E.Dev_protect { addr = w_addr; len = w_len }
let unprotect = E.Dev_unprotect { addr = w_addr; len = w_len }
let zeroize = E.Zeroize { addr = w_addr; len = w_len }
let ext kind = E.Pcr_extend { index = 17; kind }

(* a fully disciplined session, as the automata expect to see it *)
let good_session =
  [
    E.Session_begin "t";
    E.Os_suspend;
    skinit;
    protect;
    E.Pcr_reset;
    ext E.Measure;
    E.Skinit_end;
    ext E.Stub;
    zeroize;
    ext E.Input;
    ext E.Output;
    ext E.Nonce;
    ext E.Cap;
    unprotect;
    E.Os_resume;
    E.Session_end;
  ]

let feed_to_end auto events =
  let rec go inst = function
    | [] -> Ok ()
    | e :: rest -> (
        match V.Automata.feed inst e with
        | Ok i -> go i rest
        | Error m -> Error m)
  in
  go (V.Automata.start auto) events

let check_accepts auto events =
  match feed_to_end auto events with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s rejected: %s" (V.Automata.name auto) m

let check_rejects auto events =
  match feed_to_end auto events with
  | Ok () -> Alcotest.failf "%s accepted a bad sequence" (V.Automata.name auto)
  | Error _ -> ()

(* --- automata unit tests --- *)

let test_good_sequence_accepted () =
  List.iter (fun a -> check_accepts a good_session) V.Automata.all;
  (* two sessions back to back: every automaton returns to rest *)
  List.iter (fun a -> check_accepts a (good_session @ good_session)) V.Automata.all

let test_cap_before_resume () =
  let a = V.Automata.cap_before_resume in
  check_rejects a [ E.Os_suspend; skinit; protect; zeroize; E.Os_resume ];
  (* resume without a launch is fine *)
  check_accepts a [ E.Os_suspend; E.Os_resume ]

let test_dev_covers_slb () =
  let a = V.Automata.dev_covers_slb in
  (* measurement with no DEV over the window *)
  check_rejects a [ E.Os_suspend; skinit; E.Pcr_reset; ext E.Measure ];
  (* DEV dropped before zeroize *)
  check_rejects a [ E.Os_suspend; skinit; protect; ext E.Measure; unprotect ];
  check_rejects a [ E.Os_suspend; skinit; protect; ext E.Measure; E.Dev_clear ];
  (* a partial wipe does not count as zeroizing the window *)
  check_rejects a
    [ skinit; protect; E.Zeroize { addr = w_addr; len = 16 }; unprotect ];
  (* after a full wipe the DEV may drop *)
  check_accepts a [ skinit; protect; zeroize; unprotect ]

let test_zeroize_before_exit () =
  let a = V.Automata.zeroize_before_exit in
  check_rejects a [ E.Os_suspend; skinit; protect; ext E.Cap; E.Os_resume ];
  check_accepts a [ E.Os_suspend; skinit; protect; zeroize; E.Os_resume ]

let test_extend_order () =
  let a = V.Automata.extend_order in
  let prefix = [ skinit; protect; E.Pcr_reset; ext E.Measure ] in
  (* outputs before inputs *)
  check_rejects a (prefix @ [ ext E.Output; ext E.Input ]);
  (* cap then more session extends *)
  check_rejects a (prefix @ [ ext E.Input; ext E.Output; ext E.Cap; ext E.Input ]);
  (* stub after I/O *)
  check_rejects a (prefix @ [ ext E.Input; ext E.Stub ]);
  (* session-labeled extend with no launch *)
  check_rejects a [ ext E.Cap ];
  (* SENTER's double measure (ACM then MLE) is legal *)
  check_accepts a
    (prefix @ [ ext E.Measure; ext E.Input; ext E.Output; ext E.Cap ]);
  (* PAL software extends are unconstrained *)
  check_accepts a
    (prefix @ [ ext E.Software; ext E.Input; ext E.Output; ext E.Cap; ext E.Software ]);
  (* other PCRs are not the session's business *)
  check_accepts a [ E.Pcr_extend { index = 10; kind = E.Cap } ]

let test_nv_monotonic () =
  let a = V.Automata.nv_monotonic in
  let incr v = E.Counter_increment { handle = 3; value = v } in
  let write v = E.Nv_write { index = 0x1200; counter = Some v } in
  check_accepts a [ incr 1; incr 2; incr 5; write 1; write 2; write 9 ];
  check_rejects a [ incr 4; incr 4 ];
  check_rejects a [ incr 4; incr 3 ];
  check_rejects a [ write 7; write 6 ];
  (* a same-value rewrite is a replayed blob being persisted *)
  check_rejects a [ write 7; write 7 ];
  (* once the index stops holding a 4-byte counter, it is untracked *)
  check_accepts a
    [ write 7; E.Nv_write { index = 0x1200; counter = None }; write 1 ]

let test_fresh_nv_on_launch () =
  let a = V.Automata.fresh_nv_on_launch in
  let read = E.Nv_read { index = 0x1200 } in
  let write v = E.Nv_write { index = 0x1200; counter = Some v } in
  (* provisioning: a first-time write needs no prior read *)
  check_accepts a [ E.Os_suspend; skinit; write 0 ];
  (* read-then-write inside each launch is the disciplined reseal *)
  check_accepts a
    [ skinit; read; write 1; E.Os_resume; skinit; read; write 2 ];
  (* a second launch re-writing the index without a fresh read cannot
     have performed the freshness comparison *)
  check_rejects a [ skinit; read; write 1; E.Os_resume; skinit; write 2 ];
  (* the read must come from the same launch, not a previous one *)
  check_rejects a [ skinit; read; write 1; E.Pcr_reboot; skinit; write 2 ];
  (* out-of-launch writes (the untrusted OS's own NV use) are exempt *)
  check_accepts a [ skinit; read; write 1; E.Os_resume; write 2 ];
  (* releasing the index resets its provenance *)
  check_accepts a
    [
      skinit; read; write 1; E.Os_resume;
      E.Nv_write { index = 0x1200; counter = None };
      skinit; write 5;
    ]

let test_no_unchecked_dma () =
  let a = V.Automata.no_unchecked_dma in
  let dma denied =
    E.Dma_attempt { addr = w_addr; len = 4096; write = false; denied }
  in
  check_rejects a [ skinit; protect; dma false ];
  check_accepts a [ skinit; protect; dma true ];
  (* outside a session the window is fair game *)
  check_accepts a [ dma false ];
  (* after the wipe, reads hit zeros: not a violation *)
  check_accepts a [ skinit; protect; zeroize; dma false ]

let test_suspend_before_launch () =
  let a = V.Automata.suspend_before_launch in
  check_rejects a [ skinit ];
  check_rejects a [ E.Os_suspend; E.Os_resume; skinit ];
  check_accepts a [ E.Os_suspend; skinit ]

(* --- checker over synthetic traces --- *)

let test_checker_broken_trace () =
  (* a session that resumes without capping: exactly the cap automaton
     fires, and the report pinpoints the resume event *)
  let broken =
    [
      E.Session_begin "broken";
      E.Os_suspend;
      skinit;
      protect;
      E.Pcr_reset;
      ext E.Measure;
      E.Skinit_end;
      zeroize;
      unprotect;
      E.Os_resume;
      E.Session_end;
    ]
  in
  let report = V.Checker.check broken in
  Alcotest.(check int) "events" (List.length broken) report.V.Checker.events_checked;
  match report.V.Checker.violations with
  | [ v ] ->
      Alcotest.(check string) "automaton" "cap-before-resume" v.V.Checker.automaton;
      Alcotest.(check bool) "at the resume" true (v.V.Checker.event = E.Os_resume);
      Alcotest.(check bool) "window nonempty" true (v.V.Checker.window <> [])
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_checker_restarts_after_violation () =
  (* one broken session then one good one: only one violation *)
  let broken = [ E.Os_suspend; skinit; protect; zeroize; unprotect; E.Os_resume ] in
  let report = V.Checker.check (broken @ good_session) in
  Alcotest.(check int) "one violation" 1
    (List.length report.V.Checker.violations)

(* --- conformance over real simulator sessions --- *)

let run_session ?tech ?flavor ?inputs ?nonce p name output =
  let pal = Pal.define ~name (fun env -> Pal_env.set_output env output) in
  match Session.execute p ~pal ?tech ?flavor ?inputs ?nonce () with
  | Ok o -> o
  | Error e -> Alcotest.failf "session %s: %a" name Session.pp_error e

let test_real_sessions_conform () =
  let p = make_platform ~seed:"verify-conform" in
  let nonce = Platform.fresh_nonce p in
  ignore (run_session p "vc-opt" "a" ~inputs:"in" ~nonce);
  ignore (run_session p "vc-std" "b" ~flavor:Flicker_slb.Builder.Standard);
  ignore (run_session p "vc-txt" "c" ~tech:(Session.Txt { acm = Senter.default_acm }));
  let report =
    V.Checker.check_tracer p.Platform.machine.Machine.tracer
  in
  Alcotest.(check int) "no violations" 0 (List.length report.V.Checker.violations);
  Alcotest.(check bool) "protocol events seen" true
    (report.V.Checker.events_checked > 30)

let test_session_gate_accepts () =
  (* the in-session conformance gate: enabled, a clean session returns
     normally instead of raising *)
  Session.set_conformance_checking true;
  Fun.protect
    ~finally:(fun () -> Session.set_conformance_checking false)
    (fun () ->
      let p = make_platform ~seed:"verify-gate" in
      Alcotest.(check bool) "gate on" true (Session.conformance_checking ());
      let o = run_session p "vg" "gated" in
      Alcotest.(check string) "ran" "gated" o.Session.outputs)

let test_replay_guard_conforms () =
  (* the NV-based replay guard defines a counter space then seals (which
     increments); the nv-monotonic automaton must accept its real traffic *)
  let p = make_platform ~seed:"verify-replay" in
  let pal =
    Pal.define ~name:"vr-nv" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env ->
        match
          Replay.Nv.init env ~owner_auth:(String.make 20 '\000') ~nv_index:0x1500
        with
        | Error e -> Pal_env.set_output env ("ERROR: " ^ e)
        | Ok guard -> (
            match Replay.Nv.seal env guard "counter-bound secret" with
            | Ok _ -> Pal_env.set_output env "nv"
            | Error e -> Pal_env.set_output env ("ERROR: " ^ e)))
  in
  (match Session.execute p ~pal () with
  | Ok o -> Alcotest.(check string) "guard ran" "nv" o.Session.outputs
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e);
  let report = V.Checker.check_tracer p.Platform.machine.Machine.tracer in
  Alcotest.(check int) "no violations" 0 (List.length report.V.Checker.violations)

(* --- the planted-bug regression: DMA during a PAL run --- *)

let test_dma_during_pal_denied_and_traced () =
  let p = make_platform ~seed:"verify-dma" in
  let nic = Dma.create p.Platform.machine ~name:"verify-nic" in
  let slb_base = p.Platform.slb_base in
  let probe = ref None in
  let pal =
    Pal.define ~name:"verify-dma-victim" (fun env ->
        probe :=
          Some (Adversary.dma_read_probe nic ~addr:slb_base ~len:4096 ~pattern:"\x7f");
        Pal_env.set_output env "alive")
  in
  (match Session.execute p ~pal () with
  | Ok o -> Alcotest.(check string) "pal ran" "alive" o.Session.outputs
  | Error e -> Alcotest.failf "session: %a" Session.pp_error e);
  (* the DEV denied it *)
  (match !probe with
  | Some r -> Alcotest.(check bool) "probe failed" false r.Adversary.succeeded
  | None -> Alcotest.fail "probe never ran");
  (* ... and the denial is in the protocol event stream *)
  let events = E.of_trace (Tracer.events p.Platform.machine.Machine.tracer) in
  let denied_attempts =
    List.filter
      (function
        | E.Dma_attempt { denied = true; addr; _ } -> addr = slb_base
        | _ -> false)
      events
  in
  Alcotest.(check bool) "denied dma.attempt traced" true (denied_attempts <> []);
  (* ... and the trace still conforms: denied DMA is the DEV working *)
  let report = V.Checker.check events in
  Alcotest.(check int) "no violations" 0 (List.length report.V.Checker.violations)

(* --- model checker --- *)

let run_intended ?por variant =
  let adversary, sessions = V.Model.intended_adversary variant in
  V.Mc.run ~adversary ~sessions ?por variant

(* the minimal counterexample length of every planted bug, asserted
   exactly: POR, the dedup rework or a model change that lengthens (or
   shortens) any of these is a regression *)
let minimal_cex_lengths =
  [
    (V.Model.Resume_before_cap, 13);
    (V.Model.Clear_dev_early, 5);
    (V.Model.Skip_zeroize, 12);
    (V.Model.Nv_rollback, 8);
    (V.Model.Launch_unsuspended, 2);
    (V.Model.Out_of_order_extends, 9);
    (V.Model.Reseal_without_counter_check, 24);
    (V.Model.Trust_state_across_reset, 5);
  ]

let test_mc_good_verifies () =
  let r = V.Mc.run V.Model.Good in
  (match r.V.Mc.outcome with
  | V.Mc.Verified -> ()
  | V.Mc.Violation cex ->
      Alcotest.failf "good session flagged: %s (%s)" cex.V.Mc.automaton
        cex.V.Mc.message);
  Alcotest.(check bool) "full exploration" false r.V.Mc.stats.V.Mc.truncated;
  Alcotest.(check bool) "explored states" true (r.V.Mc.stats.V.Mc.states > 10)

let test_mc_good_under_every_adversary () =
  (* the disciplined session stays clean under each adversary model
     alone, all four composed, and with the reduction on or off *)
  let configs =
    List.map (fun k -> V.Adversary.of_kinds [ k ]) V.Adversary.all_kinds
    @ [ V.Adversary.of_kinds V.Adversary.all_kinds ]
  in
  List.iter
    (fun adversary ->
      List.iter
        (fun por ->
          let r = V.Mc.run ~adversary ~sessions:2 ~por V.Model.Good in
          match r.V.Mc.outcome with
          | V.Mc.Verified ->
              Alcotest.(check bool)
                (V.Adversary.name adversary ^ " full exploration")
                false r.V.Mc.stats.V.Mc.truncated
          | V.Mc.Violation cex ->
              Alcotest.failf "good flagged under %s (por=%b): %s"
                (V.Adversary.name adversary)
                por cex.V.Mc.automaton)
        [ true; false ])
    configs

let test_mc_catches_every_planted_bug () =
  List.iter
    (fun variant ->
      match (run_intended variant).V.Mc.outcome with
      | V.Mc.Verified ->
          Alcotest.failf "planted bug in %s not caught" (V.Model.variant_name variant)
      | V.Mc.Violation cex ->
          Alcotest.(check int)
            (V.Model.variant_name variant ^ " counterexample is minimal")
            (List.assoc variant minimal_cex_lengths)
            (List.length cex.V.Mc.steps))
    V.Model.broken_variants

let test_mc_expected_automata () =
  (* each planted bug is caught by the automaton it was planted for *)
  let expect variant automaton =
    match (run_intended variant).V.Mc.outcome with
    | V.Mc.Violation cex ->
        Alcotest.(check string)
          (V.Model.variant_name variant)
          automaton cex.V.Mc.automaton
    | V.Mc.Verified ->
        Alcotest.failf "%s not caught" (V.Model.variant_name variant)
  in
  expect V.Model.Resume_before_cap "cap-before-resume";
  expect V.Model.Clear_dev_early "dev-covers-slb";
  expect V.Model.Skip_zeroize "zeroize-before-exit";
  expect V.Model.Nv_rollback "nv-monotonic";
  expect V.Model.Launch_unsuspended "suspend-before-launch";
  expect V.Model.Out_of_order_extends "extend-order";
  expect V.Model.Reseal_without_counter_check "nv-monotonic";
  expect V.Model.Trust_state_across_reset "extend-order"

let test_mc_new_bugs_need_their_adversary () =
  (* the two adversary-dependent bugs are invisible under every other
     adversary model: catching them requires the capability they were
     planted against, not a lucky interleaving *)
  let clean_under variant kind =
    let adversary = V.Adversary.of_kinds [ kind ] in
    let r = V.Mc.run ~adversary ~sessions:2 variant in
    match r.V.Mc.outcome with
    | V.Mc.Verified -> ()
    | V.Mc.Violation cex ->
        Alcotest.failf "%s flagged under %s (%s): bug should need %s"
          (V.Model.variant_name variant)
          (V.Adversary.kind_name kind)
          cex.V.Mc.automaton
          (match V.Model.requires variant with
          | Some k -> V.Adversary.kind_name k
          | None -> "nothing")
  in
  List.iter
    (fun variant ->
      let required =
        match V.Model.requires variant with
        | Some k -> k
        | None -> Alcotest.failf "%s should require an adversary"
                    (V.Model.variant_name variant)
      in
      List.iter
        (fun k -> if k <> required then clean_under variant k)
        V.Adversary.all_kinds)
    [ V.Model.Reseal_without_counter_check; V.Model.Trust_state_across_reset ]

let test_mc_budget_truncation () =
  let r = V.Mc.run ~max_states:5 V.Model.Good in
  Alcotest.(check bool) "truncated" true r.V.Mc.stats.V.Mc.truncated

let test_mc_depth_truncation_is_honest () =
  (* good × 1 session × 2 probes explores to depth 17 exactly; a depth
     cap at the true frontier cuts nothing off and must not be reported
     as truncation, while one step less must *)
  let full = V.Mc.run ~sessions:1 ~por:false V.Model.Good in
  let d = full.V.Mc.stats.V.Mc.depth in
  Alcotest.(check bool) "full run not truncated" false
    full.V.Mc.stats.V.Mc.truncated;
  let exact = V.Mc.run ~sessions:1 ~por:false ~max_depth:d V.Model.Good in
  Alcotest.(check bool) "cap at the frontier is not truncation" false
    exact.V.Mc.stats.V.Mc.truncated;
  let cut = V.Mc.run ~sessions:1 ~por:false ~max_depth:(d - 1) V.Model.Good in
  Alcotest.(check bool) "cap below the frontier is" true
    cut.V.Mc.stats.V.Mc.truncated

let test_mc_queue_stays_deduped () =
  (* enqueue-time dedup: with a large probe budget the frontier must
     stay bounded by the distinct-state count instead of filling with
     duplicate nodes reached along commuting probe interleavings *)
  let r = V.Mc.run ~dma_probes:6 ~por:false V.Model.Good in
  let s = r.V.Mc.stats in
  Alcotest.(check bool) "verified" true (r.V.Mc.outcome = V.Mc.Verified);
  Alcotest.(check bool) "peak queue bounded by states" true
    (s.V.Mc.peak_queue <= s.V.Mc.states);
  Alcotest.(check bool) "not truncated" false s.V.Mc.truncated

let test_mc_por_reduces_work () =
  let reduced = V.Mc.run ~sessions:2 V.Model.Good in
  let full = V.Mc.run ~sessions:2 ~por:false V.Model.Good in
  Alcotest.(check bool) "both verify" true
    (reduced.V.Mc.outcome = V.Mc.Verified && full.V.Mc.outcome = V.Mc.Verified);
  Alcotest.(check bool) "ample states recorded" true
    (reduced.V.Mc.stats.V.Mc.ample > 0);
  Alcotest.(check bool) "at least 2x fewer transitions" true
    (full.V.Mc.stats.V.Mc.transitions
     >= 2 * reduced.V.Mc.stats.V.Mc.transitions)

let test_mc_replay_golden_trace () =
  (* the replay counterexample, verbatim: record the blob at rest before
     session 1, let it reseal, re-inject the stale blob before session
     2's PAL runs, and watch the unchecked reseal persist a counter that
     did not advance *)
  let expected_labels =
    [
      "session"; "adv-replay-record"; "suspend"; "skinit"; "stub-extend";
      "pal-nv-read"; "pal-counter-incr"; "pal-nv-reseal"; "zeroize";
      "extend-inputs"; "extend-outputs"; "extend-nonce"; "extend-cap";
      "teardown-dev"; "resume"; "session-end";
      "session"; "adv-replay-inject"; "suspend"; "skinit"; "stub-extend";
      "pal-nv-read"; "pal-counter-incr"; "pal-nv-reseal";
    ]
  in
  match (run_intended V.Model.Reseal_without_counter_check).V.Mc.outcome with
  | V.Mc.Verified -> Alcotest.fail "reseal bug not caught"
  | V.Mc.Violation cex ->
      Alcotest.(check (list string))
        "step labels" expected_labels
        (List.map (fun s -> s.V.Mc.action) cex.V.Mc.steps);
      Alcotest.(check string) "violating event"
        "nv.write(0x1200,counter=8)"
        (E.to_string cex.V.Mc.event);
      Alcotest.(check string) "automaton" "nv-monotonic" cex.V.Mc.automaton

(* --- event parsing --- *)

let test_event_parsing () =
  let raw name args =
    { Tracer.name; cat = "protocol"; ts = 0.0; kind = Tracer.Instant; args }
  in
  let parsed =
    E.of_trace
      [
        raw "dev.protect" [ ("addr", Tracer.Count 5); ("len", Tracer.Count 6) ];
        raw "pcr.extend"
          [ ("index", Tracer.Count 17); ("kind", Tracer.Str "cap") ];
        { Tracer.name = "not-protocol"; cat = "os"; ts = 0.0;
          kind = Tracer.Instant; args = [] };
        raw "dev.protect" [] (* malformed: dropped, not crashed *);
        raw "nv.write" [ ("index", Tracer.Count 9) ];
      ]
  in
  Alcotest.(check int) "parsed" 3 (List.length parsed);
  Alcotest.(check bool) "protect" true
    (List.mem (E.Dev_protect { addr = 5; len = 6 }) parsed);
  Alcotest.(check bool) "cap extend" true
    (List.mem (E.Pcr_extend { index = 17; kind = E.Cap }) parsed);
  Alcotest.(check bool) "nv write sans counter" true
    (List.mem (E.Nv_write { index = 9; counter = None }) parsed)

(* --- property: no false positives on arbitrary clean workloads --- *)

let prop_sessions_conform =
  QCheck.Test.make ~name:"conformance accepts every clean session" ~count:25
    QCheck.(
      triple (string_of_size Gen.(int_range 0 64)) bool small_int)
    (fun (inputs, optimized, salt) ->
      let p = make_platform ~seed:(Printf.sprintf "verify-prop-%d" salt) in
      let flavor =
        if optimized then Flicker_slb.Builder.Optimized
        else Flicker_slb.Builder.Standard
      in
      let nonce = if salt mod 2 = 0 then Some (Platform.fresh_nonce p) else None in
      let pal =
        Pal.define ~name:(Printf.sprintf "vp-%d" salt) (fun env ->
            Pal_env.set_output env (String.uppercase_ascii env.Pal_env.inputs))
      in
      match Session.execute p ~pal ~flavor ~inputs ?nonce () with
      | Error e -> QCheck.Test.fail_reportf "session: %a" Session.pp_error e
      | Ok _ ->
          let report =
            V.Checker.check_tracer p.Platform.machine.Machine.tracer
          in
          report.V.Checker.violations = [])

(* --- property: the partial-order reduction is sound --- *)

let prop_por_agrees_with_full_bfs =
  (* over random variant × adversary subset × budgets × sessions, the
     reduced and full searches must agree on the verdict, the violated
     automaton, and the minimal counterexample length *)
  QCheck.Test.make ~name:"POR agrees with full BFS" ~count:60
    QCheck.(
      quad (int_range 0 8) (int_range 0 15) (int_range 1 2)
        (triple (int_range 0 3) (int_range 0 2) (int_range 0 2)))
    (fun (vi, kmask, sessions, (probes, resets, os_injs)) ->
      let variant = List.nth V.Model.all_variants vi in
      let kinds =
        List.filteri (fun i _ -> kmask land (1 lsl i) <> 0) V.Adversary.all_kinds
      in
      let adversary =
        {
          V.Adversary.kinds;
          dma_probes = probes;
          resets;
          replay_records = 1 + (probes mod 2);
          replay_injects = 1 + (resets mod 2);
          os_injections = os_injs;
        }
      in
      let run por = V.Mc.run ~adversary ~sessions ~por variant in
      let a = run true and b = run false in
      if a.V.Mc.stats.V.Mc.truncated || b.V.Mc.stats.V.Mc.truncated then
        QCheck.Test.fail_report "search truncated; raise the budgets"
      else
        match (a.V.Mc.outcome, b.V.Mc.outcome) with
        | V.Mc.Verified, V.Mc.Verified -> true
        | V.Mc.Violation x, V.Mc.Violation y ->
            if x.V.Mc.automaton <> y.V.Mc.automaton then
              QCheck.Test.fail_reportf "automata differ: %s vs %s"
                x.V.Mc.automaton y.V.Mc.automaton
            else if
              List.length x.V.Mc.steps <> List.length y.V.Mc.steps
            then
              QCheck.Test.fail_reportf "cex lengths differ: %d vs %d"
                (List.length x.V.Mc.steps)
                (List.length y.V.Mc.steps)
            else true
        | V.Mc.Verified, V.Mc.Violation y ->
            QCheck.Test.fail_reportf "POR missed a violation of %s"
              y.V.Mc.automaton
        | V.Mc.Violation x, V.Mc.Verified ->
            QCheck.Test.fail_reportf "POR invented a violation of %s"
              x.V.Mc.automaton)

let () =
  Alcotest.run "verify"
    [
      ( "automata",
        [
          Alcotest.test_case "good sequence accepted by all" `Quick
            test_good_sequence_accepted;
          Alcotest.test_case "cap-before-resume" `Quick test_cap_before_resume;
          Alcotest.test_case "dev-covers-slb" `Quick test_dev_covers_slb;
          Alcotest.test_case "zeroize-before-exit" `Quick test_zeroize_before_exit;
          Alcotest.test_case "extend-order" `Quick test_extend_order;
          Alcotest.test_case "nv-monotonic" `Quick test_nv_monotonic;
          Alcotest.test_case "fresh-nv-on-launch" `Quick test_fresh_nv_on_launch;
          Alcotest.test_case "no-unchecked-dma" `Quick test_no_unchecked_dma;
          Alcotest.test_case "suspend-before-launch" `Quick
            test_suspend_before_launch;
        ] );
      ( "checker",
        [
          Alcotest.test_case "broken trace caught" `Quick test_checker_broken_trace;
          Alcotest.test_case "restarts after violation" `Quick
            test_checker_restarts_after_violation;
          Alcotest.test_case "event parsing" `Quick test_event_parsing;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "real sessions conform" `Quick test_real_sessions_conform;
          Alcotest.test_case "session gate accepts clean runs" `Quick
            test_session_gate_accepts;
          Alcotest.test_case "replay guard conforms" `Quick test_replay_guard_conforms;
          Alcotest.test_case "dma during PAL: denied + traced + conformant" `Quick
            test_dma_during_pal_denied_and_traced;
        ] );
      ( "model checker",
        [
          Alcotest.test_case "good session verifies" `Quick test_mc_good_verifies;
          Alcotest.test_case "good verifies under every adversary" `Quick
            test_mc_good_under_every_adversary;
          Alcotest.test_case "every planted bug caught" `Quick
            test_mc_catches_every_planted_bug;
          Alcotest.test_case "caught by the intended automaton" `Quick
            test_mc_expected_automata;
          Alcotest.test_case "new bugs need their adversary" `Quick
            test_mc_new_bugs_need_their_adversary;
          Alcotest.test_case "state budget truncates" `Quick test_mc_budget_truncation;
          Alcotest.test_case "depth truncation is honest" `Quick
            test_mc_depth_truncation_is_honest;
          Alcotest.test_case "queue stays deduped" `Quick test_mc_queue_stays_deduped;
          Alcotest.test_case "POR reduces work" `Quick test_mc_por_reduces_work;
          Alcotest.test_case "replay golden trace" `Quick test_mc_replay_golden_trace;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_sessions_conform; prop_por_agrees_with_full_bfs ] );
    ]
