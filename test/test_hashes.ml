open Flicker_crypto

let check = Alcotest.(check string)

(* FIPS 180 / RFC 1321 test vectors *)
let sha1_vectors =
  [
    ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
    ("The quick brown fox jumps over the lazy dog", "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
  ]

let sha256_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
  ]

let sha512_vectors =
  [
    ( "",
      "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e"
    );
    ( "abc",
      "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f"
    );
  ]

let md5_vectors =
  [
    ("", "d41d8cd98f00b204e9800998ecf8427e");
    ("a", "0cc175b9c0f1b6a831c399e269772661");
    ("abc", "900150983cd24fb0d6963f7d28e17f72");
    ("message digest", "f96b697d7cb7938d525a2f31aaf161d0");
    ("abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b");
    ( "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
      "57edf4a22be3c955ac49da2e2107b67a" );
  ]

let test_vectors name hex vectors () =
  List.iter (fun (input, expected) -> check (name ^ " vector") expected (hex input)) vectors

let test_sha1_million () =
  check "million a's" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hex (String.make 1_000_000 'a'))

let test_sha256_million () =
  check "million a's" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_incremental_sha1 () =
  (* chunked updates across block boundaries must equal one-shot *)
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  List.iter
    (fun sizes ->
      let ctx = Sha1.init () in
      let off = ref 0 in
      List.iter
        (fun n ->
          let take = min n (String.length data - !off) in
          Sha1.update ctx (String.sub data !off take);
          off := !off + take)
        sizes;
      Sha1.update ctx (String.sub data !off (String.length data - !off));
      check "incremental" (Util.to_hex (Sha1.digest data)) (Util.to_hex (Sha1.finalize ctx)))
    [ [ 1; 63; 64; 65; 127 ]; [ 512; 488 ]; [ 999 ]; List.init 100 (fun _ -> 10) ]

let test_padding_boundaries () =
  (* lengths around the 55/56/63/64 padding edges *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      (* digest must be stable and 20 bytes; incremental equals one-shot *)
      let ctx = Sha1.init () in
      Sha1.update ctx s;
      check "boundary" (Util.to_hex (Sha1.digest s)) (Util.to_hex (Sha1.finalize ctx));
      Alcotest.(check int) "size" 20 (String.length (Sha1.digest s)))
    [ 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_hash_facade () =
  Alcotest.(check int) "sha1 size" 20 (Hash.digest_size Hash.SHA1);
  Alcotest.(check int) "sha256 size" 32 (Hash.digest_size Hash.SHA256);
  Alcotest.(check int) "sha512 size" 64 (Hash.digest_size Hash.SHA512);
  Alcotest.(check int) "md5 size" 16 (Hash.digest_size Hash.MD5);
  Alcotest.(check int) "sha512 block" 128 (Hash.block_size Hash.SHA512);
  Alcotest.(check int) "sha1 block" 64 (Hash.block_size Hash.SHA1);
  check "facade routes sha1" (Sha1.hex "xyz") (Hash.hex Hash.SHA1 "xyz");
  check "name" "SHA-256" (Hash.name Hash.SHA256)

let test_hmac_rfc2202 () =
  let hex = Util.to_hex in
  check "case 1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (hex (Hmac.sha1 ~key:(String.make 20 '\x0b') "Hi There"));
  check "case 2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (hex (Hmac.sha1 ~key:"Jefe" "what do ya want for nothing?"));
  check "case 3" "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
    (hex (Hmac.sha1 ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')));
  check "long key" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (hex
       (Hmac.sha1 ~key:(String.make 80 '\xaa')
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_sha256_rfc4231 () =
  check "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Util.to_hex (Hmac.mac Hash.SHA256 ~key:(String.make 20 '\x0b') "Hi There"))

let test_hmac_verify () =
  let key = "secret" and msg = "message" in
  let tag = Hmac.sha1 ~key msg in
  Alcotest.(check bool) "good" true (Hmac.verify Hash.SHA1 ~key ~msg ~tag);
  Alcotest.(check bool) "bad tag" false
    (Hmac.verify Hash.SHA1 ~key ~msg ~tag:(String.make 20 '\000'));
  Alcotest.(check bool) "bad msg" false (Hmac.verify Hash.SHA1 ~key ~msg:"other" ~tag)

let test_finalize_once () =
  (* reusing a finalized streaming context must raise, not silently hash
     into dead state: the second finalize used to re-pad and return a
     different digest for the "same" data *)
  let expect_invalid name f =
    Alcotest.(check bool) name true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  let ctx = Sha1.init () in
  Sha1.update ctx "abc";
  let d = Sha1.finalize ctx in
  check "first finalize correct" (Sha1.hex "abc") (Util.to_hex d);
  expect_invalid "sha1 double finalize" (fun () -> Sha1.finalize ctx);
  expect_invalid "sha1 update after finalize" (fun () -> Sha1.update ctx "x");
  let ctx = Sha256.init () in
  Sha256.update ctx "abc";
  ignore (Sha256.finalize ctx);
  expect_invalid "sha256 double finalize" (fun () -> Sha256.finalize ctx);
  expect_invalid "sha256 update after finalize" (fun () ->
      Sha256.update ctx "x")

let prop_incremental alg oneshot init update finalize =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s incremental = one-shot" alg)
    ~count:100
    QCheck.(pair (string_of_size Gen.small_nat) (list_of_size (Gen.int_range 0 5) (string_of_size Gen.small_nat)))
    (fun (first, rest) ->
      let all = String.concat "" (first :: rest) in
      let ctx = init () in
      List.iter (update ctx) (first :: rest);
      finalize ctx = oneshot all)

let prop_sha1_avalanche =
  QCheck.Test.make ~name:"sha1: flipping a bit changes the digest" ~count:100
    QCheck.(string_of_size Gen.(int_range 1 200))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
      Sha1.digest s <> Sha1.digest (Bytes.to_string b))

let () =
  Alcotest.run "hashes"
    [
      ( "vectors",
        [
          Alcotest.test_case "sha1" `Quick (test_vectors "sha1" Sha1.hex sha1_vectors);
          Alcotest.test_case "sha256" `Quick
            (test_vectors "sha256" Sha256.hex sha256_vectors);
          Alcotest.test_case "sha512" `Quick
            (test_vectors "sha512" Sha512.hex sha512_vectors);
          Alcotest.test_case "md5" `Quick (test_vectors "md5" Md5.hex md5_vectors);
          Alcotest.test_case "sha1 million" `Slow test_sha1_million;
          Alcotest.test_case "sha256 million" `Slow test_sha256_million;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "sha1 incremental" `Quick test_incremental_sha1;
          Alcotest.test_case "padding boundaries" `Quick test_padding_boundaries;
          Alcotest.test_case "facade" `Quick test_hash_facade;
          Alcotest.test_case "finalize is terminal" `Quick test_finalize_once;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc2202 sha1" `Quick test_hmac_rfc2202;
          Alcotest.test_case "rfc4231 sha256" `Quick test_hmac_sha256_rfc4231;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_incremental "sha1" Sha1.digest Sha1.init Sha1.update Sha1.finalize;
            prop_incremental "sha256" Sha256.digest Sha256.init Sha256.update
              Sha256.finalize;
            prop_incremental "sha512" Sha512.digest Sha512.init Sha512.update
              Sha512.finalize;
            prop_incremental "md5" Md5.digest Md5.init Md5.update Md5.finalize;
            prop_sha1_avalanche;
          ] );
    ]
