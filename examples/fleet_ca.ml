(* A multi-machine certificate authority: the paper's CA (Section 6.3.2)
   scaled past one platform by the fleet layer.

   One Flicker machine saturates at ~1 signature/second — each request
   monopolizes the whole platform for a ~906 ms session dominated by TPM
   unseal/seal. The fleet coordinator runs a CA replica on every machine
   (each replica's key generated inside a Flicker session on that
   machine and sealed to that machine's TPM), admits client CSRs into
   bounded queues, routes them by client affinity, and signs them in
   batches so the per-session SKINIT + unseal overhead is paid once per
   batch instead of once per certificate.

     dune exec examples/fleet_ca.exe *)

module Fleet = Flicker_service.Fleet
module Workload = Flicker_service.Workload
module Dispatch = Flicker_service.Dispatch
module Request = Flicker_service.Request
module CA = Flicker_apps.Cert_authority
module Prng = Flicker_crypto.Prng
module Rsa = Flicker_crypto.Rsa

let () =
  let policy =
    {
      CA.allowed_suffixes = [ ".corp.example" ];
      denied_subjects = [ "finance.corp.example" ];
      max_certificates = 1000;
    }
  in
  let config =
    {
      Fleet.default_config with
      platforms = 3;
      batch_size = 4;
      queue_depth = 16;
      policy = Dispatch.Sealed_affinity;
      seed = "fleet-ca-example";
    }
  in
  let fleet = Fleet.create ~config (Workload.ca ~issuer:"Corp Issuing CA" policy) in
  Printf.printf
    "fleet up: %d platforms, batch %d, %s routing; every replica's signing\n\
     key was generated in a Flicker session and sealed to its own TPM.\n\n"
    config.platforms config.batch_size
    (Dispatch.policy_name config.policy);

  (* five clients, each with its own keypair, sending CSRs concurrently *)
  let clients = [ "web-team"; "mail-team"; "vpn-team"; "finance"; "attacker" ] in
  let key_rng = Prng.create ~seed:"fleet-ca-example/subject-keys" in
  let keys =
    List.map (fun c -> (c, (Rsa.generate key_rng ~bits:512).Rsa.pub)) clients
  in
  let ids = ref [] in
  List.iteri
    (fun i (client, key) ->
      for seq = 1 to 3 do
        let subject =
          if client = "attacker" then Printf.sprintf "evil-%d.attacker.net" seq
          else Printf.sprintf "%s-%d.corp.example" client seq
        in
        let id =
          Fleet.submit fleet ~client
            ~sent_ms:(float_of_int ((i * 3) + seq) *. 10.0)
            (Workload.ca_csr_payload ~subject ~subject_key:key)
        in
        ids := (id, client, subject) :: !ids
      done)
    keys;
  Fleet.run fleet;

  print_endline "per-request outcomes (affinity keeps each client on one machine):";
  List.iter
    (fun (id, client, subject) ->
      match Fleet.disposition_of fleet id with
      | Some (Request.Completed c) -> (
          match Workload.decode_ca_output c.Request.output with
          | Ok (cert, ca_pub) ->
              Printf.printf
                "  %-10s %-26s -> cert #%d on platform %d (%.0f ms), verifies: %b\n"
                client subject cert.CA.serial c.Request.platform
                c.Request.latency_ms
                (CA.verify_certificate ~ca_key:ca_pub cert)
          | Error e -> Printf.printf "  %-10s %-26s -> bad output: %s\n" client subject e)
      | None ->
          Printf.printf "  %-10s %-26s -> (still in flight?)\n" client subject
      | Some (Request.Failed { reason; _ }) ->
          Printf.printf "  %-10s %-26s -> DENIED: %s\n" client subject reason
      | Some d ->
          Printf.printf "  %-10s %-26s -> %s\n" client subject
            (Request.disposition_name d))
    (List.rev !ids);

  (* sealed state must go home: a renewal bound to platform 1's TPM is
     pinned there no matter what the dispatch policy would prefer *)
  let web_key = List.assoc "web-team" keys in
  let renewal =
    Fleet.submit fleet ~client:"web-team" ~home:1
      (Workload.ca_csr_payload ~subject:"renewal.corp.example" ~subject_key:web_key)
  in
  Fleet.run fleet;
  (match Fleet.disposition_of fleet renewal with
  | Some (Request.Completed c) ->
      Printf.printf
        "\nhomed renewal request served by platform %d (pinned, policy overridden)\n"
        c.Request.platform
  | _ -> print_endline "\nhomed renewal request was not served (unexpected)");

  Format.printf "@.%a@." Fleet.pp_summary (Fleet.summary fleet)
