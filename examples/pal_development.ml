(* The developer's perspective (paper Section 5): going from "a sensitive
   function buried in a big program" to a running, attested PAL.

   1. Run the extraction tool on the target function (Section 5.2).
   2. Follow its advice: eliminate/replace stdlib calls, link modules.
   3. Define the PAL against those modules and check its TCB (Figure 6).
   4. Run it in a Flicker session — with the OS-Protection module keeping
      the host OS safe from the new, untested PAL (Section 5.1.2), and
      with the watchdog bounding its execution time.

     dune exec examples/pal_development.exe *)

open Flicker_core
open Flicker_extract
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Tcb = Flicker_slb.Tcb

(* The "existing application": a password vault with networking and
   logging around one sensitive function. *)
let vault_program =
  let f fname calls uses_types loc = Extract.fn fname ~calls ~uses_types ~loc in
  {
    Extract.functions =
      [
        f "main" [ "socket"; "serve" ] [] 40;
        f "serve" [ "recv"; "derive_vault_key"; "printf" ] [ "session" ] 70;
        f "derive_vault_key" [ "hmac_sha1"; "memset"; "malloc" ] [ "vault_hdr" ] 22;
        f "hmac_sha1" [ "sha1_compress" ] [] 45;
        f "sha1_compress" [] [] 90;
      ];
    types =
      [
        { Extract.tname = "session"; type_depends = []; definition = "struct session {...};" };
        { Extract.tname = "vault_hdr"; type_depends = []; definition = "struct vault_hdr {...};" };
      ];
  }

let () =
  (* step 1: extract the sensitive function *)
  print_endline "step 1: extract derive_vault_key from the vault server\n";
  let extraction =
    match Extract.extract vault_program ~target:"derive_vault_key" with
    | Ok e -> e
    | Error msg -> failwith msg
  in
  Format.printf "%a@." Extract.report extraction;

  (* step 2: the tool told us which PAL modules the slice needs *)
  let suggested = Extract.suggested_modules extraction in
  let modules = Pal.Os_protection :: Pal.Tpm_driver :: suggested in
  print_endline "step 2: link the suggested modules (plus OS Protection while we test)\n";

  (* step 3: TCB accounting before we ship *)
  let pal =
    Pal.define ~name:"vault-key-derivation"
      ~app_code_size:(extraction.Extract.extracted_loc * 12)
      ~modules
      (fun env ->
        (* the extracted logic: derive a key from the vault header using
           the PAL crypto module *)
        let digest =
          Flicker_slb.Mod_crypto.hmac_sha1 env.Pal_env.machine ~key:"vault-master"
            env.Pal_env.inputs
        in
        Pal_env.set_output env digest)
  in
  print_endline "step 3: the TCB this PAL asks the verifier to trust:";
  Format.printf "%a@." Tcb.pp_rows (Tcb.pal_tcb pal);

  (* step 4: run it, protected both ways *)
  print_endline "step 4: run under Flicker (ring-3 PAL + 100 ms watchdog)\n";
  let platform = Platform.create ~seed:"pal-dev" ~key_bits:1024 () in
  (match
     Session.execute platform ~pal ~inputs:"vault-header-bytes" ~time_limit_ms:100.0 ()
   with
  | Error e -> Format.printf "session failed: %a@." Session.pp_error e
  | Ok outcome ->
      Printf.printf "derived key (hex): %s\n"
        (Flicker_crypto.Util.to_hex outcome.Session.outputs);
      Printf.printf "session: %.1f ms simulated, fault: %s\n" outcome.Session.total_ms
        (Option.value outcome.Session.pal_fault ~default:"none"));

  (* and the reason OS Protection was linked: a buggy revision that
     scribbles outside its segment traps instead of corrupting the OS *)
  let buggy =
    Pal.define ~name:"vault-key-derivation-buggy" ~modules
      (fun env -> ignore (Pal_env.read_phys env ~addr:0x0 ~len:64))
  in
  match Session.execute platform ~pal:buggy () with
  | Error e -> Format.printf "session failed: %a@." Session.pp_error e
  | Ok outcome ->
      Printf.printf "\nbuggy revision: fault = %s (OS unharmed, session cleaned up)\n"
        (Option.value outcome.Session.pal_fault ~default:"none")
