(* Fleet benchmark: certificate-authority throughput and latency versus
   fleet size and batch size.

   Each configuration builds a fresh fleet of simulated Flicker platforms
   running the paper's CA (Section 6.3.2) as the workload, then offers an
   open-loop burst of CSRs that deliberately overloads a single machine
   (one signature session costs ~906 ms of simulated time). Batching
   amortizes the SKINIT + unseal + reseal overhead across up to
   [batch_size] CSRs per session, so throughput should rise with both
   axes of the sweep. *)

module Prng = Flicker_crypto.Prng
module Rsa = Flicker_crypto.Rsa
module CA = Flicker_apps.Cert_authority
module Workload = Flicker_service.Workload
module Fleet = Flicker_service.Fleet
module Dispatch = Flicker_service.Dispatch
module J = Flicker_obs.Json

let platform_counts = [ 1; 2; 4 ]
let batch_sizes = [ 1; 4; 16 ]
let clients = 8
let per_client = 6

let policy =
  {
    CA.allowed_suffixes = [ ".example.com" ];
    denied_subjects = [];
    max_certificates = 10_000;
  }

(* one keypair per client, shared across every configuration so the
   offered load is identical everywhere *)
let client_keys =
  lazy
    (Array.init clients (fun c ->
         (Rsa.generate
            (Prng.create ~seed:(Printf.sprintf "fleet-bench-client-%d" c))
            ~bits:512)
           .Rsa.pub))

let run_config ~platforms ~batch =
  let config =
    {
      Fleet.default_config with
      platforms;
      batch_size = batch;
      queue_depth = 64;
      policy = Dispatch.Least_loaded;
      seed = Printf.sprintf "fleet-bench-p%d-b%d" platforms batch;
    }
  in
  let fleet = Fleet.create ~config (Workload.ca policy) in
  let keys = Lazy.force client_keys in
  Fleet.submit_open_loop fleet ~clients ~per_client ~mean_gap_ms:5.0
    ~payload:(fun ~client ~seq ->
      Workload.ca_csr_payload
        ~subject:(Printf.sprintf "host-%d-%d.example.com" client seq)
        ~subject_key:keys.(client))
    ();
  Fleet.run fleet;
  Fleet.summary fleet

let run () =
  Printf.printf "\n=== Fleet: CA throughput vs fleet size and batch size ===\n";
  Printf.printf "(%d clients x %d CSRs each, open-loop, least-loaded routing)\n"
    clients per_client;
  Printf.printf "%-10s %6s %10s %9s %12s %10s %10s\n" "platforms" "batch"
    "completed" "sessions" "thruput r/s" "p50 ms" "p95 ms";
  List.iter
    (fun platforms ->
      List.iter
        (fun batch ->
          let s = run_config ~platforms ~batch in
          Printf.printf "%-10d %6d %10d %9d %12.2f %10.1f %10.1f\n" platforms
            batch s.Fleet.completed s.sessions s.throughput_rps s.latency_p50_ms
            s.latency_p95_ms;
          Paper.emit ~artifact:"fleet"
            ~label:(Printf.sprintf "p%d b%d" platforms batch)
            [
              ("platforms", J.Int platforms);
              ("batch", J.Int batch);
              ("submitted", J.Int s.submitted);
              ("completed", J.Int s.completed);
              ("rejected", J.Int s.rejected);
              ("expired", J.Int s.expired);
              ("sessions", J.Int s.sessions);
              ("throughput_rps", J.Float s.throughput_rps);
              ("p50_ms", J.Float s.latency_p50_ms);
              ("p95_ms", J.Float s.latency_p95_ms);
              ("mean_ms", J.Float s.latency_mean_ms);
              ("makespan_ms", J.Float s.makespan_ms);
            ])
        batch_sizes)
    platform_counts
