(* Fleet benchmark: certificate-authority throughput and latency versus
   fleet size and batch size.

   Each configuration builds a fresh fleet of simulated Flicker platforms
   running the paper's CA (Section 6.3.2) as the workload, then offers an
   open-loop burst of CSRs that deliberately overloads a single machine
   (one signature session costs ~906 ms of simulated time). Batching
   amortizes the SKINIT + unseal + reseal overhead across up to
   [batch_size] CSRs per session, so throughput should rise with both
   axes of the sweep. *)

module Prng = Flicker_crypto.Prng
module Rsa = Flicker_crypto.Rsa
module CA = Flicker_apps.Cert_authority
module Workload = Flicker_service.Workload
module Fleet = Flicker_service.Fleet
module Dispatch = Flicker_service.Dispatch
module J = Flicker_obs.Json

let platform_counts = [ 1; 2; 4 ]
let batch_sizes = [ 1; 4; 16 ]
let clients = 8
let per_client = 6

let policy =
  {
    CA.allowed_suffixes = [ ".example.com" ];
    denied_subjects = [];
    max_certificates = 10_000;
  }

(* one keypair per client, shared across every configuration so the
   offered load is identical everywhere *)
let client_keys =
  lazy
    (Array.init clients (fun c ->
         (Rsa.generate
            (Prng.create ~seed:(Printf.sprintf "fleet-bench-client-%d" c))
            ~bits:512)
           .Rsa.pub))

let run_config ~platforms ~batch =
  let config =
    {
      Fleet.default_config with
      platforms;
      batch_size = batch;
      queue_depth = 64;
      policy = Dispatch.Least_loaded;
      seed = Printf.sprintf "fleet-bench-p%d-b%d" platforms batch;
    }
  in
  let fleet = Fleet.create ~config (Workload.ca policy) in
  let keys = Lazy.force client_keys in
  Fleet.submit_open_loop fleet ~clients ~per_client ~mean_gap_ms:5.0
    ~payload:(fun ~client ~seq ->
      Workload.ca_csr_payload
        ~subject:(Printf.sprintf "host-%d-%d.example.com" client seq)
        ~subject_key:keys.(client))
    ();
  Fleet.run fleet;
  Fleet.summary fleet

(* Sharded sweep: one fleet large enough that a single timeline is the
   bottleneck, split across shards and run twice — serially on one
   domain, then on [!Opts.domains] — to (a) cross-check that the domain
   count is invisible in the simulated results and (b) record the
   wall-clock cost of both placements. Echo keeps the session cost flat
   so the measured wall is dominated by the event loops themselves. *)
let sharded_platforms = 64
let sharded_shards = 8
let sharded_clients = 32
let sharded_per_client = 8

let run_sharded ~domains =
  let config =
    {
      Fleet.default_config with
      platforms = sharded_platforms;
      shards = sharded_shards;
      domains;
      batch_size = 8;
      queue_depth = 64;
      policy = Dispatch.Least_loaded;
      seed = "fleet-bench-sharded-64";
    }
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:25.0 ()) in
  Fleet.submit_open_loop fleet ~clients:sharded_clients
    ~per_client:sharded_per_client ~mean_gap_ms:5.0
    ~payload:(fun ~client ~seq -> Printf.sprintf "shard-%d-%d" client seq)
    ();
  let t0 = Unix.gettimeofday () in
  Fleet.run fleet;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  (Fleet.summary fleet, Fleet.dispositions fleet, wall_ms)

let run_sharded_sweep () =
  Printf.printf "\n=== Fleet: sharded, %d platforms x %d shards ===\n"
    sharded_platforms sharded_shards;
  Printf.printf "(%d clients x %d echo requests; domain count must not change the simulation)\n"
    sharded_clients sharded_per_client;
  let s1, d1, wall_serial = run_sharded ~domains:1 in
  let sn, dn, wall_parallel = run_sharded ~domains:!Opts.domains in
  if d1 <> dn || s1 <> sn then (
    Printf.eprintf
      "fleet bench: sharded sweep diverged between 1 and %d domains\n"
      !Opts.domains;
    exit 1);
  let speedup = if wall_parallel > 0.0 then wall_serial /. wall_parallel else 0.0 in
  Printf.printf "%-10s %7s %10s %9s %10s %12s %10s %10s\n" "platforms"
    "shards" "completed" "sessions" "forwarded" "thruput r/s" "p50 ms"
    "p95 ms";
  Printf.printf "%-10d %7d %10d %9d %10d %12.2f %10.1f %10.1f\n"
    sharded_platforms sharded_shards sn.Fleet.completed sn.sessions
    sn.forwarded sn.throughput_rps sn.latency_p50_ms sn.latency_p95_ms;
  Printf.printf
    "wall: %.1f ms on 1 domain, %.1f ms on %d domains (%.2fx)\n" wall_serial
    wall_parallel !Opts.domains speedup;
  Paper.emit ~artifact:"fleet"
    ~label:(Printf.sprintf "p%d s%d" sharded_platforms sharded_shards)
    [
      ("platforms", J.Int sharded_platforms);
      ("shards", J.Int sharded_shards);
      ("submitted", J.Int sn.Fleet.submitted);
      ("completed", J.Int sn.completed);
      ("rejected", J.Int sn.rejected);
      ("expired", J.Int sn.expired);
      ("sessions", J.Int sn.sessions);
      ("forwarded", J.Int sn.forwarded);
      ("throughput_rps", J.Float sn.throughput_rps);
      ("p50_ms", J.Float sn.latency_p50_ms);
      ("p95_ms", J.Float sn.latency_p95_ms);
      ("mean_ms", J.Float sn.latency_mean_ms);
      ("makespan_ms", J.Float sn.makespan_ms);
    ];
  Paper.emit ~artifact:"fleet"
    ~label:(Printf.sprintf "p%d s%d walls" sharded_platforms sharded_shards)
    [
      ("platforms", J.Int sharded_platforms);
      ("shards", J.Int sharded_shards);
      ("wall_domains", J.Int (if !Opts.no_wall then 0 else !Opts.domains));
      ("wall_ms_serial", J.Float (Opts.wall wall_serial));
      ("wall_ms_parallel", J.Float (Opts.wall wall_parallel));
      ("wall_speedup", J.Float (Opts.wall speedup));
    ]

let run () =
  Printf.printf "\n=== Fleet: CA throughput vs fleet size and batch size ===\n";
  Printf.printf "(%d clients x %d CSRs each, open-loop, least-loaded routing)\n"
    clients per_client;
  Printf.printf "%-10s %6s %10s %9s %12s %10s %10s\n" "platforms" "batch"
    "completed" "sessions" "thruput r/s" "p50 ms" "p95 ms";
  List.iter
    (fun platforms ->
      List.iter
        (fun batch ->
          let s = run_config ~platforms ~batch in
          Printf.printf "%-10d %6d %10d %9d %12.2f %10.1f %10.1f\n" platforms
            batch s.Fleet.completed s.sessions s.throughput_rps s.latency_p50_ms
            s.latency_p95_ms;
          Paper.emit ~artifact:"fleet"
            ~label:(Printf.sprintf "p%d b%d" platforms batch)
            [
              ("platforms", J.Int platforms);
              ("batch", J.Int batch);
              ("submitted", J.Int s.submitted);
              ("completed", J.Int s.completed);
              ("rejected", J.Int s.rejected);
              ("expired", J.Int s.expired);
              ("sessions", J.Int s.sessions);
              ("throughput_rps", J.Float s.throughput_rps);
              ("p50_ms", J.Float s.latency_p50_ms);
              ("p95_ms", J.Float s.latency_p95_ms);
              ("mean_ms", J.Float s.latency_mean_ms);
              ("makespan_ms", J.Float s.makespan_ms);
            ])
        batch_sizes)
    platform_counts;
  run_sharded_sweep ()
