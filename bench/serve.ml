(* Serving-tier benchmark: throughput and tail latency versus cache-hit
   fraction, plus the host-crypto savings of memoized appraisal.

   Each cell builds an attested serving tier (lib/serve) over a fresh
   fleet and offers the same 100-request, two-tier load; only the
   fraction of requests whose payload was pre-warmed into the result
   cache varies. A hit is answered from the cache with the original
   quote — no platform session — so throughput should climb steeply with
   the hit fraction while every served result stays verifiable: after
   each run every cache-hit bundle is appraised through the full
   Verifier chain and the outcome is part of the emitted row.

   The chaos cell re-runs the 50% point under seeded fault injection to
   show crash + breaker behavior composes with the cache: crashed
   platforms' entries are invalidated (never silently served), and the
   bundles that were legitimately served before a later crash fail
   verification afterwards as stale — exactly the reset semantics the
   cache must enforce.

   Everything reported is simulated time or deterministic byte counts,
   so two runs with the same seed emit byte-identical JSON. *)

module Serve = Flicker_serve.Serve
module Appraise = Flicker_serve.Appraise
module Fleet = Flicker_service.Fleet
module Request = Flicker_service.Request
module Injector = Flicker_fault.Injector
module Platform = Flicker_core.Platform
module Metrics = Flicker_obs.Metrics
module Prng = Flicker_crypto.Prng
module Rsa = Flicker_crypto.Rsa
module Sha1 = Flicker_crypto.Sha1
module CA = Flicker_apps.Cert_authority
module J = Flicker_obs.Json

let interactive_clients = 3
let batch_clients = 7
let per_client = 10
let total = (interactive_clients + batch_clients) * per_client
let pool_size = 10
let interactive_deadline_ms = 8000.0

(* request k's payload: the first [hit_tenths] of every 10 consecutive
   requests draw from the warm pool, the rest are unique — so the hit
   fraction is exact by construction *)
let payload_for ~hit_tenths k =
  if k mod 10 < hit_tenths then Printf.sprintf "hot-%d" (k mod pool_size)
  else Printf.sprintf "cold-%d" k

let run_cell ~label ~hit_tenths ~faults =
  let fleet_cfg =
    {
      Fleet.default_config with
      platforms = 2;
      batch_size = 4;
      queue_depth = 64;
      seed = "serve-bench-" ^ label;
      faults = (if faults then Some (Injector.scaled 0.5) else None);
      retry_budget = (if faults then 2 else 0);
      breaker_failures = (if faults then 3 else 0);
    }
  in
  let config = { Serve.default_config with Serve.fleet = fleet_cfg } in
  let warm =
    if hit_tenths = 0 then []
    else List.init pool_size (fun i -> Printf.sprintf "hot-%d" i)
  in
  let t = Serve.create ~config ~warm () in
  let fleet = Serve.fleet t in
  (* two-tier load over one global request index, so the warm/cold
     pattern is identical in every cell *)
  Fleet.submit_open_loop fleet ~clients:interactive_clients ~per_client
    ~mean_gap_ms:5.0 ~tier:Request.Interactive
    ~deadline_ms:interactive_deadline_ms
    ~payload:(fun ~client ~seq ->
      payload_for ~hit_tenths ((client * per_client) + seq))
    ();
  Fleet.submit_open_loop fleet ~clients:batch_clients ~per_client
    ~mean_gap_ms:5.0 ~tier:Request.Batch
    ~payload:(fun ~client ~seq ->
      payload_for ~hit_tenths (((client + interactive_clients) * per_client) + seq))
    ();
  Fleet.run fleet;
  (* appraise every cache-hit bundle through the full Verifier chain.
     Under fault injection a platform may have crashed after serving a
     hit: that bundle must now fail as stale — never as bad crypto. *)
  let hits_verified = ref 0 and hits_stale = ref 0 and hits_bad = ref 0 in
  List.iter
    (fun ((req : Request.t), disposition) ->
      match disposition with
      | Request.Completed c when c.Request.batch = 0 -> (
          match Serve.bundle_for t req.Request.id with
          | None -> incr hits_bad
          | Some b -> (
              match Serve.verify_bundle t b with
              | Ok () -> incr hits_verified
              | Error (Serve.Stale _) -> incr hits_stale
              | Error _ -> incr hits_bad))
      | _ -> ())
    (Fleet.dispositions fleet);
  (t, Fleet.summary fleet, !hits_verified, !hits_stale, !hits_bad)

let tier_slice (s : Fleet.summary) tier =
  List.find (fun ts -> ts.Fleet.tier = tier) s.Fleet.by_tier

let emit_cell ~label ~hit_tenths ~faults (t, (s : Fleet.summary), ok, stale, bad)
    =
  let m = Serve.metrics t in
  let ap = Appraise.stats (Serve.appraiser t) in
  let ti = tier_slice s Request.Interactive in
  let tb = tier_slice s Request.Batch in
  Printf.printf
    "%-12s %5d%% %10d %9d %9d %8d %10.2f %8.1f %8.1f   %d/%d/%d\n" label
    (hit_tenths * 10) s.Fleet.completed s.Fleet.cache_served s.Fleet.sessions
    s.Fleet.crashes s.Fleet.throughput_rps s.Fleet.latency_p50_ms
    s.Fleet.latency_p95_ms ok stale bad;
  Paper.emit ~artifact:"serve" ~label
    [
      ("hit_pct", J.Int (hit_tenths * 10));
      ("faulted", J.Bool faults);
      ("submitted", J.Int s.Fleet.submitted);
      ("completed", J.Int s.Fleet.completed);
      ("rejected", J.Int s.Fleet.rejected);
      ("expired", J.Int s.Fleet.expired);
      ("failed", J.Int s.Fleet.failed);
      ("cache_served", J.Int s.Fleet.cache_served);
      ("cache_hits", J.Int (Metrics.counter m "serve.cache.hits"));
      ("cache_misses", J.Int (Metrics.counter m "serve.cache.misses"));
      ("stale_rejected", J.Int (Metrics.counter m "serve.cache.stale_rejected"));
      ("invalidations", J.Int (Metrics.counter m "serve.cache.invalidations"));
      ("sessions", J.Int s.Fleet.sessions);
      ("crashes", J.Int s.Fleet.crashes);
      ("throughput_rps", J.Float s.Fleet.throughput_rps);
      ("p50_ms", J.Float s.Fleet.latency_p50_ms);
      ("p95_ms", J.Float s.Fleet.latency_p95_ms);
      ("makespan_ms", J.Float s.Fleet.makespan_ms);
      ("interactive_p95_ms", J.Float ti.Fleet.t_p95_ms);
      ("interactive_deadline_misses", J.Int ti.Fleet.t_deadline_misses);
      ("interactive_expired", J.Int ti.Fleet.t_expired);
      ("batch_p95_ms", J.Float tb.Fleet.t_p95_ms);
      ("hits_verified", J.Int ok);
      ("hits_stale", J.Int stale);
      ("hits_bad", J.Int bad);
      ("memo_quote_hits", J.Int ap.Appraise.quote_hits);
      ("memo_cert_hits", J.Int ap.Appraise.cert_hits);
      ("memo_bytes_saved", J.Int ap.Appraise.bytes_saved);
    ];
  s.Fleet.throughput_rps

(* CA-side memoization: how many host-crypto bytes does caching
   certificate-validation verdicts save a relying party that checks the
   same few certificates over and over? *)
let ca_memo_report () =
  let platform = Platform.create ~seed:"serve-bench-ca" () in
  let server =
    CA.create platform
      {
        CA.allowed_suffixes = [ ".example.com" ];
        denied_subjects = [];
        max_certificates = 100;
      }
  in
  let ca_key =
    match CA.init_ca server with
    | Ok pub -> pub
    | Error e -> failwith ("serve bench: CA init failed: " ^ e)
  in
  let certs =
    List.filter_map Result.to_option
      (CA.sign_batch server
         (List.init 3 (fun i ->
              {
                CA.subject = Printf.sprintf "host-%d.example.com" i;
                subject_key =
                  (Rsa.generate
                     (Prng.create
                        ~seed:(Printf.sprintf "serve-bench-subject-%d" i))
                     ~bits:512)
                    .Rsa.pub;
              })))
  in
  let rounds = 5 in
  let cold_bytes =
    let before = Sha1.bytes_hashed () in
    for _ = 1 to rounds do
      List.iter
        (fun c ->
          if not (CA.verify_certificate ~ca_key c) then
            failwith "serve bench: certificate failed to verify")
        certs
    done;
    Sha1.bytes_hashed () - before
  in
  let cache = CA.verify_cache ~ca_key () in
  let cached_bytes =
    let before = Sha1.bytes_hashed () in
    for _ = 1 to rounds do
      List.iter
        (fun c ->
          if not (CA.verify_certificate_cached cache c) then
            failwith "serve bench: cached certificate failed to verify")
        certs
    done;
    Sha1.bytes_hashed () - before
  in
  let hits, misses = CA.verify_cache_stats cache in
  Printf.printf
    "\nCA certificate-validation memoization (%d certs x %d rounds):\n"
    (List.length certs) rounds;
  Printf.printf
    "  cold: %d bytes hashed; memoized: %d bytes (%d hits, %d RSA verifies)\n"
    cold_bytes cached_bytes hits misses;
  Paper.emit ~artifact:"serve" ~label:"ca-cert-memo"
    [
      ("certificates", J.Int (List.length certs));
      ("rounds", J.Int rounds);
      ("cold_bytes_hashed", J.Int cold_bytes);
      ("memoized_bytes_hashed", J.Int cached_bytes);
      ("bytes_saved", J.Int (cold_bytes - cached_bytes));
      ("cache_hits", J.Int hits);
      ("rsa_verifies", J.Int misses);
    ]

let run () =
  Printf.printf "\n=== Serve: attested result cache vs hit fraction ===\n";
  Printf.printf
    "(%d requests: %d interactive clients with %.0f ms deadlines + %d batch \
     clients; 2 platforms, batch 4)\n"
    total interactive_clients interactive_deadline_ms batch_clients;
  Printf.printf "%-12s %6s %10s %9s %9s %8s %10s %8s %8s   %s\n" "cell" "hits"
    "completed" "cached" "sessions" "crashes" "rps" "p50 ms" "p95 ms"
    "ok/stale/bad";
  let sweep =
    List.map
      (fun hit_tenths ->
        let label = Printf.sprintf "hit%d" (hit_tenths * 10) in
        let cell = run_cell ~label ~hit_tenths ~faults:false in
        (hit_tenths, emit_cell ~label ~hit_tenths ~faults:false cell))
      [ 0; 5; 9 ]
  in
  let chaos_cell = run_cell ~label:"chaos50" ~hit_tenths:5 ~faults:true in
  ignore (emit_cell ~label:"chaos50" ~hit_tenths:5 ~faults:true chaos_cell);
  let rps_at n = List.assoc n sweep in
  let speedup = if rps_at 0 > 0.0 then rps_at 9 /. rps_at 0 else 0.0 in
  Printf.printf "\nthroughput at 90%% hits / 0%% hits: %.2fx\n" speedup;
  Paper.emit ~artifact:"serve" ~label:"speedup"
    [
      ("rps_hit0", J.Float (rps_at 0));
      ("rps_hit90", J.Float (rps_at 9));
      ("speedup", J.Float speedup);
    ];
  ca_memo_report ()
