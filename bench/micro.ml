(* Bechamel microbenchmarks: the real wall-clock cost of the simulator
   itself (not the simulated latencies). One Test.make per paper table or
   figure, exercising the code path that regenerates it, plus the hot
   crypto primitives underneath. *)

open Bechamel
open Toolkit
open Flicker_core
module Prng = Flicker_crypto.Prng
module Sha1 = Flicker_crypto.Sha1
module Rsa = Flicker_crypto.Rsa
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Skinit = Flicker_hw.Skinit
module Apic = Flicker_hw.Apic
module Tpm = Flicker_tpm.Tpm
module Scheduler = Flicker_os.Scheduler
module Tcb = Flicker_slb.Tcb
module Distcomp = Flicker_apps.Distcomp
module Ssh_auth = Flicker_apps.Ssh_auth
module CA = Flicker_apps.Cert_authority

(* staged state, built once *)
let platform = lazy (Platform.create ~seed:"micro" ~key_bits:512 ())

let hello_pal =
  lazy (Pal.define ~name:"micro-hello" (fun env -> Pal_env.set_output env "hi"))

let skinit_machine =
  lazy
    (let m = Machine.create ~memory_size:(1024 * 1024) Flicker_hw.Timing.default in
     let tpm = Tpm.create m (Prng.create ~seed:"micro-skinit") ~key_bits:512 in
     Machine.set_tpm_hooks m (Tpm.skinit_hooks tpm);
     Memory.write_u16_le m.Machine.memory 0x10000 65532;
     Memory.write_u16_le m.Machine.memory 0x10002 4;
     m)

let ssh_login = lazy begin
  let p = Lazy.force platform in
  let server = Ssh_auth.create_server p ~key_bits:512 ~users:[ ("u", "p") ] () in
  let nonce = Platform.fresh_nonce p in
  let setup =
    match Ssh_auth.server_setup server ~nonce with Ok s -> s | Error e -> failwith e
  in
  let ca_key =
    (* the bench does not verify; grab the channel key straight from the
       attested outputs *)
    setup.Ssh_auth.evidence.Attestation.claimed_outputs
  in
  let out =
    match Flicker_slb.Mod_secure_channel.decode_setup_output ca_key with
    | Ok out -> out
    | Error e -> failwith e
  in
  let rng = Prng.create ~seed:"micro-ssh-client" in
  let login_nonce = Platform.fresh_nonce p in
  let ct =
    Flicker_crypto.Pkcs1.encrypt rng out.Flicker_slb.Mod_secure_channel.public_key
      (Flicker_crypto.Util.encode_fields [ "p"; login_nonce ])
  in
  (server, ct, login_nonce)
  end

let ca_server = lazy begin
  let p = Lazy.force platform in
  let ca =
    CA.create p ~key_bits:512
      { CA.allowed_suffixes = [ ".x" ]; denied_subjects = []; max_certificates = max_int }
  in
  (match CA.init_ca ca with Ok _ -> () | Error e -> failwith e);
  let csr =
    { CA.subject = "a.x"; subject_key = (Rsa.generate (Prng.create ~seed:"mc") ~bits:256).Rsa.pub }
  in
  (ca, csr)
  end

let distcomp_client = lazy (Distcomp.create_client (Lazy.force platform))

let tests =
  [
    Test.make ~name:"table1:rootkit-style session (64KB hash PAL)"
      (Staged.stage (fun () ->
           let p = Lazy.force platform in
           match Session.execute p ~pal:(Lazy.force hello_pal) () with
           | Ok _ -> ()
           | Error e -> Format.kasprintf failwith "%a" Session.pp_error e));
    Test.make ~name:"table2:skinit instruction"
      (Staged.stage (fun () ->
           let m = Lazy.force skinit_machine in
           Apic.deschedule_aps m;
           Apic.send_init_ipi m;
           let launch = Skinit.execute m ~slb_base:0x10000 in
           Skinit.teardown_dev m launch;
           Apic.release_aps m));
    Test.make ~name:"table3:scheduler 1s slice"
      (Staged.stage (fun () ->
           let p = Lazy.force platform in
           ignore (Scheduler.spawn p.Platform.scheduler ~name:"slice" ~work_ms:10.0);
           Scheduler.run_for p.Platform.scheduler 1000.0));
    Test.make ~name:"table4:distcomp start session"
      (Staged.stage (fun () ->
           let client = Lazy.force distcomp_client in
           let unit_ = { Distcomp.unit_id = 1; number = 1234577; lo = 2; hi = 100000 } in
           match Distcomp.start client unit_ ~slice_ms:1.0 with
           | Ok _ -> ()
           | Error e -> failwith e));
    Test.make ~name:"figure8:efficiency sweep"
      (Staged.stage (fun () ->
           for s = 1 to 10 do
             ignore
               (Distcomp.efficiency Flicker_hw.Timing.default
                  ~work_ms:(float_of_int s *. 1000.0))
           done));
    Test.make ~name:"figure9:ssh login session"
      (Staged.stage (fun () ->
           let server, ct, nonce = Lazy.force ssh_login in
           match Ssh_auth.server_login server ~user:"u" ~ciphertext:ct ~nonce with
           | Ok _ -> ()
           | Error e -> failwith e));
    Test.make ~name:"figure6:tcb accounting"
      (Staged.stage (fun () -> ignore (Tcb.totals (Tcb.figure6 ()))));
    Test.make ~name:"ca:certificate signing session"
      (Staged.stage (fun () ->
           let ca, csr = Lazy.force ca_server in
           match CA.sign_csr ca csr with Ok _ -> () | Error e -> failwith e));
    Test.make ~name:"crypto:sha1 64KB"
      (let buf = String.make (64 * 1024) 'x' in
       Staged.stage (fun () -> ignore (Sha1.digest buf)));
    Test.make ~name:"crypto:rsa-512 keygen"
      (let rng = Prng.create ~seed:"micro-keygen" in
       Staged.stage (fun () -> ignore (Rsa.generate rng ~bits:512)));
    Test.make ~name:"tpm:seal+unseal"
      (let p = Lazy.force platform in
       let rng = Prng.create ~seed:"micro-seal" in
       Staged.stage (fun () ->
           let blob =
             Result.get_ok
               (Flicker_slb.Mod_tpm_utils.seal p.Platform.tpm ~rng ~release:[] "data")
           in
           ignore (Flicker_slb.Mod_tpm_utils.unseal p.Platform.tpm ~rng blob)));
    Test.make ~name:"tpm:quote"
      (let p = Lazy.force platform in
       Staged.stage (fun () ->
           ignore (Tpm.quote p.Platform.tpm ~nonce:(String.make 20 'n') ~selection:[ 17 ])));
  ]

(* Host SHA-1 bytes per Optimized session — the measurement-memoization
   number. "cold" clears the measurement caches before every session
   (the pre-memoization behavior, every window re-patched and re-hashed);
   "warm" keeps them, the shipping configuration. Simulated TPM costs are
   charged identically either way; only the simulator's own hashing
   changes. *)
let measurement_cache_report () =
  let p = Platform.create ~seed:"micro-memo" ~key_bits:512 () in
  let pal = Pal.define ~name:"micro-memo" (fun env -> Pal_env.set_output env "hi") in
  let session () =
    match
      Session.execute p ~pal ~flavor:Flicker_slb.Builder.Optimized ()
    with
    | Ok _ -> ()
    | Error e -> Format.kasprintf failwith "%a" Session.pp_error e
  in
  let n = 20 in
  let bytes_per_session ~cold =
    Measurement.clear_cache ();
    if not cold then session () (* prime the caches once, uncounted *);
    let start = Sha1.bytes_hashed () in
    for _ = 1 to n do
      if cold then Measurement.clear_cache ();
      session ()
    done;
    (Sha1.bytes_hashed () - start) / n
  in
  let cold = bytes_per_session ~cold:true in
  let warm = bytes_per_session ~cold:false in
  let hits, misses = Measurement.cache_stats () in
  print_endline "\n=== measurement cache (host SHA-1 bytes per Optimized session) ===";
  Printf.printf "cold (cache cleared each session): %7d bytes/session\n" cold;
  Printf.printf "warm (shipping configuration):     %7d bytes/session  (%.1fx fewer)\n"
    warm
    (float_of_int cold /. float_of_int (max 1 warm));
  Printf.printf "cache stats over the warm run: %d hits, %d misses\n" hits misses

let run () =
  print_endline "\n=== Bechamel microbenchmarks (real wall-clock of the simulator) ===";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~stabilize:false () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun tst ->
          let raw = Benchmark.run cfg [ instance ] tst in
          let result = Analyze.one ols instance raw in
          let estimate =
            match Analyze.OLS.estimates result with
            | Some [ v ] -> v
            | Some (v :: _) -> v
            | _ -> nan
          in
          Printf.printf "%-46s %12.1f us/run\n" (Test.Elt.name tst) (estimate /. 1000.0))
        (Test.elements test))
    tests;
  measurement_cache_report ()
