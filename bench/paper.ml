(* Reproduction of every table and figure in the paper's Section 7.
   Each function regenerates one artifact from the simulator and prints
   the paper's value next to the measured one. Timing comes from the
   simulated clock (calibrated in Flicker_hw.Timing); the crypto and
   protocol work underneath is real. *)

open Flicker_core
module Timing = Flicker_hw.Timing
module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Clock = Flicker_hw.Clock
module Skinit = Flicker_hw.Skinit
module Apic = Flicker_hw.Apic
module Scheduler = Flicker_os.Scheduler
module Blockdev = Flicker_os.Blockdev
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Builder = Flicker_slb.Builder
module Slb_core = Flicker_slb.Slb_core
module Tcb = Flicker_slb.Tcb
module Privacy_ca = Flicker_tpm.Privacy_ca
module Tpm = Flicker_tpm.Tpm
module Prng = Flicker_crypto.Prng
module Rsa = Flicker_crypto.Rsa
module Distcomp = Flicker_apps.Distcomp
module Rootkit_detector = Flicker_apps.Rootkit_detector
module Ssh_auth = Flicker_apps.Ssh_auth
module CA = Flicker_apps.Cert_authority

let header title =
  Printf.printf "\n=== %s ===\n" title

let row3 a b c = Printf.printf "%-34s %14s %14s\n" a b c

let ms v = Printf.sprintf "%.1f" v

(* Machine-readable output.  Each printed table/figure row is also
   recorded here when collection is on; the harness dumps the records as
   JSON when invoked with --json <path>. *)

module J = Flicker_obs.Json

type row = { artifact : string; label : string; fields : (string * J.t) list }

let sink : row list ref = ref []
let collecting = ref false

let start_collecting () =
  collecting := true;
  sink := []

let collected_rows () = List.rev !sink

let emit ~artifact ~label fields =
  if !collecting then sink := { artifact; label; fields } :: !sink

let json_of_rows rows =
  J.List
    (List.map
       (fun r ->
         J.Obj
           (("artifact", J.String r.artifact)
           :: ("label", J.String r.label)
           :: r.fields))
       rows)

(* a paper-value/measured-value line: print it and record it.  [key]
   overrides the recorded label when the printed one is ambiguous. *)
let paper_row ~artifact ?key label ~paper ~measured =
  row3 label paper (ms measured);
  let paper_field =
    match float_of_string_opt paper with
    | Some v -> ("paper_ms", J.Float v)
    | None -> ("paper", J.String paper)
  in
  emit ~artifact ~label:(Option.value key ~default:label)
    [ paper_field; ("measured_ms", J.Float measured) ]

(* The evaluation platform: a 5.06 MB kernel so the detector's hash takes
   the paper's 22 ms, TPM keys at 1024 bits to keep real RSA fast while
   the *simulated* latencies follow the Broadcom profile. *)
let eval_platform ?(timing = Timing.default) ~seed () =
  let ca = Privacy_ca.create (Prng.create ~seed:(seed ^ "-ca")) ~name:"BenchCA" ~key_bits:1024 in
  let p =
    Platform.create ~seed ~timing ~key_bits:1024
      ~kernel_text_size:(5 * 1024 * 1024) ~ca ()
  in
  (p, Privacy_ca.public_key ca)

(* ------------------------------------------------------------------ *)
(* Table 1: rootkit detector overhead breakdown                        *)
(* ------------------------------------------------------------------ *)

let table1 ?(timing = Timing.default) () =
  header
    (Printf.sprintf "Table 1: Rootkit Detector Overhead  [TPM: %s]"
       timing.Timing.tpm.Timing.tpm_name);
  let p, ca_key = eval_platform ~timing ~seed:"table1" () in
  let d = Rootkit_detector.deploy_on p in
  let nonce = Platform.fresh_nonce p in
  let result =
    match Rootkit_detector.scan d ~nonce with
    | Ok r -> r
    | Error e -> failwith e
  in
  let o = result.Rootkit_detector.outcome in
  let t0 = Platform.now_ms p in
  let _quote_evidence =
    Attestation.generate p ~nonce:(Platform.fresh_nonce p) ~inputs:"" ~outputs:""
  in
  let quote_ms = Platform.now_ms p -. t0 in
  let skinit = Session.phase_ms o Session.Skinit in
  let extend = timing.Timing.tpm.Timing.pcr_extend_ms in
  let hash_ms =
    Timing.sha1_ms timing ~bytes:(Rootkit_detector.measured_region_bytes d)
  in
  row3 "Operation" "Paper (ms)" "Measured (ms)";
  let t1_row = paper_row ~artifact:"table1" in
  t1_row "SKINIT" ~paper:"15.4" ~measured:skinit;
  t1_row "PCR Extend" ~paper:"1.2" ~measured:extend;
  t1_row "Hash of Kernel" ~paper:"22.0" ~measured:hash_ms;
  t1_row "TPM Quote" ~paper:"972.7" ~measured:quote_ms;
  (* end-to-end over the 12-hop network, on a fresh platform clock *)
  let p2, _ = eval_platform ~timing ~seed:"table1-e2e" () in
  let d2 = Rootkit_detector.deploy_on p2 in
  ignore ca_key;
  let verdict, total =
    match
      Rootkit_detector.remote_query d2
        ~ca_key:
          (let ca =
             Privacy_ca.create (Prng.create ~seed:"t1ca2") ~name:"x" ~key_bits:512
           in
           Privacy_ca.public_key ca)
    with
    | Ok (v, t) -> (v, t)
    | Error e -> failwith e
  in
  ignore verdict;
  paper_row ~artifact:"table1" "Total Query Latency" ~paper:"1022.7" ~measured:total

(* ------------------------------------------------------------------ *)
(* Table 2: SKINIT latency vs SLB size                                 *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header "Table 2: SKINIT duration by SLB size";
  Printf.printf "%-14s %14s %14s\n" "SLB size" "Paper (ms)" "Measured (ms)";
  let timing = Timing.default in
  let measure bytes =
    (* drive the real SKINIT path on a bare machine *)
    let m = Machine.create ~memory_size:(1024 * 1024) timing in
    let tpm = Tpm.create m (Prng.create ~seed:"t2") ~key_bits:512 in
    Machine.set_tpm_hooks m (Tpm.skinit_hooks tpm);
    let base = 0x10000 in
    (* the header length is a 16-bit field: a full 64 KB SLB encodes as
       65532 (the header itself rounds the last word) *)
    Memory.write_u16_le m.Machine.memory base (min 65532 (max 8 bytes));
    Memory.write_u16_le m.Machine.memory (base + 2) 4;
    Apic.deschedule_aps m;
    Apic.send_init_ipi m;
    let t0 = Clock.now m.Machine.clock in
    ignore (Skinit.execute m ~slb_base:base);
    Clock.now m.Machine.clock -. t0
  in
  let skinit_row label bytes paper measured =
    emit ~artifact:"table2" ~label
      [
        ("slb_bytes", J.Int bytes);
        ("paper_ms", J.Float (float_of_string paper));
        ("measured_ms", J.Float measured);
      ]
  in
  List.iter
    (fun (label, kb, paper) ->
      let measured = measure (kb * 1024) in
      Printf.printf "%-14s %14s %14s\n" label paper (ms measured);
      skinit_row label (kb * 1024) paper measured)
    [ ("0 KB", 0, "0.0"); ("4 KB", 4, "11.9"); ("16 KB", 16, "45.0");
      ("32 KB", 32, "89.2"); ("64 KB", 64, "177.5") ];
  let stub_ms = measure Slb_core.stub_size in
  Printf.printf "%-14s %14s %14s  (Section 7.2 optimization)\n" "4736 B stub" "14.0"
    (ms stub_ms);
  skinit_row "4736 B stub" Slb_core.stub_size "14.0" stub_ms

(* ------------------------------------------------------------------ *)
(* Table 3: kernel-build time under periodic detection                 *)
(* ------------------------------------------------------------------ *)

let mmss msv =
  let s = msv /. 1000.0 in
  Printf.sprintf "%d:%04.1f" (int_of_float s / 60) (Float.rem s 60.0)

let build_with_detection ~period_s =
  let p, _ = eval_platform ~seed:"table3" () in
  let d = Rootkit_detector.deploy_on p in
  let job = Scheduler.spawn p.Platform.scheduler ~name:"kernel-build" ~work_ms:442_600.0 in
  let started = Platform.now_ms p in
  (match period_s with
  | None -> Scheduler.run_until_complete p.Platform.scheduler job
  | Some s ->
      while job.Scheduler.completed_at = None do
        Scheduler.run_for p.Platform.scheduler (float_of_int s *. 1000.0);
        if job.Scheduler.completed_at = None then begin
          match Rootkit_detector.scan d ~nonce:(Platform.fresh_nonce p) with
          | Ok _ -> ()
          | Error e -> failwith e
        end
      done);
  Option.get job.Scheduler.completed_at -. started

let table3 () =
  header "Table 3: Kernel-build time with periodic rootkit detection";
  Printf.printf "%-18s %14s %14s\n" "Detection period" "Paper [m:s]" "Measured [m:s]";
  List.iter
    (fun (label, period, paper) ->
      let msv = build_with_detection ~period_s:period in
      Printf.printf "%-18s %14s %14s\n" label paper (mmss msv);
      emit ~artifact:"table3" ~label
        [
          ( "period_s",
            match period with None -> J.Null | Some s -> J.Int s );
          ("paper", J.String paper);
          ("measured_ms", J.Float msv);
        ])
    [
      ("No detection", None, "7:22.6");
      ("5:00", Some 300, "7:21.4");
      ("3:00", Some 180, "7:21.4");
      ("2:00", Some 120, "7:21.8");
      ("1:00", Some 60, "7:21.9");
      ("0:30", Some 30, "7:22.6");
    ]

(* ------------------------------------------------------------------ *)
(* Table 4: distributed-computing session overhead                     *)
(* ------------------------------------------------------------------ *)

let table4 ?(timing = Timing.default) () =
  header
    (Printf.sprintf "Table 4: Distributed Computing Overhead  [TPM: %s]"
       timing.Timing.tpm.Timing.tpm_name);
  Printf.printf "%-22s %10s %10s %10s %10s\n" "Application work (ms)" "1000" "2000"
    "4000" "8000";
  let p, _ = eval_platform ~timing ~seed:"table4" () in
  let unit_ = { Distcomp.unit_id = 1; number = 1_000_003; lo = 2; hi = max_int - 1 } in
  (* each column gets a fresh client: the MAC chains per client, and the
     measurement is about one resume session of the given length *)
  let resume_overhead work =
    let client = Distcomp.create_client p in
    match Distcomp.start client unit_ ~slice_ms:100.0 with
    | Error e -> failwith e
    | Ok first -> (
        match Distcomp.resume client first.Distcomp.state ~slice_ms:work with
        | Ok step ->
            let o = step.Distcomp.outcome in
            (Session.phase_ms o Session.Skinit, step.Distcomp.session_overhead_ms)
        | Error e -> failwith e)
  in
  let works = [ 1000.0; 2000.0; 4000.0; 8000.0 ] in
  let results = List.map resume_overhead works in
  let fmt_row label f = Printf.printf "%-22s %10s %10s %10s %10s\n" label
      (f (List.nth results 0) (List.nth works 0))
      (f (List.nth results 1) (List.nth works 1))
      (f (List.nth results 2) (List.nth works 2))
      (f (List.nth results 3) (List.nth works 3))
  in
  fmt_row "SKINIT (ms)" (fun (s, _) _ -> ms s);
  fmt_row "Unseal+setup (ms)" (fun (s, o) _ -> ms (o -. s -. 0.1));
  fmt_row "Flicker overhead (%)" (fun (_, o) w -> Printf.sprintf "%.0f%%" (o /. (o +. w) *. 100.0));
  Printf.printf "%-22s %10s %10s %10s %10s   (paper)\n" "" "47%" "30%" "18%" "10%";
  let emit_row label value =
    emit ~artifact:"table4" ~label
      (List.map2
         (fun w r -> (Printf.sprintf "work_%.0f_ms" w, J.Float (value r w)))
         works results)
  in
  emit_row "skinit_ms" (fun (s, _) _ -> s);
  emit_row "unseal_setup_ms" (fun (s, o) _ -> o -. s -. 0.1);
  emit_row "overhead_pct" (fun (_, o) w -> o /. (o +. w) *. 100.0)

(* ------------------------------------------------------------------ *)
(* Figure 8: Flicker vs replication efficiency                         *)
(* ------------------------------------------------------------------ *)

let figure8 ?(timing = Timing.default) () =
  header "Figure 8: Flicker vs Replication Efficiency (fraction of useful work)";
  Printf.printf "%-16s" "Latency (s)";
  for s = 1 to 10 do
    Printf.printf "%6d" s
  done;
  print_newline ();
  Printf.printf "%-16s" "Flicker";
  for s = 1 to 10 do
    Printf.printf "%6.2f" (Distcomp.efficiency timing ~work_ms:(float_of_int s *. 1000.0))
  done;
  print_newline ();
  emit ~artifact:"figure8" ~label:"Flicker"
    [
      ( "efficiency_by_latency_s",
        J.List
          (List.init 10 (fun i ->
               J.Float
                 (Distcomp.efficiency timing
                    ~work_ms:(float_of_int (i + 1) *. 1000.0)))) );
    ];
  List.iter
    (fun k ->
      Printf.printf "%-16s" (Printf.sprintf "%d-way repl." k);
      for _ = 1 to 10 do
        Printf.printf "%6.2f" (Distcomp.replication_efficiency k)
      done;
      print_newline ();
      emit ~artifact:"figure8"
        ~label:(Printf.sprintf "%d-way replication" k)
        [ ("efficiency", J.Float (Distcomp.replication_efficiency k)) ])
    [ 3; 5; 7 ];
  (* crossover commentary, as in the paper's text *)
  let eff2s = Distcomp.efficiency timing ~work_ms:2000.0 in
  Printf.printf
    "At 2 s user latency Flicker reaches %.0f%% efficiency vs 33%% for 3-way replication.\n"
    (eff2s *. 100.0)

(* ------------------------------------------------------------------ *)
(* Figure 9: SSH overhead                                              *)
(* ------------------------------------------------------------------ *)

let figure9 ?(timing = Timing.default) () =
  header
    (Printf.sprintf "Figure 9: SSH server-side overhead  [TPM: %s]"
       timing.Timing.tpm.Timing.tpm_name);
  let p, ca_key = eval_platform ~timing ~seed:"figure9" () in
  let server = Ssh_auth.create_server p ~key_bits:1024 ~users:[ ("user", "pass") ] () in
  let nonce = Platform.fresh_nonce p in
  let setup =
    match Ssh_auth.server_setup server ~nonce with Ok s -> s | Error e -> failwith e
  in
  let so = setup.Ssh_auth.setup_outcome in
  Printf.printf "(a) PAL 1 (setup)\n";
  row3 "Operation" "Paper (ms)" "Measured (ms)";
  let setup_row = paper_row ~artifact:"figure9" in
  setup_row ~key:"setup SKINIT" "SKINIT" ~paper:"14.3"
    ~measured:(Session.phase_ms so Session.Skinit);
  setup_row ~key:"setup Key Gen" "Key Gen" ~paper:"185.7"
    ~measured:(Timing.rsa_keygen_ms timing ~bits:1024);
  setup_row ~key:"setup Seal" "Seal" ~paper:"10.2"
    ~measured:timing.Timing.tpm.Timing.seal_ms;
  setup_row ~key:"setup Total Time" "Total Time" ~paper:"217.1"
    ~measured:so.Session.total_ms;
  let client =
    Ssh_auth.Client.create ~rng:(Prng.create ~seed:"fig9-client") ~ca_key
      ~server_slb_base:p.Platform.slb_base ~key_bits:1024 ()
  in
  (match Ssh_auth.Client.accept_server_key client ~nonce setup.Ssh_auth.evidence with
  | Ok () -> ()
  | Error e -> failwith e);
  let login_nonce = Platform.fresh_nonce p in
  let ct =
    match Ssh_auth.Client.encrypt_password client ~password:"pass" ~nonce:login_nonce with
    | Ok c -> c
    | Error e -> failwith e
  in
  let login =
    match Ssh_auth.server_login server ~user:"user" ~ciphertext:ct ~nonce:login_nonce with
    | Ok l -> l
    | Error e -> failwith e
  in
  let lo = login.Ssh_auth.login_outcome in
  Printf.printf "(b) PAL 2 (login)   [password %s]\n"
    (if login.Ssh_auth.granted then "accepted" else "REJECTED");
  row3 "Operation" "Paper (ms)" "Measured (ms)";
  let login_row = paper_row ~artifact:"figure9" in
  login_row ~key:"login SKINIT" "SKINIT" ~paper:"14.3"
    ~measured:(Session.phase_ms lo Session.Skinit);
  login_row ~key:"login Unseal" "Unseal" ~paper:"905.4"
    ~measured:timing.Timing.tpm.Timing.unseal_ms;
  login_row ~key:"login Decrypt" "Decrypt" ~paper:"4.6"
    ~measured:(Timing.rsa_private_ms timing ~bits:1024);
  login_row ~key:"login Total Time" "Total Time" ~paper:"937.6"
    ~measured:lo.Session.total_ms

(* ------------------------------------------------------------------ *)
(* Section 7.4.2: certificate authority                                *)
(* ------------------------------------------------------------------ *)

let ca_bench ?(timing = Timing.default) () =
  header
    (Printf.sprintf "Section 7.4.2: CA certificate signing  [TPM: %s]"
       timing.Timing.tpm.Timing.tpm_name);
  let p, _ = eval_platform ~timing ~seed:"ca-bench" () in
  let policy =
    { CA.allowed_suffixes = [ ".example.com" ]; denied_subjects = []; max_certificates = 100 }
  in
  let ca = CA.create p ~key_bits:1024 policy in
  let t0 = Platform.now_ms p in
  let pub = match CA.init_ca ca with Ok pub -> pub | Error e -> failwith e in
  let init_ms = Platform.now_ms p -. t0 in
  let csr =
    {
      CA.subject = "www.example.com";
      subject_key = (Rsa.generate (Prng.create ~seed:"csr") ~bits:512).Rsa.pub;
    }
  in
  let t1 = Platform.now_ms p in
  let cert = match CA.sign_csr ca csr with Ok c -> c | Error e -> failwith e in
  let sign_ms = Platform.now_ms p -. t1 in
  row3 "Operation" "Paper (ms)" "Measured (ms)";
  let ca_row = paper_row ~artifact:"ca" in
  ca_row "Keypair generation session" ~paper:"~217" ~measured:init_ms;
  ca_row "Certificate signing session" ~paper:"906.2" ~measured:sign_ms;
  ca_row "RSA signature (inside PAL)" ~paper:"4.7"
    ~measured:(Timing.rsa_private_ms timing ~bits:1024);
  let verifies = CA.verify_certificate ~ca_key:pub cert in
  Printf.printf "certificate #%d for %s verifies: %b\n" cert.CA.serial
    cert.CA.cert_subject verifies;
  emit ~artifact:"ca" ~label:"certificate"
    [
      ("serial", J.Int cert.CA.serial);
      ("subject", J.String cert.CA.cert_subject);
      ("verifies", J.Bool verifies);
    ]

(* ------------------------------------------------------------------ *)
(* Section 7.5: impact on the suspended OS                             *)
(* ------------------------------------------------------------------ *)

let impact () =
  header "Section 7.5: Device transfers across repeated 8.3 s Flicker sessions";
  let p, _ = eval_platform ~seed:"impact" () in
  let long_pal =
    Pal.define ~name:"bench-long-unit" (fun env ->
        Pal_env.compute env ~ms:8300.0;
        Pal_env.set_output env "done")
  in
  let devices =
    [
      ("cdrom", Blockdev.create ~name:"cdrom" ~rate_kb_per_ms:8.0);
      ("hd", Blockdev.create ~name:"hd" ~rate_kb_per_ms:60.0);
      ("usb", Blockdev.create ~name:"usb" ~rate_kb_per_ms:15.0);
    ]
  in
  let dev n = List.assoc n devices in
  let data = Flicker_crypto.Prng.bytes (Prng.create ~seed:"payload") (2 * 1024 * 1024) in
  let reference = Flicker_crypto.Md5.hex data in
  Printf.printf "%-22s %12s %10s %8s\n" "Transfer" "Duration (s)" "Sessions" "md5 ok";
  List.iter
    (fun (src, dst) ->
      Blockdev.store (dev src) ~file:"file.bin" data;
      let sessions = ref 0 in
      let between_chunks () =
        if !sessions < 2 then begin
          incr sessions;
          match Session.execute p ~pal:long_pal () with
          | Ok _ -> ()
          | Error e -> Format.kasprintf failwith "%a" Session.pp_error e
        end
      in
      match
        Blockdev.transfer p.Platform.machine ~scheduler:p.Platform.scheduler
          ~src:(dev src) ~dst:(dev dst) ~file:"file.bin" ~chunk_kb:512 ~between_chunks ()
      with
      | Error e -> failwith e
      | Ok msv ->
          let ok = Result.get_ok (Blockdev.md5sum (dev dst) ~file:"file.bin") = reference in
          Printf.printf "%-22s %12.1f %10d %8b\n"
            (Printf.sprintf "%s -> %s" src dst)
            (msv /. 1000.0) !sessions ok;
          emit ~artifact:"impact"
            ~label:(Printf.sprintf "%s -> %s" src dst)
            [
              ("duration_ms", J.Float msv);
              ("sessions", J.Int !sessions);
              ("md5_ok", J.Bool ok);
            ])
    [ ("cdrom", "hd"); ("cdrom", "usb"); ("hd", "usb"); ("usb", "hd") ]

(* ------------------------------------------------------------------ *)
(* Figures 1 & 6: TCB accounting                                       *)
(* ------------------------------------------------------------------ *)

let figure6 () =
  header "Figure 6: PAL modules (LOC and binary size)";
  Format.printf "%a" Tcb.pp_rows (Tcb.figure6 ());
  List.iter
    (fun r ->
      emit ~artifact:"figure6" ~label:r.Tcb.component
        [ ("loc", J.Int r.Tcb.loc); ("size_bytes", J.Int r.Tcb.size_bytes) ])
    (Tcb.figure6 ());
  header "Figure 1 / Section 3: TCB size comparison";
  List.iter
    (fun (name, loc) ->
      Printf.printf "%-55s %10d LOC\n" name loc;
      emit ~artifact:"figure6" ~label:name [ ("loc", J.Int loc) ])
    Tcb.comparison

(* ------------------------------------------------------------------ *)
(* Ablation: RSA vs ElGamal channel-key generation (Section 7.4.1)     *)
(* ------------------------------------------------------------------ *)

let keygen_ablation () =
  header
    "Ablation: secure-channel setup cost, RSA vs ElGamal keygen (Section 7.4.1)";
  let timing = Timing.default in
  let machine = Machine.create ~memory_size:(1024 * 1024) timing in
  let rng = Prng.create ~seed:"keygen-ablation" in
  let params = Lazy.force Flicker_crypto.Elgamal.shared_params_1024 in
  let measure f =
    let t0 = Clock.now machine.Machine.clock in
    f ();
    Clock.now machine.Machine.clock -. t0
  in
  let rsa_ms = measure (fun () -> ignore (Flicker_slb.Mod_crypto.rsa_generate machine rng ~bits:1024)) in
  let elg_ms =
    measure (fun () -> ignore (Flicker_slb.Mod_crypto.elgamal_generate machine rng params))
  in
  let fixed =
    Timing.skinit_ms timing ~slb_bytes:Slb_core.stub_size
    +. timing.Timing.tpm.Timing.seal_ms
    +. Timing.get_random_ms timing ~bytes:128
  in
  Printf.printf "%-34s %14s %14s\n" "" "RSA-1024" "ElGamal-1024";
  Printf.printf "%-34s %14.1f %14.1f\n" "key generation (ms)" rsa_ms elg_ms;
  Printf.printf "%-34s %14.1f %14.1f\n" "setup PAL total (ms, modelled)" (fixed +. rsa_ms)
    (fixed +. elg_ms);
  emit ~artifact:"keygen" ~label:"key generation (ms)"
    [ ("rsa_1024", J.Float rsa_ms); ("elgamal_1024", J.Float elg_ms) ];
  emit ~artifact:"keygen" ~label:"setup PAL total (ms, modelled)"
    [
      ("rsa_1024", J.Float (fixed +. rsa_ms));
      ("elgamal_1024", J.Float (fixed +. elg_ms));
    ];
  Printf.printf
    "the paper: \"this cost could be mitigated by choosing a different public key\n\
     algorithm with faster key generation, such as ElGamal\" -- a %.0fx keygen saving.\n"
    (rsa_ms /. elg_ms)

(* ------------------------------------------------------------------ *)
(* Comparison: trusted boot (IMA) vs Flicker attestation burden        *)
(* ------------------------------------------------------------------ *)

let burden () =
  header "Comparison: verification burden, trusted boot (IMA) vs Flicker (Sections 2.1, 8)";
  let p, _ = eval_platform ~seed:"burden" () in
  Tpm.reboot p.Platform.tpm;
  let ima = Flicker_os.Measured_boot.create p.Platform.tpm in
  Flicker_os.Measured_boot.boot_sequence ima p.Platform.kernel;
  for i = 1 to 60 do
    Flicker_os.Measured_boot.run_application ima
      ~name:(Printf.sprintf "/usr/bin/app%02d" i)
      ~code:(Printf.sprintf "app-binary-%d" i)
  done;
  let log = Flicker_os.Measured_boot.log ima in
  let tb = Trusted_boot.trusted_boot_burden log in
  let pal =
    Pal.define ~name:"bench-burden-pal" ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities ]
      (fun env -> Pal_env.set_output env "")
  in
  let fl = Trusted_boot.flicker_burden pal in
  Printf.printf "%-44s %10s %16s\n" "Attestation model" "Components" "Includes full OS";
  let burden_row label b =
    Printf.printf "%-44s %10d %16b\n" label b.Trusted_boot.components_to_assess
      b.Trusted_boot.includes_full_os;
    emit ~artifact:"burden" ~label
      [
        ("components", J.Int b.Trusted_boot.components_to_assess);
        ("includes_full_os", J.Bool b.Trusted_boot.includes_full_os);
      ]
  in
  burden_row "Trusted boot (IMA event log, one workday)" tb;
  burden_row "Flicker (SLB Core + 2 modules + PAL)" fl

(* ------------------------------------------------------------------ *)
(* Comparison: AMD SKINIT vs Intel GETSEC[SENTER] launch               *)
(* ------------------------------------------------------------------ *)

let txt () =
  header "Comparison: AMD SKINIT vs Intel TXT GETSEC[SENTER] (Section 2.4)";
  let p, _ = eval_platform ~seed:"txt-bench" () in
  let pal = Pal.define ~name:"bench-txt-pal" (fun env -> Pal_env.set_output env "done") in
  let run tech =
    match Session.execute p ~pal ?tech () with
    | Ok o -> o
    | Error e -> Format.kasprintf failwith "%a" Session.pp_error e
  in
  let svm = run None in
  let txt = run (Some (Session.Txt { acm = Flicker_hw.Senter.default_acm })) in
  Printf.printf "%-30s %14s %14s\n" "" "SKINIT" "SENTER";
  let txt_row label skinit_v senter_v =
    Printf.printf "%-30s %14.1f %14.1f\n" label skinit_v senter_v;
    emit ~artifact:"txt" ~label
      [ ("skinit_ms", J.Float skinit_v); ("senter_ms", J.Float senter_v) ]
  in
  txt_row "launch instruction (ms)"
    (Session.phase_ms svm Session.Skinit)
    (Session.phase_ms txt Session.Skinit);
  txt_row "session total (ms)" svm.Session.total_ms txt.Session.total_ms;
  Printf.printf
    "SENTER additionally transfers and measures the %d-byte SINIT ACM; the\n\
     measurement chains differ, so attestations identify the launch technology.\n"
    (String.length Flicker_hw.Senter.default_acm)

(* ------------------------------------------------------------------ *)
(* Ablation: TPM profiles                                              *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "Ablation: Broadcom vs Infineon vs projected next-gen TPM";
  Printf.printf "%-28s %12s %12s %12s\n" "Metric" "Broadcom" "Infineon" "Next-gen";
  let metric f =
    List.map
      (fun prof -> f (Timing.with_tpm prof Timing.default))
      [ Timing.broadcom; Timing.infineon; Timing.future_tpm ]
  in
  let quote = metric (fun t -> t.Timing.tpm.Timing.quote_ms) in
  let unseal = metric (fun t -> t.Timing.tpm.Timing.unseal_ms) in
  let eff = metric (fun t -> Distcomp.efficiency t ~work_ms:1000.0 *. 100.0) in
  let ssh_login =
    metric (fun t ->
        Timing.skinit_ms t ~slb_bytes:Slb_core.stub_size
        +. t.Timing.tpm.Timing.unseal_ms
        +. Timing.rsa_private_ms t ~bits:1024)
  in
  let print_row name values unit_str =
    Printf.printf "%-28s %12.1f %12.1f %12.1f %s\n" name (List.nth values 0)
      (List.nth values 1) (List.nth values 2) unit_str;
    emit ~artifact:"ablation" ~label:name
      [
        ("broadcom", J.Float (List.nth values 0));
        ("infineon", J.Float (List.nth values 1));
        ("next_gen", J.Float (List.nth values 2));
      ]
  in
  print_row "TPM Quote (ms)" quote "";
  print_row "TPM Unseal (ms)" unseal "";
  print_row "SSH login PAL (ms)" ssh_login "";
  print_row "1s-work efficiency (%)" eff ""
