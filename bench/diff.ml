(* `bench diff OLD NEW [--threshold PCT]`: compare two bench JSON
   artifacts and exit nonzero on regression.

   Simulated metrics must be byte-identical (the simulator is
   deterministic); wall-clock fields get a relative tolerance band and
   only warn unless --threshold is given, which makes drift beyond PCT
   percent fail too. This is the gate CI runs against the committed
   BENCH_*.json baselines. *)

module J = Flicker_obs.Json
module Bench_diff = Flicker_obs.Bench_diff

let read_json path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | raw -> Result.map_error (fun e -> path ^ ": " ^ e) (J.of_string raw)

let usage () =
  prerr_endline "usage: bench diff OLD.json NEW.json [--threshold PCT]";
  2

let main args =
  let rec parse paths threshold = function
    | [] -> Ok (List.rev paths, threshold)
    | "--threshold" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some v when v >= 0.0 -> parse paths (Some v) rest
        | _ -> Error (Printf.sprintf "--threshold: bad percentage %S" pct))
    | [ "--threshold" ] -> Error "--threshold requires a percentage argument"
    | arg :: rest -> parse (arg :: paths) threshold rest
  in
  match parse [] None args with
  | Error msg ->
      prerr_endline msg;
      usage ()
  | Ok ([ old_path; new_path ], threshold) -> (
      match (read_json old_path, read_json new_path) with
      | Error msg, _ | _, Error msg ->
          prerr_endline ("bench diff: " ^ msg);
          2
      | Ok baseline, Ok current -> (
          let strict_wall = threshold <> None in
          match
            Bench_diff.compare ?wall_tolerance_pct:threshold ~baseline ~current
              ()
          with
          | Error msg ->
              prerr_endline ("bench diff: " ^ msg);
              2
          | Ok report ->
              Printf.printf "bench diff %s %s\n" old_path new_path;
              print_string (Bench_diff.render ~strict_wall report);
              if Bench_diff.clean ~strict_wall report then 0 else 1))
  | Ok _ -> usage ()
