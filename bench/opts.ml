(* Harness-wide knobs set by bench/main.exe's flag parsing.

   [domains] is how many OCaml 5 domains the sharded sweeps hand to the
   fleet (`--domains N`); the simulated metrics are domain-count
   invariant by construction, so CI cross-checks `--domains 1` against
   `--domains 4` byte-for-byte. [no_wall] (`--no-wall`) zeroes every
   wall-clock field in the emitted JSON so that comparison can be a
   plain `cmp` even though the two runs execute on different numbers of
   cores. *)

let domains = ref 4
let no_wall = ref false

let wall x = if !no_wall then 0.0 else x
