(* Static-analysis bench artifact: per-PAL analysis wall time, finding
   counts, the abstract interpreter's proved worst-case stack, and the
   constant-time lint tally — for the five shipped PALs plus the two
   planted-defect targets, emitted like every other table row so
   `--json` keeps the bench trajectory populated. The planted rows pin
   the detector: CI fails if either stops being caught. *)

module Rules = Flicker_analysis.Rules
module Models = Flicker_analysis.Models
module Absint = Flicker_analysis.Absint
module Effects = Flicker_analysis.Effects
module Callgraph = Flicker_analysis.Callgraph
module J = Flicker_obs.Json

let run () =
  Printf.printf
    "\n=== Static analysis: flicker analyze over the shipped + planted PALs ===\n";
  Printf.printf "%-14s %12s %10s %10s %10s %12s %12s %10s\n" "PAL" "wall (ms)"
    "findings" "errors" "warnings" "stack (B)" "absint (ms)" "ct";
  List.iter
    (fun (key, target) ->
      let t0 = Unix.gettimeofday () in
      let index = Flicker_extract.Extract.index target.Rules.program in
      let findings =
        match Rules.run ~index target with
        | Ok fs -> fs
        | Error msg -> failwith (Printf.sprintf "analyze %s: %s" key msg)
      in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      (* the abstract-interpretation passes alone, timed separately from
         the full rule run above *)
      let a0 = Unix.gettimeofday () in
      let absint =
        Absint.analyze
          ~table:(Effects.make target.Rules.effects)
          (Callgraph.build target.Rules.program)
          ~entry:target.Rules.entry
      in
      let absint_wall_ms = (Unix.gettimeofday () -. a0) *. 1000.0 in
      let worst_stack =
        match absint.Absint.stack with
        | Absint.Bounded b -> b
        | Absint.Unbounded -> -1
      in
      let ct_findings =
        List.length
          (List.filter
             (fun (fi : Rules.finding) ->
               fi.Rules.rule = "secret-branch" || fi.Rules.rule = "secret-index")
             findings)
      in
      let errors = Rules.errors findings in
      let warnings = Rules.count Rules.Warning findings in
      Printf.printf "%-14s %12.3f %10d %10d %10d %12d %12.3f %10d\n" key wall_ms
        (List.length findings) errors warnings worst_stack absint_wall_ms
        ct_findings;
      Paper.emit ~artifact:"analyze" ~label:key
        [
          ("wall_ms", J.Float wall_ms);
          ("findings", J.Int (List.length findings));
          ("errors", J.Int errors);
          ("warnings", J.Int warnings);
          ("tcb_loc", J.Int (Flicker_slb.Pal.total_loc target.Rules.pal));
          ("budget_loc", J.Int target.Rules.budget_loc);
          ("worst_stack_bytes", J.Int worst_stack);
          ("absint_wall_ms", J.Float absint_wall_ms);
          ("ct_findings", J.Int ct_findings);
        ])
    (Models.all () @ Models.planted ())
