(* Static-analysis bench artifact: per-PAL analysis wall time and
   finding counts for the five shipped PALs, emitted like every other
   table row so `--json` keeps the bench trajectory populated. *)

module Rules = Flicker_analysis.Rules
module Models = Flicker_analysis.Models
module J = Flicker_obs.Json

let run () =
  Printf.printf "\n=== Static analysis: flicker analyze over the shipped PALs ===\n";
  Printf.printf "%-10s %12s %10s %10s %10s\n" "PAL" "wall (ms)" "findings" "errors" "warnings";
  List.iter
    (fun (key, target) ->
      let t0 = Unix.gettimeofday () in
      let index = Flicker_extract.Extract.index target.Rules.program in
      let findings =
        match Rules.run ~index target with
        | Ok fs -> fs
        | Error msg -> failwith (Printf.sprintf "analyze %s: %s" key msg)
      in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let errors = Rules.errors findings in
      let warnings = Rules.count Rules.Warning findings in
      Printf.printf "%-10s %12.3f %10d %10d %10d\n" key wall_ms (List.length findings)
        errors warnings;
      Paper.emit ~artifact:"analyze" ~label:key
        [
          ("wall_ms", J.Float wall_ms);
          ("findings", J.Int (List.length findings));
          ("errors", J.Int errors);
          ("warnings", J.Int warnings);
          ("tcb_loc", J.Int (Flicker_slb.Pal.total_loc target.Rules.pal));
          ("budget_loc", J.Int target.Rules.budget_loc);
        ])
    (Models.all ())
