(* Chaos benchmark: fleet degradation under seeded fault injection.

   Sweeps fault rate x fleet size with the echo workload and a bounded
   retry budget, and reports the degradation curve: goodput (completed
   requests per second), tail latency, re-dispatches, and the raw fault
   counts (crashes, TPM transients, DMA storms, breaker opens). The
   schedule of faults is a pure function of the per-configuration seed,
   so every cell — and the emitted JSON — is byte-identical across
   runs. *)

module Fleet = Flicker_service.Fleet
module Workload = Flicker_service.Workload
module Dispatch = Flicker_service.Dispatch
module Injector = Flicker_fault.Injector
module J = Flicker_obs.Json

let fault_rates = [ 0.0; 0.1; 0.3 ]
let platform_counts = [ 2; 4 ]
let clients = 6
let per_client = 5

let run_config ~platforms ~rate =
  let config =
    {
      Fleet.default_config with
      platforms;
      batch_size = 2;
      queue_depth = 32;
      policy = Dispatch.Least_loaded;
      seed = Printf.sprintf "chaos-bench-p%d-r%.2f" platforms rate;
      faults = Some (Injector.scaled rate);
      retry_budget = 2;
      breaker_failures = 3;
    }
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:60.0 ()) in
  Fleet.submit_open_loop fleet ~clients ~per_client ~mean_gap_ms:25.0
    ~payload:(fun ~client ~seq -> Printf.sprintf "chaos-%d-%d" client seq)
    ();
  Fleet.run fleet;
  Fleet.summary fleet

(* One sharded cell: the fault machinery (injected crashes, re-dispatch,
   breakers) running across shard boundaries, on however many domains
   the harness was given — the emitted fields are all simulated, so the
   row is byte-identical at any domain count. *)
let run_sharded () =
  let platforms = 64 and shards = 8 and rate = 0.2 in
  let config =
    {
      Fleet.default_config with
      platforms;
      shards;
      domains = !Opts.domains;
      batch_size = 2;
      queue_depth = 32;
      policy = Dispatch.Least_loaded;
      seed = Printf.sprintf "chaos-bench-sharded-p%d-r%.2f" platforms rate;
      faults = Some (Injector.scaled rate);
      retry_budget = 2;
      breaker_failures = 3;
    }
  in
  let fleet = Fleet.create ~config (Workload.echo ~work_ms:60.0 ()) in
  Fleet.submit_open_loop fleet ~clients:16 ~per_client:4 ~mean_gap_ms:10.0
    ~payload:(fun ~client ~seq -> Printf.sprintf "chaos-s-%d-%d" client seq)
    ();
  Fleet.run fleet;
  let s = Fleet.summary fleet in
  Printf.printf "%-10s %6.2f %10d %7d %8d %8d %8d %6d %10.2f %10.1f\n"
    (Printf.sprintf "%dx%ds" platforms shards)
    rate s.Fleet.completed s.failed s.crashes s.redispatched s.tpm_faults
    s.dma_storms s.throughput_rps s.latency_p95_ms;
  Paper.emit ~artifact:"chaos"
    ~label:(Printf.sprintf "p%d s%d r%.2f" platforms shards rate)
    [
      ("platforms", J.Int platforms);
      ("shards", J.Int shards);
      ("fault_rate", J.Float rate);
      ("submitted", J.Int s.Fleet.submitted);
      ("completed", J.Int s.completed);
      ("failed", J.Int s.failed);
      ("rejected", J.Int s.rejected);
      ("expired", J.Int s.expired);
      ("crashes", J.Int s.crashes);
      ("redispatched", J.Int s.redispatched);
      ("forwarded", J.Int s.forwarded);
      ("breaker_opens", J.Int s.breaker_opens);
      ("tpm_faults", J.Int s.tpm_faults);
      ("dma_storms", J.Int s.dma_storms);
      ("goodput_rps", J.Float s.throughput_rps);
      ("p95_ms", J.Float s.latency_p95_ms);
      ("makespan_ms", J.Float s.makespan_ms);
    ]

let run () =
  Printf.printf "\n=== Chaos: fleet degradation vs fault rate ===\n";
  Printf.printf
    "(%d clients x %d echo requests, retry budget 2, breaker after 3 failures)\n"
    clients per_client;
  Printf.printf "%-10s %6s %10s %7s %8s %8s %8s %6s %10s %10s\n" "platforms"
    "rate" "completed" "failed" "crashes" "retries" "tpm" "dma" "goodput r/s"
    "p95 ms";
  List.iter
    (fun platforms ->
      List.iter
        (fun rate ->
          let s = run_config ~platforms ~rate in
          Printf.printf "%-10d %6.2f %10d %7d %8d %8d %8d %6d %10.2f %10.1f\n"
            platforms rate s.Fleet.completed s.failed s.crashes s.redispatched
            s.tpm_faults s.dma_storms s.throughput_rps s.latency_p95_ms;
          Paper.emit ~artifact:"chaos"
            ~label:(Printf.sprintf "p%d r%.2f" platforms rate)
            [
              ("platforms", J.Int platforms);
              ("fault_rate", J.Float rate);
              ("submitted", J.Int s.submitted);
              ("completed", J.Int s.completed);
              ("failed", J.Int s.failed);
              ("rejected", J.Int s.rejected);
              ("expired", J.Int s.expired);
              ("crashes", J.Int s.crashes);
              ("redispatched", J.Int s.redispatched);
              ("breaker_opens", J.Int s.breaker_opens);
              ("tpm_faults", J.Int s.tpm_faults);
              ("dma_storms", J.Int s.dma_storms);
              ("goodput_rps", J.Float s.throughput_rps);
              ("p95_ms", J.Float s.latency_p95_ms);
              ("makespan_ms", J.Float s.makespan_ms);
            ])
        fault_rates)
    platform_counts;
  run_sharded ()
