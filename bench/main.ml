(* Benchmark harness entry point.

   With no arguments, regenerates every table and figure from the paper's
   evaluation (Section 7) on the simulated platform, then runs the
   Bechamel microbenchmarks. Individual artifacts:

     dune exec bench/main.exe -- table1 table2 table3 table4
     dune exec bench/main.exe -- figure6 figure8 figure9
     dune exec bench/main.exe -- ca impact ablation infineon fleet micro

   The meta-target `paper` expands to every Section 7 table/figure.

   With --json <path>, every table/figure row is also written to <path>
   as a JSON array of records ({"artifact", "label", ...fields}).

   `diff OLD.json NEW.json [--threshold PCT]` compares two such
   artifacts record-by-record and exits nonzero on regression: simulated
   metrics must be identical, wall-clock fields warn (or fail, with
   --threshold) beyond a relative tolerance band. *)

module Timing = Flicker_hw.Timing

let known =
  [
    ("table1", fun () -> Paper.table1 ());
    ("table2", Paper.table2);
    ("table3", Paper.table3);
    ("table4", fun () -> Paper.table4 ());
    ("figure6", Paper.figure6);
    ("figure8", fun () -> Paper.figure8 ());
    ("figure9", fun () -> Paper.figure9 ());
    ("ca", fun () -> Paper.ca_bench ());
    ("impact", Paper.impact);
    ("ablation", Paper.ablation);
    ("keygen", Paper.keygen_ablation);
    ("burden", Paper.burden);
    ("txt", Paper.txt);
    ( "infineon",
      fun () ->
        let timing = Timing.with_tpm Timing.infineon Timing.default in
        Paper.table1 ~timing ();
        Paper.table4 ~timing ();
        Paper.figure9 ~timing () );
    ("fleet", Fleet.run);
    ("chaos", Chaos.run);
    ("serve", Serve.run);
    ("analyze", Analysis.run);
    ("verify", Verify.run);
    ("micro", Micro.run);
  ]

let all_in_order =
  [ "table1"; "table2"; "table3"; "table4"; "figure6"; "figure8"; "figure9";
    "ca"; "impact"; "ablation"; "keygen"; "burden"; "txt"; "fleet"; "chaos";
    "serve"; "analyze"; "verify"; "micro" ]

(* "paper" regenerates every Section 7 table/figure artifact in one run —
   the unit the committed BENCH_paper.json baseline covers (the other
   four baselines map 1:1 onto fleet/chaos/analyze/verify) *)
let paper_targets =
  [ "table1"; "table2"; "table3"; "table4"; "figure6"; "figure8"; "figure9";
    "ca"; "impact"; "ablation"; "keygen"; "burden"; "txt" ]

let rec extract_json = function
  | [] -> (None, [])
  | "--json" :: path :: rest ->
      let _, targets = extract_json rest in
      (Some path, targets)
  | [ "--json" ] ->
      prerr_endline "--json requires a path argument";
      exit 1
  | arg :: rest ->
      let path, targets = extract_json rest in
      (path, arg :: targets)

(* harness-wide flags, peeled off before target dispatch: `--domains N`
   sets how many domains the sharded fleet sweeps run on (simulated
   output is invariant to it), `--no-wall` zeroes wall-clock fields so
   two runs can be compared with a plain cmp *)
let rec extract_flags = function
  | [] -> []
  | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some d when d >= 1 -> Opts.domains := d
      | _ ->
          prerr_endline "--domains requires a positive integer";
          exit 1);
      extract_flags rest
  | [ "--domains" ] ->
      prerr_endline "--domains requires a positive integer";
      exit 1
  | "--no-wall" :: rest ->
      Opts.no_wall := true;
      extract_flags rest
  | arg :: rest -> arg :: extract_flags rest

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | "diff" :: rest -> exit (Diff.main rest)
  | _ -> ());
  let args = extract_flags args in
  let json_path, targets = extract_json args in
  let targets = if targets = [] then all_in_order else targets in
  let targets =
    List.concat_map
      (fun t -> if t = "paper" then paper_targets else [ t ])
      targets
  in
  if json_path <> None then Paper.start_collecting ();
  print_endline "Flicker reproduction benchmark harness";
  print_endline "(timings below are simulated platform latencies calibrated to Section 7;";
  print_endline " the 'micro' section reports the real cost of the simulator itself)";
  List.iter
    (fun name ->
      match List.assoc_opt name known with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown benchmark %S; known: %s\n" name
            (String.concat ", " (List.map fst known));
          exit 1)
    targets;
  match json_path with
  | None -> ()
  | Some path ->
      let rows = Paper.collected_rows () in
      let oc = open_out path in
      output_string oc (Flicker_obs.Json.to_string (Paper.json_of_rows rows));
      output_char oc '\n';
      close_out oc;
      Printf.printf "\nwrote %d records to %s\n" (List.length rows) path
