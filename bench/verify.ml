(* Temporal-verifier bench artifact: model-checker search size per
   session variant (states, transitions, wall time, counterexample
   length) under each variant's intended adversary, the good session
   under every adversary model with and without the partial-order
   reduction, the POR work ratio, the full two-session interleaving
   product, and the cost of trace conformance over a real session — so
   the verification gate's overhead and the reduction's payoff are
   tracked like every other table. *)

module V = Flicker_verify
module J = Flicker_obs.Json
module Session = Flicker_core.Session
module Platform = Flicker_core.Platform
module Pal = Flicker_slb.Pal

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let run () =
  Printf.printf
    "\n=== Protocol verification: model checker + trace conformance ===\n";
  Printf.printf "%-28s %-22s %-10s %8s %12s %6s %10s %5s\n" "variant"
    "adversary" "outcome" "states" "transitions" "depth" "wall (ms)" "cex";
  (* each variant under the adversary model its bug was planted
     against ([Model.intended_adversary]); reduction on *)
  List.iter
    (fun variant ->
      let adversary, sessions = V.Model.intended_adversary variant in
      let r, wall_ms =
        timed (fun () -> V.Mc.run ~adversary ~sessions variant)
      in
      let outcome, cex_len =
        match r.V.Mc.outcome with
        | V.Mc.Verified -> ("verified", 0)
        | V.Mc.Violation cex -> ("violation", List.length cex.V.Mc.steps)
      in
      let s = r.V.Mc.stats in
      Printf.printf "%-28s %-22s %-10s %8d %12d %6d %10.3f %5d\n"
        (V.Model.variant_name variant)
        (Printf.sprintf "%s x%d" (V.Adversary.name adversary) sessions)
        outcome s.V.Mc.states s.V.Mc.transitions s.V.Mc.depth wall_ms cex_len;
      Paper.emit ~artifact:"verify"
        ~label:(V.Model.variant_name variant)
        [
          ("mode", J.String "model-check");
          ("adversary", J.String (V.Adversary.name adversary));
          ("sessions", J.Int sessions);
          ("por", J.Bool s.V.Mc.por);
          ("outcome", J.String outcome);
          ("states", J.Int s.V.Mc.states);
          ("transitions", J.Int s.V.Mc.transitions);
          ("depth", J.Int s.V.Mc.depth);
          ("truncated", J.Bool s.V.Mc.truncated);
          ("ample_states", J.Int s.V.Mc.ample);
          ("peak_queue", J.Int s.V.Mc.peak_queue);
          ("counterexample_steps", J.Int cex_len);
          ("wall_ms", J.Float wall_ms);
        ])
    V.Model.all_variants;
  (* the good session under every adversary model, reduced vs full:
     the with/without-POR table *)
  let configs =
    List.map
      (fun k -> (V.Adversary.kind_name k, V.Adversary.of_kinds [ k ]))
      V.Adversary.all_kinds
    @ [ ("all", V.Adversary.of_kinds V.Adversary.all_kinds) ]
  in
  List.iter
    (fun (cname, adversary) ->
      let reduced, wall_por =
        timed (fun () -> V.Mc.run ~adversary ~sessions:2 V.Model.Good)
      in
      let full, wall_full =
        timed (fun () ->
            V.Mc.run ~adversary ~sessions:2 ~por:false V.Model.Good)
      in
      let rs = reduced.V.Mc.stats and fs = full.V.Mc.stats in
      let label = "good-" ^ cname in
      Printf.printf "%-28s %-22s %-10s %8d %12d %6d %10.3f %5s\n" label
        (cname ^ " x2 por-vs-full") "verified" rs.V.Mc.states
        rs.V.Mc.transitions rs.V.Mc.depth wall_por "-";
      Paper.emit ~artifact:"verify" ~label
        [
          ("mode", J.String "por-compare");
          ("adversary", J.String (V.Adversary.name adversary));
          ("sessions", J.Int 2);
          ("states_por", J.Int rs.V.Mc.states);
          ("states_full", J.Int fs.V.Mc.states);
          ("transitions_por", J.Int rs.V.Mc.transitions);
          ("transitions_full", J.Int fs.V.Mc.transitions);
          ("ample_states", J.Int rs.V.Mc.ample);
          ("wall_ms_por", J.Float wall_por);
          ("wall_ms_full", J.Float wall_full);
        ])
    configs;
  (* the POR payoff headline: transitions explored, full over reduced,
     on the good session with a four-probe DMA adversary (the CI gate
     asserts this stays >= 2) *)
  let adversary = { V.Adversary.default with V.Adversary.dma_probes = 4 } in
  let reduced, wall_por =
    timed (fun () -> V.Mc.run ~adversary ~sessions:2 V.Model.Good)
  in
  let full, wall_full =
    timed (fun () -> V.Mc.run ~adversary ~sessions:2 ~por:false V.Model.Good)
  in
  let rt = reduced.V.Mc.stats.V.Mc.transitions
  and ft = full.V.Mc.stats.V.Mc.transitions in
  let ratio = float_of_int ft /. float_of_int rt in
  Printf.printf "%-28s %-22s %-10s %8d %12d %6s %10.3f %5s\n" "good-por-ratio"
    "dma(4) x2" (Printf.sprintf "%.2fx" ratio) reduced.V.Mc.stats.V.Mc.states
    rt "-" wall_por "-";
  Paper.emit ~artifact:"verify" ~label:"good-por-ratio"
    [
      ("mode", J.String "por-ratio");
      ("adversary", J.String "dma");
      ("dma_probes", J.Int 4);
      ("sessions", J.Int 2);
      ("states_por", J.Int reduced.V.Mc.stats.V.Mc.states);
      ("states_full", J.Int full.V.Mc.stats.V.Mc.states);
      ("transitions_por", J.Int rt);
      ("transitions_full", J.Int ft);
      ("transitions_ratio", J.Float ratio);
      ("wall_ms_por", J.Float wall_por);
      ("wall_ms_full", J.Float wall_full);
    ];
  (* the scale row: the full (unreduced) interleaving product of two
     back-to-back sessions against all four adversary models — the
     search the reduction is up against *)
  let adversary = V.Adversary.of_kinds V.Adversary.all_kinds in
  let r, wall_ms =
    timed (fun () ->
        V.Mc.run ~adversary ~sessions:2 ~por:false V.Model.Good)
  in
  let s = r.V.Mc.stats in
  Printf.printf "%-28s %-22s %-10s %8d %12d %6d %10.3f %5s\n" "replay-x2-full"
    "all x2 no-por" "verified" s.V.Mc.states s.V.Mc.transitions s.V.Mc.depth
    wall_ms "-";
  Paper.emit ~artifact:"verify" ~label:"replay-x2-full"
    [
      ("mode", J.String "full-product");
      ("adversary", J.String (V.Adversary.name adversary));
      ("sessions", J.Int 2);
      ("por", J.Bool false);
      ("states", J.Int s.V.Mc.states);
      ("transitions", J.Int s.V.Mc.transitions);
      ("depth", J.Int s.V.Mc.depth);
      ("truncated", J.Bool s.V.Mc.truncated);
      ("wall_ms", J.Float wall_ms);
    ];
  (* conformance over a real session's trace *)
  let p = Platform.create ~seed:"bench-verify" () in
  let pal =
    Pal.define ~name:"bench-verify"
      (fun env -> Flicker_slb.Pal_env.set_output env "ok")
  in
  match Session.execute p ~pal ~nonce:(Platform.fresh_nonce p) () with
  | Error e ->
      Format.printf "conformance session failed: %a@." Session.pp_error e
  | Ok _ ->
      let tracer = p.Platform.machine.Flicker_hw.Machine.tracer in
      let report, wall_ms = timed (fun () -> V.Checker.check_tracer tracer) in
      let violations = List.length report.V.Checker.violations in
      Printf.printf "%-28s %-22s %-10s %8d %12s %6s %10.3f %5s\n" "conformance"
        "-"
        (if violations = 0 then "clean" else "violated")
        report.V.Checker.events_checked "-" "-" wall_ms "-";
      Paper.emit ~artifact:"verify" ~label:"conformance"
        [
          ("mode", J.String "conformance");
          ("events_checked", J.Int report.V.Checker.events_checked);
          ("violations", J.Int violations);
          ("wall_ms", J.Float wall_ms);
        ]
