(* Temporal-verifier bench artifact: model-checker search size per
   session variant (states, transitions, wall time, counterexample
   length) plus the cost of trace conformance over a real session, so
   the verification gate's overhead is tracked like every other table. *)

module V = Flicker_verify
module J = Flicker_obs.Json
module Session = Flicker_core.Session
module Platform = Flicker_core.Platform
module Pal = Flicker_slb.Pal

let run () =
  Printf.printf "\n=== Protocol verification: model checker + trace conformance ===\n";
  Printf.printf "%-22s %-10s %8s %12s %6s %10s %5s\n" "variant" "outcome"
    "states" "transitions" "depth" "wall (ms)" "cex";
  List.iter
    (fun variant ->
      let t0 = Unix.gettimeofday () in
      let r = V.Mc.run variant in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let outcome, cex_len =
        match r.V.Mc.outcome with
        | V.Mc.Verified -> ("verified", 0)
        | V.Mc.Violation cex -> ("violation", List.length cex.V.Mc.steps)
      in
      let s = r.V.Mc.stats in
      Printf.printf "%-22s %-10s %8d %12d %6d %10.3f %5d\n"
        (V.Model.variant_name variant)
        outcome s.V.Mc.states s.V.Mc.transitions s.V.Mc.depth wall_ms cex_len;
      Paper.emit ~artifact:"verify"
        ~label:(V.Model.variant_name variant)
        [
          ("mode", J.String "model-check");
          ("outcome", J.String outcome);
          ("states", J.Int s.V.Mc.states);
          ("transitions", J.Int s.V.Mc.transitions);
          ("depth", J.Int s.V.Mc.depth);
          ("truncated", J.Bool s.V.Mc.truncated);
          ("counterexample_steps", J.Int cex_len);
          ("wall_ms", J.Float wall_ms);
        ])
    V.Model.all_variants;
  (* conformance over a real session's trace *)
  let p = Platform.create ~seed:"bench-verify" () in
  let pal =
    Pal.define ~name:"bench-verify"
      (fun env -> Flicker_slb.Pal_env.set_output env "ok")
  in
  (match Session.execute p ~pal ~nonce:(Platform.fresh_nonce p) () with
  | Error e ->
      Format.printf "conformance session failed: %a@." Session.pp_error e
  | Ok _ ->
      let tracer = p.Platform.machine.Flicker_hw.Machine.tracer in
      let t0 = Unix.gettimeofday () in
      let report = V.Checker.check_tracer tracer in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
      let violations = List.length report.V.Checker.violations in
      Printf.printf "%-22s %-10s %8d %12s %6s %10.3f %5s\n" "conformance"
        (if violations = 0 then "clean" else "violated")
        report.V.Checker.events_checked "-" "-" wall_ms "-";
      Paper.emit ~artifact:"verify" ~label:"conformance"
        [
          ("mode", J.String "conformance");
          ("events_checked", J.Int report.V.Checker.events_checked);
          ("violations", J.Int violations);
          ("wall_ms", J.Float wall_ms);
        ])
