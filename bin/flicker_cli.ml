(* Command-line front-end for the Flicker simulator.

     flicker hello                      run the quickstart PAL + attestation
     flicker scan [--rootkit KIND]      remote rootkit detection
     flicker ssh --password PW          SSH password-auth protocol
     flicker ca --subjects a.x,b.x      certificate authority service
     flicker factor --number N          distributed factoring
     flicker tcb [--modules m1,m2]      TCB accounting for a PAL
     flicker check [WORKLOAD..] [--mc]  temporal protocol verification
     flicker trace WORKLOAD [-o FILE]   Chrome trace JSON of a workload
     flicker stats WORKLOAD [--json]    counters + latency histograms
     flicker fleet [--platforms N] [--shards S] [--domains D]
                                        multi-machine fleet serving PAL requests
     flicker chaos [--rate R]           fleet under seeded fault injection
     flicker info                       platform + timing-profile summary *)

open Cmdliner
open Flicker_core
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Timing = Flicker_hw.Timing
module Privacy_ca = Flicker_tpm.Privacy_ca
module Prng = Flicker_crypto.Prng
module Rsa = Flicker_crypto.Rsa

(* --- common options --- *)

let seed_arg =
  let doc = "Deterministic seed for the simulated platform." in
  Arg.(value & opt string "flicker-cli" & info [ "seed" ] ~docv:"SEED" ~doc)

let tpm_arg =
  let doc = "TPM latency profile: $(b,broadcom), $(b,infineon) or $(b,future)." in
  Arg.(value & opt (enum [ ("broadcom", Timing.broadcom); ("infineon", Timing.infineon); ("future", Timing.future_tpm) ]) Timing.broadcom
       & info [ "tpm" ] ~docv:"PROFILE" ~doc)

let key_bits_arg =
  let doc = "RSA modulus size for application keys (larger is slower for real)." in
  Arg.(value & opt int 1024 & info [ "key-bits" ] ~docv:"BITS" ~doc)

let verbose_arg =
  let doc = "Log simulator events (SKINIT, DEV, APIC, suspensions)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let setup_logging verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let make_platform ~seed ~tpm ?(kernel_text_size = 256 * 1024) () =
  let ca = Privacy_ca.create (Prng.create ~seed:(seed ^ "/ca")) ~name:"CliCA" ~key_bits:1024 in
  let timing = Timing.with_tpm tpm Timing.default in
  let p = Platform.create ~seed ~timing ~key_bits:1024 ~kernel_text_size ~ca () in
  (p, Privacy_ca.public_key ca)

(* --- hello --- *)

let hello seed tpm verbose =
  setup_logging verbose;
  let p, ca_key = make_platform ~seed ~tpm () in
  let pal = Pal.define ~name:"cli-hello" (fun env -> Pal_env.set_output env "Hello, world") in
  let nonce = Platform.fresh_nonce p in
  match Session.execute p ~pal ~nonce () with
  | Error e -> Format.printf "session failed: %a@." Session.pp_error e; 1
  | Ok outcome ->
      Printf.printf "output: %s\n" outcome.Session.outputs;
      List.iter
        (fun (phase, phase_ms) ->
          Printf.printf "  %-14s %8.3f ms\n" (Session.phase_name phase) phase_ms)
        outcome.Session.breakdown;
      let evidence =
        Attestation.generate p ~nonce ~inputs:"" ~outputs:outcome.Session.outputs
      in
      let expectation = Verifier.expect ~pal ~slb_base:p.Platform.slb_base ~nonce () in
      (match Verifier.verify ~ca_key expectation evidence with
      | Ok () -> print_endline "attestation: verified"; 0
      | Error f -> Printf.printf "attestation: %s\n" (Verifier.failure_to_string f); 1)

let hello_cmd =
  Cmd.v (Cmd.info "hello" ~doc:"Run the quickstart PAL and verify its attestation")
    Term.(const hello $ seed_arg $ tpm_arg $ verbose_arg)

(* --- scan --- *)

let scan seed tpm rootkit verbose =
  setup_logging verbose;
  let p, ca_key = make_platform ~seed ~tpm () in
  let d = Flicker_apps.Rootkit_detector.deploy_on p in
  (match rootkit with
  | None -> ()
  | Some kind ->
      (match kind with
      | `Text -> Flicker_os.Kernel.install_text_rootkit p.Platform.kernel
      | `Syscall -> Flicker_os.Kernel.install_syscall_rootkit p.Platform.kernel
      | `Module -> Flicker_os.Kernel.install_module_rootkit p.Platform.kernel);
      Flicker_apps.Rootkit_detector.sync d);
  match Flicker_apps.Rootkit_detector.remote_query d ~ca_key with
  | Error e -> Printf.printf "query error: %s\n" e; 1
  | Ok (verdict, total) ->
      (match verdict with
      | Flicker_apps.Rootkit_detector.Clean ->
          Printf.printf "verdict: CLEAN (%.0f ms end-to-end)\n" total; 0
      | Flicker_apps.Rootkit_detector.Rootkit_detected _ ->
          Printf.printf "verdict: ROOTKIT DETECTED (%.0f ms end-to-end)\n" total; 2
      | Flicker_apps.Rootkit_detector.Attestation_rejected f ->
          Printf.printf "verdict: attestation rejected: %s\n" (Verifier.failure_to_string f); 3)

let rootkit_arg =
  let doc = "Install a rootkit first: $(b,text), $(b,syscall) or $(b,module)." in
  Arg.(value
       & opt (some (enum [ ("text", `Text); ("syscall", `Syscall); ("module", `Module) ])) None
       & info [ "rootkit" ] ~docv:"KIND" ~doc)

let scan_cmd =
  Cmd.v (Cmd.info "scan" ~doc:"Run the remote rootkit-detection query")
    Term.(const scan $ seed_arg $ tpm_arg $ rootkit_arg $ verbose_arg)

(* --- ssh --- *)

let ssh seed tpm key_bits password attempt verbose =
  setup_logging verbose;
  let p, ca_key = make_platform ~seed ~tpm () in
  let server = Flicker_apps.Ssh_auth.create_server p ~key_bits ~users:[ ("user", password) ] () in
  let client =
    Flicker_apps.Ssh_auth.Client.create ~rng:(Prng.create ~seed:(seed ^ "/client"))
      ~ca_key ~server_slb_base:p.Platform.slb_base ~key_bits ()
  in
  let attempt = Option.value attempt ~default:password in
  match Flicker_apps.Ssh_auth.authenticate server client ~user:"user" ~password:attempt with
  | Ok (true, ms) -> Printf.printf "login ACCEPTED (%.0f ms)\n" ms; 0
  | Ok (false, ms) -> Printf.printf "login rejected (%.0f ms)\n" ms; 1
  | Error e -> Printf.printf "protocol error: %s\n" e; 1

let password_arg =
  Arg.(value & opt string "hunter2"
       & info [ "password" ] ~docv:"PW" ~doc:"The account's real password.")

let attempt_arg =
  Arg.(value & opt (some string) None
       & info [ "attempt" ] ~docv:"PW" ~doc:"Password to try (defaults to the real one).")

let ssh_cmd =
  Cmd.v (Cmd.info "ssh" ~doc:"Run the Flicker SSH password-authentication protocol")
    Term.(const ssh $ seed_arg $ tpm_arg $ key_bits_arg $ password_arg $ attempt_arg $ verbose_arg)

(* --- ca --- *)

let ca_run seed tpm key_bits subjects suffixes verbose =
  setup_logging verbose;
  let p, _ = make_platform ~seed ~tpm () in
  let module CA = Flicker_apps.Cert_authority in
  let policy =
    { CA.allowed_suffixes = suffixes; denied_subjects = []; max_certificates = 1000 }
  in
  let ca = CA.create p ~key_bits policy in
  match CA.init_ca ca with
  | Error e -> Printf.printf "init failed: %s\n" e; 1
  | Ok pub ->
      let keyrng = Prng.create ~seed:(seed ^ "/subjects") in
      List.iter
        (fun subject ->
          let csr = { CA.subject; subject_key = (Rsa.generate keyrng ~bits:512).Rsa.pub } in
          match CA.sign_csr ca csr with
          | Ok cert ->
              Printf.printf "signed #%d %-30s verifies: %b\n" cert.CA.serial subject
                (CA.verify_certificate ~ca_key:pub cert)
          | Error e -> Printf.printf "denied %-30s %s\n" subject e)
        subjects;
      0

let subjects_arg =
  Arg.(value & opt (list string) [ "www.example.com"; "evil.net" ]
       & info [ "subjects" ] ~docv:"NAMES" ~doc:"Comma-separated CSR subjects.")

let suffixes_arg =
  Arg.(value & opt (list string) [ ".example.com" ]
       & info [ "allow" ] ~docv:"SUFFIXES" ~doc:"Allowed subject suffixes (policy).")

let ca_cmd =
  Cmd.v (Cmd.info "ca" ~doc:"Run the Flicker-protected certificate authority")
    Term.(const ca_run $ seed_arg $ tpm_arg $ key_bits_arg $ subjects_arg $ suffixes_arg $ verbose_arg)

(* --- factor --- *)

let factor seed tpm number slice verbose =
  setup_logging verbose;
  let p, _ = make_platform ~seed ~tpm () in
  let module D = Flicker_apps.Distcomp in
  let client = D.create_client p in
  let unit_ = { D.unit_id = 1; number; lo = 2; hi = number - 1 } in
  match D.run_to_completion client unit_ ~slice_ms:slice with
  | Error e -> Printf.printf "failed: %s\n" e; 1
  | Ok (final, sessions) ->
      Printf.printf "divisors of %d: %s  (%d Flicker sessions)\n" number
        (String.concat ", " (List.map string_of_int (List.sort compare final.D.divisors_found)))
        sessions;
      0

let number_arg =
  Arg.(value & opt int 351_649 & info [ "number" ] ~docv:"N" ~doc:"Number to factor.")

let slice_arg =
  Arg.(value & opt float 500.0
       & info [ "slice" ] ~docv:"MS" ~doc:"Milliseconds of work per Flicker session.")

let factor_cmd =
  Cmd.v (Cmd.info "factor" ~doc:"Run the distributed-computing PAL on one work unit")
    Term.(const factor $ seed_arg $ tpm_arg $ number_arg $ slice_arg $ verbose_arg)

(* --- tcb --- *)

let module_of_string = function
  | "os-protection" -> Ok Pal.Os_protection
  | "tpm-driver" -> Ok Pal.Tpm_driver
  | "tpm-utilities" -> Ok Pal.Tpm_utilities
  | "crypto" -> Ok Pal.Crypto
  | "memory" -> Ok Pal.Memory_management
  | "secure-channel" -> Ok Pal.Secure_channel
  | s -> Error (`Msg ("unknown module " ^ s))

let tcb modules =
  let module Tcb = Flicker_slb.Tcb in
  match
    List.fold_left
      (fun acc name ->
        match (acc, module_of_string name) with
        | Ok acc, Ok m -> Ok (m :: acc)
        | (Error _ as e), _ -> e
        | _, Error (`Msg m) -> Error m)
      (Ok []) modules
  with
  | Error m -> prerr_endline m; 1
  | Ok mods ->
      let pal = Pal.define ~name:(String.concat "+" ("tcb" :: modules)) ~modules:mods (fun _ -> ()) in
      Format.printf "%a" Tcb.pp_rows (Tcb.pal_tcb pal);
      print_endline "\ncomparison:";
      List.iter (fun (n, loc) -> Printf.printf "  %-55s %10d LOC\n" n loc) Tcb.comparison;
      0

let modules_arg =
  Arg.(value & opt (list string) []
       & info [ "modules" ] ~docv:"MODS"
           ~doc:"PAL modules to link: os-protection, tpm-driver, tpm-utilities, crypto, memory, secure-channel.")

let tcb_cmd =
  Cmd.v (Cmd.info "tcb" ~doc:"Show the TCB a PAL configuration carries")
    Term.(const tcb $ modules_arg)

(* --- extract --- *)

(* a built-in sample program (an sshd-like server) so the Section 5.2
   extraction tool can be demonstrated without a C parser *)
let sample_program =
  let f fname calls uses_types loc =
    Flicker_extract.Extract.fn fname ~calls ~uses_types ~loc
  in
  {
    Flicker_extract.Extract.functions =
      [
        f "main" [ "socket"; "accept_loop" ] [ "server_config" ] 30;
        f "accept_loop" [ "recv"; "handle_auth"; "printf" ] [ "connection" ] 60;
        f "handle_auth" [ "check_password"; "log_attempt" ] [ "connection"; "auth_ctxt" ] 40;
        f "check_password" [ "md5crypt"; "constant_time_eq"; "malloc" ]
          [ "auth_ctxt"; "passwd_entry" ] 25;
        f "md5crypt" [ "md5_init"; "md5_update"; "memcpy" ] [ "md5_ctx" ] 120;
        f "md5_init" [] [ "md5_ctx" ] 10;
        f "md5_update" [ "memcpy" ] [ "md5_ctx" ] 35;
        f "constant_time_eq" [] [] 8;
        f "log_attempt" [ "fprintf" ] [] 12;
        f "rsa_keygen" [ "rsa_generate_prime"; "malloc" ] [ "rsa_key" ] 80;
        f "rsa_generate_prime" [ "rand" ] [] 55;
      ];
    types =
      [
        { Flicker_extract.Extract.tname = "server_config"; type_depends = []; definition = "struct server_config {...};" };
        { tname = "connection"; type_depends = [ "server_config" ]; definition = "struct connection {...};" };
        { tname = "auth_ctxt"; type_depends = [ "passwd_entry" ]; definition = "struct auth_ctxt {...};" };
        { tname = "passwd_entry"; type_depends = []; definition = "struct passwd_entry {...};" };
        { tname = "md5_ctx"; type_depends = []; definition = "struct md5_ctx {...};" };
        { tname = "rsa_key"; type_depends = []; definition = "struct rsa_key {...};" };
      ];
  }

let extract_run target render =
  match Flicker_extract.Extract.extract sample_program ~target with
  | Error msg -> prerr_endline msg; 1
  | Ok e ->
      Format.printf "%a" Flicker_extract.Extract.report e;
      if Flicker_extract.Extract.has_blockers e then
        print_endline "NOTE: blockers present; restructure before building a PAL.";
      if render then begin
        print_endline "\n--- standalone program ---";
        print_string (Flicker_extract.Extract.render_standalone e)
      end;
      0

let target_arg =
  Arg.(value & opt string "check_password"
       & info [ "target" ] ~docv:"FUNC"
           ~doc:"Function to extract from the built-in sshd-like sample \
                 (try check_password, rsa_keygen, accept_loop).")

let render_arg =
  Arg.(value & flag & info [ "render" ] ~doc:"Print the extracted standalone program.")

let extract_cmd =
  Cmd.v
    (Cmd.info "extract"
       ~doc:"Run the Section 5.2 PAL-extraction tool on a sample program")
    Term.(const extract_run $ target_arg $ render_arg)

(* --- trace / stats --- *)

(* the workloads the observability subcommands can drive *)
let workload_arg =
  let doc =
    "Workload to run: $(b,hello) (quickstart PAL), $(b,rootkit) (detector \
     scan), $(b,ssh) (password-auth protocol) or $(b,ca) (keygen + one \
     certificate)."
  in
  Arg.(value & pos 0 (enum [ ("hello", `Hello); ("rootkit", `Rootkit); ("ssh", `Ssh); ("ca", `Ca) ]) `Hello
       & info [] ~docv:"WORKLOAD" ~doc)

let run_workload p ca_key ~seed = function
  | `Hello -> (
      let pal =
        Pal.define ~name:"cli-hello" (fun env -> Pal_env.set_output env "Hello, world")
      in
      match Session.execute p ~pal () with
      | Ok o -> Ok (Some o)
      | Error e -> Error (Format.asprintf "%a" Session.pp_error e))
  | `Rootkit -> (
      let d = Flicker_apps.Rootkit_detector.deploy_on p in
      match Flicker_apps.Rootkit_detector.scan d ~nonce:(Platform.fresh_nonce p) with
      | Ok r -> Ok (Some r.Flicker_apps.Rootkit_detector.outcome)
      | Error e -> Error e)
  | `Ssh -> (
      let server =
        Flicker_apps.Ssh_auth.create_server p ~users:[ ("user", "hunter2") ] ()
      in
      let client =
        Flicker_apps.Ssh_auth.Client.create ~rng:(Prng.create ~seed:(seed ^ "/client"))
          ~ca_key ~server_slb_base:p.Platform.slb_base ()
      in
      match
        Flicker_apps.Ssh_auth.authenticate server client ~user:"user" ~password:"hunter2"
      with
      | Ok _ -> Ok None
      | Error e -> Error e)
  | `Ca -> (
      let module CA = Flicker_apps.Cert_authority in
      let policy =
        { CA.allowed_suffixes = [ ".example.com" ]; denied_subjects = [];
          max_certificates = 10 }
      in
      let ca = CA.create p policy in
      match CA.init_ca ca with
      | Error e -> Error e
      | Ok _ -> (
          let csr =
            { CA.subject = "www.example.com";
              subject_key =
                (Rsa.generate (Prng.create ~seed:(seed ^ "/csr")) ~bits:512).Rsa.pub }
          in
          match CA.sign_csr ca csr with
          | Ok _ -> Ok None
          | Error e -> Error e))

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the output there instead of stdout.")

(* --- analyze --- *)

let analyze_run pals as_json strict out =
  let module Rules = Flicker_analysis.Rules in
  let module Models = Flicker_analysis.Models in
  let module Report = Flicker_analysis.Report in
  let selected =
    match pals with
    | [] -> Ok (Models.all ())
    | keys ->
        List.fold_left
          (fun acc key ->
            match (acc, Models.find key) with
            | Error _, _ -> acc
            | Ok sel, Some t -> Ok (sel @ [ (key, t) ])
            | Ok _, None ->
                Error
                  (Printf.sprintf "unknown PAL %s; known: %s" key
                     (String.concat ", " (Models.keys ()))))
          (Ok []) keys
  in
  match selected with
  | Error msg -> prerr_endline msg; 1
  | Ok targets -> (
      (* canonical merged order: by PAL key, then (rule, function,
         location) within each report *)
      let targets =
        List.sort (fun (a, _) (b, _) -> compare a b) targets
      in
      (* one extraction index per PAL, shared by the rule run and the
         text report instead of each re-indexing the program *)
      let results =
        List.map
          (fun (key, target) ->
            let index = Flicker_extract.Extract.index target.Rules.program in
            match Rules.run ~index target with
            | Ok findings -> (key, target, index, findings)
            | Error msg ->
                ( key,
                  target,
                  index,
                  [
                    {
                      Rules.rule = "driver";
                      severity = Rules.Error;
                      subject = target.Rules.entry;
                      location = "";
                      message = msg;
                    };
                  ] ))
          targets
      in
      let sarif_rows = List.map (fun (key, t, _, fs) -> (key, t, fs)) results in
      let text =
        if as_json then
          Flicker_obs.Json.to_string (Report.sarif sarif_rows) ^ "\n"
        else
          String.concat "\n"
            (List.map
               (fun (key, t, index, fs) -> Report.to_text ~index ~key t fs)
               results)
      in
      (match out with
      | None -> print_string text
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Printf.printf "analysis written to %s\n" path);
      let errors =
        List.fold_left (fun acc (_, _, _, fs) -> acc + Rules.errors fs) 0 results
      in
      let warnings =
        List.fold_left (fun acc (_, _, _, fs) -> acc + Rules.warnings fs) 0 results
      in
      let failing =
        List.exists (fun (_, _, _, fs) -> Rules.should_fail ~strict fs) results
      in
      if failing then begin
        if strict && errors = 0 then
          Printf.eprintf "%d warning(s) with --strict\n" warnings
        else Printf.eprintf "%d error-severity finding(s)\n" errors;
        1
      end
      else 0)

let analyze_pals_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"PAL"
           ~doc:"PALs to analyze: $(b,hello), $(b,rootkit), $(b,boinc), $(b,ssh), \
                 $(b,ca). All five when omitted. Two planted-defect targets, \
                 $(b,stack-hog) and $(b,secret-branch), can be named explicitly \
                 to see the abstract interpreter catch them.")

let analyze_json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit a SARIF-style JSON document (one run per PAL; the property \
                 bag carries the Figure 6 TCB accounting plus the proved \
                 worst-case stack and constant-time finding counts).")

let analyze_strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Exit non-zero on warning-severity findings too, not just \
                 errors. Use in CI to keep the shipped PALs warning-clean.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Statically verify PALs: call-graph, secret-flow, TCB-budget, \
             stack-bound and constant-time rules")
    Term.(const analyze_run $ analyze_pals_arg $ analyze_json_arg
          $ analyze_strict_arg $ out_arg)

(* --- check: temporal protocol verification --- *)

exception Usage of string

let parse_adversary = function
  | "all" -> Flicker_verify.Adversary.(of_kinds all_kinds)
  | "none" -> Flicker_verify.Adversary.none
  | s ->
      let kinds =
        List.map
          (fun n ->
            match Flicker_verify.Adversary.kind_of_name n with
            | Some k -> k
            | None ->
                raise
                  (Usage
                     (Printf.sprintf
                        "unknown adversary %S; valid: %s, all, none" n
                        (String.concat ", "
                           (List.map Flicker_verify.Adversary.kind_name
                              Flicker_verify.Adversary.all_kinds)))))
          (String.split_on_char '+' s)
      in
      Flicker_verify.Adversary.of_kinds kinds

let check_run seed tpm workloads with_mc adversary no_por only_variant as_json
    out verbose =
  setup_logging verbose;
  let module V = Flicker_verify in
  let wname = function
    | `Hello -> "hello" | `Rootkit -> "rootkit" | `Ssh -> "ssh" | `Ca -> "ca"
  in
  let workloads =
    match workloads with [] -> [ `Hello; `Rootkit; `Ssh; `Ca ] | ws -> ws
  in
  try
  let por = not no_por in
  let adversary = Option.map parse_adversary adversary in
  let variants =
    match only_variant with
    | None -> V.Model.all_variants
    | Some n -> (
        match V.Model.variant_of_name n with
        | Some v -> [ v ]
        | None ->
            raise
              (Usage
                 (Printf.sprintf "unknown variant %S; valid: %s" n
                    (String.concat ", "
                       (List.map V.Model.variant_name V.Model.all_variants)))))
  in
  (* conformance: run each workload on a fresh platform and replay its
     recorded protocol events through the automata *)
  let failed_workloads = ref [] in
  let conformance =
    List.filter_map
      (fun w ->
        let name = wname w in
        let p, ca_key = make_platform ~seed:(seed ^ "/" ^ name) ~tpm () in
        match run_workload p ca_key ~seed w with
        | Error e ->
            failed_workloads := (name, e) :: !failed_workloads;
            None
        | Ok _ ->
            let tracer = p.Platform.machine.Flicker_hw.Machine.tracer in
            Some (name, V.Checker.check_tracer tracer))
      workloads
  in
  (* model checking: the good variant must verify; every planted bug
     must be caught with a counterexample. Without --adversary each
     variant runs under its intended adversary model; with it, every
     variant runs under the given configuration and a planted bug is
     only expected to be caught when the adversary it requires is
     active. *)
  let mc_results =
    if with_mc then
      List.map
        (fun variant ->
          let cfg, sessions =
            match adversary with
            | None -> V.Model.intended_adversary variant
            | Some cfg ->
                ( cfg,
                  if V.Adversary.active cfg V.Adversary.Replay then 2
                  else V.Model.default_sessions variant )
          in
          let expected =
            variant <> V.Model.Good
            &&
            match V.Model.requires variant with
            | None -> true
            | Some k -> V.Adversary.active cfg k
          in
          ( variant,
            cfg,
            sessions,
            expected,
            V.Mc.run ~adversary:cfg ~sessions ~por variant ))
        variants
    else []
  in
  let conf_violations =
    List.fold_left
      (fun acc (_, r) -> acc + List.length r.V.Checker.violations)
      0 conformance
  in
  let mc_missed =
    List.filter
      (fun (_, _, _, expected, r) ->
        V.Vreport.mc_missed_violation r ~expected_violation:expected)
      mc_results
  in
  let text =
    if as_json then
      let runs =
        List.map (fun (name, r) -> V.Vreport.conformance_run ~subject:name r) conformance
        @ List.map
            (fun (v, cfg, sessions, expected, r) ->
              V.Vreport.mc_run ~adversary:cfg ~sessions v
                ~expected_violation:expected r)
            mc_results
      in
      Flicker_obs.Json.to_string (V.Vreport.document runs) ^ "\n"
    else begin
      let buf = Buffer.create 1024 in
      let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
      add "trace conformance:\n";
      List.iter
        (fun (name, r) ->
          add "  %-8s %4d protocol events   %d violation(s)\n" name
            r.V.Checker.events_checked
            (List.length r.V.Checker.violations);
          List.iter
            (fun v -> add "    %s\n" (V.Checker.violation_to_string v))
            r.V.Checker.violations)
        conformance;
      if with_mc then begin
        add "model checking%s (states explored / transitions / depth):\n"
          (if por then "" else " [POR disabled]");
        List.iter
          (fun (variant, cfg, sessions, expected, r) ->
            let s = r.V.Mc.stats in
            let tag =
              Printf.sprintf "%s x%d" (V.Adversary.name cfg) sessions
            in
            match r.V.Mc.outcome with
            | V.Mc.Verified ->
                add
                  "  %-28s [%-22s] %s  (%d states, %d transitions, depth %d, \
                   %d reduced%s)\n"
                  (V.Model.variant_name variant)
                  tag
                  (if expected then "MISSED PLANTED BUG" else "verified")
                  s.V.Mc.states s.V.Mc.transitions s.V.Mc.depth s.V.Mc.ample
                  (if s.V.Mc.truncated then ", TRUNCATED" else "")
            | V.Mc.Violation cex ->
                add "  %-28s [%-22s] %s %s in %d steps  (%d states)\n"
                  (V.Model.variant_name variant)
                  tag
                  (if expected then "caught" else "FALSE ALARM:")
                  cex.V.Mc.automaton
                  (List.length cex.V.Mc.steps)
                  s.V.Mc.states;
                if verbose || not expected then
                  add "%s\n"
                    (Format.asprintf "    %a" V.Mc.pp_counterexample cex))
          mc_results
      end;
      Buffer.contents buf
    end
  in
  (match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "verification report written to %s\n" path);
  List.iter
    (fun (name, e) -> Printf.eprintf "workload %s failed: %s\n" name e)
    (List.rev !failed_workloads);
  if conf_violations > 0 then
    Printf.eprintf "%d trace-conformance violation(s)\n" conf_violations;
  List.iter
    (fun (v, _, _, expected, _) ->
      Printf.eprintf
        (if expected then "model checker missed the planted bug in %s\n"
         else "model checker flagged the correct session %s\n")
        (V.Model.variant_name v))
    mc_missed;
  if conf_violations > 0 || mc_missed <> [] || !failed_workloads <> [] then 1
  else 0
  with Usage msg ->
    Printf.eprintf "%s\n" msg;
    2

let check_workloads_arg =
  Arg.(value
       & pos_all (enum [ ("hello", `Hello); ("rootkit", `Rootkit); ("ssh", `Ssh); ("ca", `Ca) ]) []
       & info [] ~docv:"WORKLOAD"
           ~doc:"Workloads whose traces to check: $(b,hello), $(b,rootkit), \
                 $(b,ssh), $(b,ca). All four when omitted.")

let check_mc_arg =
  Arg.(value & flag
       & info [ "mc" ]
           ~doc:"Also model-check the session protocol: exhaustively explore \
                 OS/adversary interleavings of the good session (must verify) \
                 and of deliberately broken variants (each planted bug must \
                 be caught with a counterexample).")

let check_adversary_arg =
  Arg.(value
       & opt (some string) None
       & info [ "adversary" ] ~docv:"MODEL"
           ~doc:"Adversary model(s) for --mc: $(b,dma), $(b,reset), \
                 $(b,replay), $(b,corrupt-os), composable with $(b,+) \
                 (e.g. $(b,dma+replay)), or $(b,all) / $(b,none). Without \
                 this flag each variant runs under its intended adversary.")

let check_no_por_arg =
  Arg.(value & flag
       & info [ "no-por" ]
           ~doc:"Disable the partial-order reduction and explore the full \
                 session/adversary interleaving product (escape hatch; \
                 verdicts must not change).")

let check_variant_arg =
  Arg.(value
       & opt (some string) None
       & info [ "variant" ] ~docv:"NAME"
           ~doc:"Model-check only this session variant (e.g. $(b,good), \
                 $(b,nv-rollback)). Exits 2 on unknown names, listing the \
                 valid ones.")

let check_json_arg =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Emit a SARIF-style JSON document (one run per workload \
                 conformance check and per model-checked variant).")

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify session traces against the temporal protocol automata")
    Term.(const check_run $ seed_arg $ tpm_arg $ check_workloads_arg
          $ check_mc_arg $ check_adversary_arg $ check_no_por_arg
          $ check_variant_arg $ check_json_arg $ out_arg $ verbose_arg)

let trace seed tpm workload out verbose =
  setup_logging verbose;
  let p, ca_key = make_platform ~seed ~tpm () in
  match run_workload p ca_key ~seed workload with
  | Error e -> Printf.printf "workload failed: %s\n" e; 1
  | Ok outcome ->
      (* human-readable summary on stderr so `trace W > file.json` stays
         valid JSON when no --out is given *)
      (match outcome with
      | None -> ()
      | Some o ->
          Printf.eprintf "phase breakdown (last session):\n";
          List.iter
            (fun (phase, phase_ms) ->
              Printf.eprintf "  %-14s %8.3f ms\n" (Session.phase_name phase) phase_ms)
            o.Session.breakdown);
      let tracer = p.Platform.machine.Flicker_hw.Machine.tracer in
      let json = Flicker_obs.Export.chrome_trace_string ~process_name:"flicker-sim" tracer in
      (match out with
      | None -> print_endline json
      | Some path ->
          let oc = open_out path in
          output_string oc json;
          output_char oc '\n';
          close_out oc;
          Printf.printf "wrote %d trace events to %s (open in chrome://tracing or Perfetto)\n"
            (Flicker_obs.Tracer.length tracer) path);
      0

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a workload and dump the simulated timeline as Chrome trace JSON")
    Term.(const trace $ seed_arg $ tpm_arg $ workload_arg $ out_arg $ verbose_arg)

let stats seed tpm workload as_json out verbose =
  setup_logging verbose;
  let p, ca_key = make_platform ~seed ~tpm () in
  match run_workload p ca_key ~seed workload with
  | Error e -> Printf.printf "workload failed: %s\n" e; 1
  | Ok _ ->
      let metrics = p.Platform.machine.Flicker_hw.Machine.metrics in
      let text =
        if as_json then
          Flicker_obs.Json.to_string (Flicker_obs.Export.stats_json metrics) ^ "\n"
        else Flicker_obs.Export.stats_summary metrics
      in
      (match out with
      | None -> print_string text
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Printf.printf "stats written to %s\n" path);
      0

let stats_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of the text table.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a workload and print the platform's counters and latency histograms")
    Term.(const stats $ seed_arg $ tpm_arg $ workload_arg $ stats_json_arg $ out_arg $ verbose_arg)

(* --- fleet --- *)

let fleet_run seed tpm platforms batch queue_depth policy workload clients
    per_client mean_gap deadline shards domains verbose =
  setup_logging verbose;
  let module Fleet = Flicker_service.Fleet in
  let module Workload = Flicker_service.Workload in
  let module CA = Flicker_apps.Cert_authority in
  let config =
    {
      Fleet.default_config with
      platforms;
      batch_size = batch;
      queue_depth;
      policy;
      seed;
      timing = Timing.with_tpm tpm Timing.default;
      shards;
      domains;
    }
  in
  let is_ca = workload = `Ca in
  let wl =
    if is_ca then
      Workload.ca
        { CA.allowed_suffixes = [ ".example.com" ]; denied_subjects = [];
          max_certificates = 10_000 }
    else Workload.echo ()
  in
  let fleet = Fleet.create ~config wl in
  let keys =
    (* the clients' own keypairs, only needed to build CSRs *)
    if is_ca then
      Array.init clients (fun c ->
          (Rsa.generate (Prng.create ~seed:(Printf.sprintf "%s/client-%d" seed c))
             ~bits:512)
            .Rsa.pub)
    else [||]
  in
  Fleet.submit_open_loop fleet ~clients ~per_client ~mean_gap_ms:mean_gap
    ?deadline_ms:deadline
    ~payload:(fun ~client ~seq ->
      if is_ca then
        Workload.ca_csr_payload
          ~subject:(Printf.sprintf "host-%d-%d.example.com" client seq)
          ~subject_key:keys.(client)
      else Printf.sprintf "ping-%d-%d" client seq)
    ();
  Fleet.run fleet;
  if is_ca then begin
    let verified = ref 0 and bad = ref 0 in
    List.iter
      (fun (_, disposition) ->
        match disposition with
        | Flicker_service.Request.Completed c -> (
            match Workload.decode_ca_output c.Flicker_service.Request.output with
            | Ok (cert, ca_pub) when CA.verify_certificate ~ca_key:ca_pub cert ->
                incr verified
            | Ok _ | Error _ -> incr bad)
        | _ -> ())
      (Fleet.dispositions fleet);
    Printf.printf "certificates verified: %d (bad: %d)\n" !verified !bad
  end;
  Format.printf "%a@." Fleet.pp_summary (Fleet.summary fleet);
  0

let platforms_arg =
  Arg.(value & opt int 2
       & info [ "platforms" ] ~docv:"N" ~doc:"Number of Flicker machines in the fleet.")

let batch_arg =
  Arg.(value & opt int 4
       & info [ "batch" ] ~docv:"K"
           ~doc:"Max requests served per Flicker session (amortizes SKINIT + TPM).")

let queue_depth_arg =
  Arg.(value & opt int 32
       & info [ "queue-depth" ] ~docv:"D"
           ~doc:"Per-platform admission bound; arrivals beyond it are rejected.")

let policy_arg =
  let doc =
    "Dispatch policy: $(b,round-robin), $(b,least-loaded) or $(b,sealed-affinity)."
  in
  Arg.(value
       & opt (enum Flicker_service.Dispatch.all_policies)
           Flicker_service.Dispatch.Least_loaded
       & info [ "policy" ] ~docv:"POLICY" ~doc)

let fleet_workload_arg =
  Arg.(value & opt (enum [ ("ca", `Ca); ("echo", `Echo) ]) `Ca
       & info [ "workload" ] ~docv:"W"
           ~doc:"What the fleet serves: $(b,ca) (certificate signing) or $(b,echo).")

let clients_arg =
  Arg.(value & opt int 6
       & info [ "clients" ] ~docv:"N" ~doc:"Number of concurrent clients.")

let per_client_arg =
  Arg.(value & opt int 4
       & info [ "per-client" ] ~docv:"N" ~doc:"Requests each client sends.")

let mean_gap_arg =
  Arg.(value & opt float 50.0
       & info [ "mean-gap" ] ~docv:"MS"
           ~doc:"Mean gap between a client's sends (exponential, simulated ms).")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"MS"
           ~doc:"Per-request deadline relative to its send time (simulated ms).")

let shards_arg =
  Arg.(value & opt int 1
       & info [ "shards" ] ~docv:"S"
           ~doc:"Contiguous platform windows the fleet is split into. Sharding \
                 changes the simulation (routing, epoch barriers, cross-shard \
                 forwarding) but deterministically: same seed, same results.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"OCaml 5 domains that execute the shards (clamped to the shard \
                 count). Pure execution placement: any value yields identical \
                 simulated results.")

let fleet_cmd =
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Serve many clients' PAL requests from a multi-machine Flicker fleet")
    Term.(const fleet_run $ seed_arg $ tpm_arg $ platforms_arg $ batch_arg
          $ queue_depth_arg $ policy_arg $ fleet_workload_arg $ clients_arg
          $ per_client_arg $ mean_gap_arg $ deadline_arg $ shards_arg
          $ domains_arg $ verbose_arg)

(* --- chaos --- *)

let chaos_run seed tpm platforms batch queue_depth policy workload clients
    per_client mean_gap deadline rate retry_budget breaker_failures
    breaker_cooldown shards domains verbose =
  setup_logging verbose;
  let module Fleet = Flicker_service.Fleet in
  let module Workload = Flicker_service.Workload in
  let module Injector = Flicker_fault.Injector in
  let module CA = Flicker_apps.Cert_authority in
  if rate < 0.0 || rate > 1.0 then begin
    prerr_endline "--rate must be within [0, 1]";
    exit 2
  end;
  let config =
    {
      Fleet.default_config with
      platforms;
      batch_size = batch;
      queue_depth;
      policy;
      seed;
      timing = Timing.with_tpm tpm Timing.default;
      faults = Some (Injector.scaled rate);
      retry_budget;
      breaker_failures;
      breaker_cooldown_ms = breaker_cooldown;
      shards;
      domains;
    }
  in
  let is_ca = workload = `Ca in
  let wl =
    if is_ca then
      Workload.ca
        { CA.allowed_suffixes = [ ".example.com" ]; denied_subjects = [];
          max_certificates = 10_000 }
    else Workload.echo ()
  in
  let fleet = Fleet.create ~config wl in
  let keys =
    if is_ca then
      Array.init clients (fun c ->
          (Rsa.generate (Prng.create ~seed:(Printf.sprintf "%s/client-%d" seed c))
             ~bits:512)
            .Rsa.pub)
    else [||]
  in
  Fleet.submit_open_loop fleet ~clients ~per_client ~mean_gap_ms:mean_gap
    ?deadline_ms:deadline
    ~payload:(fun ~client ~seq ->
      if is_ca then
        Workload.ca_csr_payload
          ~subject:(Printf.sprintf "host-%d-%d.example.com" client seq)
          ~subject_key:keys.(client)
      else Printf.sprintf "chaos-%d-%d" client seq)
    ();
  Fleet.run fleet;
  Format.printf "%a@." Fleet.pp_summary (Fleet.summary fleet);
  0

let rate_arg =
  Arg.(value & opt float 0.2
       & info [ "rate" ] ~docv:"R"
           ~doc:"Base fault rate in [0,1]: scales the TPM-error, latency-spike, \
                 crash and DMA-storm probabilities of the deterministic injector.")

let retry_budget_arg =
  Arg.(value & opt int 2
       & info [ "retry-budget" ] ~docv:"N"
           ~doc:"Re-dispatches allowed per request before it is failed.")

let breaker_failures_arg =
  Arg.(value & opt int 3
       & info [ "breaker-failures" ] ~docv:"N"
           ~doc:"Consecutive all-failed batches that open a platform's circuit \
                 breaker (0 disables it).")

let breaker_cooldown_arg =
  Arg.(value & opt float 2000.0
       & info [ "breaker-cooldown" ] ~docv:"MS"
           ~doc:"How long an open breaker sheds load before the platform \
                 rejoins (simulated ms).")

let chaos_workload_arg =
  Arg.(value & opt (enum [ ("ca", `Ca); ("echo", `Echo) ]) `Echo
       & info [ "workload" ] ~docv:"W"
           ~doc:"What the fleet serves under fault injection: $(b,echo) or $(b,ca).")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Run the fleet under deterministic seeded fault injection")
    Term.(const chaos_run $ seed_arg $ tpm_arg $ platforms_arg $ batch_arg
          $ queue_depth_arg $ policy_arg $ chaos_workload_arg $ clients_arg
          $ per_client_arg $ mean_gap_arg $ deadline_arg $ rate_arg
          $ retry_budget_arg $ breaker_failures_arg $ breaker_cooldown_arg
          $ shards_arg $ domains_arg $ verbose_arg)

(* --- serve --- *)

let serve_run seed tpm platforms batch queue_depth clients interactive
    per_client mean_gap deadline hit_pct capacity ttl rate as_json out verbose =
  setup_logging verbose;
  let module Fleet = Flicker_service.Fleet in
  let module Request = Flicker_service.Request in
  let module Serve = Flicker_serve.Serve in
  let module Injector = Flicker_fault.Injector in
  if hit_pct < 0 || hit_pct > 100 then begin
    prerr_endline "--hit-pct must be within [0, 100]";
    exit 2
  end;
  if rate < 0.0 || rate > 1.0 then begin
    prerr_endline "--rate must be within [0, 1]";
    exit 2
  end;
  let fleet_cfg =
    {
      Fleet.default_config with
      platforms;
      batch_size = batch;
      queue_depth;
      seed;
      timing = Timing.with_tpm tpm Timing.default;
      faults = (if rate > 0.0 then Some (Injector.scaled rate) else None);
      retry_budget = (if rate > 0.0 then 2 else 0);
      breaker_failures = (if rate > 0.0 then 3 else 0);
    }
  in
  let config =
    { Serve.default_config with Serve.fleet = fleet_cfg;
      cache_capacity = capacity; cache_ttl_ms = ttl }
  in
  let pool = 10 in
  let warm =
    if hit_pct = 0 then []
    else List.init pool (fun i -> Printf.sprintf "hot-%d" i)
  in
  let t = Serve.create ~config ~warm () in
  let fleet = Serve.fleet t in
  (* spread hot indices evenly (Bresenham): request k is hot exactly
     when floor((k+1)*pct/100) > floor(k*pct/100), so the offered hit
     fraction is exact for any load size *)
  let payload_for k =
    if ((k + 1) * hit_pct / 100) - (k * hit_pct / 100) > 0 then
      Printf.sprintf "hot-%d" (k mod pool)
    else Printf.sprintf "cold-%d" k
  in
  if interactive > 0 then
    Fleet.submit_open_loop fleet ~clients:interactive ~per_client
      ~mean_gap_ms:mean_gap ~tier:Request.Interactive ?deadline_ms:deadline
      ~payload:(fun ~client ~seq -> payload_for ((client * per_client) + seq))
      ();
  Fleet.submit_open_loop fleet ~clients ~per_client ~mean_gap_ms:mean_gap
    ~tier:Request.Batch
    ~payload:(fun ~client ~seq ->
      payload_for (((client + interactive) * per_client) + seq))
    ();
  Fleet.run fleet;
  (* every cache-served result must still carry a verifiable bundle *)
  let ok = ref 0 and stale = ref 0 and bad = ref 0 in
  List.iter
    (fun ((req : Flicker_service.Request.t), disposition) ->
      match disposition with
      | Request.Completed c when c.Request.batch = 0 -> (
          match Serve.bundle_for t req.Request.id with
          | None -> incr bad
          | Some b -> (
              match Serve.verify_bundle t b with
              | Ok () -> incr ok
              | Error (Serve.Stale _) -> incr stale
              | Error _ -> incr bad))
      | _ -> ())
    (Fleet.dispositions fleet);
  Format.printf "%a@." Fleet.pp_summary (Fleet.summary fleet);
  Printf.printf "cache-hit bundles appraised: %d ok, %d stale, %d bad\n" !ok
    !stale !bad;
  let metrics = Serve.metrics t in
  let text =
    if as_json then
      Flicker_obs.Json.to_string (Flicker_obs.Export.stats_json metrics) ^ "\n"
    else Flicker_obs.Export.stats_summary metrics
  in
  (match out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "serve stats written to %s\n" path);
  if !bad > 0 then 1 else 0

let hit_pct_arg =
  Arg.(value & opt int 50
       & info [ "hit-pct" ] ~docv:"PCT"
           ~doc:"Percentage of requests drawn from the pre-warmed payload \
                 pool (exact by construction).")

let interactive_arg =
  Arg.(value & opt int 2
       & info [ "interactive" ] ~docv:"N"
           ~doc:"Interactive-tier clients admitted ahead of the batch tier \
                 (0 disables the tier).")

let capacity_arg =
  Arg.(value & opt int 1024
       & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Result-cache capacity; least-recently-used entries are \
                 evicted beyond it.")

let ttl_arg =
  Arg.(value & opt (some float) None
       & info [ "cache-ttl" ] ~docv:"MS"
           ~doc:"Result-cache entry lifetime on the simulated clock \
                 (absent: entries never expire).")

let serve_rate_arg =
  Arg.(value & opt float 0.0
       & info [ "rate" ] ~docv:"R"
           ~doc:"Base fault rate in [0,1]; nonzero also enables retries \
                 (budget 2) and the circuit breaker (3 failures).")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a two-tier load through the attested result cache and \
             appraise every cache hit")
    Term.(const serve_run $ seed_arg $ tpm_arg $ platforms_arg $ batch_arg
          $ queue_depth_arg $ clients_arg $ interactive_arg $ per_client_arg
          $ mean_gap_arg $ deadline_arg $ hit_pct_arg $ capacity_arg $ ttl_arg
          $ serve_rate_arg $ stats_json_arg $ out_arg $ verbose_arg)

(* --- info --- *)

let info_run tpm =
  let timing = Timing.with_tpm tpm Timing.default in
  Printf.printf "Flicker simulator — paper testbed model\n";
  Printf.printf "CPU:       %s\n" timing.Timing.cpu.Timing.cpu_name;
  Printf.printf "TPM:       %s\n" timing.Timing.tpm.Timing.tpm_name;
  Printf.printf "  quote    %8.1f ms\n" timing.Timing.tpm.Timing.quote_ms;
  Printf.printf "  seal     %8.1f ms\n" timing.Timing.tpm.Timing.seal_ms;
  Printf.printf "  unseal   %8.1f ms\n" timing.Timing.tpm.Timing.unseal_ms;
  Printf.printf "  extend   %8.1f ms\n" timing.Timing.tpm.Timing.pcr_extend_ms;
  Printf.printf "SKINIT:    %.1f ms base + %.2f ms/KB of measured SLB\n"
    timing.Timing.tpm.Timing.skinit_base_ms timing.Timing.tpm.Timing.skinit_ms_per_kb;
  Printf.printf "network:   %.2f ms RTT (12 hops, Section 7.1)\n"
    timing.Timing.network.Timing.rtt_ms;
  0

let info_cmd =
  Cmd.v (Cmd.info "info" ~doc:"Show the simulated platform's timing profile")
    Term.(const info_run $ tpm_arg)

let () =
  let doc = "Flicker: an execution infrastructure for TCB minimization (simulated)" in
  let main = Cmd.group (Cmd.info "flicker" ~version:"1.0.0" ~doc)
      [ hello_cmd; scan_cmd; ssh_cmd; ca_cmd; factor_cmd; tcb_cmd; extract_cmd;
        analyze_cmd; check_cmd;
        trace_cmd; stats_cmd; fleet_cmd; chaos_cmd; serve_cmd; info_cmd ]
  in
  exit (Cmd.eval' main)
