let arg_json = function
  | Tracer.Str s -> Json.String s
  | Tracer.Num f -> Json.Float f
  | Tracer.Count i -> Json.Int i
  | Tracer.Flag b -> Json.Bool b

let ms_to_us v = v *. 1000.0

let event_json (e : Tracer.event) =
  let common =
    [
      ("name", Json.String e.Tracer.name);
      ("cat", Json.String e.Tracer.cat);
      ("ts", Json.Float (ms_to_us e.Tracer.ts));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  let kind_fields =
    match e.Tracer.kind with
    | Tracer.Span { dur } ->
        [ ("ph", Json.String "X"); ("dur", Json.Float (ms_to_us dur)) ]
    | Tracer.Instant -> [ ("ph", Json.String "i"); ("s", Json.String "t") ]
  in
  let args =
    match e.Tracer.args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)) ]
  in
  Json.Obj (common @ kind_fields @ args)

let chrome_trace ?(process_name = "flicker-simulator") tracer =
  let name_meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (name_meta :: List.map event_json (Tracer.events tracer)) );
      ("displayTimeUnit", Json.String "ms");
      ("droppedEventCount", Json.Int (Tracer.dropped tracer));
    ]

let chrome_trace_string ?process_name tracer =
  Json.to_string (chrome_trace ?process_name tracer)

let histogram_json (h : Metrics.histogram_summary) =
  Json.Obj
    [
      ("name", Json.String h.Metrics.h_name);
      ("count", Json.Int h.Metrics.count);
      ("sum", Json.Float h.Metrics.sum);
      ("min", Json.Float h.Metrics.min_v);
      ("max", Json.Float h.Metrics.max_v);
      ("mean", Json.Float h.Metrics.mean);
      ("p50", Json.Float h.Metrics.p50);
      ("p90", Json.Float h.Metrics.p90);
      ("p99", Json.Float h.Metrics.p99);
      ("dropped", Json.Int h.Metrics.dropped);
    ]

let stats_json metrics =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (name, v) -> (name, Json.Int v)) (Metrics.counters metrics)) );
      ("histograms", Json.List (List.map histogram_json (Metrics.histograms metrics)));
    ]

let stats_summary metrics =
  let b = Buffer.create 512 in
  let counters = Metrics.counters metrics in
  let histograms = Metrics.histograms metrics in
  if counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-36s %12d\n" name v))
      counters
  end;
  if histograms <> [] then begin
    Buffer.add_string b "histograms (ms):\n";
    Buffer.add_string b
      (Printf.sprintf "  %-30s %8s %12s %10s %10s %10s %10s\n" "name" "count" "sum"
         "mean" "min" "max" "p99");
    List.iter
      (fun (h : Metrics.histogram_summary) ->
        Buffer.add_string b
          (Printf.sprintf "  %-30s %8d %12.3f %10.3f %10.3f %10.3f %10.3f\n"
             h.Metrics.h_name h.Metrics.count h.Metrics.sum h.Metrics.mean
             h.Metrics.min_v h.Metrics.max_v h.Metrics.p99))
      histograms
  end;
  if counters = [] && histograms = [] then Buffer.add_string b "no metrics recorded\n";
  Buffer.contents b
