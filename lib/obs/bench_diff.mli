(** Record-by-record comparison of two bench JSON artifacts — the
    regression gate behind [bench diff OLD NEW].

    A bench artifact is the JSON array of flat records [bench --json]
    emits: each record carries an ["artifact"] and a ["label"] plus
    metric fields. The simulator is deterministic, so every metric field
    must be byte-identical between a committed [BENCH_*.json] baseline
    and a regenerated run; only host wall-clock fields (any field whose
    name contains ["wall"]) are inherently noisy and get a relative
    tolerance band instead. *)

type value = Json.t

type field_diff = {
  record : string;  (** "artifact/label" (with "#n" on repeated labels) *)
  field : string;
  old_value : value;
  new_value : value;
  drift_pct : float option;
      (** relative drift for numeric fields, [None] otherwise *)
}

type report = {
  records_compared : int;
  fields_identical : int;
  missing : string list;  (** baseline records absent from the new run *)
  extra : string list;  (** new-run records absent from the baseline *)
  new_artifacts : (string * int) list;
      (** artifacts in the new run with no baseline record at all, as
          [(name, record count)] — distinguished from schema drift
          because the remedy differs: commit a [BENCH_<name>.json]
          baseline rather than chase a field mismatch. Their records do
          not also appear in [extra]. Still fails {!clean}. *)
  regressions : field_diff list;  (** simulated metrics that changed *)
  wall_within : int;  (** wall-clock fields inside the tolerance band *)
  wall_drift : field_diff list;  (** wall-clock fields beyond it *)
}

val is_wall_field : string -> bool
(** A field is wall-clock (tolerated, not gated) iff its name contains
    ["wall"] — e.g. ["wall_ms"]. *)

val compare :
  ?wall_tolerance_pct:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  (report, string) result
(** Pair records by (artifact, label, occurrence) and compare key by
    key. [wall_tolerance_pct] (default 25.0) is the allowed relative
    drift for wall-clock fields; every other field requires exact
    equality. [Error] only on malformed input documents. *)

val clean : ?strict_wall:bool -> report -> bool
(** No missing/extra records and no simulated-metric change. With
    [strict_wall], out-of-band wall-clock drift also fails — the CLI
    maps [--threshold] onto this. *)

val render : ?strict_wall:bool -> report -> string
(** Human-readable report: one line per difference, warnings for
    wall-clock drift, and a final OK/REGRESSION verdict. *)
