type arg = Str of string | Num of float | Count of int | Flag of bool

type kind = Span of { dur : float } | Instant

type event = {
  name : string;
  cat : string;
  ts : float;
  kind : kind;
  args : (string * arg) list;
}

type t = {
  now : unit -> float;
  cap : int;
  buf : event option array;
  mutable next : int;  (* ring write cursor *)
  mutable len : int;
  mutable evicted : int;
}

let create ?(capacity = 4096) ~now () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  { now; cap = capacity; buf = Array.make capacity None; next = 0; len = 0; evicted = 0 }

let push t e =
  if t.len = t.cap then t.evicted <- t.evicted + 1 else t.len <- t.len + 1;
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod t.cap

let instant t ?(cat = "event") ?(args = []) name =
  push t { name; cat; ts = t.now (); kind = Instant; args }

type span_handle = {
  h_name : string;
  h_cat : string;
  h_args : (string * arg) list;
  h_started : float;
}

let begin_span t ?(cat = "span") ?(args = []) name =
  { h_name = name; h_cat = cat; h_args = args; h_started = t.now () }

let end_span t h =
  push t
    {
      name = h.h_name;
      cat = h.h_cat;
      ts = h.h_started;
      kind = Span { dur = t.now () -. h.h_started };
      args = h.h_args;
    }

let with_span t ?cat ?args name f =
  let h = begin_span t ?cat ?args name in
  Fun.protect ~finally:(fun () -> end_span t h) f

let events t =
  let start = (t.next - t.len + t.cap) mod t.cap in
  List.init t.len (fun i ->
      match t.buf.((start + i) mod t.cap) with
      | Some e -> e
      | None -> assert false)

let length t = t.len
let capacity t = t.cap
let dropped t = t.evicted

let clear t =
  Array.fill t.buf 0 t.cap None;
  t.next <- 0;
  t.len <- 0;
  t.evicted <- 0
