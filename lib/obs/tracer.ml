type arg = Str of string | Num of float | Count of int | Flag of bool

type kind = Span of { dur : float } | Instant

type event = {
  name : string;
  cat : string;
  ts : float;
  kind : kind;
  args : (string * arg) list;
}

(* The ring is a preallocated structure-of-arrays: recording an event
   writes scalar fields into the slot arrays (timestamps and durations
   stay unboxed in the float arrays) instead of allocating an [event]
   record, a [kind] block and an option box per push. [event] values are
   only materialized when [events] is called — the cold path. *)
type t = {
  now : unit -> float;
  cap : int;
  names : string array;
  cats : string array;
  tss : float array;
  durs : float array;
  spans : bool array; (* false = instant (dur slot is then meaningless) *)
  argss : (string * arg) list array;
  mutable next : int;  (* ring write cursor *)
  mutable len : int;
  mutable evicted : int;
}

let create ?(capacity = 4096) ~now () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  {
    now;
    cap = capacity;
    names = Array.make capacity "";
    cats = Array.make capacity "";
    tss = Array.make capacity 0.0;
    durs = Array.make capacity 0.0;
    spans = Array.make capacity false;
    argss = Array.make capacity [];
    next = 0;
    len = 0;
    evicted = 0;
  }

let push t ~name ~cat ~ts ~dur ~is_span ~args =
  if t.len = t.cap then t.evicted <- t.evicted + 1 else t.len <- t.len + 1;
  let i = t.next in
  t.names.(i) <- name;
  t.cats.(i) <- cat;
  t.tss.(i) <- ts;
  t.durs.(i) <- dur;
  t.spans.(i) <- is_span;
  t.argss.(i) <- args;
  t.next <- (i + 1) mod t.cap

let instant t ?(cat = "event") ?(args = []) name =
  push t ~name ~cat ~ts:(t.now ()) ~dur:0.0 ~is_span:false ~args

type span_handle = {
  h_name : string;
  h_cat : string;
  h_args : (string * arg) list;
  h_started : float;
}

let begin_span t ?(cat = "span") ?(args = []) name =
  { h_name = name; h_cat = cat; h_args = args; h_started = t.now () }

let end_span t h =
  push t ~name:h.h_name ~cat:h.h_cat ~ts:h.h_started
    ~dur:(t.now () -. h.h_started) ~is_span:true ~args:h.h_args

let with_span t ?cat ?args name f =
  let h = begin_span t ?cat ?args name in
  Fun.protect ~finally:(fun () -> end_span t h) f

let events t =
  let start = (t.next - t.len + t.cap) mod t.cap in
  List.init t.len (fun i ->
      let j = (start + i) mod t.cap in
      {
        name = t.names.(j);
        cat = t.cats.(j);
        ts = t.tss.(j);
        kind = (if t.spans.(j) then Span { dur = t.durs.(j) } else Instant);
        args = t.argss.(j);
      })

let length t = t.len
let capacity t = t.cap
let dropped t = t.evicted

let clear t =
  (* release the retained strings and args lists, not just the cursor *)
  Array.fill t.names 0 t.cap "";
  Array.fill t.cats 0 t.cap "";
  Array.fill t.argss 0 t.cap [];
  t.next <- 0;
  t.len <- 0;
  t.evicted <- 0
