(** Exporters for the tracer and metrics registry.

    Two formats: Chrome [trace_event] JSON (load the file in
    [chrome://tracing] or Perfetto to see the session phases, TPM
    commands, and OS suspensions on the simulated timeline) and a
    compact stats summary (text or JSON) for counters and histograms. *)

val chrome_trace : ?process_name:string -> Tracer.t -> Json.t
(** The Chrome trace object: [{"traceEvents": [...], ...}]. Spans become
    complete ("ph":"X") events, instants "ph":"i"; timestamps convert
    from simulated ms to the format's microseconds. *)

val chrome_trace_string : ?process_name:string -> Tracer.t -> string

val stats_json : Metrics.t -> Json.t
(** [{"counters": {...}, "histograms": [...]}]. *)

val stats_summary : Metrics.t -> string
(** Human-readable table of every counter and histogram. *)
