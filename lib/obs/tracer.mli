(** Structured trace events over the simulated clock.

    The tracer replaces the machine's old unbounded ad-hoc event list: it
    records complete spans (begin/end pairs with simulated-clock
    timestamps, so nesting falls out of containment) and instant events
    into a bounded ring buffer — a platform that runs forever keeps
    constant event memory, dropping the oldest records first.

    Timestamps come from the [now] callback supplied at creation (wired
    to [Clock.now] by the machine), so the tracer itself has no hardware
    dependencies and the library sits below [flicker_hw]. *)

type arg = Str of string | Num of float | Count of int | Flag of bool

type kind =
  | Span of { dur : float }  (** complete span: [ts .. ts + dur] *)
  | Instant

type event = {
  name : string;
  cat : string;
  ts : float;  (** simulated ms at which the event began *)
  kind : kind;
  args : (string * arg) list;
}

type t

val create : ?capacity:int -> now:(unit -> float) -> unit -> t
(** [capacity] defaults to 4096 events and must be positive. *)

val instant : t -> ?cat:string -> ?args:(string * arg) list -> string -> unit

type span_handle

val begin_span : t -> ?cat:string -> ?args:(string * arg) list -> string -> span_handle
val end_span : t -> span_handle -> unit
(** Records the completed span. Ending the same handle twice records the
    span twice; don't. *)

val with_span : t -> ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is recorded even if the thunk
    raises (the exception is re-raised). *)

val events : t -> event list
(** Retained events, oldest first. At most [capacity] of them. *)

val length : t -> int
val capacity : t -> int
val dropped : t -> int
(** Events evicted so far to stay within [capacity]. *)

val clear : t -> unit
(** Drop all retained events and reset the dropped counter. *)
