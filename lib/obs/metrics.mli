(** Monotonic counters and latency histograms.

    A registry lives on the simulated machine and is fed by every layer:
    the TPM records per-command counts and simulated latencies, the
    session layer records runs/faults, the DEV records blocked DMA.
    Registration is implicit — the first [incr] or [observe] of a name
    creates the series. Names are dot-separated, e.g. [tpm.quote.ms]. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (creating it at zero first). [by] defaults to 1 and
    must be non-negative: counters are monotonic. *)

val counter : t -> string -> int
(** Current value; 0 for a counter never incremented. *)

val observe : t -> string -> float -> unit
(** Record one sample (a simulated latency in ms) into a histogram.
    NaN and negative samples are dropped — they would poison the sum
    and the extrema — and counted in the summary's [dropped] field. *)

type histogram_summary = {
  h_name : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  dropped : int;  (** NaN / negative samples refused by [observe] *)
}
(** Percentiles are estimated from power-of-two buckets and clamped to
    the observed [min_v, max_v] range, so they are exact for single-value
    series and within a 2x bucket for mixed ones. *)

val histogram : t -> string -> histogram_summary option
val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val histograms : t -> histogram_summary list
(** All histogram summaries, sorted by name. *)

val reset : t -> unit

val merge_into : t -> into:t -> unit
(** Fold [src]'s series into [into]: counters add; histograms add their
    counts, sums, dropped counts, and buckets element-wise and keep the
    combined extrema. Commutative and associative, so merging per-shard
    registries in canonical shard order gives a registry independent of
    which domain ran which shard — bucket-estimated percentiles over the
    merged histogram are exactly those of the union of samples. [src] is
    left untouched. *)
