type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if not (Float.is_finite f) then "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  end

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            go item)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            go item)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= len then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char b '"'; go ()
          | '\\' -> Buffer.add_char b '\\'; go ()
          | '/' -> Buffer.add_char b '/'; go ()
          | 'n' -> Buffer.add_char b '\n'; go ()
          | 't' -> Buffer.add_char b '\t'; go ()
          | 'r' -> Buffer.add_char b '\r'; go ()
          | 'b' -> Buffer.add_char b '\b'; go ()
          | 'f' -> Buffer.add_char b '\012'; go ()
          | 'u' ->
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* non-ASCII code points are preserved as UTF-8 *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let raw = String.sub s start (!pos - start) in
    if raw = "" then fail "expected number";
    match int_of_string_opt raw with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt raw with
        | Some f -> Float f
        | None -> fail ("bad number " ^ raw))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
