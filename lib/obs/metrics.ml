(* Histogram buckets are powers of two over milliseconds, starting at
   1 ns (bucket 0 holds everything <= 1e-6 ms). 64 buckets reach ~1.8e13
   ms, far beyond any simulated latency. *)
let bucket_count = 64

let bucket_bound i = 1e-6 *. (2.0 ** Float.of_int i)

type histo = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable dropped : int; (* NaN / negative samples refused by [observe] *)
  buckets : int array;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  histos : (string, histo) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; histos = Hashtbl.create 32 }

let incr t ?(by = 1) name =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let bucket_index v =
  let rec go i = if i >= bucket_count - 1 || v <= bucket_bound i then i else go (i + 1) in
  go 0

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histos name with
    | Some h -> h
    | None ->
        let h =
          {
            count = 0;
            sum = 0.0;
            vmin = infinity;
            vmax = neg_infinity;
            dropped = 0;
            buckets = Array.make bucket_count 0;
          }
        in
        Hashtbl.replace t.histos name h;
        h
  in
  (* A NaN sample would poison [sum]/[mean] forever, fail both the
     [vmin] and [vmax] comparisons, and walk [bucket_index] to the top
     bucket; a negative duration is a caller bug. Drop either — but
     visibly, via the [dropped] count. *)
  if Float.is_nan v || v < 0.0 then h.dropped <- h.dropped + 1
  else begin
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v;
    let i = bucket_index v in
    h.buckets.(i) <- h.buckets.(i) + 1
  end

type histogram_summary = {
  h_name : string;
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  dropped : int;
}

let percentile (h : histo) p =
  if h.count = 0 then 0.0
  else begin
    let rank = Float.of_int h.count *. p /. 100.0 in
    let rec go i seen =
      if i >= bucket_count then h.vmax
      else begin
        let seen = seen + h.buckets.(i) in
        if Float.of_int seen >= rank && seen > 0 then bucket_bound i else go (i + 1) seen
      end
    in
    Float.min h.vmax (Float.max h.vmin (go 0 0))
  end

let summarize name (h : histo) =
  {
    h_name = name;
    count = h.count;
    sum = h.sum;
    min_v = (if h.count = 0 then 0.0 else h.vmin);
    max_v = (if h.count = 0 then 0.0 else h.vmax);
    mean = (if h.count = 0 then 0.0 else h.sum /. Float.of_int h.count);
    p50 = percentile h 50.0;
    p90 = percentile h 90.0;
    p99 = percentile h 99.0;
    dropped = h.dropped;
  }

let histogram t name =
  Option.map (summarize name) (Hashtbl.find_opt t.histos name)

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort compare

let histograms t =
  Hashtbl.fold (fun name h acc -> summarize name h :: acc) t.histos []
  |> List.sort (fun a b -> compare a.h_name b.h_name)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histos

(* Order-independent by construction: counters add, histograms add
   count/sum/dropped and buckets element-wise and take min/max of the
   extrema. Merging shard registries in any order therefore yields the
   same registry — the property the sharded fleet's byte-identical
   summaries lean on (percentiles come from the merged buckets, not from
   a sample order). *)
let merge_into src ~into =
  Hashtbl.iter (fun name r -> incr into ~by:!r name) src.counters;
  Hashtbl.iter
    (fun name (h : histo) ->
      let d =
        match Hashtbl.find_opt into.histos name with
        | Some d -> d
        | None ->
            let d =
              {
                count = 0;
                sum = 0.0;
                vmin = infinity;
                vmax = neg_infinity;
                dropped = 0;
                buckets = Array.make bucket_count 0;
              }
            in
            Hashtbl.replace into.histos name d;
            d
      in
      d.count <- d.count + h.count;
      d.sum <- d.sum +. h.sum;
      if h.vmin < d.vmin then d.vmin <- h.vmin;
      if h.vmax > d.vmax then d.vmax <- h.vmax;
      d.dropped <- d.dropped + h.dropped;
      Array.iteri (fun i n -> d.buckets.(i) <- d.buckets.(i) + n) h.buckets)
    src.histos
