(** A minimal JSON tree, printer, and parser.

    The repository deliberately has no external dependencies beyond the
    toolchain, so the observability exporters (Chrome [trace_event]
    files, bench records) carry their own JSON support. The printer
    emits compact, valid JSON; the parser accepts anything the printer
    produces (and standard JSON generally) and exists mainly so tests
    and downstream tooling can round-trip exported artifacts. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Non-finite floats become [null] so the output is
    always standard JSON. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_float : t -> float option
(** Numeric value of [Int] or [Float]. *)
