(* Record-by-record comparison of two bench JSON artifacts — the perf
   trajectory's regression gate.

   A bench artifact is a JSON array of flat records, each carrying an
   "artifact" and a "label" plus metric fields (the format `bench --json`
   emits). Everything the simulator computes is deterministic, so every
   field is required to be *identical* between a committed baseline and a
   regenerated run — except fields that measure host wall-clock time
   (named with "wall"), which are inherently noisy and only get a
   relative tolerance band. *)

type value = Json.t

(* identity of one record: artifact + label, plus an occurrence index so
   artifacts that legitimately repeat a label still pair up in order *)
let record_id ~artifact ~label ~occurrence =
  if occurrence = 0 then artifact ^ "/" ^ label
  else Printf.sprintf "%s/%s#%d" artifact label occurrence

let is_wall_field name =
  let n = String.length name and w = "wall" in
  let rec go i =
    i + 4 <= n && (String.sub name i 4 = w || go (i + 1))
  in
  go 0

type field_diff = {
  record : string;
  field : string;
  old_value : value;
  new_value : value;
  drift_pct : float option;
      (* relative drift for numeric wall-clock fields, None otherwise *)
}

type report = {
  records_compared : int;
  fields_identical : int;
  missing : string list;  (* baseline records absent from the new run *)
  extra : string list;  (* new-run records absent from the baseline *)
  new_artifacts : (string * int) list;
      (* artifacts with no baseline record at all: (name, record count).
         Their records are reported here, not as [extra] — the fix is
         committing a baseline, not hunting for schema drift *)
  regressions : field_diff list;  (* simulated metrics that changed *)
  wall_within : int;  (* wall-clock fields inside the tolerance band *)
  wall_drift : field_diff list;  (* wall-clock fields beyond it *)
}

let clean ?(strict_wall = false) r =
  r.missing = [] && r.extra = [] && r.new_artifacts = []
  && r.regressions = []
  && ((not strict_wall) || r.wall_drift = [])

let str_field fields name =
  match List.assoc_opt name fields with
  | Some (Json.String s) -> Some s
  | _ -> None

let rows_of_json = function
  | Json.List rows ->
      let tag i = function
        | Json.Obj fields -> (
            match (str_field fields "artifact", str_field fields "label") with
            | Some artifact, Some label -> Ok (artifact, label, fields)
            | _ ->
                Error
                  (Printf.sprintf "record %d lacks artifact/label string fields" i))
        | _ -> Error (Printf.sprintf "record %d is not an object" i)
      in
      List.mapi tag rows
      |> List.fold_left
           (fun acc r ->
             match (acc, r) with
             | Error e, _ | _, Error e -> Error e
             | Ok rows, Ok row -> Ok (row :: rows))
           (Ok [])
      |> Result.map List.rev
  | _ -> Error "bench artifact must be a JSON array of records"

(* assign occurrence indices so duplicate (artifact, label) pairs keep a
   stable identity in emission order *)
let identify rows =
  let seen = Hashtbl.create 64 in
  List.map
    (fun (artifact, label, fields) ->
      let key = (artifact, label) in
      let occurrence =
        match Hashtbl.find_opt seen key with Some n -> n | None -> 0
      in
      Hashtbl.replace seen key (occurrence + 1);
      (record_id ~artifact ~label ~occurrence, fields))
    rows

let float_of = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let drift_pct old_v new_v =
  match (float_of old_v, float_of new_v) with
  | Some o, Some n ->
      let base = Float.max (Float.abs o) 1e-9 in
      Some (Float.abs (n -. o) /. base *. 100.0)
  | _ -> None

(* [wall_tolerance_pct] is the allowed relative drift for wall-clock
   fields; simulated metrics always require exact equality. *)
let compare ?(wall_tolerance_pct = 25.0) ~baseline ~current () =
  match (rows_of_json baseline, rows_of_json current) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("current: " ^ e)
  | Ok old_rows, Ok new_rows ->
      let old_tagged = identify old_rows and new_tagged = identify new_rows in
      let new_tbl = Hashtbl.create 64 in
      List.iter (fun (id, fields) -> Hashtbl.replace new_tbl id fields) new_tagged;
      let old_ids = List.map fst old_tagged in
      let missing =
        List.filter (fun id -> not (Hashtbl.mem new_tbl id)) old_ids
      in
      (* an artifact with no baseline record at all is a different
         failure than schema drift within a known artifact: the fix is
         to commit its baseline, so report it separately *)
      let baseline_artifacts = Hashtbl.create 8 in
      List.iter
        (fun (artifact, _, _) -> Hashtbl.replace baseline_artifacts artifact ())
        old_rows;
      let new_artifacts =
        let order = ref [] and counts = Hashtbl.create 8 in
        List.iter
          (fun (artifact, _, _) ->
            if not (Hashtbl.mem baseline_artifacts artifact) then begin
              if not (Hashtbl.mem counts artifact) then
                order := artifact :: !order;
              Hashtbl.replace counts artifact
                (1
                + Option.value ~default:0 (Hashtbl.find_opt counts artifact))
            end)
          new_rows;
        List.rev_map (fun a -> (a, Hashtbl.find counts a)) !order
      in
      let extra =
        let old_set = Hashtbl.create 64 in
        List.iter (fun id -> Hashtbl.replace old_set id ()) old_ids;
        List.filter_map
          (fun ((artifact, _, _), (id, _)) ->
            if Hashtbl.mem old_set id || List.mem_assoc artifact new_artifacts
            then None
            else Some id)
          (List.combine new_rows new_tagged)
      in
      let records_compared = ref 0 in
      let fields_identical = ref 0 in
      let wall_within = ref 0 in
      let regressions = ref [] in
      let wall_drift = ref [] in
      List.iter
        (fun (id, old_fields) ->
          match Hashtbl.find_opt new_tbl id with
          | None -> ()
          | Some new_fields ->
              incr records_compared;
              let old_keys = List.map fst old_fields in
              let new_keys = List.map fst new_fields in
              (* a changed field *set* is a schema regression on both
                 sides: a dropped metric and an unbaselined one alike *)
              List.iter
                (fun k ->
                  if not (List.mem k new_keys) then
                    regressions :=
                      {
                        record = id;
                        field = k;
                        old_value = List.assoc k old_fields;
                        new_value = Json.Null;
                        drift_pct = None;
                      }
                      :: !regressions)
                old_keys;
              List.iter
                (fun k ->
                  if not (List.mem k old_keys) then
                    regressions :=
                      {
                        record = id;
                        field = k;
                        old_value = Json.Null;
                        new_value = List.assoc k new_fields;
                        drift_pct = None;
                      }
                      :: !regressions)
                new_keys;
              List.iter
                (fun (k, old_v) ->
                  match List.assoc_opt k new_fields with
                  | None -> ()
                  | Some new_v ->
                      if is_wall_field k then begin
                        match drift_pct old_v new_v with
                        | Some d when d > wall_tolerance_pct ->
                            wall_drift :=
                              {
                                record = id;
                                field = k;
                                old_value = old_v;
                                new_value = new_v;
                                drift_pct = Some d;
                              }
                              :: !wall_drift
                        | _ -> incr wall_within
                      end
                      else if old_v = new_v then incr fields_identical
                      else
                        regressions :=
                          {
                            record = id;
                            field = k;
                            old_value = old_v;
                            new_value = new_v;
                            drift_pct = drift_pct old_v new_v;
                          }
                          :: !regressions)
                old_fields)
        old_tagged;
      Ok
        {
          records_compared = !records_compared;
          fields_identical = !fields_identical;
          missing;
          extra;
          new_artifacts;
          regressions = List.rev !regressions;
          wall_within = !wall_within;
          wall_drift = List.rev !wall_drift;
        }

let pp_value v = Json.to_string v

let render ?(strict_wall = false) r =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%d record(s) compared: %d simulated field(s) identical, %d wall-clock field(s) in band\n"
    r.records_compared r.fields_identical r.wall_within;
  List.iter (fun id -> add "MISSING in new run: %s\n" id) r.missing;
  List.iter (fun id -> add "EXTRA in new run (not in baseline): %s\n" id) r.extra;
  List.iter
    (fun (artifact, n) ->
      add
        "NEW ARTIFACT %S: %d record(s) with no baseline at all — this is an \
         unbaselined artifact, not schema drift; regenerate and commit its \
         BENCH_%s.json baseline\n"
        artifact n artifact)
    r.new_artifacts;
  List.iter
    (fun d ->
      add "REGRESSION %s %s: %s -> %s\n" d.record d.field (pp_value d.old_value)
        (pp_value d.new_value))
    r.regressions;
  List.iter
    (fun d ->
      add "%s: wall-clock drift %s %s: %s -> %s (%.1f%%)\n"
        (if strict_wall then "REGRESSION" else "warning")
        d.record d.field (pp_value d.old_value) (pp_value d.new_value)
        (Option.value d.drift_pct ~default:0.0))
    r.wall_drift;
  add "bench diff: %s\n" (if clean ~strict_wall r then "OK" else "REGRESSION");
  Buffer.contents b
