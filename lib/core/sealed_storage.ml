module Tpm_types = Flicker_tpm.Tpm_types
module Builder = Flicker_slb.Builder
module Pal_env = Flicker_slb.Pal_env
module Mod_tpm_utils = Flicker_slb.Mod_tpm_utils
module Mod_tpm_driver = Flicker_slb.Mod_tpm_driver

type digest = Tpm_types.digest

let pcr17_for pal ~flavor ~slb_base =
  let image = Builder.build ~flavor pal in
  Measurement.after_skinit image ~slb_base

let with_tpm (env : Pal_env.t) f =
  match Mod_tpm_driver.claim env.Pal_env.tpm_driver with
  | Error e -> Error e
  | Ok () ->
      (* release also on exception, or a PAL fault wedges the driver *)
      Fun.protect
        ~finally:(fun () -> Mod_tpm_driver.release env.Pal_env.tpm_driver)
        (fun () -> f (Pal_env.tpm env))

let lift = Result.map_error Tpm_types.error_to_string

let seal_for env ~target ~flavor ~slb_base data =
  let pcr17 = pcr17_for target ~flavor ~slb_base in
  with_tpm env (fun tpm ->
      lift (Mod_tpm_utils.seal_to_pcr17 tpm ~rng:env.Pal_env.rng ~pcr17 data))

let seal_for_self env data =
  with_tpm env (fun tpm ->
      match Mod_tpm_utils.pcr_read tpm 17 with
      | Error e -> Error (Tpm_types.error_to_string e)
      | Ok pcr17 ->
          lift (Mod_tpm_utils.seal_to_pcr17 tpm ~rng:env.Pal_env.rng ~pcr17 data))

let unseal env blob =
  with_tpm env (fun tpm ->
      lift (Mod_tpm_utils.unseal tpm ~rng:env.Pal_env.rng blob))
