(** Replay protection for sealed storage (Section 4.3.2, Figure 4).

    TPM_Unseal guarantees only the intended PAL reads the plaintext — not
    that the ciphertext is the *latest* version. The untrusted OS stores
    the blobs, so it can feed a PAL yesterday's password database. The
    fix is a secure counter: each [seal] increments a TPM monotonic
    counter and embeds its value; [unseal] compares the embedded value
    with the live counter and rejects stale blobs. *)

type guard = { counter_handle : int }

val with_tpm :
  Flicker_slb.Pal_env.t ->
  (Flicker_tpm.Tpm.t -> ('a, string) result) ->
  ('a, string) result
(** Claim the session's TPM driver, run the callback against the device,
    and release the claim — also on exception, so a PAL fault mid-operation
    never leaves the driver wedged. Fails without running the callback if
    the driver is already claimed. *)

val init : Flicker_slb.Pal_env.t -> owner_auth:string -> label:string -> (guard, string) result
(** Create the PAL's monotonic counter (owner-authorized; the 20-byte
    owner secret reaches the PAL over a secure channel in the paper's
    deployment). Run once, inside a session. *)

val seal :
  Flicker_slb.Pal_env.t ->
  guard ->
  release:Flicker_tpm.Tpm_types.pcr_composite ->
  string ->
  (string, string) result
(** Figure 4 Seal: IncrementCounter(); j <- ReadCounter();
    c <- TPM_Seal(d || j). *)

val seal_for_self :
  Flicker_slb.Pal_env.t -> guard -> string -> (string, string) result

type unseal_error =
  | Replay_detected of { sealed_version : int; counter : int }
  | Counter_out_of_sync of { sealed_version : int; counter : int }
      (** the counter is exactly one ahead of the blob: the signature of a
          crash between the increment and the ciphertext reaching disk
          (the recovery scenario Section 4.3.2 flags as needing explicit
          detection). Recoverable by policy; distinct from a plain
          replay. *)
  | Tpm_error of string

val pp_unseal_error : Format.formatter -> unseal_error -> unit

val unseal :
  Flicker_slb.Pal_env.t -> guard -> string -> (string, unseal_error) result
(** Figure 4 Unseal: d || j' <- TPM_Unseal(c); reject unless
    j' = ReadCounter(). *)

(** The paper's second construction (Section 4.3.2): the counter lives in
    TPM non-volatile storage, in a space whose read and write conditions
    name the PAL's own PCR 17 value — so only the intended PAL, inside a
    genuine Flicker session, can read or advance it. No OS-held state
    beyond the ciphertext. *)
module Nv : sig
  type guard = { nv_index : int }

  val init :
    Flicker_slb.Pal_env.t -> owner_auth:string -> nv_index:int -> (guard, string) result
  (** Define the PCR-gated counter space (owner-authorized Define Space)
      and zero it. Must run inside a session of the PAL that will use it:
      the gate binds to the current PCR 17. *)

  val seal : Flicker_slb.Pal_env.t -> guard -> string -> (string, string) result
  (** Increment the NV counter and seal [data || j] to the current
      PCR 17. *)

  val unseal : Flicker_slb.Pal_env.t -> guard -> string -> (string, unseal_error) result

  val counter_value : Flicker_slb.Pal_env.t -> guard -> (int, string) result
  (** Current NV counter (readable only when the PCR gate is satisfied —
      i.e., from inside the right PAL's session). *)
end
