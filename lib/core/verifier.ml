open Flicker_crypto
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types
module Privacy_ca = Flicker_tpm.Privacy_ca
module Builder = Flicker_slb.Builder

type failure =
  | Untrusted_ca
  | Bad_certificate
  | Bad_signature
  | Nonce_mismatch
  | Pcr_mismatch of { expected : string; got : string }
  | Missing_pcr17

let failure_to_string = function
  | Untrusted_ca -> "AIK certificate issued by an untrusted CA"
  | Bad_certificate -> "AIK certificate signature invalid"
  | Bad_signature -> "TPM quote signature invalid"
  | Nonce_mismatch -> "quote nonce does not match the challenge"
  | Pcr_mismatch { expected; got } ->
      Printf.sprintf "PCR 17 mismatch: expected %s, got %s" (Util.to_hex expected)
        (Util.to_hex got)
  | Missing_pcr17 -> "quote does not cover PCR 17"

let pp_failure fmt f = Format.pp_print_string fmt (failure_to_string f)

type expectation = {
  pal : Flicker_slb.Pal.t;
  flavor : Builder.flavor;
  slb_base : int;
  nonce : string;
  pal_extends : string list;
  acm : string option;
}

let expect ~pal ?(flavor = Builder.Optimized) ?(pal_extends = []) ?acm ~slb_base ~nonce
    () =
  { pal; flavor; slb_base; nonce; pal_extends; acm }

let expected_pcr17 expectation ~inputs ~outputs =
  let image = Builder.build ~flavor:expectation.flavor expectation.pal in
  Measurement.final ?acm:expectation.acm ~pal_extends:expectation.pal_extends image
    ~slb_base:expectation.slb_base ~inputs ~outputs ~nonce:(Some expectation.nonce)

(* The staged checks below are exposed separately so an appraisal cache
   (lib/serve) can memoize the expensive host-crypto stages — certificate
   and quote-signature verification — while always re-running the cheap,
   context-dependent ones (nonce, PCR recomputation). *)

let quote_payload (quote : Tpm.quote) =
  "QUOT"
  ^ Tpm_types.composite_hash quote.Tpm.quoted_composite
  ^ quote.Tpm.quote_nonce

let check_certificate ~ca_key cert =
  if Privacy_ca.verify_certificate ~ca_key cert then Ok ()
  else Error Bad_certificate

let check_quote_signature ~aik (quote : Tpm.quote) =
  if
    Pkcs1.verify aik Hash.SHA1 ~msg:(quote_payload quote)
      ~signature:quote.Tpm.signature
  then Ok ()
  else Error Bad_signature

let check_freshness expectation (quote : Tpm.quote) =
  if Util.constant_time_equal quote.Tpm.quote_nonce expectation.nonce then Ok ()
  else Error Nonce_mismatch

let check_pcr17 expectation (evidence : Attestation.evidence) =
  let quote = evidence.Attestation.quote in
  match List.assoc_opt 17 quote.Tpm.quoted_composite with
  | None -> Error Missing_pcr17
  | Some got ->
      let expected =
        expected_pcr17 expectation ~inputs:evidence.Attestation.claimed_inputs
          ~outputs:evidence.Attestation.claimed_outputs
      in
      if Util.constant_time_equal expected got then Ok ()
      else Error (Pcr_mismatch { expected; got })

let verify ~ca_key expectation (evidence : Attestation.evidence) =
  let ( let* ) = Result.bind in
  let cert = evidence.Attestation.aik_cert in
  let quote = evidence.Attestation.quote in
  let* () = check_certificate ~ca_key cert in
  let* () = check_quote_signature ~aik:cert.Privacy_ca.subject_aik quote in
  let* () = check_freshness expectation quote in
  check_pcr17 expectation evidence
