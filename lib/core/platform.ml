open Flicker_crypto
module Machine = Flicker_hw.Machine
module Timing = Flicker_hw.Timing
module Clock = Flicker_hw.Clock
module Tpm = Flicker_tpm.Tpm
module Privacy_ca = Flicker_tpm.Privacy_ca
module Kernel = Flicker_os.Kernel
module Scheduler = Flicker_os.Scheduler
module Sysfs = Flicker_os.Sysfs

type t = {
  machine : Machine.t;
  tpm : Tpm.t;
  kernel : Kernel.t;
  scheduler : Scheduler.t;
  sysfs : Sysfs.t;
  rng : Prng.t;
  aik_cert : Privacy_ca.aik_certificate;
  slb_base : int;
  mutable sessions_run : int;
  mutable corrupt_next_slb : bool;
}

let default_slb_base = 0x200000 (* 2 MB: inside the kernel's direct mapping *)

let create ?(seed = "flicker-platform") ?(timing = Timing.default) ?(key_bits = 512)
    ?(kernel_text_size = 64 * 1024) ?(cores = 2) ?ca () =
  let rng = Prng.create ~seed in
  let machine = Machine.create ~cores timing in
  let tpm = Tpm.create machine (Prng.fork rng ~label:"tpm") ~key_bits in
  Machine.set_tpm_hooks machine (Tpm.skinit_hooks tpm);
  let ca =
    match ca with
    | Some ca -> ca
    | None -> Privacy_ca.create (Prng.fork rng ~label:"privacy-ca") ~name:"SimPrivacyCA" ~key_bits
  in
  Privacy_ca.register_ek ca (Tpm.ek_public tpm);
  let aik_cert =
    match Privacy_ca.certify_aik ca ~ek:(Tpm.ek_public tpm) ~aik:(Tpm.aik_public tpm) with
    | Ok cert -> cert
    | Error msg -> failwith ("Platform.create: " ^ msg)
  in
  let kernel =
    Kernel.create (Prng.fork rng ~label:"kernel") ~text_size:kernel_text_size
      ~version:"2.6.20" ()
  in
  {
    machine;
    tpm;
    kernel;
    scheduler = Scheduler.create machine;
    sysfs = Sysfs.create ();
    rng;
    aik_cert;
    slb_base = default_slb_base;
    sessions_run = 0;
    corrupt_next_slb = false;
  }

let clock t = t.machine.Machine.clock
let now_ms t = Clock.now (clock t)
let fork_rng t ~label = Prng.fork t.rng ~label
let fresh_nonce t = Prng.bytes t.rng 20

(* A mid-session crash and reboot. Volatile state is lost: memory, DEV
   ranges, CPU modes (Machine.power_cycle), the suspended scheduler, and
   the flicker-module's sysfs entries. The TPM's PCRs reboot to the
   0xff reboot digest while NV, counters, and the key hierarchy persist
   — which is exactly why sealed blobs bound to PCR 17-during-PAL unseal
   again after the next SKINIT reproduces that value (Section 4.3's
   recovery story). *)
let power_cycle t =
  Machine.power_cycle t.machine;
  Tpm.reboot t.tpm;
  if Scheduler.is_suspended t.scheduler then Scheduler.resume t.scheduler;
  List.iter (fun path -> Sysfs.remove t.sysfs ~path) (Sysfs.paths t.sysfs);
  t.corrupt_next_slb <- false
