open Flicker_crypto
module Builder = Flicker_slb.Builder
module Slb_core = Flicker_slb.Slb_core
module Tpm_types = Flicker_tpm.Tpm_types

type digest = Tpm_types.digest

let extend current value = Sha1.digest (current ^ value)
let extend_chain start values = List.fold_left extend start values

let initialized image ~slb_base = Builder.initialize image ~slb_base

let of_image image ~slb_base =
  let bytes = initialized image ~slb_base in
  Sha1.digest (String.sub bytes 0 image.Builder.measured_length)

let window_hash image ~slb_base = Sha1.digest (initialized image ~slb_base)

let after_launch ?acm image ~slb_base =
  let start =
    match acm with
    | None -> Tpm_types.zero_digest
    | Some acm -> extend Tpm_types.zero_digest (Sha1.digest acm)
  in
  let v = extend start (of_image image ~slb_base) in
  match image.Builder.flavor with
  | Builder.Standard -> v
  | Builder.Optimized -> extend v (window_hash image ~slb_base)

let after_skinit image ~slb_base = after_launch image ~slb_base

let io_extends ~inputs ~outputs ~nonce =
  let base = [ Sha1.digest inputs; Sha1.digest outputs ] in
  match nonce with None -> base | Some n -> base @ [ n ]

let labeled_io_extends ~inputs ~outputs ~nonce =
  let base = [ ("input", Sha1.digest inputs); ("output", Sha1.digest outputs) ] in
  match nonce with None -> base | Some n -> base @ [ ("nonce", n) ]

let final ?acm ?(pal_extends = []) image ~slb_base ~inputs ~outputs ~nonce =
  extend_chain
    (after_launch ?acm image ~slb_base)
    (pal_extends @ io_extends ~inputs ~outputs ~nonce @ [ Slb_core.cap_value ])
