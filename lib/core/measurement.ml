open Flicker_crypto
module Builder = Flicker_slb.Builder
module Slb_core = Flicker_slb.Slb_core
module Tpm_types = Flicker_tpm.Tpm_types

type digest = Tpm_types.digest

let extend current value = Sha1.digest (current ^ value)
let extend_chain start values = List.fold_left extend start values

(* --- measurement memoization ------------------------------------------

   Patching and hashing the 64 KB window is the host-side hot path: an
   Optimized launch used to run the patch + SHA-1 pass once for the
   session's stub extend and again (twice) for every [after_launch] /
   [final] the verifier side computes. All of those are pure functions
   of the image content and the load address, so they are cached here,
   keyed by the *content* — the raw image bytes plus [slb_base] for the
   patched artifacts, the window bytes themselves for [window_digest].
   A content key makes the cache identity-preserving by construction
   (any change to the image, the load address, or the in-memory window
   — including the adversary's corruption hook — changes the key), and
   invalidation is automatic. Collisions only cost a memcmp, which is
   ~100x cheaper than re-hashing the window. *)

type entry = {
  e_initialized : string; (* the patched 64 KB window *)
  e_measured : digest; (* H(measured prefix): [of_image] *)
  mutable e_window : digest option; (* H(full window), on first demand *)
}

(* Bounded by single-victim FIFO eviction: the working set is a handful
   of PALs x flavors, so 64 entries (~4 MB of retained windows) is
   generous. Evicting one oldest key at capacity keeps a 65-entry
   working set warm (one extra patch+hash per wrap) where the previous
   wholesale [Hashtbl.reset] thrashed it to a 0% hit rate. *)
let cache_limit = 64

(* Everything mutable lives in domain-local storage: under OCaml 5
   Domains each shard hashes on its own domain, and a shared Hashtbl
   would tear under concurrent insertion. Because every cache is keyed
   by content, a per-domain split is identity-preserving — a domain that
   misses where another would have hit only re-derives the same bytes —
   so the memo stays transparent at any domain count. *)
type state = {
  s_cache : (string * int, entry) Hashtbl.t;
  s_cache_order : (string * int) Queue.t; (* insertion order, oldest first *)
  s_windows : (string, digest) Hashtbl.t;
  s_windows_order : string Queue.t;
  mutable s_hits : int;
  mutable s_misses : int;
}

let state_key =
  Domain.DLS.new_key (fun () ->
      {
        s_cache = Hashtbl.create 16;
        s_cache_order = Queue.create ();
        s_windows = Hashtbl.create 16;
        s_windows_order = Queue.create ();
        s_hits = 0;
        s_misses = 0;
      })

let state () = Domain.DLS.get state_key

let cache_stats () =
  let st = state () in
  (st.s_hits, st.s_misses)

let clear_cache () =
  let st = state () in
  Hashtbl.reset st.s_cache;
  Queue.clear st.s_cache_order;
  Hashtbl.reset st.s_windows;
  Queue.clear st.s_windows_order;
  st.s_hits <- 0;
  st.s_misses <- 0

(* The order queue may hold keys that were already evicted (a key
   re-inserted after eviction appears twice); skip those. *)
let rec evict_one tbl order =
  match Queue.take_opt order with
  | None -> ()
  | Some k -> if Hashtbl.mem tbl k then Hashtbl.remove tbl k else evict_one tbl order

let lookup image ~slb_base =
  let st = state () in
  let key = (image.Builder.bytes, slb_base) in
  match Hashtbl.find_opt st.s_cache key with
  | Some e ->
      st.s_hits <- st.s_hits + 1;
      e
  | None ->
      st.s_misses <- st.s_misses + 1;
      if Hashtbl.length st.s_cache >= cache_limit then
        evict_one st.s_cache st.s_cache_order;
      let bytes = Builder.initialize image ~slb_base in
      let e =
        {
          e_initialized = bytes;
          e_measured = Sha1.digest (String.sub bytes 0 image.Builder.measured_length);
          e_window = None;
        }
      in
      Hashtbl.replace st.s_cache key e;
      Queue.add key st.s_cache_order;
      e

let entry_window_digest e =
  match e.e_window with
  | Some d -> d
  | None ->
      let d = Sha1.digest e.e_initialized in
      e.e_window <- Some d;
      d

let window_digest window =
  let st = state () in
  match Hashtbl.find_opt st.s_windows window with
  | Some d ->
      st.s_hits <- st.s_hits + 1;
      d
  | None ->
      st.s_misses <- st.s_misses + 1;
      if Hashtbl.length st.s_windows >= cache_limit then
        evict_one st.s_windows st.s_windows_order;
      let d = Sha1.digest window in
      Hashtbl.replace st.s_windows window d;
      Queue.add window st.s_windows_order;
      d

let initialized image ~slb_base = (lookup image ~slb_base).e_initialized

let of_image image ~slb_base = (lookup image ~slb_base).e_measured

let window_hash image ~slb_base = entry_window_digest (lookup image ~slb_base)

let after_launch ?acm image ~slb_base =
  let e = lookup image ~slb_base in
  let start =
    match acm with
    | None -> Tpm_types.zero_digest
    | Some acm -> extend Tpm_types.zero_digest (Sha1.digest acm)
  in
  let v = extend start e.e_measured in
  match image.Builder.flavor with
  | Builder.Standard -> v
  | Builder.Optimized -> extend v (entry_window_digest e)

let after_skinit image ~slb_base = after_launch image ~slb_base

let io_extends ~inputs ~outputs ~nonce =
  let base = [ Sha1.digest inputs; Sha1.digest outputs ] in
  match nonce with None -> base | Some n -> base @ [ n ]

let labeled_io_extends ~inputs ~outputs ~nonce =
  let base = [ ("input", Sha1.digest inputs); ("output", Sha1.digest outputs) ] in
  match nonce with None -> base | Some n -> base @ [ ("nonce", n) ]

let final ?acm ?(pal_extends = []) image ~slb_base ~inputs ~outputs ~nonce =
  extend_chain
    (after_launch ?acm image ~slb_base)
    (pal_extends @ io_extends ~inputs ~outputs ~nonce @ [ Slb_core.cap_value ])
