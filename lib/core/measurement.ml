open Flicker_crypto
module Builder = Flicker_slb.Builder
module Slb_core = Flicker_slb.Slb_core
module Tpm_types = Flicker_tpm.Tpm_types

type digest = Tpm_types.digest

let extend current value = Sha1.digest (current ^ value)
let extend_chain start values = List.fold_left extend start values

(* --- measurement memoization ------------------------------------------

   Patching and hashing the 64 KB window is the host-side hot path: an
   Optimized launch used to run the patch + SHA-1 pass once for the
   session's stub extend and again (twice) for every [after_launch] /
   [final] the verifier side computes. All of those are pure functions
   of the image content and the load address, so they are cached here,
   keyed by the *content* — the raw image bytes plus [slb_base] for the
   patched artifacts, the window bytes themselves for [window_digest].
   A content key makes the cache identity-preserving by construction
   (any change to the image, the load address, or the in-memory window
   — including the adversary's corruption hook — changes the key), and
   invalidation is automatic. Collisions only cost a memcmp, which is
   ~100x cheaper than re-hashing the window. *)

type entry = {
  e_initialized : string; (* the patched 64 KB window *)
  e_measured : digest; (* H(measured prefix): [of_image] *)
  mutable e_window : digest option; (* H(full window), on first demand *)
}

(* Bounded by wholesale reset: the working set is a handful of PALs x
   flavors, so 64 entries (~4 MB of retained windows) is generous and a
   rare flush only costs one extra patch+hash per live key. *)
let cache_limit = 64

let cache : (string * int, entry) Hashtbl.t = Hashtbl.create 16
let window_digests : (string, digest) Hashtbl.t = Hashtbl.create 16
let hits = ref 0
let misses = ref 0

let cache_stats () = (!hits, !misses)

let clear_cache () =
  Hashtbl.reset cache;
  Hashtbl.reset window_digests;
  hits := 0;
  misses := 0

let lookup image ~slb_base =
  let key = (image.Builder.bytes, slb_base) in
  match Hashtbl.find_opt cache key with
  | Some e ->
      incr hits;
      e
  | None ->
      incr misses;
      if Hashtbl.length cache >= cache_limit then Hashtbl.reset cache;
      let bytes = Builder.initialize image ~slb_base in
      let e =
        {
          e_initialized = bytes;
          e_measured = Sha1.digest (String.sub bytes 0 image.Builder.measured_length);
          e_window = None;
        }
      in
      Hashtbl.replace cache key e;
      e

let entry_window_digest e =
  match e.e_window with
  | Some d -> d
  | None ->
      let d = Sha1.digest e.e_initialized in
      e.e_window <- Some d;
      d

let window_digest window =
  match Hashtbl.find_opt window_digests window with
  | Some d ->
      incr hits;
      d
  | None ->
      incr misses;
      if Hashtbl.length window_digests >= cache_limit then
        Hashtbl.reset window_digests;
      let d = Sha1.digest window in
      Hashtbl.replace window_digests window d;
      d

let initialized image ~slb_base = (lookup image ~slb_base).e_initialized

let of_image image ~slb_base = (lookup image ~slb_base).e_measured

let window_hash image ~slb_base = entry_window_digest (lookup image ~slb_base)

let after_launch ?acm image ~slb_base =
  let e = lookup image ~slb_base in
  let start =
    match acm with
    | None -> Tpm_types.zero_digest
    | Some acm -> extend Tpm_types.zero_digest (Sha1.digest acm)
  in
  let v = extend start e.e_measured in
  match image.Builder.flavor with
  | Builder.Standard -> v
  | Builder.Optimized -> extend v (entry_window_digest e)

let after_skinit image ~slb_base = after_launch image ~slb_base

let io_extends ~inputs ~outputs ~nonce =
  let base = [ Sha1.digest inputs; Sha1.digest outputs ] in
  match nonce with None -> base | Some n -> base @ [ n ]

let labeled_io_extends ~inputs ~outputs ~nonce =
  let base = [ ("input", Sha1.digest inputs); ("output", Sha1.digest outputs) ] in
  match nonce with None -> base | Some n -> base @ [ ("nonce", n) ]

let final ?acm ?(pal_extends = []) image ~slb_base ~inputs ~outputs ~nonce =
  extend_chain
    (after_launch ?acm image ~slb_base)
    (pal_extends @ io_extends ~inputs ~outputs ~nonce @ [ Slb_core.cap_value ])
