(** Expected PCR 17 values — the verifier's side of the measurement chain
    (Section 4.4.1).

    After SKINIT, PCR 17 holds [H(0x00^20 || H(SLB))] where [SLB] is the
    initialized (patched) measured region. For an optimized image the
    chain has one more link: the measured stub extends the hash of the
    full 64 KB window. After the PAL runs, the SLB Core extends
    measurements of the inputs, the outputs, the verifier's nonce (when
    present), and finally the well-known cap value, in that order. *)

type digest = Flicker_tpm.Tpm_types.digest

val extend : digest -> digest -> digest
(** [extend current value] = SHA-1(current || value). *)

val extend_chain : digest -> digest list -> digest

val initialized : Flicker_slb.Builder.image -> slb_base:int -> string
(** The image patched for [slb_base] — [Builder.initialize], memoized by
    (image bytes, slb_base) so repeated sessions of the same PAL stop
    re-patching a fresh 64 KB copy. The returned string is shared: treat
    it as immutable. *)

val of_image : Flicker_slb.Builder.image -> slb_base:int -> digest
(** H(measured bytes) of the initialized image — what the TPM receives.
    Memoized alongside {!initialized}. *)

val window_hash : Flicker_slb.Builder.image -> slb_base:int -> digest
(** Hash of the full 64 KB window (what the optimized stub extends).
    Memoized alongside {!initialized}. *)

val window_digest : string -> digest
(** SHA-1 of a raw window read back from memory, memoized by the window
    content itself — the session's optimized-stub extend goes through
    here, so re-measuring an unchanged window costs a memcmp instead of
    a 64 KB hash while any in-memory corruption still changes the key
    (and therefore misses and re-hashes). *)

val cache_stats : unit -> int * int
(** (hits, misses) of the calling domain's measurement caches since its
    last {!clear_cache} — instrumentation for [bench micro]. The caches
    live in [Domain.DLS], one instance per domain: a sharded fleet
    hashes on several domains without sharing (or tearing) a table, and
    because every cache is content-keyed the split is
    identity-preserving — only the hit/miss counts depend on the domain
    layout, never a digest. *)

val clear_cache : unit -> unit
(** Drop every measurement memoized on the calling domain (and zero its
    {!cache_stats}). Results are unaffected: the caches are keyed by
    content, so this only costs re-derivation. At capacity the caches
    evict a single oldest entry instead of flushing wholesale, so a
    working set one larger than the bound degrades by one re-derivation
    per wrap rather than to a 0% hit rate. *)

val after_launch : ?acm:string -> Flicker_slb.Builder.image -> slb_base:int -> digest
(** PCR 17 immediately after a late launch (including the stub's extend
    for optimized images) — the value sealed storage should bind to.
    With [acm] the chain models an Intel TXT launch: GETSEC[SENTER]
    measures the SINIT ACM before the ACM measures the MLE, adding one
    link in front. *)

val after_skinit : Flicker_slb.Builder.image -> slb_base:int -> digest
(** [after_launch] without an ACM: the AMD SVM chain. *)

val io_extends :
  inputs:string -> outputs:string -> nonce:string option -> digest list
(** The values the SLB Core extends after the PAL exits. *)

val labeled_io_extends :
  inputs:string -> outputs:string -> nonce:string option -> (string * digest) list
(** {!io_extends} with each value's protocol-event kind label
    (["input"]/["output"]/["nonce"]) so the session can tag the extends
    for the temporal verifier's extend-order automaton. *)

val final :
  ?acm:string ->
  ?pal_extends:digest list ->
  Flicker_slb.Builder.image ->
  slb_base:int ->
  inputs:string ->
  outputs:string ->
  nonce:string option ->
  digest
(** The capped PCR 17 value a correct session must leave behind — what a
    quote over PCR 17 is checked against. [pal_extends] lists any values
    the PAL itself extended during execution (e.g., the rootkit detector
    extends its result hash before exiting); they sit between the launch
    measurement and the SLB Core's I/O extends. *)
