open Flicker_crypto
module Tracer = Flicker_obs.Tracer
module Metrics = Flicker_obs.Metrics
module Machine = Flicker_hw.Machine
module Memory = Flicker_hw.Memory
module Clock = Flicker_hw.Clock
module Cpu = Flicker_hw.Cpu
module Apic = Flicker_hw.Apic
module Dma = Flicker_hw.Dma
module Skinit = Flicker_hw.Skinit
module Tpm = Flicker_tpm.Tpm
module Scheduler = Flicker_os.Scheduler
module Sysfs = Flicker_os.Sysfs
module Os_state = Flicker_os.Os_state
module Builder = Flicker_slb.Builder
module Layout = Flicker_slb.Layout
module Slb_core = Flicker_slb.Slb_core
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Mod_os_protection = Flicker_slb.Mod_os_protection
module Mod_memory = Flicker_slb.Mod_memory

type phase =
  | Load_slb
  | Suspend_os
  | Skinit
  | Slb_init
  | Pal_execution
  | Cleanup
  | Pcr_extends
  | Resume_os

let phase_name = function
  | Load_slb -> "Load SLB"
  | Suspend_os -> "Suspend OS"
  | Skinit -> "SKINIT"
  | Slb_init -> "SLB Core init"
  | Pal_execution -> "Execute PAL"
  | Cleanup -> "Cleanup"
  | Pcr_extends -> "Extend PCR"
  | Resume_os -> "Resume OS"

type outcome = {
  outputs : string;
  slb_measurement : string;
  pcr17_during : string;
  pcr17_final : string;
  breakdown : (phase * float) list;
  total_ms : float;
  pal_fault : string option;
}

let phase_ms outcome phase =
  match List.assoc_opt phase outcome.breakdown with Some ms -> ms | None -> 0.0

type error =
  | Skinit_failed of string
  | Unknown_pal
  | Os_busy of { transient : bool; msg : string }

let os_busy_transient msg = Os_busy { transient = true; msg }
let os_busy_permanent msg = Os_busy { transient = false; msg }

let pp_error fmt = function
  | Skinit_failed msg -> Format.fprintf fmt "SKINIT failed: %s" msg
  | Unknown_pal -> Format.fprintf fmt "measured SLB matches no registered PAL"
  | Os_busy { msg; _ } -> Format.fprintf fmt "OS not ready for a session: %s" msg

(* Transience is declared where the error is raised, not guessed from the
   message text: mid-session busyness clears once the running session
   resumes the OS; a missing/short SLB image will not fix itself however
   long we wait *)
let busy_is_transient = function
  | Os_busy { transient; _ } -> transient
  | Skinit_failed _ | Unknown_pal -> false

(* PCR 17 read for bookkeeping, bypassing the command path so it charges
   nothing (the session code already knows the value; this is the
   simulator peeking, not the TPM serving a command). *)
let pcr17_of platform =
  match Tpm.pcr_composite platform.Platform.tpm [ 17 ] with
  | [ (17, v) ] -> v
  | _ -> assert false

let extend_pcr17 ?kind platform value =
  match Tpm.pcr_extend ?kind platform.Platform.tpm 17 value with
  | Ok _ -> ()
  | Error e ->
      failwith ("session: PCR 17 extend rejected: " ^ Flicker_tpm.Tpm_types.error_to_string e)

(* --- trace conformance -------------------------------------------------

   With checking on, every session replays the protocol events it
   recorded through the temporal automata on exit and raises if any
   invariant was broken — turning each run into a self-checking test of
   the Section 4 discipline. Off by default: the automata cost a pass
   over the trace slice per session, and long-running services generate
   unbounded sessions. *)

exception
  Protocol_violation of {
    pal : string;
    violations : Flicker_verify.Checker.violation list;
  }

let () =
  Printexc.register_printer (function
    | Protocol_violation { pal; violations } ->
        Some
          (Printf.sprintf "Session.Protocol_violation(%s): %s" pal
             (String.concat "; "
                (List.map Flicker_verify.Checker.violation_to_string violations)))
    | _ -> None)

let conformance_enabled =
  ref
    (match Sys.getenv_opt "FLICKER_VERIFY" with
    | Some ("" | "0" | "false" | "off") | None -> false
    | Some _ -> true)

let set_conformance_checking on = conformance_enabled := on
let conformance_checking () = !conformance_enabled

(* Absolute index of the next tracer event: immune to ring eviction. *)
let tracer_mark tracer = Tracer.length tracer + Tracer.dropped tracer

let check_conformance ~pal tracer mark =
  if !conformance_enabled then begin
    let start = mark - Tracer.dropped tracer in
    (* if the ring evicted events from inside this session, the slice
       would start mid-protocol and the automata would report nonsense;
       skip rather than cry wolf *)
    if start >= 0 then begin
      let events = Tracer.events tracer in
      let slice = List.filteri (fun i _ -> i >= start) events in
      let report = Flicker_verify.Checker.check_trace slice in
      if report.Flicker_verify.Checker.violations <> [] then
        raise
          (Protocol_violation
             { pal; violations = report.Flicker_verify.Checker.violations })
    end
  end

type launch_tech = Svm | Txt of { acm : string }

let execute (platform : Platform.t) ~pal ?(flavor = Builder.Optimized) ?(tech = Svm)
    ?(inputs = "") ?nonce ?time_limit_ms () =
  if String.length inputs > Layout.io_page_size then
    invalid_arg "Session.execute: inputs exceed the 4 KB input page";
  (match nonce with
  | Some n when String.length n <> 20 ->
      invalid_arg "Session.execute: nonce must be 20 bytes"
  | _ -> ());
  (match time_limit_ms with
  | Some limit when limit <= 0.0 ->
      invalid_arg "Session.execute: time limit must be positive"
  | _ -> ());
  let machine = platform.Platform.machine in
  let clock = machine.Machine.clock in
  let memory = machine.Machine.memory in
  let slb_base = platform.Platform.slb_base in
  if Scheduler.is_suspended platform.Platform.scheduler then
    Error (os_busy_transient "mid-session: another Flicker session owns the machine")
  else begin
    platform.Platform.sessions_run <- platform.Platform.sessions_run + 1;
    let tracer = machine.Machine.tracer in
    let metrics = machine.Machine.metrics in
    Metrics.incr metrics "session.runs";
    (* one args list, shared by the span and the protocol instant (the
       tracer stores the list pointer, it never copies) *)
    let pal_args = [ ("pal", Tracer.Str pal.Flicker_slb.Pal.name) ] in
    let session_span =
      Tracer.begin_span tracer ~cat:"session" ~args:pal_args "Flicker session"
    in
    let mark = tracer_mark tracer in
    Machine.protocol_event machine "session.begin" ~args:pal_args;
    let session_rng =
      Platform.fork_rng platform
        ~label:(Printf.sprintf "session-%d" platform.Platform.sessions_run)
    in
    let image = Builder.build ~flavor pal in
    let started = Clock.now clock in
    let breakdown = ref [] in
    let timed phase f =
      Tracer.with_span tracer ~cat:"session.phase" (phase_name phase) (fun () ->
          let result, span = Clock.time clock f in
          breakdown := (phase, Clock.duration span) :: !breakdown;
          result)
    in
    (* close the session span and roll the outcome into the counters at
       every exit *)
    let finish result =
      Machine.protocol_event machine "session.end";
      Tracer.end_span tracer session_span;
      (match result with
      | Error (Skinit_failed _) -> Metrics.incr metrics "session.skinit_failures"
      | Error Unknown_pal -> Metrics.incr metrics "session.unknown_pal"
      | Error (Os_busy _) -> ()
      | Ok o -> if o.pal_fault <> None then Metrics.incr metrics "session.pal_faults");
      check_conformance ~pal:pal.Flicker_slb.Pal.name tracer mark;
      result
    in

    (* --- Load SLB: the application's sysfs writes and the
       flicker-module's allocation + patching --- *)
    timed Load_slb (fun () ->
        Sysfs.write platform.Platform.sysfs ~path:"slb" image.Builder.bytes;
        Sysfs.write platform.Platform.sysfs ~path:"inputs" inputs;
        Sysfs.write platform.Platform.sysfs ~path:"control" "1";
        Memory.zero memory ~addr:slb_base ~len:Layout.total_footprint;
        (* memoized: repeated sessions of the same PAL reuse one patched
           window instead of re-patching a fresh 64 KB copy *)
        let initialized = Measurement.initialized image ~slb_base in
        Memory.write memory ~addr:slb_base initialized;
        if platform.Platform.corrupt_next_slb then begin
          platform.Platform.corrupt_next_slb <- false;
          (* flip a byte inside the PAL region *)
          let addr = slb_base + image.Builder.pal_region_off in
          let original = Memory.read_byte memory addr in
          Memory.write_byte memory addr (original lxor 0xff);
          Machine.log_event machine "ATTACK: SLB corrupted in memory before SKINIT"
        end;
        Memory.write memory ~addr:(slb_base + Layout.inputs_page_offset) inputs;
        Machine.charge machine machine.Machine.timing.Flicker_hw.Timing.cpu.Flicker_hw.Timing.misc_op_ms);

    (* --- Suspend OS --- *)
    let saved_state =
      timed Suspend_os (fun () ->
          Scheduler.suspend platform.Platform.scheduler;
          Apic.deschedule_aps machine;
          Apic.send_init_ipi machine;
          Os_state.save machine platform.Platform.kernel)
    in

    (* --- late launch: SKINIT or GETSEC[SENTER] --- *)
    let launch_result =
      timed Skinit (fun () ->
          match tech with
          | Svm -> (
              match Skinit.execute machine ~slb_base with
              | launch -> Ok launch
              | exception Skinit.Skinit_error msg -> Error msg)
          | Txt { acm } -> (
              (* map the SENTER launch onto the common record: the MLE
                 occupies the same window and the session logic above the
                 launch instruction is identical *)
              match Flicker_hw.Senter.execute machine ~slb_base ~acm with
              | senter ->
                  Ok
                    {
                      Skinit.slb_base = senter.Flicker_hw.Senter.mle_base;
                      slb_length = senter.Flicker_hw.Senter.mle_length;
                      entry_point = senter.Flicker_hw.Senter.entry_point;
                      protected_base = senter.Flicker_hw.Senter.protected_base;
                      protected_len = senter.Flicker_hw.Senter.protected_len;
                    }
              | exception Flicker_hw.Senter.Senter_error msg -> Error msg))
    in
    match launch_result with
    | Error msg ->
        (* hardware refused the launch: the OS resumes untouched *)
        Os_state.restore machine platform.Platform.kernel saved_state;
        Apic.release_aps machine;
        Scheduler.resume platform.Platform.scheduler;
        finish (Error (Skinit_failed msg))
    | Ok launch ->
        let slb_measurement =
          Sha1.digest (Memory.read memory ~addr:slb_base ~len:launch.Skinit.slb_length)
        in

        (* --- SLB Core init (plus the optimized stub's hash+extend) --- *)
        timed Slb_init (fun () ->
            Machine.charge machine Slb_core.init_overhead_ms;
            match flavor with
            | Builder.Standard -> ()
            | Builder.Optimized ->
                (* the measured stub hashes the full window on the main
                   CPU and extends PCR 17 before running any of it *)
                let window = Memory.read memory ~addr:slb_base ~len:Layout.slb_size in
                Machine.charge_sha1 machine ~bytes:Layout.slb_size;
                (* the simulated cost above is charged in full; only the
                   host-side hash is memoized (by window content, so a
                   corrupted window still misses and re-hashes) *)
                extend_pcr17 ~kind:"stub" platform (Measurement.window_digest window));

        (* --- Execute PAL: dispatch on the measured bytes --- *)
        let window = Memory.read memory ~addr:slb_base ~len:Layout.slb_size in
        let dispatch =
          match Builder.pal_code_of_window window with
          | Error _ -> None
          | Ok code -> Pal.find_by_code code
        in
        let pcr17_during = pcr17_of platform in
        let pal_entered = Clock.now clock in
        let env_outputs, pal_fault, known_pal =
          timed Pal_execution (fun () ->
              (* chaos hook: a rogue device picks the worst moment — the
                 PAL is running, so the DEV window is armed and must deny
                 every write aimed at it *)
              Dma.fire_storm machine
                ~focus:(slb_base, Layout.total_footprint) ();
              match dispatch with
              | None -> ("", None, false)
              | Some running_pal ->
                  let protection =
                    if Pal.wants running_pal Pal.Os_protection then
                      Some
                        (Mod_os_protection.policy_for_launch ~slb_base
                           ~footprint:Layout.total_footprint)
                    else None
                  in
                  let heap =
                    if Pal.wants running_pal Pal.Memory_management then
                      Some (Mod_memory.create ~size:(16 * 1024))
                    else None
                  in
                  let env =
                    Pal_env.create ~machine ~tpm:platform.Platform.tpm ~rng:session_rng
                      ~inputs ~inputs_addr:(slb_base + Layout.inputs_page_offset)
                      ~outputs_addr:(slb_base + Layout.outputs_page_offset) ~protection
                      ~heap
                  in
                  (match protection with
                  | Some policy -> Mod_os_protection.enter_ring3 machine policy
                  | None -> ());
                  let fault =
                    match running_pal.Pal.behavior env with
                    | () -> None
                    | exception Mod_os_protection.Pal_fault msg ->
                        Machine.log_event machine ("PAL FAULT: " ^ msg);
                        Some msg
                  in
                  (match protection with
                  | Some _ -> Mod_os_protection.exit_ring3 machine
                  | None -> ());
                  (* SLB Core watchdog: a PAL that overran its allotted
                     time has its outputs dropped (the timer interrupt
                     fires before it can publish them) *)
                  let elapsed = Clock.now clock -. pal_entered in
                  (match (time_limit_ms, fault) with
                  | Some limit, None when elapsed > limit ->
                      Machine.log_event machine
                        (Printf.sprintf
                           "PAL WATCHDOG: exceeded %.1f ms limit (%.1f ms)" limit
                           elapsed);
                      (* the unpublished output page is wiped with the rest *)
                      Memory.zero memory ~addr:(slb_base + Layout.outputs_page_offset)
                        ~len:Layout.io_page_size;
                      ( "",
                        Some
                          (Printf.sprintf "watchdog: PAL exceeded %.1f ms time limit"
                             limit),
                        true )
                  | _ -> (Pal_env.output env, fault, true)))
        in

        (* --- Cleanup: erase everything the PAL touched inside the
           window and the input page (the output page goes back to the
           OS) --- *)
        timed Cleanup (fun () ->
            let wipe addr len =
              Memory.zero memory ~addr ~len;
              Machine.protocol_event machine "zeroize"
                ~args:[ ("addr", Tracer.Count addr); ("len", Tracer.Count len) ]
            in
            wipe slb_base Layout.slb_size;
            wipe (slb_base + Layout.inputs_page_offset) Layout.io_page_size;
            Machine.charge machine Slb_core.cleanup_overhead_ms);

        (* --- Extend PCR 17 with the I/O measurements and the cap --- *)
        timed Pcr_extends (fun () ->
            List.iter
              (fun (kind, v) -> extend_pcr17 ~kind platform v)
              (Measurement.labeled_io_extends ~inputs ~outputs:env_outputs ~nonce);
            extend_pcr17 ~kind:"cap" platform Slb_core.cap_value);
        let pcr17_final = pcr17_of platform in

        (* --- Resume OS --- *)
        timed Resume_os (fun () ->
            Skinit.teardown_dev machine launch;
            Os_state.restore machine platform.Platform.kernel saved_state;
            Apic.release_aps machine;
            Scheduler.resume platform.Platform.scheduler;
            Sysfs.write platform.Platform.sysfs ~path:"outputs" env_outputs;
            Machine.charge machine Slb_core.cleanup_overhead_ms);

        finish
          (if not known_pal then Error Unknown_pal
           else
             Ok
               {
                 outputs = env_outputs;
                 slb_measurement;
                 pcr17_during;
                 pcr17_final;
                 breakdown = List.rev !breakdown;
                 total_ms = Clock.now clock -. started;
                 pal_fault;
               })
  end

let execute_from_sysfs (platform : Platform.t) ?nonce ?time_limit_ms () =
  (* check for a running session before inspecting sysfs: mid-session the
     slb entry may well be absent, and the caller needs to distinguish
     "retry later" from "you never wrote an SLB" *)
  if Scheduler.is_suspended platform.Platform.scheduler then
    Error (os_busy_transient "mid-session: another Flicker session owns the machine")
  else
  match Sysfs.read platform.Platform.sysfs ~path:"slb" with
  | None -> Error (os_busy_permanent "no SLB written to the sysfs slb entry")
  | Some window ->
      if String.length window <> Layout.slb_size then
        Error (os_busy_permanent "slb entry is not a full 64 KB window image")
      else begin
        match Builder.pal_code_of_window window with
        | Error msg -> Error (os_busy_permanent ("corrupt SLB image: " ^ msg))
        | Ok code -> (
            match Pal.find_by_code code with
            | None -> Error Unknown_pal
            | Some pal ->
                (* the header length field distinguishes the optimized
                   stub from a standard image *)
                let measured =
                  Char.code window.[0] lor (Char.code window.[1] lsl 8)
                in
                let flavor =
                  if measured = Slb_core.stub_size then Builder.Optimized
                  else Builder.Standard
                in
                let inputs =
                  Option.value
                    (Sysfs.read platform.Platform.sysfs ~path:"inputs")
                    ~default:""
                in
                execute platform ~pal ~flavor ~inputs ?nonce ?time_limit_ms ())
      end

let corrupt_slb_in_memory (platform : Platform.t) =
  platform.Platform.corrupt_next_slb <- true

let retry_busy (platform : Platform.t) ?(attempts = 3) ?(backoff_ms = 10.0) f =
  if attempts < 1 then invalid_arg "Session.retry_busy: attempts must be >= 1";
  if backoff_ms < 0.0 then invalid_arg "Session.retry_busy: negative backoff";
  let machine = platform.Platform.machine in
  let rec go attempt backoff =
    match f () with
    | Error e when busy_is_transient e && attempt < attempts ->
        Metrics.incr machine.Machine.metrics "session.busy_retries";
        Machine.log_event machine
          (Printf.sprintf "session: OS busy, retrying in %.1f ms (attempt %d/%d)"
             backoff attempt attempts);
        Clock.advance machine.Machine.clock backoff;
        go (attempt + 1) (backoff *. 2.0)
    | result -> result
  in
  go 1 backoff_ms
