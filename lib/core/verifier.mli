(** The remote party's verification logic (Section 4.4.1).

    The verifier knows the PAL it expects (so it can rebuild the SLB
    image and predict the measurement), trusts a Privacy CA, and sent a
    fresh nonce. It accepts iff: the AIK certificate chains to the
    trusted CA, the TPM signature over the quoted PCRs and nonce checks
    under that AIK, the nonce is its own, and PCR 17 equals the value
    only a genuine SKINIT launch of exactly that PAL — with exactly the
    claimed inputs and outputs — could have produced. *)

type failure =
  | Untrusted_ca
  | Bad_certificate
  | Bad_signature
  | Nonce_mismatch
  | Pcr_mismatch of { expected : string; got : string }
  | Missing_pcr17

val pp_failure : Format.formatter -> failure -> unit
val failure_to_string : failure -> string

type expectation = {
  pal : Flicker_slb.Pal.t;
  flavor : Flicker_slb.Builder.flavor;
  slb_base : int;  (** where the challenged platform loads SLBs *)
  nonce : string;
  pal_extends : string list;
      (** values the PAL is expected to extend into PCR 17 itself; for
          the rootkit detector this is its reported hash *)
  acm : string option;
      (** the SINIT ACM, when the platform late-launches with Intel TXT;
          [None] for AMD SKINIT *)
}

val expect :
  pal:Flicker_slb.Pal.t ->
  ?flavor:Flicker_slb.Builder.flavor ->
  ?pal_extends:string list ->
  ?acm:string ->
  slb_base:int ->
  nonce:string ->
  unit ->
  expectation
(** Build an expectation; [flavor] defaults to [Optimized],
    [pal_extends] to none, and the launch technology to AMD SKINIT. *)

val verify :
  ca_key:Flicker_crypto.Rsa.public ->
  expectation ->
  Attestation.evidence ->
  (unit, failure) result
(** Full check against the claimed inputs/outputs carried in the
    evidence. On [Ok ()], the verifier knows the exact PAL ran under
    Flicker protection, consumed [claimed_inputs], and produced
    [claimed_outputs]. *)

val expected_pcr17 : expectation -> inputs:string -> outputs:string -> string
(** The capped PCR 17 value implied by an expectation. *)

(** {2 Staged checks}

    [verify] is the composition of the four checks below, in order. They
    are exposed so an appraisal cache can memoize the host-crypto
    stages — certificate and quote-signature verification, whose cost
    scales with RSA — while re-running the cheap context-dependent ones
    (freshness, PCR recomputation) on every appraisal. *)

val quote_payload : Flicker_tpm.Tpm.quote -> string
(** The exact byte string the TPM signed: ["QUOT"] followed by the
    composite hash of the quoted PCRs and the challenge nonce. *)

val check_certificate :
  ca_key:Flicker_crypto.Rsa.public ->
  Flicker_tpm.Privacy_ca.aik_certificate ->
  (unit, failure) result
(** Does the AIK certificate chain to the trusted CA? *)

val check_quote_signature :
  aik:Flicker_crypto.Rsa.public ->
  Flicker_tpm.Tpm.quote ->
  (unit, failure) result
(** Does the quote's signature over {!quote_payload} check under the
    certified AIK? *)

val check_freshness : expectation -> Flicker_tpm.Tpm.quote -> (unit, failure) result
(** Is the quoted nonce the challenge we sent? (Constant-time.) *)

val check_pcr17 : expectation -> Attestation.evidence -> (unit, failure) result
(** Does quoted PCR 17 equal the value implied by the expectation and
    the claimed inputs/outputs? *)
