(** One Flicker session, end to end — the Figure 2 timeline.

    The application writes the uninitialized SLB and its inputs to the
    flicker-module's sysfs entries and pokes [control]; the module
    allocates kernel memory, patches the SLB Core's skeleton GDT/TSS with
    the allocation address, saves OS state, parks the APs, and issues
    SKINIT. The SLB Core then initializes, calls the PAL, erases secrets,
    extends PCR 17 with the inputs/outputs/nonce and the cap value, and
    resumes the untrusted OS, which exposes the outputs through sysfs.

    The flicker-module is untrusted: nothing here is in the TCB because
    every action that matters is either measured (the SLB) or verified
    after the fact (the attestation). *)

type phase =
  | Load_slb  (** sysfs writes, allocation, patching *)
  | Suspend_os  (** AP hotplug + INIT IPI + state save *)
  | Skinit
  | Slb_init  (** SLB Core setup; includes the stub's hash+extend when optimized *)
  | Pal_execution
  | Cleanup  (** zeroization *)
  | Pcr_extends  (** inputs/outputs/nonce measurements + cap *)
  | Resume_os

val phase_name : phase -> string

type outcome = {
  outputs : string;
  slb_measurement : string;  (** H(measured SLB bytes), as the TPM saw them *)
  pcr17_during : string;  (** PCR 17 while the PAL ran (sealing binds to this) *)
  pcr17_final : string;  (** after the closing cap extend *)
  breakdown : (phase * float) list;  (** simulated milliseconds per phase *)
  total_ms : float;
  pal_fault : string option;  (** OS-Protection trap, if the PAL faulted *)
}

val phase_ms : outcome -> phase -> float

type error =
  | Skinit_failed of string
  | Unknown_pal  (** measured bytes match no registered PAL: nothing ran *)
  | Os_busy of { transient : bool; msg : string }
      (** [transient] is [true] when another Flicker session currently
          owns the machine — waiting for it to resume the OS and retrying
          can succeed. It is [false] for a missing, short, or corrupt SLB
          image: the application never wrote a full window, and no amount
          of waiting fixes that. The classification is structural, set at
          the raise site — retry logic must not (and no longer does)
          parse [msg]. *)

val pp_error : Format.formatter -> error -> unit

val os_busy_transient : string -> error
(** [Os_busy { transient = true; msg }] — another session owns the machine. *)

val os_busy_permanent : string -> error
(** [Os_busy { transient = false; msg }] — a structural failure (missing,
    short, or corrupt SLB image) that no amount of waiting fixes. *)

(** {1 Trace conformance} *)

exception
  Protocol_violation of {
    pal : string;
    violations : Flicker_verify.Checker.violation list;
  }
(** Raised at the end of a session (with conformance checking on) whose
    recorded protocol events break a temporal automaton. *)

val set_conformance_checking : bool -> unit
(** Turn per-session conformance checking on or off. Defaults to off, or
    to the [FLICKER_VERIFY] environment variable (any value other than
    ["0"], ["false"], ["off"], or empty enables it). When on, every
    {!execute} replays the protocol events it traced through
    {!Flicker_verify.Automata.all} and raises {!Protocol_violation} on
    any violation. Sessions whose events were evicted from the tracer
    ring mid-run are skipped rather than misreported. *)

val conformance_checking : unit -> bool

val busy_is_transient : error -> bool
(** [true] exactly for the mid-session flavour of [Os_busy]: waiting (and
    retrying) can succeed. A missing or short SLB image is not transient. *)

type launch_tech =
  | Svm  (** AMD SKINIT — the paper's implementation platform *)
  | Txt of { acm : string }
      (** Intel GETSEC[SENTER] with the given SINIT ACM (Section 2.4:
          "Intel's TXT technology functions analogously") *)

val execute :
  Platform.t ->
  pal:Flicker_slb.Pal.t ->
  ?flavor:Flicker_slb.Builder.flavor ->
  ?tech:launch_tech ->
  ?inputs:string ->
  ?nonce:string ->
  ?time_limit_ms:float ->
  unit ->
  (outcome, error) result
(** Run a full session on the platform. [flavor] defaults to [Optimized]
    (the paper uses the hash-then-extend loader for everything after
    Section 7.2). [nonce] is the verifier's 20-byte challenge; when
    present it is extended into PCR 17 with the outputs.

    [time_limit_ms] arms the SLB Core's watchdog timer (the execution-time
    restriction Section 5.1.2 describes as under investigation): if the
    PAL runs past the limit, its outputs are discarded, the fault is
    recorded, and cleanup proceeds — the OS gets its machine back.
    @raise Invalid_argument if [inputs] exceeds the 4 KB input page, the
    nonce is not 20 bytes, or the time limit is not positive. *)

val execute_from_sysfs :
  Platform.t ->
  ?nonce:string ->
  ?time_limit_ms:float ->
  unit ->
  (outcome, error) result
(** The application-facing path of Section 4.2: the application has
    already written the uninitialized SLB image to the [slb] sysfs entry
    and its inputs to [inputs]; writing [control] triggers this. The
    flicker-module recovers the launch flavor from the SLB header and
    dispatches on the PAL code inside the blob — it is handed bytes, not
    a function, exactly like the real kernel module. Outputs appear in
    the [outputs] entry. Fails with [Os_busy] when the [slb] entry is
    missing or not a full window image. *)

val corrupt_slb_in_memory : Platform.t -> unit
(** Test hook simulating an adversary flipping SLB bytes between the
    sysfs write and SKINIT: flips one byte of the loaded window the next
    time a session loads it. *)

val retry_busy :
  Platform.t ->
  ?attempts:int ->
  ?backoff_ms:float ->
  (unit -> (outcome, error) result) ->
  (outcome, error) result
(** Run [f], retrying with exponential backoff while it fails with a
    {e transient} [Os_busy] (see {!busy_is_transient}). Between attempts
    the platform clock advances by the backoff (starting at [backoff_ms],
    default 10 ms, doubling each retry) and the machine's
    [session.busy_retries] counter is bumped — the fleet dispatcher uses
    this to ride out a machine that is momentarily mid-session. At most
    [attempts] (default 3) calls of [f] in total; the final error is
    returned verbatim. Non-transient errors are never retried.
    @raise Invalid_argument if [attempts < 1] or [backoff_ms < 0]. *)
