(** Assembly of one Flicker-capable machine: simulated hardware, TPM,
    untrusted OS, and the flicker-module's sysfs interface — the HP
    dc5750 of Section 7.1, in software. *)

module Machine = Flicker_hw.Machine
module Tpm = Flicker_tpm.Tpm
module Privacy_ca = Flicker_tpm.Privacy_ca

type t = {
  machine : Machine.t;
  tpm : Tpm.t;
  kernel : Flicker_os.Kernel.t;
  scheduler : Flicker_os.Scheduler.t;
  sysfs : Flicker_os.Sysfs.t;
  rng : Flicker_crypto.Prng.t;
  aik_cert : Privacy_ca.aik_certificate;
  slb_base : int;  (** fixed allocation address of the flicker-module *)
  mutable sessions_run : int;
  mutable corrupt_next_slb : bool;
      (** test hook: flip a byte of the next loaded SLB window (a TOCTOU
          attack between patching and SKINIT) *)
}

val create :
  ?seed:string ->
  ?timing:Flicker_hw.Timing.t ->
  ?key_bits:int ->
  ?kernel_text_size:int ->
  ?cores:int ->
  ?ca:Privacy_ca.t ->
  unit ->
  t
(** Build a platform. [key_bits] (default 512 — tests; benches pass
    larger) sizes the TPM hierarchy. When [ca] is given, the platform's
    EK is registered there and the AIK certified by it; otherwise a
    throwaway CA is created. Deterministic for a fixed [seed]. *)

val now_ms : t -> float
val clock : t -> Flicker_hw.Clock.t
val fork_rng : t -> label:string -> Flicker_crypto.Prng.t
val fresh_nonce : t -> string
(** 20 verifier-grade random bytes. *)

val power_cycle : t -> unit
(** Crash-and-reboot the whole platform mid-whatever: volatile machine
    state, the suspended-scheduler flag, and all sysfs entries are lost;
    the TPM reboots (PCRs 17–23 go to the 0xff reboot digest) but keeps
    its NV storage, monotonic counters, and key hierarchy — so sealed
    blobs and replay counters survive, and the recovery paths in
    {!Flicker_core.Replay} and {!Flicker_core.Sealed_storage} can be
    exercised against a genuine reboot. *)
