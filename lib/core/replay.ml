open Flicker_crypto
module Tpm = Flicker_tpm.Tpm
module Tpm_types = Flicker_tpm.Tpm_types
module Pal_env = Flicker_slb.Pal_env
module Mod_tpm_utils = Flicker_slb.Mod_tpm_utils
module Mod_tpm_driver = Flicker_slb.Mod_tpm_driver

type guard = { counter_handle : int }

(* The release must survive an exception from the callback: a PAL fault
   mid-seal would otherwise leave the driver claimed and wedge every
   later TPM operation in the session. *)
let with_tpm (env : Pal_env.t) f =
  match Mod_tpm_driver.claim env.Pal_env.tpm_driver with
  | Error e -> Error e
  | Ok () ->
      Fun.protect
        ~finally:(fun () -> Mod_tpm_driver.release env.Pal_env.tpm_driver)
        (fun () -> f (Pal_env.tpm env))

let init env ~owner_auth ~label =
  with_tpm env (fun tpm ->
      match Mod_tpm_utils.create_counter tpm ~rng:env.Pal_env.rng ~owner_auth ~label with
      | Ok handle -> Ok { counter_handle = handle }
      | Error e -> Error (Tpm_types.error_to_string e))

let seal env guard ~release data =
  with_tpm env (fun tpm ->
      match Tpm.increment_counter tpm ~handle:guard.counter_handle with
      | Error e -> Error (Tpm_types.error_to_string e)
      | Ok j -> (
          let payload = Util.be32_of_int j ^ data in
          match Mod_tpm_utils.seal tpm ~rng:env.Pal_env.rng ~release payload with
          | Ok blob -> Ok blob
          | Error e -> Error (Tpm_types.error_to_string e)))

let seal_for_self env guard data =
  with_tpm env (fun tpm ->
      match Mod_tpm_utils.pcr_read tpm 17 with
      | Error e -> Error (Tpm_types.error_to_string e)
      | Ok pcr17 -> (
          match Tpm.increment_counter tpm ~handle:guard.counter_handle with
          | Error e -> Error (Tpm_types.error_to_string e)
          | Ok j -> (
              let payload = Util.be32_of_int j ^ data in
              match
                Mod_tpm_utils.seal_to_pcr17 tpm ~rng:env.Pal_env.rng ~pcr17 payload
              with
              | Ok blob -> Ok blob
              | Error e -> Error (Tpm_types.error_to_string e))))

type unseal_error =
  | Replay_detected of { sealed_version : int; counter : int }
  | Counter_out_of_sync of { sealed_version : int; counter : int }
  | Tpm_error of string

let pp_unseal_error fmt = function
  | Replay_detected { sealed_version; counter } ->
      Format.fprintf fmt "replay detected: blob version %d, counter %d" sealed_version
        counter
  | Counter_out_of_sync { sealed_version; counter } ->
      Format.fprintf fmt
        "counter out of sync (crash suspected): blob version %d, counter %d"
        sealed_version counter
  | Tpm_error msg -> Format.fprintf fmt "TPM error: %s" msg

let check_version ~sealed_version ~counter payload =
  if sealed_version = counter then Ok (String.sub payload 4 (String.length payload - 4))
  else if sealed_version = counter - 1 then
    Error (Counter_out_of_sync { sealed_version; counter })
  else Error (Replay_detected { sealed_version; counter })

let unseal env guard blob =
  match
    with_tpm env (fun tpm ->
        match Mod_tpm_utils.unseal tpm ~rng:env.Pal_env.rng blob with
        | Error e -> Error (Tpm_types.error_to_string e)
        | Ok payload -> (
            match Tpm.read_counter tpm ~handle:guard.counter_handle with
            | Error e -> Error (Tpm_types.error_to_string e)
            | Ok counter -> Ok (payload, counter)))
  with
  | Error msg -> Error (Tpm_error msg)
  | Ok (payload, counter) ->
      if String.length payload < 4 then Error (Tpm_error "corrupt replay-guarded blob")
      else begin
        let sealed_version = Util.int_of_be32 payload 0 in
        check_version ~sealed_version ~counter payload
      end

module Nv = struct
  type guard = { nv_index : int }

  let init env ~owner_auth ~nv_index =
    with_tpm env (fun tpm ->
        match Mod_tpm_utils.pcr_read tpm 17 with
        | Error e -> Error (Tpm_types.error_to_string e)
        | Ok pcr17 -> (
            let gate = [ (17, pcr17) ] in
            let attrs =
              { Flicker_tpm.Nvram.size = 4; read_pcrs = gate; write_pcrs = gate }
            in
            match
              Mod_tpm_utils.nv_define_space tpm ~rng:env.Pal_env.rng ~owner_auth
                ~index:nv_index attrs
            with
            | Error e -> Error (Tpm_types.error_to_string e)
            | Ok () -> (
                match Tpm.nv_write tpm ~index:nv_index (Util.be32_of_int 0) with
                | Ok () -> Ok { nv_index }
                | Error e -> Error (Tpm_types.error_to_string e))))

  let read_counter tpm guard =
    match Tpm.nv_read tpm ~index:guard.nv_index with
    | Error e -> Error (Tpm_types.error_to_string e)
    | Ok raw -> Ok (Util.int_of_be32 raw 0)

  let seal env guard data =
    with_tpm env (fun tpm ->
        match read_counter tpm guard with
        | Error e -> Error e
        | Ok j -> (
            let j = j + 1 in
            match Tpm.nv_write tpm ~index:guard.nv_index (Util.be32_of_int j) with
            | Error e -> Error (Tpm_types.error_to_string e)
            | Ok () -> (
                match Mod_tpm_utils.pcr_read tpm 17 with
                | Error e -> Error (Tpm_types.error_to_string e)
                | Ok pcr17 -> (
                    match
                      Mod_tpm_utils.seal_to_pcr17 tpm ~rng:env.Pal_env.rng ~pcr17
                        (Util.be32_of_int j ^ data)
                    with
                    | Ok blob -> Ok blob
                    | Error e -> Error (Tpm_types.error_to_string e)))))

  let unseal env guard blob =
    match
      with_tpm env (fun tpm ->
          match Mod_tpm_utils.unseal tpm ~rng:env.Pal_env.rng blob with
          | Error e -> Error (Tpm_types.error_to_string e)
          | Ok payload -> (
              match read_counter tpm guard with
              | Error e -> Error e
              | Ok counter -> Ok (payload, counter)))
    with
    | Error msg -> Error (Tpm_error msg)
    | Ok (payload, counter) ->
        if String.length payload < 4 then Error (Tpm_error "corrupt replay-guarded blob")
        else begin
          let sealed_version = Util.int_of_be32 payload 0 in
          check_version ~sealed_version ~counter payload
        end

  let counter_value env guard = with_tpm env (fun tpm -> read_counter tpm guard)
end
