(** The PAL extraction tool (Section 5.2).

    The paper ships a CIL-based tool: given a target function inside a
    larger C program, it walks the call graph and pulls out every function
    and type the target transitively needs, producing a standalone program
    — and tells the programmer which standard-library calls must be
    eliminated (printf) or redirected to a PAL module (malloc to the
    Memory Management module, TPM_* to TPM Utilities, crypto to the Crypto
    module). This is that tool over a structured program representation
    (the simulator has no C parser; CIL's role was exactly to reduce C to
    such a representation). *)

(** {1 Statement/expression mini-language}

    The structured bodies CIL would plausibly emit after its
    simplification passes: three-address-style expressions over scalar
    locals and parameters, fixed-size local arrays, guarded branches,
    and counted [for] loops whose bounds are evaluated once on entry
    (CIL normalizes loops it can bound into exactly this shape). The
    abstract-interpretation passes in [lib/analysis] run over these;
    functions may instead carry an empty [stmts] list and remain
    "shape-only" (call list + LOC), the pre-mini-IR representation. *)

type binop = Add | Sub | Mul | Div | Mod | Band | Eq | Ne | Lt | Le
(** [Div]/[Mod] by zero evaluate to 0 (total semantics; CIL would have
    inserted a guard). Comparisons yield 0/1. [Band] is bitwise AND. *)

type expr =
  | Num of int
  | Var of string  (** scalar local or parameter *)
  | Bin of binop * expr * expr
  | Load of { buf : string; index : expr }
      (** typed-buffer read: element [index] of local array [buf] *)

type stmt =
  | Local of { name : string; elems : int; elem_size : int }
      (** stack array declaration: [elems] elements of [elem_size]
          bytes, charged to the function's frame *)
  | Assign of { dst : string; src : expr }
  | Store of { buf : string; index : expr; src : expr }
      (** typed-buffer write: element [index] of local array [buf] *)
  | Call of { dst : string option; callee : string; args : expr list }
  | If of { cond : expr; then_ : stmt list; else_ : stmt list }
  | For of { var : string; lo : expr; hi : expr; body : stmt list }
      (** counted loop: [var] ranges over [lo, hi) with both bounds
          evaluated once on entry, so termination is structural; on
          exit [var] holds [hi] if the loop ran, [lo] otherwise *)
  | Return of expr option

type func = {
  fname : string;
  params : string list;  (** scalar parameters, in call order *)
  calls : string list;  (** callees, by name; unknown names are stdlib *)
  uses_types : string list;
  stmts : stmt list;
      (** structured body; [[]] means shape-only (calls + LOC only) *)
  body : string;  (** source text, carried into the extraction *)
  loc : int;  (** lines of code *)
}

val calls_of_stmts : stmt list -> string list
(** Callee names in pre-order evaluation order (branch arms after the
    condition, then-arm first; loop bodies once), duplicates preserved —
    the [calls] list a statement body implies. Keeping [calls] equal to
    this keeps the slicer, call graph, and order-sensitive taint pass
    consistent with the structured body. *)

val fn :
  ?params:string list ->
  ?calls:string list ->
  ?uses_types:string list ->
  ?stmts:stmt list ->
  ?body:string ->
  ?loc:int ->
  string ->
  func
(** [fn name] builds a function definition. When [stmts] is given and
    [calls] is not, [calls] defaults to [calls_of_stmts stmts]; [body]
    defaults to a comment carrying the name and LOC. *)

type typedef = {
  tname : string;
  type_depends : string list;
  definition : string;
}

type program = { functions : func list; types : typedef list }

(** What to do about a standard-library call found in the slice. *)
type advice =
  | Eliminate  (** e.g. printf: makes no sense inside a PAL *)
  | Link_module of Flicker_slb.Pal.module_kind
      (** e.g. malloc: link the Memory Management module *)
  | Inline_replacement of string
      (** e.g. memcpy: a freestanding implementation is provided *)
  | Forbidden of string
      (** e.g. socket: needs the OS; restructure around multiple sessions *)

val stdlib_advice : string -> advice option
(** The built-in advice table; [None] for names that are not recognized
    as standard-library functions (they are reported as unresolved). *)

type extraction = {
  target : string;
  required_functions : func list;  (** callees before callers *)
  required_types : typedef list;
  stdlib_calls : (string * advice) list;
  unresolved : string list;  (** called but neither defined nor known stdlib *)
  extracted_loc : int;
}

type index
(** Name->definition hash indices over a program, built once and shared
    by the slicer and the analysis layer (avoids a list scan per visit). *)

val index : program -> index
(** Build the indices. First definition wins for duplicate names. *)

val find_func : index -> string -> func option
val find_type : index -> string -> typedef option

val extract : ?index:index -> program -> target:string -> (extraction, string) result
(** Slice the program for [target]. Fails only if the target itself is
    undefined; unresolved callees are reported, not fatal (the programmer
    must supply them), mirroring the paper's "not completely automated"
    caveat. Pass [?index] to reuse a prebuilt index across many slices. *)

val suggested_modules : extraction -> Flicker_slb.Pal.module_kind list
(** The PAL modules the slice's stdlib usage implies, deduplicated. *)

val has_blockers : extraction -> bool
(** True when the slice calls something [Forbidden]. *)

val render_standalone : extraction -> string
(** The standalone program text: required types, then functions in
    dependency order, with an extraction report header. *)

val report : Format.formatter -> extraction -> unit
(** Human-readable summary (what the CLI prints). *)
