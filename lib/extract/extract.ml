module Pal = Flicker_slb.Pal

type binop = Add | Sub | Mul | Div | Mod | Band | Eq | Ne | Lt | Le

type expr =
  | Num of int
  | Var of string
  | Bin of binop * expr * expr
  | Load of { buf : string; index : expr }

type stmt =
  | Local of { name : string; elems : int; elem_size : int }
  | Assign of { dst : string; src : expr }
  | Store of { buf : string; index : expr; src : expr }
  | Call of { dst : string option; callee : string; args : expr list }
  | If of { cond : expr; then_ : stmt list; else_ : stmt list }
  | For of { var : string; lo : expr; hi : expr; body : stmt list }
  | Return of expr option

type func = {
  fname : string;
  params : string list;
  calls : string list;
  uses_types : string list;
  stmts : stmt list;
  body : string;
  loc : int;
}

(* pre-order callee linearization: condition first (expressions contain
   no calls, so a branch's callees are its arms'), then-arm before
   else-arm, loop bodies once *)
let calls_of_stmts stmts =
  let acc = ref [] in
  let rec walk = function
    | Local _ | Assign _ | Store _ | Return _ -> ()
    | Call { callee; _ } -> acc := callee :: !acc
    | If { then_; else_; _ } ->
        List.iter walk then_;
        List.iter walk else_
    | For { body; _ } -> List.iter walk body
  in
  List.iter walk stmts;
  List.rev !acc

let fn ?(params = []) ?calls ?(uses_types = []) ?(stmts = []) ?body ?(loc = 1) fname =
  let calls =
    match calls with
    | Some cs -> cs
    | None -> ( match stmts with [] -> [] | _ -> calls_of_stmts stmts)
  in
  let body =
    match body with
    | Some b -> b
    | None -> Printf.sprintf "/* %s: %d LOC */" fname loc
  in
  { fname; params; calls; uses_types; stmts; body; loc }

type typedef = { tname : string; type_depends : string list; definition : string }
type program = { functions : func list; types : typedef list }

type advice =
  | Eliminate
  | Link_module of Pal.module_kind
  | Inline_replacement of string
  | Forbidden of string

let stdlib_advice name =
  let crypto_prefixes = [ "rsa_"; "sha1"; "sha512"; "md5"; "aes_"; "rc4_"; "hmac" ] in
  let tpm_prefixes = [ "TPM_"; "Tspi_" ] in
  let driver_prefixes = [ "tpm_transmit"; "tis_" ] in
  let channel_prefixes = [ "sc_"; "secure_channel_" ] in
  let has_prefix p = String.length name >= String.length p
                     && String.sub name 0 (String.length p) = p in
  match name with
  | "printf" | "fprintf" | "sprintf" | "snprintf" | "puts" | "putchar" | "perror" ->
      Some Eliminate
  | "malloc" | "free" | "realloc" | "calloc" -> Some (Link_module Pal.Memory_management)
  | "sbrk" | "mmap" -> Some (Link_module Pal.Memory_management)
  | "memcpy" | "memset" | "memcmp" | "strlen" | "strcmp" | "strncpy"
  | "strcpy" | "strcat" | "strncat" ->
      Some (Inline_replacement ("freestanding " ^ name ^ " from the SLB Core support code"))
  | "pal_output_write" ->
      Some (Inline_replacement "SLB Core write to the well-known output page (PAL_OUT)")
  | "pal_read_sealed_input" ->
      Some (Inline_replacement "SLB Core read of sealed state from the input page")
  | "zeroize_secrets" ->
      Some (Inline_replacement "SLB Core teardown memset-to-zero (Section 5.1)")
  | "socket" | "connect" | "send" | "recv" | "read" | "write" | "open" | "close" ->
      Some
        (Forbidden
           (name
          ^ " needs the OS; restructure into multiple Flicker sessions with sealed state \
             (Section 4.3)"))
  | "time" | "gettimeofday" ->
      Some
        (Forbidden
           (name
          ^ " needs the OS clock; use TPM tick counters (TPM_GetTicks) for trusted time"))
  | "fork" | "exec" | "pthread_create" ->
      Some (Forbidden (name ^ ": no processes or threads inside a PAL"))
  | "rand" | "srand" | "random" ->
      Some (Inline_replacement "TPM GetRandom via the TPM Utilities module")
  | _ ->
      if List.exists has_prefix crypto_prefixes then Some (Link_module Pal.Crypto)
      else if List.exists has_prefix tpm_prefixes then Some (Link_module Pal.Tpm_utilities)
      else if List.exists has_prefix driver_prefixes then Some (Link_module Pal.Tpm_driver)
      else if List.exists has_prefix channel_prefixes then Some (Link_module Pal.Secure_channel)
      else None

type extraction = {
  target : string;
  required_functions : func list;
  required_types : typedef list;
  stdlib_calls : (string * advice) list;
  unresolved : string list;
  extracted_loc : int;
}

(* Name->definition indices, built once per program. The original slicer
   ran a [List.find_opt] scan per visited callee (O(V·E) on dense
   programs); both the slicer and the analysis call-graph layer share
   these tables instead. First definition wins, matching the old
   first-match scan on programs with duplicate names. *)
type index = {
  ifuncs : (string, func) Hashtbl.t;
  itypes : (string, typedef) Hashtbl.t;
}

let index program =
  let ifuncs = Hashtbl.create (max 16 (2 * List.length program.functions)) in
  List.iter
    (fun f -> if not (Hashtbl.mem ifuncs f.fname) then Hashtbl.add ifuncs f.fname f)
    program.functions;
  let itypes = Hashtbl.create (max 16 (2 * List.length program.types)) in
  List.iter
    (fun t -> if not (Hashtbl.mem itypes t.tname) then Hashtbl.add itypes t.tname t)
    program.types;
  { ifuncs; itypes }

let find_func idx name = Hashtbl.find_opt idx.ifuncs name
let find_type idx name = Hashtbl.find_opt idx.itypes name

let extract ?index:idx program ~target =
  let idx = match idx with Some i -> i | None -> index program in
  let lookup = find_func idx in
  match lookup target with
  | None -> Error (Printf.sprintf "target function %s is not defined in the program" target)
  | Some _ ->
      (* DFS producing callees-first ordering, classifying externals *)
      let visited = Hashtbl.create 16 in
      let ordered = ref [] in
      let stdlib = ref [] in
      let unresolved = ref [] in
      let rec visit name =
        if not (Hashtbl.mem visited name) then begin
          Hashtbl.replace visited name ();
          match lookup name with
          | Some f ->
              List.iter visit f.calls;
              ordered := f :: !ordered
          | None -> (
              match stdlib_advice name with
              | Some advice -> stdlib := (name, advice) :: !stdlib
              | None -> unresolved := name :: !unresolved)
        end
      in
      visit target;
      let required_functions = List.rev !ordered in
      (* type closure over everything the slice touches *)
      let type_lookup = find_type idx in
      let tvisited = Hashtbl.create 16 in
      let ttypes = ref [] in
      let rec tvisit name =
        if not (Hashtbl.mem tvisited name) then begin
          Hashtbl.replace tvisited name ();
          match type_lookup name with
          | Some t ->
              List.iter tvisit t.type_depends;
              ttypes := t :: !ttypes
          | None -> ()
        end
      in
      List.iter (fun f -> List.iter tvisit f.uses_types) required_functions;
      Ok
        {
          target;
          required_functions;
          required_types = List.rev !ttypes;
          stdlib_calls = List.sort compare !stdlib;
          unresolved = List.sort compare !unresolved;
          extracted_loc = List.fold_left (fun acc f -> acc + f.loc) 0 required_functions;
        }

let suggested_modules extraction =
  List.sort_uniq compare
    (List.filter_map
       (fun (_, advice) ->
         match advice with Link_module m -> Some m | _ -> None)
       extraction.stdlib_calls)

let has_blockers extraction =
  List.exists
    (fun (_, advice) -> match advice with Forbidden _ -> true | _ -> false)
    extraction.stdlib_calls

let advice_to_string = function
  | Eliminate -> "eliminate the call"
  | Link_module m -> "link the " ^ (Pal.info m).Pal.module_name ^ " module"
  | Inline_replacement r -> "replace with " ^ r
  | Forbidden why -> "BLOCKER: " ^ why

let render_standalone extraction =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "/* standalone PAL program extracted for %s (%d LOC) */\n"
       extraction.target extraction.extracted_loc);
  List.iter
    (fun (name, advice) ->
      Buffer.add_string buf (Printf.sprintf "/* stdlib: %s -> %s */\n" name (advice_to_string advice)))
    extraction.stdlib_calls;
  List.iter
    (fun name -> Buffer.add_string buf (Printf.sprintf "/* UNRESOLVED: %s */\n" name))
    extraction.unresolved;
  Buffer.add_char buf '\n';
  List.iter
    (fun t -> Buffer.add_string buf (t.definition ^ "\n"))
    extraction.required_types;
  Buffer.add_char buf '\n';
  List.iter (fun f -> Buffer.add_string buf (f.body ^ "\n")) extraction.required_functions;
  Buffer.contents buf

let report fmt extraction =
  Format.fprintf fmt "extraction for %s:@." extraction.target;
  Format.fprintf fmt "  functions: %d (%d LOC)@."
    (List.length extraction.required_functions)
    extraction.extracted_loc;
  Format.fprintf fmt "  types: %d@." (List.length extraction.required_types);
  List.iter
    (fun (name, advice) ->
      Format.fprintf fmt "  stdlib %-12s %s@." name (advice_to_string advice))
    extraction.stdlib_calls;
  List.iter
    (fun name -> Format.fprintf fmt "  unresolved: %s (supply an implementation)@." name)
    extraction.unresolved;
  match suggested_modules extraction with
  | [] -> ()
  | mods ->
      Format.fprintf fmt "  suggested PAL modules: %s@."
        (String.concat ", " (List.map (fun m -> (Pal.info m).Pal.module_name) mods))
