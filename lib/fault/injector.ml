module Sha256 = Flicker_crypto.Sha256

type config = {
  tpm_error_rate : float;
  tpm_latency_rate : float;
  tpm_latency_factor : float;
  crash_rate : float;
  reboot_ms : float;
  dma_storm_rate : float;
  dma_storm_writes : int;
  clock_skew_pct : float;
}

let disabled =
  {
    tpm_error_rate = 0.0;
    tpm_latency_rate = 0.0;
    tpm_latency_factor = 1.0;
    crash_rate = 0.0;
    reboot_ms = 500.0;
    dma_storm_rate = 0.0;
    dma_storm_writes = 4;
    clock_skew_pct = 0.0;
  }

let scaled r =
  let r = Float.max 0.0 (Float.min 1.0 r) in
  {
    tpm_error_rate = r;
    tpm_latency_rate = r /. 2.0;
    tpm_latency_factor = 4.0;
    crash_rate = r /. 3.0;
    reboot_ms = 500.0;
    dma_storm_rate = r;
    dma_storm_writes = 4;
    clock_skew_pct = (if r > 0.0 then 0.01 else 0.0);
  }

let enabled c =
  c.tpm_error_rate > 0.0 || c.tpm_latency_rate > 0.0 || c.crash_rate > 0.0
  || c.dma_storm_rate > 0.0 || c.clock_skew_pct > 0.0

type t = {
  cfg : config;
  seed : string;
  (* per-site draw counters: the only mutable state, and it only
     ratchets, so a replay from the same seed retraces it exactly *)
  draws : (string, int) Hashtbl.t;
  skew : float;
}

let clamp lo hi v = Float.max lo (Float.min hi v)

(* SHA-256 of (seed, site, draw index, time) -> uniform [0, 1), the same
   hash-then-ratchet discipline as Prng's chain. 48 bits is plenty for a
   probability comparison and fits a native int. *)
let raw_uniform ~seed ~site ~index ~now_ms =
  let h =
    Sha256.digest (Printf.sprintf "fault|%s|%s|%d|%.6f" seed site index now_ms)
  in
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Char.code h.[i]
  done;
  float_of_int !v /. 281474976710656.0 (* 2^48 *)

let uniform t ~site ~now_ms =
  let index = Option.value (Hashtbl.find_opt t.draws site) ~default:0 in
  Hashtbl.replace t.draws site (index + 1);
  raw_uniform ~seed:t.seed ~site ~index ~now_ms

let create ?(config = disabled) ~seed () =
  let cfg =
    {
      tpm_error_rate = clamp 0.0 1.0 config.tpm_error_rate;
      tpm_latency_rate = clamp 0.0 1.0 config.tpm_latency_rate;
      tpm_latency_factor = Float.max 1.0 config.tpm_latency_factor;
      crash_rate = clamp 0.0 1.0 config.crash_rate;
      reboot_ms = Float.max 0.0 config.reboot_ms;
      dma_storm_rate = clamp 0.0 1.0 config.dma_storm_rate;
      dma_storm_writes = max 1 config.dma_storm_writes;
      clock_skew_pct = clamp 0.0 0.5 config.clock_skew_pct;
    }
  in
  let skew =
    if cfg.clock_skew_pct = 0.0 then 1.0
    else
      let u = raw_uniform ~seed ~site:"clock.skew" ~index:0 ~now_ms:0.0 in
      1.0 +. (cfg.clock_skew_pct *. ((2.0 *. u) -. 1.0))
  in
  { cfg; seed; draws = Hashtbl.create 16; skew }

let config t = t.cfg
let seed t = t.seed
let clock_skew t = t.skew

type tpm_fault = No_fault | Busy | Slow of float

let tpm_fault t ~op ~now_ms =
  let c = t.cfg in
  if c.tpm_error_rate > 0.0 && uniform t ~site:("tpm.err." ^ op) ~now_ms < c.tpm_error_rate
  then Busy
  else if
    c.tpm_latency_rate > 0.0
    && uniform t ~site:("tpm.lat." ^ op) ~now_ms < c.tpm_latency_rate
  then Slow c.tpm_latency_factor
  else No_fault

let session_crash t ~now_ms =
  let c = t.cfg in
  if c.crash_rate > 0.0 && uniform t ~site:"session.crash" ~now_ms < c.crash_rate
  then Some (uniform t ~site:"session.crash_point" ~now_ms)
  else None

let dma_storm t ~now_ms =
  let c = t.cfg in
  if c.dma_storm_rate > 0.0 && uniform t ~site:"dma.storm" ~now_ms < c.dma_storm_rate
  then Some c.dma_storm_writes
  else None
