(** Deterministic, seed-driven fault injection.

    The paper's whole argument is that Flicker's guarantees survive a
    hostile, unreliable platform — an OS that crashes mid-session, a TPM
    that stalls or returns transient errors, a malicious device that DMAs
    at the worst moment (Sections 4–5). This module makes those failures
    first-class simulation inputs instead of ad-hoc test hooks.

    Every fault decision is a pure function of [(seed, site, draw index,
    virtual time)], hashed through SHA-256 exactly like the
    {!Flicker_crypto.Prng} hash-chain discipline: the same seed always
    yields the same fault trace, so a chaos run is as replayable as a
    clean one. There is no hidden global state — each injector owns its
    per-site draw counters.

    Hook sites live in the layers themselves ([Machine.charge] for clock
    skew, [Tpm.charge_op] for latency spikes and transient errors,
    [Dma.fire_storm] for adversarial DMA, the fleet's dispatch loop for
    crashes); this module only answers "does a fault fire here, now?". *)

type config = {
  tpm_error_rate : float;
      (** probability a faultable TPM command returns a transient
          [Tpm_busy] (TPM_RETRY) instead of executing *)
  tpm_latency_rate : float;  (** probability a TPM command stalls *)
  tpm_latency_factor : float;
      (** multiplier applied to a stalled command's latency (>= 1) *)
  crash_rate : float;
      (** probability a dispatched batch dies mid-session: the platform
          power-cycles, losing all volatile state *)
  reboot_ms : float;  (** virtual downtime after a crash *)
  dma_storm_rate : float;
      (** probability a PAL execution draws a burst of adversarial DMA
          writes (the DEV must deny the ones that matter) *)
  dma_storm_writes : int;  (** writes per storm burst *)
  clock_skew_pct : float;
      (** each platform's oscillator error: one fixed factor per
          injector, drawn in [1 - pct, 1 + pct], applied to every
          charged latency *)
}

val disabled : config
(** All rates zero: an injector built from this never fires. *)

val scaled : float -> config
(** One-knob chaos profile: [scaled r] injects TPM errors and DMA storms
    at rate [r], latency spikes (4x) at [r/2], crashes at [r/3] with a
    500 ms reboot, and 1% clock skew. [r] is clamped to [0, 1]. *)

val enabled : config -> bool
(** Whether any fault can ever fire under this config. *)

type t

val create : ?config:config -> seed:string -> unit -> t
(** [config] defaults to {!disabled}. Rates are clamped to [0, 1],
    [tpm_latency_factor] to >= 1, [clock_skew_pct] to [0, 0.5]. *)

val config : t -> config
val seed : t -> string

val uniform : t -> site:string -> now_ms:float -> float
(** One deterministic draw in [0, 1): SHA-256 of
    [(seed, site, per-site draw count, now_ms)]. Consecutive draws at
    the same site and time differ (the draw count ratchets), but the
    whole sequence replays identically for the same seed. *)

val clock_skew : t -> float
(** The injector's fixed oscillator factor (1.0 when skew is off). *)

type tpm_fault =
  | No_fault
  | Busy  (** return a transient TPM_RETRY error *)
  | Slow of float  (** charge [factor] times the normal latency *)

val tpm_fault : t -> op:string -> now_ms:float -> tpm_fault
(** Decision for one TPM command. Error and latency draws use distinct
    sites ([tpm.err.<op>] / [tpm.lat.<op>]) so enabling one never
    perturbs the other's schedule. *)

val session_crash : t -> now_ms:float -> float option
(** [Some frac] when the batch about to be dispatched should instead
    die mid-session, [frac] in [0, 1) locating the crash point within
    the batch's expected service time. *)

val dma_storm : t -> now_ms:float -> int option
(** [Some n] when a storm of [n] adversarial DMA writes should fire
    during the current PAL execution. *)
