open Flicker_crypto
module Timing = Flicker_hw.Timing
module Machine = Flicker_hw.Machine
module Clock = Flicker_hw.Clock
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Mod_tpm_utils = Flicker_slb.Mod_tpm_utils
module Mod_tpm_driver = Flicker_slb.Mod_tpm_driver
module Platform = Flicker_core.Platform
module Session = Flicker_core.Session

type work_unit = { unit_id : int; number : int; lo : int; hi : int }

type state = {
  unit_ : work_unit;
  next_candidate : int;
  divisors_found : int list;
  finished : bool;
}

let encode_int v = Util.be32_of_int (v lsr 31) ^ Util.be32_of_int (v land 0x7FFFFFFF)
let decode_int s = (Util.int_of_be32 s 0 lsl 31) lor Util.int_of_be32 s 4

let encode_state st =
  Util.encode_fields
    ([
       encode_int st.unit_.unit_id;
       encode_int st.unit_.number;
       encode_int st.unit_.lo;
       encode_int st.unit_.hi;
       encode_int st.next_candidate;
       (if st.finished then "F" else "R");
     ]
    @ List.map encode_int st.divisors_found)

let decode_state blob =
  match Util.decode_fields blob with
  | Error e -> Error e
  | Ok (uid :: number :: lo :: hi :: next :: flag :: divisors) ->
      if List.exists (fun f -> String.length f <> 8) [ uid; number; lo; hi; next ]
      then Error "corrupt state field"
      else
        Ok
          {
            unit_ =
              {
                unit_id = decode_int uid;
                number = decode_int number;
                lo = decode_int lo;
                hi = decode_int hi;
              };
            next_candidate = decode_int next;
            divisors_found = List.map decode_int divisors;
            finished = (flag = "F");
          }
  | Ok _ -> Error "truncated state"

(* Section 7.5 runs ~1,500,000 candidate divisions in an 8.3 s session:
   roughly 180 candidates per millisecond of useful work. *)
let candidates_per_ms = 180.0

(* One slice of real work: trial division from [next_candidate], bounded
   by the slice budget. Returns the advanced state and the work time. *)
let do_work st ~slice_ms =
  let budget = int_of_float (slice_ms *. candidates_per_ms) in
  let unit_ = st.unit_ in
  let rec go c found tested =
    if c > unit_.hi || tested >= budget then (c, found, tested)
    else begin
      let found =
        if c > 1 && unit_.number mod c = 0 then c :: found else found
      in
      go (c + 1) found (tested + 1)
    end
  in
  let c, found, tested = go st.next_candidate st.divisors_found 0 in
  let finished = c > unit_.hi in
  ( { st with next_candidate = c; divisors_found = found; finished },
    float_of_int tested /. candidates_per_ms )

let mac_key_label = "boinc-state-mac"

let compute_mac key st = Hmac.sha1 ~key (mac_key_label ^ encode_state st)

(* PAL input modes: "start" carries the fresh work unit; "resume" carries
   the sealed key, the stored state, and its MAC. *)
let behavior env =
  let fail msg = Pal_env.set_output env ("ERROR: " ^ msg) in
  match Util.decode_fields env.Pal_env.inputs with
  | Error e -> fail ("bad inputs: " ^ e)
  | Ok (mode :: rest) -> (
      let clock = env.Pal_env.machine.Machine.clock in
      let entered = Clock.now clock in
      match Mod_tpm_driver.claim env.Pal_env.tpm_driver with
      | Error e -> fail e
      | Ok () ->
          (* the per-branch releases below are kept (release is
             idempotent); the protect guarantees the claim is also
             dropped when an exception escapes mid-operation *)
          Fun.protect
            ~finally:(fun () -> Mod_tpm_driver.release env.Pal_env.tpm_driver)
          @@ fun () ->
          let tpm = Pal_env.tpm env in
          let respond ~sealed_key ~key ~slice_ms st =
            let pre_work_ms = Clock.now clock -. entered in
            let st, work_ms = do_work st ~slice_ms in
            Pal_env.compute env ~ms:work_ms;
            if st.finished then begin
              (* extend the results into PCR 17 so the quote covers them *)
              let results_hash = Sha1.digest (encode_state st) in
              match Mod_tpm_utils.pcr_extend tpm 17 results_hash with
              | Ok _ | Error _ -> ()
            end;
            let mac = compute_mac key st in
            Mod_tpm_driver.release env.Pal_env.tpm_driver;
            Pal_env.set_output env
              (Util.encode_fields
                 [
                   "ok";
                   sealed_key;
                   encode_state st;
                   mac;
                   Printf.sprintf "%.6f" pre_work_ms;
                 ])
          in
          (match (mode, rest) with
          | "start", [ unit_blob; slice ] -> (
              match decode_state unit_blob with
              | Error e ->
                  Mod_tpm_driver.release env.Pal_env.tpm_driver;
                  fail ("bad work unit: " ^ e)
              | Ok st -> (
                  (* first invocation: generate and seal the 160-bit key *)
                  let key = Mod_tpm_utils.get_random tpm 20 in
                  match Mod_tpm_utils.pcr_read tpm 17 with
                  | Error e ->
                      Mod_tpm_driver.release env.Pal_env.tpm_driver;
                      fail (Flicker_tpm.Tpm_types.error_to_string e)
                  | Ok pcr17 -> (
                      match
                        Mod_tpm_utils.seal_to_pcr17 tpm ~rng:env.Pal_env.rng ~pcr17 key
                      with
                      | Error e ->
                          Mod_tpm_driver.release env.Pal_env.tpm_driver;
                          fail (Flicker_tpm.Tpm_types.error_to_string e)
                      | Ok sealed_key ->
                          respond ~sealed_key ~key ~slice_ms:(float_of_string slice) st)))
          | "resume", [ sealed_key; state_blob; mac; slice ] -> (
              match Mod_tpm_utils.unseal tpm ~rng:env.Pal_env.rng sealed_key with
              | Error e ->
                  Mod_tpm_driver.release env.Pal_env.tpm_driver;
                  fail ("unseal: " ^ Flicker_tpm.Tpm_types.error_to_string e)
              | Ok key ->
                  if
                    not
                      (Util.constant_time_equal mac
                         (Hmac.sha1 ~key (mac_key_label ^ state_blob)))
                  then begin
                    Mod_tpm_driver.release env.Pal_env.tpm_driver;
                    fail "state MAC mismatch (tampering detected)"
                  end
                  else begin
                    match decode_state state_blob with
                    | Error e ->
                        Mod_tpm_driver.release env.Pal_env.tpm_driver;
                        fail ("bad state: " ^ e)
                    | Ok st ->
                        respond ~sealed_key ~key ~slice_ms:(float_of_string slice) st
                  end)
          | _ ->
              Mod_tpm_driver.release env.Pal_env.tpm_driver;
              fail "unknown mode"))
  | Ok [] -> fail "empty inputs"

let pal_instance = ref None

let pal () =
  match !pal_instance with
  | Some p -> p
  | None ->
      let p =
        Pal.define ~name:"boinc-factoring" ~app_code_size:2048
          ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities; Pal.Crypto ]
          behavior
      in
      pal_instance := Some p;
      p

type client = { platform : Platform.t; mutable sealed_key : string; mutable mac : string }

let create_client platform = { platform; sealed_key = ""; mac = "" }

type step = {
  outcome : Session.outcome;
  state : state;
  session_overhead_ms : float;
}

let parse_step client outcome =
  match Util.decode_fields outcome.Session.outputs with
  | Ok [ "ok"; sealed_key; state_blob; mac; pre_work ] -> (
      match decode_state state_blob with
      | Error e -> Error ("PAL returned bad state: " ^ e)
      | Ok state ->
          client.sealed_key <- sealed_key;
          client.mac <- mac;
          let pre_pal =
            List.fold_left
              (fun acc phase -> acc +. Session.phase_ms outcome phase)
              0.0
              [ Session.Load_slb; Session.Suspend_os; Session.Skinit; Session.Slb_init ]
          in
          Ok
            {
              outcome;
              state;
              session_overhead_ms = pre_pal +. float_of_string pre_work;
            })
  | Ok _ | Error _ ->
      if String.length outcome.Session.outputs >= 6
         && String.sub outcome.Session.outputs 0 6 = "ERROR:"
      then Error outcome.Session.outputs
      else Error "PAL returned malformed output"

let run ?nonce client inputs =
  match Session.execute client.platform ~pal:(pal ()) ~inputs ?nonce () with
  | Error e -> Error (Format.asprintf "%a" Session.pp_error e)
  | Ok outcome -> (
      match parse_step client outcome with
      | Ok step -> Ok (step, inputs)
      | Error e -> Error e)

let start ?nonce client unit_ ~slice_ms =
  let st =
    { unit_; next_candidate = unit_.lo; divisors_found = []; finished = false }
  in
  Result.map fst
    (run ?nonce client
       (Util.encode_fields [ "start"; encode_state st; Printf.sprintf "%f" slice_ms ]))

let resume_raw ?nonce client ~state_blob ~slice_ms =
  Result.map fst
    (run ?nonce client
       (Util.encode_fields
          [ "resume"; client.sealed_key; state_blob; client.mac;
            Printf.sprintf "%f" slice_ms ]))

let resume ?nonce client st ~slice_ms =
  if st.finished then invalid_arg "Distcomp.resume: work unit already finished";
  resume_raw ?nonce client ~state_blob:(encode_state st) ~slice_ms

(* like [resume] but also returning the exact PAL inputs, which the
   attestation covers and the server needs to re-derive the quote chain *)
let resume_attested ~nonce client st ~slice_ms =
  if st.finished then invalid_arg "Distcomp.resume_attested: already finished";
  run ~nonce client
    (Util.encode_fields
       [ "resume"; client.sealed_key; encode_state st; client.mac;
         Printf.sprintf "%f" slice_ms ])

let result_extend_of_state st = Sha1.digest (encode_state st)

let run_to_completion client unit_ ~slice_ms =
  match start client unit_ ~slice_ms with
  | Error e -> Error e
  | Ok step ->
      let rec loop step sessions =
        if step.state.finished then Ok (step.state, sessions)
        else begin
          match resume client step.state ~slice_ms with
          | Error e -> Error e
          | Ok step -> loop step (sessions + 1)
        end
      in
      loop step 1

let tamper_state blob =
  if String.length blob = 0 then blob
  else begin
    let b = Bytes.of_string blob in
    let i = String.length blob / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
    Bytes.to_string b
  end

let efficiency timing ~work_ms =
  let overhead =
    Timing.skinit_ms timing ~slb_bytes:Flicker_slb.Slb_core.stub_size
    +. timing.Timing.tpm.Timing.unseal_ms
  in
  work_ms /. (work_ms +. overhead)

let replication_efficiency k =
  if k <= 0 then invalid_arg "Distcomp.replication_efficiency";
  1.0 /. float_of_int k
