open Flicker_crypto
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Mod_crypto = Flicker_slb.Mod_crypto
module Mod_tpm_utils = Flicker_slb.Mod_tpm_utils
module Mod_tpm_driver = Flicker_slb.Mod_tpm_driver
module Platform = Flicker_core.Platform
module Session = Flicker_core.Session

type csr = { subject : string; subject_key : Rsa.public }

type certificate = {
  serial : int;
  cert_subject : string;
  cert_key : Rsa.public;
  issuer : string;
  signature : string;
}

type policy = {
  allowed_suffixes : string list;
  denied_subjects : string list;
  max_certificates : int;
}

let encode_policy p =
  Util.encode_fields
    ([ Util.be32_of_int p.max_certificates ]
    @ [ Util.be32_of_int (List.length p.allowed_suffixes) ]
    @ p.allowed_suffixes @ p.denied_subjects)

let decode_policy s =
  match Util.decode_fields s with
  | Error e -> Error e
  | Ok (max :: n_allowed :: rest) when String.length max = 4 && String.length n_allowed = 4 ->
      let n = Util.int_of_be32 n_allowed 0 in
      if List.length rest < n then Error "truncated policy"
      else begin
        let allowed = List.filteri (fun i _ -> i < n) rest in
        let denied = List.filteri (fun i _ -> i >= n) rest in
        Ok
          {
            max_certificates = Util.int_of_be32 max 0;
            allowed_suffixes = allowed;
            denied_subjects = denied;
          }
      end
  | Ok _ -> Error "malformed policy"

let ends_with ~suffix s =
  let ls = String.length s and lf = String.length suffix in
  ls >= lf && String.sub s (ls - lf) lf = suffix

let policy_allows p ~issued ~subject =
  issued < p.max_certificates
  && (not (List.mem subject p.denied_subjects))
  && List.exists (fun suffix -> ends_with ~suffix subject) p.allowed_suffixes

let cert_payload ~serial ~subject ~key ~issuer =
  "FLICKER-CA-CERT" ^ Util.be32_of_int serial ^ Util.field subject
  ^ Util.field (Rsa.public_to_string key)
  ^ Util.field issuer

let verify_certificate ~ca_key cert =
  Pkcs1.verify ca_key Hash.SHA1
    ~msg:
      (cert_payload ~serial:cert.serial ~subject:cert.cert_subject ~key:cert.cert_key
         ~issuer:cert.issuer)
    ~signature:cert.signature

let encode_certificate c =
  Util.encode_fields
    [
      Util.be32_of_int c.serial;
      c.cert_subject;
      Rsa.public_to_string c.cert_key;
      c.issuer;
      c.signature;
    ]

let decode_certificate s =
  match Util.decode_fields s with
  | Ok [ serial; subject; key; issuer; signature ] when String.length serial = 4 -> (
      match Rsa.public_of_string key with
      | key ->
          Ok
            {
              serial = Util.int_of_be32 serial 0;
              cert_subject = subject;
              cert_key = key;
              issuer;
              signature;
            }
      | exception Invalid_argument m -> Error m)
  | Ok _ -> Error "malformed certificate"
  | Error e -> Error e

(* Memoized certificate verification. A relying party that appraises
   many certificates from the same CA sees the same few certificates
   over and over; the RSA verify only depends on the certificate bytes
   and the CA key, so its verdict can be cached. Negative verdicts are
   cached too — a forged certificate stays forged. *)

type verify_cache = {
  vc_ca_key : Rsa.public;
  vc_table : (string, bool) Hashtbl.t; (* encoded certificate -> verdict *)
  mutable vc_hits : int;
  mutable vc_misses : int;
}

let verify_cache ~ca_key () =
  { vc_ca_key = ca_key; vc_table = Hashtbl.create 32; vc_hits = 0; vc_misses = 0 }

let verify_certificate_cached cache cert =
  let key = encode_certificate cert in
  match Hashtbl.find_opt cache.vc_table key with
  | Some verdict ->
      cache.vc_hits <- cache.vc_hits + 1;
      verdict
  | None ->
      cache.vc_misses <- cache.vc_misses + 1;
      let verdict = verify_certificate ~ca_key:cache.vc_ca_key cert in
      Hashtbl.replace cache.vc_table key verdict;
      verdict

let verify_cache_stats cache = (cache.vc_hits, cache.vc_misses)

(* sealed CA state: private key, issuer name, issue count *)
let encode_ca_state ~priv ~issuer ~count =
  Util.encode_fields [ Rsa.private_to_string priv; issuer; Util.be32_of_int count ]

let decode_ca_state s =
  match Util.decode_fields s with
  | Ok [ priv; issuer; count ] when String.length count = 4 -> (
      match Rsa.private_of_string priv with
      | priv -> Ok (priv, issuer, Util.int_of_be32 count 0)
      | exception Invalid_argument m -> Error m)
  | Ok _ -> Error "malformed CA state"
  | Error e -> Error e

let seal_self env data =
  match Mod_tpm_utils.pcr_read (Pal_env.tpm env) 17 with
  | Error e -> Error (Flicker_tpm.Tpm_types.error_to_string e)
  | Ok pcr17 -> (
      match
        Mod_tpm_utils.seal_to_pcr17 (Pal_env.tpm env) ~rng:env.Pal_env.rng ~pcr17 data
      with
      | Ok blob -> Ok blob
      | Error e -> Error (Flicker_tpm.Tpm_types.error_to_string e))

let behavior env =
  let fail msg = Pal_env.set_output env ("ERROR: " ^ msg) in
  let with_tpm f =
    match Mod_tpm_driver.claim env.Pal_env.tpm_driver with
    | Error e -> fail e
    | Ok () ->
        (* release also on exception, or a PAL fault wedges the driver *)
        Fun.protect
          ~finally:(fun () -> Mod_tpm_driver.release env.Pal_env.tpm_driver)
          f
  in
  match Util.decode_fields env.Pal_env.inputs with
  | Ok [ "keygen"; key_bits; issuer ] ->
      with_tpm (fun () ->
          let seed = Mod_tpm_utils.get_random (Pal_env.tpm env) 128 in
          Prng.reseed env.Pal_env.rng seed;
          let priv =
            Mod_crypto.rsa_generate env.Pal_env.machine env.Pal_env.rng
              ~bits:(int_of_string key_bits)
          in
          match seal_self env (encode_ca_state ~priv ~issuer ~count:0) with
          | Error msg -> fail msg
          | Ok sdata ->
              Pal_env.set_output env
                (Util.encode_fields [ "ok"; Rsa.public_to_string priv.Rsa.pub; sdata ]))
  | Ok ("sign-batch" :: sdata :: policy_blob :: items) when List.length items mod 2 = 0
    ->
      (* one session, one unseal + one reseal, k signatures: the TPM
         overhead that dominates Section 7.4.2 is paid once per batch *)
      with_tpm (fun () ->
          match Mod_tpm_utils.unseal (Pal_env.tpm env) ~rng:env.Pal_env.rng sdata with
          | Error e -> fail ("unseal: " ^ Flicker_tpm.Tpm_types.error_to_string e)
          | Ok state_raw -> (
              match (decode_ca_state state_raw, decode_policy policy_blob) with
              | Error m, _ -> fail ("state: " ^ m)
              | _, Error m -> fail ("policy: " ^ m)
              | Ok (priv, issuer, count), Ok policy -> (
                  let rec pair = function
                    | [] -> []
                    | subject :: key :: rest -> (subject, key) :: pair rest
                    | [ _ ] -> assert false
                  in
                  let count = ref count in
                  let sign_one (subject, subject_key_raw) =
                    if not (policy_allows policy ~issued:!count ~subject) then
                      "E" ^ "policy denies subject " ^ subject
                    else
                      match Rsa.public_of_string subject_key_raw with
                      | exception Invalid_argument m -> "E" ^ "subject key: " ^ m
                      | subject_key ->
                          let serial = !count + 1 in
                          let signature =
                            Mod_crypto.rsa_sign env.Pal_env.machine priv Hash.SHA1
                              (cert_payload ~serial ~subject ~key:subject_key ~issuer)
                          in
                          count := serial;
                          "C"
                          ^ encode_certificate
                              {
                                serial;
                                cert_subject = subject;
                                cert_key = subject_key;
                                issuer;
                                signature;
                              }
                  in
                  let results = List.map sign_one (pair items) in
                  match seal_self env (encode_ca_state ~priv ~issuer ~count:!count) with
                  | Error msg -> fail msg
                  | Ok sdata' ->
                      Pal_env.set_output env
                        (Util.encode_fields ("ok" :: sdata' :: results)))))
  | Ok [ "sign"; sdata; policy_blob; subject; subject_key_raw ] ->
      with_tpm (fun () ->
          match Mod_tpm_utils.unseal (Pal_env.tpm env) ~rng:env.Pal_env.rng sdata with
          | Error e -> fail ("unseal: " ^ Flicker_tpm.Tpm_types.error_to_string e)
          | Ok state_raw -> (
              match (decode_ca_state state_raw, decode_policy policy_blob) with
              | Error m, _ -> fail ("state: " ^ m)
              | _, Error m -> fail ("policy: " ^ m)
              | Ok (priv, issuer, count), Ok policy -> (
                  if not (policy_allows policy ~issued:count ~subject) then
                    fail ("policy denies subject " ^ subject)
                  else begin
                    match Rsa.public_of_string subject_key_raw with
                    | exception Invalid_argument m -> fail ("subject key: " ^ m)
                    | subject_key -> (
                        let serial = count + 1 in
                        let signature =
                          Mod_crypto.rsa_sign env.Pal_env.machine priv Hash.SHA1
                            (cert_payload ~serial ~subject ~key:subject_key ~issuer)
                        in
                        let cert =
                          {
                            serial;
                            cert_subject = subject;
                            cert_key = subject_key;
                            issuer;
                            signature;
                          }
                        in
                        match
                          seal_self env (encode_ca_state ~priv ~issuer ~count:serial)
                        with
                        | Error msg -> fail msg
                        | Ok sdata' ->
                            Pal_env.set_output env
                              (Util.encode_fields
                                 [ "ok"; encode_certificate cert; sdata' ]))
                  end)))
  | Ok _ | Error _ -> fail "unknown mode"

let pals : (int, Pal.t) Hashtbl.t = Hashtbl.create 4

let ca_pal ~key_bits =
  match Hashtbl.find_opt pals key_bits with
  | Some p -> p
  | None ->
      let p =
        Pal.define
          ~name:(Printf.sprintf "certificate-authority-%d" key_bits)
          ~app_code_size:1536
          ~modules:[ Pal.Tpm_driver; Pal.Tpm_utilities; Pal.Crypto ]
          behavior
      in
      Hashtbl.replace pals key_bits p;
      p

type server = {
  platform : Platform.t;
  key_bits : int;
  issuer : string;
  policy : policy;
  mutable sdata : string option;
  mutable pub : Rsa.public option;
  mutable log : (int * string) list; (* newest first *)
}

let create platform ?(key_bits = 1024) ?(issuer = "Flicker Simulated CA") policy =
  { platform; key_bits; issuer; policy; sdata = None; pub = None; log = [] }

let public_key server = server.pub

let run_pal server inputs =
  match
    Session.retry_busy server.platform (fun () ->
        Session.execute server.platform ~pal:(ca_pal ~key_bits:server.key_bits)
          ~inputs ())
  with
  | Error e -> Error (Format.asprintf "%a" Session.pp_error e)
  | Ok outcome ->
      let out = outcome.Session.outputs in
      if String.length out >= 6 && String.sub out 0 6 = "ERROR:" then Error out
      else Ok out

let init_ca server =
  match server.pub with
  | Some pub -> Ok pub
  | None -> (
      let inputs =
        Util.encode_fields [ "keygen"; string_of_int server.key_bits; server.issuer ]
      in
      match run_pal server inputs with
      | Error e -> Error e
      | Ok out -> (
          match Util.decode_fields out with
          | Ok [ "ok"; pub_raw; sdata ] -> (
              match Rsa.public_of_string pub_raw with
              | pub ->
                  server.pub <- Some pub;
                  server.sdata <- Some sdata;
                  Ok pub
              | exception Invalid_argument m -> Error m)
          | Ok _ | Error _ -> Error "malformed keygen output"))

let sign_csr server csr =
  match server.sdata with
  | None -> Error "CA not initialized (run init_ca)"
  | Some sdata -> (
      let inputs =
        Util.encode_fields
          [
            "sign";
            sdata;
            encode_policy server.policy;
            csr.subject;
            Rsa.public_to_string csr.subject_key;
          ]
      in
      match run_pal server inputs with
      | Error e -> Error e
      | Ok out -> (
          match Util.decode_fields out with
          | Ok [ "ok"; cert_raw; sdata' ] -> (
              match decode_certificate cert_raw with
              | Error m -> Error m
              | Ok cert ->
                  server.sdata <- Some sdata';
                  server.log <- (cert.serial, cert.cert_subject) :: server.log;
                  Ok cert)
          | Ok _ | Error _ -> Error "malformed sign output"))

(* Batch signing. The 4 KB input and output pages bound how many CSRs one
   session can carry, so the batch is split greedily into page-sized
   chunks; each chunk costs one unseal + k signatures + one reseal instead
   of k of each. Sizes are computed exactly from the wire encodings (the
   resealed state keeps its length: only the fixed-width counter
   changes). *)

let field_len s = 4 + String.length s

let batch_chunks server csrs =
  let page = Flicker_slb.Layout.io_page_size in
  let sdata_len =
    match server.sdata with Some s -> String.length s | None -> 0
  in
  let policy_len = String.length (encode_policy server.policy) in
  let in_base = field_len "sign-batch" + (4 + sdata_len) + (4 + policy_len) in
  let out_base = field_len "ok" + (4 + sdata_len) in
  let sig_len = (server.key_bits + 7) / 8 in
  let cost csr =
    let subj = String.length csr.subject in
    let key = String.length (Rsa.public_to_string csr.subject_key) in
    let cert_len =
      field_len (Util.be32_of_int 0) + (4 + subj) + (4 + key)
      + field_len server.issuer + (4 + sig_len)
    in
    ((4 + subj) + (4 + key), 4 + 1 + cert_len)
  in
  let rec take in_used out_used acc = function
    | [] -> (List.rev acc, [])
    | csr :: rest ->
        let in_c, out_c = cost csr in
        if acc <> [] && (in_used + in_c > page || out_used + out_c > page) then
          (List.rev acc, csr :: rest)
        else take (in_used + in_c) (out_used + out_c) (csr :: acc) rest
  in
  let rec split = function
    | [] -> []
    | csrs ->
        let chunk, rest = take in_base out_base [] csrs in
        chunk :: split rest
  in
  split csrs

let sign_chunk server csrs =
  match server.sdata with
  | None -> List.map (fun _ -> Error "CA not initialized (run init_ca)") csrs
  | Some sdata -> (
      let items =
        List.concat_map
          (fun csr -> [ csr.subject; Rsa.public_to_string csr.subject_key ])
          csrs
      in
      let inputs =
        Util.encode_fields ("sign-batch" :: sdata :: encode_policy server.policy :: items)
      in
      if String.length inputs > Flicker_slb.Layout.io_page_size then
        List.map (fun _ -> Error "CSR too large for the 4 KB input page") csrs
      else
        match run_pal server inputs with
        | Error e -> List.map (fun _ -> Error e) csrs
        | Ok out -> (
            match Util.decode_fields out with
            | Ok ("ok" :: sdata' :: results) when List.length results = List.length csrs
              ->
                server.sdata <- Some sdata';
                List.map
                  (fun item ->
                    if String.length item >= 1 && item.[0] = 'C' then
                      match
                        decode_certificate
                          (String.sub item 1 (String.length item - 1))
                      with
                      | Ok cert ->
                          server.log <- (cert.serial, cert.cert_subject) :: server.log;
                          Ok cert
                      | Error m -> Error m
                    else if String.length item >= 1 && item.[0] = 'E' then
                      Error (String.sub item 1 (String.length item - 1))
                    else Error "malformed batch item")
                  results
            | Ok _ | Error _ -> List.map (fun _ -> Error "malformed batch output") csrs))

let sign_batch server csrs =
  List.concat_map (sign_chunk server) (batch_chunks server csrs)

let issued_count server = List.length server.log
let audit_log server = List.rev server.log
