(** A Flicker-protected Certificate Authority (Section 6.3.2).

    The CA's private signing key is generated inside a Flicker session
    from TPM randomness, sealed under PCR 17, and never exists outside a
    session. Signing unseals the key and the certificate database, applies
    the administrator's access-control policy to the CSR, signs, appends
    to the database, reseals, and outputs the certificate. Compromise of
    the whole OS yields at worst bogus *certificates* (revocable) — never
    the key. *)

type csr = { subject : string; subject_key : Flicker_crypto.Rsa.public }

type certificate = {
  serial : int;
  cert_subject : string;
  cert_key : Flicker_crypto.Rsa.public;
  issuer : string;
  signature : string;
}

type policy = {
  allowed_suffixes : string list;
      (** a CSR subject must end with one of these (e.g., [".example.com"]) *)
  denied_subjects : string list;
  max_certificates : int;
}

val encode_policy : policy -> string
val decode_policy : string -> (policy, string) result
val policy_allows : policy -> issued:int -> subject:string -> bool

val ca_pal : key_bits:int -> Flicker_slb.Pal.t

type server

val create :
  Flicker_core.Platform.t -> ?key_bits:int -> ?issuer:string -> policy -> server

val init_ca : server -> (Flicker_crypto.Rsa.public, string) result
(** Key-generation session. Idempotent: returns the existing key if
    already initialized. *)

val public_key : server -> Flicker_crypto.Rsa.public option

val sign_csr : server -> csr -> (certificate, string) result
(** One signing session (the paper's 906.2 ms operation). Policy
    violations are reported as errors, without consuming a serial. *)

val sign_batch : server -> csr list -> (certificate, string) result list
(** Sign many CSRs, amortizing the per-session TPM overhead (SKINIT, the
    ~898 ms unseal, the reseal) that dominates single-request signing:
    each Flicker session carries as many CSRs as fit the 4 KB input and
    output pages and pays that overhead once. Results are positional
    (one per CSR, in order); per-CSR policy denials consume no serial and
    do not abort the rest of the batch. *)

val issued_count : server -> int
(** From the public audit log the server keeps alongside the sealed DB. *)

val audit_log : server -> (int * string) list
(** (serial, subject) pairs, oldest first. *)

val verify_certificate :
  ca_key:Flicker_crypto.Rsa.public -> certificate -> bool

type verify_cache
(** Memoized {!verify_certificate} verdicts for one CA key. A relying
    party appraising many certificates sees the same few repeatedly;
    the RSA verify depends only on the certificate bytes and the CA
    key, so the verdict (including a negative one) is cached. *)

val verify_cache : ca_key:Flicker_crypto.Rsa.public -> unit -> verify_cache

val verify_certificate_cached : verify_cache -> certificate -> bool
(** Same verdict as {!verify_certificate} with the cache's key, but the
    RSA verify runs only on the first sight of each certificate. *)

val verify_cache_stats : verify_cache -> int * int
(** [(hits, misses)] — misses count actual RSA verifications run. *)

val encode_certificate : certificate -> string
val decode_certificate : string -> (certificate, string) result
