open Flicker_crypto
module Memory = Flicker_hw.Memory
module Kernel = Flicker_os.Kernel
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Mod_crypto = Flicker_slb.Mod_crypto
module Mod_tpm_utils = Flicker_slb.Mod_tpm_utils
module Mod_tpm_driver = Flicker_slb.Mod_tpm_driver
module Builder = Flicker_slb.Builder
module Platform = Flicker_core.Platform
module Session = Flicker_core.Session
module Attestation = Flicker_core.Attestation
module Verifier = Flicker_core.Verifier
module Network = Flicker_core.Network

(* Physical placement of the kernel regions the detector hashes. *)
let kernel_base = 0x400000

type deployment = {
  platform : Platform.t;
  text_addr : int;
  mutable text_len : int;
  syscall_addr : int;
  mutable syscall_len : int;
  modules_addr : int;
  mutable modules_len : int;
  pristine_hash : string;
}

let region_descriptor d =
  Util.encode_fields
    (List.concat_map
       (fun (addr, len) -> [ Util.be32_of_int addr; Util.be32_of_int len ])
       [
         (d.text_addr, d.text_len);
         (d.syscall_addr, d.syscall_len);
         (d.modules_addr, d.modules_len);
       ])

let write_kernel d =
  let memory = d.platform.Platform.machine.Flicker_hw.Machine.memory in
  let kernel = d.platform.Platform.kernel in
  let text = Kernel.text_segment kernel in
  let syscalls = Kernel.syscall_table kernel in
  let modules =
    Util.encode_fields
      (List.concat_map (fun (name, code) -> [ name; code ]) (Kernel.loaded_modules kernel))
  in
  d.text_len <- String.length text;
  d.syscall_len <- String.length syscalls;
  d.modules_len <- String.length modules;
  Memory.write memory ~addr:d.text_addr text;
  Memory.write memory ~addr:d.syscall_addr syscalls;
  Memory.write memory ~addr:d.modules_addr modules

let live_hash d =
  let memory = d.platform.Platform.machine.Flicker_hw.Machine.memory in
  let ctx = Sha1.init () in
  List.iter
    (fun (addr, len) -> Sha1.update ctx (Memory.read memory ~addr ~len))
    [
      (d.text_addr, d.text_len);
      (d.syscall_addr, d.syscall_len);
      (d.modules_addr, d.modules_len);
    ];
  Sha1.finalize ctx

let deploy_on platform =
  let kernel = platform.Platform.kernel in
  let text_len = String.length (Kernel.text_segment kernel) in
  let syscall_len = String.length (Kernel.syscall_table kernel) in
  (* generous gaps so a grown module list still fits *)
  let syscall_addr = kernel_base + text_len + Memory.page_size in
  let modules_addr = syscall_addr + syscall_len + Memory.page_size in
  let d =
    {
      platform;
      text_addr = kernel_base;
      text_len;
      syscall_addr;
      syscall_len;
      modules_addr;
      modules_len = 0;
      pristine_hash = "";
    }
  in
  write_kernel d;
  let d = { d with pristine_hash = live_hash d } in
  d

let sync d = write_kernel d

let known_good_hash d = d.pristine_hash

let measured_region_bytes d = d.text_len + d.syscall_len + d.modules_len

(* The PAL: parse the region descriptor from its inputs, hash the regions
   out of physical memory (charging CPU hash time), extend PCR 17 with the
   result, and write it to the output page. *)
let detector_behavior env =
  match Util.decode_fields env.Pal_env.inputs with
  | Error _ -> Pal_env.set_output env "ERROR: bad region descriptor"
  | Ok fields ->
      let regions =
        let rec pair = function
          | a :: l :: rest -> (Util.int_of_be32 a 0, Util.int_of_be32 l 0) :: pair rest
          | _ -> []
        in
        pair fields
      in
      let ctx = Sha1.init () in
      List.iter
        (fun (addr, len) ->
          let data = Pal_env.read_phys env ~addr ~len in
          Flicker_hw.Machine.charge_sha1 env.Pal_env.machine ~bytes:len;
          Sha1.update ctx data)
        regions;
      let hash = Sha1.finalize ctx in
      (match Mod_tpm_driver.claim env.Pal_env.tpm_driver with
      | Error _ -> ()
      | Ok () ->
          Fun.protect
            ~finally:(fun () -> Mod_tpm_driver.release env.Pal_env.tpm_driver)
            (fun () ->
              match Mod_tpm_utils.pcr_extend (Pal_env.tpm env) 17 hash with
              | Ok _ | Error _ -> ()));
      Pal_env.set_output env hash

let pal_instance = ref None

(* A ~4 KB detector (Table 1's SKINIT time implies a ~5 KB measured SLB),
   linked against only the TPM driver; crucially it must NOT link the
   OS-protection module, since it has to read kernel memory. *)
let detector_pal () =
  match !pal_instance with
  | Some pal -> pal
  | None ->
      let pal =
        Pal.define ~name:"rootkit-detector" ~app_code_size:4096
          ~modules:[ Pal.Tpm_driver ] detector_behavior
      in
      pal_instance := Some pal;
      pal

type scan_result = {
  reported_hash : string;
  outcome : Session.outcome;
  evidence : Attestation.evidence;
  nonce : string;
}

let scan d ~nonce =
  let inputs = region_descriptor d in
  match
    Session.execute d.platform ~pal:(detector_pal ()) ~flavor:Builder.Optimized
      ~inputs ~nonce ()
  with
  | Error e -> Error (Format.asprintf "%a" Session.pp_error e)
  | Ok outcome ->
      let evidence =
        Attestation.generate d.platform ~nonce ~inputs ~outputs:outcome.Session.outputs
      in
      Ok { reported_hash = outcome.Session.outputs; outcome; evidence; nonce }

type admin_verdict =
  | Clean
  | Rootkit_detected of { expected : string; got : string }
  | Attestation_rejected of Verifier.failure

let admin_check d ~ca_key result =
  (* the detector PAL extends its reported hash into PCR 17 itself *)
  let expectation =
    Verifier.expect ~pal:(detector_pal ()) ~flavor:Builder.Optimized
      ~pal_extends:[ result.evidence.Attestation.claimed_outputs ]
      ~slb_base:d.platform.Platform.slb_base ~nonce:result.nonce ()
  in
  match Verifier.verify ~ca_key expectation result.evidence with
  | Error f -> Attestation_rejected f
  | Ok () ->
      let got = result.evidence.Attestation.claimed_outputs in
      if Util.constant_time_equal got d.pristine_hash then Clean
      else Rootkit_detected { expected = d.pristine_hash; got }

let remote_query d ~ca_key =
  let clock = Platform.clock d.platform in
  let started = Flicker_hw.Clock.now clock in
  (* admin -> host: nonce *)
  Network.send d.platform ~bytes:64;
  let nonce = Platform.fresh_nonce d.platform in
  match scan d ~nonce with
  | Error e -> Error e
  | Ok result ->
      (* host -> admin: quote + hash *)
      Network.send d.platform ~bytes:1024;
      let verdict = admin_check d ~ca_key result in
      Ok (verdict, Flicker_hw.Clock.now clock -. started)
