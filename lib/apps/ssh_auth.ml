open Flicker_crypto
module Pal = Flicker_slb.Pal
module Pal_env = Flicker_slb.Pal_env
module Builder = Flicker_slb.Builder
module Mod_crypto = Flicker_slb.Mod_crypto
module Mod_secure_channel = Flicker_slb.Mod_secure_channel
module Mod_tpm_utils = Flicker_slb.Mod_tpm_utils
module Mod_tpm_driver = Flicker_slb.Mod_tpm_driver
module Platform = Flicker_core.Platform
module Session = Flicker_core.Session
module Attestation = Flicker_core.Attestation
module Verifier = Flicker_core.Verifier
module Network = Flicker_core.Network

(* Figure 7's final extend(PCR17, ⊥): the PAL revokes its own access to
   sealed secrets before handing its output to the untrusted OS. *)
let bottom = Sha1.digest "SSH-PAL: bottom"

let behavior env =
  let fail msg = Pal_env.set_output env ("ERROR: " ^ msg) in
  match Util.decode_fields env.Pal_env.inputs with
  | Ok [ "setup"; key_bits ] -> (
      match Mod_secure_channel.setup env ~key_bits:(int_of_string key_bits) with
      | Ok out -> Pal_env.set_output env (Mod_secure_channel.encode_setup_output out)
      | Error msg -> fail msg)
  | Ok [ "login"; sdata; ciphertext; salt; nonce ] -> (
      match Mod_secure_channel.recover env ~sealed_private:sdata with
      | Error msg -> fail ("unseal: " ^ msg)
      | Ok key -> (
          match Mod_crypto.rsa_decrypt env.Pal_env.machine key ciphertext with
          | Error msg -> fail ("decrypt: " ^ msg)
          | Ok plaintext -> (
              match Util.decode_fields plaintext with
              | Ok [ password; nonce' ] ->
                  if not (Util.constant_time_equal nonce nonce') then
                    fail "nonce mismatch (replay?)"
                  else begin
                    let hash = Mod_crypto.md5crypt env.Pal_env.machine ~salt ~password in
                    (match Mod_tpm_driver.claim env.Pal_env.tpm_driver with
                    | Error _ -> ()
                    | Ok () ->
                        Fun.protect
                          ~finally:(fun () ->
                            Mod_tpm_driver.release env.Pal_env.tpm_driver)
                          (fun () ->
                            match
                              Mod_tpm_utils.pcr_extend (Pal_env.tpm env) 17 bottom
                            with
                            | Ok _ | Error _ -> ()));
                    Pal_env.set_output env hash
                  end
              | Ok _ | Error _ -> fail "malformed login payload")))
  | Ok _ | Error _ -> fail "unknown mode"

let pals : (int, Pal.t) Hashtbl.t = Hashtbl.create 4

let ssh_pal ~key_bits =
  match Hashtbl.find_opt pals key_bits with
  | Some p -> p
  | None ->
      let p =
        Pal.define
          ~name:(Printf.sprintf "ssh-password-%d" key_bits)
          ~app_code_size:1024
          ~modules:
            [ Pal.Tpm_driver; Pal.Tpm_utilities; Pal.Crypto; Pal.Secure_channel ]
          behavior
      in
      Hashtbl.replace pals key_bits p;
      p

type server = {
  platform : Platform.t;
  key_bits : int;
  passwd : (string * string * string) list; (* user, salt, crypted *)
  mutable sdata : string option;
  mutable public_key : Rsa.public option;
}

let create_server platform ?(key_bits = 1024) ~users () =
  let rng = Platform.fork_rng platform ~label:"ssh-passwd-salts" in
  let passwd =
    List.map
      (fun (user, password) ->
        let salt = Util.to_hex (Prng.bytes rng 4) in
        (user, salt, Md5crypt.crypt ~salt ~password))
      users
  in
  { platform; key_bits; passwd; sdata = None; public_key = None }

let passwd_entry server ~user =
  List.find_map
    (fun (u, salt, crypted) -> if u = user then Some (salt, crypted) else None)
    server.passwd

type setup_result = {
  evidence : Attestation.evidence;
  setup_outcome : Session.outcome;
}

let server_setup server ~nonce =
  let inputs = Util.encode_fields [ "setup"; string_of_int server.key_bits ] in
  match
    Session.execute server.platform ~pal:(ssh_pal ~key_bits:server.key_bits) ~inputs
      ~nonce ()
  with
  | Error e -> Error (Format.asprintf "%a" Session.pp_error e)
  | Ok outcome -> (
      match Mod_secure_channel.decode_setup_output outcome.Session.outputs with
      | Error msg -> Error ("setup output: " ^ msg)
      | Ok out ->
          server.sdata <- Some out.Mod_secure_channel.sealed_private;
          server.public_key <- Some out.Mod_secure_channel.public_key;
          let evidence =
            Attestation.generate server.platform ~nonce ~inputs
              ~outputs:outcome.Session.outputs
          in
          Ok { evidence; setup_outcome = outcome })

type login_result = { granted : bool; login_outcome : Session.outcome }

let server_login server ~user ~ciphertext ~nonce =
  match (server.sdata, passwd_entry server ~user) with
  | None, _ -> Error "server has no channel key yet (run setup)"
  | _, None -> Error ("unknown user " ^ user)
  | Some sdata, Some (salt, crypted) -> (
      let inputs = Util.encode_fields [ "login"; sdata; ciphertext; salt; nonce ] in
      match
        Session.execute server.platform ~pal:(ssh_pal ~key_bits:server.key_bits)
          ~inputs ()
      with
      | Error e -> Error (Format.asprintf "%a" Session.pp_error e)
      | Ok outcome ->
          let out = outcome.Session.outputs in
          if String.length out >= 6 && String.sub out 0 6 = "ERROR:" then Error out
          else begin
            (* compare hash output against /etc/passwd, as sshd would *)
            let expected = "$1$" ^ salt ^ "$" in
            let produced = out in
            let granted =
              String.length produced > String.length expected
              && Util.constant_time_equal produced crypted
            in
            Ok { granted; login_outcome = outcome }
          end)

module Client = struct
  type t = {
    rng : Prng.t;
    ca_key : Rsa.public;
    server_slb_base : int;
    key_bits : int;
    mutable server_key : Rsa.public option;
  }

  let create ~rng ~ca_key ~server_slb_base ?(key_bits = 1024) () =
    { rng; ca_key; server_slb_base; key_bits; server_key = None }

  let accept_server_key t ~nonce evidence =
    let expectation =
      Verifier.expect ~pal:(ssh_pal ~key_bits:t.key_bits) ~flavor:Builder.Optimized
        ~slb_base:t.server_slb_base ~nonce ()
    in
    match Verifier.verify ~ca_key:t.ca_key expectation evidence with
    | Error f -> Error (Verifier.failure_to_string f)
    | Ok () -> (
        match
          Mod_secure_channel.decode_setup_output evidence.Attestation.claimed_outputs
        with
        | Error msg -> Error ("attested output malformed: " ^ msg)
        | Ok out ->
            t.server_key <- Some out.Mod_secure_channel.public_key;
            Ok ())

  let encrypt_password t ~password ~nonce =
    match t.server_key with
    | None -> Error "no verified server key (run accept_server_key)"
    | Some pub ->
        if String.length password > Pkcs1.max_message_bytes pub - 28 then
          Error "password too long for the channel key"
        else Ok (Pkcs1.encrypt t.rng pub (Util.encode_fields [ password; nonce ]))
end

module Flicker_client = struct
  type t = {
    platform : Platform.t;
    ca_key : Rsa.public;
    server_slb_base : int;
    key_bits : int;
    mutable server_key : Rsa.public option;
  }

  (* the client-side PAL: decode (server key, nonce, password), encrypt,
     output the ciphertext; everything else is erased with the session *)
  let encryption_behavior env =
    match Util.decode_fields env.Pal_env.inputs with
    | Ok [ pub_raw; nonce; password ] -> (
        match Rsa.public_of_string pub_raw with
        | exception Invalid_argument m -> Pal_env.set_output env ("ERROR: " ^ m)
        | pub ->
            let ct =
              Mod_crypto.rsa_encrypt env.Pal_env.machine env.Pal_env.rng pub
                (Util.encode_fields [ password; nonce ])
            in
            Pal_env.set_output env ct)
    | Ok _ | Error _ -> Pal_env.set_output env "ERROR: malformed inputs"

  let pal_instance = ref None

  let encryption_pal () =
    match !pal_instance with
    | Some p -> p
    | None ->
        let p =
          Pal.define ~name:"ssh-client-encrypt" ~app_code_size:512
            ~modules:[ Pal.Crypto ] encryption_behavior
        in
        pal_instance := Some p;
        p

  let create platform ~ca_key ~server_slb_base ?(key_bits = 1024) () =
    { platform; ca_key; server_slb_base; key_bits; server_key = None }

  let accept_server_key t ~nonce evidence =
    let expectation =
      Verifier.expect ~pal:(ssh_pal ~key_bits:t.key_bits) ~flavor:Builder.Optimized
        ~slb_base:t.server_slb_base ~nonce ()
    in
    match Verifier.verify ~ca_key:t.ca_key expectation evidence with
    | Error f -> Error (Verifier.failure_to_string f)
    | Ok () -> (
        match
          Mod_secure_channel.decode_setup_output evidence.Attestation.claimed_outputs
        with
        | Error msg -> Error ("attested output malformed: " ^ msg)
        | Ok out ->
            t.server_key <- Some out.Mod_secure_channel.public_key;
            Ok ())

  let encrypt_password t ~password ~nonce =
    match t.server_key with
    | None -> Error "no verified server key (run accept_server_key)"
    | Some pub -> (
        let inputs =
          Util.encode_fields [ Rsa.public_to_string pub; nonce; password ]
        in
        match Session.execute t.platform ~pal:(encryption_pal ()) ~inputs () with
        | Error e -> Error (Format.asprintf "%a" Session.pp_error e)
        | Ok outcome ->
            let out = outcome.Session.outputs in
            if String.length out >= 6 && String.sub out 0 6 = "ERROR:" then Error out
            else Ok out)
end

let authenticate server client ~user ~password =
  let clock = Platform.clock server.platform in
  let started = Flicker_hw.Clock.now clock in
  (* TCP connect + ssh banner exchange *)
  Network.round_trip server.platform ~request_bytes:128 ~response_bytes:128;
  let setup_result =
    match server.public_key with
    | Some _ -> Ok None
    | None ->
        let nonce = Platform.fresh_nonce server.platform in
        (match server_setup server ~nonce with
        | Error e -> Error e
        | Ok setup -> (
            (* server -> client: attestation; client verifies *)
            Network.send server.platform ~bytes:2048;
            match Client.accept_server_key client ~nonce setup.evidence with
            | Error e -> Error e
            | Ok () -> Ok (Some setup)))
  in
  match setup_result with
  | Error e -> Error e
  | Ok _ -> (
      (* server -> client: login nonce *)
      let nonce = Platform.fresh_nonce server.platform in
      Network.send server.platform ~bytes:64;
      match Client.encrypt_password client ~password ~nonce with
      | Error e -> Error e
      | Ok ciphertext -> (
          (* client -> server: ciphertext *)
          Network.send server.platform ~bytes:(String.length ciphertext + 64);
          match server_login server ~user ~ciphertext ~nonce with
          | Error e -> Error e
          | Ok { granted; _ } ->
              Ok (granted, Flicker_hw.Clock.now clock -. started)))
